//! Directed-campaign determinism: with a fixed seed and a fixed
//! `embsan-analysis-v1` artifact, an N-worker directed campaign must report
//! exactly the same findings, corpus, coverage and frontier distance as the
//! 1-worker run — the same contract `tests/parallel_determinism.rs` pins
//! for the undirected engine, extended by the distance-scheduling layer.

use embsan::analysis::AnalysisArtifact;
use embsan::fuzz::campaign::CampaignConfig;
use embsan::fuzz::parallel::{
    run_parallel_campaign, run_parallel_campaign_directed, ParallelConfig,
};
use embsan::fuzz::Direction;
use embsan::guestos::executor::ExecProgram;
use embsan::guestos::firmware_by_name;

fn config(workers: usize, seed: u64, iterations: u64) -> ParallelConfig {
    ParallelConfig {
        workers,
        epoch_len: 40,
        chunk: 4,
        trace: false,
        campaign: CampaignConfig { iterations, seed, ..CampaignConfig::default() },
    }
}

/// Builds steering for a firmware spec: race-candidate default targets when
/// the analysis finds any, otherwise an arbitrary-but-deterministic
/// function entry (the determinism property holds for any target set).
fn direction_for(firmware: &str) -> Direction {
    let spec = firmware_by_name(firmware).unwrap();
    let image = spec.build(spec.default_san_mode()).unwrap();
    let artifact = AnalysisArtifact::from_image(&image);
    let targets = if artifact.default_targets.is_empty() {
        vec![*artifact.graph.fn_entries.last().unwrap()]
    } else {
        Vec::new()
    };
    Direction::from_artifact(&artifact, &targets).unwrap()
}

/// Everything observable about a directed run, in canonical order.
#[derive(Debug, PartialEq, Eq)]
struct Observed {
    findings: Vec<(String, u32, ExecProgram)>,
    corpus: Vec<ExecProgram>,
    coverage: usize,
    execs: u64,
    frontier: Option<(u32, u32)>,
    found: Vec<usize>,
}

fn observe(firmware: &str, direction: Option<&Direction>, workers: usize, seed: u64) -> Observed {
    let spec = firmware_by_name(firmware).unwrap();
    let (result, outcome) =
        run_parallel_campaign_directed(spec, direction, &config(workers, seed, 96)).unwrap();
    Observed {
        findings: outcome
            .findings
            .iter()
            .map(|f| (f.report.class.to_string(), f.report.pc, f.program.clone()))
            .collect(),
        corpus: outcome.corpus,
        coverage: outcome.stats.coverage,
        execs: outcome.stats.execs,
        frontier: outcome.stats.frontier,
        found: result.found.iter().map(|f| f.latent_index).collect(),
    }
}

/// The acceptance property: fixed seed + artifact is deterministic across
/// N ∈ {1, 2, 4} workers, including the frontier distance.
#[test]
fn directed_results_identical_across_worker_counts() {
    let firmware = "TP-Link WDR-7660";
    let direction = direction_for(firmware);
    let one = observe(firmware, Some(&direction), 1, 17);
    assert_eq!(one.execs, 96);
    // Non-vacuous: the directed run scored something, so the frontier is
    // live and the distance layer is genuinely exercised.
    assert!(one.frontier.is_some(), "no corpus entry covered a scored edge");
    for workers in [2usize, 4] {
        let many = observe(firmware, Some(&direction), workers, 17);
        assert_eq!(one, many, "x{workers}");
    }
}

/// Passing no artifact must be *the* undirected engine, not a directed
/// engine with neutral inputs — the two entry points share one code path.
#[test]
fn no_artifact_is_exactly_the_undirected_engine() {
    let firmware = "TP-Link WDR-7660";
    let spec = firmware_by_name(firmware).unwrap();
    let none = observe(firmware, None, 2, 23);
    assert_eq!(none.frontier, None, "undirected runs never score");
    let (result, outcome) = run_parallel_campaign(spec, &config(2, 23, 96)).unwrap();
    assert_eq!(none.corpus, outcome.corpus);
    assert_eq!(none.coverage, outcome.stats.coverage);
    assert_eq!(none.findings.len(), outcome.findings.len());
    assert_eq!(none.found, result.found.iter().map(|f| f.latent_index).collect::<Vec<_>>());
}

/// The frontier gauges surface through the deterministic metrics class and
/// are byte-identical for every worker count.
#[test]
fn frontier_metrics_are_deterministic_across_worker_counts() {
    let firmware = "TP-Link WDR-7660";
    let direction = direction_for(firmware);
    let spec = firmware_by_name(firmware).unwrap();
    let mut baseline: Option<String> = None;
    for workers in [1usize, 2] {
        let (_, outcome) =
            run_parallel_campaign_directed(spec, Some(&direction), &config(workers, 17, 96))
                .unwrap();
        let snapshot = outcome.stats.metrics_snapshot();
        let (min, mean) = outcome.stats.frontier.expect("directed run scored nothing");
        assert_eq!(snapshot.value("directed", "frontier_min_milli"), Some(i64::from(min)));
        assert_eq!(snapshot.value("directed", "frontier_mean_milli"), Some(i64::from(mean)));
        let json = snapshot.to_json(false);
        match &baseline {
            None => baseline = Some(json),
            Some(one) => assert_eq!(one, &json, "metric snapshot differs at x{workers}"),
        }
    }
}
