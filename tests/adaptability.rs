//! Integration test for the paper's §5 adaptability claim: a *new*
//! sanitizer functionality (UMSAN, an uninitialized-read detector) joins
//! EMBSAN through the standard pipeline — a reference header extraction,
//! a host engine, and nothing else. The Distiller merges it with
//! KASAN/KCSAN under the same §3.1 rules, and the runtime dispatches to it
//! in both attach modes.

use embsan::core::distill::{distill, KASAN_HEADER, UMSAN_HEADER};
use embsan::core::probe::{probe, ProbeMode};
use embsan::core::report::BugClass;
use embsan::core::session::Session;
use embsan::dsl::{merge, PointKind};
use embsan::emu::profile::Arch;
use embsan::guestos::bugs::{trigger_key, BugKind, BugSpec};
use embsan::guestos::executor::{sys, ExecProgram};
use embsan::guestos::{os, BuildOptions, SanMode};

#[test]
fn umsan_distills_and_merges_like_any_sanitizer() {
    let umsan = distill(UMSAN_HEADER).unwrap();
    assert_eq!(umsan.name, "umsan");
    assert!(umsan.point(PointKind::Insn, "load").is_some());
    assert!(umsan.point(PointKind::Call, "alloc").is_some());

    let kasan = distill(KASAN_HEADER).unwrap();
    let merged = merge(&[kasan, umsan]);
    assert_eq!(merged.name, "kasan_umsan");
    // The shared load point is annotated with both sources.
    let load = merged.point(PointKind::Insn, "load").unwrap();
    let addr = load.args.iter().find(|a| a.name == "addr").unwrap();
    assert_eq!(addr.sources, vec!["kasan", "umsan"]);
}

fn detect_uninit(san: SanMode, mode: ProbeMode, with_umsan: bool) -> Vec<BugClass> {
    let bug = BugSpec::new("adapt/uninit", BugKind::UninitRead);
    let opts = BuildOptions::new(Arch::Armv).san(san);
    let image = os::emblinux::build(&opts, std::slice::from_ref(&bug)).unwrap();
    let mut specs = embsan::core::reference_specs().unwrap();
    if with_umsan {
        specs.push(distill(UMSAN_HEADER).unwrap());
    }
    let artifacts = probe(&image, mode, None).unwrap();
    let mut session = Session::new(&image, &specs, &artifacts).unwrap();
    session.run_to_ready(200_000_000).unwrap();
    let mut program = ExecProgram::new();
    program.push(sys::BUG_BASE, &[trigger_key("adapt/uninit")]);
    let outcome = session.run_program(&program, 20_000_000).unwrap();
    outcome.reports.iter().map(|r| r.class).collect()
}

/// The uninitialized read is invisible to KASAN+KCSAN (the memory is
/// addressable and single-threaded) but detected once UMSAN is merged in —
/// in both attach modes.
#[test]
fn uninit_read_needs_the_new_engine() {
    let without = detect_uninit(SanMode::SanCall, ProbeMode::CompileTime, false);
    assert!(without.is_empty(), "KASAN/KCSAN alone: {without:?}");

    let with_c = detect_uninit(SanMode::SanCall, ProbeMode::CompileTime, true);
    assert_eq!(with_c, vec![BugClass::UninitRead], "EMBSAN-C + UMSAN");

    let with_d = detect_uninit(SanMode::None, ProbeMode::DynamicSource, true);
    assert!(with_d.contains(&BugClass::UninitRead), "EMBSAN-D + UMSAN: {with_d:?}");
}

/// The merged three-sanitizer session stays clean on a workload that
/// initializes before reading (no UMSAN false positives).
#[test]
fn three_engine_session_is_clean_on_disciplined_workload() {
    let opts = BuildOptions::new(Arch::Armv).san(SanMode::SanCall);
    let image = os::emblinux::build(&opts, &[]).unwrap();
    let mut specs = embsan::core::reference_specs().unwrap();
    specs.push(distill(UMSAN_HEADER).unwrap());
    let artifacts = probe(&image, ProbeMode::CompileTime, None).unwrap();
    let mut session = Session::new(&image, &specs, &artifacts).unwrap();
    session.run_to_ready(200_000_000).unwrap();
    // Discipline: every object is filled before any read of it.
    let mut program = ExecProgram::new();
    program.push(sys::ALLOC, &[96, 0]);
    program.push(sys::FILL, &[0, 0xAA]);
    program.push(sys::READ, &[0, 17]);
    program.push(sys::ALLOC, &[48, 1]);
    program.push(sys::FILL, &[1, 0x55]);
    program.push(sys::COPY, &[0, 1]);
    program.push(sys::FREE, &[0]);
    program.push(sys::FREE, &[1]);
    let outcome = session.run_program(&program, 20_000_000).unwrap();
    assert!(outcome.reports.is_empty(), "{:?}", outcome.reports);
    assert_eq!(outcome.results[2], 0xAA, "the read saw the fill");
}
