//! Golden-trace lockdown of the observability layer: canonical
//! `embsan-trace-v1` JSONL captures for two firmwares × two sanitizer
//! configurations, compared line-by-line against checked-in goldens.
//!
//! The traces pin down the exact event stream — block translations, probe
//! fires, shadow checks, allocator intercepts, sanitizer reports, each
//! tagged with the lifetime-retired instruction clock — so any change to
//! event ordering, clock semantics or serialization shows up as a diff.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! EMBSAN_BLESS=1 cargo test --test trace_golden
//! ```
//!
//! On mismatch the actual capture is written to `CARGO_TARGET_TMPDIR` so
//! CI can upload it as an artifact next to the failing log.

use std::fs;
use std::path::PathBuf;

use embsan::core::probe::{probe, ProbeMode};
use embsan::core::reference_specs;
use embsan::core::session::Session;
use embsan::emu::profile::Arch;
use embsan::guestos::bugs::{trigger_key, BugKind, BugSpec};
use embsan::guestos::executor::{sys, ExecProgram};
use embsan::guestos::{os, BaseOs, BuildOptions, SanMode};
use embsan::obs::TraceConfig;

const READY_BUDGET: u64 = 200_000_000;
const RUN_BUDGET: u64 = 20_000_000;

struct GoldenCase {
    /// Golden file stem under `tests/golden/`.
    name: &'static str,
    base_os: BaseOs,
    san: SanMode,
    mode: ProbeMode,
    kind: BugKind,
}

/// Two firmwares × two sanitizer configurations: EMBSAN-C (compile-time
/// hypercall attach) and EMBSAN-D (dynamic spliced probes) on both the
/// embedded-Linux and FreeRTOS guests.
const CASES: &[GoldenCase] = &[
    GoldenCase {
        name: "emblinux_embsan_c",
        base_os: BaseOs::EmbeddedLinux,
        san: SanMode::SanCall,
        mode: ProbeMode::CompileTime,
        kind: BugKind::Uaf,
    },
    GoldenCase {
        name: "emblinux_embsan_d",
        base_os: BaseOs::EmbeddedLinux,
        san: SanMode::None,
        mode: ProbeMode::DynamicSource,
        kind: BugKind::Uaf,
    },
    GoldenCase {
        name: "freertos_embsan_c",
        base_os: BaseOs::FreeRtos,
        san: SanMode::SanCall,
        mode: ProbeMode::CompileTime,
        kind: BugKind::DoubleFree,
    },
    GoldenCase {
        name: "freertos_embsan_d",
        base_os: BaseOs::FreeRtos,
        san: SanMode::None,
        mode: ProbeMode::DynamicSource,
        kind: BugKind::DoubleFree,
    },
];

fn case_by_name(name: &str) -> &'static GoldenCase {
    CASES.iter().find(|c| c.name == name).expect("known case")
}

/// Runs the case's fixed workload with full tracing and serializes the
/// event stream as `embsan-trace-v1` JSONL.
fn capture(case: &GoldenCase) -> String {
    let bug = BugSpec::new("golden/bug", case.kind);
    let opts = BuildOptions::new(Arch::Armv).san(case.san);
    let bugs = std::slice::from_ref(&bug);
    let image = match case.base_os {
        BaseOs::EmbeddedLinux => os::emblinux::build(&opts, bugs),
        BaseOs::FreeRtos => os::freertos::build(&opts, bugs),
        BaseOs::LiteOs => os::liteos::build(&opts, bugs),
        BaseOs::VxWorks => os::vxworks::build(&opts, bugs),
    }
    .expect("firmware builds");
    let specs = reference_specs().expect("reference specs");
    let artifacts = probe(&image, case.mode, None).expect("probe succeeds");
    let mut session = Session::new(&image, &specs, &artifacts).expect("session");
    session.run_to_ready(READY_BUDGET).expect("ready");

    // Tracing goes live only after boot: the golden stream is the
    // steady-state behaviour, not the (much longer) boot transcript.
    session.enable_tracing(TraceConfig::full());

    // Fixed workload: allocator traffic, memory traffic over it, then the
    // seeded bug — covers alloc-intercept, shadow-check, probe-fire and
    // report events.
    let mut warm = ExecProgram::new();
    warm.push(sys::ALLOC, &[64, 0]);
    warm.push(sys::NOP, &[]);
    session.run_program(&warm, RUN_BUDGET).expect("warm program runs");
    let mut trigger = ExecProgram::new();
    trigger.push(sys::BUG_BASE, &[trigger_key("golden/bug")]);
    session.run_program(&trigger, RUN_BUDGET).expect("trigger program runs");
    assert!(!session.reports().is_empty(), "{}: seeded bug must fire", case.name);

    let events = session.take_trace();
    let san = match case.san {
        SanMode::SanCall => "san-call",
        SanMode::None => "none",
        _ => "other",
    };
    let mode = match case.mode {
        ProbeMode::CompileTime => "compile-time",
        ProbeMode::DynamicSource => "dynamic-source",
        ProbeMode::DynamicBinary => "dynamic-binary",
    };
    embsan::obs::trace_to_jsonl(&events, &[("case", case.name), ("san", san), ("probe", mode)])
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(format!("{name}.jsonl"))
}

/// Normalizes a trace for comparison: per-line trailing whitespace and
/// blank lines are insignificant (so goldens survive editors and
/// line-ending churn); everything else is byte-significant.
fn normalize(text: &str) -> Vec<String> {
    text.lines().map(|line| line.trim_end().to_string()).filter(|line| !line.is_empty()).collect()
}

fn check_case(name: &str) {
    let case = case_by_name(name);
    let actual = capture(case);
    let path = golden_path(case.name);
    if std::env::var_os("EMBSAN_BLESS").is_some() {
        fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        fs::write(&path, &actual).expect("write golden");
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden {}; regenerate with `EMBSAN_BLESS=1 cargo test --test trace_golden`",
            path.display()
        )
    });
    let actual_lines = normalize(&actual);
    let expected_lines = normalize(&expected);
    if actual_lines != expected_lines {
        let dump = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("{name}.actual.jsonl"));
        fs::create_dir_all(dump.parent().unwrap()).ok();
        fs::write(&dump, &actual).expect("dump actual trace");
        let first = actual_lines
            .iter()
            .zip(&expected_lines)
            .position(|(a, e)| a != e)
            .unwrap_or(actual_lines.len().min(expected_lines.len()));
        panic!(
            "golden trace mismatch for {name} at line {} ({} actual vs {} expected lines)\n\
             expected: {}\n\
             actual:   {}\n\
             actual trace dumped to {}; bless with `EMBSAN_BLESS=1 cargo test --test trace_golden`",
            first + 1,
            actual_lines.len(),
            expected_lines.len(),
            expected_lines.get(first).map_or("<end of trace>", String::as_str),
            actual_lines.get(first).map_or("<end of trace>", String::as_str),
            dump.display()
        );
    }
}

#[test]
fn golden_emblinux_embsan_c() {
    check_case("emblinux_embsan_c");
}

#[test]
fn golden_emblinux_embsan_d() {
    check_case("emblinux_embsan_d");
}

#[test]
fn golden_freertos_embsan_c() {
    check_case("freertos_embsan_c");
}

#[test]
fn golden_freertos_embsan_d() {
    check_case("freertos_embsan_d");
}

/// Guards against a vacuous suite: the captured stream must exercise every
/// major event family and carry a monotone non-decreasing clock.
#[test]
fn golden_traces_cover_all_event_families() {
    let text = capture(case_by_name("emblinux_embsan_c"));
    let mut lines = text.lines();
    let header = lines.next().expect("header line");
    assert!(header.contains("\"format\":\"embsan-trace-v1\""), "{header}");
    for family in ["block-translate", "shadow-check", "alloc-intercept", "report"] {
        assert!(
            text.lines().any(|l| l.contains(&format!("\"event\":\"{family}\""))),
            "missing event family {family} in:\n{text}"
        );
    }
    let clocks: Vec<u64> = text
        .lines()
        .skip(1)
        .map(|line| {
            let tail = line.split("\"clock\":").nth(1).expect("clock field");
            tail.split(|c: char| !c.is_ascii_digit()).next().unwrap().parse().unwrap()
        })
        .collect();
    assert!(!clocks.is_empty());
    assert!(clocks.windows(2).all(|w| w[0] <= w[1]), "clock must be monotone");
}

/// The same capture run twice is byte-identical — the repeatability
/// property the golden files rely on.
#[test]
fn captures_are_repeatable() {
    let case = case_by_name("freertos_embsan_d");
    assert_eq!(capture(case), capture(case));
}
