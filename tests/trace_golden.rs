//! Golden-trace lockdown of the observability layer: canonical
//! `embsan-trace-v1` JSONL captures for two firmwares × two sanitizer
//! configurations, compared line-by-line against checked-in goldens.
//!
//! The traces pin down the exact event stream — block translations, probe
//! fires, shadow checks, allocator intercepts, sanitizer reports, each
//! tagged with the lifetime-retired instruction clock — so any change to
//! event ordering, clock semantics or serialization shows up as a diff.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! EMBSAN_BLESS=1 cargo test --test trace_golden
//! ```
//!
//! On mismatch the actual capture is written to `CARGO_TARGET_TMPDIR` so
//! CI can upload it as an artifact next to the failing log.

use std::fs;
use std::path::PathBuf;

use embsan::core::probe::{probe, ProbeMode};
use embsan::core::reference_specs;
use embsan::core::session::Session;
use embsan::emu::profile::Arch;
use embsan::guestos::bugs::{trigger_key, BugKind, BugSpec};
use embsan::guestos::executor::{sys, ExecProgram};
use embsan::guestos::{os, BaseOs, BuildOptions, SanMode};
use embsan::obs::TraceConfig;

const READY_BUDGET: u64 = 200_000_000;
const RUN_BUDGET: u64 = 20_000_000;

struct GoldenCase {
    /// Golden file stem under `tests/golden/`.
    name: &'static str,
    base_os: BaseOs,
    san: SanMode,
    mode: ProbeMode,
    kind: BugKind,
}

/// Two firmwares × two sanitizer configurations: EMBSAN-C (compile-time
/// hypercall attach) and EMBSAN-D (dynamic spliced probes) on both the
/// embedded-Linux and FreeRTOS guests.
const CASES: &[GoldenCase] = &[
    GoldenCase {
        name: "emblinux_embsan_c",
        base_os: BaseOs::EmbeddedLinux,
        san: SanMode::SanCall,
        mode: ProbeMode::CompileTime,
        kind: BugKind::Uaf,
    },
    GoldenCase {
        name: "emblinux_embsan_d",
        base_os: BaseOs::EmbeddedLinux,
        san: SanMode::None,
        mode: ProbeMode::DynamicSource,
        kind: BugKind::Uaf,
    },
    GoldenCase {
        name: "freertos_embsan_c",
        base_os: BaseOs::FreeRtos,
        san: SanMode::SanCall,
        mode: ProbeMode::CompileTime,
        kind: BugKind::DoubleFree,
    },
    GoldenCase {
        name: "freertos_embsan_d",
        base_os: BaseOs::FreeRtos,
        san: SanMode::None,
        mode: ProbeMode::DynamicSource,
        kind: BugKind::DoubleFree,
    },
];

fn case_by_name(name: &str) -> &'static GoldenCase {
    CASES.iter().find(|c| c.name == name).expect("known case")
}

/// Runs the case's fixed workload with full tracing and serializes the
/// event stream as `embsan-trace-v1` JSONL.
fn capture(case: &GoldenCase) -> String {
    let bug = BugSpec::new("golden/bug", case.kind);
    let opts = BuildOptions::new(Arch::Armv).san(case.san);
    let bugs = std::slice::from_ref(&bug);
    let image = match case.base_os {
        BaseOs::EmbeddedLinux => os::emblinux::build(&opts, bugs),
        BaseOs::FreeRtos => os::freertos::build(&opts, bugs),
        BaseOs::LiteOs => os::liteos::build(&opts, bugs),
        BaseOs::VxWorks => os::vxworks::build(&opts, bugs),
    }
    .expect("firmware builds");
    let specs = reference_specs().expect("reference specs");
    let artifacts = probe(&image, case.mode, None).expect("probe succeeds");
    let mut session = Session::new(&image, &specs, &artifacts).expect("session");
    session.run_to_ready(READY_BUDGET).expect("ready");

    // Tracing goes live only after boot: the golden stream is the
    // steady-state behaviour, not the (much longer) boot transcript.
    session.enable_tracing(TraceConfig::full());

    // Fixed workload: allocator traffic, memory traffic over it, then the
    // seeded bug — covers alloc-intercept, shadow-check, probe-fire and
    // report events.
    let mut warm = ExecProgram::new();
    warm.push(sys::ALLOC, &[64, 0]);
    warm.push(sys::NOP, &[]);
    session.run_program(&warm, RUN_BUDGET).expect("warm program runs");
    let mut trigger = ExecProgram::new();
    trigger.push(sys::BUG_BASE, &[trigger_key("golden/bug")]);
    session.run_program(&trigger, RUN_BUDGET).expect("trigger program runs");
    assert!(!session.reports().is_empty(), "{}: seeded bug must fire", case.name);

    let events = session.take_trace();
    let san = match case.san {
        SanMode::SanCall => "san-call",
        SanMode::None => "none",
        _ => "other",
    };
    let mode = match case.mode {
        ProbeMode::CompileTime => "compile-time",
        ProbeMode::DynamicSource => "dynamic-source",
        ProbeMode::DynamicBinary => "dynamic-binary",
    };
    embsan::obs::trace_to_jsonl(&events, &[("case", case.name), ("san", san), ("probe", mode)])
}

/// Captures the interrupt-rich FreeRTOS build's event stream: GPIO-edge
/// and alarm interrupts serviced by the secondary vCPU's ISR while the
/// `irq_load` mainloop races it over the shared counter. The trace is
/// focused on the interrupt surface — irq-raised / irq-acked /
/// deferred-call plus sanitizer reports — each on the retired-instruction
/// clock, locking delivery order, acknowledgement pairing and the
/// ISR/mainloop data-race reports.
fn capture_irq() -> String {
    let opts = BuildOptions::new(Arch::Armv).cpus(2).irq(true);
    let image = os::freertos::build(&opts, &[]).expect("irq firmware builds");
    let specs = reference_specs().expect("reference specs");
    let artifacts = probe(&image, ProbeMode::DynamicSource, None).expect("probe succeeds");
    let mut session = Session::with_cpus(&image, &specs, &artifacts, 2).expect("session");
    session.run_to_ready(READY_BUDGET).expect("ready");

    session.enable_tracing(TraceConfig {
        irq: true,
        reports: true,
        // Everything else off: the golden locks the interrupt surface, not
        // the (much denser) probe/check streams already pinned above.
        cache: false,
        probes: false,
        checks: false,
        allocs: false,
        engine: false,
        capacity: TraceConfig::DEFAULT_CAPACITY,
    });

    // Fixed workload: arm the GPIO pattern generator (period 96, both
    // edges) with an alarm deferred call, then two mainloop bursts over
    // the shared counter.
    let mut program = ExecProgram::new();
    program.push(sys::IRQ_SETUP, &[96, 1, 300]);
    program.push(sys::IRQ_LOAD, &[200]);
    program.push(sys::IRQ_LOAD, &[200]);
    session.run_program(&program, 2_000_000).expect("irq program runs");

    let events = session.take_trace();
    embsan::obs::trace_to_jsonl(
        &events,
        &[("case", "freertos_irq"), ("san", "none"), ("probe", "dynamic-source")],
    )
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(format!("{name}.jsonl"))
}

/// Normalizes a trace for comparison: per-line trailing whitespace and
/// blank lines are insignificant (so goldens survive editors and
/// line-ending churn); everything else is byte-significant.
fn normalize(text: &str) -> Vec<String> {
    text.lines().map(|line| line.trim_end().to_string()).filter(|line| !line.is_empty()).collect()
}

fn check_case(name: &str) {
    check_golden(name, capture(case_by_name(name)));
}

fn check_golden(name: &str, actual: String) {
    let path = golden_path(name);
    if std::env::var_os("EMBSAN_BLESS").is_some() {
        fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        fs::write(&path, &actual).expect("write golden");
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden {}; regenerate with `EMBSAN_BLESS=1 cargo test --test trace_golden`",
            path.display()
        )
    });
    let actual_lines = normalize(&actual);
    let expected_lines = normalize(&expected);
    if actual_lines != expected_lines {
        let dump = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("{name}.actual.jsonl"));
        fs::create_dir_all(dump.parent().unwrap()).ok();
        fs::write(&dump, &actual).expect("dump actual trace");
        let first = actual_lines
            .iter()
            .zip(&expected_lines)
            .position(|(a, e)| a != e)
            .unwrap_or(actual_lines.len().min(expected_lines.len()));
        panic!(
            "golden trace mismatch for {name} at line {} ({} actual vs {} expected lines)\n\
             expected: {}\n\
             actual:   {}\n\
             actual trace dumped to {}; bless with `EMBSAN_BLESS=1 cargo test --test trace_golden`",
            first + 1,
            actual_lines.len(),
            expected_lines.len(),
            expected_lines.get(first).map_or("<end of trace>", String::as_str),
            actual_lines.get(first).map_or("<end of trace>", String::as_str),
            dump.display()
        );
    }
}

#[test]
fn golden_emblinux_embsan_c() {
    check_case("emblinux_embsan_c");
}

#[test]
fn golden_emblinux_embsan_d() {
    check_case("emblinux_embsan_d");
}

#[test]
fn golden_freertos_embsan_c() {
    check_case("freertos_embsan_c");
}

#[test]
fn golden_freertos_embsan_d() {
    check_case("freertos_embsan_d");
}

/// Guards against a vacuous suite: the captured stream must exercise every
/// major event family and carry a monotone non-decreasing clock.
#[test]
fn golden_traces_cover_all_event_families() {
    let text = capture(case_by_name("emblinux_embsan_c"));
    let mut lines = text.lines();
    let header = lines.next().expect("header line");
    assert!(header.contains("\"format\":\"embsan-trace-v1\""), "{header}");
    for family in ["block-translate", "shadow-check", "alloc-intercept", "report"] {
        assert!(
            text.lines().any(|l| l.contains(&format!("\"event\":\"{family}\""))),
            "missing event family {family} in:\n{text}"
        );
    }
    let clocks: Vec<u64> = text
        .lines()
        .skip(1)
        .map(|line| {
            let tail = line.split("\"clock\":").nth(1).expect("clock field");
            tail.split(|c: char| !c.is_ascii_digit()).next().unwrap().parse().unwrap()
        })
        .collect();
    assert!(!clocks.is_empty());
    assert!(clocks.windows(2).all(|w| w[0] <= w[1]), "clock must be monotone");
}

/// The same capture run twice is byte-identical — the repeatability
/// property the golden files rely on.
#[test]
fn captures_are_repeatable() {
    let case = case_by_name("freertos_embsan_d");
    assert_eq!(capture(case), capture(case));
}

#[test]
fn golden_freertos_irq() {
    check_golden("freertos_irq", capture_irq());
}

/// Guards the IRQ golden against vacuity: the capture must contain GPIO
/// raises, acknowledgements, an alarm deferred call and the ISR/mainloop
/// data-race reports, all on a monotone retired-instruction clock.
#[test]
fn irq_golden_covers_the_interrupt_surface() {
    let text = capture_irq();
    for family in ["irq-raised", "irq-acked", "deferred-call", "report"] {
        assert!(
            text.lines().any(|l| l.contains(&format!("\"event\":\"{family}\""))),
            "missing event family {family} in:\n{text}"
        );
    }
    assert!(text.contains("data-race"), "the ISR/mainloop race must be reported");
    let clocks: Vec<u64> = text
        .lines()
        .skip(1)
        .map(|line| {
            let tail = line.split("\"clock\":").nth(1).expect("clock field");
            tail.split(|c: char| !c.is_ascii_digit()).next().unwrap().parse().unwrap()
        })
        .collect();
    assert!(clocks.windows(2).all(|w| w[0] <= w[1]), "clock must be monotone");
    // IRQ captures are repeatable, like every other golden.
    assert_eq!(text, capture_irq());
}

/// Interrupt delivery order is deterministic under CoW-forked snapshots:
/// a worker session that adopts another worker's base image (sharing one
/// copy-on-write RAM allocation) replays the exact same irq-raised /
/// irq-acked / deferred-call stream, clock included, for arbitrary
/// interrupt programs. Gated like `tests/property.rs`: the external
/// `proptest` crate cannot be fetched in offline builds.
#[cfg(feature = "proptest")]
mod irq_cow_determinism {
    use proptest::prelude::*;

    use embsan::fuzz::campaign::{prepare_session, CampaignConfig};
    use embsan::guestos::executor::{sys, ExecProgram};
    use embsan::guestos::firmware_by_name;
    use embsan::obs::TraceConfig;

    /// The interrupt-only event stream of one program on a fresh session,
    /// optionally CoW-forked from `base`.
    fn irq_stream(
        program: &ExecProgram,
        base: Option<&std::sync::Arc<embsan::core::session::BaseImage>>,
    ) -> String {
        let spec = firmware_by_name("InfiniTime-sensor").unwrap();
        let (mut session, _) = prepare_session(spec, &CampaignConfig::default()).unwrap();
        if let Some(base) = base {
            assert!(session.adopt_base(base).unwrap(), "hash-equal base must be adopted");
        }
        session.enable_tracing(TraceConfig::deterministic());
        let mark = session.trace_mark();
        session.run_program(program, 2_000_000).expect("program runs");
        let events: Vec<_> = session
            .drain_trace(mark)
            .into_iter()
            .filter(|e| matches!(e.kind.name(), "irq-raised" | "irq-acked" | "deferred-call"))
            .collect();
        embsan::obs::trace_to_jsonl(&events, &[])
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        #[test]
        fn irq_delivery_order_survives_cow_forking(
            period in 64u32..256,
            both_edges in 0u32..2,
            deferred in prop_oneof![Just(0u32), 200u32..1000],
            loads in prop::collection::vec(50u32..400, 1..4),
        ) {
            let mut program = ExecProgram::new();
            program.push(sys::IRQ_SETUP, &[period, both_edges, deferred]);
            for n in &loads {
                program.push(sys::IRQ_LOAD, &[*n]);
            }
            let spec = firmware_by_name("InfiniTime-sensor").unwrap();
            let (leader, _) = prepare_session(spec, &CampaignConfig::default()).unwrap();
            let base = std::sync::Arc::clone(leader.base().expect("leader has a base"));
            let private = irq_stream(&program, None);
            let forked = irq_stream(&program, Some(&base));
            prop_assert_eq!(&private, &forked, "CoW fork must not reorder interrupts");
            prop_assert!(
                private.lines().count() > 1,
                "interrupt program must raise at least one irq"
            );
        }
    }
}
