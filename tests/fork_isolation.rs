//! Fork-isolation: the copy-on-write snapshot contract.
//!
//! Two workers forked from one base image must be able to mutate RAM —
//! including the same pages — without any write-through to the shared
//! base, each worker's incremental footprint must be exactly its dirty
//! pages, and the CoW restore path must be byte-equivalent to the
//! materializing (non-CoW) restore it replaced.

use std::sync::Arc;

use embsan::emu::prelude::*;
use embsan::fuzz::campaign::{prepare_session, CampaignConfig};
use embsan::fuzz::{descriptions_for, Fuzzer, FuzzerConfig, Strategy};
use embsan::guestos::firmware_by_name;

const PAGE: u32 = 4096;

/// A machine whose guest increments a RAM counter forever (enough activity
/// to make snapshots non-trivial), with 8 pages of RAM to fork across.
fn counting_machine() -> Machine {
    let profile = ArchProfile::armv();
    let ram = profile.ram_base;
    let insns = [
        Insn::Lui { rd: Reg::R1, imm: ram },
        Insn::Lw { rd: Reg::R3, rs1: Reg::R1, imm: 0 },
        Insn::Addi { rd: Reg::R3, rs1: Reg::R3, imm: 1 },
        Insn::Sw { rs2: Reg::R3, rs1: Reg::R1, imm: 0 },
        Insn::Jal { rd: Reg::R0, offset: -12 },
    ];
    let mut text = Vec::new();
    for insn in &insns {
        text.extend_from_slice(&insn.encode().to_bytes(profile.endian));
    }
    Machine::builder(profile).rom(profile.rom_base, &text).ram(ram, 8 * PAGE).build().unwrap()
}

/// Two machines forked from one snapshot mutate disjoint and overlapping
/// pages; neither write reaches the shared base or the other fork, each
/// fork's overlay is exactly its dirty pages, and restore returns both to
/// the base image.
#[test]
fn forked_workers_mutate_without_write_through() {
    let mut a = counting_machine();
    a.run(&mut NullHook, 100).unwrap();
    let snap = a.snapshot();
    let base_before: Vec<u8> = snap.ram_base().as_ref().clone();

    // Fork both machines from the same base allocation.
    let mut b = counting_machine();
    a.restore(&snap).unwrap();
    b.restore(&snap).unwrap();
    for m in [&a, &b] {
        assert!(m.bus().ram_shares_base(snap.ram_base()), "fork shares the base Arc");
    }
    assert_eq!(Arc::strong_count(snap.ram_base()), 3, "snapshot + two forks, one allocation");

    let ram = a.bus().ram_range().0;
    // Disjoint pages: A writes page 1, B writes page 2.
    a.write_mem(ram + PAGE, 4, 0xAAAA_0001).unwrap();
    b.write_mem(ram + 2 * PAGE, 4, 0xBBBB_0002).unwrap();
    // Overlapping page 3: different values at the same address.
    a.write_mem(ram + 3 * PAGE, 4, 0xAAAA_0003).unwrap();
    b.write_mem(ram + 3 * PAGE, 4, 0xBBBB_0003).unwrap();

    // Each fork sees its own writes...
    assert_eq!(a.read_mem(ram + PAGE, 4).unwrap(), 0xAAAA_0001);
    assert_eq!(a.read_mem(ram + 3 * PAGE, 4).unwrap(), 0xAAAA_0003);
    assert_eq!(b.read_mem(ram + 2 * PAGE, 4).unwrap(), 0xBBBB_0002);
    assert_eq!(b.read_mem(ram + 3 * PAGE, 4).unwrap(), 0xBBBB_0003);
    // ...and base values everywhere the *other* fork wrote.
    assert_eq!(a.read_mem(ram + 2 * PAGE, 4).unwrap(), 0);
    assert_eq!(b.read_mem(ram + PAGE, 4).unwrap(), 0);

    // No write-through: the shared base allocation is untouched.
    assert_eq!(snap.ram_base().as_ref(), &base_before);

    // Incremental footprint is exactly the dirty pages: two each.
    assert_eq!(a.ram_overlay_bytes(), 2 * PAGE as usize);
    assert_eq!(b.ram_overlay_bytes(), 2 * PAGE as usize);

    // Restore-to-base: both forks return to the identical image, O(dirty).
    a.restore(&snap).unwrap();
    b.restore(&snap).unwrap();
    assert_eq!(a.snapshot(), snap);
    assert_eq!(b.snapshot(), snap);
    assert_eq!(a.ram_overlay_bytes(), 0, "restore frees the overlay");
    assert_eq!(b.ram_overlay_bytes(), 0);
}

/// The CoW restore path produces a machine state byte-identical to the
/// pre-CoW materializing restore, including after guest execution dirtied
/// state beyond what host writes touch.
#[test]
fn cow_restore_equals_materialized_restore() {
    let mut cow = counting_machine();
    let mut flat = counting_machine();
    cow.run(&mut NullHook, 100).unwrap();
    flat.run(&mut NullHook, 100).unwrap();
    let snap = cow.snapshot();

    for round in 0..3u64 {
        // Dirty both machines identically through guest stores + host writes.
        for m in [&mut cow, &mut flat] {
            m.run(&mut NullHook, 60 + round).unwrap();
            let ram = m.bus().ram_range().0;
            m.write_mem(ram + 5 * PAGE, 4, 0xDEAD_0000 + round as u32).unwrap();
        }
        cow.restore(&snap).unwrap();
        flat.restore_materialized(&snap).unwrap();
        assert!(cow.bus().ram_is_forked());
        assert!(!flat.bus().ram_is_forked());
        assert_eq!(cow.snapshot(), flat.snapshot(), "round {round}");
        assert_eq!(cow.snapshot(), snap, "round {round}");
        // Re-execution from either restore is identical.
        let ea = cow.run(&mut NullHook, 200).unwrap();
        let eb = flat.run(&mut NullHook, 200).unwrap();
        assert_eq!(ea, eb);
        assert_eq!(cow.snapshot(), flat.snapshot(), "round {round} post-run");
        cow.restore(&snap).unwrap();
        flat.restore_materialized(&snap).unwrap();
    }
}

/// Session-level sharing: a second worker adopting the first worker's
/// [`embsan::core::session::BaseImage`] drops its private copy, shares the
/// one allocation, starts with a zero-byte overlay — and fuzzes to exactly
/// the same findings, coverage and corpus as the worker that kept its
/// private base.
#[test]
fn adopted_base_is_shared_and_fuzzes_identically() {
    let spec = firmware_by_name("TP-Link WDR-7660").unwrap();
    let config = CampaignConfig::default();
    let (mut own, dict_own) = prepare_session(spec, &config).unwrap();
    let (mut adopted, dict_adopted) = prepare_session(spec, &config).unwrap();

    // Deterministic preparation: both workers independently computed the
    // same content hash, so the leader's base is adoptable.
    assert_eq!(own.base_hash(), adopted.base_hash());
    let base = Arc::clone(own.base().unwrap());
    let count_before = Arc::strong_count(&base);
    assert!(adopted.adopt_base(&base).unwrap(), "hash-equal base must be adopted");
    assert_eq!(Arc::strong_count(&base), count_before + 1, "adopter shares the allocation");
    assert_eq!(adopted.base_hash(), Some(base.hash()));
    assert_eq!(adopted.overlay_bytes(), 0, "fresh fork starts with an empty overlay");
    assert!(adopted.base_bytes() > 0);

    // Identical campaigns over the private and the adopted base.
    let observe = |session: &mut embsan::core::session::Session, dict| {
        let mut fuzzer = Fuzzer::new(
            session,
            descriptions_for(spec),
            dict,
            FuzzerConfig::new(Strategy::Tardis, 42),
        );
        fuzzer.run(40).unwrap();
        let stats = fuzzer.stats();
        let findings: Vec<_> = fuzzer
            .findings()
            .iter()
            .map(|f| (f.report.class.to_string(), f.report.pc, f.program.clone()))
            .collect();
        (stats, findings)
    };
    let private_run = observe(&mut own, dict_own);
    let adopted_run = observe(&mut adopted, dict_adopted);
    assert_eq!(private_run, adopted_run, "adopting a base must not change results");

    // The shared base survived both campaigns unmutated.
    assert_eq!(own.base_hash(), Some(base.hash()));
    assert_eq!(adopted.base_hash(), Some(base.hash()));
    assert!(Arc::strong_count(&base) >= 3);
}

/// Adoption is hash-guarded: a base prepared from different firmware is
/// rejected and the worker keeps its private copy.
#[test]
fn adopt_base_rejects_mismatched_image() {
    let config = CampaignConfig::default();
    let (own, _) = prepare_session(firmware_by_name("TP-Link WDR-7660").unwrap(), &config).unwrap();
    let (mut other, _) =
        prepare_session(firmware_by_name("OpenHarmony-stm32mp1").unwrap(), &config).unwrap();
    let foreign = Arc::clone(own.base().unwrap());
    let own_hash = other.base_hash();
    assert!(!other.adopt_base(&foreign).unwrap(), "mismatched hash must be refused");
    assert_eq!(other.base_hash(), own_hash, "private base is kept on refusal");
}
