//! Parallel-engine determinism: an N-worker campaign must report exactly
//! the same findings, corpus and coverage as the 1-worker run — the
//! contract that makes `--workers` safe to use for real campaigns (any
//! scheduling dependence would make parallel results unreproducible).

use embsan::fuzz::campaign::CampaignConfig;
use embsan::fuzz::parallel::{run_parallel_campaign, ParallelConfig, ParallelOutcome};
use embsan::guestos::executor::ExecProgram;
use embsan::guestos::firmware_by_name;

fn config(workers: usize, seed: u64, iterations: u64) -> ParallelConfig {
    ParallelConfig {
        workers,
        epoch_len: 40,
        chunk: 4,
        trace: false,
        campaign: CampaignConfig { iterations, seed, ..CampaignConfig::default() },
    }
}

/// Everything observable about a run, in canonical order.
#[derive(Debug, PartialEq, Eq)]
struct Observed {
    findings: Vec<(String, u32, ExecProgram)>,
    corpus: Vec<ExecProgram>,
    coverage: usize,
    execs: u64,
    found: Vec<usize>,
}

fn observe(firmware: &str, workers: usize, seed: u64, iterations: u64) -> Observed {
    let spec = firmware_by_name(firmware).unwrap();
    let (result, outcome): (_, ParallelOutcome) =
        run_parallel_campaign(spec, &config(workers, seed, iterations)).unwrap();
    Observed {
        findings: outcome
            .findings
            .iter()
            .map(|f| (f.report.class.to_string(), f.report.pc, f.program.clone()))
            .collect(),
        corpus: outcome.corpus,
        coverage: outcome.stats.coverage,
        execs: outcome.stats.execs,
        found: result.found.iter().map(|f| f.latent_index).collect(),
    }
}

/// The tentpole property across two firmwares and two seeds: N ∈ {2, 4}
/// equals N = 1 in findings (including minimized reproducers), corpus
/// contents and coverage.
#[test]
fn worker_count_does_not_change_results() {
    for (firmware, iterations) in [("TP-Link WDR-7660", 120), ("OpenHarmony-stm32mp1", 80)] {
        for seed in [17u64, 99] {
            let one = observe(firmware, 1, seed, iterations);
            assert_eq!(one.execs, iterations, "{firmware} seed {seed}");
            for workers in [2usize, 4] {
                let many = observe(firmware, workers, seed, iterations);
                assert_eq!(one, many, "{firmware} seed {seed} x{workers}");
            }
        }
    }
}

/// Repeatability: the same parallel configuration run twice is identical
/// (no hidden dependence on thread timing).
#[test]
fn parallel_runs_are_repeatable() {
    let a = observe("TP-Link WDR-7660", 2, 23, 120);
    let b = observe("TP-Link WDR-7660", 2, 23, 120);
    assert_eq!(a, b);
}

/// Observability extension of the tentpole property: with tracing on, the
/// merged trace JSONL and the deterministic metrics snapshot are
/// byte-identical for 1, 2 and 4 workers — and tracing itself never
/// perturbs findings, corpus or coverage.
#[test]
fn traces_and_metrics_identical_across_worker_counts() {
    let spec = firmware_by_name("TP-Link WDR-7660").unwrap();
    let untraced = observe("TP-Link WDR-7660", 1, 17, 120);
    let meta = [("engine", "parallel"), ("seed", "17"), ("iterations", "120")];
    let mut baseline: Option<(String, String)> = None;
    for workers in [1usize, 2, 4] {
        let mut cfg = config(workers, 17, 120);
        cfg.trace = true;
        let (_, outcome): (_, ParallelOutcome) = run_parallel_campaign(spec, &cfg).unwrap();

        // Tracing must be observationally neutral.
        assert_eq!(outcome.stats.coverage, untraced.coverage, "coverage at x{workers}");
        assert_eq!(outcome.corpus, untraced.corpus, "corpus at x{workers}");
        assert_eq!(outcome.findings.len(), untraced.findings.len(), "findings at x{workers}");

        let trace = outcome.trace.as_ref().expect("tracing was enabled");
        assert!(trace.event_count() > 0, "trace empty at x{workers}");
        let jsonl = trace.to_jsonl(&meta);
        let metrics = outcome.stats.metrics_snapshot().to_json(false);
        match &baseline {
            None => baseline = Some((jsonl, metrics)),
            Some((trace_1w, metrics_1w)) => {
                assert_eq!(trace_1w, &jsonl, "merged trace differs at x{workers}");
                assert_eq!(metrics_1w, &metrics, "metric snapshot differs at x{workers}");
            }
        }
    }
}

/// A firmware that actually yields findings at small budgets must yield
/// the *same* findings in parallel — guards against the trivial pass where
/// every run finds nothing.
#[test]
fn determinism_check_is_not_vacuous() {
    // The seeds below reach coverage quickly; corpus must be non-empty so
    // the snapshot/merge machinery is genuinely exercised.
    let one = observe("TP-Link WDR-7660", 1, 17, 120);
    assert!(!one.corpus.is_empty(), "corpus empty — test would be vacuous");
    assert!(one.coverage > 0);
}
