//! Parallel-engine determinism: an N-worker campaign must report exactly
//! the same findings, corpus and coverage as the 1-worker run — the
//! contract that makes `--workers` safe to use for real campaigns (any
//! scheduling dependence would make parallel results unreproducible).

use embsan::fuzz::campaign::CampaignConfig;
use embsan::fuzz::parallel::{run_parallel_campaign, ParallelConfig, ParallelOutcome};
use embsan::guestos::executor::ExecProgram;
use embsan::guestos::firmware_by_name;

fn config(workers: usize, seed: u64, iterations: u64) -> ParallelConfig {
    ParallelConfig {
        workers,
        epoch_len: 40,
        chunk: 4,
        campaign: CampaignConfig { iterations, seed, ..CampaignConfig::default() },
    }
}

/// Everything observable about a run, in canonical order.
#[derive(Debug, PartialEq, Eq)]
struct Observed {
    findings: Vec<(String, u32, ExecProgram)>,
    corpus: Vec<ExecProgram>,
    coverage: usize,
    execs: u64,
    found: Vec<usize>,
}

fn observe(firmware: &str, workers: usize, seed: u64, iterations: u64) -> Observed {
    let spec = firmware_by_name(firmware).unwrap();
    let (result, outcome): (_, ParallelOutcome) =
        run_parallel_campaign(spec, &config(workers, seed, iterations)).unwrap();
    Observed {
        findings: outcome
            .findings
            .iter()
            .map(|f| (f.report.class.to_string(), f.report.pc, f.program.clone()))
            .collect(),
        corpus: outcome.corpus,
        coverage: outcome.stats.coverage,
        execs: outcome.stats.execs,
        found: result.found.iter().map(|f| f.latent_index).collect(),
    }
}

/// The tentpole property across two firmwares and two seeds: N ∈ {2, 4}
/// equals N = 1 in findings (including minimized reproducers), corpus
/// contents and coverage.
#[test]
fn worker_count_does_not_change_results() {
    for (firmware, iterations) in [("TP-Link WDR-7660", 120), ("OpenHarmony-stm32mp1", 80)] {
        for seed in [17u64, 99] {
            let one = observe(firmware, 1, seed, iterations);
            assert_eq!(one.execs, iterations, "{firmware} seed {seed}");
            for workers in [2usize, 4] {
                let many = observe(firmware, workers, seed, iterations);
                assert_eq!(one, many, "{firmware} seed {seed} x{workers}");
            }
        }
    }
}

/// Repeatability: the same parallel configuration run twice is identical
/// (no hidden dependence on thread timing).
#[test]
fn parallel_runs_are_repeatable() {
    let a = observe("TP-Link WDR-7660", 2, 23, 120);
    let b = observe("TP-Link WDR-7660", 2, 23, 120);
    assert_eq!(a, b);
}

/// A firmware that actually yields findings at small budgets must yield
/// the *same* findings in parallel — guards against the trivial pass where
/// every run finds nothing.
#[test]
fn determinism_check_is_not_vacuous() {
    // The seeds below reach coverage quickly; corpus must be non-empty so
    // the snapshot/merge machinery is genuinely exercised.
    let one = observe("TP-Link WDR-7660", 1, 17, 120);
    assert!(!one.corpus.is_empty(), "corpus empty — test would be vacuous");
    assert!(one.coverage > 0);
}
