//! Property-based tests (proptest) over the core data structures and
//! invariants: instruction codec, image serialization, the executor wire
//! format, shadow-memory soundness, and the DSL merge rules.
//!
//! Gated behind the off-by-default `proptest` feature: the external
//! `proptest` crate cannot be fetched in offline builds. To run these,
//! restore `proptest` as a dev-dependency and pass `--features proptest`.
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use embsan::core::runtime::kasan::{KasanConfig, KasanEngine};
use embsan::core::runtime::shadow::{code, ShadowMemory};
use embsan::dsl::{merge, ArgSpec, ArgType, InterceptPoint, PointKind, SanitizerSpec};
use embsan::emu::isa::{Insn, Reg, Word};
use embsan::guestos::executor::{ExecCall, ExecProgram};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::from_index)
}

fn arb_insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs1, rs2)| Insn::Add { rd, rs1, rs2 }),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs1, rs2)| Insn::Mulh { rd, rs1, rs2 }),
        (arb_reg(), arb_reg(), -2048i32..2048).prop_map(|(rd, rs1, imm)| Insn::Addi {
            rd,
            rs1,
            imm
        }),
        (arb_reg(), arb_reg(), 0i32..4096).prop_map(|(rd, rs1, imm)| Insn::Ori { rd, rs1, imm }),
        (arb_reg(), arb_reg(), 0u8..32).prop_map(|(rd, rs1, shamt)| Insn::Slli { rd, rs1, shamt }),
        (arb_reg(), 0u32..(1 << 20)).prop_map(|(rd, imm)| Insn::Lui { rd, imm: imm << 12 }),
        (arb_reg(), arb_reg(), -2048i32..2048).prop_map(|(rd, rs1, imm)| Insn::Lw { rd, rs1, imm }),
        (arb_reg(), arb_reg(), -2048i32..2048).prop_map(|(rs2, rs1, imm)| Insn::Sb {
            rs2,
            rs1,
            imm
        }),
        (arb_reg(), arb_reg(), -2048i32..2048).prop_map(|(rs1, rs2, off)| Insn::Beq {
            rs1,
            rs2,
            offset: off * 4
        }),
        (arb_reg(), -(1i32 << 19)..(1 << 19))
            .prop_map(|(rd, off)| Insn::Jal { rd, offset: off * 4 }),
        (0u32..(1 << 20)).prop_map(|nr| Insn::Hyper { nr }),
        (0u16..u16::MAX).prop_map(|code| Insn::Halt { code }),
        Just(Insn::Wfi),
        Just(Insn::Eret),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every encodable instruction decodes back to itself, and its byte
    /// serialization round-trips in both endiannesses.
    #[test]
    fn insn_codec_roundtrip(insn in arb_insn()) {
        let word = insn.encode();
        prop_assert_eq!(Insn::decode(word), Ok(insn));
        for endian in [embsan::emu::Endian::Little, embsan::emu::Endian::Big] {
            let bytes = word.to_bytes(endian);
            prop_assert_eq!(Word::from_bytes(bytes, endian), word);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The executor wire format round-trips arbitrary well-formed programs.
    #[test]
    fn exec_program_roundtrip(
        calls in prop::collection::vec(
            (0u8..64, prop::collection::vec(any::<u32>(), 0..=4)),
            0..32
        )
    ) {
        let program = ExecProgram {
            calls: calls
                .into_iter()
                .map(|(nr, args)| ExecCall { nr, args })
                .collect(),
        };
        prop_assert_eq!(ExecProgram::decode(&program.encode()), Some(program));
    }

    /// Decoding never panics on arbitrary bytes (it may reject them).
    #[test]
    fn exec_program_decode_total(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = ExecProgram::decode(&bytes);
    }
}

/// Abstract allocator events over a shadow memory.
#[derive(Debug, Clone)]
enum AllocEvent {
    Alloc { slot: usize, size: u32 },
    Free { slot: usize },
}

fn arb_events() -> impl Strategy<Value = Vec<AllocEvent>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..6, 1u32..200).prop_map(|(slot, size)| AllocEvent::Alloc { slot, size }),
            (0usize..6).prop_map(|slot| AllocEvent::Free { slot }),
        ],
        0..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Shadow soundness under arbitrary allocator histories: every byte of
    /// every *live* object is addressable; the first byte past a live
    /// object is not; freed objects are poisoned. This is the sanitizer's
    /// no-false-positive / no-false-negative core invariant.
    #[test]
    fn shadow_tracks_arbitrary_alloc_histories(events in arb_events()) {
        let ram_base = 0x10_0000u32;
        let heap_base = 0x10_1000u32;
        let mut shadow = ShadowMemory::new(ram_base, 0x4_0000);
        shadow.poison(heap_base, ram_base + 0x4_0000, code::HEAP);
        let mut engine = KasanEngine::new(KasanConfig::default());

        // A slab-like allocator model: slots at fixed, disjoint addresses
        // with an 8-byte header gap (as all the guest allocators keep).
        let slot_addr = |slot: usize| heap_base + (slot as u32) * 0x200 + 8;
        let mut live: [Option<u32>; 6] = [None; 6];

        for event in events {
            match event {
                AllocEvent::Alloc { slot, size } => {
                    // (Re)allocate the slot; a still-live slot is freed
                    // first, as a real freelist would.
                    if live[slot].is_some() {
                        let report =
                            engine.on_free(&mut shadow, slot_addr(slot), 0x100, 0);
                        prop_assert!(report.is_none());
                    }
                    engine.on_alloc(&mut shadow, slot_addr(slot), size, 0x200);
                    live[slot] = Some(size);
                }
                AllocEvent::Free { slot } => {
                    if live[slot].take().is_some() {
                        let report =
                            engine.on_free(&mut shadow, slot_addr(slot), 0x300, 0);
                        prop_assert!(report.is_none(), "live free must not report");
                    }
                }
            }
            // Invariants over all slots after every event.
            for (slot, state) in live.iter().enumerate() {
                let addr = slot_addr(slot);
                match state {
                    Some(size) => {
                        prop_assert!(
                            shadow.check(addr, 1).is_ok(),
                            "first byte of live object"
                        );
                        prop_assert!(
                            shadow.check(addr + size - 1, 1).is_ok(),
                            "last byte of live object (size {size})"
                        );
                        prop_assert!(
                            shadow.check(addr + size, 1).is_err(),
                            "one past a live object of size {size}"
                        );
                    }
                    None => {
                        prop_assert!(
                            shadow.check(addr, 1).is_err(),
                            "freed/unallocated slot is poisoned"
                        );
                    }
                }
            }
        }
    }

    /// Double frees are always reported, regardless of history.
    #[test]
    fn double_free_always_reported(size in 1u32..200) {
        let mut shadow = ShadowMemory::new(0x10_0000, 0x1_0000);
        shadow.poison(0x10_1000, 0x10_8000, code::HEAP);
        let mut engine = KasanEngine::new(KasanConfig::default());
        engine.on_alloc(&mut shadow, 0x10_1008, size, 0x1);
        prop_assert!(engine.on_free(&mut shadow, 0x10_1008, 0x2, 0).is_none());
        let report = engine.on_free(&mut shadow, 0x10_1008, 0x3, 0);
        prop_assert!(report.is_some());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Snapshot fidelity: from any reachable machine state,
    /// `restore(snapshot())` followed by `snapshot()` is the identity. The
    /// supervisor's wedge recovery and every fuzzing reset rely on this.
    #[test]
    fn snapshot_roundtrip_is_identity(
        boot_budget in 1_000u64..200_000,
        perturb in 100u64..20_000,
        calls in prop::collection::vec((0u8..24, prop::collection::vec(any::<u32>(), 0..3)), 0..3)
    ) {
        let opts = embsan::guestos::BuildOptions::new(embsan::emu::profile::Arch::Armv);
        let image = embsan::guestos::os::emblinux::build(&opts, &[]).unwrap();
        let mut machine = image.boot_machine(1).unwrap();
        machine.run(&mut embsan::emu::NullHook, boot_budget).unwrap();
        let mut program = ExecProgram::new();
        for (nr, args) in calls {
            program.push(nr, &args);
        }
        machine.bus_mut().devices.mailbox.host_load(&program.encode());
        machine.run(&mut embsan::emu::NullHook, perturb).unwrap();

        let first = machine.snapshot();
        machine.run(&mut embsan::emu::NullHook, perturb).unwrap();
        machine.restore(&first).unwrap();
        prop_assert_eq!(machine.snapshot(), first);
    }

    /// Restoring into a machine with a different vCPU count is a typed
    /// mismatch error for every count pair, and never mutates the target.
    #[test]
    fn snapshot_vcpu_mismatch_is_typed(a in 1usize..4, b in 1usize..4) {
        prop_assume!(a != b);
        let opts = embsan::guestos::BuildOptions::new(embsan::emu::profile::Arch::Armv);
        let image = embsan::guestos::os::emblinux::build(&opts, &[]).unwrap();
        let source = image.boot_machine(a).unwrap();
        let mut target = image.boot_machine(b).unwrap();
        let before = target.snapshot();
        let err = target.restore(&source.snapshot()).unwrap_err();
        prop_assert!(matches!(err, embsan::emu::error::EmuError::SnapshotMismatch(_)));
        prop_assert_eq!(target.snapshot(), before);
    }
}

fn arb_spec(name: &'static str) -> impl Strategy<Value = SanitizerSpec> {
    let arb_ty = prop_oneof![
        Just(ArgType::U8),
        Just(ArgType::U16),
        Just(ArgType::U32),
        Just(ArgType::Usize),
        Just(ArgType::Ptr),
    ];
    let arg_names = prop::sample::select(vec!["addr", "size", "value", "cpu", "flags"]);
    let point = (
        prop_oneof![Just(PointKind::Insn), Just(PointKind::Call), Just(PointKind::Event)],
        prop::sample::select(vec!["load", "store", "atomic", "alloc", "free", "ready"]),
        prop::collection::btree_map(arg_names, arb_ty, 0..4),
    )
        .prop_map(|(kind, pname, args)| InterceptPoint {
            kind,
            name: pname.to_string(),
            args: args
                .into_iter()
                .map(|(n, ty)| ArgSpec { name: n.to_string(), ty, sources: Vec::new() })
                .collect(),
        });
    prop::collection::vec(point, 0..6).prop_map(move |points| {
        // Deduplicate (kind, name) pairs: a single spec lists each point once.
        let mut seen = std::collections::BTreeSet::new();
        let points = points.into_iter().filter(|p| seen.insert((p.kind, p.name.clone()))).collect();
        SanitizerSpec { name: name.to_string(), resources: Default::default(), points }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// §3.1 merge laws: the merged point set is the union (order-insensitive
    /// as a set), every argument is annotated with at least one source, and
    /// merged argument types are at least as wide as every source's.
    #[test]
    fn merge_laws(a in arb_spec("kasan"), b in arb_spec("kcsan")) {
        let merged = merge(&[a.clone(), b.clone()]);
        let key = |p: &InterceptPoint| (p.kind, p.name.clone());
        let merged_keys: std::collections::BTreeSet<_> =
            merged.points.iter().map(key).collect();
        let union_keys: std::collections::BTreeSet<_> =
            a.points.iter().chain(&b.points).map(key).collect();
        prop_assert_eq!(&merged_keys, &union_keys);

        let flipped = merge(&[b.clone(), a.clone()]);
        let flipped_keys: std::collections::BTreeSet<_> =
            flipped.points.iter().map(key).collect();
        prop_assert_eq!(&merged_keys, &flipped_keys);

        for point in &merged.points {
            for arg in &point.args {
                prop_assert!(!arg.sources.is_empty(), "annotations identify sources");
                for source in [&a, &b] {
                    if let Some(p) = source.point(point.kind, &point.name) {
                        if let Some(src_arg) = p.args.iter().find(|x| x.name == arg.name) {
                            prop_assert!(
                                arg.ty >= src_arg.ty,
                                "merged type is the largest union"
                            );
                        }
                    }
                }
            }
        }

        // The merged spec is printable, parseable DSL.
        let reparsed = embsan::dsl::parse(&merged.to_string()).unwrap();
        prop_assert_eq!(reparsed.len(), 1);
    }
}

proptest! {
    /// Static-distance relaxation is exact over arbitrary call-free flow
    /// graphs: the target block sits at 0, every other block with a finite
    /// distance is exactly one edge (`MILLI`) farther than its closest
    /// scored successor, and a block is absent from the map only when none
    /// of its successors reach the target either. The directed scheduler's
    /// monotone-progress guarantee rests on this shortest-path shape.
    #[test]
    fn block_distance_relaxation_is_exact(
        succs in proptest::collection::vec(proptest::collection::vec(0usize..12, 0..3), 12),
        target in 0usize..12,
    ) {
        use embsan::analysis::distance::{block_distances, FlowGraph, FlowNode, MILLI};
        use std::collections::BTreeMap;
        let addr = |i: usize| 0x1000 + 4 * i as u32;
        let mut nodes = BTreeMap::new();
        for (i, s) in succs.iter().enumerate() {
            nodes.insert(addr(i), FlowNode {
                start: addr(i),
                end: addr(i) + 4,
                succs: s.iter().map(|&j| addr(j)).collect(),
                call_target: None,
                indirect_call: false,
            });
        }
        let graph = FlowGraph { fn_entries: vec![addr(0)], address_taken: Vec::new(), nodes };
        let dist = block_distances(&graph, &[addr(target)]);
        prop_assert_eq!(dist.get(&addr(target)).copied(), Some(0));
        for (i, s) in succs.iter().enumerate() {
            let best = s.iter().filter_map(|&j| dist.get(&addr(j))).min().copied();
            match dist.get(&addr(i)).copied() {
                Some(0) => prop_assert_eq!(i, target),
                Some(d) => prop_assert_eq!(Some(d - MILLI), best, "block {} distance", i),
                None => prop_assert!(
                    i != target && best.is_none(),
                    "unscored block {} has a scored successor", i
                ),
            }
        }
    }
}

proptest! {
    /// The parallel engine ships coverage as sparse classified exports and
    /// merges them at epoch barriers; that path must be exactly equivalent
    /// to the sequential fuzzer's dense `merge_novel` — same novelty count,
    /// same resulting global map — or parallel corpus admission would
    /// diverge from the 1-worker run.
    #[test]
    fn sparse_classified_merge_matches_dense_merge(
        records in proptest::collection::vec((0u32..(1 << 18), 0usize..8), 0..300)
    ) {
        use embsan::fuzz::cover::{CoverageMap, MAP_SIZE};
        let mut cov = CoverageMap::new();
        for &(pc, cpu) in &records {
            cov.record(cpu, pc);
        }
        let mut dense = Box::new([0u8; MAP_SIZE]);
        let mut via_sparse = Box::new([0u8; MAP_SIZE]);
        let dense_novel = cov.merge_novel(&mut dense);
        let sparse = cov.classified_sparse();
        let sparse_novel = CoverageMap::merge_classified(&mut via_sparse, &sparse);
        prop_assert_eq!(dense_novel, sparse_novel);
        prop_assert_eq!(&dense[..], &via_sparse[..]);

        // Re-merging the same export is never novel (idempotence).
        prop_assert_eq!(CoverageMap::merge_classified(&mut via_sparse, &sparse), 0);
    }
}

/// Decodes one raw u64 into a loop-heavy instruction at index `i` of an
/// `n`-instruction program, mirroring the deterministic generator in
/// `crates/emu/tests/chaining.rs`: no CSR writes (no timer interrupts), no
/// `wfi`, no indirect jumps, memory traffic only through a preserved RAM
/// base register — so the retired stream depends only on the program.
fn synth_loop_insn(raw: u64, i: usize, n: usize) -> Insn {
    let rd = Reg::from_index((raw >> 8) as u8 % 16);
    let rd = if rd == Reg::R10 { Reg::R11 } else { rd };
    let rs1 = Reg::from_index((raw >> 16) as u8 % 16);
    let rs2 = Reg::from_index((raw >> 24) as u8 % 16);
    let imm = ((raw >> 32) & 0x7FF) as i32;
    let target = ((raw >> 44) as usize) % n;
    let offset = (target as i32 - i as i32) * 4;
    match raw % 10 {
        0 => Insn::Add { rd, rs1, rs2 },
        1 => Insn::Sub { rd, rs1, rs2 },
        2 => Insn::Xor { rd, rs1, rs2 },
        3 => Insn::Addi { rd, rs1, imm: imm - 1024 },
        4 => Insn::Slli { rd, rs1, shamt: (raw >> 50) as u8 % 32 },
        5 => Insn::Lw { rd, rs1: Reg::R10, imm: imm & !3 },
        6 => Insn::Sw { rs2: rs1, rs1: Reg::R10, imm: imm & !3 },
        7 => Insn::Beq { rs1, rs2, offset },
        8 => Insn::Bne { rs1, rs2, offset },
        _ => Insn::Jal { rd: Reg::R0, offset },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The chained/superblock dispatcher retires the identical architectural
    /// stream as the plain per-block dispatcher. The reference executor is
    /// the same machine with a one-instruction scheduling quantum: chains
    /// and promotion only engage on the second dispatch within a quantum, so
    /// quantum 1 always goes through the plain cache-lookup path.
    #[test]
    fn chained_dispatch_equals_unchained(
        words in proptest::collection::vec(any::<u64>(), 24),
        tail in any::<u64>(),
        armed in any::<bool>(),
    ) {
        use embsan::emu::prelude::*;

        let profile = ArchProfile::armv();
        let n = words.len() + 1;
        let mut insns = vec![Insn::Lui { rd: Reg::R10, imm: profile.ram_base }];
        for (i, &raw) in words.iter().enumerate() {
            insns.push(synth_loop_insn(raw, i + 1, n));
        }
        // Close the program with a backward jump so every case loops.
        let target = (tail as usize) % n;
        insns.push(Insn::Jal { rd: Reg::R0, offset: (target as i32 - n as i32) * 4 });

        let config = if armed {
            HookConfig { mem: true, calls: true, ..HookConfig::none() }
        } else {
            HookConfig::none()
        };
        let run = |quantum: Option<u64>| {
            let mut text = Vec::new();
            for insn in &insns {
                text.extend_from_slice(&insn.encode().to_bytes(profile.endian));
            }
            let mut builder = Machine::builder(profile)
                .rom(profile.rom_base, &text)
                .ram(profile.ram_base, 0x1_0000);
            if let Some(q) = quantum {
                builder = builder.quantum(q);
            }
            let mut m = builder.build().unwrap();
            m.set_hook_config(config);
            let exit = m.run(&mut NullHook, 2_500).unwrap();
            let regs: Vec<u32> = Reg::ALL.iter().map(|&r| m.cpu(0).regs.read(r)).collect();
            (exit, regs, m.cpu(0).pc, m.retired())
        };
        prop_assert_eq!(run(None), run(Some(1)));
    }
}
