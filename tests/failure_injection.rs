//! Failure-injection integration tests: corrupted firmware, misuse of the
//! session API, hook misconfiguration, and malformed inputs must produce
//! errors, not panics or silent misbehaviour.

use embsan::asm::image::FirmwareImage;
use embsan::core::probe::{probe, ProbeError, ProbeMode};
use embsan::core::reference_specs;
use embsan::core::session::{Session, SessionError};
use embsan::emu::profile::Arch;
use embsan::guestos::executor::{sys, ExecProgram};
use embsan::guestos::{os, BuildOptions, SanMode};

fn clean_image(san: SanMode) -> FirmwareImage {
    let opts = BuildOptions::new(Arch::Armv).san(san);
    os::emblinux::build(&opts, &[]).expect("firmware builds")
}

/// Truncated or corrupted serialized images are rejected with typed errors.
#[test]
fn corrupted_images_are_rejected() {
    let bytes = clean_image(SanMode::None).to_bytes();
    // Every truncation point fails cleanly.
    for cut in [0, 1, 7, 16, bytes.len() / 2, bytes.len() - 1] {
        assert!(FirmwareImage::parse(&bytes[..cut]).is_err(), "truncation at {cut} must fail");
    }
    // Corrupt the magic.
    let mut bad = bytes.clone();
    bad[0] ^= 0xFF;
    assert!(FirmwareImage::parse(&bad).is_err());
}

/// A firmware whose ROM is garbage faults on its first fetch instead of
/// hanging or panicking the emulator.
#[test]
fn garbage_rom_faults_cleanly() {
    let mut image = clean_image(SanMode::None);
    for byte in image.text.iter_mut() {
        *byte = 0xEE;
    }
    let mut machine = image.boot_machine(1).expect("machine builds");
    let exit = machine.run(&mut embsan::emu::NullHook, 1000).expect("run returns");
    assert!(matches!(exit, embsan::emu::machine::RunExit::Faulted { .. }), "{exit:?}");
}

/// Probing mismatched categories produces the right errors.
#[test]
fn probe_mode_mismatches() {
    // Compile-time probing of an uninstrumented image.
    let image = clean_image(SanMode::None);
    assert_eq!(
        probe(&image, ProbeMode::CompileTime, None).unwrap_err(),
        ProbeError::NotInstrumented
    );
    // Source probing of a stripped image.
    let stripped = image.strip();
    assert_eq!(
        probe(&stripped, ProbeMode::DynamicSource, None).unwrap_err(),
        ProbeError::NoSymbols
    );
    // Binary probing of a firmware that never boots (garbage ROM).
    let mut garbage = clean_image(SanMode::None).strip();
    for byte in garbage.text.iter_mut() {
        *byte = 0xEE;
    }
    assert!(matches!(
        probe(&garbage, ProbeMode::DynamicBinary, None),
        Err(ProbeError::BootFailed(_))
    ));
}

/// Session API misuse: running programs before ready is a typed error, and
/// an undersized ready budget reports a timeout.
#[test]
fn session_misuse_is_typed() {
    let image = clean_image(SanMode::SanCall);
    let specs = reference_specs().unwrap();
    let artifacts = probe(&image, ProbeMode::CompileTime, None).unwrap();
    let mut session = Session::new(&image, &specs, &artifacts).unwrap();

    let mut program = ExecProgram::new();
    program.push(sys::NOP, &[]);
    assert!(matches!(session.run_program(&program, 1000), Err(SessionError::NotReady)));
    assert!(matches!(session.reset(), Err(SessionError::NotReady)));

    // A tiny budget cannot reach the ready point.
    assert!(matches!(session.run_to_ready(100), Err(SessionError::ReadyTimeout(_))));
}

/// Sanitizer specs without load/store interception points are rejected at
/// runtime construction (the merged spec drives what gets intercepted).
#[test]
fn empty_sanitizer_spec_is_rejected() {
    let image = clean_image(SanMode::SanCall);
    let artifacts = probe(&image, ProbeMode::CompileTime, None).unwrap();
    let empty = embsan::dsl::SanitizerSpec { name: "kasan".to_string(), ..Default::default() };
    assert!(matches!(Session::new(&image, &[empty], &artifacts), Err(SessionError::Runtime(_))));
}

/// An executor program exceeding the wire-format's call budget is rejected
/// host-side before it can desynchronize the guest.
#[test]
#[should_panic(expected = "at most")]
fn oversized_programs_rejected_host_side() {
    let mut program = ExecProgram::new();
    for _ in 0..=embsan::guestos::executor::MAX_CALLS {
        program.push(sys::NOP, &[]);
    }
}

/// Malformed mailbox bytes (not produced by `ExecProgram::encode`) do not
/// crash the guest executor: it consumes what it can and returns to idle.
#[test]
fn guest_executor_survives_malformed_programs() {
    let image = clean_image(SanMode::None);
    let mut machine = image.boot_machine(1).unwrap();
    machine.run(&mut embsan::emu::NullHook, 10_000_000).unwrap();
    for garbage in [
        vec![0xFF],       // promises 255 calls, delivers none
        vec![1],          // promises a call, no header
        vec![2, 99, 200], // bad syscall, absurd argc
        vec![0, 0, 0, 0], // zero calls + trailing junk
    ] {
        machine.bus_mut().devices.mailbox.host_load(&garbage);
        let exit = machine.run(&mut embsan::emu::NullHook, 10_000_000).unwrap();
        assert_eq!(
            exit,
            embsan::emu::machine::RunExit::AllIdle,
            "garbage {garbage:?} must not wedge the executor"
        );
    }
    // And the machine still executes well-formed programs afterwards.
    let mut ok = ExecProgram::new();
    ok.push(sys::ECHO, &[7]);
    machine.bus_mut().devices.mailbox.host_load(&ok.encode());
    machine.run(&mut embsan::emu::NullHook, 10_000_000).unwrap();
    assert_eq!(machine.bus_mut().devices.mailbox.host_take_results(), vec![7]);
}

/// The fault-plan parser is total: malformed specs produce typed
/// [`FaultPlanError`]s naming the offending line, and no input — including
/// randomized garbage — can panic it.
#[test]
fn fault_plan_parser_is_total() {
    use embsan::emu::fault::FaultPlan;

    // A representative valid spec parses.
    let plan = FaultPlan::parse(
        "# schedule\nat 50_000 flip 0x2400 3\nat 80_000 every 1_000 x4 mmio-xor 0xFF 16\n\
         at 120_000 irq\nat 150_000 alloc-fail 2\nat 200_000 stuck-cpu 0\n",
    )
    .expect("valid spec parses");
    assert_eq!(plan.events().len(), 5);

    // Each malformed line is rejected with its 1-based line number.
    for (spec, bad_line) in [
        ("inject now", 1),                        // no `at`
        ("at", 1),                                // missing count
        ("at banana irq", 1),                     // non-numeric count
        ("at 100 every irq", 1),                  // `every` without interval
        ("at 100 every 10 irq", 1),               // missing repeat count
        ("at 100 every 10 x0 irq", 1),            // zero repeats
        ("at 100 warp-core-breach", 1),           // unknown kind
        ("at 100", 1),                            // missing kind
        ("at 100 flip", 1),                       // flip without args
        ("at 100 flip 0x10", 1),                  // flip without bit
        ("at 100 flip 0x10 9", 1),                // bit out of range
        ("at 100 mmio-xor 0xFF", 1),              // missing read count
        ("at 100 alloc-fail", 1),                 // missing count
        ("at 100 stuck-cpu", 1),                  // missing cpu
        ("at 1 irq\nat 2 irq\nat broken irq", 3), // error on a later line
        ("at 1 irq\n\n# ok\nat x irq", 4),        // blanks/comments counted
    ] {
        let err = FaultPlan::parse(spec).expect_err(spec);
        assert_eq!(err.line, bad_line, "{spec:?}: {err}");
        assert!(!err.message.is_empty());
    }

    // Truncations of a valid spec never panic (they parse or error).
    let valid = "at 50_000 every 1_000 x4 mmio-xor 0xFF 16\nat 120_000 irq\n";
    for cut in 0..valid.len() {
        let _ = FaultPlan::parse(&valid[..cut]);
    }

    // Randomized garbage never panics.
    let mut rng = embsan::fuzz::SplitMix64::seed_from_u64(0xFA17);
    for _ in 0..500 {
        let len = rng.range_usize(0, 80);
        let garbage: String = (0..len)
            .map(|_| {
                // Printable ASCII plus newlines, biased toward spec tokens.
                match rng.range_usize(0, 10) {
                    0 => '\n',
                    1 => 'x',
                    2 => '#',
                    3..=5 => char::from(rng.gen_u8() % 10 + b'0'),
                    _ => char::from(rng.gen_u8() % 95 + 32),
                }
            })
            .collect();
        let _ = FaultPlan::parse(&garbage);
    }
}

/// The sanitizer-DSL parser is total on malformed, truncated and
/// interleaved documents: typed [`ParseError`]s with line numbers, never a
/// panic, and well-formed prefixes never produce phantom items.
#[test]
fn dsl_parser_is_total_on_malformed_input() {
    let specs = reference_specs().unwrap();
    assert!(specs.len() >= 2, "reference bundle has KASAN and KCSAN");
    let kasan = specs[0].to_string();
    let kcsan = specs[1].to_string();

    // Every prefix of a valid document parses or errors; no panics.
    for cut in 0..kasan.len() {
        if !kasan.is_char_boundary(cut) {
            continue;
        }
        let _ = embsan::dsl::parse(&kasan[..cut]);
    }

    // Line-interleaving two valid documents shreds the nesting; the parser
    // must reject the result with a typed error, not panic or mis-parse.
    let interleaved: String =
        kasan.lines().zip(kcsan.lines()).flat_map(|(a, b)| [a, b]).collect::<Vec<_>>().join("\n");
    match embsan::dsl::parse(&interleaved) {
        Ok(items) => assert!(!items.is_empty()),
        Err(err) => {
            assert!(err.line >= 1);
            assert!(!err.message.is_empty());
        }
    }

    // Classic malformed documents give line-numbered errors.
    for (doc, description) in [
        ("sanitizer {", "unclosed block"),
        ("sanitizer kasan { point insn load { arg addr: }\n}", "missing type"),
        ("sanitizer kasan }\n", "stray close"),
        ("\u{0}\u{1}\u{2}", "control bytes"),
        ("sanitizer kasan { point warp load {} }", "unknown point kind"),
    ] {
        let err = embsan::dsl::parse(doc).expect_err(description);
        assert!(err.line >= 1, "{description}: {err}");
    }

    // Randomized garbage never panics.
    let mut rng = embsan::fuzz::SplitMix64::seed_from_u64(0xD51);
    for _ in 0..300 {
        let len = rng.range_usize(0, 120);
        let garbage: String = (0..len).map(|_| char::from(rng.gen_u8() % 96 + 31)).collect();
        let _ = embsan::dsl::parse(&garbage);
    }
}

/// The campaign journal survives kill-induced torn tails at *every* byte
/// boundary (load returns the intact prefix), and rejects genuine
/// corruption — bad magic, undecodable payloads — with typed errors.
#[test]
fn journal_survives_torn_tails_and_rejects_corruption() {
    use embsan::fuzz::{Journal, JournalError, Record, StartInfo};

    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("torn.journal");
    let start = StartInfo {
        firmware: "torn-test".to_string(),
        strategy: embsan::fuzz::Strategy::Tardis,
        seed: 7,
        iterations: 100,
        ready_budget: 1_000,
        program_budget: 2_000,
        checkpoint_interval: 10,
        base_hash: 0,
        model_free: Some((0xF000_0000, 0x1000)),
        mmio_withheld: false,
    };
    {
        let mut journal = Journal::create(&path).unwrap();
        journal.append(&Record::Start(start.clone())).unwrap();
        let mut program = ExecProgram::new();
        program.push(sys::ECHO, &[1, 2]);
        journal.append(&Record::CorpusAdd { iteration: 3, program }).unwrap();
        journal.append(&Record::End { iterations: 100 }).unwrap();
    }
    let bytes = std::fs::read(&path).unwrap();
    let full = Journal::load(&path).unwrap();
    assert_eq!(full.records.len(), 3);
    assert!(!full.truncated);
    assert!(full.ended());
    assert_eq!(full.start().unwrap().firmware, "torn-test");

    // Killing the writer at any byte leaves a loadable journal: the intact
    // record prefix plus a truncation flag — never a panic, and an error
    // only for cuts inside the magic itself.
    let cut_path = dir.join("torn_cut.journal");
    for cut in 0..bytes.len() {
        std::fs::write(&cut_path, &bytes[..cut]).unwrap();
        match Journal::load(&cut_path) {
            Ok(loaded) => {
                assert!(cut >= 8, "cut {cut} inside the magic must not load");
                assert!(loaded.records.len() <= 3);
                assert!(u64::try_from(cut).unwrap() >= loaded.valid_len);
                assert!(loaded.truncated || loaded.valid_len == cut as u64);
            }
            Err(JournalError::Corrupt { .. }) => {
                assert!(cut < 8, "cut {cut} after the magic is a torn tail, not corruption");
            }
            Err(other) => panic!("cut {cut}: unexpected {other}"),
        }
    }

    // Bad magic is corruption at offset zero.
    let mut bad = bytes.clone();
    bad[0] ^= 0xFF;
    std::fs::write(&cut_path, &bad).unwrap();
    assert!(matches!(Journal::load(&cut_path), Err(JournalError::Corrupt { offset: 0, .. })));

    // An intact frame with an undecodable payload (unknown tag) is
    // corruption at that frame's offset, not a silent drop.
    let mut junk_frame = bytes.clone();
    let offset = junk_frame.len() as u64;
    junk_frame.extend_from_slice(&[99, 3, 0, 0, 0, 1, 2, 3]);
    std::fs::write(&cut_path, &junk_frame).unwrap();
    match Journal::load(&cut_path) {
        Err(JournalError::Corrupt { offset: at, .. }) => assert_eq!(at, offset),
        other => panic!("unknown tag must be corruption, got {other:?}"),
    }

    // Reopen truncates the torn tail so appended records stay parseable.
    std::fs::write(&cut_path, &bytes[..bytes.len() - 2]).unwrap();
    let torn = Journal::load(&cut_path).unwrap();
    assert!(torn.truncated);
    {
        let mut journal = Journal::reopen(&cut_path, torn.valid_len).unwrap();
        journal.append(&Record::End { iterations: 42 }).unwrap();
    }
    let healed = Journal::load(&cut_path).unwrap();
    assert!(!healed.truncated);
    assert!(healed.ended());
}
