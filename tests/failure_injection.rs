//! Failure-injection integration tests: corrupted firmware, misuse of the
//! session API, hook misconfiguration, and malformed inputs must produce
//! errors, not panics or silent misbehaviour.

use embsan::asm::image::FirmwareImage;
use embsan::core::probe::{probe, ProbeError, ProbeMode};
use embsan::core::reference_specs;
use embsan::core::session::{Session, SessionError};
use embsan::emu::profile::Arch;
use embsan::guestos::executor::{sys, ExecProgram};
use embsan::guestos::{os, BuildOptions, SanMode};

fn clean_image(san: SanMode) -> FirmwareImage {
    let opts = BuildOptions::new(Arch::Armv).san(san);
    os::emblinux::build(&opts, &[]).expect("firmware builds")
}

/// Truncated or corrupted serialized images are rejected with typed errors.
#[test]
fn corrupted_images_are_rejected() {
    let bytes = clean_image(SanMode::None).to_bytes();
    // Every truncation point fails cleanly.
    for cut in [0, 1, 7, 16, bytes.len() / 2, bytes.len() - 1] {
        assert!(FirmwareImage::parse(&bytes[..cut]).is_err(), "truncation at {cut} must fail");
    }
    // Corrupt the magic.
    let mut bad = bytes.clone();
    bad[0] ^= 0xFF;
    assert!(FirmwareImage::parse(&bad).is_err());
}

/// A firmware whose ROM is garbage faults on its first fetch instead of
/// hanging or panicking the emulator.
#[test]
fn garbage_rom_faults_cleanly() {
    let mut image = clean_image(SanMode::None);
    for byte in image.text.iter_mut() {
        *byte = 0xEE;
    }
    let mut machine = image.boot_machine(1).expect("machine builds");
    let exit = machine.run(&mut embsan::emu::NullHook, 1000).expect("run returns");
    assert!(matches!(exit, embsan::emu::machine::RunExit::Faulted { .. }), "{exit:?}");
}

/// Probing mismatched categories produces the right errors.
#[test]
fn probe_mode_mismatches() {
    // Compile-time probing of an uninstrumented image.
    let image = clean_image(SanMode::None);
    assert_eq!(
        probe(&image, ProbeMode::CompileTime, None).unwrap_err(),
        ProbeError::NotInstrumented
    );
    // Source probing of a stripped image.
    let stripped = image.strip();
    assert_eq!(
        probe(&stripped, ProbeMode::DynamicSource, None).unwrap_err(),
        ProbeError::NoSymbols
    );
    // Binary probing of a firmware that never boots (garbage ROM).
    let mut garbage = clean_image(SanMode::None).strip();
    for byte in garbage.text.iter_mut() {
        *byte = 0xEE;
    }
    assert!(matches!(
        probe(&garbage, ProbeMode::DynamicBinary, None),
        Err(ProbeError::BootFailed(_))
    ));
}

/// Session API misuse: running programs before ready is a typed error, and
/// an undersized ready budget reports a timeout.
#[test]
fn session_misuse_is_typed() {
    let image = clean_image(SanMode::SanCall);
    let specs = reference_specs().unwrap();
    let artifacts = probe(&image, ProbeMode::CompileTime, None).unwrap();
    let mut session = Session::new(&image, &specs, &artifacts).unwrap();

    let mut program = ExecProgram::new();
    program.push(sys::NOP, &[]);
    assert!(matches!(session.run_program(&program, 1000), Err(SessionError::NotReady)));
    assert!(matches!(session.reset(), Err(SessionError::NotReady)));

    // A tiny budget cannot reach the ready point.
    assert!(matches!(session.run_to_ready(100), Err(SessionError::ReadyTimeout(_))));
}

/// Sanitizer specs without load/store interception points are rejected at
/// runtime construction (the merged spec drives what gets intercepted).
#[test]
fn empty_sanitizer_spec_is_rejected() {
    let image = clean_image(SanMode::SanCall);
    let artifacts = probe(&image, ProbeMode::CompileTime, None).unwrap();
    let empty = embsan::dsl::SanitizerSpec { name: "kasan".to_string(), ..Default::default() };
    assert!(matches!(Session::new(&image, &[empty], &artifacts), Err(SessionError::Runtime(_))));
}

/// An executor program exceeding the wire-format's call budget is rejected
/// host-side before it can desynchronize the guest.
#[test]
#[should_panic(expected = "at most")]
fn oversized_programs_rejected_host_side() {
    let mut program = ExecProgram::new();
    for _ in 0..=embsan::guestos::executor::MAX_CALLS {
        program.push(sys::NOP, &[]);
    }
}

/// Malformed mailbox bytes (not produced by `ExecProgram::encode`) do not
/// crash the guest executor: it consumes what it can and returns to idle.
#[test]
fn guest_executor_survives_malformed_programs() {
    let image = clean_image(SanMode::None);
    let mut machine = image.boot_machine(1).unwrap();
    machine.run(&mut embsan::emu::NullHook, 10_000_000).unwrap();
    for garbage in [
        vec![0xFF],       // promises 255 calls, delivers none
        vec![1],          // promises a call, no header
        vec![2, 99, 200], // bad syscall, absurd argc
        vec![0, 0, 0, 0], // zero calls + trailing junk
    ] {
        machine.bus_mut().devices.mailbox.host_load(&garbage);
        let exit = machine.run(&mut embsan::emu::NullHook, 10_000_000).unwrap();
        assert_eq!(
            exit,
            embsan::emu::machine::RunExit::AllIdle,
            "garbage {garbage:?} must not wedge the executor"
        );
    }
    // And the machine still executes well-formed programs afterwards.
    let mut ok = ExecProgram::new();
    ok.push(sys::ECHO, &[7]);
    machine.bus_mut().devices.mailbox.host_load(&ok.encode());
    machine.run(&mut embsan::emu::NullHook, 10_000_000).unwrap();
    assert_eq!(machine.bus_mut().devices.mailbox.host_take_results(), vec![7]);
}
