//! Supervisor resilience integration tests: snapshot fidelity, journaled
//! kill/resume determinism, and watchdog recovery from injected live-locks.

use std::path::PathBuf;

use embsan::emu::error::EmuError;
use embsan::emu::fault::{FaultEvent, FaultKind, FaultPlan};
use embsan::emu::profile::Arch;
use embsan::fuzz::campaign::run_campaign;
use embsan::fuzz::{
    resume_supervised, run_supervised, CampaignConfig, SplitMix64, SupervisorConfig,
};
use embsan::guestos::executor::ExecProgram;
use embsan::guestos::{firmware_by_name, os, BuildOptions, SanMode};

fn tmp_path(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    dir.join(name)
}

/// `restore(snapshot())` followed by `snapshot()` captures bit-identical
/// state, across randomized mid-program machine states. This is the
/// property the supervisor's recovery path (and every fuzzing reset)
/// depends on.
#[test]
fn snapshot_restore_roundtrip_is_identity() {
    let opts = BuildOptions::new(Arch::Armv).san(SanMode::None);
    let image = os::emblinux::build(&opts, &[]).expect("firmware builds");
    let mut machine = image.boot_machine(1).expect("machine boots");
    machine.run(&mut embsan::emu::NullHook, 10_000_000).expect("boot");

    let mut rng = SplitMix64::seed_from_u64(0xE5);
    for round in 0..12 {
        // Drive the executor into a randomized mid-program state: a random
        // program, stopped after a random slice of its execution.
        let mut program = ExecProgram::new();
        for _ in 0..rng.range_usize_incl(1, 3) {
            let nr = rng.gen_u8() % 24;
            let args: Vec<u32> = (0..rng.range_usize(0, 3)).map(|_| rng.gen_u32()).collect();
            program.push(nr, &args);
        }
        machine.bus_mut().devices.mailbox.host_load(&program.encode());
        machine.run(&mut embsan::emu::NullHook, rng.range_u64(500, 50_000)).expect("run returns");

        let first = machine.snapshot();
        // Perturb past the capture point, then rewind.
        machine.run(&mut embsan::emu::NullHook, 10_000).expect("perturb");
        machine.restore(&first).expect("restore accepts own snapshot");
        assert_eq!(machine.snapshot(), first, "round {round}: restore must be exact");
    }
}

/// Snapshots only restore into machines of the same shape: a vCPU-count or
/// RAM-size mismatch is a typed [`EmuError::SnapshotMismatch`], and the
/// rejected restore leaves the target machine untouched.
#[test]
fn snapshot_shape_mismatches_are_typed_and_harmless() {
    let opts = BuildOptions::new(Arch::Armv).san(SanMode::None);
    let image = os::emblinux::build(&opts, &[]).expect("firmware builds");
    let mut uni = image.boot_machine(1).expect("1-cpu machine");
    let mut smp = image.boot_machine(2).expect("2-cpu machine");
    uni.run(&mut embsan::emu::NullHook, 100_000).expect("run");
    smp.run(&mut embsan::emu::NullHook, 100_000).expect("run");

    let uni_snap = uni.snapshot();
    let smp_before = smp.snapshot();
    let err = smp.restore(&uni_snap).expect_err("vCPU-count mismatch must fail");
    assert!(matches!(err, EmuError::SnapshotMismatch(_)), "{err:?}");
    assert_eq!(smp.snapshot(), smp_before, "failed restore must not touch the machine");
    assert!(matches!(uni.restore(&smp_before), Err(EmuError::SnapshotMismatch(_))));

    // Different RAM size: a FreeRTOS image against the emblinux snapshot.
    let other = os::freertos::build(&opts, &[]).expect("freertos builds");
    let mut other_machine = other.boot_machine(1).expect("machine boots");
    if other_machine.bus().ram_range().1 != uni.bus().ram_range().1 {
        assert!(matches!(other_machine.restore(&uni_snap), Err(EmuError::SnapshotMismatch(_))));
    }
}

/// A campaign killed mid-flight and resumed from its journal produces
/// bit-identical results to a campaign that was never interrupted — and
/// the supervisor itself is neutral: without faults it reproduces the
/// plain `run_campaign` results exactly.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "campaign-scale test; run with `cargo test --release --test resilience`"
)]
fn killed_and_resumed_campaign_is_bit_identical() {
    let spec = firmware_by_name("OpenHarmony-stm32f407").unwrap();
    let campaign = CampaignConfig { iterations: 2_000, seed: 99, ..CampaignConfig::default() };
    let baseline = run_campaign(spec, &campaign).unwrap();

    let journal = tmp_path("kill_resume.journal");
    let mut config = SupervisorConfig {
        campaign,
        checkpoint_interval: 300,
        // Kill at a non-checkpoint iteration so resume must re-execute the
        // 100 iterations after the newest checkpoint (at 900) exactly.
        kill_after: Some(1_000),
        ..SupervisorConfig::default()
    };
    let first = run_supervised(spec, &config, Some(&journal)).unwrap();
    assert!(!first.completed, "kill_after must stop the campaign early");
    assert!(first.health.checkpoints >= 3);

    config.kill_after = None;
    let resumed = resume_supervised(&journal, &config).unwrap();
    assert!(resumed.completed);
    assert_eq!(resumed.result.stats, baseline.stats, "stats must match uninterrupted run");
    assert_eq!(resumed.result.found.len(), baseline.found.len());
    for (a, b) in resumed.result.found.iter().zip(&baseline.found) {
        assert_eq!(a.latent_index, b.latent_index);
        assert_eq!(a.class, b.class);
        assert_eq!(a.reproducer, b.reproducer);
    }
    assert!(!baseline.found.is_empty(), "comparison is vacuous without findings");

    // The journal now records completion; resuming again is a typed error,
    // not a re-run.
    let again = resume_supervised(&journal, &config);
    assert!(again.is_err(), "a completed journal must not resume");
}

/// The trace side of kill/resume determinism: the killed run's event
/// spans up to the resume point, concatenated with the resumed run's
/// spans, equal the uninterrupted campaign's merged trace exactly. Span
/// clocks are rebased per iteration, so the re-executed iterations after
/// the newest checkpoint reproduce their spans bit-for-bit.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "campaign-scale test; run with `cargo test --release --test resilience`"
)]
fn kill_and_resume_traces_concatenate_exactly() {
    use embsan::obs::MergedTrace;

    let spec = firmware_by_name("OpenHarmony-stm32f407").unwrap();
    let campaign = CampaignConfig { iterations: 2_000, seed: 99, ..CampaignConfig::default() };
    let uninterrupted = run_supervised(
        spec,
        &SupervisorConfig { campaign, trace: true, ..SupervisorConfig::default() },
        None,
    )
    .unwrap();

    let journal = tmp_path("trace_concat.journal");
    let mut config = SupervisorConfig {
        campaign,
        checkpoint_interval: 300,
        kill_after: Some(1_000),
        trace: true,
        ..SupervisorConfig::default()
    };
    let first = run_supervised(spec, &config, Some(&journal)).unwrap();
    assert!(!first.completed, "kill_after must stop the campaign early");
    config.kill_after = None;
    let resumed = resume_supervised(&journal, &config).unwrap();
    assert!(resumed.completed);

    let full = uninterrupted.trace.expect("uninterrupted run was traced");
    let head = first.trace.expect("killed run was traced");
    let tail = resumed.trace.expect("resumed run was traced");
    let resume_start = tail.spans.first().expect("resumed run has spans").iter;
    assert!(resume_start < 1_000, "resume must re-execute from the newest checkpoint");

    let mut stitched = MergedTrace::default();
    stitched.spans.extend(head.spans.into_iter().filter(|span| span.iter < resume_start));
    stitched.spans.extend(tail.spans);
    assert_eq!(stitched.spans.len(), full.spans.len(), "span count must match");
    for (got, want) in stitched.spans.iter().zip(&full.spans) {
        assert_eq!(got.iter, want.iter, "span order must match");
        assert_eq!(got, want, "iteration {} must replay its exact span", want.iter);
    }
    assert!(full.event_count() > 0, "comparison is vacuous without events");
}

/// A fault plan live-locks the guest mid-campaign: the watchdog classifies
/// the hang, snapshot-restore recovery retries it, the input is quarantined
/// after the retry bound, and the campaign still completes — finding every
/// seeded bug of the firmware.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "campaign-scale test; run with `cargo test --release --test resilience`"
)]
fn wedge_recovery_quarantines_and_completes() {
    use embsan::guestos::bugs::LATENT_BUGS;

    let spec = firmware_by_name("InfiniTime").unwrap();
    let campaign = CampaignConfig { iterations: 6_000, seed: 21, ..CampaignConfig::default() };
    // Wedge vCPU 0 repeatedly: the first firing live-locks the running
    // program; the tight repeat spacing (well under one program's length)
    // re-wedges each watchdog retry, forcing the quarantine path. Each
    // wedged run burns the full 3M-instruction program budget, so the
    // repeat span covers the initial run plus both retries and then runs
    // dry, letting the campaign proceed.
    let plan = FaultPlan::new().with(FaultEvent::repeating(
        2_000_000,
        2_000,
        4_700,
        FaultKind::StuckCpu { cpu: 0 },
    ));
    let config =
        SupervisorConfig { campaign, fault_plan: Some(plan), ..SupervisorConfig::default() };
    let result = run_supervised(spec, &config, None).unwrap();

    assert!(result.completed);
    assert!(result.injection.cpu_wedges > 0, "plan must have fired: {:?}", result.injection);
    assert!(result.health.wedges > 0, "watchdog must observe live-locks: {:?}", result.health);
    assert!(result.health.recoveries > 0, "retries happen before quarantine");
    assert!(result.health.quarantined >= 1, "persistent wedging must quarantine");

    // Despite the injected live-locks the campaign finds all of the
    // firmware's Table-4 bugs.
    let expected: std::collections::BTreeSet<&str> =
        LATENT_BUGS.iter().filter(|b| b.firmware == spec.name).map(|b| b.location).collect();
    let found: std::collections::BTreeSet<&str> =
        result.result.found.iter().map(|b| b.location).collect();
    assert_eq!(found, expected, "stats: {:?} health: {:?}", result.result.stats, result.health);
}

/// Supervised campaigns without faults, journals or kills are exactly the
/// plain campaign: the supervisor must never perturb a healthy run.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "campaign-scale test; run with `cargo test --release --test resilience`"
)]
fn supervisor_is_neutral_for_healthy_runs() {
    let spec = firmware_by_name("OpenHarmony-stm32mp1").unwrap();
    let campaign = CampaignConfig { iterations: 1_500, seed: 11, ..CampaignConfig::default() };
    let plain = run_campaign(spec, &campaign).unwrap();
    let config = SupervisorConfig { campaign, ..SupervisorConfig::default() };
    let supervised = run_supervised(spec, &config, None).unwrap();
    assert_eq!(supervised.result.stats, plain.stats);
    assert_eq!(supervised.result.found.len(), plain.found.len());
    for (a, b) in supervised.result.found.iter().zip(&plain.found) {
        assert_eq!((a.latent_index, a.class), (b.latent_index, b.class));
        assert_eq!(a.reproducer, b.reproducer);
    }
    assert_eq!(supervised.health.wedges, 0);
    assert_eq!(supervised.health.quarantined, 0);
}
