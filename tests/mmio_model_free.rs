//! Determinism-first lockdown of the model-free MMIO layer.
//!
//! The model-free region answers guest MMIO reads from a fuzzer-controlled
//! response stream with Ember-IO-style per-(pc, addr) refinement, so a
//! firmware can boot and fuzz with its MMIO map *withheld* — no peripheral
//! models at all. That only earns its keep if the usual contracts survive:
//! N workers must equal 1 worker byte-for-byte, a killed campaign must
//! resume bit-identically from its journal, and refinement itself must be
//! a pure function of (program, stream). This suite pins all three, plus
//! the interrupt-rich companion firmware's ISR/mainloop data race that
//! syscall-only workloads cannot exhibit.

use std::path::PathBuf;

use embsan::emu::profile::ArchProfile;
use embsan::fuzz::campaign::{prepare_session, run_campaign, CampaignConfig};
use embsan::fuzz::parallel::{run_parallel_campaign, ParallelConfig, ParallelOutcome};
use embsan::fuzz::{
    descriptions_for, resume_supervised, run_supervised, Fuzzer, FuzzerConfig, Journal, Strategy,
    SupervisorConfig,
};
use embsan::guestos::executor::{sys, ExecProgram};
use embsan::guestos::{firmware_by_name, workload, FirmwareSpec};

fn tmp_path(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    dir.join(name)
}

/// A campaign with the firmware's whole platform MMIO window withheld and
/// served model-free. Programs end on stream exhaustion or budget (result
/// writes are absorbed by the region), so the per-program budget is kept
/// small — the paper's fixed-time-slice execution model.
fn withheld_campaign(spec: &FirmwareSpec, iterations: u64, seed: u64) -> CampaignConfig {
    let profile = ArchProfile::for_arch(spec.arch);
    CampaignConfig {
        iterations,
        seed,
        program_budget: 120_000,
        model_free: Some((profile.mmio_base, profile.mmio_size)),
        mmio_withheld: true,
        ..CampaignConfig::default()
    }
}

/// All four OS flavours boot to their ready point with the MMIO map
/// withheld: boot-time device traffic (UART banners, timer pokes) is
/// absorbed or answered by the model-free region. This is the matrix
/// recorded in EXPERIMENTS.md — update both together.
#[test]
fn all_os_flavours_boot_with_mmio_withheld() {
    for name in ["OpenWRT-armvirt", "OpenHarmony-stm32mp1", "InfiniTime", "TP-Link WDR-7660"] {
        let spec = firmware_by_name(name).unwrap();
        let config = withheld_campaign(spec, 0, 0);
        let (session, _) = prepare_session(spec, &config)
            .unwrap_or_else(|e| panic!("{name} must boot with MMIO withheld: {e}"));
        let stats = session.model_free_stats().expect("model-free region is enabled");
        // Boot traffic is write-heavy (UART banners); some flavours never
        // read the window before ready. Either direction proves the
        // withheld window was really routed through the region.
        assert!(stats.reads + stats.writes > 0, "{name}: boot must exercise the model-free region");
    }
}

/// Withheld-mode fuzzing is not vacuous: the executor receives programs
/// through the model-free response stream (the mailbox lives inside the
/// withheld window), so execs complete, coverage accumulates and the
/// corpus grows — all without a single modeled peripheral.
#[test]
fn withheld_fuzzing_makes_progress() {
    let spec = firmware_by_name("TP-Link WDR-7660").unwrap();
    let result = run_campaign(spec, &withheld_campaign(spec, 30, 17)).unwrap();
    assert_eq!(result.stats.execs, 30);
    assert!(result.stats.coverage > 0, "withheld run must still produce coverage");
    assert!(result.stats.corpus > 0, "withheld run must retain at least one program");
}

/// Everything observable about a parallel run, in canonical order.
#[derive(Debug, PartialEq, Eq)]
struct Observed {
    findings: Vec<(String, u32, ExecProgram)>,
    corpus: Vec<ExecProgram>,
    coverage: usize,
    execs: u64,
}

fn observe_withheld(spec: &FirmwareSpec, workers: usize, seed: u64, iterations: u64) -> Observed {
    let config = ParallelConfig {
        workers,
        epoch_len: 16,
        chunk: 4,
        trace: false,
        campaign: withheld_campaign(spec, iterations, seed),
    };
    let (_, outcome): (_, ParallelOutcome) = run_parallel_campaign(spec, &config).unwrap();
    Observed {
        findings: outcome
            .findings
            .iter()
            .map(|f| (f.report.class.to_string(), f.report.pc, f.program.clone()))
            .collect(),
        corpus: outcome.corpus,
        coverage: outcome.stats.coverage,
        execs: outcome.stats.execs,
    }
}

/// The parallel-determinism contract holds with the MMIO map withheld:
/// N ∈ {2, 4} workers produce byte-identical findings, corpus and coverage
/// to the 1-worker run. Each worker refines its own per-(pc, addr) cache,
/// so any leakage of refinement state across worker boundaries — or any
/// dependence on scheduling — would break this equality.
#[test]
fn worker_count_does_not_change_results_with_model_free() {
    let spec = firmware_by_name("TP-Link WDR-7660").unwrap();
    for seed in [17u64, 99] {
        let one = observe_withheld(spec, 1, seed, 48);
        assert_eq!(one.execs, 48, "seed {seed}");
        // Non-vacuity: equality of *empty* runs would prove nothing. The
        // stream must actually reach the executor through the withheld
        // window, producing real coverage and a retained corpus.
        assert!(
            one.coverage > 10,
            "seed {seed}: withheld run must cover code, got {}",
            one.coverage
        );
        assert!(!one.corpus.is_empty(), "seed {seed}: withheld run must retain programs");
        for workers in [2usize, 4] {
            let many = observe_withheld(spec, workers, seed, 48);
            assert_eq!(one, many, "seed {seed} x{workers}");
        }
    }
}

/// A model-free campaign killed mid-flight resumes bit-identically from
/// its journal: the Start record carries the model-free configuration
/// (journal format v2), the resumed session re-enables the region before
/// boot, and replay from the newest checkpoint reproduces the
/// uninterrupted run exactly.
#[test]
fn killed_and_resumed_model_free_campaign_is_bit_identical() {
    let spec = firmware_by_name("TP-Link WDR-7660").unwrap();
    let campaign = withheld_campaign(spec, 160, 99);
    let baseline = run_campaign(spec, &campaign).unwrap();

    let journal = tmp_path("model_free_kill_resume.journal");
    let mut config = SupervisorConfig {
        campaign,
        checkpoint_interval: 40,
        // A non-checkpoint kill point forces re-execution of the
        // iterations after the newest checkpoint on resume.
        kill_after: Some(90),
        ..SupervisorConfig::default()
    };
    let first = run_supervised(spec, &config, Some(&journal)).unwrap();
    assert!(!first.completed, "kill_after must stop the campaign early");

    // The journal's Start record must round-trip the model-free identity —
    // resuming under a different MMIO configuration would silently diverge.
    let loaded = Journal::load(&journal).unwrap();
    let start = loaded.start().unwrap();
    assert_eq!(start.model_free, campaign.model_free);
    assert!(start.mmio_withheld);

    config.kill_after = None;
    let resumed = resume_supervised(&journal, &config).unwrap();
    assert!(resumed.completed);
    assert_eq!(resumed.result.stats, baseline.stats, "stats must match uninterrupted run");
    assert_eq!(resumed.result.found.len(), baseline.found.len());
}

/// Refinement is a pure function of (firmware, program sequence): two
/// independently prepared sessions fed the same programs report identical
/// model-free statistics — reads, cache hits, stream draws, commits,
/// invalidations — and identical program outcomes at every step.
#[test]
fn refinement_is_a_pure_function_of_the_program_sequence() {
    let spec = firmware_by_name("TP-Link WDR-7660").unwrap();
    let config = withheld_campaign(spec, 0, 0);
    let programs = workload::merged_corpus(7, 3, 6);

    let observe = |config: &CampaignConfig| {
        let (mut session, _) = prepare_session(spec, config).unwrap();
        let mut seen = Vec::new();
        for program in &programs {
            session.reset().unwrap();
            session.set_model_free_stream(&program.model_free_stream());
            let outcome = session.run_program(program, config.program_budget).unwrap();
            seen.push((outcome.exit, outcome.results, session.model_free_stats().unwrap()));
        }
        seen
    };
    let first = observe(&config);
    let second = observe(&config);
    assert_eq!(first, second, "identical inputs must refine identically");
    let final_stats = first.last().expect("non-empty workload").2;
    assert!(final_stats.stream_draws > 0, "programs must be served from the stream");
    assert!(final_stats.writes > 0, "guest result writes must be absorbed by the region");
}

/// The interrupt-rich companion firmware produces a KCSAN-observable
/// ISR/mainloop data race — the ISR on the secondary vCPU and the
/// `irq_load` mainloop both hit the unsynchronized shared counter — and
/// the minimized reproducer is exactly the interrupt surface (`irq_setup`
/// then `irq_load`). The base InfiniTime build, fuzzed with the same
/// budget, cannot produce any data race: this bug family is reachable
/// only through interrupts.
#[test]
fn interrupt_rich_firmware_yields_isr_mainloop_race() {
    let race_findings = |name: &str| {
        let spec = firmware_by_name(name).unwrap();
        let config = CampaignConfig { iterations: 20, seed: 5, ..CampaignConfig::default() };
        let (mut session, dict) = prepare_session(spec, &config).unwrap();
        let mut fuzzer = Fuzzer::new(
            &mut session,
            descriptions_for(spec),
            dict,
            FuzzerConfig::new(Strategy::Tardis, config.seed),
        );
        if spec.irq {
            // Seed the corpus from the interrupt workload generator — the
            // same role dictionary seeds play for magic-gated syscalls.
            for program in workload::irq_corpus(5, 4, 10) {
                fuzzer.execute_one(&program).unwrap();
            }
        }
        fuzzer.run(config.iterations).unwrap();
        fuzzer
            .into_findings()
            .into_iter()
            .filter(|f| f.report.class.to_string() == "data-race")
            .collect::<Vec<_>>()
    };

    let races = race_findings("InfiniTime-sensor");
    assert!(!races.is_empty(), "interrupt surface must yield a data race");
    let minimized = races.iter().any(|f| {
        let nrs: Vec<u8> = f.program.calls.iter().map(|c| c.nr).collect();
        nrs.contains(&sys::IRQ_SETUP) && nrs.contains(&sys::IRQ_LOAD)
    });
    assert!(minimized, "a reproducer must consist of the interrupt syscalls: {races:?}");

    let control = race_findings("InfiniTime");
    assert!(control.is_empty(), "syscall-only firmware must not race: {control:?}");
}
