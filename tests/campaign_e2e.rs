//! End-to-end campaign integration: a full (budget-scaled) fuzzing
//! campaign over one Table-1 firmware, checking attribution, reproducer
//! validity, and cross-run determinism of the whole sanitized stack.

use embsan::core::report::BugClass;
use embsan::fuzz::campaign::{prepare_session, run_campaign, CampaignConfig};
use embsan::guestos::bugs::LATENT_BUGS;
use embsan::guestos::firmware_by_name;

/// A moderately sized campaign on the InfiniTime (FreeRTOS, Tardis-style)
/// target finds its three Table-4 bugs, each with a replayable minimized
/// reproducer.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "campaign-scale test; run with `cargo test --release --test campaign_e2e`"
)]
fn infinitime_campaign_finds_and_reproduces_its_bugs() {
    let spec = firmware_by_name("InfiniTime").unwrap();
    let config = CampaignConfig { iterations: 6_000, seed: 21, ..CampaignConfig::default() };
    let result = run_campaign(spec, &config).unwrap();

    // All three Table-4 rows for this firmware.
    let expected: Vec<&str> =
        LATENT_BUGS.iter().filter(|b| b.firmware == spec.name).map(|b| b.location).collect();
    assert_eq!(expected.len(), 3);
    let mut found: Vec<&str> = result.found.iter().map(|b| b.location).collect();
    found.sort_unstable();
    let mut expected_sorted = expected.clone();
    expected_sorted.sort_unstable();
    assert_eq!(found, expected_sorted, "stats: {:?}", result.stats);

    // Every reproducer replays against a fresh session and re-detects a
    // bug of the same paper class.
    let (mut session, _) = prepare_session(spec, &config).unwrap();
    for bug in &result.found {
        let outcome = session.run_program_fresh(&bug.reproducer, 20_000_000).unwrap();
        assert!(
            outcome.reports.iter().any(|r| r.class.paper_class() == bug.class.paper_class()),
            "reproducer for `{}` did not replay: {:?}",
            bug.location,
            outcome.reports
        );
        // Minimization did its job: reproducers are single-call programs
        // (these bugs need no setup calls).
        assert_eq!(bug.reproducer.calls.len(), 1, "{}", bug.location);
    }
}

/// The complete sanitized pipeline is deterministic: two campaigns with
/// the same seed produce identical statistics and findings, including the
/// report program counters.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "campaign-scale test; run with `cargo test --release --test campaign_e2e`"
)]
fn sanitized_pipeline_is_deterministic_end_to_end() {
    let spec = firmware_by_name("OpenHarmony-stm32f407").unwrap();
    let config = CampaignConfig { iterations: 2_000, seed: 99, ..CampaignConfig::default() };
    let a = run_campaign(spec, &config).unwrap();
    let b = run_campaign(spec, &config).unwrap();
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.found.len(), b.found.len());
    for (x, y) in a.found.iter().zip(&b.found) {
        assert_eq!(x.latent_index, y.latent_index);
        assert_eq!(x.class, y.class);
        assert_eq!(x.reproducer, y.reproducer);
    }
}

/// Race findings attribute to the race rows and carry both parties when
/// the collision was observed directly.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "campaign-scale test; run with `cargo test --release --test campaign_e2e`"
)]
fn race_campaign_on_x86_64() {
    let spec = firmware_by_name("OpenWRT-x86_64").unwrap();
    let config = CampaignConfig { iterations: 8_000, seed: 4, ..CampaignConfig::default() };
    let result = run_campaign(spec, &config).unwrap();
    let races: Vec<_> = result.found.iter().filter(|b| b.class == BugClass::Race).collect();
    assert!(!races.is_empty(), "found: {:?}", result.found);
    for race in races {
        assert!(LATENT_BUGS[race.latent_index].kind == embsan::guestos::BugKind::Race);
    }
}
