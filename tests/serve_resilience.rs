//! Daemon resilience integration tests: kill/restart determinism of the
//! `embsan serve` engine, quarantine equivalence for crashing and wedging
//! jobs, and K-cycle kill+resume concatenation (with torn journal tails)
//! for the supervised campaign layer underneath it.

use std::path::PathBuf;

use embsan::fuzz::{
    resume_supervised, run_supervised, CampaignConfig, SplitMix64, SupervisorConfig,
};
use embsan::guestos::firmware_by_name;
use embsan::serve::{Drill, ServeConfig, ServeEngine};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("stale state dir");
    }
    std::fs::create_dir_all(&dir).expect("tmpdir");
    dir
}

/// A small daemon configuration: two workers, short slices, so a handful
/// of scheduling turns covers several checkpoint boundaries per job.
fn serve_config(state_dir: PathBuf) -> ServeConfig {
    ServeConfig { state_dir, workers: 2, slice: 50, ..ServeConfig::default() }
}

// Campaign shape shared by every daemon test: long enough that the
// firmware's seeded bugs are actually found (the store/quarantine
// equivalences are vacuous without findings), short enough for CI.
const FIRMWARE: &str = "OpenHarmony-stm32f407";
const ITERS: u64 = 2_000;
const SEED: u64 = 99;

/// Submits `jobs` campaigns over the same firmware (distinct seeds) and
/// returns the idle-state artifacts: the `embsan-serve-report-v1` JSON and
/// the deterministic metrics snapshot.
fn run_to_idle(state_dir: PathBuf, jobs: u64) -> (String, String) {
    let mut engine = ServeEngine::open(serve_config(state_dir)).expect("engine opens");
    for job in 0..jobs {
        engine.submit(FIRMWARE, ITERS, SEED + job, 0, None).expect("submit");
    }
    engine.run_until_idle();
    let artifacts = (engine.report_json(), engine.metrics_snapshot().to_json(false));
    engine.shutdown();
    artifacts
}

/// The acceptance gate: for any kill point, killing the daemon after `k`
/// scheduling turns and restarting over the same state directory yields a
/// report and deterministic metrics snapshot byte-identical to a daemon
/// that was never interrupted — for one- and two-job fleets.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "campaign-scale test; run with `cargo test --release --test serve_resilience`"
)]
fn daemon_kill_restart_is_deterministic() {
    for jobs in [1u64, 2] {
        let control = run_to_idle(tmp_dir(&format!("serve-control-{jobs}")), jobs);
        assert!(
            control.0.contains("\"phase\":\"completed\""),
            "control must finish: {}",
            control.0
        );

        for kill_at in [1u64, 3, 6] {
            let dir = tmp_dir(&format!("serve-kill-{jobs}-{kill_at}"));
            let mut engine = ServeEngine::open(serve_config(dir.clone())).expect("engine opens");
            for job in 0..jobs {
                engine.submit(FIRMWARE, ITERS, SEED + job, 0, None).expect("submit");
            }
            let ran = engine.run_turns(kill_at);
            // Kill: drop the engine (worker threads join; any in-flight turn
            // lands on a durable journal boundary, exactly as the supervised
            // journal survives kill -9 at arbitrary byte offsets).
            engine.shutdown();
            assert!(ran <= kill_at);

            // Restart over the same state directory: the manifest restores
            // the queue, the journals restore each campaign's progress.
            let mut engine = ServeEngine::open(serve_config(dir)).expect("engine reopens");
            engine.run_until_idle();
            let resumed = (engine.report_json(), engine.metrics_snapshot().to_json(false));
            engine.shutdown();
            assert_eq!(
                resumed, control,
                "jobs={jobs} kill_at={kill_at}: restarted daemon must converge bit-identically"
            );
        }
    }
}

/// Two campaigns over the same firmware and seed find the same crashes;
/// the store deduplicates them by (firmware, signature) and attributes
/// each unique finding to both jobs.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "campaign-scale test; run with `cargo test --release --test serve_resilience`"
)]
fn store_deduplicates_across_campaigns_of_same_firmware() {
    let mut engine = ServeEngine::open(serve_config(tmp_dir("serve-dedup"))).expect("engine opens");
    engine.submit(FIRMWARE, ITERS, SEED, 0, None).expect("submit");
    engine.submit(FIRMWARE, ITERS, SEED, 0, None).expect("submit");
    engine.run_until_idle();
    let first = engine.job_report(0);
    assert_eq!(first, engine.job_report(1), "identical campaigns produce identical reports");
    assert!(first.findings > 0, "dedup comparison is vacuous without findings");
    assert_eq!(engine.store().uniques(), first.findings, "store holds one entry per signature");
    assert_eq!(engine.store().attributions(), 2 * first.findings, "both jobs attributed");
    engine.shutdown();
}

/// A job that panics mid-campaign is quarantined after `max_strikes`
/// turns, its findings leave the store, and the surviving job finishes
/// with results identical to a fleet where the bad job was never
/// submitted — including across a kill/restart in the middle.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "campaign-scale test; run with `cargo test --release --test serve_resilience`"
)]
fn panicking_job_is_quarantined_without_disturbing_others() {
    // Control: the good job alone.
    let mut control =
        ServeEngine::open(serve_config(tmp_dir("serve-quar-control"))).expect("engine opens");
    control.submit(FIRMWARE, ITERS, SEED, 0, None).expect("submit");
    control.run_until_idle();
    let control_report = control.job_report(0);
    let control_store = control.store().to_json();
    control.shutdown();

    // The same good job plus a crasher, with a kill/restart mid-fleet.
    let dir = tmp_dir("serve-quar");
    let mut engine = ServeEngine::open(serve_config(dir.clone())).expect("engine opens");
    engine.submit(FIRMWARE, ITERS, SEED, 0, None).expect("submit good");
    engine
        .submit(FIRMWARE, ITERS, SEED + 7, 0, Some(Drill::PanicAfter(60)))
        .expect("submit crasher");
    engine.run_turns(3);
    engine.shutdown();
    let mut engine = ServeEngine::open(serve_config(dir)).expect("engine reopens");
    engine.run_until_idle();

    let phases: Vec<(u64, String)> = engine
        .jobs_status()
        .into_iter()
        .map(|(id, _, phase, _)| (id, phase.name().to_string()))
        .collect();
    assert_eq!(
        phases,
        vec![(0, "completed".to_string()), (1, "quarantined".to_string())],
        "crasher must be quarantined, good job must complete"
    );
    assert_eq!(engine.job_report(0), control_report, "good job's results must be undisturbed");
    assert!(control_report.findings > 0, "equivalence is vacuous without findings");
    assert_eq!(
        engine.store().to_json(),
        control_store,
        "quarantine must remove the bad job's evidence from the store"
    );
    engine.shutdown();
}

/// A wedging job (a turn that exceeds the wall-clock bound) is detected,
/// its worker is replaced, and after `max_strikes` wedges the job is
/// quarantined while the surviving job's results match the control fleet.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "campaign-scale test; run with `cargo test --release --test serve_resilience`"
)]
fn wedging_job_is_quarantined_and_its_worker_replaced() {
    let mut control =
        ServeEngine::open(serve_config(tmp_dir("serve-wedge-control"))).expect("engine opens");
    control.submit(FIRMWARE, ITERS, SEED, 0, None).expect("submit");
    control.run_until_idle();
    let control_report = control.job_report(0);
    control.shutdown();

    let config = ServeConfig {
        // Short wedge detector so the test stays fast; the drill sleeps a
        // multiple of this bound to guarantee detection.
        turn_timeout_ms: 1_200,
        ..serve_config(tmp_dir("serve-wedge"))
    };
    let mut engine = ServeEngine::open(config).expect("engine opens");
    engine.submit(FIRMWARE, ITERS, SEED, 0, None).expect("submit good");
    engine.submit(FIRMWARE, ITERS, SEED + 7, 0, Some(Drill::WedgeAt(60))).expect("submit wedger");
    engine.run_until_idle();

    let phases: Vec<(u64, String)> = engine
        .jobs_status()
        .into_iter()
        .map(|(id, _, phase, _)| (id, phase.name().to_string()))
        .collect();
    assert_eq!(phases, vec![(0, "completed".to_string()), (1, "quarantined".to_string())]);
    assert_eq!(engine.job_report(0), control_report, "good job's results must be undisturbed");
    let telemetry = engine.metrics_snapshot().to_json(true);
    assert!(
        telemetry.contains("\"workers_replaced\""),
        "worker replacement must be visible in telemetry: {telemetry}"
    );
    engine.shutdown();
}

/// S3 property: K successive kill+resume cycles — with a torn journal
/// tail injected between two of them — concatenate to the uninterrupted
/// campaign's findings and trace spans exactly. The kill points are drawn
/// from a seeded RNG so each run of the suite exercises the same schedule.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "campaign-scale test; run with `cargo test --release --test serve_resilience`"
)]
fn k_kill_resume_cycles_concatenate_exactly() {
    use embsan::obs::MergedTrace;

    let spec = firmware_by_name("OpenHarmony-stm32f407").unwrap();
    let campaign = CampaignConfig { iterations: 2_000, seed: 77, ..CampaignConfig::default() };
    let full = run_supervised(
        spec,
        &SupervisorConfig { campaign, trace: true, ..SupervisorConfig::default() },
        None,
    )
    .unwrap();

    let journal = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("k_cycles.journal");
    std::fs::create_dir_all(journal.parent().unwrap()).unwrap();
    let mut rng = SplitMix64::seed_from_u64(0x5EED);
    let mut config = SupervisorConfig {
        campaign,
        checkpoint_interval: 250,
        trace: true,
        ..SupervisorConfig::default()
    };

    // Segment 0: the initial run, killed early.
    let mut kill_at = 300 + rng.range_u64(0, 200);
    config.kill_after = Some(kill_at);
    let first = run_supervised(spec, &config, Some(&journal)).unwrap();
    assert!(!first.completed);
    let mut segments = vec![first.trace.expect("killed run was traced")];

    // Segments 1..=K: resume, killing again at advancing points; the last
    // cycle runs to completion. Cycle 2 first tears the journal tail, as a
    // kill -9 mid-append would.
    let cycles = 3;
    let mut last = None;
    for cycle in 1..=cycles {
        if cycle == 2 {
            let len = std::fs::metadata(&journal).unwrap().len();
            let torn = rng.range_u64(1, 40);
            assert!(len > torn + 64, "journal long enough to tear");
            std::fs::OpenOptions::new()
                .write(true)
                .open(&journal)
                .unwrap()
                .set_len(len - torn)
                .unwrap();
        }
        config.kill_after = if cycle == cycles {
            None
        } else {
            kill_at += 300 + rng.range_u64(0, 300);
            Some(kill_at)
        };
        let resumed = resume_supervised(&journal, &config).unwrap();
        assert_eq!(resumed.completed, cycle == cycles, "cycle {cycle}");
        segments.push(resumed.trace.clone().expect("resumed run was traced"));
        last = Some(resumed);
    }

    // Findings: the final resume reports the cumulative campaign, which
    // must be bit-identical to the uninterrupted run's.
    let last = last.unwrap();
    assert_eq!(last.result.stats, full.result.stats, "stats must survive {cycles} kill cycles");
    assert_eq!(last.result.found.len(), full.result.found.len());
    for (a, b) in last.result.found.iter().zip(&full.result.found) {
        assert_eq!((a.latent_index, a.class), (b.latent_index, b.class));
        assert_eq!(a.reproducer, b.reproducer);
    }
    assert!(!full.result.found.is_empty(), "comparison is vacuous without findings");

    // Traces: each segment owns the spans up to the next segment's resume
    // point; the concatenation equals the uninterrupted trace exactly.
    let full_trace = full.trace.expect("uninterrupted run was traced");
    let mut stitched = MergedTrace::default();
    for (index, segment) in segments.iter().enumerate() {
        let cut = segments
            .get(index + 1)
            .map(|next| next.spans.first().expect("resumed segment has spans").iter);
        stitched.spans.extend(
            segment.spans.iter().filter(|span| cut.is_none_or(|cut| span.iter < cut)).cloned(),
        );
    }
    assert_eq!(stitched.spans.len(), full_trace.spans.len(), "span count must match");
    for (got, want) in stitched.spans.iter().zip(&full_trace.spans) {
        assert_eq!(got, want, "iteration {} must replay its exact span", want.iter);
    }
}
