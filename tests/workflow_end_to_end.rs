//! End-to-end integration of the full EMBSAN workflow across crates:
//! distill → build → probe → session → detect, on every architecture and
//! OS flavour.

use embsan::core::probe::{probe, ProbeMode};
use embsan::core::reference_specs;
use embsan::core::report::BugClass;
use embsan::core::session::Session;
use embsan::emu::profile::Arch;
use embsan::guestos::bugs::{trigger_key, BugKind, BugSpec};
use embsan::guestos::executor::{sys, ExecProgram};
use embsan::guestos::{os, BaseOs, BuildOptions, SanMode};

const READY_BUDGET: u64 = 200_000_000;
const RUN_BUDGET: u64 = 20_000_000;

fn detect(
    base_os: BaseOs,
    arch: Arch,
    san: SanMode,
    mode: ProbeMode,
    kind: BugKind,
) -> Vec<BugClass> {
    let bug = BugSpec::new("integration/bug", kind);
    let opts = BuildOptions::new(arch).san(san);
    let bugs = std::slice::from_ref(&bug);
    let image = match base_os {
        BaseOs::EmbeddedLinux => os::emblinux::build(&opts, bugs),
        BaseOs::FreeRtos => os::freertos::build(&opts, bugs),
        BaseOs::LiteOs => os::liteos::build(&opts, bugs),
        BaseOs::VxWorks => os::vxworks::build(&opts, bugs),
    }
    .expect("firmware builds");
    let specs = reference_specs().expect("reference specs");
    let artifacts = probe(&image, mode, None).expect("probe succeeds");
    let mut session = Session::new(&image, &specs, &artifacts).expect("session");
    session.run_to_ready(READY_BUDGET).expect("ready");
    let mut program = ExecProgram::new();
    program.push(sys::BUG_BASE, &[trigger_key("integration/bug")]);
    let outcome = session.run_program(&program, RUN_BUDGET).expect("program runs");
    outcome.reports.iter().map(|r| r.class).collect()
}

/// EMBSAN-C detects a heap OOB on every architecture.
#[test]
fn embsan_c_oob_on_all_architectures() {
    for arch in Arch::ALL {
        let classes = detect(
            BaseOs::EmbeddedLinux,
            arch,
            SanMode::SanCall,
            ProbeMode::CompileTime,
            BugKind::OobWrite,
        );
        assert_eq!(classes, vec![BugClass::HeapOob], "arch {arch:?}");
    }
}

/// EMBSAN-D adapts to every OS family's allocator (the adaptability claim
/// of §5): the same runtime, pointed at four different allocator
/// interfaces by the prober, detects the same UAF.
#[test]
fn embsan_d_uaf_on_all_os_families() {
    for (base_os, mode) in [
        (BaseOs::EmbeddedLinux, ProbeMode::DynamicSource),
        (BaseOs::FreeRtos, ProbeMode::DynamicSource),
        (BaseOs::LiteOs, ProbeMode::DynamicSource),
        // VxWorks ships stripped: binary-only probing.
        (BaseOs::VxWorks, ProbeMode::DynamicBinary),
    ] {
        let classes = detect(base_os, Arch::Armv, SanMode::None, mode, BugKind::Uaf);
        assert!(classes.contains(&BugClass::Uaf), "{base_os:?}: {classes:?}");
    }
}

/// The EMBSAN-C / EMBSAN-D global-OOB capability gap (Table 2's last two
/// rows) reproduces on a big-endian MIPS target too.
#[test]
fn global_oob_gap_on_mips() {
    let detected_c = detect(
        BaseOs::EmbeddedLinux,
        Arch::Mipsv,
        SanMode::SanCall,
        ProbeMode::CompileTime,
        BugKind::GlobalOob,
    );
    assert_eq!(detected_c, vec![BugClass::GlobalOob]);
    let detected_d = detect(
        BaseOs::EmbeddedLinux,
        Arch::Mipsv,
        SanMode::None,
        ProbeMode::DynamicSource,
        BugKind::GlobalOob,
    );
    assert!(detected_d.is_empty(), "{detected_d:?}");
}

/// Double free on FreeRTOS's heap_4 allocator, both attach modes.
#[test]
fn double_free_on_freertos() {
    for (san, mode) in
        [(SanMode::SanCall, ProbeMode::CompileTime), (SanMode::None, ProbeMode::DynamicSource)]
    {
        let classes = detect(BaseOs::FreeRtos, Arch::Armv, san, mode, BugKind::DoubleFree);
        assert!(classes.contains(&BugClass::DoubleFree), "{san:?}: {classes:?}");
    }
}

/// The probed artifacts are *portable DSL documents*: rendering them to
/// text, re-parsing, and building a fresh session from the re-parsed specs
/// yields the same detection (the paper's claim that all coordination goes
/// through the DSL).
#[test]
fn artifacts_round_trip_through_dsl_text() {
    let bug = BugSpec::new("integration/dsl", BugKind::Uaf);
    let opts = BuildOptions::new(Arch::X86v).san(SanMode::SanCall);
    let image = os::emblinux::build(&opts, std::slice::from_ref(&bug)).unwrap();
    let artifacts = probe(&image, ProbeMode::CompileTime, None).unwrap();

    // Render → reparse.
    let text = artifacts.to_dsl();
    let items = embsan::dsl::parse(&text).expect("prober output is valid DSL");
    let platform = items
        .iter()
        .find_map(|i| match i {
            embsan::dsl::Item::Platform(p) => Some(p.clone()),
            _ => None,
        })
        .expect("platform item present");
    let init = items
        .iter()
        .find_map(|i| match i {
            embsan::dsl::Item::Init(p) => Some(p.clone()),
            _ => None,
        })
        .expect("init item present");
    let reparsed =
        embsan::core::probe::ProbeArtifacts { platform, init, stats: Default::default() };

    // The merged sanitizer spec round-trips the same way.
    let merged = embsan::dsl::merge(&reference_specs().unwrap());
    let reparsed_spec =
        match embsan::dsl::parse(&merged.to_string()).expect("merged spec reparses").remove(0) {
            embsan::dsl::Item::Sanitizer(s) => s,
            _ => panic!("expected sanitizer"),
        };

    let mut session = Session::new(&image, &[reparsed_spec], &reparsed).unwrap();
    session.run_to_ready(READY_BUDGET).unwrap();
    let mut program = ExecProgram::new();
    program.push(sys::BUG_BASE, &[trigger_key("integration/dsl")]);
    let outcome = session.run_program(&program, RUN_BUDGET).unwrap();
    assert_eq!(outcome.reports.iter().map(|r| r.class).collect::<Vec<_>>(), vec![BugClass::Uaf]);
}

/// Reports symbolize against the firmware image: the rendered text names
/// the buggy handler and the allocator.
#[test]
fn reports_symbolize_against_the_image() {
    let bug = BugSpec::new("integration/sym", BugKind::Uaf);
    let opts = BuildOptions::new(Arch::Armv).san(SanMode::SanCall);
    let image = os::emblinux::build(&opts, std::slice::from_ref(&bug)).unwrap();
    let specs = reference_specs().unwrap();
    let artifacts = probe(&image, ProbeMode::CompileTime, None).unwrap();
    let mut session = Session::new(&image, &specs, &artifacts).unwrap();
    session.run_to_ready(READY_BUDGET).unwrap();
    let mut program = ExecProgram::new();
    program.push(sys::BUG_BASE, &[trigger_key("integration/sym")]);
    let outcome = session.run_program(&program, RUN_BUDGET).unwrap();
    let text = session.render_report(&outcome.reports[0]);
    assert!(text.contains("use-after-free"), "{text}");
    assert!(text.contains("sys_bug_0"), "{text}");
    assert!(text.contains("Freed at"), "{text}");
}
