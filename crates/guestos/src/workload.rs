//! Deterministic workloads for the overhead study (Figure 2).
//!
//! The paper measures slowdown while replaying "the merged corpus acquired
//! after completing the previous experiment". This module generates the
//! equivalent: a deterministic mix of allocator churn, bounded object I/O,
//! bulk memory operations and CPU-bound work, seeded so every sanitizer
//! configuration replays byte-identical programs.

use crate::executor::{sys, ExecProgram};

/// A simple deterministic PRNG (xorshift32), independent of the `rand`
/// crate so the workload definition is self-contained and stable.
#[derive(Debug, Clone)]
pub struct WorkloadRng(u32);

impl WorkloadRng {
    /// Creates a generator (zero seeds are remapped).
    pub fn new(seed: u32) -> WorkloadRng {
        WorkloadRng(if seed == 0 { 0xBADC_0FFE } else { seed })
    }

    /// Next pseudo-random value.
    pub fn next_u32(&mut self) -> u32 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.0 = x;
        x
    }

    fn below(&mut self, bound: u32) -> u32 {
        self.next_u32() % bound
    }
}

/// Generates one corpus-replay program of `calls` syscalls.
///
/// The mix models a syscall-fuzzing corpus on an I/O-ish kernel: all four
/// object slots stay live (a free is immediately followed by a
/// re-allocation), bulk fill/copy and bounded reads/writes dominate, with
/// a modest share of CPU-bound and bookkeeping calls. The resulting
/// instruction stream is roughly 25–35% memory accesses — the regime where
/// sanitizer check costs are visible, as in the paper's workloads.
pub fn corpus_program(rng: &mut WorkloadRng, calls: usize) -> ExecProgram {
    let calls = calls.min(crate::executor::MAX_CALLS);
    let mut program = ExecProgram::new();
    // Keep every slot live so object operations do real work.
    for slot in 0..4 {
        program.push(sys::ALLOC, &[128 + rng.below(640), slot]);
    }
    for _ in 0..calls.saturating_sub(4) {
        match rng.below(100) {
            // Allocator churn that keeps slots live.
            0..=11 => {
                let slot = rng.below(4);
                program.push(sys::FREE, &[slot]);
                program.push(sys::ALLOC, &[64 + rng.below(700), slot]);
            }
            // Bounded object reads/writes.
            12..=41 => {
                let slot = rng.below(4);
                if rng.below(2) == 0 {
                    program.push(sys::WRITE, &[slot, rng.below(768), rng.below(256)]);
                } else {
                    program.push(sys::READ, &[slot, rng.below(768)]);
                }
            }
            // Bulk memory operations (the memset/memcpy of driver paths).
            42..=76 => {
                if rng.below(2) == 0 {
                    program.push(sys::FILL, &[rng.below(4), rng.below(256)]);
                } else {
                    program.push(sys::COPY, &[rng.below(4), rng.below(4)]);
                }
            }
            // CPU-bound work.
            77..=86 => {
                program.push(sys::HASH, &[100 + rng.below(200)]);
            }
            _ => {
                if rng.below(2) == 0 {
                    program.push(sys::STAT, &[]);
                } else {
                    program.push(sys::ECHO, &[rng.next_u32()]);
                }
            }
        }
        if program.calls.len() + 2 > crate::executor::MAX_CALLS {
            break;
        }
    }
    program
}

/// Generates the merged corpus: `programs` programs of `calls` calls each.
pub fn merged_corpus(seed: u32, programs: usize, calls: usize) -> Vec<ExecProgram> {
    let mut rng = WorkloadRng::new(seed);
    (0..programs).map(|_| corpus_program(&mut rng, calls)).collect()
}

/// Generates one interrupt-heavy program (for `BuildOptions::irq`
/// firmware): arm the GPIO pattern generator — usually with a deferred
/// call riding along — then keep the mainloop busy with unsynchronized
/// `irq_load` read-modify-write bursts interleaved with ordinary object
/// traffic. While the mainloop loops, the secondary CPU's ISR keeps
/// firing on GPIO edges and touching the same counter — the ISR/mainloop
/// interleaving a syscall-only workload never produces.
pub fn irq_program(rng: &mut WorkloadRng, calls: usize) -> ExecProgram {
    let calls = calls.min(crate::executor::MAX_CALLS);
    let mut program = ExecProgram::new();
    // Tight period = many edges per mainloop burst.
    let period = 64 + rng.below(192);
    let both_edges = rng.below(2);
    let deferred = if rng.below(2) == 0 { 0 } else { 200 + rng.below(800) };
    program.push(sys::IRQ_SETUP, &[period, both_edges, deferred]);
    program.push(sys::ALLOC, &[64 + rng.below(192), 0]);
    for _ in 0..calls.saturating_sub(2) {
        match rng.below(100) {
            // The mainloop half of the race dominates.
            0..=54 => {
                program.push(sys::IRQ_LOAD, &[32 + rng.below(480)]);
            }
            // Re-arm with a fresh cadence mid-program.
            55..=64 => {
                program.push(sys::IRQ_SETUP, &[64 + rng.below(448), rng.below(2), 0]);
            }
            // Ordinary object traffic so the address space stays noisy.
            65..=84 => {
                if rng.below(2) == 0 {
                    program.push(sys::WRITE, &[0, rng.below(192), rng.below(256)]);
                } else {
                    program.push(sys::READ, &[0, rng.below(192)]);
                }
            }
            _ => {
                program.push(sys::HASH, &[100 + rng.below(200)]);
            }
        }
        if program.calls.len() >= calls {
            break;
        }
    }
    program
}

/// Generates the interrupt-heavy corpus: `programs` programs of `calls`
/// calls each.
pub fn irq_corpus(seed: u32, programs: usize, calls: usize) -> Vec<ExecProgram> {
    let mut rng = WorkloadRng::new(seed);
    (0..programs).map(|_| irq_program(&mut rng, calls)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        let a = merged_corpus(7, 5, 40);
        let b = merged_corpus(7, 5, 40);
        assert_eq!(a, b);
        let c = merged_corpus(8, 5, 40);
        assert_ne!(a, c);
    }

    #[test]
    fn corpus_respects_limits() {
        for program in merged_corpus(3, 10, 60) {
            assert!(program.calls.len() <= crate::executor::MAX_CALLS);
            assert!(!program.calls.is_empty());
            for call in &program.calls {
                assert!(call.args.len() <= crate::executor::MAX_ARGS);
                // Workload programs never invoke bug syscalls.
                assert!(call.nr < sys::BUG_BASE);
            }
            // Round-trips through the wire format.
            assert_eq!(ExecProgram::decode(&program.encode()), Some(program));
        }
    }

    #[test]
    fn corpus_has_a_mix_of_call_kinds() {
        let corpus = merged_corpus(42, 4, 100);
        let all: Vec<u8> = corpus.iter().flat_map(|p| p.calls.iter().map(|c| c.nr)).collect();
        for nr in [sys::ALLOC, sys::WRITE, sys::READ, sys::HASH] {
            assert!(all.contains(&nr), "missing syscall {nr}");
        }
    }
}
