//! VxWorks memPartLib-style allocator (`memPartAlloc`/`memPartFree`).
//!
//! An exact-fit freelist over 8-byte-rounded sizes with a bump-pointer
//! fallback. Block layout: `[size u32 | next u32 | user area]`. Freed
//! blocks are reused only by requests rounding to the same size — a common
//! embedded partition-allocator behaviour, and usefully different from the
//! other three allocators for the prober's signature matching.

use embsan_asm::builder::Asm;
use embsan_asm::ir::GlobalDef;
use embsan_asm::sanabi::stubs;
use embsan_emu::isa::Reg;

use super::AllocatorPieces;
use crate::opts::BuildOptions;

/// Block header bytes.
pub const HEADER: u32 = 8;

/// Emits `memPartAlloc`, `memPartFree` and `mempart_init`.
pub fn emit(opts: &BuildOptions) -> AllocatorPieces {
    let san = opts.san.is_instrumented();
    let mut asm = Asm::new();

    asm.func("mempart_init");
    asm.la(Reg::A0, "__heap_start");
    asm.la(Reg::A1, "mempart_brk");
    asm.sw(Reg::A0, Reg::A1, 0);
    asm.la(Reg::A1, "mempart_free_head");
    asm.sw(Reg::R0, Reg::A1, 0);
    asm.ret();

    // memPartAlloc(a0 = size) -> a0 = user ptr (0 on failure).
    asm.func("memPartAlloc");
    asm.prologue(&[Reg::R7, Reg::R8]);
    asm.beq(Reg::A0, Reg::R0, "memPartAlloc.fail");
    asm.mv(Reg::R7, Reg::A0);
    // a5 = size rounded up to 8.
    asm.addi(Reg::A5, Reg::A0, 7);
    asm.li(Reg::A1, i64::from(0xFFFF_FFF8u32));
    asm.and(Reg::A5, Reg::A5, Reg::A1);
    // Exact-fit walk: a3 = prev slot, a4 = current.
    asm.la(Reg::A3, "mempart_free_head");
    asm.lw(Reg::A4, Reg::A3, 0);
    asm.label("memPartAlloc.walk");
    asm.beq(Reg::A4, Reg::R0, "memPartAlloc.carve");
    asm.lw(Reg::A1, Reg::A4, 0);
    asm.beq(Reg::A1, Reg::A5, "memPartAlloc.take");
    asm.addi(Reg::A3, Reg::A4, 4);
    asm.lw(Reg::A4, Reg::A4, 4);
    asm.jump("memPartAlloc.walk");
    asm.label("memPartAlloc.take");
    asm.lw(Reg::A1, Reg::A4, 4);
    asm.sw(Reg::A1, Reg::A3, 0);
    asm.addi(Reg::R8, Reg::A4, HEADER as i32);
    asm.jump("memPartAlloc.done");
    asm.label("memPartAlloc.carve");
    asm.la(Reg::A2, "mempart_brk");
    asm.lw(Reg::A4, Reg::A2, 0);
    asm.addi(Reg::A1, Reg::A5, HEADER as i32);
    asm.add(Reg::A1, Reg::A4, Reg::A1);
    asm.la(Reg::A0, "__heap_end");
    asm.bltu(Reg::A0, Reg::A1, "memPartAlloc.fail");
    asm.sw(Reg::A1, Reg::A2, 0);
    asm.sw(Reg::A5, Reg::A4, 0); // header: rounded size
    asm.addi(Reg::R8, Reg::A4, HEADER as i32);
    asm.label("memPartAlloc.done");
    if san {
        asm.mv(Reg::A0, Reg::R8);
        asm.mv(Reg::A1, Reg::R7);
        asm.call(stubs::ALLOC);
    }
    asm.mv(Reg::A0, Reg::R8);
    asm.epilogue(&[Reg::R7, Reg::R8]);
    asm.label("memPartAlloc.fail");
    asm.li(Reg::A0, 0);
    asm.epilogue(&[Reg::R7, Reg::R8]);

    // memPartFree(a0 = user ptr).
    asm.func("memPartFree");
    asm.prologue(&[Reg::R7]);
    asm.beq(Reg::A0, Reg::R0, "memPartFree.out");
    asm.mv(Reg::R7, Reg::A0);
    if san {
        asm.call(stubs::FREE);
    }
    asm.addi(Reg::A4, Reg::R7, -(HEADER as i32));
    asm.la(Reg::A2, "mempart_free_head");
    asm.lw(Reg::A1, Reg::A2, 0);
    asm.sw(Reg::A1, Reg::A4, 4);
    asm.sw(Reg::A4, Reg::A2, 0);
    asm.label("memPartFree.out");
    asm.epilogue(&[Reg::R7]);

    AllocatorPieces {
        asm,
        globals: vec![
            GlobalDef::plain("mempart_free_head", vec![0; 4]),
            GlobalDef::plain("mempart_brk", vec![0; 4]),
        ],
        no_instrument: vec!["mempart_init".into(), "memPartAlloc".into(), "memPartFree".into()],
        init_fn: "mempart_init",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsan_emu::profile::Arch;

    #[test]
    fn emits_allocator_functions() {
        let pieces = emit(&BuildOptions::new(Arch::Armv));
        let mut p = embsan_asm::ir::Program::new();
        p.text = pieces.asm.into_items();
        assert!(p.defines_function("memPartAlloc"));
        assert!(p.defines_function("memPartFree"));
    }
}
