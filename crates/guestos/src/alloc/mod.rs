//! Guest heap allocators, one per OS family.
//!
//! Each module emits the allocator's functions in guest assembly and
//! declares its globals. The designs intentionally differ — a sanitizer
//! that adapts "to a specific system without … implementing major changes"
//! (the paper's challenge 1) must cope with all of them:
//!
//! | OS | module | design |
//! |----|--------|--------|
//! | Embedded Linux | [`slab`] | size-class slab with per-class freelists |
//! | FreeRTOS | [`heap4`] | heap_4-style first-fit with block splitting |
//! | LiteOS | [`membox`] | fixed-block membox pool + bump fallback |
//! | VxWorks | [`mempart`] | memPartLib-style exact-fit freelist |
//!
//! Shared conventions: `alloc(a0 = size) → a0 = ptr` (0 on failure),
//! `free(a0 = ptr)`; instrumented builds call `__san_alloc`/`__san_free`
//! (the dummy-library hooks) at the appropriate points; all allocator
//! internals are in the `no_instrument` set — under EMBSAN-D, the runtime
//! instead suppresses checks while a hooked allocator frame is active,
//! since allocators legitimately touch free memory.

pub mod heap4;
pub mod membox;
pub mod mempart;
pub mod slab;

use embsan_asm::builder::Asm;
use embsan_asm::ir::GlobalDef;

use crate::opts::{BaseOs, BuildOptions};

/// What an allocator module contributes to a firmware build.
pub struct AllocatorPieces {
    /// The emitted functions.
    pub asm: Asm,
    /// Globals the allocator needs.
    pub globals: Vec<GlobalDef>,
    /// Function names that must not be instrumented.
    pub no_instrument: Vec<String>,
    /// Name of the boot-time initialization function (called by `os_init`).
    pub init_fn: &'static str,
}

/// Emits the allocator for `os`.
pub fn emit_for(os: BaseOs, opts: &BuildOptions) -> AllocatorPieces {
    match os {
        BaseOs::EmbeddedLinux => slab::emit(opts),
        BaseOs::FreeRtos => heap4::emit(opts),
        BaseOs::LiteOs => membox::emit(opts),
        BaseOs::VxWorks => mempart::emit(opts),
    }
}
