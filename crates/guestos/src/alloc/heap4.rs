//! FreeRTOS heap_4-style allocator (`pvPortMalloc`/`vPortFree`).
//!
//! A first-fit free-list allocator with block splitting over the whole heap
//! region. Block layout: `[size u32 (bit 31 = allocated) | next-free u32 |
//! user area]`. Unlike the real heap_4 this simplified port does not
//! coalesce on free (documented deviation; fragmentation is irrelevant to
//! the sanitizer experiments, the allocator *interface* and access patterns
//! are what matter).

use embsan_asm::builder::Asm;
use embsan_asm::ir::GlobalDef;
use embsan_asm::sanabi::stubs;
use embsan_emu::isa::Reg;

use super::AllocatorPieces;
use crate::opts::BuildOptions;

/// Block header bytes.
pub const HEADER: u32 = 8;
/// Allocated flag in the size word.
pub const ALLOC_BIT: i64 = 1 << 31;

/// Emits `pvPortMalloc`, `vPortFree` and `heap4_init`.
pub fn emit(opts: &BuildOptions) -> AllocatorPieces {
    let san = opts.san.is_instrumented();
    let mut asm = Asm::new();

    // heap4_init(): one free block spanning the heap.
    asm.func("heap4_init");
    asm.la(Reg::A0, "__heap_start");
    asm.la(Reg::A1, "__heap_end");
    asm.sub(Reg::A1, Reg::A1, Reg::A0); // total size
    asm.sw(Reg::A1, Reg::A0, 0); // size, free
    asm.sw(Reg::R0, Reg::A0, 4); // next = NULL
    asm.la(Reg::A2, "heap4_free_head");
    asm.sw(Reg::A0, Reg::A2, 0);
    asm.ret();

    // pvPortMalloc(a0 = size) -> a0 = user ptr (0 on failure).
    asm.func("pvPortMalloc");
    asm.prologue(&[Reg::R7, Reg::R8]);
    asm.beq(Reg::A0, Reg::R0, "pvPortMalloc.fail");
    asm.mv(Reg::R7, Reg::A0); // r7 = requested size
                              // a5 = total block size needed: header + size rounded up to 8.
    asm.addi(Reg::A5, Reg::A0, (HEADER + 7) as i32);
    asm.li(Reg::A1, i64::from(0xFFFF_FFF8u32));
    asm.and(Reg::A5, Reg::A5, Reg::A1);
    // a3 = prev slot (&heap4_free_head), a4 = current block.
    asm.la(Reg::A3, "heap4_free_head");
    asm.lw(Reg::A4, Reg::A3, 0);
    asm.label("pvPortMalloc.walk");
    asm.beq(Reg::A4, Reg::R0, "pvPortMalloc.fail");
    asm.lw(Reg::A1, Reg::A4, 0); // block size (free → bit31 clear)
    asm.bgeu(Reg::A1, Reg::A5, "pvPortMalloc.take");
    asm.addi(Reg::A3, Reg::A4, 4); // prev slot = &cur->next
    asm.lw(Reg::A4, Reg::A4, 4);
    asm.jump("pvPortMalloc.walk");
    asm.label("pvPortMalloc.take");
    // Split if the remainder can hold a minimal block (header + 8).
    asm.sub(Reg::A2, Reg::A1, Reg::A5); // remainder
    asm.li(Reg::A0, i64::from(HEADER + 8));
    asm.bltu(Reg::A2, Reg::A0, "pvPortMalloc.whole");
    // new free block at a4 + a5
    asm.add(Reg::A0, Reg::A4, Reg::A5);
    asm.sw(Reg::A2, Reg::A0, 0); // remainder size, free
    asm.lw(Reg::A1, Reg::A4, 4); // old next
    asm.sw(Reg::A1, Reg::A0, 4);
    asm.sw(Reg::A0, Reg::A3, 0); // prev slot -> new block
    asm.mv(Reg::A1, Reg::A5); // taken size = exactly needed
    asm.jump("pvPortMalloc.mark");
    asm.label("pvPortMalloc.whole");
    // Unlink the whole block.
    asm.lw(Reg::A0, Reg::A4, 4);
    asm.sw(Reg::A0, Reg::A3, 0);
    asm.label("pvPortMalloc.mark");
    // Mark allocated: size | ALLOC_BIT.
    asm.li(Reg::A0, ALLOC_BIT);
    asm.or(Reg::A1, Reg::A1, Reg::A0);
    asm.sw(Reg::A1, Reg::A4, 0);
    asm.addi(Reg::R8, Reg::A4, HEADER as i32); // user ptr
    if san {
        asm.mv(Reg::A0, Reg::R8);
        asm.mv(Reg::A1, Reg::R7);
        asm.call(stubs::ALLOC);
    }
    asm.mv(Reg::A0, Reg::R8);
    asm.epilogue(&[Reg::R7, Reg::R8]);
    asm.label("pvPortMalloc.fail");
    asm.li(Reg::A0, 0);
    asm.epilogue(&[Reg::R7, Reg::R8]);

    // vPortFree(a0 = user ptr).
    asm.func("vPortFree");
    asm.prologue(&[Reg::R7]);
    asm.beq(Reg::A0, Reg::R0, "vPortFree.out");
    asm.mv(Reg::R7, Reg::A0);
    if san {
        asm.call(stubs::FREE);
    }
    asm.addi(Reg::A4, Reg::R7, -(HEADER as i32)); // block header
                                                  // Clear the allocated bit.
    asm.lw(Reg::A1, Reg::A4, 0);
    asm.li(Reg::A2, ALLOC_BIT);
    asm.xor(Reg::A1, Reg::A1, Reg::A2);
    asm.sw(Reg::A1, Reg::A4, 0);
    // Push at the head of the free list.
    asm.la(Reg::A3, "heap4_free_head");
    asm.lw(Reg::A1, Reg::A3, 0);
    asm.sw(Reg::A1, Reg::A4, 4);
    asm.sw(Reg::A4, Reg::A3, 0);
    asm.label("vPortFree.out");
    asm.epilogue(&[Reg::R7]);

    AllocatorPieces {
        asm,
        globals: vec![GlobalDef::plain("heap4_free_head", vec![0; 4])],
        no_instrument: vec!["heap4_init".into(), "pvPortMalloc".into(), "vPortFree".into()],
        init_fn: "heap4_init",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsan_emu::profile::Arch;

    #[test]
    fn emits_allocator_functions() {
        let pieces = emit(&BuildOptions::new(Arch::Mipsv));
        let mut p = embsan_asm::ir::Program::new();
        p.text = pieces.asm.into_items();
        assert!(p.defines_function("pvPortMalloc"));
        assert!(p.defines_function("vPortFree"));
        assert!(p.defines_function("heap4_init"));
    }
}
