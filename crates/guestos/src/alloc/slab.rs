//! Embedded Linux slab allocator (`kmalloc`/`kfree`).
//!
//! Six size classes (32…1024 bytes). Each chunk is `[8-byte header |
//! class-size user area]`; the header stores the class index. Freed chunks
//! are pushed on a per-class freelist whose `next` pointer lives in the
//! first user word (as in the real SLUB allocator — which is exactly why
//! sanitizers must tolerate allocator-internal accesses to freed memory).

use embsan_asm::builder::Asm;
use embsan_asm::ir::GlobalDef;
use embsan_asm::sanabi::stubs;
use embsan_emu::isa::Reg;

use super::AllocatorPieces;
use crate::opts::BuildOptions;

/// Number of size classes.
pub const NUM_CLASSES: usize = 6;
/// Smallest class size in bytes.
pub const MIN_CLASS: u32 = 32;
/// Largest class size in bytes (larger requests fail).
pub const MAX_CLASS: u32 = 1024;
/// Chunk header bytes preceding each user area.
pub const HEADER: u32 = 8;

/// Emits `kmalloc`, `kfree` and `slab_init`.
pub fn emit(opts: &BuildOptions) -> AllocatorPieces {
    let san = opts.san.is_instrumented();
    let mut asm = Asm::new();

    // slab_init(): heap_brk = __heap_start; freelists already zeroed (bss).
    asm.func("slab_init");
    asm.la(Reg::A0, "__heap_start");
    asm.la(Reg::A1, "heap_brk");
    asm.sw(Reg::A0, Reg::A1, 0);
    asm.ret();

    // kmalloc(a0 = size) -> a0 = user ptr (0 on failure).
    asm.func("kmalloc");
    asm.prologue(&[Reg::R7, Reg::R8]);
    asm.mv(Reg::R7, Reg::A0); // r7 = requested size
                              // Class selection: a2 = index, a3 = class size.
    asm.beq(Reg::A0, Reg::R0, "kmalloc.fail"); // zero-size alloc fails
    asm.li(Reg::A2, 0);
    asm.li(Reg::A3, i64::from(MIN_CLASS));
    asm.label("kmalloc.class");
    asm.bgeu(Reg::A3, Reg::R7, "kmalloc.classed");
    asm.slli(Reg::A3, Reg::A3, 1);
    asm.addi(Reg::A2, Reg::A2, 1);
    asm.li(Reg::A4, NUM_CLASSES as i64);
    asm.blt(Reg::A2, Reg::A4, "kmalloc.class");
    asm.jump("kmalloc.fail");
    asm.label("kmalloc.classed");
    // a4 = &slab_heads[class]
    asm.la(Reg::A4, "slab_heads");
    asm.slli(Reg::A1, Reg::A2, 2);
    asm.add(Reg::A4, Reg::A4, Reg::A1);
    asm.lw(Reg::A1, Reg::A4, 0); // head
    asm.beq(Reg::A1, Reg::R0, "kmalloc.carve");
    // Pop from freelist: head's first user word is the next pointer.
    asm.lw(Reg::A5, Reg::A1, 0);
    asm.sw(Reg::A5, Reg::A4, 0);
    asm.mv(Reg::R8, Reg::A1); // r8 = user ptr
    asm.jump("kmalloc.done");
    asm.label("kmalloc.carve");
    // Carve a fresh chunk at the bump pointer.
    asm.la(Reg::A4, "heap_brk");
    asm.lw(Reg::A1, Reg::A4, 0); // a1 = chunk base
    asm.addi(Reg::A5, Reg::A3, HEADER as i32);
    asm.add(Reg::A5, Reg::A1, Reg::A5); // a5 = new brk
    asm.la(Reg::A0, "__heap_end");
    asm.bltu(Reg::A0, Reg::A5, "kmalloc.fail");
    asm.sw(Reg::A5, Reg::A4, 0);
    asm.sw(Reg::A2, Reg::A1, 0); // header: class index
    asm.addi(Reg::R8, Reg::A1, HEADER as i32);
    asm.label("kmalloc.done");
    if san {
        // __san_alloc(addr = r8, size = r7)
        asm.mv(Reg::A0, Reg::R8);
        asm.mv(Reg::A1, Reg::R7);
        asm.call(stubs::ALLOC);
    }
    asm.mv(Reg::A0, Reg::R8);
    asm.epilogue(&[Reg::R7, Reg::R8]);
    asm.label("kmalloc.fail");
    asm.li(Reg::A0, 0);
    asm.epilogue(&[Reg::R7, Reg::R8]);

    // kfree(a0 = user ptr); frees nothing on NULL.
    asm.func("kfree");
    asm.prologue(&[Reg::R7]);
    asm.beq(Reg::A0, Reg::R0, "kfree.out");
    asm.mv(Reg::R7, Reg::A0);
    if san {
        asm.call(stubs::FREE); // a0 is already the pointer
    }
    // Push onto the class freelist: next ptr into the first user word.
    asm.lw(Reg::A2, Reg::R7, -(HEADER as i32)); // class index from header
    asm.la(Reg::A4, "slab_heads");
    asm.slli(Reg::A1, Reg::A2, 2);
    asm.add(Reg::A4, Reg::A4, Reg::A1);
    asm.lw(Reg::A1, Reg::A4, 0);
    asm.sw(Reg::A1, Reg::R7, 0);
    asm.sw(Reg::R7, Reg::A4, 0);
    asm.label("kfree.out");
    asm.epilogue(&[Reg::R7]);

    AllocatorPieces {
        asm,
        globals: vec![
            GlobalDef::plain("slab_heads", vec![0; NUM_CLASSES * 4]),
            GlobalDef::plain("heap_brk", vec![0; 4]),
        ],
        no_instrument: vec!["slab_init".into(), "kmalloc".into(), "kfree".into()],
        init_fn: "slab_init",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::SanMode;
    use embsan_asm::ir::{AInsn, TextItem};
    use embsan_emu::profile::Arch;

    #[test]
    fn emits_allocator_functions() {
        let pieces = emit(&BuildOptions::new(Arch::Armv));
        let mut p = embsan_asm::ir::Program::new();
        p.text = pieces.asm.into_items();
        assert!(p.defines_function("kmalloc"));
        assert!(p.defines_function("kfree"));
        assert!(p.defines_function("slab_init"));
    }

    #[test]
    fn san_hooks_only_in_instrumented_builds() {
        let has_alloc_hook = |opts: &BuildOptions| {
            emit(opts).asm.items().iter().any(
                |i| matches!(i, TextItem::Insn(AInsn::Call { target }) if target == stubs::ALLOC),
            )
        };
        assert!(!has_alloc_hook(&BuildOptions::new(Arch::Armv)));
        assert!(has_alloc_hook(&BuildOptions::new(Arch::Armv).san(SanMode::SanCall)));
        assert!(has_alloc_hook(&BuildOptions::new(Arch::Armv).san(SanMode::NativeKasan)));
    }
}
