//! LiteOS membox allocator (`LOS_MemAlloc`/`LOS_MemFree`).
//!
//! A fixed-block pool: the front of the heap is carved into `POOL_BLOCKS`
//! blocks of `BLOCK_SIZE` bytes chained on a freelist at init; requests
//! that fit take a pool block, larger requests fall back to a bump pointer
//! (and cannot be freed — LiteOS static-pool semantics).

use embsan_asm::builder::Asm;
use embsan_asm::ir::GlobalDef;
use embsan_asm::sanabi::stubs;
use embsan_emu::isa::Reg;

use super::AllocatorPieces;
use crate::opts::BuildOptions;

/// Pool block size in bytes (8-byte header + 120 user bytes).
pub const BLOCK_SIZE: u32 = 128;
/// User bytes per pool block.
pub const BLOCK_USER: u32 = BLOCK_SIZE - 8;
/// Number of pool blocks carved at init.
pub const POOL_BLOCKS: u32 = 512;

/// Emits `LOS_MemAlloc`, `LOS_MemFree` and `membox_init`.
pub fn emit(opts: &BuildOptions) -> AllocatorPieces {
    let san = opts.san.is_instrumented();
    let mut asm = Asm::new();

    // membox_init(): chain POOL_BLOCKS blocks; bump pointer after the pool.
    asm.func("membox_init");
    asm.la(Reg::A0, "__heap_start");
    asm.li(Reg::A1, i64::from(POOL_BLOCKS));
    asm.la(Reg::A2, "membox_free_head");
    asm.sw(Reg::R0, Reg::A2, 0);
    asm.label("membox_init.loop");
    asm.beq(Reg::A1, Reg::R0, "membox_init.done");
    // push block a0: block->next = head; head = block
    asm.lw(Reg::A3, Reg::A2, 0);
    asm.sw(Reg::A3, Reg::A0, 0);
    asm.sw(Reg::A0, Reg::A2, 0);
    asm.addi(Reg::A0, Reg::A0, BLOCK_SIZE as i32);
    asm.addi(Reg::A1, Reg::A1, -1);
    asm.jump("membox_init.loop");
    asm.label("membox_init.done");
    // bump pointer starts after the pool (a0 already points there).
    asm.la(Reg::A2, "membox_brk");
    asm.sw(Reg::A0, Reg::A2, 0);
    asm.ret();

    // LOS_MemAlloc(a0 = size) -> a0 = user ptr (0 on failure).
    asm.func("LOS_MemAlloc");
    asm.prologue(&[Reg::R7, Reg::R8]);
    asm.beq(Reg::A0, Reg::R0, "LOS_MemAlloc.fail");
    asm.mv(Reg::R7, Reg::A0);
    asm.li(Reg::A1, i64::from(BLOCK_USER));
    asm.bltu(Reg::A1, Reg::A0, "LOS_MemAlloc.big");
    // Pool path: pop a block.
    asm.la(Reg::A2, "membox_free_head");
    asm.lw(Reg::A3, Reg::A2, 0);
    asm.beq(Reg::A3, Reg::R0, "LOS_MemAlloc.fail"); // pool exhausted
    asm.lw(Reg::A4, Reg::A3, 0);
    asm.sw(Reg::A4, Reg::A2, 0);
    // Tag header: 1 = pool block.
    asm.li(Reg::A4, 1);
    asm.sw(Reg::A4, Reg::A3, 0);
    asm.addi(Reg::R8, Reg::A3, 8);
    asm.jump("LOS_MemAlloc.done");
    asm.label("LOS_MemAlloc.big");
    // Bump path: header tag 2, never freed.
    asm.la(Reg::A2, "membox_brk");
    asm.lw(Reg::A3, Reg::A2, 0);
    asm.addi(Reg::A4, Reg::R7, 8 + 7);
    asm.li(Reg::A1, i64::from(0xFFFF_FFF8u32));
    asm.and(Reg::A4, Reg::A4, Reg::A1);
    asm.add(Reg::A4, Reg::A3, Reg::A4);
    asm.la(Reg::A1, "__heap_end");
    asm.bltu(Reg::A1, Reg::A4, "LOS_MemAlloc.fail");
    asm.sw(Reg::A4, Reg::A2, 0);
    asm.li(Reg::A4, 2);
    asm.sw(Reg::A4, Reg::A3, 0);
    asm.addi(Reg::R8, Reg::A3, 8);
    asm.label("LOS_MemAlloc.done");
    if san {
        asm.mv(Reg::A0, Reg::R8);
        asm.mv(Reg::A1, Reg::R7);
        asm.call(stubs::ALLOC);
    }
    asm.mv(Reg::A0, Reg::R8);
    asm.epilogue(&[Reg::R7, Reg::R8]);
    asm.label("LOS_MemAlloc.fail");
    asm.li(Reg::A0, 0);
    asm.epilogue(&[Reg::R7, Reg::R8]);

    // LOS_MemFree(a0 = user ptr): pool blocks return to the freelist;
    // bump blocks are leaked (tag 2), NULL ignored.
    asm.func("LOS_MemFree");
    asm.prologue(&[Reg::R7]);
    asm.beq(Reg::A0, Reg::R0, "LOS_MemFree.out");
    asm.mv(Reg::R7, Reg::A0);
    if san {
        asm.call(stubs::FREE);
    }
    asm.lw(Reg::A1, Reg::R7, -8); // tag
    asm.li(Reg::A2, 1);
    asm.bne(Reg::A1, Reg::A2, "LOS_MemFree.out"); // not a pool block
    asm.addi(Reg::A3, Reg::R7, -8);
    asm.la(Reg::A2, "membox_free_head");
    asm.lw(Reg::A1, Reg::A2, 0);
    asm.sw(Reg::A1, Reg::A3, 0);
    asm.sw(Reg::A3, Reg::A2, 0);
    asm.label("LOS_MemFree.out");
    asm.epilogue(&[Reg::R7]);

    AllocatorPieces {
        asm,
        globals: vec![
            GlobalDef::plain("membox_free_head", vec![0; 4]),
            GlobalDef::plain("membox_brk", vec![0; 4]),
        ],
        no_instrument: vec!["membox_init".into(), "LOS_MemAlloc".into(), "LOS_MemFree".into()],
        init_fn: "membox_init",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsan_emu::profile::Arch;

    #[test]
    fn emits_allocator_functions() {
        let pieces = emit(&BuildOptions::new(Arch::Armv));
        let mut p = embsan_asm::ir::Program::new();
        p.text = pieces.asm.into_items();
        assert!(p.defines_function("LOS_MemAlloc"));
        assert!(p.defines_function("LOS_MemFree"));
        assert!(p.defines_function("membox_init"));
        assert_eq!(pieces.init_fn, "membox_init");
    }
}
