//! The seeded bug corpus.
//!
//! Two populations, mirroring the paper's evaluation:
//!
//! - [`KNOWN_BUGS`]: the 25 previously-found, reproducible KASAN bugs of
//!   Table 2 (kernel version and location strings taken verbatim from the
//!   paper). The last two are **global** out-of-bounds bugs — the class
//!   EMBSAN-D cannot detect because it lacks compile-time global redzones.
//! - [`LATENT_BUGS`]: the 41 "new" bugs of Tables 3/4, keyed by firmware
//!   and location, reachable through the fuzzer executor.
//!
//! Each bug becomes a gated syscall handler: two single-byte comparisons on
//! the key argument must pass before the buggy code runs. The staged gates
//! make the bugs discoverable by a coverage-guided fuzzer (each stage is a
//! separate branch) while keeping them invisible to blind replay — the same
//! shape as magic-value conditions in real kernel code paths.

use embsan_asm::builder::Asm;
use embsan_asm::ir::GlobalDef;
use embsan_emu::isa::Reg;

/// Classification of a seeded bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BugKind {
    /// Heap out-of-bounds write (into the slack/redzone past the object).
    OobWrite,
    /// Heap out-of-bounds write far past the object, into unallocated heap
    /// (detectable only when the heap region is pre-poisoned — i.e. when
    /// the prober could establish heap bounds; the binary-only mode's
    /// tail redzones miss it).
    OobWriteFar,
    /// Heap out-of-bounds read.
    OobRead,
    /// Use after free.
    Uaf,
    /// Double free.
    DoubleFree,
    /// Null-pointer dereference.
    NullDeref,
    /// Out-of-bounds access on a global object (needs compile-time
    /// redzones to detect — the EMBSAN-C / EMBSAN-D capability gap).
    GlobalOob,
    /// Data race on a shared counter against the background task.
    Race,
    /// Read of a freshly allocated, never-written heap buffer (detected by
    /// the UMSAN extension engine, not by KASAN/KCSAN).
    UninitRead,
}

impl BugKind {
    /// The bug-class column label used in Tables 2/3/4.
    pub fn paper_class(self) -> &'static str {
        match self {
            BugKind::OobWrite | BugKind::OobRead | BugKind::OobWriteFar => "OOB Access",
            BugKind::Uaf => "UAF",
            BugKind::DoubleFree => "Double Free",
            BugKind::NullDeref => "Null-pointer-deref",
            BugKind::GlobalOob => "OOB Access",
            BugKind::Race => "Race",
            BugKind::UninitRead => "Uninit Read",
        }
    }
}

/// One of the 25 previously-found bugs (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnownBug {
    /// Kernel version string from the paper.
    pub kernel_version: &'static str,
    /// Location (function) from the paper.
    pub location: &'static str,
    /// Seeded bug behaviour.
    pub kind: BugKind,
}

/// The Table 2 corpus, in the paper's row order.
pub const KNOWN_BUGS: [KnownBug; 25] = [
    KnownBug { kernel_version: "5.17-rc2", location: "ringbuf_map_alloc", kind: BugKind::OobWrite },
    KnownBug { kernel_version: "5.19", location: "ieee80211_scan_rx", kind: BugKind::Uaf },
    KnownBug {
        kernel_version: "5.17-rc1",
        location: "bpf_prog_test_run_xdp",
        kind: BugKind::OobRead,
    },
    KnownBug { kernel_version: "5.17", location: "btrfs_scan_one_device", kind: BugKind::Uaf },
    KnownBug { kernel_version: "5.19-rc1", location: "post_one_notification", kind: BugKind::Uaf },
    KnownBug {
        kernel_version: "5.19-rc1",
        location: "post_watch_notification",
        kind: BugKind::Uaf,
    },
    KnownBug {
        kernel_version: "5.17-rc6",
        location: "watch_queue_set_filter",
        kind: BugKind::OobWrite,
    },
    KnownBug { kernel_version: "5.17-rc8", location: "free_pages", kind: BugKind::NullDeref },
    KnownBug {
        kernel_version: "5.17",
        location: "vxlan_vnifilter_dump_dev",
        kind: BugKind::OobRead,
    },
    KnownBug { kernel_version: "5.19", location: "imageblit", kind: BugKind::OobWrite },
    KnownBug { kernel_version: "5.19-rc4", location: "bpf_jit_free", kind: BugKind::OobRead },
    KnownBug { kernel_version: "5.17-rc6", location: "null_skcipher_crypt", kind: BugKind::Uaf },
    KnownBug { kernel_version: "5.18-rc6", location: "bio_poll", kind: BugKind::Uaf },
    KnownBug { kernel_version: "5.18", location: "blk_mq_sched_free_rqs", kind: BugKind::Uaf },
    KnownBug { kernel_version: "5.18-rc7", location: "do_sync_mmap_readahead", kind: BugKind::Uaf },
    KnownBug { kernel_version: "5.18", location: "filp_close", kind: BugKind::Uaf },
    KnownBug { kernel_version: "5.17-rc4", location: "setup_rw_floppy", kind: BugKind::Uaf },
    KnownBug { kernel_version: "5.18-next", location: "driver_register", kind: BugKind::Uaf },
    KnownBug { kernel_version: "5.17-rc4", location: "dev_uevent", kind: BugKind::Uaf },
    KnownBug { kernel_version: "6.0", location: "run_unpack", kind: BugKind::OobWrite },
    KnownBug { kernel_version: "5.19", location: "ath9k_hif_usb_rx_cb", kind: BugKind::Uaf },
    KnownBug { kernel_version: "5.19-rc1", location: "vma_adjust", kind: BugKind::Uaf },
    KnownBug { kernel_version: "6.0-rc7", location: "nilfs_mdt_destroy", kind: BugKind::Uaf },
    // The two global out-of-bounds bugs detectable only with compile-time
    // redzones (EMBSAN-C and native KASAN, not EMBSAN-D).
    KnownBug { kernel_version: "5.7-rc5", location: "fbcon_get_font", kind: BugKind::GlobalOob },
    KnownBug { kernel_version: "4.17-rc1", location: "string", kind: BugKind::GlobalOob },
];

/// One of the 41 new bugs (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatentBug {
    /// Firmware name from Table 4.
    pub firmware: &'static str,
    /// Location (subsystem path) from Table 4.
    pub location: &'static str,
    /// Seeded bug behaviour.
    pub kind: BugKind,
}

/// The Table 4 corpus, in the paper's row order.
pub const LATENT_BUGS: [LatentBug; 41] = [
    LatentBug { firmware: "OpenWRT-armvirt", location: "fs/nfs_common", kind: BugKind::OobWrite },
    LatentBug { firmware: "OpenWRT-armvirt", location: "net/netfilter", kind: BugKind::OobRead },
    LatentBug { firmware: "OpenWRT-armvirt", location: "net/wireless", kind: BugKind::OobWrite },
    LatentBug {
        firmware: "OpenWRT-armvirt",
        location: "drivers/net/ethernet/marvell",
        kind: BugKind::OobRead,
    },
    LatentBug {
        firmware: "OpenWRT-armvirt",
        location: "drivers/net/ethernet/realtek",
        kind: BugKind::OobWrite,
    },
    LatentBug {
        firmware: "OpenWRT-armvirt",
        location: "drivers/net/ethernet/atheros",
        kind: BugKind::DoubleFree,
    },
    LatentBug {
        firmware: "OpenWRT-bcm63xx",
        location: "drivers/bluetooth",
        kind: BugKind::OobWrite,
    },
    LatentBug {
        firmware: "OpenWRT-bcm63xx",
        location: "drivers/dma/bcm2835-dma",
        kind: BugKind::OobRead,
    },
    LatentBug {
        firmware: "OpenWRT-bcm63xx",
        location: "drivers/scsi/aic7xxx",
        kind: BugKind::OobWrite,
    },
    LatentBug { firmware: "OpenWRT-bcm63xx", location: "fs/btrfs", kind: BugKind::Uaf },
    LatentBug {
        firmware: "OpenWRT-bcm63xx",
        location: "drivers/net/wireless/broadcom",
        kind: BugKind::Uaf,
    },
    LatentBug {
        firmware: "OpenWRT-ipq807x",
        location: "drivers/net/ethernet/broadcom",
        kind: BugKind::OobWrite,
    },
    LatentBug {
        firmware: "OpenWRT-ipq807x",
        location: "drivers/net/ethernet/broadcom#2",
        kind: BugKind::OobRead,
    },
    LatentBug { firmware: "OpenWRT-ipq807x", location: "net/sched", kind: BugKind::OobWrite },
    LatentBug {
        firmware: "OpenWRT-ipq807x",
        location: "drivers/net/wireless/ath",
        kind: BugKind::Uaf,
    },
    LatentBug { firmware: "OpenWRT-ipq807x", location: "fs/fuse", kind: BugKind::DoubleFree },
    LatentBug {
        firmware: "OpenWRT-mt7629",
        location: "drivers/net/ethernet/mediatek",
        kind: BugKind::OobWrite,
    },
    LatentBug { firmware: "OpenWRT-mt7629", location: "fs/nfs", kind: BugKind::OobRead },
    LatentBug { firmware: "OpenWRT-mt7629", location: "net/core", kind: BugKind::DoubleFree },
    LatentBug {
        firmware: "OpenWRT-mt7629",
        location: "drivers/dma/mediatek",
        kind: BugKind::DoubleFree,
    },
    LatentBug {
        firmware: "OpenWRT-rtl839x",
        location: "drivers/net/ethernet/realtek",
        kind: BugKind::OobWrite,
    },
    LatentBug {
        firmware: "OpenWRT-rtl839x",
        location: "drivers/net/bluetooth/realtek",
        kind: BugKind::Uaf,
    },
    LatentBug { firmware: "OpenWRT-rtl839x", location: "fs/netrom", kind: BugKind::DoubleFree },
    LatentBug { firmware: "OpenWRT-x86_64", location: "drivers/iommu", kind: BugKind::OobWrite },
    LatentBug {
        firmware: "OpenWRT-x86_64",
        location: "drivers/net/ethernet/realtek",
        kind: BugKind::OobRead,
    },
    LatentBug {
        firmware: "OpenWRT-x86_64",
        location: "drivers/net/ethernet/stmicro",
        kind: BugKind::OobWrite,
    },
    LatentBug {
        firmware: "OpenWRT-x86_64",
        location: "drivers/net/wireless/intel/iwlwifi",
        kind: BugKind::OobRead,
    },
    LatentBug {
        firmware: "OpenWRT-x86_64",
        location: "drivers/net/wireless/broadcom/b43",
        kind: BugKind::OobWrite,
    },
    LatentBug { firmware: "OpenWRT-x86_64", location: "fs/btrfs", kind: BugKind::Race },
    LatentBug { firmware: "OpenWRT-x86_64", location: "fs/btrfs#2", kind: BugKind::Race },
    LatentBug { firmware: "OpenHarmony-rk3566", location: "fs/nfs", kind: BugKind::OobWrite },
    LatentBug { firmware: "OpenHarmony-rk3566", location: "fs/nfs_common", kind: BugKind::OobRead },
    LatentBug { firmware: "OpenHarmony-rk3566", location: "net/sched", kind: BugKind::Uaf },
    LatentBug { firmware: "OpenHarmony-stm32mp1", location: "fs/vfs", kind: BugKind::OobWrite },
    LatentBug { firmware: "OpenHarmony-stm32f407", location: "fs/vfs", kind: BugKind::OobWrite },
    LatentBug { firmware: "OpenHarmony-stm32f407", location: "fs/fat", kind: BugKind::OobRead },
    LatentBug { firmware: "InfiniTime", location: "src/libs/littlefs/", kind: BugKind::OobWrite },
    LatentBug { firmware: "InfiniTime", location: "src/drivers/Spi", kind: BugKind::OobRead },
    LatentBug { firmware: "InfiniTime", location: "src/drivers/St7789", kind: BugKind::Uaf },
    LatentBug { firmware: "TP-Link WDR-7660", location: "pppoed", kind: BugKind::OobWrite },
    LatentBug { firmware: "TP-Link WDR-7660", location: "dhcpsd", kind: BugKind::OobRead },
];

/// A bug instance prepared for code generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BugSpec {
    /// Human-readable location (Table 2/4 string).
    pub location: String,
    /// Behaviour.
    pub kind: BugKind,
}

impl BugSpec {
    /// Creates a spec.
    pub fn new(location: &str, kind: BugKind) -> BugSpec {
        BugSpec { location: location.to_string(), kind }
    }
}

/// FNV-1a hash of a location string (used to derive gate bytes).
fn fnv(text: &str) -> u32 {
    let mut hash: u32 = 0x811C_9DC5;
    for byte in text.bytes() {
        hash ^= u32::from(byte);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// The two gate bytes a trigger key must carry for this location.
pub fn gate_stages(location: &str) -> [u8; 2] {
    let hash = fnv(location);
    [(hash & 0xFF) as u8, ((hash >> 8) & 0xFF) as u8]
}

/// The key argument that opens both gates — the "reproducer" value.
pub fn trigger_key(location: &str) -> u32 {
    let [s0, s1] = gate_stages(location);
    u32::from(s0) | u32::from(s1) << 8
}

/// The full-word key guarding a wide-gated bug (see
/// [`emit_bug_handler_gated`]). Bit 28 and bit 0 are forced on so the key
/// always has a non-zero upper half *and* a non-zero low 12 bits: the
/// assembler must lower the comparison constant as a `lui`+`ori` pair,
/// meaning neither immediate alone equals the key. Bit 31 is cleared so the
/// value stays positive as an `i64` literal.
pub fn wide_trigger_key(location: &str) -> u32 {
    (fnv(location) | 0x1000_0001) & 0x7FFF_FFFF
}

/// Turns a location string into a symbol-safe suffix.
pub fn symbolize(location: &str) -> String {
    location.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

/// Size of the heap object allocated by heap-bug bodies.
pub const BUG_OBJ_SIZE: i64 = 24;
/// Offset past the object used by OOB bodies (lands in slack/redzone).
pub const BUG_OOB_OFFSET: i32 = 28;
/// Far-OOB offset: well past the chunk and its header, into unallocated
/// heap.
pub const BUG_OOB_FAR_OFFSET: i32 = 160;
/// Size of each global-OOB bug's victim global.
pub const BUG_GLOBAL_SIZE: u32 = 40;
/// OOB offset used on globals (4 bytes past the object).
pub const BUG_GLOBAL_OOB_OFFSET: i32 = 44;
/// Iterations of the racy increment loop in race-bug bodies.
pub const RACE_ITERS: i64 = 64;

/// Emits `sys_bug_<index>` implementing `spec`, gated on the key argument.
///
/// Global-OOB bugs add their victim global to `globals`.
pub fn emit_bug_handler(
    asm: &mut Asm,
    globals: &mut Vec<GlobalDef>,
    index: usize,
    spec: &BugSpec,
    alloc_fn: &str,
    free_fn: &str,
) -> String {
    emit_bug_handler_gated(asm, globals, index, spec, alloc_fn, free_fn, false)
}

/// Emits `sys_bug_<index>` with either the staged byte gates (`wide ==
/// false`, same output as [`emit_bug_handler`]) or a single full-word key
/// comparison against [`wide_trigger_key`] (`wide == true`).
///
/// The wide gate is deliberately hostile to coverage guidance: there are no
/// intermediate stages to climb, and the key is materialized as a
/// `lui`+`ori` pair, so an immediate-scan dictionary only ever sees the two
/// halves. Breaking it requires harvesting the reassembled comparison
/// operand from the branch itself.
pub fn emit_bug_handler_gated(
    asm: &mut Asm,
    globals: &mut Vec<GlobalDef>,
    index: usize,
    spec: &BugSpec,
    alloc_fn: &str,
    free_fn: &str,
    wide: bool,
) -> String {
    let name = format!("sys_bug_{index}");
    let out = format!("{name}.out");
    asm.func(&name);
    asm.prologue(&[Reg::R7]);
    if wide {
        // Wide gate: one all-or-nothing full-word comparison.
        asm.li(Reg::A2, i64::from(wide_trigger_key(&spec.location)));
        asm.bne(Reg::A0, Reg::A2, &out);
    } else {
        let [s0, s1] = gate_stages(&spec.location);
        // Gate stage 1: low key byte.
        asm.andi(Reg::A1, Reg::A0, 0xFF);
        asm.li(Reg::A2, i64::from(s0));
        asm.bne(Reg::A1, Reg::A2, &out);
        // Gate stage 2: second key byte (a separate branch, so
        // coverage-guided fuzzers climb the stages one at a time).
        asm.srli(Reg::A1, Reg::A0, 8);
        asm.andi(Reg::A1, Reg::A1, 0xFF);
        asm.li(Reg::A2, i64::from(s1));
        asm.bne(Reg::A1, Reg::A2, &out);
    }
    emit_bug_body(asm, globals, spec, alloc_fn, free_fn, &name, &out);
    asm.label(&out);
    asm.li(Reg::A0, 0);
    asm.epilogue(&[Reg::R7]);
    name
}

/// Emits the post-gate buggy body shared by both gate shapes.
fn emit_bug_body(
    asm: &mut Asm,
    globals: &mut Vec<GlobalDef>,
    spec: &BugSpec,
    alloc_fn: &str,
    free_fn: &str,
    name: &str,
    out: &str,
) {
    match spec.kind {
        BugKind::OobWrite => {
            asm.li(Reg::A0, BUG_OBJ_SIZE);
            asm.call(alloc_fn);
            asm.beq(Reg::A0, Reg::R0, out);
            asm.li(Reg::A1, 0x41);
            asm.sb(Reg::A1, Reg::A0, BUG_OOB_OFFSET);
        }
        BugKind::OobWriteFar => {
            asm.li(Reg::A0, BUG_OBJ_SIZE);
            asm.call(alloc_fn);
            asm.beq(Reg::A0, Reg::R0, out);
            asm.li(Reg::A1, 0x43);
            asm.sb(Reg::A1, Reg::A0, BUG_OOB_FAR_OFFSET);
        }
        BugKind::OobRead => {
            asm.li(Reg::A0, BUG_OBJ_SIZE);
            asm.call(alloc_fn);
            asm.beq(Reg::A0, Reg::R0, out);
            asm.lbu(Reg::A1, Reg::A0, BUG_OOB_OFFSET);
        }
        BugKind::Uaf => {
            asm.li(Reg::A0, BUG_OBJ_SIZE);
            asm.call(alloc_fn);
            asm.beq(Reg::A0, Reg::R0, out);
            asm.mv(Reg::R7, Reg::A0);
            asm.call(free_fn);
            asm.lw(Reg::A1, Reg::R7, 4);
        }
        BugKind::DoubleFree => {
            asm.li(Reg::A0, BUG_OBJ_SIZE);
            asm.call(alloc_fn);
            asm.beq(Reg::A0, Reg::R0, out);
            asm.mv(Reg::R7, Reg::A0);
            asm.call(free_fn);
            asm.mv(Reg::A0, Reg::R7);
            asm.call(free_fn);
        }
        BugKind::NullDeref => {
            asm.lw(Reg::A1, Reg::R0, 8);
        }
        BugKind::GlobalOob => {
            let victim = format!("g_{}", symbolize(&spec.location));
            globals.push(GlobalDef::zeroed(&victim, BUG_GLOBAL_SIZE));
            asm.la(Reg::A0, &victim);
            asm.li(Reg::A1, 0x42);
            asm.sb(Reg::A1, Reg::A0, BUG_GLOBAL_OOB_OFFSET);
        }
        BugKind::UninitRead => {
            // Allocate and immediately read — addressable (KASAN-clean)
            // but uninitialized.
            asm.li(Reg::A0, BUG_OBJ_SIZE);
            asm.call(alloc_fn);
            asm.beq(Reg::A0, Reg::R0, out);
            asm.lw(Reg::A1, Reg::A0, 4);
        }
        BugKind::Race => {
            asm.la(Reg::A1, "racy_counter");
            asm.li(Reg::A2, RACE_ITERS);
            let loop_label = format!("{name}.race");
            asm.label(&loop_label);
            asm.lw(Reg::A3, Reg::A1, 0);
            asm.addi(Reg::A3, Reg::A3, 1);
            asm.sw(Reg::A3, Reg::A1, 0);
            asm.addi(Reg::A2, Reg::A2, -1);
            asm.bne(Reg::A2, Reg::R0, &loop_label);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shape_matches_paper() {
        assert_eq!(KNOWN_BUGS.len(), 25);
        // The last two are the global-OOB bugs EMBSAN-D must miss.
        assert_eq!(KNOWN_BUGS[23].kind, BugKind::GlobalOob);
        assert_eq!(KNOWN_BUGS[23].location, "fbcon_get_font");
        assert_eq!(KNOWN_BUGS[24].kind, BugKind::GlobalOob);
        assert_eq!(KNOWN_BUGS[24].location, "string");
        // Exactly one null-deref (free_pages).
        let npd: Vec<_> = KNOWN_BUGS.iter().filter(|b| b.kind == BugKind::NullDeref).collect();
        assert_eq!(npd.len(), 1);
        assert_eq!(npd[0].location, "free_pages");
    }

    #[test]
    fn table4_counts_match_table3() {
        assert_eq!(LATENT_BUGS.len(), 41);
        let count = |fw: &str, class: &str| {
            LATENT_BUGS.iter().filter(|b| b.firmware == fw && b.kind.paper_class() == class).count()
        };
        // Table 3's classification rows.
        assert_eq!(count("OpenWRT-armvirt", "OOB Access"), 5);
        assert_eq!(count("OpenWRT-armvirt", "Double Free"), 1);
        assert_eq!(count("OpenWRT-bcm63xx", "OOB Access"), 3);
        assert_eq!(count("OpenWRT-bcm63xx", "UAF"), 2);
        assert_eq!(count("OpenWRT-ipq807x", "OOB Access"), 3);
        assert_eq!(count("OpenWRT-ipq807x", "UAF"), 1);
        assert_eq!(count("OpenWRT-ipq807x", "Double Free"), 1);
        assert_eq!(count("OpenWRT-mt7629", "OOB Access"), 2);
        assert_eq!(count("OpenWRT-mt7629", "Double Free"), 2);
        assert_eq!(count("OpenWRT-rtl839x", "OOB Access"), 1);
        assert_eq!(count("OpenWRT-rtl839x", "UAF"), 1);
        assert_eq!(count("OpenWRT-rtl839x", "Double Free"), 1);
        assert_eq!(count("OpenWRT-x86_64", "OOB Access"), 5);
        assert_eq!(count("OpenWRT-x86_64", "Race"), 2);
        assert_eq!(count("OpenHarmony-rk3566", "OOB Access"), 2);
        assert_eq!(count("OpenHarmony-rk3566", "UAF"), 1);
        assert_eq!(count("OpenHarmony-stm32mp1", "OOB Access"), 1);
        assert_eq!(count("OpenHarmony-stm32f407", "OOB Access"), 2);
        assert_eq!(count("InfiniTime", "OOB Access"), 2);
        assert_eq!(count("InfiniTime", "UAF"), 1);
        assert_eq!(count("TP-Link WDR-7660", "OOB Access"), 2);
    }

    #[test]
    fn gates_are_deterministic_and_distinct() {
        let a = gate_stages("fs/btrfs");
        assert_eq!(a, gate_stages("fs/btrfs"));
        assert_ne!(gate_stages("fs/btrfs"), gate_stages("fs/nfs"));
        let key = trigger_key("fs/btrfs");
        assert_eq!((key & 0xFF) as u8, a[0]);
        assert_eq!(((key >> 8) & 0xFF) as u8, a[1]);
    }

    #[test]
    fn symbolize_is_symbol_safe() {
        assert_eq!(symbolize("drivers/net/ethernet#2"), "drivers_net_ethernet_2");
    }

    #[test]
    fn wide_keys_need_both_immediate_halves() {
        for bug in KNOWN_BUGS {
            let key = wide_trigger_key(bug.location);
            // Both the upper-20 and low-12 immediate halves are non-zero,
            // so `li` must lower the key as lui+ori and neither half alone
            // equals the key.
            assert_ne!(key & 0xFFFF_F000, 0, "{}", bug.location);
            assert_ne!(key & 0xFFF, 0, "{}", bug.location);
            assert_ne!(key & 0xFFFF_F000, key, "{}", bug.location);
            assert_ne!(key & 0xFFF, key, "{}", bug.location);
            // Positive as an i64 literal.
            assert_eq!(key & 0x8000_0000, 0, "{}", bug.location);
        }
        assert_eq!(wide_trigger_key("fs/btrfs"), wide_trigger_key("fs/btrfs"));
        assert_ne!(wide_trigger_key("fs/btrfs"), wide_trigger_key("fs/nfs"));
    }

    #[test]
    fn wide_gate_emits_single_branch_handler() {
        let mut asm = Asm::new();
        let mut globals = Vec::new();
        let spec = BugSpec::new("fuzz/wide", BugKind::OobWrite);
        let name =
            emit_bug_handler_gated(&mut asm, &mut globals, 0, &spec, "kmalloc", "kfree", true);
        assert_eq!(name, "sys_bug_0");
        let mut p = embsan_asm::ir::Program::new();
        p.text = asm.into_items();
        assert!(p.defines_function("sys_bug_0"));
    }

    #[test]
    fn emit_produces_handler_and_globals() {
        let mut asm = Asm::new();
        let mut globals = Vec::new();
        let spec = BugSpec::new("fbcon_get_font", BugKind::GlobalOob);
        let name = emit_bug_handler(&mut asm, &mut globals, 3, &spec, "kmalloc", "kfree");
        assert_eq!(name, "sys_bug_3");
        assert_eq!(globals.len(), 1);
        assert!(globals[0].name.starts_with("g_"));
        let mut p = embsan_asm::ir::Program::new();
        p.text = asm.into_items();
        assert!(p.defines_function("sys_bug_3"));
    }
}
