//! Synthetic embedded operating systems for the EMBSAN reproduction.
//!
//! The EMBSAN paper evaluates on firmware built from four embedded OS
//! families — Embedded Linux (OpenWRT, OpenHarmony-rk3566), LiteOS
//! (OpenHarmony-stm32*), FreeRTOS (InfiniTime) and VxWorks (TP-Link
//! WDR-7660). None of those is redistributable here, so this crate builds
//! behavioural stand-ins as real EV32 guest firmware:
//!
//! - a shared kernel runtime ([`kernlib`]): boot, console, memory utilities,
//!   spinlocks, a background task for SMP firmware;
//! - four OS flavours ([`os`]) with genuinely different heap allocators
//!   ([`alloc`]): a slab allocator (Embedded Linux), a heap_4-style
//!   first-fit allocator (FreeRTOS), a fixed-block membox pool (LiteOS), and
//!   a memPartLib-style allocator (VxWorks, shipped **stripped** of symbols
//!   to model closed-source firmware);
//! - a mailbox-driven syscall [`executor`] used by the fuzzers;
//! - the seeded [`bugs`] corpus: the 25 syzbot-style known bugs of Table 2
//!   (each with a reproducer) and the 41 latent bugs of Tables 3/4;
//! - guest-resident [`native`] KASAN/KCSAN runtimes (the paper's baseline
//!   sanitizers, which run as translated guest code);
//! - the Table-1 [`firmware`] registry and deterministic [`workload`]
//!   generators for the overhead study (Figure 2).

pub mod alloc;
pub mod bugs;
pub mod executor;
pub mod firmware;
pub mod kernlib;
pub mod native;
pub mod opts;
pub mod os;
pub mod workload;

pub use bugs::{BugKind, BugSpec, KNOWN_BUGS, LATENT_BUGS};
pub use executor::{ExecCall, ExecProgram};
pub use firmware::{firmware_by_name, FirmwareSpec, FIRMWARE};
pub use opts::{BaseOs, BuildOptions, SanMode};
