//! Guest-resident ("native") sanitizer runtimes.
//!
//! These are the paper's comparison baselines: KASAN/KCSAN built *into* the
//! firmware, so that every check executes as translated guest code. The
//! compile-time pass runs with
//! [`InstrumentOptions::native`](embsan_asm::instrument::InstrumentOptions::native),
//! and instead of the dummy hypercall library these modules supply real
//! `__san_*` bodies.
//!
//! Both runtimes report through the console (a `KASAN:`/`KCSAN:` banner the
//! harness greps for, as one greps a serial log for real sanitizer splats)
//! and then power the machine off with a distinctive exit code.

pub mod kasan;
pub mod kcsan;

/// Power-off exit code of a native KASAN report.
pub const KASAN_EXIT: u16 = 0x5A;
/// Power-off exit code of a native KCSAN report.
pub const KCSAN_EXIT: u16 = 0x5B;
/// Console marker emitted by native KASAN reports.
pub const KASAN_MARKER: &str = "KASAN: invalid access at ";
/// Console marker emitted by native KCSAN reports.
pub const KCSAN_MARKER: &str = "KCSAN: data-race at ";
/// Console marker for native double-free reports.
pub const KASAN_DF_MARKER: &str = "KASAN: double-free at ";
