//! Guest-native KASAN.
//!
//! A byte-per-8-bytes shadow of all of RAM lives in the guest global
//! `__kasan_shadow`. Shadow encoding (matching real KASAN's scheme):
//! `0` fully addressable, `1..7` first N bytes addressable,
//! `≥ 0x80` poisoned (`0xFF` unallocated heap, `0xFD` freed,
//! `0xF9` global redzone).
//!
//! `__san_free` poisons by *scanning forward until the first poisoned
//! granule* — correct here because every shipped allocator keeps at least an
//! 8-byte (never unpoisoned) header between user areas. A freed-shadow first
//! granule at free time is reported as a double free.

use embsan_asm::builder::Asm;
use embsan_asm::ir::GlobalDef;
use embsan_emu::device;
use embsan_emu::isa::Reg;
use embsan_emu::profile::ArchProfile;

use super::{KASAN_DF_MARKER, KASAN_EXIT, KASAN_MARKER};
use crate::opts::BuildOptions;

/// Shadow byte for freed memory.
pub const SHADOW_FREED: u8 = 0xFD;
/// Shadow byte for unallocated heap.
pub const SHADOW_HEAP: u8 = 0xFF;
/// Shadow byte for global redzones.
pub const SHADOW_GLOBAL_RZ: u8 = 0xF9;

/// Emits the guest-native KASAN runtime.
pub fn emit(opts: &BuildOptions) -> (Asm, Vec<GlobalDef>) {
    let profile = ArchProfile::for_arch(opts.arch);
    let power = i64::from(profile.mmio_base + device::POWER_BASE);
    let mut asm = Asm::new();

    // __kasan_shad(a3 = guest addr) -> a3 = shadow byte address; clobbers a2.
    // Helper convention: called with `call_via r10` from within the runtime.
    asm.func("__kasan_shad");
    asm.la(Reg::A2, "__ram_start");
    asm.sub(Reg::A3, Reg::A3, Reg::A2);
    asm.srli(Reg::A3, Reg::A3, 3);
    asm.la(Reg::A2, "__kasan_shadow");
    asm.add(Reg::A3, Reg::A3, Reg::A2);
    asm.ret_via(Reg::R10);

    // __san_init(): poison the heap's shadow.
    asm.func("__san_init");
    asm.la(Reg::A0, "__heap_start");
    asm.la(Reg::A1, "__heap_end");
    asm.la(Reg::A2, "__ram_start");
    asm.sub(Reg::A0, Reg::A0, Reg::A2);
    asm.srli(Reg::A0, Reg::A0, 3);
    asm.sub(Reg::A1, Reg::A1, Reg::A2);
    asm.srli(Reg::A1, Reg::A1, 3);
    asm.la(Reg::A2, "__kasan_shadow");
    asm.add(Reg::A0, Reg::A0, Reg::A2);
    asm.add(Reg::A1, Reg::A1, Reg::A2);
    asm.li(Reg::A3, i64::from(u32::MAX)); // 0xFFFFFFFF = four SHADOW_HEAP bytes
    asm.label("__san_init.loop");
    asm.bgeu(Reg::A0, Reg::A1, "__san_init.done");
    asm.sw(Reg::A3, Reg::A0, 0);
    asm.addi(Reg::A0, Reg::A0, 4);
    asm.jump("__san_init.loop");
    asm.label("__san_init.done");
    asm.ret();

    // Check stubs: address in r12, return via r11. Fast path preserves
    // a0-a2 via the stack; the report path is terminal.
    for &(size, name) in &[
        (1i64, "__san_load1"),
        (2, "__san_load2"),
        (4, "__san_load4"),
        (1, "__san_store1"),
        (2, "__san_store2"),
        (4, "__san_store4"),
        (4, "__san_atomic4"),
    ] {
        let ok = format!("{name}.ok");
        let bad = format!("{name}.bad");
        asm.func(name);
        asm.addi(Reg::SP, Reg::SP, -12);
        asm.sw(Reg::A0, Reg::SP, 0);
        asm.sw(Reg::A1, Reg::SP, 4);
        asm.sw(Reg::A2, Reg::SP, 8);
        asm.la(Reg::A0, "__ram_start");
        asm.bltu(Reg::R12, Reg::A0, &ok); // below RAM (ROM/MMIO): skip
        asm.la(Reg::A1, "__ram_end");
        asm.bgeu(Reg::R12, Reg::A1, &ok);
        asm.sub(Reg::A0, Reg::R12, Reg::A0);
        asm.srli(Reg::A0, Reg::A0, 3);
        asm.la(Reg::A1, "__kasan_shadow");
        asm.add(Reg::A1, Reg::A1, Reg::A0);
        asm.lbu(Reg::A0, Reg::A1, 0);
        asm.beq(Reg::A0, Reg::R0, &ok);
        asm.li(Reg::A1, 0x80);
        asm.bgeu(Reg::A0, Reg::A1, &bad); // poisoned
                                          // Partial granule: last accessed byte must fall below the watermark.
        asm.andi(Reg::A2, Reg::R12, 7);
        asm.addi(Reg::A2, Reg::A2, (size - 1) as i32);
        asm.blt(Reg::A2, Reg::A0, &ok);
        asm.label(&bad);
        asm.la(Reg::A0, "kasan_msg");
        asm.call("uart_puts");
        asm.mv(Reg::A0, Reg::R12);
        asm.call("uart_put_hex");
        asm.li(Reg::A0, i64::from(b'\n'));
        asm.call("uart_putc");
        asm.li(Reg::A0, i64::from(KASAN_EXIT));
        asm.li(Reg::A1, power);
        asm.sw(Reg::A0, Reg::A1, 0);
        asm.label(format!("{name}.halt").as_str());
        asm.wfi();
        asm.jump(format!("{name}.halt").as_str());
        asm.label(&ok);
        asm.lw(Reg::A0, Reg::SP, 0);
        asm.lw(Reg::A1, Reg::SP, 4);
        asm.lw(Reg::A2, Reg::SP, 8);
        asm.addi(Reg::SP, Reg::SP, 12);
        asm.ret_via(Reg::R11);
    }

    // __san_alloc(a0 = addr, a1 = size): unpoison [addr, addr+size).
    asm.func("__san_alloc");
    asm.mv(Reg::A3, Reg::A0);
    asm.call_via(Reg::R10, "__kasan_shad");
    asm.mv(Reg::A4, Reg::A1); // remaining bytes
    asm.li(Reg::A5, 8);
    asm.label("__san_alloc.loop");
    asm.bltu(Reg::A4, Reg::A5, "__san_alloc.tail");
    asm.sb(Reg::R0, Reg::A3, 0);
    asm.addi(Reg::A3, Reg::A3, 1);
    asm.addi(Reg::A4, Reg::A4, -8);
    asm.jump("__san_alloc.loop");
    asm.label("__san_alloc.tail");
    asm.beq(Reg::A4, Reg::R0, "__san_alloc.done");
    asm.sb(Reg::A4, Reg::A3, 0);
    asm.label("__san_alloc.done");
    asm.ret();

    // __san_free(a0 = addr): double-free check, then poison forward until
    // the first already-poisoned granule (the next chunk header).
    asm.func("__san_free");
    asm.mv(Reg::A3, Reg::A0);
    asm.call_via(Reg::R10, "__kasan_shad");
    asm.lbu(Reg::A1, Reg::A3, 0);
    asm.li(Reg::A2, 0x80);
    asm.bgeu(Reg::A1, Reg::A2, "__san_free.double");
    asm.li(Reg::A4, i64::from(SHADOW_FREED));
    asm.label("__san_free.loop");
    asm.lbu(Reg::A1, Reg::A3, 0);
    asm.bgeu(Reg::A1, Reg::A2, "__san_free.done");
    asm.sb(Reg::A4, Reg::A3, 0);
    asm.addi(Reg::A3, Reg::A3, 1);
    asm.jump("__san_free.loop");
    asm.label("__san_free.done");
    asm.ret();
    asm.label("__san_free.double");
    asm.mv(Reg::R7, Reg::A0);
    asm.la(Reg::A0, "kasan_df_msg");
    asm.call("uart_puts");
    asm.mv(Reg::A0, Reg::R7);
    asm.call("uart_put_hex");
    asm.li(Reg::A0, i64::from(b'\n'));
    asm.call("uart_putc");
    asm.li(Reg::A0, i64::from(KASAN_EXIT));
    asm.li(Reg::A1, power);
    asm.sw(Reg::A0, Reg::A1, 0);
    asm.label("__san_free.halt");
    asm.wfi();
    asm.jump("__san_free.halt");

    // __san_global(a0 = addr, a1 = size, a2 = redzone): poison both
    // redzones and the trailing partial granule.
    //
    // Register discipline: __kasan_shad clobbers a2, so the redzone width
    // lives in a5 for the whole function and the poison code is reloaded
    // into a2 after each shad call.
    asm.func("__san_global");
    asm.mv(Reg::A5, Reg::A2); // a5 = redzone width
                              // Left redzone: [addr - redzone, addr)
    asm.sub(Reg::A3, Reg::A0, Reg::A5);
    asm.call_via(Reg::R10, "__kasan_shad");
    asm.srli(Reg::A4, Reg::A5, 3); // redzone granules
    asm.li(Reg::A2, i64::from(SHADOW_GLOBAL_RZ));
    asm.label("__san_global.left");
    asm.beq(Reg::A4, Reg::R0, "__san_global.mid");
    asm.sb(Reg::A2, Reg::A3, 0);
    asm.addi(Reg::A3, Reg::A3, 1);
    asm.addi(Reg::A4, Reg::A4, -1);
    asm.jump("__san_global.left");
    asm.label("__san_global.mid");
    // Right redzone, starting at shadow(addr + size rounded up to 8).
    asm.add(Reg::A3, Reg::A0, Reg::A1);
    asm.addi(Reg::A3, Reg::A3, 7);
    asm.li(Reg::A4, i64::from(0xFFFF_FFF8u32));
    asm.and(Reg::A3, Reg::A3, Reg::A4);
    asm.call_via(Reg::R10, "__kasan_shad");
    asm.srli(Reg::A4, Reg::A5, 3);
    asm.li(Reg::A2, i64::from(SHADOW_GLOBAL_RZ));
    asm.label("__san_global.right");
    asm.beq(Reg::A4, Reg::R0, "__san_global.tail");
    asm.sb(Reg::A2, Reg::A3, 0);
    asm.addi(Reg::A3, Reg::A3, 1);
    asm.addi(Reg::A4, Reg::A4, -1);
    asm.jump("__san_global.right");
    asm.label("__san_global.tail");
    // Partial watermark: shadow(addr + size&~7) = size&7 (if nonzero).
    asm.andi(Reg::A4, Reg::A1, 7);
    asm.beq(Reg::A4, Reg::R0, "__san_global.done");
    asm.add(Reg::A3, Reg::A0, Reg::A1);
    asm.sub(Reg::A3, Reg::A3, Reg::A4);
    asm.call_via(Reg::R10, "__kasan_shad");
    asm.sb(Reg::A4, Reg::A3, 0);
    asm.label("__san_global.done");
    asm.ret();

    // __san_ready(): nothing to do natively.
    asm.func("__san_ready");
    asm.ret();

    let shadow_size = opts.ram_size / 8;
    let globals = vec![
        // The shadow itself must never carry redzones (it is plain data).
        GlobalDef {
            name: "__kasan_shadow".to_string(),
            size: shadow_size,
            init: None,
            align: 8,
            sanitize: false,
        },
        GlobalDef::plain("kasan_msg", format!("{KASAN_MARKER}\0").into_bytes()),
        GlobalDef::plain("kasan_df_msg", format!("{KASAN_DF_MARKER}\0").into_bytes()),
    ];
    (asm, globals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsan_emu::profile::Arch;

    #[test]
    fn emits_full_symbol_set() {
        let (asm, globals) = emit(&BuildOptions::new(Arch::Armv));
        let mut p = embsan_asm::ir::Program::new();
        p.text = asm.into_items();
        for name in [
            "__san_init",
            "__san_load1",
            "__san_load2",
            "__san_load4",
            "__san_store1",
            "__san_store2",
            "__san_store4",
            "__san_atomic4",
            "__san_alloc",
            "__san_free",
            "__san_global",
            "__san_ready",
        ] {
            assert!(p.defines_function(name), "missing {name}");
        }
        let shadow = globals.iter().find(|g| g.name == "__kasan_shadow").unwrap();
        assert_eq!(shadow.size, 4 * 1024 * 1024 / 8);
        assert!(!shadow.sanitize);
    }
}
