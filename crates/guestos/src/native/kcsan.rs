//! Guest-native KCSAN.
//!
//! A watchpoint-based race detector executing entirely as guest code, per
//! the real KCSAN's design: every instrumented access *scans* the watchpoint
//! table for a conflicting entry installed by another CPU; every `SAMPLE`-th
//! access additionally *installs* a watchpoint on its own address and spins
//! for a delay window, giving other CPUs a chance to collide with it.
//! Atomic accesses neither scan nor install (atomics don't race).
//!
//! Watchpoint slots are per-CPU (`kcsan_wp[cpuid]`), each two words:
//! `[granule-aligned address | info]` with `info = cpu*2 + is_write + 1`
//! (0 = empty). Conflicts compare 8-byte granules, a slightly coarser
//! overlap test than the real KCSAN's byte ranges.

use embsan_asm::builder::Asm;
use embsan_asm::ir::GlobalDef;
use embsan_emu::cpu::Csr;
use embsan_emu::device;
use embsan_emu::isa::Reg;
use embsan_emu::profile::ArchProfile;

use super::{KCSAN_EXIT, KCSAN_MARKER};
use crate::opts::BuildOptions;

/// Number of watchpoint slots (maximum vCPUs).
pub const WP_SLOTS: usize = 4;
/// One in `SAMPLE` accesses installs a watchpoint.
pub const SAMPLE: i64 = 64;
/// Spin iterations of the watch window (≈ 3 instructions each).
pub const DELAY_ITERS: i64 = 80;

/// Emits the guest-native KCSAN runtime.
pub fn emit(opts: &BuildOptions) -> (Asm, Vec<GlobalDef>) {
    let profile = ArchProfile::for_arch(opts.arch);
    let power = i64::from(profile.mmio_base + device::POWER_BASE);
    let mut asm = Asm::new();

    // __san_init(): table starts zeroed (bss); nothing to do.
    asm.func("__san_init");
    asm.ret();

    for &(is_write, name) in &[
        (false, "__san_load1"),
        (false, "__san_load2"),
        (false, "__san_load4"),
        (true, "__san_store1"),
        (true, "__san_store2"),
        (true, "__san_store4"),
    ] {
        let ok = format!("{name}.ok");
        let report = format!("{name}.report");
        let scan_next = |i: usize| format!("{name}.scan{i}");
        asm.func(name);
        asm.addi(Reg::SP, Reg::SP, -20);
        asm.sw(Reg::A0, Reg::SP, 0);
        asm.sw(Reg::A1, Reg::SP, 4);
        asm.sw(Reg::A2, Reg::SP, 8);
        asm.sw(Reg::A3, Reg::SP, 12);
        asm.sw(Reg::A4, Reg::SP, 16);
        // a3 = our granule, a2 = our cpu.
        asm.srli(Reg::A3, Reg::R12, 3);
        asm.csrr(Reg::A2, Csr::Cpuid as u16);
        // Scan all slots for a conflicting watchpoint from another CPU.
        asm.la(Reg::A0, "kcsan_wp");
        for i in 0..WP_SLOTS {
            let next = scan_next(i);
            let off = (i * 8) as i32;
            asm.lw(Reg::A1, Reg::A0, off); // granule address
            asm.bne(Reg::A1, Reg::A3, &next);
            asm.lw(Reg::A1, Reg::A0, off + 4); // info
            asm.beq(Reg::A1, Reg::R0, &next); // empty slot
                                              // Same CPU never conflicts with itself.
            asm.addi(Reg::A1, Reg::A1, -1); // info-1 = cpu*2 + is_write
            asm.srli(Reg::A4, Reg::A1, 1);
            asm.beq(Reg::A4, Reg::A2, &next);
            if !is_write {
                // Read vs read is fine: require the watcher to be a writer.
                asm.andi(Reg::A1, Reg::A1, 1);
                asm.beq(Reg::A1, Reg::R0, &next);
            }
            asm.jump(&report);
            asm.label(&next);
        }
        // Sampling: one in SAMPLE accesses installs a watchpoint and spins.
        asm.la(Reg::A0, "kcsan_ctr");
        asm.li(Reg::A1, 1);
        asm.amoadd(Reg::A1, Reg::A0, Reg::A1); // old counter
        asm.li(Reg::A4, SAMPLE - 1);
        asm.and(Reg::A1, Reg::A1, Reg::A4);
        asm.bne(Reg::A1, Reg::R0, &ok);
        // Install: kcsan_wp[cpu] = (granule, cpu*2 + is_write + 1).
        asm.la(Reg::A0, "kcsan_wp");
        asm.slli(Reg::A1, Reg::A2, 3);
        asm.add(Reg::A0, Reg::A0, Reg::A1);
        asm.sw(Reg::A3, Reg::A0, 0);
        asm.slli(Reg::A1, Reg::A2, 1);
        asm.addi(Reg::A1, Reg::A1, if is_write { 2 } else { 1 });
        asm.sw(Reg::A1, Reg::A0, 4);
        // Watch window: spin so other CPUs can run into the watchpoint.
        asm.li(Reg::A1, DELAY_ITERS);
        asm.label(format!("{name}.spin").as_str());
        asm.addi(Reg::A1, Reg::A1, -1);
        asm.bne(Reg::A1, Reg::R0, format!("{name}.spin").as_str());
        // Retire the watchpoint.
        asm.sw(Reg::R0, Reg::A0, 4);
        asm.sw(Reg::R0, Reg::A0, 0);
        asm.jump(&ok);
        // Terminal report path.
        asm.label(&report);
        asm.la(Reg::A0, "kcsan_msg");
        asm.call("uart_puts");
        asm.mv(Reg::A0, Reg::R12);
        asm.call("uart_put_hex");
        asm.li(Reg::A0, i64::from(b'\n'));
        asm.call("uart_putc");
        asm.li(Reg::A0, i64::from(KCSAN_EXIT));
        asm.li(Reg::A1, power);
        asm.sw(Reg::A0, Reg::A1, 0);
        asm.label(format!("{name}.halt").as_str());
        asm.wfi();
        asm.jump(format!("{name}.halt").as_str());
        asm.label(&ok);
        asm.lw(Reg::A0, Reg::SP, 0);
        asm.lw(Reg::A1, Reg::SP, 4);
        asm.lw(Reg::A2, Reg::SP, 8);
        asm.lw(Reg::A3, Reg::SP, 12);
        asm.lw(Reg::A4, Reg::SP, 16);
        asm.addi(Reg::SP, Reg::SP, 20);
        asm.ret_via(Reg::R11);
    }

    // Atomics neither scan nor install.
    asm.func("__san_atomic4");
    asm.ret_via(Reg::R11);

    // KCSAN has no allocator or global state to maintain.
    for name in ["__san_alloc", "__san_free", "__san_global", "__san_ready"] {
        asm.func(name);
        asm.ret();
    }

    let globals = vec![
        GlobalDef::plain("kcsan_wp", vec![0; WP_SLOTS * 8]),
        GlobalDef::plain("kcsan_ctr", vec![0; 4]),
        GlobalDef::plain("kcsan_msg", format!("{KCSAN_MARKER}\0").into_bytes()),
    ];
    (asm, globals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsan_emu::profile::Arch;

    #[test]
    fn emits_full_symbol_set() {
        let (asm, globals) = emit(&BuildOptions::new(Arch::X86v));
        let mut p = embsan_asm::ir::Program::new();
        p.text = asm.into_items();
        for name in [
            "__san_init",
            "__san_load4",
            "__san_store1",
            "__san_atomic4",
            "__san_alloc",
            "__san_free",
            "__san_global",
            "__san_ready",
        ] {
            assert!(p.defines_function(name), "missing {name}");
        }
        assert!(globals.iter().any(|g| g.name == "kcsan_wp"));
    }
}
