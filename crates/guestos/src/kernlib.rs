//! Shared guest kernel runtime: boot, console, memory utilities, spinlocks,
//! and the SMP background task.
//!
//! Every OS flavour links this library. The boot protocol:
//!
//! 1. each vCPU computes its own stack from `__stack_top`;
//! 2. secondaries spin (with `wfi`) on the `boot_release` flag;
//! 3. the primary runs `__san_register_globals` (instrumented builds), the
//!    OS-specific `os_init`, prints the ready banner, signals the sanitizer
//!    (`__san_ready` on instrumented builds), passes the exported
//!    `kernel_ready` symbol, releases the secondaries and enters the
//!    executor loop.

use embsan_asm::builder::Asm;
use embsan_asm::ir::GlobalDef;
use embsan_asm::sanabi::stubs;
use embsan_emu::device;
use embsan_emu::isa::Reg;
use embsan_emu::profile::ArchProfile;

use crate::opts::{BuildOptions, SanMode, STACK_SIZE};

/// Ready-banner text printed by every firmware (the closed-firmware prober
/// uses it as one of its ready signals).
pub const READY_BANNER: &str = "embsan guest ready\n";

/// Names of kernlib functions that must never be instrumented.
pub const NO_INSTRUMENT: [&str; 3] = ["boot", "lock_acquire", "lock_release"];

/// Emits the common runtime. The caller provides `os_init`, `os_secondary`
/// and `executor_loop`.
pub fn emit(opts: &BuildOptions, with_racy_bg: bool) -> (Asm, Vec<GlobalDef>) {
    let profile = ArchProfile::for_arch(opts.arch);
    let uart_tx = i64::from(profile.mmio_base + device::UART_BASE);
    let power = i64::from(profile.mmio_base + device::POWER_BASE);
    let mut asm = Asm::new();

    // --- boot ---------------------------------------------------------
    asm.func("boot");
    asm.csrr(Reg::R1, embsan_emu::cpu::Csr::Cpuid as u16);
    asm.li(Reg::R2, i64::from(STACK_SIZE));
    asm.mul(Reg::R2, Reg::R1, Reg::R2);
    asm.la(Reg::SP, "__stack_top");
    asm.sub(Reg::SP, Reg::SP, Reg::R2);
    asm.bne(Reg::R1, Reg::R0, "boot.secondary");
    if opts.san.is_instrumented() {
        if opts.san == SanMode::NativeKasan || opts.san == SanMode::NativeKcsan {
            asm.call("__san_init");
        }
        asm.call(stubs::REGISTER_GLOBALS);
    }
    asm.call("os_init");
    asm.la(Reg::A0, "banner_str");
    asm.call("uart_puts");
    if opts.san.is_instrumented() {
        asm.call(stubs::READY);
    }
    // The exported ready-to-run point.
    asm.func("kernel_ready");
    asm.li(Reg::R1, 1);
    asm.la(Reg::R2, "boot_release");
    asm.sw(Reg::R1, Reg::R2, 0);
    asm.call("executor_loop");
    // executor_loop never returns; halt defensively.
    asm.halt(0xDEAD);
    asm.label("boot.secondary");
    if opts.irq {
        // The secondary is the interrupt-servicing core: install the trap
        // vector and enable interrupt delivery before parking. The primary
        // keeps Ie = 0 so syscall dispatch is never preempted — the ISR and
        // the executor genuinely run concurrently on different vCPUs.
        asm.la(Reg::R2, "irq_vector");
        asm.csrw(Reg::R2, embsan_emu::cpu::Csr::Tvec as u16);
        asm.li(Reg::R3, 1);
        asm.csrw(Reg::R3, embsan_emu::cpu::Csr::Ie as u16);
    }
    asm.la(Reg::R2, "boot_release");
    asm.label("boot.spin");
    asm.lw(Reg::R3, Reg::R2, 0);
    asm.bne(Reg::R3, Reg::R0, "boot.go");
    asm.wfi();
    asm.jump("boot.spin");
    asm.label("boot.go");
    asm.call("os_secondary");
    asm.label("boot.idle");
    asm.wfi();
    asm.jump("boot.idle");

    // --- console ------------------------------------------------------
    // uart_putc(a0 = byte); clobbers a1.
    asm.func("uart_putc");
    asm.li(Reg::A1, uart_tx);
    asm.sw(Reg::A0, Reg::A1, 0);
    asm.ret();

    // uart_puts(a0 = NUL-terminated string); clobbers a0-a2.
    asm.func("uart_puts");
    asm.li(Reg::A2, uart_tx);
    asm.label("uart_puts.loop");
    asm.lbu(Reg::A1, Reg::A0, 0);
    asm.beq(Reg::A1, Reg::R0, "uart_puts.done");
    asm.sw(Reg::A1, Reg::A2, 0);
    asm.addi(Reg::A0, Reg::A0, 1);
    asm.jump("uart_puts.loop");
    asm.label("uart_puts.done");
    asm.ret();

    // uart_put_hex(a0 = value): prints 8 lowercase hex digits; clobbers a1-a4.
    asm.func("uart_put_hex");
    asm.li(Reg::A4, uart_tx);
    asm.li(Reg::A3, 28);
    asm.label("uart_put_hex.loop");
    asm.srl(Reg::A1, Reg::A0, Reg::A3);
    asm.andi(Reg::A1, Reg::A1, 0xF);
    asm.slti(Reg::A2, Reg::A1, 10);
    asm.bne(Reg::A2, Reg::R0, "uart_put_hex.digit");
    asm.addi(Reg::A1, Reg::A1, i32::from(b'a') - 10);
    asm.jump("uart_put_hex.emit");
    asm.label("uart_put_hex.digit");
    asm.addi(Reg::A1, Reg::A1, i32::from(b'0'));
    asm.label("uart_put_hex.emit");
    asm.sw(Reg::A1, Reg::A4, 0);
    asm.addi(Reg::A3, Reg::A3, -4);
    asm.bge(Reg::A3, Reg::R0, "uart_put_hex.loop");
    asm.ret();

    // --- memory utilities ----------------------------------------------
    // memset(a0 = dst, a1 = byte, a2 = len); returns a0 = dst.
    asm.func("memset");
    asm.mv(Reg::A3, Reg::A0);
    asm.label("memset.loop");
    asm.beq(Reg::A2, Reg::R0, "memset.done");
    asm.sb(Reg::A1, Reg::A3, 0);
    asm.addi(Reg::A3, Reg::A3, 1);
    asm.addi(Reg::A2, Reg::A2, -1);
    asm.jump("memset.loop");
    asm.label("memset.done");
    asm.ret();

    // memcpy(a0 = dst, a1 = src, a2 = len); returns a0 = dst.
    asm.func("memcpy");
    asm.mv(Reg::A3, Reg::A0);
    asm.label("memcpy.loop");
    asm.beq(Reg::A2, Reg::R0, "memcpy.done");
    asm.lbu(Reg::A4, Reg::A1, 0);
    asm.sb(Reg::A4, Reg::A3, 0);
    asm.addi(Reg::A1, Reg::A1, 1);
    asm.addi(Reg::A3, Reg::A3, 1);
    asm.addi(Reg::A2, Reg::A2, -1);
    asm.jump("memcpy.loop");
    asm.label("memcpy.done");
    asm.ret();

    // --- panic ----------------------------------------------------------
    // panic(a0 = code): prints and powers off with that code.
    asm.func("panic");
    asm.mv(Reg::R7, Reg::A0);
    asm.la(Reg::A0, "panic_str");
    asm.call("uart_puts");
    asm.li(Reg::A1, power);
    asm.sw(Reg::R7, Reg::A1, 0);
    asm.label("panic.spin");
    asm.wfi();
    asm.jump("panic.spin");

    // --- spinlocks -------------------------------------------------------
    // lock_acquire(a0 = &lock); clobbers a1.
    asm.func("lock_acquire");
    asm.label("lock_acquire.retry");
    asm.li(Reg::A1, 1);
    asm.amoswp(Reg::A1, Reg::A0, Reg::A1);
    asm.bne(Reg::A1, Reg::R0, "lock_acquire.retry");
    asm.ret();

    // lock_release(a0 = &lock); clobbers a1.
    asm.func("lock_release");
    asm.amoswp(Reg::A1, Reg::A0, Reg::R0);
    asm.ret();

    // --- background task (secondary CPU) ---------------------------------
    // Locked stats heartbeat; firmware with seeded race bugs also touches
    // `racy_counter` without synchronization (the other half of the race).
    asm.func("bg_task");
    asm.la(Reg::R7, "shared_stats");
    asm.la(Reg::R8, "stats_lock");
    asm.la(Reg::R9, "racy_counter");
    asm.label("bg_task.loop");
    asm.mv(Reg::A0, Reg::R8);
    asm.call("lock_acquire");
    asm.lw(Reg::A1, Reg::R7, 0);
    asm.addi(Reg::A1, Reg::A1, 1);
    asm.sw(Reg::A1, Reg::R7, 0);
    asm.mv(Reg::A0, Reg::R8);
    asm.call("lock_release");
    if with_racy_bg {
        asm.lw(Reg::A1, Reg::R9, 0);
        asm.addi(Reg::A1, Reg::A1, 1);
        asm.sw(Reg::A1, Reg::R9, 0);
    }
    asm.jump("bg_task.loop");

    // --- interrupt service routine (secondary CPU) -----------------------
    // Asynchronous entry: every register may be live in the interrupted
    // context, so the ISR saves exactly what it clobbers. Acks whatever the
    // GPIO and alarm devices latched (write-1-to-clear), then bumps the
    // `irq_shared` counter with a plain read-modify-write — deliberately
    // unsynchronized against `sys_irq_load`'s mainloop increments, the
    // classic ISR/mainloop shared-state race.
    if opts.irq {
        let gpio_pending = i64::from(profile.mmio_base + device::GPIO_BASE + 0x10);
        let alarm_pending = i64::from(profile.mmio_base + device::ALARM_BASE + 0x0C);
        asm.func("irq_vector");
        asm.addi(Reg::SP, Reg::SP, -8);
        asm.sw(Reg::A0, Reg::SP, 0);
        asm.sw(Reg::A1, Reg::SP, 4);
        asm.li(Reg::A0, gpio_pending);
        asm.lw(Reg::A1, Reg::A0, 0);
        asm.sw(Reg::A1, Reg::A0, 0);
        asm.li(Reg::A0, alarm_pending);
        asm.lw(Reg::A1, Reg::A0, 0);
        asm.sw(Reg::A1, Reg::A0, 0);
        asm.la(Reg::A0, "irq_shared");
        asm.lw(Reg::A1, Reg::A0, 0);
        asm.addi(Reg::A1, Reg::A1, 1);
        asm.sw(Reg::A1, Reg::A0, 0);
        asm.lw(Reg::A1, Reg::SP, 4);
        asm.lw(Reg::A0, Reg::SP, 0);
        asm.addi(Reg::SP, Reg::SP, 8);
        asm.eret();
    }

    let mut globals = vec![
        GlobalDef::plain("banner_str", format!("{READY_BANNER}\0").into_bytes()),
        GlobalDef::plain("panic_str", b"guest panic\n\0".to_vec()),
        GlobalDef::plain("boot_release", vec![0; 4]),
        GlobalDef::zeroed("shared_stats", 4),
        GlobalDef::plain("stats_lock", vec![0; 4]),
        GlobalDef::zeroed("racy_counter", 4),
    ];
    if opts.irq {
        globals.push(GlobalDef::zeroed("irq_shared", 4));
    }
    (asm, globals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsan_emu::profile::Arch;

    #[test]
    fn emits_all_runtime_functions() {
        let opts = BuildOptions::new(Arch::Armv);
        let (asm, globals) = emit(&opts, true);
        let mut program = embsan_asm::ir::Program::new();
        program.text = asm.into_items();
        for name in [
            "boot",
            "kernel_ready",
            "uart_putc",
            "uart_puts",
            "uart_put_hex",
            "memset",
            "memcpy",
            "panic",
            "lock_acquire",
            "lock_release",
            "bg_task",
        ] {
            assert!(program.defines_function(name), "missing {name}");
        }
        assert!(globals.iter().any(|g| g.name == "banner_str"));
    }

    #[test]
    fn instrumented_boot_calls_sanitizer_hooks() {
        let opts = BuildOptions::new(Arch::Armv).san(SanMode::SanCall);
        let (asm, _) = emit(&opts, false);
        let calls: Vec<String> = asm
            .items()
            .iter()
            .filter_map(|i| match i {
                embsan_asm::ir::TextItem::Insn(embsan_asm::ir::AInsn::Call { target }) => {
                    Some(target.clone())
                }
                _ => None,
            })
            .collect();
        assert!(calls.contains(&stubs::REGISTER_GLOBALS.to_string()));
        assert!(calls.contains(&stubs::READY.to_string()));
        // SanCall links the dummy library, not a guest-native init.
        assert!(!calls.contains(&"__san_init".to_string()));
    }

    #[test]
    fn racy_background_writes_only_when_requested() {
        let opts = BuildOptions::new(Arch::Armv);
        let (with_race, _) = emit(&opts, true);
        let (without, _) = emit(&opts, false);
        assert!(with_race.items().len() > without.items().len());
    }
}
