//! The fuzzer executor: guest-side syscall dispatch fed by the mailbox
//! device, plus the host-side test-program encoding.
//!
//! This plays the role of Syzkaller's executor / Tardis's injected test
//! programs: the host serializes an [`ExecProgram`] into the mailbox, the
//! guest's `executor_loop` decodes it call by call, dispatches through the
//! firmware's syscall table, and writes one result byte per call back.
//!
//! Wire format: `[n_calls u8]` then per call `[nr u8][argc u8][argc × u32 LE]`.

use embsan_asm::builder::Asm;
use embsan_asm::ir::GlobalDef;
use embsan_emu::device;
use embsan_emu::isa::Reg;
use embsan_emu::profile::ArchProfile;

use crate::opts::BuildOptions;

/// Maximum calls per program.
pub const MAX_CALLS: usize = 64;
/// Maximum arguments per call.
pub const MAX_ARGS: usize = 4;
/// Capacity of the guest syscall table.
pub const SYS_TABLE_CAP: usize = 64;
/// Result byte returned for out-of-range syscall numbers.
pub const BAD_SYSCALL_RESULT: u8 = 0xFF;

/// Base syscall numbers common to every OS flavour.
pub mod sys {
    /// `nop()` → 0.
    pub const NOP: u8 = 0;
    /// `echo(x)` → x (low byte).
    pub const ECHO: u8 = 1;
    /// `alloc(size, slot)` → nonzero on success.
    pub const ALLOC: u8 = 2;
    /// `free(slot)`.
    pub const FREE: u8 = 3;
    /// `write(slot, off, val)`: bounded store into the object.
    pub const WRITE: u8 = 4;
    /// `read(slot, off)`: bounded load.
    pub const READ: u8 = 5;
    /// `fill(slot, byte)`: memset the object.
    pub const FILL: u8 = 6;
    /// `copy(dst_slot, src_slot)`: memcpy between objects.
    pub const COPY: u8 = 7;
    /// `stat()`: locked shared-counter increment.
    pub const STAT: u8 = 8;
    /// `hash(n)`: cpu-bound mixing loop.
    pub const HASH: u8 = 9;
    /// `irq_setup(period, both_edges, deferred)`: arm the GPIO pattern
    /// generator (and optionally an alarm deferred call) so the secondary
    /// CPU's ISR starts firing. Only on `BuildOptions::irq` builds.
    pub const IRQ_SETUP: u8 = 10;
    /// `irq_load(n)`: unsynchronized read-modify-write loop on the counter
    /// the ISR also increments — the mainloop half of the ISR/mainloop
    /// race. Only on `BuildOptions::irq` builds.
    pub const IRQ_LOAD: u8 = 11;
    /// First bug-syscall number.
    pub const BUG_BASE: u8 = 16;
}

/// One syscall invocation in a test program.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ExecCall {
    /// Syscall number.
    pub nr: u8,
    /// Arguments (at most [`MAX_ARGS`]).
    pub args: Vec<u32>,
}

impl ExecCall {
    /// Creates a call.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_ARGS`] arguments are given.
    pub fn new(nr: u8, args: &[u32]) -> ExecCall {
        assert!(args.len() <= MAX_ARGS, "at most {MAX_ARGS} arguments");
        ExecCall { nr, args: args.to_vec() }
    }
}

/// A serializable test program.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct ExecProgram {
    /// The calls, executed in order.
    pub calls: Vec<ExecCall>,
}

impl ExecProgram {
    /// Creates an empty program.
    pub fn new() -> ExecProgram {
        ExecProgram::default()
    }

    /// Appends a call.
    ///
    /// # Panics
    ///
    /// Panics if the program already has [`MAX_CALLS`] calls or the call has
    /// too many arguments.
    pub fn push(&mut self, nr: u8, args: &[u32]) -> &mut Self {
        assert!(self.calls.len() < MAX_CALLS, "at most {MAX_CALLS} calls");
        self.calls.push(ExecCall::new(nr, args));
        self
    }

    /// Serializes to the mailbox wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![self.calls.len() as u8];
        for call in &self.calls {
            out.push(call.nr);
            out.push(call.args.len() as u8);
            for arg in &call.args {
                out.extend_from_slice(&arg.to_le_bytes());
            }
        }
        out
    }

    /// Derives the model-free MMIO response stream that delivers this
    /// program through a *withheld* mailbox (no platform MMIO model).
    ///
    /// The executor polls the status register once (one read site), then
    /// streams bytes through `mb_read_byte` — a single 4-byte load at one
    /// pc, so consecutive reads are same-site "stalls" that each draw a
    /// fresh word from the stream. The stream is therefore one status word
    /// (nonzero = program pending) followed by each wire-format byte
    /// widened to a little-endian word. Once the stream runs dry the
    /// executor reads zeros and idles, so the program boundary needs no
    /// terminator.
    pub fn model_free_stream(&self) -> Vec<u8> {
        let encoded = self.encode();
        let mut out = Vec::with_capacity(4 + encoded.len() * 4);
        out.extend_from_slice(&1u32.to_le_bytes());
        for byte in encoded {
            out.extend_from_slice(&u32::from(byte).to_le_bytes());
        }
        out
    }

    /// Parses the wire format (used for corpus storage round-trips).
    pub fn decode(bytes: &[u8]) -> Option<ExecProgram> {
        let mut program = ExecProgram::new();
        let (&n, mut rest) = bytes.split_first()?;
        for _ in 0..n {
            let (&nr, r) = rest.split_first()?;
            let (&argc, mut r) = r.split_first()?;
            if usize::from(argc) > MAX_ARGS {
                return None;
            }
            let mut args = Vec::with_capacity(argc.into());
            for _ in 0..argc {
                let (word, r2) = r.split_first_chunk::<4>()?;
                args.push(u32::from_le_bytes(*word));
                r = r2;
            }
            program.calls.push(ExecCall { nr, args });
            rest = r;
        }
        if rest.is_empty() {
            Some(program)
        } else {
            None
        }
    }
}

/// Emits the mailbox helpers, the executor loop, the base syscalls and the
/// `syscalls_init` table builder.
///
/// `alloc_fn`/`free_fn` are the OS's allocator entry points; `extra` maps
/// additional syscall numbers to handler function names (bug syscalls).
pub fn emit(
    opts: &BuildOptions,
    alloc_fn: &str,
    free_fn: &str,
    extra: &[(u8, String)],
) -> (Asm, Vec<GlobalDef>, Vec<String>) {
    let profile = ArchProfile::for_arch(opts.arch);
    let mb = profile.mmio_base + device::MAILBOX_BASE;
    let status = i64::from(mb);
    let next = i64::from(mb + 8);
    let result = i64::from(mb + 12);
    let mut asm = Asm::new();

    // mb_read_byte() -> a0; clobbers a1.
    asm.func("mb_read_byte");
    asm.li(Reg::A1, next);
    asm.lw(Reg::A0, Reg::A1, 0);
    asm.ret();

    // mb_read_word() -> a0 (little-endian assembly); clobbers a0-a3.
    asm.func("mb_read_word");
    asm.prologue(&[]);
    asm.li(Reg::A2, 0);
    asm.li(Reg::A3, 0);
    asm.label("mb_read_word.loop");
    asm.call("mb_read_byte");
    asm.sll(Reg::A0, Reg::A0, Reg::A3);
    asm.or(Reg::A2, Reg::A2, Reg::A0);
    asm.addi(Reg::A3, Reg::A3, 8);
    asm.slti(Reg::A1, Reg::A3, 32);
    asm.bne(Reg::A1, Reg::R0, "mb_read_word.loop");
    asm.mv(Reg::A0, Reg::A2);
    asm.epilogue(&[]);

    // executor_loop(): never returns.
    asm.func("executor_loop");
    asm.li(Reg::R7, status);
    asm.label("executor_loop.wait");
    asm.lw(Reg::A0, Reg::R7, 0);
    asm.bne(Reg::A0, Reg::R0, "executor_loop.got");
    asm.wfi();
    asm.jump("executor_loop.wait");
    asm.label("executor_loop.got");
    asm.call("mb_read_byte");
    asm.mv(Reg::R8, Reg::A0); // remaining calls
    asm.label("executor_loop.calls");
    asm.beq(Reg::R8, Reg::R0, "executor_loop.wait");
    asm.call("mb_read_byte");
    asm.mv(Reg::R9, Reg::A0); // syscall nr
    asm.call("mb_read_byte");
    asm.mv(Reg::A4, Reg::A0); // argc
                              // Argument slots on the stack, zeroed.
    asm.addi(Reg::SP, Reg::SP, -16);
    for slot in 0..4 {
        asm.sw(Reg::R0, Reg::SP, slot * 4);
    }
    asm.li(Reg::A5, 0); // index
    asm.label("executor_loop.args");
    asm.bgeu(Reg::A5, Reg::A4, "executor_loop.dispatch");
    asm.call("mb_read_word"); // preserves a4/a5
    asm.li(Reg::A1, 4);
    asm.bgeu(Reg::A5, Reg::A1, "executor_loop.argnext"); // excess args dropped
    asm.slli(Reg::A1, Reg::A5, 2);
    asm.add(Reg::A1, Reg::A1, Reg::SP);
    asm.sw(Reg::A0, Reg::A1, 0);
    asm.label("executor_loop.argnext");
    asm.addi(Reg::A5, Reg::A5, 1);
    asm.jump("executor_loop.args");
    asm.label("executor_loop.dispatch");
    asm.la(Reg::A1, "sys_count");
    asm.lw(Reg::A1, Reg::A1, 0);
    asm.bgeu(Reg::R9, Reg::A1, "executor_loop.badnr");
    asm.la(Reg::A1, "sys_table");
    asm.slli(Reg::A2, Reg::R9, 2);
    asm.add(Reg::A1, Reg::A1, Reg::A2);
    asm.lw(Reg::R9, Reg::A1, 0); // handler address
    asm.lw(Reg::A0, Reg::SP, 0);
    asm.lw(Reg::A1, Reg::SP, 4);
    asm.lw(Reg::A2, Reg::SP, 8);
    asm.lw(Reg::A3, Reg::SP, 12);
    asm.call_reg(Reg::R9);
    asm.jump("executor_loop.result");
    asm.label("executor_loop.badnr");
    asm.li(Reg::A0, i64::from(BAD_SYSCALL_RESULT));
    asm.label("executor_loop.result");
    asm.addi(Reg::SP, Reg::SP, 16);
    asm.li(Reg::A1, result);
    asm.sw(Reg::A0, Reg::A1, 0);
    asm.addi(Reg::R8, Reg::R8, -1);
    asm.jump("executor_loop.calls");

    emit_base_syscalls(&mut asm, alloc_fn, free_fn);
    if opts.irq {
        emit_irq_syscalls(&mut asm, &profile);
    }

    // syscalls_init(): fill the dispatch table.
    let mut entries: Vec<(u8, String)> = vec![
        (sys::NOP, "sys_nop".into()),
        (sys::ECHO, "sys_echo".into()),
        (sys::ALLOC, "sys_alloc".into()),
        (sys::FREE, "sys_free".into()),
        (sys::WRITE, "sys_write".into()),
        (sys::READ, "sys_read".into()),
        (sys::FILL, "sys_fill".into()),
        (sys::COPY, "sys_copy".into()),
        (sys::STAT, "sys_stat".into()),
        (sys::HASH, "sys_hash".into()),
    ];
    if opts.irq {
        entries.push((sys::IRQ_SETUP, "sys_irq_setup".into()));
        entries.push((sys::IRQ_LOAD, "sys_irq_load".into()));
    }
    entries.extend(extra.iter().cloned());
    let max_nr = entries.iter().map(|(nr, _)| *nr).max().unwrap_or(0);
    assert!(usize::from(max_nr) < SYS_TABLE_CAP, "syscall table capacity exceeded");
    asm.func("syscalls_init");
    asm.la(Reg::A1, "sys_table");
    for (nr, handler) in &entries {
        asm.la(Reg::A0, handler);
        asm.sw(Reg::A0, Reg::A1, i32::from(*nr) * 4);
    }
    asm.li(Reg::A0, i64::from(max_nr) + 1);
    asm.la(Reg::A1, "sys_count");
    asm.sw(Reg::A0, Reg::A1, 0);
    asm.ret();

    let globals = vec![
        GlobalDef::zeroed("obj_table", 8 * 8),
        GlobalDef::plain("sys_table", vec![0; SYS_TABLE_CAP * 4]),
        GlobalDef::plain("sys_count", vec![0; 4]),
    ];
    // The executor machinery itself is OS plumbing, not workload code; the
    // base syscalls and handlers stay instrumented.
    let no_instrument = vec![
        "mb_read_byte".into(),
        "mb_read_word".into(),
        "executor_loop".into(),
        "syscalls_init".into(),
    ];
    (asm, globals, no_instrument)
}

/// Emits the interrupt syscalls (`BuildOptions::irq` builds only).
fn emit_irq_syscalls(asm: &mut Asm, profile: &ArchProfile) {
    let gpio = i64::from(profile.mmio_base + device::GPIO_BASE);
    let alarm = i64::from(profile.mmio_base + device::ALARM_BASE);

    // sys_irq_setup(period, both_edges, deferred) -> 0: arm the GPIO
    // pattern generator. The period is clamped into [0x40, 0xFFF] so edges
    // land inside a program's instruction budget whatever the fuzzer picks.
    asm.func("sys_irq_setup");
    asm.andi(Reg::A0, Reg::A0, 0xFFF);
    asm.ori(Reg::A0, Reg::A0, 0x40);
    asm.li(Reg::A4, gpio);
    asm.sw(Reg::A1, Reg::A4, 0x0C); // edge config: bit 0 = both edges
    asm.li(Reg::A5, 1);
    asm.sw(Reg::A5, Reg::A4, 0x08); // enable line 0
    asm.sw(Reg::A0, Reg::A4, 0x14); // pattern period — arms the generator
    asm.beq(Reg::A2, Reg::R0, "sys_irq_setup.out");
    asm.li(Reg::A4, alarm);
    asm.andi(Reg::A2, Reg::A2, 0xFFF);
    asm.sw(Reg::A2, Reg::A4, 0x10); // schedule a deferred call
    asm.label("sys_irq_setup.out");
    asm.li(Reg::A0, 0);
    asm.ret();

    // sys_irq_load(n) -> counter: the mainloop half of the ISR/mainloop
    // race. Plain lw/addi/sw on `irq_shared` — the ISR on the secondary
    // CPU does the same RMW with no synchronization between them.
    asm.func("sys_irq_load");
    asm.andi(Reg::A1, Reg::A0, 0x3FF);
    asm.ori(Reg::A1, Reg::A1, 0x20); // at least 32 iterations
    asm.la(Reg::A2, "irq_shared");
    asm.label("sys_irq_load.loop");
    asm.lw(Reg::A3, Reg::A2, 0);
    asm.addi(Reg::A3, Reg::A3, 1);
    asm.sw(Reg::A3, Reg::A2, 0);
    asm.addi(Reg::A1, Reg::A1, -1);
    asm.bne(Reg::A1, Reg::R0, "sys_irq_load.loop");
    asm.lw(Reg::A0, Reg::A2, 0);
    asm.ret();
}

/// Emits the base syscall handlers shared by every OS flavour.
fn emit_base_syscalls(asm: &mut Asm, alloc_fn: &str, free_fn: &str) {
    // sys_nop() -> 0
    asm.func("sys_nop");
    asm.li(Reg::A0, 0);
    asm.ret();

    // sys_echo(x) -> x
    asm.func("sys_echo");
    asm.ret();

    // sys_alloc(size, slot) -> ptr != 0
    asm.func("sys_alloc");
    asm.prologue(&[Reg::R7, Reg::R8]);
    asm.andi(Reg::R7, Reg::A1, 7); // slot
    asm.andi(Reg::A0, Reg::A0, 0x3FF); // clamp size to 1023
    asm.bne(Reg::A0, Reg::R0, "sys_alloc.sized");
    asm.li(Reg::A0, 8);
    asm.label("sys_alloc.sized");
    asm.mv(Reg::R8, Reg::A0); // remember size
    asm.call(alloc_fn);
    asm.la(Reg::A1, "obj_table");
    asm.slli(Reg::A2, Reg::R7, 3);
    asm.add(Reg::A1, Reg::A1, Reg::A2);
    asm.sw(Reg::A0, Reg::A1, 0);
    asm.sw(Reg::R8, Reg::A1, 4);
    asm.epilogue(&[Reg::R7, Reg::R8]);

    // sys_free(slot) -> 0
    asm.func("sys_free");
    asm.prologue(&[Reg::R7]);
    asm.andi(Reg::A2, Reg::A0, 7);
    asm.la(Reg::A1, "obj_table");
    asm.slli(Reg::A3, Reg::A2, 3);
    asm.add(Reg::A1, Reg::A1, Reg::A3);
    asm.lw(Reg::R7, Reg::A1, 0);
    asm.beq(Reg::R7, Reg::R0, "sys_free.out");
    asm.sw(Reg::R0, Reg::A1, 0);
    asm.sw(Reg::R0, Reg::A1, 4);
    asm.mv(Reg::A0, Reg::R7);
    asm.call(free_fn);
    asm.label("sys_free.out");
    asm.li(Reg::A0, 0);
    asm.epilogue(&[Reg::R7]);

    // sys_write(slot, off, val) -> 0 (1 if the slot is empty)
    asm.func("sys_write");
    asm.andi(Reg::A4, Reg::A0, 7);
    asm.la(Reg::A3, "obj_table");
    asm.slli(Reg::A4, Reg::A4, 3);
    asm.add(Reg::A3, Reg::A3, Reg::A4);
    asm.lw(Reg::A4, Reg::A3, 0); // ptr
    asm.beq(Reg::A4, Reg::R0, "sys_write.empty");
    asm.lw(Reg::A5, Reg::A3, 4); // size
    asm.remu(Reg::A1, Reg::A1, Reg::A5); // bounded offset
    asm.add(Reg::A4, Reg::A4, Reg::A1);
    asm.sb(Reg::A2, Reg::A4, 0);
    asm.li(Reg::A0, 0);
    asm.ret();
    asm.label("sys_write.empty");
    asm.li(Reg::A0, 1);
    asm.ret();

    // sys_read(slot, off) -> byte (1 if empty — indistinguishable by design,
    // like errno-less embedded APIs)
    asm.func("sys_read");
    asm.andi(Reg::A4, Reg::A0, 7);
    asm.la(Reg::A3, "obj_table");
    asm.slli(Reg::A4, Reg::A4, 3);
    asm.add(Reg::A3, Reg::A3, Reg::A4);
    asm.lw(Reg::A4, Reg::A3, 0);
    asm.beq(Reg::A4, Reg::R0, "sys_read.empty");
    asm.lw(Reg::A5, Reg::A3, 4);
    asm.remu(Reg::A1, Reg::A1, Reg::A5);
    asm.add(Reg::A4, Reg::A4, Reg::A1);
    asm.lbu(Reg::A0, Reg::A4, 0);
    asm.ret();
    asm.label("sys_read.empty");
    asm.li(Reg::A0, 1);
    asm.ret();

    // sys_fill(slot, byte) -> 0
    asm.func("sys_fill");
    asm.prologue(&[]);
    asm.andi(Reg::A4, Reg::A0, 7);
    asm.la(Reg::A3, "obj_table");
    asm.slli(Reg::A4, Reg::A4, 3);
    asm.add(Reg::A3, Reg::A3, Reg::A4);
    asm.lw(Reg::A0, Reg::A3, 0); // dst
    asm.beq(Reg::A0, Reg::R0, "sys_fill.out");
    asm.lw(Reg::A2, Reg::A3, 4); // len = size
    asm.call("memset");
    asm.label("sys_fill.out");
    asm.li(Reg::A0, 0);
    asm.epilogue(&[]);

    // sys_copy(dst_slot, src_slot) -> 0
    asm.func("sys_copy");
    asm.prologue(&[]);
    asm.andi(Reg::A4, Reg::A0, 7);
    asm.la(Reg::A3, "obj_table");
    asm.slli(Reg::A4, Reg::A4, 3);
    asm.add(Reg::A4, Reg::A3, Reg::A4);
    asm.andi(Reg::A5, Reg::A1, 7);
    asm.slli(Reg::A5, Reg::A5, 3);
    asm.add(Reg::A5, Reg::A3, Reg::A5);
    asm.lw(Reg::A0, Reg::A4, 0); // dst ptr
    asm.lw(Reg::A1, Reg::A5, 0); // src ptr
    asm.beq(Reg::A0, Reg::R0, "sys_copy.out");
    asm.beq(Reg::A1, Reg::R0, "sys_copy.out");
    asm.lw(Reg::A2, Reg::A4, 4); // dst size
    asm.lw(Reg::A3, Reg::A5, 4); // src size
    asm.bgeu(Reg::A3, Reg::A2, "sys_copy.go"); // len = min(dst, src)
    asm.mv(Reg::A2, Reg::A3);
    asm.label("sys_copy.go");
    asm.call("memcpy");
    asm.label("sys_copy.out");
    asm.li(Reg::A0, 0);
    asm.epilogue(&[]);

    // sys_stat() -> new counter value (locked)
    asm.func("sys_stat");
    asm.prologue(&[Reg::R7]);
    asm.la(Reg::A0, "stats_lock");
    asm.call("lock_acquire");
    asm.la(Reg::A1, "shared_stats");
    asm.lw(Reg::R7, Reg::A1, 0);
    asm.addi(Reg::R7, Reg::R7, 1);
    asm.sw(Reg::R7, Reg::A1, 0);
    asm.la(Reg::A0, "stats_lock");
    asm.call("lock_release");
    asm.mv(Reg::A0, Reg::R7);
    asm.epilogue(&[Reg::R7]);

    // sys_hash(n) -> mixed value; pure CPU work.
    asm.func("sys_hash");
    asm.andi(Reg::A1, Reg::A0, 0xFFF); // iterations ≤ 4095
    asm.li(Reg::A2, 0x9E37);
    asm.li(Reg::A3, 0x85EB_CA6Bi64);
    asm.label("sys_hash.loop");
    asm.beq(Reg::A1, Reg::R0, "sys_hash.done");
    asm.mul(Reg::A2, Reg::A2, Reg::A3);
    asm.srli(Reg::A4, Reg::A2, 13);
    asm.xor(Reg::A2, Reg::A2, Reg::A4);
    asm.addi(Reg::A1, Reg::A1, -1);
    asm.jump("sys_hash.loop");
    asm.label("sys_hash.done");
    asm.mv(Reg::A0, Reg::A2);
    asm.ret();
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsan_emu::profile::Arch;

    #[test]
    fn program_encoding_roundtrip() {
        let mut program = ExecProgram::new();
        program.push(sys::ALLOC, &[64, 0]);
        program.push(sys::WRITE, &[0, 5, 0xAB]);
        program.push(sys::NOP, &[]);
        let bytes = program.encode();
        assert_eq!(bytes[0], 3);
        assert_eq!(ExecProgram::decode(&bytes), Some(program));
    }

    #[test]
    fn decode_rejects_malformed() {
        assert_eq!(ExecProgram::decode(&[]), None);
        assert_eq!(ExecProgram::decode(&[1]), None); // promised call missing
        assert_eq!(ExecProgram::decode(&[1, 0, 9]), None); // argc > MAX_ARGS
        assert_eq!(ExecProgram::decode(&[1, 0, 1, 0xAA]), None); // short arg
        let mut ok = ExecProgram::new();
        ok.push(0, &[]);
        let mut bytes = ok.encode();
        bytes.push(0); // trailing garbage
        assert_eq!(ExecProgram::decode(&bytes), None);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_args_panics() {
        ExecProgram::new().push(0, &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn emits_executor_and_syscalls() {
        let opts = BuildOptions::new(Arch::Armv);
        let (asm, globals, _) = emit(&opts, "kmalloc", "kfree", &[(16, "sys_bug_0".into())]);
        let mut p = embsan_asm::ir::Program::new();
        p.text = asm.into_items();
        for name in [
            "executor_loop",
            "mb_read_byte",
            "mb_read_word",
            "sys_nop",
            "sys_alloc",
            "sys_free",
            "sys_write",
            "sys_read",
            "sys_fill",
            "sys_copy",
            "sys_stat",
            "sys_hash",
            "syscalls_init",
        ] {
            assert!(p.defines_function(name), "missing {name}");
        }
        assert!(globals.iter().any(|g| g.name == "sys_table"));
    }

    #[test]
    #[should_panic(expected = "capacity exceeded")]
    fn table_capacity_is_enforced() {
        let opts = BuildOptions::new(Arch::Armv);
        let _ = emit(&opts, "kmalloc", "kfree", &[(200, "sys_bug_0".into())]);
    }
}
