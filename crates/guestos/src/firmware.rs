//! The Table-1 firmware registry.
//!
//! Eleven firmware configurations with base OS, architecture,
//! instrumentation mode, source availability and assigned fuzzer, exactly
//! as the paper's Table 1. Each entry knows its share of the Table-4 latent
//! bugs and can build itself into a runnable image.

use embsan_asm::image::FirmwareImage;
use embsan_asm::link::LinkError;
use embsan_emu::profile::Arch;

use crate::bugs::{BugKind, BugSpec, LATENT_BUGS};
use crate::opts::{BaseOs, BuildOptions, SanMode};
use crate::os;

/// Which fuzzer the paper assigned to a firmware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fuzzer {
    /// Syzkaller (Embedded Linux firmware).
    Syzkaller,
    /// Tardis (everything else).
    Tardis,
}

impl std::fmt::Display for Fuzzer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Fuzzer::Syzkaller => "Syzkaller",
            Fuzzer::Tardis => "Tardis",
        })
    }
}

/// One Table-1 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FirmwareSpec {
    /// Firmware name (Table 1/3/4 key).
    pub name: &'static str,
    /// Base operating system.
    pub base_os: BaseOs,
    /// Architecture.
    pub arch: Arch,
    /// Instrumentation mode: `true` = EMBSAN-C, `false` = EMBSAN-D.
    pub embsan_c: bool,
    /// Source availability.
    pub open_source: bool,
    /// Assigned fuzzer.
    pub fuzzer: Fuzzer,
    /// Whether the build enables the interrupt-driven concurrency surface
    /// (ISR on a second vCPU plus the `irq_setup`/`irq_load` syscalls).
    pub irq: bool,
}

/// The eleven evaluated firmware, in Table 1's row order.
pub const FIRMWARE: [FirmwareSpec; 11] = [
    FirmwareSpec {
        name: "OpenWRT-armvirt",
        base_os: BaseOs::EmbeddedLinux,
        arch: Arch::Armv,
        embsan_c: true,
        open_source: true,
        fuzzer: Fuzzer::Syzkaller,
        irq: false,
    },
    FirmwareSpec {
        name: "OpenWRT-bcm63xx",
        base_os: BaseOs::EmbeddedLinux,
        arch: Arch::Mipsv,
        embsan_c: false,
        open_source: true,
        fuzzer: Fuzzer::Syzkaller,
        irq: false,
    },
    FirmwareSpec {
        name: "OpenWRT-ipq807x",
        base_os: BaseOs::EmbeddedLinux,
        arch: Arch::Armv,
        embsan_c: true,
        open_source: true,
        fuzzer: Fuzzer::Syzkaller,
        irq: false,
    },
    FirmwareSpec {
        name: "OpenWRT-mt7629",
        base_os: BaseOs::EmbeddedLinux,
        arch: Arch::Armv,
        embsan_c: true,
        open_source: true,
        fuzzer: Fuzzer::Syzkaller,
        irq: false,
    },
    FirmwareSpec {
        name: "OpenWRT-rtl839x",
        base_os: BaseOs::EmbeddedLinux,
        arch: Arch::Mipsv,
        embsan_c: false,
        open_source: true,
        fuzzer: Fuzzer::Syzkaller,
        irq: false,
    },
    FirmwareSpec {
        name: "OpenWRT-x86_64",
        base_os: BaseOs::EmbeddedLinux,
        arch: Arch::X86v,
        embsan_c: true,
        open_source: true,
        fuzzer: Fuzzer::Syzkaller,
        irq: false,
    },
    FirmwareSpec {
        name: "OpenHarmony-rk3566",
        base_os: BaseOs::EmbeddedLinux,
        arch: Arch::Armv,
        embsan_c: true,
        open_source: true,
        fuzzer: Fuzzer::Tardis,
        irq: false,
    },
    FirmwareSpec {
        name: "OpenHarmony-stm32mp1",
        base_os: BaseOs::LiteOs,
        arch: Arch::Armv,
        embsan_c: false,
        open_source: true,
        fuzzer: Fuzzer::Tardis,
        irq: false,
    },
    FirmwareSpec {
        name: "OpenHarmony-stm32f407",
        base_os: BaseOs::LiteOs,
        arch: Arch::Mipsv,
        embsan_c: false,
        open_source: true,
        fuzzer: Fuzzer::Tardis,
        irq: false,
    },
    FirmwareSpec {
        name: "InfiniTime",
        base_os: BaseOs::FreeRtos,
        arch: Arch::Armv,
        embsan_c: false,
        open_source: true,
        fuzzer: Fuzzer::Tardis,
        irq: false,
    },
    FirmwareSpec {
        name: "TP-Link WDR-7660",
        base_os: BaseOs::VxWorks,
        arch: Arch::Armv,
        embsan_c: false,
        open_source: false,
        fuzzer: Fuzzer::Tardis,
        irq: false,
    },
];

/// Interrupt-rich companion firmware (not a Table-1 row): the InfiniTime
/// build with its sensor interrupt surface enabled. The secondary vCPU
/// services GPIO-edge and alarm interrupts from an ISR that shares
/// unsynchronized state with the `irq_load` syscall — the ISR/mainloop
/// race family that syscall-only firmware cannot exhibit. EMBSAN-D so the
/// uninstrumented ISR is still observed by dynamic interception.
pub const IRQ_FIRMWARE: FirmwareSpec = FirmwareSpec {
    name: "InfiniTime-sensor",
    base_os: BaseOs::FreeRtos,
    arch: Arch::Armv,
    embsan_c: false,
    open_source: true,
    fuzzer: Fuzzer::Tardis,
    irq: true,
};

/// Looks up a firmware spec by name (Table-1 rows plus the interrupt-rich
/// companion firmware).
pub fn firmware_by_name(name: &str) -> Option<&'static FirmwareSpec> {
    FIRMWARE.iter().chain(std::iter::once(&IRQ_FIRMWARE)).find(|f| f.name == name)
}

impl FirmwareSpec {
    /// The instrumentation-mode label used in Table 1.
    pub fn inst_mode_label(&self) -> &'static str {
        if self.embsan_c {
            "EmbSan-C"
        } else {
            "EmbSan-D"
        }
    }

    /// This firmware's latent bugs (its Table-4 rows), in table order.
    pub fn latent_bugs(&self) -> Vec<BugSpec> {
        LATENT_BUGS
            .iter()
            .filter(|b| b.firmware == self.name)
            .map(|b| BugSpec::new(b.location, b.kind))
            .collect()
    }

    /// Whether this firmware needs a second vCPU (it has seeded races, or
    /// its interrupt surface needs a CPU to service the ISR).
    pub fn needs_smp(&self) -> bool {
        self.irq || self.latent_bugs().iter().any(|b| b.kind == BugKind::Race)
    }

    /// Default build options for this firmware under the given sanitizer
    /// mode.
    pub fn build_options(&self, san: SanMode) -> BuildOptions {
        BuildOptions::new(self.arch)
            .san(san)
            .cpus(if self.needs_smp() { 2 } else { 1 })
            .irq(self.irq)
    }

    /// The sanitizer mode matching the firmware's Table-1 instrumentation
    /// column.
    pub fn default_san_mode(&self) -> SanMode {
        if self.embsan_c {
            SanMode::SanCall
        } else {
            SanMode::None
        }
    }

    /// Builds this firmware with its latent bug corpus. Closed-source
    /// firmware comes back stripped.
    ///
    /// # Errors
    ///
    /// Propagates linker errors.
    pub fn build(&self, san: SanMode) -> Result<FirmwareImage, LinkError> {
        let opts = self.build_options(san);
        let bugs = self.latent_bugs();
        match self.base_os {
            BaseOs::EmbeddedLinux => os::emblinux::build(&opts, &bugs),
            BaseOs::FreeRtos => os::freertos::build(&opts, &bugs),
            BaseOs::LiteOs => os::liteos::build(&opts, &bugs),
            BaseOs::VxWorks if self.open_source => os::vxworks::build_unstripped(&opts, &bugs),
            BaseOs::VxWorks => os::vxworks::build(&opts, &bugs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table1() {
        assert_eq!(FIRMWARE.len(), 11);
        let by = |n: &str| firmware_by_name(n).unwrap();
        assert_eq!(by("OpenWRT-bcm63xx").arch, Arch::Mipsv);
        assert!(!by("OpenWRT-bcm63xx").embsan_c);
        assert_eq!(by("OpenWRT-x86_64").arch, Arch::X86v);
        assert_eq!(by("InfiniTime").base_os, BaseOs::FreeRtos);
        assert_eq!(by("TP-Link WDR-7660").base_os, BaseOs::VxWorks);
        assert!(!by("TP-Link WDR-7660").open_source);
        assert_eq!(by("OpenHarmony-rk3566").fuzzer, Fuzzer::Tardis);
        assert_eq!(by("OpenWRT-armvirt").fuzzer, Fuzzer::Syzkaller);
        // Six Syzkaller targets (all OpenWRT), five Tardis targets.
        assert_eq!(FIRMWARE.iter().filter(|f| f.fuzzer == Fuzzer::Syzkaller).count(), 6);
    }

    #[test]
    fn latent_bug_distribution() {
        let total: usize = FIRMWARE.iter().map(|f| f.latent_bugs().len()).sum();
        assert_eq!(total, 41);
        assert_eq!(firmware_by_name("OpenWRT-armvirt").unwrap().latent_bugs().len(), 6);
        assert_eq!(firmware_by_name("TP-Link WDR-7660").unwrap().latent_bugs().len(), 2);
        assert!(firmware_by_name("OpenWRT-x86_64").unwrap().needs_smp());
        assert!(!firmware_by_name("InfiniTime").unwrap().needs_smp());
    }

    #[test]
    fn irq_firmware_builds_with_interrupt_surface() {
        let spec = firmware_by_name("InfiniTime-sensor").unwrap();
        assert!(spec.irq);
        assert!(spec.needs_smp());
        assert!(!spec.embsan_c, "ISR observation relies on EMBSAN-D dynamic interception");
        let image = spec.build(spec.default_san_mode()).unwrap();
        assert!(image.symbol("irq_vector").is_some());
        assert!(image.symbol("irq_shared").is_some());
        // The base InfiniTime row is untouched: single-CPU, no ISR.
        let base = firmware_by_name("InfiniTime").unwrap();
        assert!(!base.irq);
        let base_image = base.build(base.default_san_mode()).unwrap();
        assert!(base_image.symbol("irq_vector").is_none());
    }

    #[test]
    fn closed_firmware_builds_stripped() {
        let spec = firmware_by_name("TP-Link WDR-7660").unwrap();
        let image = spec.build(spec.default_san_mode()).unwrap();
        assert!(!image.has_symbols());
    }

    #[test]
    fn every_firmware_builds_in_its_default_mode() {
        for spec in &FIRMWARE {
            let image = spec.build(spec.default_san_mode()).unwrap();
            assert_eq!(image.arch, spec.arch, "{}", spec.name);
        }
    }
}
