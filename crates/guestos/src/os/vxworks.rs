//! VxWorks flavour (TP-Link WDR-7660 class firmware).
//!
//! The build path is identical to the other flavours, but the public
//! constructor returns a **stripped** image — no symbols, no global-object
//! table, no ready annotation — modelling the closed-source binary-only
//! firmware of the paper's category 3. Tests and the prober's ground-truth
//! validation can still reach the unstripped image via [`build_unstripped`].

use embsan_asm::image::FirmwareImage;
use embsan_asm::link::LinkError;

use crate::bugs::BugSpec;
use crate::opts::{BaseOs, BuildOptions};

/// Builds the closed-source firmware image (stripped).
///
/// # Errors
///
/// Propagates linker errors.
pub fn build(opts: &BuildOptions, bugs: &[BugSpec]) -> Result<FirmwareImage, LinkError> {
    Ok(build_unstripped(opts, bugs)?.strip())
}

/// Builds the same firmware with symbols intact (ground truth for tests).
///
/// # Errors
///
/// Propagates linker errors.
pub fn build_unstripped(opts: &BuildOptions, bugs: &[BugSpec]) -> Result<FirmwareImage, LinkError> {
    super::build_firmware(BaseOs::VxWorks, opts, bugs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{sys, ExecProgram};
    use embsan_emu::hook::NullHook;
    use embsan_emu::machine::RunExit;
    use embsan_emu::profile::Arch;

    #[test]
    fn stripped_image_has_no_analysis_surface_but_runs() {
        let opts = BuildOptions::new(Arch::Armv);
        let image = build(&opts, &[]).unwrap();
        assert!(!image.has_symbols());
        assert!(image.ready.is_none());
        let mut machine = image.boot_machine(1).unwrap();
        assert_eq!(machine.run(&mut NullHook, 2_000_000).unwrap(), RunExit::AllIdle);
        let mut program = ExecProgram::new();
        program.push(sys::ALLOC, &[40, 0]);
        program.push(sys::WRITE, &[0, 1, 9]);
        program.push(sys::READ, &[0, 1]);
        machine.bus_mut().devices.mailbox.host_load(&program.encode());
        assert_eq!(machine.run(&mut NullHook, 2_000_000).unwrap(), RunExit::AllIdle);
        let results = machine.bus_mut().devices.mailbox.host_take_results();
        assert_eq!(results[2], 9);
    }

    #[test]
    fn mempart_exact_fit_reuse() {
        let opts = BuildOptions::new(Arch::Armv);
        let image = build_unstripped(&opts, &[]).unwrap();
        let mut machine = image.boot_machine(1).unwrap();
        machine.run(&mut NullHook, 2_000_000).unwrap();
        let mut program = ExecProgram::new();
        program.push(sys::ALLOC, &[48, 0]);
        program.push(sys::WRITE, &[0, 20, 0x33]);
        program.push(sys::FREE, &[0]);
        program.push(sys::ALLOC, &[48, 1]); // exact-fit: same block back
        program.push(sys::READ, &[1, 20]);
        machine.bus_mut().devices.mailbox.host_load(&program.encode());
        machine.run(&mut NullHook, 2_000_000).unwrap();
        let results = machine.bus_mut().devices.mailbox.host_take_results();
        assert_eq!(results[4], 0x33);
    }
}
