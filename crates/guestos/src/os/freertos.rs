//! FreeRTOS flavour (InfiniTime-class firmware).

use embsan_asm::image::FirmwareImage;
use embsan_asm::link::LinkError;

use crate::bugs::BugSpec;
use crate::opts::{BaseOs, BuildOptions};

/// Builds a FreeRTOS firmware image with the given seeded bugs.
///
/// # Errors
///
/// Propagates linker errors.
pub fn build(opts: &BuildOptions, bugs: &[BugSpec]) -> Result<FirmwareImage, LinkError> {
    super::build_firmware(BaseOs::FreeRtos, opts, bugs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{sys, ExecProgram};
    use embsan_emu::hook::NullHook;
    use embsan_emu::machine::RunExit;
    use embsan_emu::profile::Arch;

    /// heap_4 first-fit: allocations work, splitting leaves room for more.
    #[test]
    fn heap4_allocates_and_frees() {
        let opts = BuildOptions::new(Arch::Armv);
        let image = build(&opts, &[]).unwrap();
        let mut machine = image.boot_machine(1).unwrap();
        assert_eq!(machine.run(&mut NullHook, 2_000_000).unwrap(), RunExit::AllIdle);
        let mut program = ExecProgram::new();
        for slot in 0..4u32 {
            program.push(sys::ALLOC, &[100 + slot * 32, slot]);
        }
        program.push(sys::WRITE, &[2, 11, 0x5C]);
        program.push(sys::READ, &[2, 11]);
        program.push(sys::FREE, &[1]);
        program.push(sys::ALLOC, &[100, 1]); // refill from the freed block
        machine.bus_mut().devices.mailbox.host_load(&program.encode());
        assert_eq!(machine.run(&mut NullHook, 2_000_000).unwrap(), RunExit::AllIdle);
        let results = machine.bus_mut().devices.mailbox.host_take_results();
        assert_eq!(results[5], 0x5C);
        assert_ne!(results[7], 0);
    }
}
