//! Embedded Linux flavour (OpenWRT / OpenHarmony-rk3566 class firmware).

use embsan_asm::image::FirmwareImage;
use embsan_asm::link::LinkError;

use crate::bugs::BugSpec;
use crate::opts::{BaseOs, BuildOptions};

/// Builds an Embedded Linux firmware image with the given seeded bugs.
///
/// # Errors
///
/// Propagates linker errors.
pub fn build(opts: &BuildOptions, bugs: &[BugSpec]) -> Result<FirmwareImage, LinkError> {
    super::build_firmware(BaseOs::EmbeddedLinux, opts, bugs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::{trigger_key, BugKind};
    use crate::executor::{sys, ExecProgram};
    use embsan_emu::hook::NullHook;
    use embsan_emu::machine::RunExit;
    use embsan_emu::profile::Arch;

    /// Exercise the full executor path: load a program through the mailbox,
    /// run syscalls, and read back per-call results.
    #[test]
    fn executor_round_trip() {
        let opts = BuildOptions::new(Arch::Armv);
        let image = build(&opts, &[]).unwrap();
        let mut machine = image.boot_machine(1).unwrap();
        assert_eq!(machine.run(&mut NullHook, 2_000_000).unwrap(), RunExit::AllIdle);

        let mut program = ExecProgram::new();
        program.push(sys::ECHO, &[0x42]);
        program.push(sys::ALLOC, &[64, 0]);
        program.push(sys::WRITE, &[0, 5, 0xAB]);
        program.push(sys::READ, &[0, 5]);
        program.push(sys::FREE, &[0]);
        program.push(sys::STAT, &[]);
        program.push(99, &[]); // out of range
        machine.bus_mut().devices.mailbox.host_load(&program.encode());
        assert_eq!(machine.run(&mut NullHook, 2_000_000).unwrap(), RunExit::AllIdle);
        let results = machine.bus_mut().devices.mailbox.host_take_results();
        assert_eq!(results.len(), 7);
        assert_eq!(results[0], 0x42); // echo
        assert_ne!(results[1], 0); // alloc succeeded
        assert_eq!(results[2], 0); // write ok
        assert_eq!(results[3], 0xAB); // read back the written byte
        assert_eq!(results[4], 0); // free ok
        assert_eq!(results[5], 1); // first stat increment
        assert_eq!(results[6], 0xFF); // bad syscall number
    }

    /// Allocation reuse: free then alloc of the same class returns the
    /// recycled chunk (slab freelist behaviour).
    #[test]
    fn slab_recycles_chunks() {
        let opts = BuildOptions::new(Arch::Armv);
        let image = build(&opts, &[]).unwrap();
        let mut machine = image.boot_machine(1).unwrap();
        machine.run(&mut NullHook, 2_000_000).unwrap();

        // Write a marker, free, re-alloc same size, read the marker back:
        // proves the second allocation reused the first chunk.
        let mut program = ExecProgram::new();
        program.push(sys::ALLOC, &[24, 0]);
        program.push(sys::WRITE, &[0, 7, 0x77]);
        program.push(sys::FREE, &[0]);
        program.push(sys::ALLOC, &[24, 1]);
        program.push(sys::READ, &[1, 7]);
        machine.bus_mut().devices.mailbox.host_load(&program.encode());
        machine.run(&mut NullHook, 2_000_000).unwrap();
        let results = machine.bus_mut().devices.mailbox.host_take_results();
        // Freelist reuse puts the freelist next-pointer in word 0, but byte 7
        // is untouched by allocator metadata.
        assert_eq!(results[4], 0x77);
    }

    /// An un-sanitized machine runs a seeded OOB bug without any visible
    /// failure — exactly why sanitizers are needed.
    #[test]
    fn latent_bug_is_silent_without_sanitizer() {
        let spec = BugSpec::new("net/netfilter", BugKind::OobWrite);
        let opts = BuildOptions::new(Arch::Armv);
        let image = build(&opts, std::slice::from_ref(&spec)).unwrap();
        let mut machine = image.boot_machine(1).unwrap();
        machine.run(&mut NullHook, 2_000_000).unwrap();
        let mut program = ExecProgram::new();
        program.push(sys::BUG_BASE, &[trigger_key("net/netfilter")]);
        machine.bus_mut().devices.mailbox.host_load(&program.encode());
        let exit = machine.run(&mut NullHook, 2_000_000).unwrap();
        assert_eq!(exit, RunExit::AllIdle); // no crash, no report: silent corruption
    }

    /// The gate stages really gate: a wrong key skips the bug body.
    #[test]
    fn wrong_key_does_not_reach_bug() {
        let spec = BugSpec::new("fs/fuse", BugKind::DoubleFree);
        let opts = BuildOptions::new(Arch::Armv);
        let image = build(&opts, std::slice::from_ref(&spec)).unwrap();
        let mut machine = image.boot_machine(1).unwrap();
        machine.run(&mut NullHook, 2_000_000).unwrap();
        let mut program = ExecProgram::new();
        program.push(sys::BUG_BASE, &[trigger_key("fs/fuse") ^ 1]);
        machine.bus_mut().devices.mailbox.host_load(&program.encode());
        assert_eq!(machine.run(&mut NullHook, 2_000_000).unwrap(), RunExit::AllIdle);
    }
}
