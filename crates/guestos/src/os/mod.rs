//! OS flavour assembly: combine kernlib, an allocator, the executor, the
//! bug corpus and (optionally) a native sanitizer runtime into a linkable
//! [`Program`], then build a [`FirmwareImage`].

pub mod emblinux;
pub mod freertos;
pub mod liteos;
pub mod vxworks;

use embsan_asm::builder::Asm;
use embsan_asm::image::{FirmwareImage, InstrMode};
use embsan_asm::instrument::{instrument, InstrumentOptions};
use embsan_asm::ir::Program;
use embsan_asm::link::{link, LinkError, LinkOptions};
use embsan_emu::isa::Reg;

use crate::alloc::{emit_for, AllocatorPieces};
use crate::bugs::{emit_bug_handler_gated, BugKind, BugSpec};
use crate::executor::{self, sys};
use crate::kernlib;
use crate::native;
use crate::opts::{BaseOs, BuildOptions, SanMode};

/// Builds the [`Program`] for an OS flavour with the given seeded bugs.
///
/// Bug `i` becomes syscall `sys::BUG_BASE + i`.
pub fn build_program(os: BaseOs, opts: &BuildOptions, bug_specs: &[BugSpec]) -> Program {
    let (alloc_name, free_name) = os.allocator_symbols();
    let mut program = Program::new();
    program.entry = "boot".to_string();
    program.ready = Some("kernel_ready".to_string());
    program.heap_size = opts.heap_size;

    let has_race = bug_specs.iter().any(|b| b.kind == BugKind::Race);
    let (kern_asm, kern_globals) = kernlib::emit(opts, has_race);
    program.text.extend(kern_asm.into_items());
    program.globals.extend(kern_globals);
    for name in kernlib::NO_INSTRUMENT {
        program.no_instrument.insert(name.to_string());
    }
    if opts.irq {
        // The ISR is entered asynchronously with every register live;
        // instrumentation's dummy-library calls assume function context
        // and would corrupt the interrupted frame. EMBSAN-D still observes
        // the ISR's accesses through dynamic interception.
        program.no_instrument.insert("irq_vector".to_string());
    }

    let AllocatorPieces { asm, globals, no_instrument, init_fn } = emit_for(os, opts);
    program.text.extend(asm.into_items());
    program.globals.extend(globals);
    program.no_instrument.extend(no_instrument);

    // Bug syscalls.
    let mut bug_asm = Asm::new();
    let mut bug_globals = Vec::new();
    let mut extra = Vec::new();
    for (i, spec) in bug_specs.iter().enumerate() {
        let handler = emit_bug_handler_gated(
            &mut bug_asm,
            &mut bug_globals,
            i,
            spec,
            alloc_name,
            free_name,
            opts.wide_gates,
        );
        extra.push((sys::BUG_BASE + i as u8, handler));
    }
    program.text.extend(bug_asm.into_items());
    program.globals.extend(bug_globals);

    let (exec_asm, exec_globals, exec_no_instrument) =
        executor::emit(opts, alloc_name, free_name, &extra);
    program.text.extend(exec_asm.into_items());
    program.globals.extend(exec_globals);
    program.no_instrument.extend(exec_no_instrument);

    // os_init(): allocator init, syscall table, and a couple of boot-time
    // allocations (state the Prober's dry run must capture and replay).
    let mut asm = Asm::new();
    asm.func("os_init");
    asm.prologue(&[Reg::R7]);
    asm.call(init_fn);
    asm.call("syscalls_init");
    // One long-lived boot allocation…
    asm.li(Reg::A0, 96);
    asm.call(alloc_name);
    asm.la(Reg::A1, "boot_obj");
    asm.sw(Reg::A0, Reg::A1, 0);
    // …and one transient one (alloc + free), so the init routine the Prober
    // compiles contains both kinds of action.
    asm.li(Reg::A0, 48);
    asm.call(alloc_name);
    asm.mv(Reg::R7, Reg::A0);
    asm.beq(Reg::A0, Reg::R0, "os_init.done");
    asm.mv(Reg::A0, Reg::R7);
    asm.call(free_name);
    asm.label("os_init.done");
    asm.epilogue(&[Reg::R7]);

    // os_secondary(): background task on SMP builds, idle otherwise.
    asm.func("os_secondary");
    if opts.cpus > 1 {
        asm.jump("bg_task");
    } else {
        asm.ret();
    }
    program.text.extend(asm.into_items());
    program.globals.push(embsan_asm::ir::GlobalDef::plain("boot_obj", vec![0; 4]));
    program.no_instrument.insert("os_init".to_string());
    program.no_instrument.insert("os_secondary".to_string());

    // Native sanitizer runtime, if requested.
    match opts.san {
        SanMode::NativeKasan => {
            let (san_asm, san_globals) = native::kasan::emit(opts);
            program.text.extend(san_asm.into_items());
            program.globals.extend(san_globals);
        }
        SanMode::NativeKcsan => {
            let (san_asm, san_globals) = native::kcsan::emit(opts);
            program.text.extend(san_asm.into_items());
            program.globals.extend(san_globals);
        }
        SanMode::None | SanMode::SanCall => {}
    }
    program
}

/// Builds and links a firmware image for an OS flavour.
///
/// # Errors
///
/// Propagates linker errors (the shipped programs link; errors indicate a
/// misconfigured build, e.g. an oversized heap).
pub fn build_firmware(
    os: BaseOs,
    opts: &BuildOptions,
    bug_specs: &[BugSpec],
) -> Result<FirmwareImage, LinkError> {
    let mut program = build_program(os, opts, bug_specs);
    let instr_mode = match opts.san {
        SanMode::None => InstrMode::None,
        SanMode::SanCall => InstrMode::SanCall,
        SanMode::NativeKasan | SanMode::NativeKcsan => InstrMode::Native,
    };
    match opts.san {
        SanMode::None if opts.kcov => {
            // kcov-only build: coverage beacons without sanitizer checks.
            instrument(
                &mut program,
                &InstrumentOptions {
                    arch: opts.arch,
                    checks: false,
                    link_dummy_lib: false,
                    global_redzones: false,
                    guest_coverage: true,
                },
            );
        }
        SanMode::None => {}
        SanMode::SanCall => {
            let mut options = InstrumentOptions::embsan_c(opts.arch);
            options.guest_coverage = opts.kcov;
            instrument(&mut program, &options);
        }
        SanMode::NativeKasan | SanMode::NativeKcsan => {
            let mut options = InstrumentOptions::native(opts.arch);
            options.guest_coverage = opts.kcov;
            instrument(&mut program, &options);
        }
    }
    let mut link_opts = LinkOptions::new(opts.arch);
    link_opts.ram_size = opts.ram_size;
    link_opts.instr = instr_mode;
    link(&program, &link_opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsan_emu::hook::NullHook;
    use embsan_emu::machine::RunExit;
    use embsan_emu::profile::Arch;

    /// Boot every OS flavour on every architecture to the idle state and
    /// check the ready banner came out — the foundational smoke test.
    #[test]
    fn all_flavours_boot_on_all_arches() {
        for os in [BaseOs::EmbeddedLinux, BaseOs::FreeRtos, BaseOs::LiteOs, BaseOs::VxWorks] {
            for arch in Arch::ALL {
                let opts = BuildOptions::new(arch);
                let image = build_firmware(os, &opts, &[]).unwrap();
                let mut machine = image.boot_machine(1).unwrap();
                let exit = machine.run(&mut NullHook, 2_000_000).unwrap();
                assert_eq!(exit, RunExit::AllIdle, "{os:?} on {arch:?}: {exit:?}");
                let console = String::from_utf8_lossy(&machine.take_console()).to_string();
                assert!(
                    console.contains(kernlib::READY_BANNER.trim_end()),
                    "{os:?} on {arch:?}: console was {console:?}"
                );
            }
        }
    }

    /// Instrumented (EMBSAN-C) builds must also boot: the dummy sanitizer
    /// library's hypercalls are no-ops without a runtime attached.
    #[test]
    fn instrumented_builds_boot_without_a_runtime() {
        let opts = BuildOptions::new(Arch::Armv).san(SanMode::SanCall);
        let image = build_firmware(BaseOs::EmbeddedLinux, &opts, &[]).unwrap();
        let mut machine = image.boot_machine(1).unwrap();
        let exit = machine.run(&mut NullHook, 4_000_000).unwrap();
        assert_eq!(exit, RunExit::AllIdle, "{exit:?}");
    }

    /// Native-KASAN builds execute their guest-resident checks on every
    /// memory access and must still boot cleanly (no false positives).
    #[test]
    fn native_kasan_build_boots_cleanly() {
        let opts = BuildOptions::new(Arch::Armv).san(SanMode::NativeKasan);
        let image = build_firmware(BaseOs::EmbeddedLinux, &opts, &[]).unwrap();
        let mut machine = image.boot_machine(1).unwrap();
        let exit = machine.run(&mut NullHook, 30_000_000).unwrap();
        assert_eq!(exit, RunExit::AllIdle, "{exit:?}");
        let console = String::from_utf8_lossy(&machine.take_console()).to_string();
        assert!(!console.contains("KASAN"), "false positive: {console}");
    }

    /// SMP boot: both CPUs come up, the secondary parks in the background
    /// task, the executor idles.
    #[test]
    fn smp_boot_with_background_task() {
        let opts = BuildOptions::new(Arch::Armv).cpus(2);
        let image = build_firmware(BaseOs::EmbeddedLinux, &opts, &[]).unwrap();
        let mut machine = image.boot_machine(2).unwrap();
        // The bg task never sleeps, so the run ends on budget, not idle.
        let exit = machine.run(&mut NullHook, 2_000_000).unwrap();
        assert_eq!(exit, RunExit::BudgetExhausted);
        // The background task made progress on the shared counter.
        let stats = image.symbol("shared_stats").unwrap();
        assert!(machine.read_mem(stats, 4).unwrap() > 0);
    }
}
