//! LiteOS flavour (OpenHarmony-stm32 class firmware).

use embsan_asm::image::FirmwareImage;
use embsan_asm::link::LinkError;

use crate::bugs::BugSpec;
use crate::opts::{BaseOs, BuildOptions};

/// Builds a LiteOS firmware image with the given seeded bugs.
///
/// # Errors
///
/// Propagates linker errors.
pub fn build(opts: &BuildOptions, bugs: &[BugSpec]) -> Result<FirmwareImage, LinkError> {
    super::build_firmware(BaseOs::LiteOs, opts, bugs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{sys, ExecProgram};
    use embsan_emu::hook::NullHook;
    use embsan_emu::machine::RunExit;
    use embsan_emu::profile::Arch;

    /// Membox pool blocks serve small requests; large ones take the bump
    /// fallback; both are writable.
    #[test]
    fn membox_pool_and_fallback() {
        let opts = BuildOptions::new(Arch::Mipsv);
        let image = build(&opts, &[]).unwrap();
        let mut machine = image.boot_machine(1).unwrap();
        assert_eq!(machine.run(&mut NullHook, 2_000_000).unwrap(), RunExit::AllIdle);
        let mut program = ExecProgram::new();
        program.push(sys::ALLOC, &[64, 0]); // pool block
        program.push(sys::ALLOC, &[512, 1]); // bump fallback
        program.push(sys::WRITE, &[0, 3, 1]);
        program.push(sys::WRITE, &[1, 400, 2]);
        program.push(sys::READ, &[1, 400]);
        program.push(sys::FREE, &[0]);
        program.push(sys::FREE, &[1]); // bump block: leak-free no-op
        machine.bus_mut().devices.mailbox.host_load(&program.encode());
        assert_eq!(machine.run(&mut NullHook, 2_000_000).unwrap(), RunExit::AllIdle);
        let results = machine.bus_mut().devices.mailbox.host_take_results();
        assert_ne!(results[0], 0);
        assert_ne!(results[1], 0);
        assert_eq!(results[4], 2);
    }
}
