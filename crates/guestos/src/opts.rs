//! Firmware build options.

use embsan_emu::profile::Arch;

/// The base operating system family of a firmware build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaseOs {
    /// Embedded Linux (slab allocator, rich syscall surface, SMP).
    EmbeddedLinux,
    /// FreeRTOS (heap_4 first-fit allocator, tasks and queues).
    FreeRtos,
    /// LiteOS (membox fixed-block pools).
    LiteOs,
    /// VxWorks (memPartLib allocator; firmware ships stripped).
    VxWorks,
}

impl BaseOs {
    /// The display name used in the paper's tables.
    pub fn display_name(self) -> &'static str {
        match self {
            BaseOs::EmbeddedLinux => "Embedded Linux",
            BaseOs::FreeRtos => "FreeRTOS",
            BaseOs::LiteOs => "LiteOS",
            BaseOs::VxWorks => "VxWorks",
        }
    }

    /// The allocator entry points `(alloc_name, free_name)` of this OS — the
    /// `Xalloc()` signatures the paper's Prober looks for.
    pub fn allocator_symbols(self) -> (&'static str, &'static str) {
        match self {
            BaseOs::EmbeddedLinux => ("kmalloc", "kfree"),
            BaseOs::FreeRtos => ("pvPortMalloc", "vPortFree"),
            BaseOs::LiteOs => ("LOS_MemAlloc", "LOS_MemFree"),
            BaseOs::VxWorks => ("memPartAlloc", "memPartFree"),
        }
    }
}

impl std::fmt::Display for BaseOs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.display_name())
    }
}

/// Sanitizer build mode of a firmware image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SanMode {
    /// No instrumentation: EMBSAN-D intercepts everything dynamically.
    None,
    /// EMBSAN-C: compile-time checks calling the dummy (hypercall) library.
    SanCall,
    /// Guest-native KASAN: checks run as translated guest code.
    NativeKasan,
    /// Guest-native KCSAN.
    NativeKcsan,
}

impl SanMode {
    /// Whether the build runs the compile-time instrumentation pass.
    pub fn is_instrumented(self) -> bool {
        !matches!(self, SanMode::None)
    }

    /// Whether the `__san_*` symbols come from a guest-resident runtime.
    pub fn is_native(self) -> bool {
        matches!(self, SanMode::NativeKasan | SanMode::NativeKcsan)
    }
}

/// Options controlling a firmware build.
#[derive(Debug, Clone, Copy)]
pub struct BuildOptions {
    /// Target architecture.
    pub arch: Arch,
    /// Sanitizer build mode.
    pub san: SanMode,
    /// Total RAM in bytes.
    pub ram_size: u32,
    /// Heap bytes.
    pub heap_size: u32,
    /// Number of vCPUs the firmware expects (≥2 enables the background task).
    pub cpus: usize,
    /// Build with kcov-style guest coverage beacons (function-entry writes
    /// to the coverage port).
    pub kcov: bool,
    /// Gate seeded bugs behind a single full-word key comparison instead of
    /// the two staged byte gates. The 32-bit key is materialized as a
    /// `lui`+`ori` pair, so neither half alone opens the gate — the shape
    /// that defeats immediate-scan dictionaries and needs comparison-operand
    /// harvesting (the directed-fuzzing evaluation firmware).
    pub wide_gates: bool,
    /// Build the interrupt-driven concurrency surface: the secondary vCPU
    /// installs an ISR (trap vector + interrupt enable) servicing the GPIO
    /// and alarm devices, and the executor gains `irq_setup`/`irq_load`
    /// syscalls. The ISR and the syscall path share unsynchronized state —
    /// the ISR/mainloop race family that syscall-only workloads cannot
    /// exercise. Requires `cpus >= 2`. Default off, so every pre-existing
    /// image is byte-identical.
    pub irq: bool,
}

impl BuildOptions {
    /// Defaults: 4 MiB RAM, 1 MiB heap, one vCPU, no instrumentation.
    pub fn new(arch: Arch) -> BuildOptions {
        BuildOptions {
            arch,
            san: SanMode::None,
            ram_size: 4 * 1024 * 1024,
            heap_size: 1024 * 1024,
            cpus: 1,
            kcov: false,
            wide_gates: false,
            irq: false,
        }
    }

    /// Sets the sanitizer mode.
    pub fn san(mut self, san: SanMode) -> BuildOptions {
        self.san = san;
        self
    }

    /// Sets the vCPU count.
    pub fn cpus(mut self, cpus: usize) -> BuildOptions {
        self.cpus = cpus;
        self
    }

    /// Enables kcov-style guest coverage beacons.
    pub fn kcov(mut self, kcov: bool) -> BuildOptions {
        self.kcov = kcov;
        self
    }

    /// Gates seeded bugs behind a single full-word key comparison.
    pub fn wide_gates(mut self, wide: bool) -> BuildOptions {
        self.wide_gates = wide;
        self
    }

    /// Builds the interrupt-driven concurrency surface (ISR on the
    /// secondary vCPU plus the `irq_setup`/`irq_load` syscalls).
    pub fn irq(mut self, irq: bool) -> BuildOptions {
        self.irq = irq;
        self
    }
}

/// Per-task stack size in bytes (stacks are carved down from `__stack_top`,
/// one per vCPU).
pub const STACK_SIZE: u32 = 16 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_predicates() {
        assert!(!SanMode::None.is_instrumented());
        assert!(SanMode::SanCall.is_instrumented());
        assert!(!SanMode::SanCall.is_native());
        assert!(SanMode::NativeKasan.is_native());
        assert!(SanMode::NativeKcsan.is_instrumented());
    }

    #[test]
    fn allocator_symbols_differ_per_os() {
        let mut names: Vec<_> =
            [BaseOs::EmbeddedLinux, BaseOs::FreeRtos, BaseOs::LiteOs, BaseOs::VxWorks]
                .iter()
                .map(|os| os.allocator_symbols().0)
                .collect();
        names.dedup();
        assert_eq!(names.len(), 4);
    }
}
