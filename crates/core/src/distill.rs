//! The Sanitizer Common Function Distiller (§3.1).
//!
//! Input: reference sanitizer interface extractions — C-style headers whose
//! interception APIs carry `EMBSAN_INTERCEPT(kind, point)` annotations and
//! whose external resources are declared with
//! `EMBSAN_RESOURCE(group, key, value)`. Output: [`SanitizerSpec`]s in the
//! in-house DSL, plus the merged multi-sanitizer specification under the
//! paper's union rules ([`embsan_dsl::merge()`]).
//!
//! The reference extractions for KASAN and KCSAN ship with the crate
//! (`specs/kasan.h`, `specs/kcsan.h`) and are returned by
//! [`reference_specs`].

use embsan_dsl::{merge, ArgSpec, ArgType, InterceptPoint, PointKind, SanitizerSpec};

/// The shipped KASAN reference extraction.
pub const KASAN_HEADER: &str = include_str!("../specs/kasan.h");
/// The shipped KCSAN reference extraction.
pub const KCSAN_HEADER: &str = include_str!("../specs/kcsan.h");
/// The shipped UMSAN reference extraction (the §5 adaptability extension:
/// an uninitialized-read detector added through the standard pipeline).
pub const UMSAN_HEADER: &str = include_str!("../specs/umsan.h");

/// Errors from the distiller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistillError {
    /// The header lacks an `EMBSAN_SANITIZER(name)` declaration.
    MissingSanitizerName,
    /// An annotation names an unknown interception kind.
    BadKind {
        /// 1-based line.
        line: usize,
        /// The offending kind token.
        kind: String,
    },
    /// An `EMBSAN_INTERCEPT` annotation is not followed by a prototype.
    MissingPrototype {
        /// 1-based line of the annotation.
        line: usize,
    },
    /// A prototype parameter could not be parsed.
    BadParameter {
        /// 1-based line.
        line: usize,
        /// The parameter text.
        param: String,
    },
    /// A malformed annotation.
    BadAnnotation {
        /// 1-based line.
        line: usize,
    },
}

impl std::fmt::Display for DistillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistillError::MissingSanitizerName => {
                write!(f, "header lacks EMBSAN_SANITIZER(name)")
            }
            DistillError::BadKind { line, kind } => {
                write!(f, "line {line}: unknown interception kind `{kind}`")
            }
            DistillError::MissingPrototype { line } => {
                write!(f, "line {line}: EMBSAN_INTERCEPT without a following prototype")
            }
            DistillError::BadParameter { line, param } => {
                write!(f, "line {line}: cannot parse parameter `{param}`")
            }
            DistillError::BadAnnotation { line } => write!(f, "line {line}: malformed annotation"),
        }
    }
}

impl std::error::Error for DistillError {}

/// Maps a C parameter type to a DSL argument type.
fn map_type(c_type: &str) -> ArgType {
    let normalized = c_type.replace("const", " ");
    let normalized = normalized.trim();
    if normalized.contains('*') {
        ArgType::Ptr
    } else if normalized.contains("size_t") || normalized.contains("unsigned long") {
        ArgType::Usize
    } else if normalized.contains("unsigned short") || normalized.contains("u16") {
        ArgType::U16
    } else if normalized.contains("unsigned char") || normalized.contains("u8") {
        ArgType::U8
    } else {
        ArgType::U32
    }
}

/// Extracts the argument inside `MACRO(...)`.
fn macro_args(line: &str) -> Option<Vec<String>> {
    let open = line.find('(')?;
    let close = line.rfind(')')?;
    Some(line[open + 1..close].split(',').map(|s| s.trim().to_string()).collect())
}

/// Distills one annotated header into a [`SanitizerSpec`].
///
/// # Errors
///
/// Returns a [`DistillError`] describing the first malformed construct.
pub fn distill(header: &str) -> Result<SanitizerSpec, DistillError> {
    let mut spec = SanitizerSpec::default();
    let mut pending: Option<(usize, PointKind, String)> = None;

    // Strip block comments first (they may span lines).
    let mut cleaned = String::with_capacity(header.len());
    let mut rest = header;
    while let Some(start) = rest.find("/*") {
        cleaned.push_str(&rest[..start]);
        // Preserve line structure inside the comment for line numbers.
        match rest[start..].find("*/") {
            Some(end) => {
                cleaned.extend(rest[start..start + end + 2].chars().filter(|&c| c == '\n'));
                rest = &rest[start + end + 2..];
            }
            None => {
                rest = "";
                break;
            }
        }
    }
    cleaned.push_str(rest);

    for (idx, raw) in cleaned.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split("//").next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with("EMBSAN_SANITIZER") {
            let args = macro_args(line).ok_or(DistillError::BadAnnotation { line: line_no })?;
            spec.name = args
                .first()
                .cloned()
                .filter(|s| !s.is_empty())
                .ok_or(DistillError::BadAnnotation { line: line_no })?;
        } else if line.starts_with("EMBSAN_RESOURCE") {
            let args = macro_args(line).ok_or(DistillError::BadAnnotation { line: line_no })?;
            if args.len() != 3 {
                return Err(DistillError::BadAnnotation { line: line_no });
            }
            let value: u64 =
                args[2].parse().map_err(|_| DistillError::BadAnnotation { line: line_no })?;
            spec.resources.entry(args[0].clone()).or_default().insert(args[1].clone(), value);
        } else if line.starts_with("EMBSAN_INTERCEPT") {
            if let Some((line, _, _)) = pending {
                return Err(DistillError::MissingPrototype { line });
            }
            let args = macro_args(line).ok_or(DistillError::BadAnnotation { line: line_no })?;
            if args.len() != 2 {
                return Err(DistillError::BadAnnotation { line: line_no });
            }
            let kind = PointKind::parse(&args[0])
                .ok_or_else(|| DistillError::BadKind { line: line_no, kind: args[0].clone() })?;
            pending = Some((line_no, kind, args[1].clone()));
        } else if let Some((_, kind, point_name)) = pending.take() {
            // The prototype line for the pending annotation.
            let args = parse_prototype_args(line, line_no)?;
            spec.points.push(InterceptPoint { kind, name: point_name, args });
        }
        // Other lines (un-annotated prototypes, macros) are ignored: only
        // annotated APIs are interception points.
    }
    if let Some((line, _, _)) = pending {
        return Err(DistillError::MissingPrototype { line });
    }
    if spec.name.is_empty() {
        return Err(DistillError::MissingSanitizerName);
    }
    Ok(spec)
}

/// Parses the parameter list of a C prototype into DSL argument specs.
fn parse_prototype_args(line: &str, line_no: usize) -> Result<Vec<ArgSpec>, DistillError> {
    let open = line.find('(').ok_or(DistillError::MissingPrototype { line: line_no })?;
    let close = line.rfind(')').ok_or(DistillError::MissingPrototype { line: line_no })?;
    let inner = line[open + 1..close].trim();
    if inner.is_empty() || inner == "void" {
        return Ok(Vec::new());
    }
    let mut args = Vec::new();
    for param in inner.split(',') {
        let param = param.trim();
        // The parameter name is the last identifier; everything before it
        // (plus any '*') is the type.
        let name_start = param
            .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .map(|i| i + 1)
            .unwrap_or(0);
        let name = &param[name_start..];
        let c_type = &param[..name_start];
        if name.is_empty() || c_type.trim().is_empty() {
            return Err(DistillError::BadParameter { line: line_no, param: param.to_string() });
        }
        args.push(ArgSpec { name: name.to_string(), ty: map_type(c_type), sources: Vec::new() });
    }
    Ok(args)
}

/// Distills several headers.
///
/// # Errors
///
/// Fails on the first malformed header.
pub fn distill_sources(headers: &[&str]) -> Result<Vec<SanitizerSpec>, DistillError> {
    headers.iter().map(|h| distill(h)).collect()
}

/// Distills the shipped KASAN and KCSAN reference extractions.
///
/// # Errors
///
/// Never fails for the shipped headers; the `Result` guards against local
/// modifications.
pub fn reference_specs() -> Result<Vec<SanitizerSpec>, DistillError> {
    distill_sources(&[KASAN_HEADER, KCSAN_HEADER])
}

/// Distills and merges the shipped references into the combined spec the
/// runtime consumes.
///
/// # Errors
///
/// See [`reference_specs`].
pub fn reference_merged() -> Result<SanitizerSpec, DistillError> {
    Ok(merge(&reference_specs()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distills_kasan_reference() {
        let spec = distill(KASAN_HEADER).unwrap();
        assert_eq!(spec.name, "kasan");
        assert_eq!(spec.resource("shadow", "granule"), Some(8));
        assert_eq!(spec.resource("quarantine", "bytes"), Some(262144));
        let load = spec.point(PointKind::Insn, "load").unwrap();
        assert_eq!(load.args.len(), 2);
        assert_eq!(load.args[0].name, "addr");
        assert_eq!(load.args[0].ty, ArgType::Ptr);
        assert_eq!(load.args[1].ty, ArgType::U32); // unsigned int
        let alloc = spec.point(PointKind::Call, "alloc").unwrap();
        assert_eq!(alloc.args[1].ty, ArgType::Usize); // size_t
        let ready = spec.point(PointKind::Event, "ready").unwrap();
        assert!(ready.args.is_empty()); // void parameter list
    }

    #[test]
    fn distills_kcsan_reference() {
        let spec = distill(KCSAN_HEADER).unwrap();
        assert_eq!(spec.name, "kcsan");
        assert_eq!(spec.resource("watchpoints", "slots"), Some(8));
        let store = spec.point(PointKind::Insn, "store").unwrap();
        assert_eq!(store.args.len(), 4);
    }

    #[test]
    fn merged_reference_follows_union_rules() {
        let merged = reference_merged().unwrap();
        assert_eq!(merged.name, "kasan_kcsan");
        // KASAN-only points survive.
        assert!(merged.point(PointKind::Call, "alloc").is_some());
        assert!(merged.point(PointKind::Event, "fault").is_some());
        // Shared point: argument union with widening (u32 ∪ usize = usize)
        // and per-source annotations.
        let load = merged.point(PointKind::Insn, "load").unwrap();
        let size = load.args.iter().find(|a| a.name == "size").unwrap();
        assert_eq!(size.ty, ArgType::Usize);
        assert_eq!(size.sources, vec!["kasan", "kcsan"]);
        let cpu = load.args.iter().find(|a| a.name == "cpu").unwrap();
        assert_eq!(cpu.sources, vec!["kcsan"]);
        // Most demanding resource value wins.
        assert_eq!(merged.resource("shadow", "granule"), Some(8));
    }

    #[test]
    fn merged_spec_round_trips_through_the_dsl() {
        let merged = reference_merged().unwrap();
        let text = merged.to_string();
        let items = embsan_dsl::parse(&text).unwrap();
        assert_eq!(items.len(), 1);
        let embsan_dsl::Item::Sanitizer(reparsed) = &items[0] else {
            panic!("expected sanitizer item");
        };
        assert_eq!(*reparsed, merged);
    }

    #[test]
    fn error_cases() {
        assert_eq!(distill("void f(void);"), Err(DistillError::MissingSanitizerName));
        assert!(matches!(
            distill("EMBSAN_SANITIZER(x)\nEMBSAN_INTERCEPT(bogus, load)\nvoid f(void);"),
            Err(DistillError::BadKind { .. })
        ));
        assert!(matches!(
            distill("EMBSAN_SANITIZER(x)\nEMBSAN_INTERCEPT(insn, load)"),
            Err(DistillError::MissingPrototype { .. })
        ));
        assert!(matches!(
            distill("EMBSAN_SANITIZER(x)\nEMBSAN_RESOURCE(a, b)\n"),
            Err(DistillError::BadAnnotation { .. })
        ));
    }

    #[test]
    fn type_mapping() {
        assert_eq!(map_type("const void *"), ArgType::Ptr);
        assert_eq!(map_type("size_t"), ArgType::Usize);
        assert_eq!(map_type("unsigned long"), ArgType::Usize);
        assert_eq!(map_type("unsigned int"), ArgType::U32);
        assert_eq!(map_type("unsigned short"), ArgType::U16);
        assert_eq!(map_type("unsigned char"), ArgType::U8);
        assert_eq!(map_type("int"), ArgType::U32);
    }
}
