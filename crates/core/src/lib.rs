//! EMBSAN core: the paper's primary contribution.
//!
//! Three components (§3):
//!
//! - the **Sanitizer Common Function Distiller** ([`mod@distill`]): parses
//!   reference sanitizer interface extractions (annotated C-style headers of
//!   KASAN/KCSAN, shipped under `specs/`), converts them into the in-house
//!   DSL, and merges multiple sanitizers' specifications under the §3.1
//!   union rules;
//! - the **Embedded Platform Configuration Prober** ([`mod@probe`]): determines
//!   a firmware's platform details and compiles its initialization routine,
//!   with three modes matching the paper's firmware categories —
//!   compile-time-instrumented, open-source-uninstrumented, and
//!   closed-source binary-only;
//! - the **Common Sanitizer Runtime** ([`runtime`]): hooks the emulator's
//!   translated code (EMBSAN-D) or receives dummy-library hypercalls
//!   (EMBSAN-C), maintains a unified shadow memory, and runs the KASAN and
//!   KCSAN engines on the host, decoupled from the guest.
//!
//! [`session::Session`] drives the §3.4/§3.5 workflow end to end:
//! pre-testing probing, boot to the ready point, init-routine execution,
//! then the testing phase.
//!
//! # Example
//!
//! ```
//! use embsan_core::prelude::*;
//! use embsan_guestos::{os, BugKind, BugSpec, BuildOptions, SanMode};
//! use embsan_guestos::executor::{sys, ExecProgram};
//! use embsan_emu::profile::Arch;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build an EMBSAN-C firmware with one seeded use-after-free.
//! let bug = BugSpec::new("demo_uaf", BugKind::Uaf);
//! let opts = BuildOptions::new(Arch::Armv).san(SanMode::SanCall);
//! let image = os::emblinux::build(&opts, std::slice::from_ref(&bug))?;
//!
//! // Pre-testing probing phase, then a sanitized session.
//! let specs = reference_specs()?;
//! let artifacts = probe::probe(&image, ProbeMode::CompileTime, None)?;
//! let mut session = Session::new(&image, &specs, &artifacts)?;
//! session.run_to_ready(50_000_000)?;
//!
//! // Trigger the bug through the executor: EMBSAN reports a UAF.
//! let mut program = ExecProgram::new();
//! program.push(sys::BUG_BASE, &[embsan_guestos::bugs::trigger_key("demo_uaf")]);
//! let outcome = session.run_program(&program, 10_000_000)?;
//! assert!(outcome.reports.iter().any(|r| r.class == BugClass::Uaf));
//! # Ok(())
//! # }
//! ```

pub mod distill;
pub mod health;
pub mod probe;
pub mod report;
pub mod runtime;
pub mod session;

pub use distill::{distill, distill_sources, reference_specs, DistillError};
pub use health::{Degradation, HealthCounters};
pub use probe::{probe, PriorKnowledge, ProbeArtifacts, ProbeError, ProbeMode, ProbeStats};
pub use report::{BugClass, Report};
pub use runtime::EmbsanRuntime;
pub use session::{BaseImage, ExecOutcome, Session, SessionError};

/// Convenient glob import for typical usage.
pub mod prelude {
    pub use crate::distill::reference_specs;
    pub use crate::probe::{self, ProbeMode};
    pub use crate::report::{BugClass, Report};
    pub use crate::session::Session;
}
