//! Graceful degradation: typed events and health counters.
//!
//! Long campaigns inevitably push the sanitizer runtime past its resource
//! envelope (quarantine pressure) or run it against probe specs that have
//! drifted from the firmware actually booted (an init routine poisoning
//! regions outside RAM, an allocator hook pointing at a non-text address).
//! Production sanitizers degrade in these situations rather than stopping:
//! KASAN evicts its quarantine, out-of-range poisons are clipped. What was
//! previously *silent* here becomes a typed [`Degradation`] event plus a
//! monotonic [`HealthCounters`] tally, so the campaign supervisor can report
//! how much fidelity a run lost instead of presenting degraded results as
//! pristine ones.

/// One graceful-degradation event observed by the runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Degradation {
    /// The KASAN quarantine exceeded its byte budget and evicted its oldest
    /// freed chunks: use-after-free detection loses history for them.
    QuarantineEvicted {
        /// Number of chunks evicted in this pressure episode.
        chunks: u64,
    },
    /// A poison/unpoison request fell (partly) outside shadow coverage and
    /// was clipped: the init routine or a register-global event referenced
    /// memory the platform spec says does not exist.
    ShadowClipped {
        /// Requested range start.
        start: u32,
        /// Requested range end (exclusive).
        end: u32,
        /// Shadow granules that could not be applied.
        granules: u32,
    },
    /// A probe-spec element references an address outside the firmware
    /// (spec drift): the hook can never fire, so its events are lost.
    SpecDrift {
        /// What drifted (e.g. the hooked function's role).
        what: String,
        /// The out-of-range address.
        addr: u32,
    },
}

impl std::fmt::Display for Degradation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Degradation::QuarantineEvicted { chunks } => {
                write!(f, "quarantine pressure: {chunks} freed chunk(s) evicted early")
            }
            Degradation::ShadowClipped { start, end, granules } => write!(
                f,
                "shadow poison {start:#010x}..{end:#010x} clipped ({granules} granule(s) \
                 outside RAM)"
            ),
            Degradation::SpecDrift { what, addr } => {
                write!(f, "probe-spec drift: {what} references {addr:#010x} outside the firmware")
            }
        }
    }
}

/// Monotonic counters summarizing degradation pressure. Unlike the bounded
/// event list, counters never saturate and are never reset by fuzzer
/// snapshot restores, so they describe the whole campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthCounters {
    /// Freed chunks evicted from the KASAN quarantine under byte pressure.
    pub quarantine_evictions: u64,
    /// Shadow poison granules clipped at the RAM boundary.
    pub shadow_clips: u64,
    /// Probe-spec elements found to reference out-of-firmware addresses.
    pub spec_drift: u64,
}

impl HealthCounters {
    /// Total degradation events across all categories.
    pub fn total(&self) -> u64 {
        self.quarantine_evictions + self.shadow_clips + self.spec_drift
    }

    /// Whether the run degraded at all.
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }
}

impl std::fmt::Display for HealthCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "quarantine evictions: {}, shadow clips: {}, spec drift: {}",
            self.quarantine_evictions, self.shadow_clips, self.spec_drift
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let text =
            Degradation::ShadowClipped { start: 0x100, end: 0x200, granules: 32 }.to_string();
        assert!(text.contains("0x00000100"));
        assert!(text.contains("32"));
        let text = Degradation::SpecDrift { what: "alloc hook".into(), addr: 0xDEAD }.to_string();
        assert!(text.contains("alloc hook"));
        let counters = HealthCounters { quarantine_evictions: 2, ..Default::default() };
        assert!(!counters.is_clean());
        assert_eq!(counters.total(), 2);
        assert!(counters.to_string().contains("quarantine evictions: 2"));
    }
}
