//! The Embedded Platform Configuration Prober (§3.2).
//!
//! Produces a firmware's platform specification and initialization routine
//! in the DSL, via a pre-testing *dry run*. Three modes match the paper's
//! firmware categories:
//!
//! 1. [`ProbeMode::CompileTime`] — firmware with compile-time sanitizer
//!    instrumentation: the dry run records every dummy-library hypercall up
//!    to the `READY` trap; the recorded actions compile into the init
//!    routine.
//! 2. [`ProbeMode::DynamicSource`] — open-source firmware without
//!    instrumentation: allocator functions are located by name patterns in
//!    the symbol table (`Xalloc()`-style signatures) and *verified
//!    dynamically* during the dry run; boot-time allocations are recorded
//!    through call/return interception.
//! 3. [`ProbeMode::DynamicBinary`] — closed-source binary-only firmware: a
//!    multi-pass dry run records every completed call's argument and return
//!    value; allocator candidates are identified purely from that dataflow
//!    (small-integer arguments, distinct RAM-pointer returns, frees fed by
//!    prior returns), with optional tester [`PriorKnowledge`].

use std::collections::BTreeMap;

use embsan_asm::image::{FirmwareImage, InstrMode, SymbolKind};
use embsan_asm::sanabi::hyper;
use embsan_dsl::{FuncHook, FuncRole, InitProgram, InitStep, PlatformSpec, ReadyPoint};
use embsan_emu::cpu::CpuView;
use embsan_emu::hook::{ExecHook, HookAction, HookConfig};
use embsan_emu::isa::Reg;
use embsan_emu::machine::RunExit;
use embsan_emu::profile::{Arch, ArchProfile, Endian};

/// Which probing strategy to use (the paper's three firmware categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeMode {
    /// Category 1: compile-time instrumented firmware.
    CompileTime,
    /// Category 2: open-source firmware without instrumentation support.
    DynamicSource,
    /// Category 3: closed-source binary-only firmware.
    DynamicBinary,
}

/// Tester-provided prior knowledge for binary-only probing ("with some
/// manual intervention", §3.2).
///
/// Exact addresses (`alloc_addr`/`free_addr`) are trusted outright. The
/// *candidate* lists are ranked guesses — typically produced by
/// `embsan-analysis`' static allocator-signature pass — that the prober
/// verifies dynamically, letting it skip the discovery dry-run pass
/// entirely.
#[derive(Debug, Clone, Default)]
pub struct PriorKnowledge {
    /// Known allocator entry point.
    pub alloc_addr: Option<u32>,
    /// Known free entry point.
    pub free_addr: Option<u32>,
    /// Known heap bounds.
    pub heap: Option<(u32, u32)>,
    /// Known ready-point address.
    pub ready_addr: Option<u32>,
    /// Ranked allocator-entry candidates (best first), verified dynamically.
    pub alloc_candidates: Vec<u32>,
    /// Ranked free-entry candidates (best first), verified dynamically.
    pub free_candidates: Vec<u32>,
}

/// How much dynamic work a probe run performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Number of full boot dry runs executed.
    pub dry_run_passes: u32,
}

/// The prober's output: the two DSL documents the runtime consumes.
#[derive(Debug, Clone)]
pub struct ProbeArtifacts {
    /// Platform configuration specification.
    pub platform: PlatformSpec,
    /// Sanitizer initialization routine.
    pub init: InitProgram,
    /// Dry-run accounting (how many boot passes the probe cost).
    pub stats: ProbeStats,
}

impl ProbeArtifacts {
    /// Renders both artifacts as DSL text (what the paper's Prober emits).
    pub fn to_dsl(&self) -> String {
        format!("{}\n\n{}\n", self.platform, self.init)
    }
}

/// Probing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeError {
    /// Compile-time mode requires an instrumented image.
    NotInstrumented,
    /// Source mode requires a symbol table.
    NoSymbols,
    /// No allocator could be identified (and no prior knowledge supplied).
    AllocatorNotFound,
    /// The dry run did not reach the ready state.
    BootFailed(String),
}

impl std::fmt::Display for ProbeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProbeError::NotInstrumented => {
                write!(f, "firmware lacks compile-time instrumentation")
            }
            ProbeError::NoSymbols => write!(f, "firmware has no symbol table"),
            ProbeError::AllocatorNotFound => {
                write!(f, "no allocator function could be identified")
            }
            ProbeError::BootFailed(msg) => write!(f, "dry run failed: {msg}"),
        }
    }
}

impl std::error::Error for ProbeError {}

/// Dry-run instruction budget.
const DRY_RUN_BUDGET: u64 = 50_000_000;

/// Largest plausible allocation-size argument during signature matching.
const MAX_SIZE_ARG: u32 = 0x10000;

fn reg_name(reg: Reg) -> String {
    reg.name().to_string()
}

/// Builds the platform skeleton shared by all modes.
fn platform_skeleton(image: &FirmwareImage) -> PlatformSpec {
    let profile = ArchProfile::for_arch(image.arch);
    PlatformSpec {
        name: "probed".to_string(),
        arch: match image.arch {
            Arch::Armv => "armv",
            Arch::Mipsv => "mipsv",
            Arch::X86v => "x86v",
        }
        .to_string(),
        endian_big: profile.endian == Endian::Big,
        ram: (u64::from(image.ram_base), u64::from(image.ram_base) + u64::from(image.ram_size)),
        mmio: (
            u64::from(profile.mmio_base),
            u64::from(profile.mmio_base) + u64::from(profile.mmio_size),
        ),
        hypercall_args: profile.hypercall.args.iter().copied().map(reg_name).collect(),
        hypercall_ret: reg_name(profile.hypercall.ret),
        check_reg: reg_name(Reg::SCRATCH),
        instrumented: match image.instr {
            InstrMode::SanCall => "sancall",
            InstrMode::Native => "native",
            InstrMode::None => "none",
        }
        .to_string(),
        ready: None,
        funcs: Vec::new(),
    }
}

/// Compiles a net-live allocation set into init steps.
fn alloc_steps(live: &BTreeMap<u32, (u32, u32)>) -> Vec<InitStep> {
    live.iter()
        .map(|(&addr, &(size, site))| InitStep::Alloc {
            addr: u64::from(addr),
            size: u64::from(size),
            site: u64::from(site),
        })
        .collect()
}

/// Probes a firmware image.
///
/// # Errors
///
/// See [`ProbeError`].
pub fn probe(
    image: &FirmwareImage,
    mode: ProbeMode,
    prior: Option<&PriorKnowledge>,
) -> Result<ProbeArtifacts, ProbeError> {
    match mode {
        ProbeMode::CompileTime => probe_compile_time(image),
        ProbeMode::DynamicSource => probe_dynamic_source(image),
        ProbeMode::DynamicBinary => probe_dynamic_binary(image, prior),
    }
}

// --- Category 1: compile-time instrumented firmware ---------------------

/// Records dummy-library hypercalls during the dry run.
#[derive(Default)]
struct HypercallRecorder {
    events: Vec<(u32, [u32; 3])>,
    ready: bool,
}

impl ExecHook for HypercallRecorder {
    fn hypercall(&mut self, cpu: &mut CpuView<'_>, nr: u32) -> HookAction {
        let profile = ArchProfile::for_arch(arch_of(cpu));
        let arg = |cpu: &CpuView<'_>, i: usize| cpu.reg(profile.hypercall.args[i]);
        match nr {
            hyper::ALLOC | hyper::FREE | hyper::REGISTER_GLOBAL => {
                self.events.push((nr, [arg(cpu, 0), arg(cpu, 1), arg(cpu, 2)]));
                HookAction::Continue
            }
            hyper::READY => {
                self.ready = true;
                HookAction::Stop
            }
            _ => HookAction::Continue,
        }
    }
}

/// Recovers the architecture from the MMIO base (hooks have no direct
/// machine handle; the bus uniquely identifies the profile).
fn arch_of(cpu: &CpuView<'_>) -> Arch {
    for arch in Arch::ALL {
        if cpu.bus.is_mmio(ArchProfile::for_arch(arch).mmio_base) {
            return arch;
        }
    }
    Arch::Armv
}

fn probe_compile_time(image: &FirmwareImage) -> Result<ProbeArtifacts, ProbeError> {
    if image.instr != InstrMode::SanCall {
        return Err(ProbeError::NotInstrumented);
    }
    let mut machine = image.boot_machine(1).map_err(|e| ProbeError::BootFailed(e.to_string()))?;
    let mut recorder = HypercallRecorder::default();
    machine.set_hook_config(HookConfig { hypercalls: true, ..HookConfig::none() });
    let exit = machine
        .run(&mut recorder, DRY_RUN_BUDGET)
        .map_err(|e| ProbeError::BootFailed(e.to_string()))?;
    if !recorder.ready {
        return Err(ProbeError::BootFailed(format!("no READY trap before {exit:?}")));
    }

    let mut init = InitProgram::default();
    // Heap bounds from the symbol table (available for category-1 firmware).
    if let (Some(start), Some(end)) = (image.symbol("__heap_start"), image.symbol("__heap_end")) {
        init.steps.push(InitStep::Poison {
            start: u64::from(start),
            end: u64::from(end),
            kind: embsan_dsl::PoisonKind::HeapRedzone,
        });
    }
    let mut live: BTreeMap<u32, (u32, u32)> = BTreeMap::new();
    let mut globals = Vec::new();
    for (nr, args) in &recorder.events {
        match *nr {
            hyper::ALLOC if args[0] != 0 => {
                live.insert(args[0], (args[1], 0));
            }
            hyper::FREE => {
                live.remove(&args[0]);
            }
            hyper::REGISTER_GLOBAL => globals.push(InitStep::Global {
                addr: u64::from(args[0]),
                size: u64::from(args[1]),
                redzone: u64::from(args[2]),
            }),
            _ => {}
        }
    }
    init.steps.extend(globals);
    init.steps.extend(alloc_steps(&live));
    init.steps.push(InitStep::Ready);

    let mut platform = platform_skeleton(image);
    platform.ready = Some(ReadyPoint::Hypercall);
    Ok(ProbeArtifacts { platform, init, stats: ProbeStats { dry_run_passes: 1 } })
}

// --- Call/return recording shared by the dynamic modes -------------------

#[derive(Debug, Clone, Copy)]
struct CompletedCall {
    target: u32,
    arg0: u32,
    ret_value: u32,
    site: u32,
}

#[derive(Default)]
struct CallRecorder {
    pending: Vec<Vec<(u32, u32, u32)>>, // per-cpu (target, ret_to, arg0)
    completed: Vec<CompletedCall>,
}

impl CallRecorder {
    fn new(cpus: usize) -> CallRecorder {
        CallRecorder { pending: vec![Vec::new(); cpus], completed: Vec::new() }
    }
}

impl ExecHook for CallRecorder {
    fn call(&mut self, cpu: &mut CpuView<'_>, target: u32, ret_to: u32) {
        let idx = cpu.cpu_index();
        self.pending[idx].push((target, ret_to, cpu.reg(Reg::A0)));
    }

    fn ret(&mut self, cpu: &mut CpuView<'_>, target: u32) {
        let idx = cpu.cpu_index();
        if let Some(&(call_target, ret_to, arg0)) = self.pending[idx].last() {
            if ret_to == target {
                self.pending[idx].pop();
                self.completed.push(CompletedCall {
                    target: call_target,
                    arg0,
                    ret_value: cpu.reg(Reg::A0),
                    site: target.wrapping_sub(4),
                });
            }
        }
    }
}

/// Runs the dry run with call recording until the ready point.
fn dry_run_calls(
    image: &FirmwareImage,
    ready_addr: Option<u32>,
) -> Result<Vec<CompletedCall>, ProbeError> {
    let mut machine = image.boot_machine(1).map_err(|e| ProbeError::BootFailed(e.to_string()))?;
    let mut recorder = CallRecorder::new(1);
    machine.set_hook_config(HookConfig { calls: true, ..HookConfig::none() });
    if let Some(addr) = ready_addr {
        machine.add_breakpoint(addr);
    }
    let exit = machine
        .run(&mut recorder, DRY_RUN_BUDGET)
        .map_err(|e| ProbeError::BootFailed(e.to_string()))?;
    match (ready_addr, exit) {
        (Some(addr), RunExit::Breakpoint { pc, .. }) if pc == addr => {}
        (None, RunExit::AllIdle) => {}
        (_, other) => {
            return Err(ProbeError::BootFailed(format!(
                "dry run ended with {other:?} before the ready point"
            )))
        }
    }
    Ok(recorder.completed)
}

/// Replays a completed-call trace for a chosen allocator pair, producing the
/// net-live boot allocations.
fn live_allocations(
    calls: &[CompletedCall],
    alloc_addr: u32,
    free_addr: u32,
) -> BTreeMap<u32, (u32, u32)> {
    let mut live = BTreeMap::new();
    for call in calls {
        if call.target == alloc_addr && call.ret_value != 0 {
            live.insert(call.ret_value, (call.arg0, call.site));
        } else if call.target == free_addr {
            live.remove(&call.arg0);
        }
    }
    live
}

fn ram_contains(image: &FirmwareImage, addr: u32) -> bool {
    addr >= image.ram_base && addr < image.ram_base + image.ram_size
}

// --- Category 2: open-source, no instrumentation -------------------------

fn probe_dynamic_source(image: &FirmwareImage) -> Result<ProbeArtifacts, ProbeError> {
    if !image.has_symbols() {
        return Err(ProbeError::NoSymbols);
    }
    let ready_addr = image.ready.or_else(|| image.symbol("kernel_ready"));
    let calls = dry_run_calls(image, ready_addr)?;

    // Name-pattern candidates, verified against the observed dataflow.
    let funcs: Vec<_> = image
        .symbols
        .iter()
        .filter(|s| s.kind == SymbolKind::Func && !s.name.starts_with("__san_"))
        .collect();
    let verify_alloc = |addr: u32| {
        calls.iter().any(|c| {
            c.target == addr
                && c.arg0 > 0
                && c.arg0 < MAX_SIZE_ARG
                && ram_contains(image, c.ret_value)
        })
    };
    let alloc_sym = funcs
        .iter()
        .find(|s| {
            let lower = s.name.to_lowercase();
            lower.contains("alloc") && !lower.contains("free") && verify_alloc(s.addr)
        })
        .ok_or(ProbeError::AllocatorNotFound)?;
    let alloc_rets: Vec<u32> =
        calls.iter().filter(|c| c.target == alloc_sym.addr).map(|c| c.ret_value).collect();
    let free_sym = funcs
        .iter()
        .find(|s| {
            let lower = s.name.to_lowercase();
            lower.contains("free")
                && calls.iter().any(|c| c.target == s.addr && alloc_rets.contains(&c.arg0))
        })
        .ok_or(ProbeError::AllocatorNotFound)?;

    let mut platform = platform_skeleton(image);
    platform.ready = ready_addr.map(|a| ReadyPoint::Addr(u64::from(a)));
    platform.funcs = vec![
        FuncHook {
            symbol: alloc_sym.name.clone(),
            addr: u64::from(alloc_sym.addr),
            role: FuncRole::Alloc,
            params: vec![("size".to_string(), 0)],
            returns: Some("addr".to_string()),
        },
        FuncHook {
            symbol: free_sym.name.clone(),
            addr: u64::from(free_sym.addr),
            role: FuncRole::Free,
            params: vec![("addr".to_string(), 0)],
            returns: None,
        },
    ];

    let mut init = InitProgram::default();
    if let (Some(start), Some(end)) = (image.symbol("__heap_start"), image.symbol("__heap_end")) {
        init.steps.push(InitStep::Poison {
            start: u64::from(start),
            end: u64::from(end),
            kind: embsan_dsl::PoisonKind::HeapRedzone,
        });
    }
    init.steps.extend(alloc_steps(&live_allocations(&calls, alloc_sym.addr, free_sym.addr)));
    init.steps.push(InitStep::Ready);
    Ok(ProbeArtifacts { platform, init, stats: ProbeStats { dry_run_passes: 1 } })
}

// --- Category 3: closed-source binary-only -------------------------------

/// Allocator signature over a recorded call trace: called at least twice,
/// all arguments look like sizes (small positive integers), all returns are
/// distinct RAM pointers — and `free` is fed pointers the allocator
/// returned.
fn verify_pair(image: &FirmwareImage, calls: &[CompletedCall], alloc: u32, free: u32) -> bool {
    if alloc == free {
        return false;
    }
    let alloc_calls: Vec<&CompletedCall> = calls.iter().filter(|c| c.target == alloc).collect();
    if alloc_calls.len() < 2
        || !alloc_calls
            .iter()
            .all(|c| c.arg0 > 0 && c.arg0 < MAX_SIZE_ARG && ram_contains(image, c.ret_value))
    {
        return false;
    }
    let mut rets: Vec<u32> = alloc_calls.iter().map(|c| c.ret_value).collect();
    rets.sort_unstable();
    if rets.windows(2).any(|w| w[0] == w[1]) {
        return false;
    }
    calls.iter().any(|c| c.target == free && rets.binary_search(&c.arg0).is_ok())
}

/// Enumerates ranked `(alloc, free)` candidate pairs from an observed call
/// trace (the discovery half of the multi-pass dry run).
fn discover_pairs(image: &FirmwareImage, calls: &[CompletedCall]) -> Vec<(u32, u32)> {
    let mut by_target: BTreeMap<u32, Vec<&CompletedCall>> = BTreeMap::new();
    for call in calls {
        by_target.entry(call.target).or_default().push(call);
    }
    let mut alloc_candidates: Vec<(u32, usize)> = by_target
        .iter()
        .filter(|(_, calls)| {
            calls.len() >= 2
                && calls.iter().all(|c| {
                    c.arg0 > 0 && c.arg0 < MAX_SIZE_ARG && ram_contains(image, c.ret_value)
                })
                && {
                    let mut rets: Vec<u32> = calls.iter().map(|c| c.ret_value).collect();
                    rets.sort_unstable();
                    rets.windows(2).all(|w| w[0] != w[1])
                }
        })
        .map(|(&target, calls)| (target, calls.len()))
        .collect();
    alloc_candidates.sort_by_key(|&(_, n)| std::cmp::Reverse(n));

    let mut pairs = Vec::new();
    for &(alloc, _) in &alloc_candidates {
        let rets: Vec<u32> = by_target[&alloc].iter().map(|c| c.ret_value).collect();
        for (&target, calls) in &by_target {
            if target != alloc && calls.iter().any(|c| rets.contains(&c.arg0)) {
                pairs.push((alloc, target));
            }
        }
    }
    pairs
}

fn probe_dynamic_binary(
    image: &FirmwareImage,
    prior: Option<&PriorKnowledge>,
) -> Result<ProbeArtifacts, ProbeError> {
    let prior = prior.cloned().unwrap_or_default();
    let mut passes = 0u32;

    let (pair, calls) = if let (Some(alloc), Some(free)) = (prior.alloc_addr, prior.free_addr) {
        // Exact tester-supplied addresses are trusted outright: one pass,
        // recording boot allocations only.
        passes += 1;
        ((alloc, free), dry_run_calls(image, prior.ready_addr)?)
    } else if !prior.alloc_candidates.is_empty() && !prior.free_candidates.is_empty() {
        // Ranked static candidates (from `embsan-analysis`): discovery is
        // already done, so a single combined record+verify pass suffices.
        passes += 1;
        let calls = dry_run_calls(image, prior.ready_addr)?;
        let pair = prior
            .alloc_candidates
            .iter()
            .flat_map(|&alloc| prior.free_candidates.iter().map(move |&free| (alloc, free)))
            .find(|&(alloc, free)| verify_pair(image, &calls, alloc, free))
            .ok_or(ProbeError::AllocatorNotFound)?;
        (pair, calls)
    } else {
        // No priors: discovery pass enumerates candidates from observed
        // dataflow, then a second pass re-records and verifies that the
        // top-ranked pair holds on fresh recordings (multi-pass dry run).
        passes += 1;
        let discovery = dry_run_calls(image, prior.ready_addr)?;
        let ranked = discover_pairs(image, &discovery);
        if ranked.is_empty() {
            return Err(ProbeError::AllocatorNotFound);
        }
        passes += 1;
        let calls = dry_run_calls(image, prior.ready_addr)?;
        let pair = ranked
            .iter()
            .copied()
            .find(|&(alloc, free)| verify_pair(image, &calls, alloc, free))
            .ok_or(ProbeError::AllocatorNotFound)?;
        (pair, calls)
    };
    let (alloc_addr, free_addr) = pair;

    let mut platform = platform_skeleton(image);
    platform.ready = prior.ready_addr.map(|a| ReadyPoint::Addr(u64::from(a)));
    platform.funcs = vec![
        FuncHook {
            symbol: format!("fn_{alloc_addr:08x}"),
            addr: u64::from(alloc_addr),
            role: FuncRole::Alloc,
            params: vec![("size".to_string(), 0)],
            returns: Some("addr".to_string()),
        },
        FuncHook {
            symbol: format!("fn_{free_addr:08x}"),
            addr: u64::from(free_addr),
            role: FuncRole::Free,
            params: vec![("addr".to_string(), 0)],
            returns: None,
        },
    ];

    let mut init = InitProgram::default();
    // Heap bounds only with prior knowledge; otherwise the runtime relies
    // on per-allocation tail redzones.
    if let Some((start, end)) = prior.heap {
        init.steps.push(InitStep::Poison {
            start: u64::from(start),
            end: u64::from(end),
            kind: embsan_dsl::PoisonKind::HeapRedzone,
        });
    }
    init.steps.extend(alloc_steps(&live_allocations(&calls, alloc_addr, free_addr)));
    init.steps.push(InitStep::Ready);
    Ok(ProbeArtifacts { platform, init, stats: ProbeStats { dry_run_passes: passes } })
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsan_dsl::PoisonKind;
    use embsan_emu::profile::Arch;
    use embsan_guestos::{os, BuildOptions, SanMode};

    #[test]
    fn compile_time_probe_records_boot_actions() {
        let opts = BuildOptions::new(Arch::Armv).san(SanMode::SanCall);
        let image = os::emblinux::build(&opts, &[]).unwrap();
        let artifacts = probe(&image, ProbeMode::CompileTime, None).unwrap();
        assert_eq!(artifacts.platform.instrumented, "sancall");
        assert_eq!(artifacts.platform.ready, Some(ReadyPoint::Hypercall));
        let steps = &artifacts.init.steps;
        // Heap poison first, globals registered, net-live boot alloc
        // (boot_obj: 96 bytes), ready last.
        assert!(matches!(steps[0], InitStep::Poison { kind: PoisonKind::HeapRedzone, .. }));
        assert!(steps.iter().any(|s| matches!(s, InitStep::Global { redzone: 32, .. })));
        let allocs: Vec<_> = steps
            .iter()
            .filter_map(|s| match s {
                InitStep::Alloc { size, .. } => Some(*size),
                _ => None,
            })
            .collect();
        assert_eq!(allocs, vec![96], "only the long-lived boot alloc survives");
        assert_eq!(*steps.last().unwrap(), InitStep::Ready);
    }

    #[test]
    fn compile_time_probe_rejects_uninstrumented() {
        let opts = BuildOptions::new(Arch::Armv);
        let image = os::emblinux::build(&opts, &[]).unwrap();
        assert_eq!(
            probe(&image, ProbeMode::CompileTime, None).unwrap_err(),
            ProbeError::NotInstrumented
        );
    }

    #[test]
    fn dynamic_source_probe_identifies_allocators() {
        type BuildFn = fn(
            &BuildOptions,
            &[embsan_guestos::BugSpec],
        ) -> Result<embsan_asm::FirmwareImage, embsan_asm::LinkError>;
        let cases: [(BuildFn, &str, &str); 3] = [
            (os::emblinux::build, "kmalloc", "kfree"),
            (os::freertos::build, "pvPortMalloc", "vPortFree"),
            (os::liteos::build, "LOS_MemAlloc", "LOS_MemFree"),
        ];
        for (build, alloc, free) in cases {
            let opts = BuildOptions::new(Arch::Armv);
            let image = build(&opts, &[]).unwrap();
            let artifacts = probe(&image, ProbeMode::DynamicSource, None).unwrap();
            let alloc_hook = artifacts.platform.func_by_role(FuncRole::Alloc).unwrap();
            assert_eq!(alloc_hook.symbol, alloc);
            assert_eq!(alloc_hook.addr as u32, image.symbol(alloc).unwrap());
            let free_hook = artifacts.platform.func_by_role(FuncRole::Free).unwrap();
            assert_eq!(free_hook.symbol, free);
            // Ready point resolved from the symbol table.
            assert!(matches!(artifacts.platform.ready, Some(ReadyPoint::Addr(_))));
        }
    }

    #[test]
    fn dynamic_source_requires_symbols() {
        let opts = BuildOptions::new(Arch::Armv);
        let image = os::vxworks::build(&opts, &[]).unwrap(); // stripped
        assert_eq!(
            probe(&image, ProbeMode::DynamicSource, None).unwrap_err(),
            ProbeError::NoSymbols
        );
    }

    #[test]
    fn dynamic_binary_probe_finds_allocator_by_signature() {
        let opts = BuildOptions::new(Arch::Armv);
        let stripped = os::vxworks::build(&opts, &[]).unwrap();
        let truth = os::vxworks::build_unstripped(&opts, &[]).unwrap();
        let artifacts = probe(&stripped, ProbeMode::DynamicBinary, None).unwrap();
        let alloc_hook = artifacts.platform.func_by_role(FuncRole::Alloc).unwrap();
        let free_hook = artifacts.platform.func_by_role(FuncRole::Free).unwrap();
        // The dataflow heuristic must land on the real allocator pair.
        assert_eq!(alloc_hook.addr as u32, truth.symbol("memPartAlloc").unwrap());
        assert_eq!(free_hook.addr as u32, truth.symbol("memPartFree").unwrap());
        // Boot's net-live allocation is replayed.
        assert!(artifacts.init.steps.iter().any(|s| matches!(s, InitStep::Alloc { size: 96, .. })));
        // Blind probing costs a discovery pass plus a verification pass.
        assert_eq!(artifacts.stats.dry_run_passes, 2);
    }

    #[test]
    fn prior_knowledge_overrides_heuristics() {
        let opts = BuildOptions::new(Arch::Armv);
        let stripped = os::vxworks::build(&opts, &[]).unwrap();
        let truth = os::vxworks::build_unstripped(&opts, &[]).unwrap();
        let prior = PriorKnowledge {
            alloc_addr: truth.symbol("memPartAlloc"),
            free_addr: truth.symbol("memPartFree"),
            heap: Some((
                truth.symbol("__heap_start").unwrap(),
                truth.symbol("__heap_end").unwrap(),
            )),
            ready_addr: truth.symbol("kernel_ready"),
            ..Default::default()
        };
        let artifacts = probe(&stripped, ProbeMode::DynamicBinary, Some(&prior)).unwrap();
        assert!(matches!(
            artifacts.init.steps[0],
            InitStep::Poison { kind: PoisonKind::HeapRedzone, .. }
        ));
        assert!(matches!(artifacts.platform.ready, Some(ReadyPoint::Addr(_))));
        // Exact priors skip both discovery and verification dry runs.
        assert_eq!(artifacts.stats.dry_run_passes, 1);
    }

    #[test]
    fn artifacts_render_as_parseable_dsl() {
        let opts = BuildOptions::new(Arch::Mipsv).san(SanMode::SanCall);
        let image = os::emblinux::build(&opts, &[]).unwrap();
        let artifacts = probe(&image, ProbeMode::CompileTime, None).unwrap();
        let text = artifacts.to_dsl();
        let items = embsan_dsl::parse(&text).unwrap();
        assert_eq!(items.len(), 2);
        assert!(matches!(items[0], embsan_dsl::Item::Platform(_)));
        assert!(matches!(items[1], embsan_dsl::Item::Init(_)));
    }
}
