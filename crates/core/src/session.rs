//! Testing-phase orchestration (§3.4 / §3.5).
//!
//! A [`Session`] binds a firmware image, the merged sanitizer spec and the
//! prober's artifacts into a runnable sanitized machine:
//!
//! 1. [`Session::run_to_ready`] boots the firmware to its ready-to-run
//!    point (READY hypercall, ready-address breakpoint, or first idle,
//!    per the platform spec), applies the init routine, activates the
//!    runtime, and snapshots the machine for fast resets;
//! 2. [`Session::run_program`] injects one executor test program and
//!    collects results, console output and new sanitizer reports;
//! 3. [`Session::reset`] restores the post-ready snapshot (machine *and*
//!    sanitizer state), giving fuzzers a clean target per input.

use std::sync::Arc;

use embsan_asm::image::FirmwareImage;
use embsan_dsl::{merge, InitProgram, ReadyPoint, SanitizerSpec};
use embsan_emu::machine::{Machine, RunExit};
use embsan_emu::snapshot::Snapshot;
use embsan_emu::EmuError;
use embsan_guestos::executor::ExecProgram;

use crate::health::{Degradation, HealthCounters};
use crate::probe::ProbeArtifacts;
use crate::report::Report;
use crate::runtime::{EmbsanRuntime, RuntimeError, RuntimeState};

/// Session construction/run errors.
#[derive(Debug)]
pub enum SessionError {
    /// Emulator-level failure.
    Emu(EmuError),
    /// Runtime construction failure.
    Runtime(RuntimeError),
    /// The firmware did not reach its ready point within the budget.
    ReadyTimeout(String),
    /// An operation that requires the ready state was called too early.
    NotReady,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Emu(e) => write!(f, "emulator error: {e}"),
            SessionError::Runtime(e) => write!(f, "runtime error: {e}"),
            SessionError::ReadyTimeout(msg) => write!(f, "firmware never became ready: {msg}"),
            SessionError::NotReady => write!(f, "session has not reached the ready state"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<EmuError> for SessionError {
    fn from(e: EmuError) -> SessionError {
        SessionError::Emu(e)
    }
}

impl From<RuntimeError> for SessionError {
    fn from(e: RuntimeError) -> SessionError {
        SessionError::Runtime(e)
    }
}

/// Outcome of running one test program.
#[derive(Debug)]
pub struct ExecOutcome {
    /// How the run ended (normally [`RunExit::AllIdle`]).
    pub exit: RunExit,
    /// Per-call result bytes from the executor.
    pub results: Vec<u8>,
    /// New (deduplicated) sanitizer reports from this program.
    pub reports: Vec<Report>,
    /// Console output produced during the program.
    pub console: Vec<u8>,
}

/// An immutable ready-point image: the machine snapshot plus the captured
/// sanitizer state, content-hashed. One `Arc<BaseImage>` is shared by every
/// session forked from it — each fork holds only the pages it dirties
/// (copy-on-write), so N workers cost one base plus N small overlays
/// instead of N private RAM copies.
pub struct BaseImage {
    snapshot: Snapshot,
    state: RuntimeState,
    hash: u64,
}

impl std::fmt::Debug for BaseImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaseImage")
            .field("hash", &format_args!("{:#018x}", self.hash))
            .field("base_bytes", &self.base_bytes())
            .finish_non_exhaustive()
    }
}

impl BaseImage {
    /// FNV-1a content hash over RAM, CPU/device state, retired count and
    /// the sanitizer planes. Two sessions whose base images hash alike are
    /// bit-identical at the ready point and may share one base.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// Bytes the shared base holds (RAM image plus sanitizer planes) —
    /// paid once per base, regardless of how many sessions fork from it.
    pub fn base_bytes(&self) -> usize {
        self.snapshot.base_bytes() + self.state.plane_bytes()
    }
}

/// A sanitized testing session over one firmware image.
pub struct Session {
    machine: Machine,
    runtime: EmbsanRuntime,
    init: InitProgram,
    ready: Option<ReadyPoint>,
    image: FirmwareImage,
    ready_done: bool,
    baseline: Option<Arc<BaseImage>>,
    tracer: embsan_obs::Tracer,
    profiler: embsan_obs::Profiler,
    programs_run: u64,
    /// Per-program retired-instruction distribution (log2 buckets); a pure
    /// function of the executed programs, so it snapshots deterministically.
    exec_insns: embsan_obs::Histogram,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("ready", &self.ready_done)
            .field("reports", &self.runtime.reports().len())
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Creates a single-vCPU session.
    ///
    /// # Errors
    ///
    /// Fails if the machine cannot be built or the specs do not resolve.
    pub fn new(
        image: &FirmwareImage,
        specs: &[SanitizerSpec],
        artifacts: &ProbeArtifacts,
    ) -> Result<Session, SessionError> {
        Session::with_cpus(image, specs, artifacts, 1)
    }

    /// Creates a session with `cpus` vCPUs (≥2 for race-capable firmware).
    ///
    /// # Errors
    ///
    /// See [`Session::new`].
    pub fn with_cpus(
        image: &FirmwareImage,
        specs: &[SanitizerSpec],
        artifacts: &ProbeArtifacts,
        cpus: usize,
    ) -> Result<Session, SessionError> {
        let merged = if specs.len() == 1 { specs[0].clone() } else { merge(specs) };
        let machine = image.boot_machine(cpus)?;
        let runtime = EmbsanRuntime::new(&merged, &artifacts.platform, cpus)?;
        let mut session = Session {
            machine,
            runtime,
            init: artifacts.init.clone(),
            ready: artifacts.platform.ready,
            image: image.clone(),
            ready_done: false,
            baseline: None,
            tracer: embsan_obs::Tracer::disabled(),
            profiler: embsan_obs::Profiler::disabled(),
            programs_run: 0,
            exec_insns: embsan_obs::Histogram::new(),
        };
        let config = session.runtime.hook_config();
        session.machine.set_hook_config(config);
        Ok(session)
    }

    /// The underlying machine (e.g. for console inspection).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable machine access (e.g. to drive devices directly).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The runtime (report access, statistics).
    pub fn runtime(&self) -> &EmbsanRuntime {
        &self.runtime
    }

    /// Translation-cache counters for this session's machine (hit/miss and
    /// generation-reuse telemetry for the bench and campaign reports).
    pub fn cache_stats(&self) -> embsan_emu::CacheStats {
        self.machine.cache_stats()
    }

    /// Arms structured event tracing: one shared ring buffer receives
    /// events from the machine, the translation cache and the sanitizer
    /// runtime, tagged with the lifetime-retired instruction clock.
    ///
    /// Typically called after [`Session::run_to_ready`] so the trace
    /// covers test programs, not the boot's millions of instructions. The
    /// tracer is not part of the reset snapshot: events survive
    /// [`Session::reset`] until drained.
    pub fn enable_tracing(&mut self, config: embsan_obs::TraceConfig) {
        let tracer = embsan_obs::Tracer::new(config);
        self.machine.set_tracer(tracer.clone());
        self.runtime.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// The session's tracer handle (disabled until
    /// [`Session::enable_tracing`]).
    pub fn tracer(&self) -> &embsan_obs::Tracer {
        &self.tracer
    }

    /// The lifetime-retired clock value to pass to
    /// [`Session::drain_trace`] for iteration-relative rebasing.
    pub fn trace_mark(&self) -> u64 {
        self.machine.lifetime_retired()
    }

    /// Drains buffered trace events, rebasing clock tags onto `mark`
    /// (a value from [`Session::trace_mark`]) and restarting the sequence
    /// counter — the resulting span is independent of how much this
    /// session executed before the mark.
    pub fn drain_trace(&mut self, mark: u64) -> Vec<embsan_obs::Event> {
        self.tracer.drain_rebased(mark)
    }

    /// Drains buffered trace events with absolute clock tags.
    pub fn take_trace(&mut self) -> Vec<embsan_obs::Event> {
        self.tracer.drain()
    }

    /// Attaches hot-path profilers (translate/execute/check) and returns
    /// the shared handle. The timers start disabled; call
    /// [`embsan_obs::Profiler::set_enabled`] on the returned handle. A
    /// no-op handle unless the `embsan-obs/profile` feature is compiled.
    pub fn enable_profiling(&mut self) -> embsan_obs::Profiler {
        let profiler = embsan_obs::Profiler::attached();
        self.machine.set_profiler(profiler.clone());
        self.runtime.set_profiler(profiler.clone());
        self.profiler = profiler.clone();
        profiler
    }

    /// Copies this session's counters into `registry`.
    ///
    /// Everything a sequential session observes is a pure function of the
    /// executed programs, so all entries are
    /// [`embsan_obs::MetricClass::Deterministic`] here; campaign engines
    /// re-class schedule-dependent counters (notably per-worker cache
    /// warmth) as telemetry in their own adapters.
    pub fn collect_metrics(&self, registry: &mut embsan_obs::MetricsRegistry) {
        use embsan_obs::MetricClass::Deterministic;
        let cache = self.cache_stats();
        registry.counter("translator", "translations", Deterministic, cache.translations);
        registry.counter("translator", "hits", Deterministic, cache.hits);
        registry.counter("translator", "reconfigures", Deterministic, cache.reconfigures);
        registry.counter("translator", "generation_hits", Deterministic, cache.generation_hits);
        registry.counter(
            "translator",
            "generation_evictions",
            Deterministic,
            cache.generation_evictions,
        );
        registry.counter("translator", "flushes", Deterministic, cache.flushes);
        registry.counter(
            "translator",
            "chained_dispatches",
            Deterministic,
            cache.chained_dispatches,
        );
        registry.counter(
            "translator",
            "superblocks_formed",
            Deterministic,
            cache.superblocks_formed,
        );
        registry.counter(
            "hooks",
            "checks_performed",
            Deterministic,
            self.runtime.checks_performed(),
        );
        registry.counter(
            "hooks",
            "slow_path_checks",
            Deterministic,
            self.runtime.slow_path_checks(),
        );
        registry.counter("shadow", "reports", Deterministic, self.runtime.reports().len() as u64);
        let health = self.health();
        registry.counter(
            "shadow",
            "quarantine_evictions",
            Deterministic,
            health.quarantine_evictions,
        );
        registry.counter("shadow", "shadow_clips", Deterministic, health.shadow_clips);
        registry.counter("shadow", "spec_drift", Deterministic, health.spec_drift);
        let injection = self.machine.injection_stats();
        registry.counter("injection", "ram_bit_flips", Deterministic, injection.ram_bit_flips);
        registry.counter(
            "injection",
            "mmio_corruptions",
            Deterministic,
            injection.mmio_corruptions,
        );
        registry.counter("injection", "spurious_irqs", Deterministic, injection.spurious_irqs);
        registry.counter("injection", "alloc_failures", Deterministic, injection.alloc_failures);
        registry.counter("injection", "cpu_wedges", Deterministic, injection.cpu_wedges);
        registry.counter("session", "programs_run", Deterministic, self.programs_run);
        registry.histogram("session", "program_insns", Deterministic, self.exec_insns.clone());
        registry.counter("session", "trace_dropped", Deterministic, self.tracer.dropped());
    }

    /// A metrics snapshot of this session (see
    /// [`Session::collect_metrics`]).
    pub fn metrics_snapshot(&self) -> embsan_obs::MetricsSnapshot {
        let mut registry = embsan_obs::MetricsRegistry::new();
        self.collect_metrics(&mut registry);
        registry.snapshot()
    }

    /// Mutable runtime access (e.g. to set `stop_on_report`).
    pub fn runtime_mut(&mut self) -> &mut EmbsanRuntime {
        &mut self.runtime
    }

    /// All deduplicated reports so far.
    pub fn reports(&self) -> &[Report] {
        self.runtime.reports()
    }

    /// Campaign-wide degradation counters (quarantine pressure, shadow
    /// clips, probe-spec drift). Not reset by [`Session::reset`].
    pub fn health(&self) -> &HealthCounters {
        self.runtime.health()
    }

    /// The bounded log of degradation events behind [`Session::health`].
    pub fn degradations(&self) -> &[Degradation] {
        self.runtime.degradations()
    }

    /// Prioritizes KCSAN watchpoints on statically suspected race
    /// addresses (from `embsan-analysis`). Call before
    /// [`run_to_ready`](Session::run_to_ready) so the priorities are part
    /// of the reset snapshot.
    pub fn set_race_priorities(&mut self, addrs: &[u32]) {
        self.runtime.set_race_priorities(addrs);
    }

    /// Enables the model-free MMIO region (`[base, base + size)`): reads
    /// with no device behind them are answered from a fuzzer-controlled
    /// response stream with Ember-IO-style per-(pc, addr) refinement
    /// instead of faulting. With `withhold_devices` the platform device
    /// window itself is hidden and must be covered by the region — the
    /// "fuzz firmware whose MMIO map we never modelled" mode.
    ///
    /// Call before [`run_to_ready`](Session::run_to_ready) so the
    /// boot-time refinement state (cache, cursor) is part of the reset
    /// snapshot and survives kill/resume and CoW forking.
    pub fn enable_model_free(&mut self, base: u32, size: u32, withhold_devices: bool) {
        self.machine.bus_mut().enable_model_free(base, size, withhold_devices);
    }

    /// Installs the response stream for the model-free MMIO region and
    /// rewinds its cursor (the refinement cache is kept — committed
    /// responses persist across iterations like a learned peripheral
    /// model). Call after [`reset`](Session::reset), before running an
    /// iteration's program. No-op when model-free MMIO is not enabled.
    pub fn set_model_free_stream(&mut self, stream: &[u8]) {
        if let Some(mf) = self.machine.bus_mut().devices.model_free.as_mut() {
            mf.set_stream(stream);
        }
    }

    /// Refinement statistics for the model-free MMIO region, if enabled.
    pub fn model_free_stats(&self) -> Option<embsan_emu::ModelFreeStats> {
        self.machine.bus().devices.model_free.as_ref().map(|mf| mf.stats)
    }

    /// Whether the platform device window is withheld (served entirely by
    /// the model-free region). In this mode the guest's result writes are
    /// absorbed, so programs run to their full budget by design.
    pub fn mmio_withheld(&self) -> bool {
        self.machine.bus().mmio_is_withheld()
    }

    /// Renders a report against this session's firmware symbols.
    pub fn render_report(&self, report: &Report) -> String {
        report.render(if self.image.has_symbols() { Some(&self.image) } else { None })
    }

    /// Boots the firmware to its ready point, applies the init routine and
    /// activates the sanitizer (§3.5's initialization step).
    ///
    /// # Errors
    ///
    /// [`SessionError::ReadyTimeout`] if the ready point is not reached
    /// within `budget` instructions.
    pub fn run_to_ready(&mut self, budget: u64) -> Result<(), SessionError> {
        match self.ready {
            Some(ReadyPoint::Hypercall) => {
                let exit = self.machine.run(&mut self.runtime, budget)?;
                if !(exit == RunExit::Stopped && self.runtime.ready_seen()) {
                    return Err(SessionError::ReadyTimeout(format!("{exit:?}")));
                }
            }
            Some(ReadyPoint::Addr(addr)) => {
                let addr = addr as u32;
                self.machine.add_breakpoint(addr);
                let exit = self.machine.run(&mut self.runtime, budget)?;
                self.machine.remove_breakpoint(addr);
                if !matches!(exit, RunExit::Breakpoint { pc, .. } if pc == addr) {
                    return Err(SessionError::ReadyTimeout(format!("{exit:?}")));
                }
            }
            None => {
                // Binary-only firmware: boot completes when the executor
                // first idles.
                let exit = self.machine.run(&mut self.runtime, budget)?;
                if exit != RunExit::AllIdle {
                    return Err(SessionError::ReadyTimeout(format!("{exit:?}")));
                }
            }
        }
        // Surface probe-spec drift (hooks that can never fire because they
        // point outside the firmware text) as degradation events.
        let (rom_base, rom_size) = self.machine.bus().rom_range();
        self.runtime.audit_probe_spec(rom_base, rom_size);
        self.runtime.apply_init(&self.init);
        if !self.runtime.is_active() {
            // Init routines normally end with `ready;`; be lenient.
            self.runtime.activate();
        }
        self.ready_done = true;
        // Freeze the sanitizer planes first: the captured state then shares
        // one immutable backing with the live planes, so the capture is an
        // O(pages) fork instead of a full copy, and every session adopting
        // this base image shares the same allocation.
        self.runtime.freeze_planes();
        let snapshot = self.machine.snapshot();
        let state = self.runtime.state();
        let hash = state.fold_plane_hash(snapshot.fold_hash(0xCBF2_9CE4_8422_2325));
        self.baseline = Some(Arc::new(BaseImage { snapshot, state, hash }));
        Ok(())
    }

    /// The base image captured at the ready point, shareable across
    /// sessions of the same firmware via [`Session::adopt_base`].
    pub fn base(&self) -> Option<&Arc<BaseImage>> {
        self.baseline.as_ref()
    }

    /// Content hash of the ready-point base image (`None` before ready).
    pub fn base_hash(&self) -> Option<u64> {
        self.baseline.as_ref().map(|base| base.hash)
    }

    /// Bytes held by the (possibly shared) base image; 0 before ready.
    pub fn base_bytes(&self) -> usize {
        self.baseline.as_ref().map_or(0, |base| base.base_bytes())
    }

    /// Private bytes this session holds beyond the shared base image: the
    /// machine's dirty-page RAM overlay plus the sanitizer-plane overlays.
    /// O(pages touched since the last reset) — the per-worker incremental
    /// memory cost under copy-on-write forking.
    pub fn overlay_bytes(&self) -> usize {
        self.machine.ram_overlay_bytes() + self.runtime.plane_overlay_bytes()
    }

    /// Replaces this session's private baseline with a shared base image
    /// captured by another session of the same firmware, then resets onto
    /// it. Returns `Ok(false)` (keeping the private baseline) if the
    /// hashes differ — the sessions did not reach bit-identical ready
    /// states, so sharing would corrupt both.
    ///
    /// # Errors
    ///
    /// [`SessionError::NotReady`] before [`Session::run_to_ready`];
    /// emulator errors from the reset.
    pub fn adopt_base(&mut self, base: &Arc<BaseImage>) -> Result<bool, SessionError> {
        let own = self.baseline.as_ref().ok_or(SessionError::NotReady)?;
        if own.hash != base.hash {
            return Ok(false);
        }
        self.baseline = Some(Arc::clone(base));
        // Force the next restore onto the full-install path: the dirty-page
        // fast path is only valid against the previously installed state.
        self.runtime.clear_state_baseline();
        self.reset()?;
        Ok(true)
    }

    /// Restores the post-ready snapshot: machine and sanitizer state
    /// (reports already collected are kept).
    ///
    /// # Errors
    ///
    /// [`SessionError::NotReady`] before [`Session::run_to_ready`].
    pub fn reset(&mut self) -> Result<(), SessionError> {
        let Session { machine, runtime, baseline, .. } = self;
        let base = baseline.as_ref().ok_or(SessionError::NotReady)?;
        machine.restore(&base.snapshot)?;
        // Borrowing restore: reuses the runtime's allocations and, after the
        // first reset, copies only state dirtied since the last one.
        runtime.restore_state_from(&base.state);
        Ok(())
    }

    /// Arms translation-block probes so an observer hook (e.g. a fuzzer's
    /// coverage collector) receives block-enter events. Call once, before
    /// or after [`Session::run_to_ready`] (the translation cache is
    /// regenerated either way).
    pub fn enable_block_coverage(&mut self) {
        let mut config = self.runtime.hook_config();
        config.blocks = true;
        self.machine.set_hook_config(config);
    }

    /// Injects and runs one executor program, collecting its outcome.
    ///
    /// # Errors
    ///
    /// [`SessionError::NotReady`] before [`Session::run_to_ready`].
    pub fn run_program(
        &mut self,
        program: &ExecProgram,
        budget: u64,
    ) -> Result<ExecOutcome, SessionError> {
        self.run_program_observed(program, budget, &mut embsan_emu::NullHook)
    }

    /// Like [`Session::run_program`], with a passive observer hook attached
    /// (receiving the same events; its verdicts are ignored).
    ///
    /// # Errors
    ///
    /// [`SessionError::NotReady`] before [`Session::run_to_ready`].
    pub fn run_program_observed(
        &mut self,
        program: &ExecProgram,
        budget: u64,
        observer: &mut dyn embsan_emu::ExecHook,
    ) -> Result<ExecOutcome, SessionError> {
        if !self.ready_done {
            return Err(SessionError::NotReady);
        }
        self.machine.take_console();
        self.runtime.take_new_reports();
        self.machine.bus_mut().devices.mailbox.host_load(&program.encode());
        // With model-free MMIO enabled the program is also the response
        // stream (the mailbox may sit inside the withheld window), so every
        // execution path — fuzzing, reproduction, minimization, trace
        // capture — installs it here rather than at each call site.
        if self.machine.bus().devices.model_free.is_some() {
            self.set_model_free_stream(&program.model_free_stream());
        }
        // Run in slices, waking parked vCPUs at each slice boundary (`wfi`
        // waits for an event; host slicing is one). The completion signal is
        // the executor's per-call result bytes — `AllIdle` alone is not
        // usable on SMP firmware whose background task never sleeps.
        let total_calls = program.calls.len();
        let insns_before = self.machine.lifetime_retired();
        let mut exit;
        let mut spent: u64 = 0;
        loop {
            let slice = budget.saturating_sub(spent).clamp(1, 500_000);
            let Session { machine, runtime, .. } = &mut *self;
            let mut combined =
                embsan_emu::hook::CombinedHook { primary: runtime, observer: &mut *observer };
            exit = machine.run(&mut combined, slice)?;
            spent += slice;
            let done = self.machine.bus().devices.mailbox.result_count() >= total_calls;
            match exit {
                RunExit::Faulted { .. } | RunExit::Halted { .. } => break,
                RunExit::Stopped if self.runtime.stop_on_report => break,
                _ if done => break,
                // All vCPUs parked with the program incomplete: stuck.
                RunExit::AllIdle => break,
                _ if spent >= budget => break,
                _ => {}
            }
        }
        self.programs_run += 1;
        self.exec_insns.observe(self.machine.lifetime_retired() - insns_before);
        Ok(ExecOutcome {
            exit,
            results: self.machine.bus_mut().devices.mailbox.host_take_results(),
            reports: self.runtime.take_new_reports(),
            console: self.machine.take_console(),
        })
    }

    /// Convenience: reset, then run the program (the fuzzing hot path).
    ///
    /// # Errors
    ///
    /// See [`Session::reset`] and [`Session::run_program`].
    pub fn run_program_fresh(
        &mut self,
        program: &ExecProgram,
        budget: u64,
    ) -> Result<ExecOutcome, SessionError> {
        self.reset()?;
        self.run_program(program, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distill::reference_specs;
    use crate::probe::{probe, ProbeMode};
    use crate::report::BugClass;
    use embsan_emu::profile::Arch;
    use embsan_guestos::bugs::{trigger_key, BugKind, BugSpec};
    use embsan_guestos::executor::sys;
    use embsan_guestos::{os, BuildOptions, SanMode};

    fn session_for(san: SanMode, mode: ProbeMode, bugs: &[BugSpec]) -> Session {
        let opts = BuildOptions::new(Arch::Armv).san(san);
        let image = os::emblinux::build(&opts, bugs).unwrap();
        let specs = reference_specs().unwrap();
        let artifacts = probe(&image, mode, None).unwrap();
        let mut session = Session::new(&image, &specs, &artifacts).unwrap();
        session.run_to_ready(100_000_000).unwrap();
        session
    }

    #[test]
    fn embsan_c_detects_heap_oob_write() {
        let bug = BugSpec::new("t/oob", BugKind::OobWrite);
        let mut session =
            session_for(SanMode::SanCall, ProbeMode::CompileTime, std::slice::from_ref(&bug));
        let mut program = ExecProgram::new();
        program.push(sys::BUG_BASE, &[trigger_key("t/oob")]);
        let outcome = session.run_program(&program, 10_000_000).unwrap();
        assert_eq!(
            outcome.reports.iter().map(|r| r.class).collect::<Vec<_>>(),
            vec![BugClass::HeapOob],
            "console: {}",
            String::from_utf8_lossy(&outcome.console)
        );
        assert!(outcome.reports[0].is_write);
    }

    #[test]
    fn embsan_d_detects_heap_oob_via_dynamic_interception() {
        let bug = BugSpec::new("t/oob", BugKind::OobWrite);
        let mut session =
            session_for(SanMode::None, ProbeMode::DynamicSource, std::slice::from_ref(&bug));
        let mut program = ExecProgram::new();
        program.push(sys::BUG_BASE, &[trigger_key("t/oob")]);
        let outcome = session.run_program(&program, 10_000_000).unwrap();
        assert!(
            outcome.reports.iter().any(|r| r.class == BugClass::HeapOob),
            "reports: {:?}",
            outcome.reports
        );
    }

    #[test]
    fn no_false_positives_on_clean_workload() {
        for (san, mode) in
            [(SanMode::SanCall, ProbeMode::CompileTime), (SanMode::None, ProbeMode::DynamicSource)]
        {
            let mut session = session_for(san, mode, &[]);
            let corpus = embsan_guestos::workload::merged_corpus(11, 3, 30);
            for program in &corpus {
                let outcome = session.run_program(program, 20_000_000).unwrap();
                assert!(
                    outcome.reports.is_empty(),
                    "{san:?}/{mode:?} false positive: {:?}",
                    outcome.reports
                );
                assert_eq!(outcome.exit, RunExit::AllIdle);
            }
        }
    }

    #[test]
    fn reset_gives_clean_state_per_program() {
        let bug = BugSpec::new("t/uaf", BugKind::Uaf);
        let mut session = session_for(SanMode::SanCall, ProbeMode::CompileTime, &[bug]);
        let mut trigger = ExecProgram::new();
        trigger.push(sys::BUG_BASE, &[trigger_key("t/uaf")]);
        let outcome = session.run_program_fresh(&trigger, 10_000_000).unwrap();
        assert_eq!(outcome.reports.len(), 1);
        assert_eq!(outcome.reports[0].class, BugClass::Uaf);
        // Same program again after reset: the report deduplicates (same pc)
        // but execution still works and state was clean.
        let outcome = session.run_program_fresh(&trigger, 10_000_000).unwrap();
        assert!(outcome.reports.is_empty());
        assert_eq!(outcome.exit, RunExit::AllIdle);
        // A clean program after reset sees no stale allocations.
        let mut clean = ExecProgram::new();
        clean.push(sys::ALLOC, &[64, 0]);
        clean.push(sys::WRITE, &[0, 10, 1]);
        let outcome = session.run_program_fresh(&clean, 10_000_000).unwrap();
        assert!(outcome.reports.is_empty());
    }

    #[test]
    fn double_free_detected_in_both_modes() {
        let bug = BugSpec::new("t/df", BugKind::DoubleFree);
        for (san, mode) in
            [(SanMode::SanCall, ProbeMode::CompileTime), (SanMode::None, ProbeMode::DynamicSource)]
        {
            let mut session = session_for(san, mode, std::slice::from_ref(&bug));
            let mut program = ExecProgram::new();
            program.push(sys::BUG_BASE, &[trigger_key("t/df")]);
            let outcome = session.run_program(&program, 10_000_000).unwrap();
            assert!(
                outcome.reports.iter().any(|r| r.class == BugClass::DoubleFree),
                "{san:?}: {:?}",
                outcome.reports
            );
        }
    }

    #[test]
    fn null_deref_reported_from_fault() {
        let bug = BugSpec::new("t/npd", BugKind::NullDeref);
        let mut session = session_for(SanMode::SanCall, ProbeMode::CompileTime, &[bug]);
        let mut program = ExecProgram::new();
        program.push(sys::BUG_BASE, &[trigger_key("t/npd")]);
        let outcome = session.run_program(&program, 10_000_000).unwrap();
        assert!(outcome.reports.iter().any(|r| r.class == BugClass::NullDeref));
        assert!(matches!(outcome.exit, RunExit::Faulted { .. }));
        // The machine faulted; reset recovers it.
        session.reset().unwrap();
        let mut clean = ExecProgram::new();
        clean.push(sys::NOP, &[]);
        let outcome = session.run_program(&clean, 10_000_000).unwrap();
        assert_eq!(outcome.exit, RunExit::AllIdle);
    }

    #[test]
    fn global_oob_detected_by_c_missed_by_d() {
        let bug = BugSpec::new("t/goob", BugKind::GlobalOob);
        // EMBSAN-C: compile-time redzones catch it.
        let mut session =
            session_for(SanMode::SanCall, ProbeMode::CompileTime, std::slice::from_ref(&bug));
        let mut program = ExecProgram::new();
        program.push(sys::BUG_BASE, &[trigger_key("t/goob")]);
        let outcome = session.run_program(&program, 10_000_000).unwrap();
        assert!(
            outcome.reports.iter().any(|r| r.class == BugClass::GlobalOob),
            "EMBSAN-C must detect global OOB: {:?}",
            outcome.reports
        );
        // EMBSAN-D: no redzones around globals — undetected (Table 2).
        let mut session =
            session_for(SanMode::None, ProbeMode::DynamicSource, std::slice::from_ref(&bug));
        let outcome = session.run_program(&program, 10_000_000).unwrap();
        assert!(outcome.reports.is_empty(), "EMBSAN-D must miss global OOB: {:?}", outcome.reports);
    }

    #[test]
    fn race_detected_with_kcsan_on_smp() {
        let bug = BugSpec::new("t/race", BugKind::Race);
        let opts = BuildOptions::new(Arch::X86v).san(SanMode::SanCall).cpus(2);
        let image = os::emblinux::build(&opts, std::slice::from_ref(&bug)).unwrap();
        let specs = reference_specs().unwrap();
        let artifacts = probe(&image, ProbeMode::CompileTime, None).unwrap();
        let mut session = Session::with_cpus(&image, &specs, &artifacts, 2).unwrap();
        session.run_to_ready(200_000_000).unwrap();
        let mut program = ExecProgram::new();
        // Several trigger calls: sampling needs a few chances.
        for _ in 0..8 {
            program.push(sys::BUG_BASE, &[trigger_key("t/race")]);
        }
        let outcome = session.run_program(&program, 100_000_000).unwrap();
        assert!(
            outcome.reports.iter().any(|r| r.class == BugClass::Race),
            "reports: {:?}",
            outcome.reports
        );
    }
}
