//! Sanitizer reports: classification, KASAN-style rendering, deduplication.

use embsan_asm::image::FirmwareImage;

/// Classification of a detected violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BugClass {
    /// Out-of-bounds access on a heap object (into slack or unallocated
    /// heap).
    HeapOob,
    /// Out-of-bounds access into a global object's redzone.
    GlobalOob,
    /// Access to freed (quarantined) memory.
    Uaf,
    /// Second free of an already-freed chunk.
    DoubleFree,
    /// Free of an address that was never allocated.
    InvalidFree,
    /// Dereference inside the null guard page.
    NullDeref,
    /// Concurrent conflicting accesses (KCSAN).
    Race,
    /// Access to unmapped or otherwise wild memory.
    WildAccess,
    /// Read of never-initialized heap memory (the UMSAN extension engine).
    UninitRead,
}

impl BugClass {
    /// Short label used in report headers.
    pub fn label(self) -> &'static str {
        match self {
            BugClass::HeapOob => "slab-out-of-bounds",
            BugClass::GlobalOob => "global-out-of-bounds",
            BugClass::Uaf => "use-after-free",
            BugClass::DoubleFree => "double-free",
            BugClass::InvalidFree => "invalid-free",
            BugClass::NullDeref => "null-ptr-deref",
            BugClass::Race => "data-race",
            BugClass::WildAccess => "wild-memory-access",
            BugClass::UninitRead => "uninit-read",
        }
    }

    /// Stable wire code for journal serialization. Codes are append-only:
    /// never renumber an existing class, or resumed campaigns written by an
    /// older build would mis-seed their dedup state.
    pub fn code(self) -> u8 {
        match self {
            BugClass::HeapOob => 0,
            BugClass::GlobalOob => 1,
            BugClass::Uaf => 2,
            BugClass::DoubleFree => 3,
            BugClass::InvalidFree => 4,
            BugClass::NullDeref => 5,
            BugClass::Race => 6,
            BugClass::WildAccess => 7,
            BugClass::UninitRead => 8,
        }
    }

    /// Inverse of [`BugClass::code`]; `None` for unknown codes (a journal
    /// written by a newer build).
    pub fn from_code(code: u8) -> Option<BugClass> {
        Some(match code {
            0 => BugClass::HeapOob,
            1 => BugClass::GlobalOob,
            2 => BugClass::Uaf,
            3 => BugClass::DoubleFree,
            4 => BugClass::InvalidFree,
            5 => BugClass::NullDeref,
            6 => BugClass::Race,
            7 => BugClass::WildAccess,
            8 => BugClass::UninitRead,
            _ => return None,
        })
    }

    /// The bug-class label used by the paper's tables.
    pub fn paper_class(self) -> &'static str {
        match self {
            BugClass::HeapOob | BugClass::GlobalOob | BugClass::WildAccess => "OOB Access",
            BugClass::Uaf => "UAF",
            BugClass::DoubleFree | BugClass::InvalidFree => "Double Free",
            BugClass::NullDeref => "Null-pointer-deref",
            BugClass::Race => "Race",
            BugClass::UninitRead => "Uninit Read",
        }
    }
}

impl std::fmt::Display for BugClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Heap-chunk context attached to heap reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkInfo {
    /// Object address.
    pub addr: u32,
    /// Requested size.
    pub size: u32,
    /// Allocation site (guest pc).
    pub alloc_pc: u32,
    /// Free site, if the chunk was freed.
    pub free_pc: Option<u32>,
}

/// The second party of a data race.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceOther {
    /// Program counter of the conflicting access.
    pub pc: u32,
    /// vCPU of the conflicting access.
    pub cpu: usize,
    /// Whether the conflicting access was a write.
    pub is_write: bool,
}

/// One sanitizer report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Violation class.
    pub class: BugClass,
    /// Faulting guest address.
    pub addr: u32,
    /// Access width in bytes (0 when not applicable).
    pub size: u8,
    /// Whether the access was a write.
    pub is_write: bool,
    /// Program counter of the access.
    pub pc: u32,
    /// vCPU index.
    pub cpu: usize,
    /// Heap-chunk context, when known.
    pub chunk: Option<ChunkInfo>,
    /// Race second party, for [`BugClass::Race`].
    pub other: Option<RaceOther>,
}

impl Report {
    /// The key used for deduplication: class plus the reporting pc.
    ///
    /// Real deployments dedup by stack hash; a single frame is the
    /// equivalent here since guest functions are small.
    pub fn dedup_key(&self) -> (BugClass, u32) {
        (self.class, self.pc)
    }

    /// A stable 64-bit classified signature for cross-campaign
    /// deduplication: FNV-1a over the class code and the access shape
    /// (pc, addr, size, direction). Unlike [`Report::dedup_key`] this
    /// folds in the faulting address so two campaigns of the same firmware
    /// that hit the same site through different objects still collide only
    /// when the whole access shape matches, and it serializes as one u64
    /// for store keys and wire formats.
    pub fn signature(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        let mut eat = |byte: u8| {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        };
        eat(self.class.code());
        for byte in self.pc.to_le_bytes() {
            eat(byte);
        }
        for byte in self.addr.to_le_bytes() {
            eat(byte);
        }
        eat(self.size);
        eat(u8::from(self.is_write));
        hash
    }

    /// Renders a KASAN-style textual report; with an unstripped firmware
    /// image, addresses are symbolized to function names.
    pub fn render(&self, image: Option<&FirmwareImage>) -> String {
        let sym = |addr: u32| -> String {
            image
                .and_then(|img| img.function_at(addr))
                .map(|s| format!("{addr:#010x} ({}+{:#x})", s.name, addr - s.addr))
                .unwrap_or_else(|| format!("{addr:#010x}"))
        };
        let mut out = String::new();
        out.push_str("==================================================================\n");
        out.push_str(&format!("BUG: EMBSAN: {} in {}\n", self.class, sym(self.pc)));
        out.push_str(&format!(
            "{} of size {} at addr {:#010x} on cpu {}\n",
            if self.is_write { "Write" } else { "Read" },
            self.size,
            self.addr,
            self.cpu
        ));
        if let Some(chunk) = &self.chunk {
            out.push_str(&format!(
                "The buggy address belongs to the object at {:#010x} of size {}\n",
                chunk.addr, chunk.size
            ));
            out.push_str(&format!("Allocated at {}\n", sym(chunk.alloc_pc)));
            if let Some(free_pc) = chunk.free_pc {
                out.push_str(&format!("Freed at {}\n", sym(free_pc)));
            }
        }
        if let Some(other) = &self.other {
            out.push_str(&format!(
                "Racing {} at {} on cpu {}\n",
                if other.is_write { "write" } else { "read" },
                sym(other.pc),
                other.cpu
            ));
        }
        out.push_str("==================================================================\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            class: BugClass::Uaf,
            addr: 0x20_0040,
            size: 4,
            is_write: false,
            pc: 0x1_0100,
            cpu: 0,
            chunk: Some(ChunkInfo {
                addr: 0x20_0040,
                size: 24,
                alloc_pc: 0x1_0050,
                free_pc: Some(0x1_0060),
            }),
            other: None,
        }
    }

    #[test]
    fn renders_kasan_style_text() {
        let text = sample().render(None);
        assert!(text.contains("BUG: EMBSAN: use-after-free"));
        assert!(text.contains("Read of size 4 at addr 0x00200040"));
        assert!(text.contains("Allocated at 0x00010050"));
        assert!(text.contains("Freed at 0x00010060"));
    }

    #[test]
    fn dedup_key_ignores_addresses() {
        let a = sample();
        let mut b = sample();
        b.addr = 0x20_0F00; // different chunk, same pc
        assert_eq!(a.dedup_key(), b.dedup_key());
        let mut c = sample();
        c.pc = 0x1_0104;
        assert_ne!(a.dedup_key(), c.dedup_key());
    }

    #[test]
    fn signature_separates_access_shapes() {
        let a = sample();
        let same = sample();
        assert_eq!(a.signature(), same.signature());
        let mut other_addr = sample();
        other_addr.addr = 0x20_0F00;
        assert_ne!(a.signature(), other_addr.signature(), "addr is part of the shape");
        let mut other_dir = sample();
        other_dir.is_write = true;
        assert_ne!(a.signature(), other_dir.signature());
        let mut other_chunk = sample();
        other_chunk.chunk = None; // context is not part of the shape
        assert_eq!(a.signature(), other_chunk.signature());
    }

    #[test]
    fn paper_classes() {
        assert_eq!(BugClass::HeapOob.paper_class(), "OOB Access");
        assert_eq!(BugClass::GlobalOob.paper_class(), "OOB Access");
        assert_eq!(BugClass::DoubleFree.paper_class(), "Double Free");
        assert_eq!(BugClass::Race.paper_class(), "Race");
    }
}
