//! The Common Sanitizer Runtime (§3.3).
//!
//! [`EmbsanRuntime`] implements the emulator's [`ExecHook`]: depending on
//! the attach mode it either receives *hypercalls* from the dummy sanitizer
//! library (EMBSAN-C — the translated firmware calls straight into the
//! host) or arms *translation-template probes* on every load/store plus
//! call/return interception of the allocator functions named in the
//! platform spec (EMBSAN-D). Both paths feed the same engines over the same
//! unified shadow memory.
//!
//! The runtime is *passive* during boot; the session applies the prober's
//! init routine at the ready point and activates it — precisely the
//! paper's "the sanitizer will initialize upon the firmware reaching the
//! ready-to-run state".

pub mod kasan;
pub mod kcsan;
pub mod shadow;
pub mod umsan;

use std::collections::{HashMap, HashSet};

use embsan_dsl::{
    FuncRole, InitProgram, InitStep, PlatformSpec, PointKind, PoisonKind, ReadyPoint, SanitizerSpec,
};
use embsan_emu::bus::{MemAccess, MemKind};
use embsan_emu::cpu::CpuView;
use embsan_emu::hook::{ExecHook, HookAction, HookConfig};
use embsan_emu::isa::Reg;
use embsan_emu::profile::Arch;
use embsan_emu::Fault;

use crate::health::{Degradation, HealthCounters};
use crate::report::{BugClass, Report};
use kasan::{KasanConfig, KasanEngine};
use kcsan::{KcsanConfig, KcsanEngine, KcsanOutcome};
use shadow::{code, ShadowMemory};
use umsan::UmsanEngine;

/// How the runtime attaches to the firmware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttachMode {
    /// EMBSAN-C: the firmware's compile-time instrumentation hypercalls in.
    CompileTime,
    /// EMBSAN-D: translation-spliced probes plus dynamic function
    /// interception.
    Dynamic,
}

/// Errors constructing a runtime from DSL specifications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The platform spec references an unknown architecture or register.
    BadPlatform(String),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::BadPlatform(msg) => write!(f, "bad platform spec: {msg}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// A resolved (register-level) dynamic function hook.
#[derive(Debug, Clone)]
struct ResolvedHook {
    addr: u32,
    role: FuncRole,
    /// `(semantic name, ABI argument index)`.
    params: Vec<(String, u8)>,
    returns: bool,
}

/// Platform details resolved from the DSL to emulator-level types.
#[derive(Debug, Clone)]
pub struct ResolvedPlatform {
    /// Architecture.
    pub arch: Arch,
    /// RAM range `(base, size)`.
    pub ram: (u32, u32),
    /// Hypercall argument registers.
    pub hypercall_args: Vec<Reg>,
    /// Register carrying addresses for check hypercalls.
    pub check_reg: Reg,
    /// Ready-point description.
    pub ready: Option<ReadyPoint>,
    hooks: Vec<ResolvedHook>,
}

impl ResolvedPlatform {
    /// Resolves a platform spec.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BadPlatform`] on unknown architecture or
    /// register names.
    pub fn resolve(spec: &PlatformSpec) -> Result<ResolvedPlatform, RuntimeError> {
        let arch = match spec.arch.as_str() {
            "armv" => Arch::Armv,
            "mipsv" => Arch::Mipsv,
            "x86v" => Arch::X86v,
            other => return Err(RuntimeError::BadPlatform(format!("unknown arch `{other}`"))),
        };
        let reg = |name: &str| -> Result<Reg, RuntimeError> {
            Reg::parse(name)
                .ok_or_else(|| RuntimeError::BadPlatform(format!("unknown register `{name}`")))
        };
        let hypercall_args =
            spec.hypercall_args.iter().map(|n| reg(n)).collect::<Result<Vec<_>, _>>()?;
        let check_reg =
            if spec.check_reg.is_empty() { Reg::SCRATCH } else { reg(&spec.check_reg)? };
        let hooks = spec
            .funcs
            .iter()
            .map(|f| ResolvedHook {
                addr: f.addr as u32,
                role: f.role,
                params: f.params.clone(),
                returns: f.returns.is_some(),
            })
            .collect();
        Ok(ResolvedPlatform {
            arch,
            ram: (spec.ram.0 as u32, (spec.ram.1 - spec.ram.0) as u32),
            hypercall_args,
            check_reg,
            ready: spec.ready,
            hooks,
        })
    }
}

/// Which engines a merged sanitizer spec enables, plus their parameters.
#[derive(Debug, Clone, Copy)]
pub struct EngineSelection {
    /// KASAN parameters, if enabled.
    pub kasan: Option<KasanConfig>,
    /// KCSAN parameters, if enabled.
    pub kcsan: Option<KcsanConfig>,
    /// Whether the UMSAN extension engine is enabled.
    pub umsan: bool,
}

impl EngineSelection {
    /// Derives the selection from a (possibly merged) sanitizer spec: an
    /// engine is enabled when the spec's name or argument annotations
    /// mention it.
    pub fn from_spec(spec: &SanitizerSpec) -> EngineSelection {
        let mut names: HashSet<&str> = spec.name.split('_').collect();
        for point in &spec.points {
            for arg in &point.args {
                for source in &arg.sources {
                    names.insert(source);
                }
            }
        }
        let kasan = names.contains("kasan").then(|| KasanConfig {
            quarantine_bytes: spec.resource("quarantine", "bytes").unwrap_or(256 * 1024),
            heap_prepoison: true,
        });
        let kcsan = names.contains("kcsan").then(|| KcsanConfig {
            slots: spec.resource("watchpoints", "slots").unwrap_or(8) as usize,
            window: spec.resource("watchpoints", "window").unwrap_or(600),
            sample: spec.resource("watchpoints", "sample").unwrap_or(61).max(1),
        });
        EngineSelection { kasan, kcsan, umsan: names.contains("umsan") }
    }
}

/// Process-wide state identity counter; see [`RuntimeState`].
static NEXT_STATE_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// Opaque snapshot of the runtime's mutable sanitizer state, captured at
/// the ready point and restored on every fuzzer reset.
#[derive(Clone)]
pub struct RuntimeState {
    /// Unique per-capture identity (clones share it — their contents are
    /// identical). Keys the dirty-bounded fast path of
    /// [`EmbsanRuntime::restore_state_from`], mirroring snapshot ids in the
    /// emulator.
    id: u64,
    shadow: ShadowMemory,
    kasan: Option<KasanEngine>,
    kcsan: Option<KcsanEngine>,
    umsan: Option<UmsanEngine>,
    pending: Vec<Vec<PendingCall>>,
    suppress: Vec<u32>,
    active: bool,
}

impl RuntimeState {
    /// Folds the contents of the big sanitizer planes into `hash` (FNV-1a).
    /// Part of the base-image identity: two sessions whose RAM, CPU state
    /// *and* sanitizer planes hash alike can share one copy-on-write base.
    pub(crate) fn fold_plane_hash(&self, mut hash: u64) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut fold = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(PRIME);
            }
        };
        fold(&self.shadow.plane_to_vec());
        if let Some(umsan) = &self.umsan {
            fold(&umsan.plane_to_vec());
        }
        hash
    }

    /// Total bytes of the big sanitizer planes (shared-base accounting).
    pub(crate) fn plane_bytes(&self) -> usize {
        self.shadow.plane_bytes() + self.umsan.as_ref().map_or(0, UmsanEngine::plane_bytes)
    }
}

#[derive(Debug, Clone)]
struct PendingCall {
    hook_index: usize,
    ret_to: u32,
    args: [u32; 4],
}

/// The Common Sanitizer Runtime: an [`ExecHook`] hosting the KASAN and
/// KCSAN engines.
pub struct EmbsanRuntime {
    platform: ResolvedPlatform,
    mode: AttachMode,
    shadow: ShadowMemory,
    kasan: Option<KasanEngine>,
    kcsan: Option<KcsanEngine>,
    umsan: Option<UmsanEngine>,
    active: bool,
    ready_seen: bool,
    pending: Vec<Vec<PendingCall>>,
    suppress: Vec<u32>,
    /// Id of the last [`RuntimeState`] fully installed; while it matches the
    /// state being restored, the shadow/uninit planes need only dirty-page
    /// copies.
    state_baseline: Option<u64>,
    stall_watch: HashMap<u64, (u32, u8)>,
    reports: Vec<Report>,
    new_reports: Vec<Report>,
    dedup: HashSet<(BugClass, u32, u64)>,
    /// Stop the machine on the first report (off by default: sanitizers
    /// report and continue).
    pub stop_on_report: bool,
    /// When `false`, reports bypass deduplication and the cumulative list:
    /// they appear only in the per-run batch. Used by crash triage, which
    /// must re-observe already-known bugs while minimizing reproducers.
    pub dedup_enabled: bool,
    checks_performed: u64,
    /// Checks that fell off the inline shadow fast path onto the byte-wise
    /// slow walk (partial granules, poisoned neighborhoods, MMIO).
    slow_path_checks: u64,
    /// Monotonic degradation counters (like reports, not part of
    /// [`RuntimeState`]: they describe the whole campaign).
    health: HealthCounters,
    /// Bounded log of degradation events (the counters stay exact even
    /// after the log caps out).
    degradations: Vec<Degradation>,
    tracer: embsan_obs::Tracer,
    profiler: embsan_obs::Profiler,
}

/// Cap on the retained [`Degradation`] event log; beyond this only the
/// [`HealthCounters`] keep counting.
const DEGRADATION_LOG_CAP: usize = 256;

impl std::fmt::Debug for EmbsanRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EmbsanRuntime")
            .field("mode", &self.mode)
            .field("active", &self.active)
            .field("reports", &self.reports.len())
            .finish_non_exhaustive()
    }
}

impl EmbsanRuntime {
    /// Creates a runtime from a merged sanitizer spec and a platform spec.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] if the platform spec cannot be resolved.
    pub fn new(
        spec: &SanitizerSpec,
        platform_spec: &PlatformSpec,
        cpus: usize,
    ) -> Result<EmbsanRuntime, RuntimeError> {
        let platform = ResolvedPlatform::resolve(platform_spec)?;
        let selection = EngineSelection::from_spec(spec);
        let mode = match platform_spec.instrumented.as_str() {
            "sancall" => AttachMode::CompileTime,
            _ => AttachMode::Dynamic,
        };
        // §3.1: the runtime only intercepts what the merged spec asks for.
        let wants_insns = spec.point(PointKind::Insn, "load").is_some()
            || spec.point(PointKind::Insn, "store").is_some();
        if !wants_insns {
            return Err(RuntimeError::BadPlatform(
                "merged spec has no load/store interception points".to_string(),
            ));
        }
        Ok(EmbsanRuntime {
            shadow: ShadowMemory::new(platform.ram.0, platform.ram.1),
            kasan: selection.kasan.map(KasanEngine::new),
            kcsan: selection.kcsan.map(KcsanEngine::new),
            umsan: selection.umsan.then(|| UmsanEngine::new(platform.ram.0, platform.ram.1)),
            platform,
            mode,
            active: false,
            ready_seen: false,
            pending: vec![Vec::new(); cpus],
            suppress: vec![0; cpus],
            state_baseline: None,
            stall_watch: HashMap::new(),
            reports: Vec::new(),
            new_reports: Vec::new(),
            dedup: HashSet::new(),
            stop_on_report: false,
            dedup_enabled: true,
            checks_performed: 0,
            slow_path_checks: 0,
            health: HealthCounters::default(),
            degradations: Vec::new(),
            tracer: embsan_obs::Tracer::disabled(),
            profiler: embsan_obs::Profiler::disabled(),
        })
    }

    /// Attaches an observability tracer (shadow checks, allocator
    /// intercepts, reports). Sessions share one tracer between the
    /// machine and the runtime so the event stream is totally ordered.
    pub fn set_tracer(&mut self, tracer: embsan_obs::Tracer) {
        self.tracer = tracer;
    }

    /// Attaches a hot-path profiler charging shadow checks to
    /// [`embsan_obs::Phase::Check`].
    pub fn set_profiler(&mut self, profiler: embsan_obs::Profiler) {
        self.profiler = profiler;
    }

    /// The attach mode.
    pub fn mode(&self) -> AttachMode {
        self.mode
    }

    /// The hook configuration the machine must install for this runtime —
    /// this is what regenerates the translation templates (§3.3).
    pub fn hook_config(&self) -> HookConfig {
        match self.mode {
            AttachMode::CompileTime => {
                HookConfig { hypercalls: true, mem: false, calls: false, blocks: false }
            }
            AttachMode::Dynamic => {
                HookConfig { hypercalls: false, mem: true, calls: true, blocks: false }
            }
        }
    }

    /// Whether the firmware has signalled the ready-to-run state.
    pub fn ready_seen(&self) -> bool {
        self.ready_seen
    }

    /// Whether the runtime is actively sanitizing.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Activates sanitizing (the session calls this at the ready point).
    pub fn activate(&mut self) {
        self.active = true;
    }

    /// Total checks performed (for overhead accounting).
    pub fn checks_performed(&self) -> u64 {
        self.checks_performed
    }

    /// Checks served by the byte-wise slow path (a subset of
    /// [`EmbsanRuntime::checks_performed`]; the rest proved clean inline).
    pub fn slow_path_checks(&self) -> u64 {
        self.slow_path_checks
    }

    /// All reports so far (deduplicated).
    pub fn reports(&self) -> &[Report] {
        &self.reports
    }

    /// Feeds statically ranked race-candidate addresses (the
    /// `embsan-analysis` lockset pass) to the KCSAN engine's watchpoint
    /// prioritization. No-op when KCSAN is not selected.
    pub fn set_race_priorities(&mut self, addrs: &[u32]) {
        if let Some(kcsan) = &mut self.kcsan {
            kcsan.set_priorities(addrs.iter().copied());
        }
    }

    /// Number of installed KCSAN priority addresses.
    pub fn race_priority_count(&self) -> usize {
        self.kcsan.as_ref().map_or(0, |k| k.priorities().len())
    }

    /// Takes the reports recorded since the last call.
    pub fn take_new_reports(&mut self) -> Vec<Report> {
        std::mem::take(&mut self.new_reports)
    }

    /// Campaign-wide degradation counters (never reset by state restores).
    pub fn health(&self) -> &HealthCounters {
        &self.health
    }

    /// The bounded degradation event log (see [`HealthCounters`] for exact
    /// totals once the log caps out).
    pub fn degradations(&self) -> &[Degradation] {
        &self.degradations
    }

    fn note_degradation(&mut self, event: Degradation) {
        match &event {
            Degradation::QuarantineEvicted { chunks } => {
                self.health.quarantine_evictions += chunks;
            }
            Degradation::ShadowClipped { granules, .. } => {
                self.health.shadow_clips += u64::from(*granules);
            }
            Degradation::SpecDrift { .. } => self.health.spec_drift += 1,
        }
        if self.degradations.len() < DEGRADATION_LOG_CAP {
            self.degradations.push(event);
        }
    }

    /// Folds quarantine-pressure evictions accumulated inside the (restorable)
    /// KASAN engine into the campaign-wide health counters. Called after every
    /// free so the counters survive fuzzer state restores.
    fn drain_kasan_pressure(&mut self) {
        let chunks = self.kasan.as_mut().map_or(0, KasanEngine::take_pressure_evictions);
        if chunks > 0 {
            self.note_degradation(Degradation::QuarantineEvicted { chunks });
        }
    }

    /// Audits the resolved probe spec against the firmware's text range
    /// `[text_base, text_base + text_size)`. Hooks whose address falls
    /// outside can never fire — that is probe-spec drift (the spec was
    /// written for a different firmware build), recorded as a
    /// [`Degradation::SpecDrift`] per offending hook rather than an error:
    /// the remaining hooks still provide partial coverage.
    ///
    /// Returns the number of drifted hooks found.
    pub fn audit_probe_spec(&mut self, text_base: u32, text_size: u32) -> usize {
        let in_text = |addr: u32| addr >= text_base && addr < text_base.saturating_add(text_size);
        let drifted: Vec<(String, u32)> = self
            .platform
            .hooks
            .iter()
            .filter(|hook| !in_text(hook.addr))
            .map(|hook| (format!("{:?} hook", hook.role), hook.addr))
            .collect();
        let count = drifted.len();
        for (what, addr) in drifted {
            self.note_degradation(Degradation::SpecDrift { what, addr });
        }
        count
    }

    /// The dedup keys accumulated so far, sorted into a canonical order for
    /// journal serialization (`HashSet` iteration order is nondeterministic).
    pub fn dedup_keys(&self) -> Vec<(BugClass, u32, u64)> {
        let mut keys: Vec<_> = self.dedup.iter().copied().collect();
        keys.sort_by_key(|&(class, pc, sig)| (class.code(), pc, sig));
        keys
    }

    /// Re-seeds the dedup set from journal-recovered keys, so a resumed
    /// campaign suppresses re-discoveries exactly like the original run.
    pub fn seed_dedup(&mut self, keys: impl IntoIterator<Item = (BugClass, u32, u64)>) {
        self.dedup.extend(keys);
    }

    /// Executes a prober-compiled init routine: shadow setup, boot-time
    /// allocation replay, global registration, then activation on `ready`.
    pub fn apply_init(&mut self, init: &InitProgram) {
        for step in &init.steps {
            match *step {
                InitStep::Poison { start, end, kind } => {
                    let poison_code = match kind {
                        PoisonKind::HeapRedzone => code::HEAP,
                        PoisonKind::GlobalRedzone => code::GLOBAL_REDZONE,
                        PoisonKind::Freed => code::FREED,
                        PoisonKind::Invalid => code::INVALID,
                    };
                    let clipped = self.shadow.poison(start as u32, end as u32, poison_code);
                    if clipped > 0 {
                        self.note_degradation(Degradation::ShadowClipped {
                            start: start as u32,
                            end: end as u32,
                            granules: clipped,
                        });
                    }
                }
                InitStep::Unpoison { start, end } => {
                    let clipped = self.shadow.poison(start as u32, end as u32, 0);
                    if clipped > 0 {
                        self.note_degradation(Degradation::ShadowClipped {
                            start: start as u32,
                            end: end as u32,
                            granules: clipped,
                        });
                    }
                }
                InitStep::Alloc { addr, size, site } => {
                    if !self.shadow.covers(addr as u32) {
                        self.note_degradation(Degradation::SpecDrift {
                            what: "boot-time allocation".to_string(),
                            addr: addr as u32,
                        });
                    }
                    if let Some(kasan) = &mut self.kasan {
                        kasan.on_alloc(&mut self.shadow, addr as u32, size as u32, site as u32);
                    }
                    if let Some(umsan) = &mut self.umsan {
                        // Boot-time allocations are treated as initialized:
                        // the dry run cannot replay which bytes boot code
                        // wrote, and flagging firmware-internal state would
                        // be noise.
                        umsan.on_alloc(addr as u32, size as u32, site as u32);
                        umsan.mark_initialized(addr as u32, size as u32);
                    }
                }
                InitStep::Global { addr, size, redzone } => {
                    if !self.shadow.covers(addr as u32) {
                        self.note_degradation(Degradation::SpecDrift {
                            what: "global registration".to_string(),
                            addr: addr as u32,
                        });
                    }
                    if let Some(kasan) = &mut self.kasan {
                        kasan.on_global(&mut self.shadow, addr as u32, size as u32, redzone as u32);
                    }
                }
                InitStep::Ready => self.activate(),
            }
        }
    }

    /// Freezes the big sanitizer planes (shadow, uninit bits) as immutable
    /// shared bases and re-forks the live planes from them. Called once at
    /// the ready point, *before* capturing the baseline state: the capture
    /// then clones an empty-overlay fork, so baseline and live plane share
    /// one backing allocation and per-iteration restores cost O(dirty).
    pub fn freeze_planes(&mut self) {
        self.shadow.freeze_plane();
        if let Some(umsan) = &mut self.umsan {
            umsan.freeze_plane();
        }
    }

    /// Private overlay bytes the live sanitizer planes hold beyond their
    /// shared bases (0 until a plane page diverges from the frozen base).
    pub fn plane_overlay_bytes(&self) -> usize {
        self.shadow.overlay_bytes() + self.umsan.as_ref().map_or(0, UmsanEngine::overlay_bytes)
    }

    /// Forgets which [`RuntimeState`] was installed last, forcing the next
    /// [`EmbsanRuntime::restore_state_from`] onto the full-copy path. Used
    /// when a session adopts a base image captured by another worker.
    pub fn clear_state_baseline(&mut self) {
        self.state_baseline = None;
    }

    /// Captures the mutable sanitizer state (for fuzzer resets paired with
    /// machine snapshots). Reports and dedup history are *not* part of the
    /// state — they accumulate across resets.
    pub fn state(&self) -> RuntimeState {
        RuntimeState {
            id: NEXT_STATE_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            shadow: self.shadow.clone(),
            kasan: self.kasan.clone(),
            kcsan: self.kcsan.clone(),
            umsan: self.umsan.clone(),
            pending: self.pending.clone(),
            suppress: self.suppress.clone(),
            active: self.active,
        }
    }

    /// Restores state captured by [`EmbsanRuntime::state`].
    pub fn restore_state(&mut self, state: RuntimeState) {
        self.state_baseline = Some(state.id);
        self.shadow = state.shadow;
        self.kasan = state.kasan;
        self.kcsan = state.kcsan;
        self.umsan = state.umsan;
        self.pending = state.pending;
        self.suppress = state.suppress;
        self.active = state.active;
        self.stall_watch.clear();
        // The moved-in planes carry the dirty bits of the *capture* moment;
        // clear them so the invariant starts exact (stale marks would only
        // cost extra copying, never correctness, but keep the map minimal).
        self.shadow.clear_dirty();
        if let Some(umsan) = &mut self.umsan {
            umsan.clear_dirty();
        }
    }

    /// Borrowing restore for the per-iteration reset path: installs
    /// `state` without consuming it, reusing this runtime's allocations.
    /// When `state` is the same capture that was installed last time, the
    /// big shadow/uninit planes are restored by copying only pages dirtied
    /// since — O(touched state) instead of O(RAM).
    pub fn restore_state_from(&mut self, state: &RuntimeState) {
        let fast = self.state_baseline == Some(state.id);
        if self.shadow.same_shape(&state.shadow) {
            self.shadow.restore_from(&state.shadow, fast);
        } else {
            self.shadow = state.shadow.clone();
            self.shadow.clear_dirty();
        }
        match (&mut self.kasan, &state.kasan) {
            (Some(live), Some(base)) => live.restore_from(base),
            (live, base) => *live = base.clone(),
        }
        match (&mut self.kcsan, &state.kcsan) {
            (Some(live), Some(base)) => live.restore_from(base),
            (live, base) => *live = base.clone(),
        }
        match (&mut self.umsan, &state.umsan) {
            (Some(live), Some(base)) if live.same_shape(base) => live.restore_from(base, fast),
            (live, base) => *live = base.clone(),
        }
        self.pending.clone_from(&state.pending);
        self.suppress.clone_from(&state.suppress);
        self.active = state.active;
        self.stall_watch.clear();
        self.state_baseline = Some(state.id);
    }

    /// Heuristic guest backtrace signature: scan the top of the stack for
    /// text addresses (the same trick KASAN uses on architectures without
    /// reliable frame pointers). Distinguishes reports whose immediate pc
    /// falls in shared runtime code (e.g. the dummy library's `__san_free`).
    fn call_site_signature(cpu: &mut CpuView<'_>) -> u64 {
        let (rom_base, rom_size) = cpu.bus.rom_range();
        let sp = cpu.reg(Reg::SP);
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        let mut frames = 0;
        for slot in 0..64u32 {
            let Ok(word) = cpu.read_mem(sp.wrapping_add(slot * 4), 4) else { break };
            if word >= rom_base && word < rom_base + rom_size {
                hash = (hash ^ u64::from(word)).wrapping_mul(0x0000_0100_0000_01B3);
                frames += 1;
                if frames == 4 {
                    break;
                }
            }
        }
        hash
    }

    fn record(&mut self, report: Report) -> HookAction {
        self.record_with_signature(report, 0)
    }

    fn record_with_signature(&mut self, report: Report, signature: u64) -> HookAction {
        let (class, pc) = report.dedup_key();
        // Recorded before deduplication, so the event stream stays a pure
        // function of the current execution (dedup depends on campaign
        // history). Guarded: the label allocates.
        if self.tracer.is_enabled() {
            self.tracer.record(embsan_obs::EventKind::Report { class: class.to_string(), pc });
        }
        if !self.dedup_enabled {
            self.new_reports.push(report);
        } else if self.dedup.insert((class, pc, signature)) {
            self.reports.push(report.clone());
            self.new_reports.push(report);
        }
        if self.stop_on_report {
            HookAction::Stop
        } else {
            HookAction::Continue
        }
    }

    /// The common check path for both attach modes.
    ///
    /// `written_value` is the value a store is about to write, when the
    /// probe knows it (EMBSAN-D memory probes): the store completes before
    /// its stall window opens, so the KCSAN value-change baseline must be
    /// the written value, not the pre-store memory content.
    #[allow(clippy::too_many_arguments)]
    fn check_access(
        &mut self,
        cpu: &mut CpuView<'_>,
        addr: u32,
        size: u8,
        is_write: bool,
        atomic: bool,
        pc: u32,
        written_value: Option<u32>,
    ) -> HookAction {
        // Branch around scope construction: a ProfileScope local would add
        // drop glue to every exit edge of this multi-million-calls-per-
        // second function, which alone breaks the ≤2% disabled budget.
        if self.profiler.is_enabled() {
            let _scope = self.profiler.scope(embsan_obs::Phase::Check);
            return self.check_access_inner(cpu, addr, size, is_write, atomic, pc, written_value);
        }
        self.check_access_inner(cpu, addr, size, is_write, atomic, pc, written_value)
    }

    #[allow(clippy::too_many_arguments)]
    fn check_access_inner(
        &mut self,
        cpu: &mut CpuView<'_>,
        addr: u32,
        size: u8,
        is_write: bool,
        atomic: bool,
        pc: u32,
        written_value: Option<u32>,
    ) -> HookAction {
        self.checks_performed += 1;
        self.tracer.record(embsan_obs::EventKind::ShadowCheck { addr, size, write: is_write });
        let cpu_index = cpu.cpu_index();
        if self.kasan.is_some() {
            // Inline fast path: a provably-clean access costs one compare
            // against the valid-granule shape; everything else (partial
            // granules, poison, MMIO) drops to the out-of-line byte-wise
            // walk and is counted.
            if !self.shadow.check_fast(addr, size) {
                self.slow_path_checks += 1;
                if let Err(violation) = self.shadow.check_slow(addr, size) {
                    let report = self.kasan.as_ref().map(|k| {
                        k.classify(
                            violation.bad_addr,
                            violation.code,
                            size,
                            is_write,
                            pc,
                            cpu_index,
                        )
                    });
                    if let Some(report) = report {
                        return self.record(report);
                    }
                }
            }
        }
        if let Some(umsan) = &mut self.umsan {
            if is_write {
                umsan.on_store(addr, size);
            } else if let Some(report) = umsan.on_load(addr, size, pc, cpu_index) {
                return self.record(report);
            }
        }
        if !atomic {
            if let Some(kcsan) = &mut self.kcsan {
                let value_now =
                    written_value.unwrap_or_else(|| cpu.read_mem(addr, size.min(4)).unwrap_or(0));
                match kcsan.on_access(addr, size, is_write, cpu_index, pc, value_now) {
                    KcsanOutcome::Pass => {}
                    KcsanOutcome::Watch { token, window } => {
                        self.stall_watch.insert(token, (addr, size));
                        return HookAction::Stall { instrs: window, token };
                    }
                    KcsanOutcome::Race(report) => return self.record(report),
                }
            }
        }
        HookAction::Continue
    }
}

impl ExecHook for EmbsanRuntime {
    fn mem_access(&mut self, cpu: &mut CpuView<'_>, access: &MemAccess) -> HookAction {
        if !self.active || self.suppress[access.cpu] > 0 {
            return HookAction::Continue;
        }
        // Device memory is not sanitized.
        if cpu.bus.is_mmio(access.addr) {
            return HookAction::Continue;
        }
        self.check_access(
            cpu,
            access.addr,
            access.size,
            access.kind.is_write(),
            access.kind == MemKind::AtomicRmw,
            access.pc,
            access.kind.is_write().then_some(access.value),
        )
    }

    fn hypercall(&mut self, cpu: &mut CpuView<'_>, nr: u32) -> HookAction {
        use embsan_asm::sanabi::hyper;
        let pc = cpu.pc();
        let cpu_index = cpu.cpu_index();
        if let Some((size, is_write)) = hyper::decode_check(nr) {
            if !self.active {
                return HookAction::Continue;
            }
            let addr = cpu.reg(self.platform.check_reg);
            // Report at the *instrumented call site*, not inside the shared
            // dummy-library stub: the check-link register holds the return
            // address, which is the guarded access instruction itself.
            let pc = cpu.reg(embsan_asm::instrument::CHECK_LINK);
            // The check hypercall precedes the instruction: the pre-access
            // memory content is the correct value-change baseline.
            return self.check_access(
                cpu,
                addr,
                size,
                is_write,
                nr == hyper::CHECK_ATOMIC4,
                pc,
                None,
            );
        }
        let arg = |cpu: &CpuView<'_>, i: usize| {
            self.platform.hypercall_args.get(i).map(|&r| cpu.reg(r)).unwrap_or(0)
        };
        match nr {
            hyper::ALLOC if self.active => {
                let (addr, size) = (arg(cpu, 0), arg(cpu, 1));
                self.tracer.record(embsan_obs::EventKind::AllocIntercept {
                    op: embsan_obs::AllocOp::Alloc,
                    addr,
                    size,
                });
                if let Some(kasan) = &mut self.kasan {
                    kasan.on_alloc(&mut self.shadow, addr, size, pc);
                }
                if let Some(umsan) = &mut self.umsan {
                    umsan.on_alloc(addr, size, pc);
                }
                HookAction::Continue
            }
            hyper::FREE if self.active => {
                let addr = arg(cpu, 0);
                self.tracer.record(embsan_obs::EventKind::AllocIntercept {
                    op: embsan_obs::AllocOp::Free,
                    addr,
                    size: 0,
                });
                if let Some(umsan) = &mut self.umsan {
                    umsan.on_free(addr);
                }
                let report = self
                    .kasan
                    .as_mut()
                    .and_then(|k| k.on_free(&mut self.shadow, addr, pc, cpu_index));
                self.drain_kasan_pressure();
                match report {
                    Some(report) => {
                        let signature = Self::call_site_signature(cpu);
                        self.record_with_signature(report, signature)
                    }
                    None => HookAction::Continue,
                }
            }
            hyper::REGISTER_GLOBAL if self.active => {
                let (addr, size, redzone) = (arg(cpu, 0), arg(cpu, 1), arg(cpu, 2));
                self.tracer.record(embsan_obs::EventKind::AllocIntercept {
                    op: embsan_obs::AllocOp::Global,
                    addr,
                    size,
                });
                if let Some(kasan) = &mut self.kasan {
                    kasan.on_global(&mut self.shadow, addr, size, redzone);
                }
                HookAction::Continue
            }
            hyper::READY => {
                // Stop only on the first READY: the machine re-executes the
                // stopped instruction on resume, which must then fall
                // through.
                if self.ready_seen {
                    HookAction::Continue
                } else {
                    self.ready_seen = true;
                    HookAction::Stop
                }
            }
            _ => HookAction::Continue,
        }
    }

    fn call(&mut self, cpu: &mut CpuView<'_>, target: u32, ret_to: u32) {
        let Some(hook_index) = self.platform.hooks.iter().position(|h| h.addr == target) else {
            return;
        };
        let cpu_index = cpu.cpu_index();
        let args = [cpu.reg(Reg::A0), cpu.reg(Reg::A1), cpu.reg(Reg::A2), cpu.reg(Reg::A3)];
        self.pending[cpu_index].push(PendingCall { hook_index, ret_to, args });
        // Allocator internals legitimately touch free memory: suppress
        // checks on this vCPU until the function returns.
        self.suppress[cpu_index] += 1;
    }

    fn ret(&mut self, cpu: &mut CpuView<'_>, target: u32) {
        let cpu_index = cpu.cpu_index();
        let Some(top) = self.pending[cpu_index].last() else { return };
        if top.ret_to != target {
            return;
        }
        // Infallible: `last()` above just witnessed a top-of-stack entry
        // and nothing between the two calls can pop it.
        let pending = self.pending[cpu_index].pop().expect("pending call just observed");
        self.suppress[cpu_index] = self.suppress[cpu_index].saturating_sub(1);
        let hook = self.platform.hooks[pending.hook_index].clone();
        let param = |name: &str| -> u32 {
            hook.params
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, idx)| pending.args[usize::from(idx).min(3)])
                .unwrap_or(0)
        };
        let pc = target.wrapping_sub(4); // the call site
        match hook.role {
            FuncRole::Alloc if self.active => {
                let addr = if hook.returns { cpu.reg(Reg::A0) } else { 0 };
                let size = param("size");
                self.tracer.record(embsan_obs::EventKind::AllocIntercept {
                    op: embsan_obs::AllocOp::Alloc,
                    addr,
                    size,
                });
                if let Some(kasan) = &mut self.kasan {
                    kasan.on_alloc(&mut self.shadow, addr, size, pc);
                }
                if let Some(umsan) = &mut self.umsan {
                    umsan.on_alloc(addr, size, pc);
                }
            }
            FuncRole::Free if self.active => {
                let addr = param("addr");
                self.tracer.record(embsan_obs::EventKind::AllocIntercept {
                    op: embsan_obs::AllocOp::Free,
                    addr,
                    size: 0,
                });
                if let Some(umsan) = &mut self.umsan {
                    umsan.on_free(addr);
                }
                let report = self
                    .kasan
                    .as_mut()
                    .and_then(|k| k.on_free(&mut self.shadow, addr, pc, cpu_index));
                self.drain_kasan_pressure();
                if let Some(report) = report {
                    self.record(report);
                }
            }
            FuncRole::Global if self.active => {
                self.tracer.record(embsan_obs::EventKind::AllocIntercept {
                    op: embsan_obs::AllocOp::Global,
                    addr: param("addr"),
                    size: param("size"),
                });
                if let Some(kasan) = &mut self.kasan {
                    kasan.on_global(
                        &mut self.shadow,
                        param("addr"),
                        param("size"),
                        param("redzone"),
                    );
                }
            }
            FuncRole::Ready => {
                self.ready_seen = true;
            }
            _ => {}
        }
    }

    fn stall_expired(&mut self, cpu: &mut CpuView<'_>, token: u64) {
        let Some((addr, size)) = self.stall_watch.remove(&token) else { return };
        let value_now = cpu.read_mem(addr, size.min(4)).unwrap_or(0);
        let report = self.kcsan.as_mut().and_then(|k| k.on_stall_expired(token, value_now));
        if let Some(report) = report {
            self.record(report);
        }
    }

    fn fault(&mut self, cpu: &mut CpuView<'_>, fault: Fault) {
        if !self.active {
            return;
        }
        if let Fault::NullPage { addr, is_write } = fault {
            let report = Report {
                class: BugClass::NullDeref,
                addr,
                size: 0,
                is_write,
                pc: cpu.pc(),
                cpu: cpu.cpu_index(),
                chunk: None,
                other: None,
            };
            self.record(report);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distill::reference_merged;

    fn platform_spec() -> PlatformSpec {
        let doc = r#"
platform test {
    arch armv;
    endian little;
    ram 0x00100000 .. 0x00500000;
    mmio 0xF0000000 .. 0xF0001000;
    hypercall args r1 r2 r3 r4 ret r1;
    check_reg r12;
    instrumented sancall;
    ready hypercall;
}
"#;
        match embsan_dsl::parse(doc).unwrap().remove(0) {
            embsan_dsl::Item::Platform(p) => p,
            _ => panic!(),
        }
    }

    #[test]
    fn engine_selection_from_merged_spec() {
        let merged = reference_merged().unwrap();
        let selection = EngineSelection::from_spec(&merged);
        assert!(selection.kasan.is_some());
        assert!(selection.kcsan.is_some());
        assert_eq!(selection.kasan.unwrap().quarantine_bytes, 262144);
        assert_eq!(selection.kcsan.unwrap().sample, 47);
    }

    #[test]
    fn engine_selection_single_sanitizer() {
        let kasan_only = crate::distill::distill(crate::distill::KASAN_HEADER).unwrap();
        let selection = EngineSelection::from_spec(&kasan_only);
        assert!(selection.kasan.is_some());
        assert!(selection.kcsan.is_none());
    }

    #[test]
    fn runtime_modes_arm_different_probes() {
        let merged = reference_merged().unwrap();
        let mut spec = platform_spec();
        let runtime = EmbsanRuntime::new(&merged, &spec, 1).unwrap();
        assert_eq!(runtime.mode(), AttachMode::CompileTime);
        assert!(runtime.hook_config().hypercalls);
        assert!(!runtime.hook_config().mem);

        spec.instrumented = "none".to_string();
        let runtime = EmbsanRuntime::new(&merged, &spec, 1).unwrap();
        assert_eq!(runtime.mode(), AttachMode::Dynamic);
        assert!(runtime.hook_config().mem);
        assert!(runtime.hook_config().calls);
    }

    #[test]
    fn init_program_drives_shadow_and_activation() {
        let merged = reference_merged().unwrap();
        let mut runtime = EmbsanRuntime::new(&merged, &platform_spec(), 1).unwrap();
        assert!(!runtime.is_active());
        let init = match embsan_dsl::parse(
            "init {
                poison 0x200000 .. 0x210000 heap_redzone;
                alloc 0x200040 size 64 site 0x10000;
                global 0x100100 size 40 redzone 32;
                ready;
            }",
        )
        .unwrap()
        .remove(0)
        {
            embsan_dsl::Item::Init(init) => init,
            _ => panic!(),
        };
        runtime.apply_init(&init);
        assert!(runtime.is_active());
        // The replayed boot alloc is addressable, its surroundings poisoned.
        assert!(runtime.shadow.check(0x20_0040, 4).is_ok());
        assert!(runtime.shadow.check(0x20_00C0, 4).is_err());
        // The registered global has redzones.
        assert!(runtime.shadow.check(0x10_0100, 4).is_ok());
        assert!(runtime.shadow.check(0x10_0100 + 44, 1).is_err());
    }

    #[test]
    fn bad_platform_specs_are_rejected() {
        let merged = reference_merged().unwrap();
        let mut spec = platform_spec();
        spec.arch = "sparc".to_string();
        assert!(matches!(EmbsanRuntime::new(&merged, &spec, 1), Err(RuntimeError::BadPlatform(_))));
        let mut spec = platform_spec();
        spec.hypercall_args = vec!["r99".to_string()];
        assert!(EmbsanRuntime::new(&merged, &spec, 1).is_err());
    }

    #[test]
    fn drifted_init_steps_degrade_instead_of_misbehaving() {
        let merged = reference_merged().unwrap();
        let mut runtime = EmbsanRuntime::new(&merged, &platform_spec(), 1).unwrap();
        // RAM is 0x100000..0x500000: poison past the end and replay a boot
        // alloc outside RAM entirely (a spec written for different firmware).
        let init = match embsan_dsl::parse(
            "init {
                poison 0x4FFFF0 .. 0x500080 invalid;
                alloc 0x900000 size 64 site 0x10000;
                ready;
            }",
        )
        .unwrap()
        .remove(0)
        {
            embsan_dsl::Item::Init(init) => init,
            _ => panic!(),
        };
        runtime.apply_init(&init);
        assert!(runtime.is_active());
        let health = runtime.health();
        assert_eq!(health.shadow_clips, 16, "0x80 bytes past the limit = 16 granules");
        assert_eq!(health.spec_drift, 1);
        assert!(!health.is_clean());
        // The in-range prefix of the clipped poison still applied.
        assert!(runtime.shadow.check(0x4F_FFF0, 4).is_err());
        assert!(runtime
            .degradations()
            .iter()
            .any(|d| matches!(d, Degradation::ShadowClipped { granules: 16, .. })));
        assert!(runtime
            .degradations()
            .iter()
            .any(|d| matches!(d, Degradation::SpecDrift { addr: 0x90_0000, .. })));
    }

    #[test]
    fn dedup_keys_round_trip_in_canonical_order() {
        let merged = reference_merged().unwrap();
        let mut runtime = EmbsanRuntime::new(&merged, &platform_spec(), 1).unwrap();
        let report = |class: BugClass, pc: u32| Report {
            class,
            addr: 0x20_0000,
            size: 4,
            is_write: false,
            pc,
            cpu: 0,
            chunk: None,
            other: None,
        };
        runtime.record_with_signature(report(BugClass::Uaf, 0x1_0200), 7);
        runtime.record_with_signature(report(BugClass::HeapOob, 0x1_0100), 0);
        runtime.record_with_signature(report(BugClass::HeapOob, 0x1_0000), 0);
        let keys = runtime.dedup_keys();
        assert_eq!(
            keys,
            vec![
                (BugClass::HeapOob, 0x1_0000, 0),
                (BugClass::HeapOob, 0x1_0100, 0),
                (BugClass::Uaf, 0x1_0200, 7),
            ]
        );
        // Seeding a fresh runtime suppresses re-discoveries of those bugs.
        let mut resumed = EmbsanRuntime::new(&merged, &platform_spec(), 1).unwrap();
        resumed.seed_dedup(keys);
        resumed.record_with_signature(report(BugClass::Uaf, 0x1_0200), 7);
        assert!(resumed.reports().is_empty());
        resumed.record_with_signature(report(BugClass::Uaf, 0x1_0300), 7);
        assert_eq!(resumed.reports().len(), 1);
    }
}
