//! The unified shadow memory (§3.3).
//!
//! One host-side shadow byte per 8 guest bytes of RAM, shared by every
//! sanitizer engine ("the conservation of memory resources on the host
//! machine"). Encoding follows KASAN: `0` fully addressable, `1..=7`
//! first-N-bytes addressable, `≥ 0x80` poisoned with a class code.

use embsan_emu::cow::PagedBytes;
use embsan_emu::dirty::DirtyPages;

/// Shadow granule size in bytes.
pub const GRANULE: u32 = 8;

/// Page shift for shadow-plane dirty tracking: 4 KiB of shadow bytes cover
/// 32 KiB of guest RAM, so poison churn between resets stays a handful of
/// pages while the bitmap itself stays tiny.
const SHADOW_PAGE_SHIFT: u32 = 12;

/// Poison class codes (the high-bit range).
pub mod code {
    /// Unallocated heap memory.
    pub const HEAP: u8 = 0xFF;
    /// Redzone following a heap object.
    pub const HEAP_REDZONE: u8 = 0xFA;
    /// Freed (quarantined) memory.
    pub const FREED: u8 = 0xFD;
    /// Redzone around a global object.
    pub const GLOBAL_REDZONE: u8 = 0xF9;
    /// Memory poisoned for any other reason.
    pub const INVALID: u8 = 0xFE;
}

/// Result of a failed shadow check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShadowViolation {
    /// First out-of-policy byte address.
    pub bad_addr: u32,
    /// The shadow code at that byte (`code::*`, or `1..=7` for a partial
    /// granule overrun).
    pub code: u8,
}

/// Host-side shadow of guest RAM.
#[derive(Debug, Clone)]
pub struct ShadowMemory {
    ram_base: u32,
    /// `bytes.len() * GRANULE`, precomputed: `covers` runs on the hot
    /// per-access check path and must not redo the division.
    span: u32,
    /// The shadow plane: flat while booting, a copy-on-write fork of the
    /// `Arc`-shared baseline plane once frozen at the ready point — forked
    /// workers then pay only for the shadow pages their poison churn
    /// touches.
    bytes: PagedBytes,
    /// Shadow pages poisoned/unpoisoned since the last baseline restore;
    /// lets reset copy back only touched shadow instead of the full plane.
    dirty: DirtyPages,
}

impl ShadowMemory {
    /// Creates an all-addressable shadow for `ram_size` bytes of RAM at
    /// `ram_base`.
    pub fn new(ram_base: u32, ram_size: u32) -> ShadowMemory {
        let granules = (ram_size / GRANULE) as usize;
        ShadowMemory {
            ram_base,
            span: granules as u32 * GRANULE,
            bytes: PagedBytes::zeroed(granules, SHADOW_PAGE_SHIFT),
            dirty: DirtyPages::new(granules, SHADOW_PAGE_SHIFT),
        }
    }

    /// Freezes the current plane as an immutable shared base and re-forks
    /// this shadow from it. Called once at the ready point so baseline
    /// clones (and adopted cross-worker baselines) share one plane.
    pub(crate) fn freeze_plane(&mut self) {
        self.bytes.freeze();
    }

    /// Private overlay bytes this plane holds beyond its shared base.
    pub(crate) fn overlay_bytes(&self) -> usize {
        self.bytes.overlay_bytes()
    }

    /// Materialized plane contents (for base-image content hashing).
    pub(crate) fn plane_to_vec(&self) -> Vec<u8> {
        self.bytes.to_vec()
    }

    /// Total plane size in bytes (shared-base accounting).
    pub(crate) fn plane_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Marks every shadow page clean (after a full install of this plane
    /// as the new baseline).
    pub(crate) fn clear_dirty(&mut self) {
        self.dirty.clear();
    }

    /// Whether `other` shadows the same region (restore-compat check).
    pub(crate) fn same_shape(&self, other: &ShadowMemory) -> bool {
        self.ram_base == other.ram_base && self.span == other.span
    }

    /// Restores this shadow to `baseline`'s contents. With `dirty_only` the
    /// copy is bounded to pages poisoned/unpoisoned since the last restore
    /// against this same baseline (the caller guarantees the invariant via
    /// state ids); otherwise the full plane is copied. Either way the dirty
    /// map ends clean, re-establishing the invariant.
    pub(crate) fn restore_from(&mut self, baseline: &ShadowMemory, dirty_only: bool) {
        debug_assert!(self.same_shape(baseline));
        if dirty_only {
            // When both planes fork the same base this drops the touched
            // overlay pages (O(dirty), frees memory); otherwise it copies
            // the touched pages from the baseline view.
            let bytes = &mut self.bytes;
            self.dirty.drain(|page| bytes.restore_page_from(&baseline.bytes, page));
        } else {
            self.bytes = baseline.bytes.clone();
            self.dirty.clear();
        }
    }

    /// Whether `addr` is covered by the shadow (i.e. inside RAM).
    #[inline]
    pub fn covers(&self, addr: u32) -> bool {
        // Single wrapping compare against the precomputed span: addresses
        // below `ram_base` wrap to huge values and fail the bound.
        addr.wrapping_sub(self.ram_base) < self.span
    }

    #[inline]
    fn index(&self, addr: u32) -> usize {
        debug_assert!(self.covers(addr));
        ((addr - self.ram_base) / GRANULE) as usize
    }

    /// Reads the shadow byte covering `addr`.
    #[inline]
    pub fn get(&self, addr: u32) -> u8 {
        self.bytes.get(self.index(addr))
    }

    /// Poisons `[start, end)` with `poison_code`. Partially covered edge
    /// granules are fully poisoned (conservative, like KASAN's
    /// `kasan_poison` which requires granule alignment — callers align).
    ///
    /// Out-of-coverage portions are clipped; the return value is the number
    /// of requested granules that could *not* be applied (0 when the range
    /// is fully covered), so callers can surface the degradation instead of
    /// silently losing poison.
    pub fn poison(&mut self, start: u32, end: u32, poison_code: u8) -> u32 {
        if end <= start {
            return 0;
        }
        let requested = end.saturating_sub(start).div_ceil(GRANULE);
        if !self.covers(start) {
            return requested;
        }
        let clipped_end = end.min(self.limit());
        let from = self.index(start);
        let to = self.index(clipped_end - 1);
        self.dirty.mark_range(from, to - from + 1);
        self.bytes.fill(from, to - from + 1, poison_code);
        end.saturating_sub(clipped_end).div_ceil(GRANULE)
    }

    /// Unpoisons an object `[addr, addr+size)`: full granules become
    /// addressable, a trailing partial granule gets the `size % 8`
    /// watermark.
    pub fn unpoison_object(&mut self, addr: u32, size: u32) {
        if size == 0 || !self.covers(addr) {
            return;
        }
        let full = (size / GRANULE) as usize;
        let from = self.index(addr);
        let end = (from + full).min(self.bytes.len());
        if end > from {
            self.bytes.fill(from, end - from, 0);
        }
        let tail = (size % GRANULE) as u8;
        if tail != 0 && from + full < self.bytes.len() {
            *self.bytes.byte_mut(from + full) = tail;
        }
        let touched_end = (from + full + usize::from(tail != 0)).clamp(from + 1, self.bytes.len());
        self.dirty.mark_range(from, touched_end - from);
    }

    /// One past the highest shadowed address.
    pub fn limit(&self) -> u32 {
        self.ram_base + self.bytes.len() as u32 * GRANULE
    }

    /// Single-branch fast path of [`ShadowMemory::check`]: `true` proves the
    /// access clean (fully inside RAM, every granule it touches marked
    /// all-addressable). `false` decides nothing — the caller must run
    /// [`ShadowMemory::check_slow`], which handles partial granules, poison
    /// classification, and out-of-RAM addresses.
    ///
    /// Restricted to accesses of at most one granule (the executor issues
    /// 1/2/4-byte accesses), which touch at most two shadow bytes — both are
    /// inspected, so a `true` here is exactly "the slow path would pass
    /// without consulting partial-granule watermarks".
    #[inline]
    pub fn check_fast(&self, addr: u32, size: u8) -> bool {
        let size = u32::from(size);
        let first = addr.wrapping_sub(self.ram_base);
        if size == 0 || size > GRANULE || self.span < size || first > self.span - size {
            return false;
        }
        let i0 = (first / GRANULE) as usize;
        let i1 = ((first + size - 1) / GRANULE) as usize;
        self.bytes.get(i0) == 0 && self.bytes.get(i1) == 0
    }

    /// Checks an access of `size` bytes at `addr`.
    ///
    /// Addresses outside RAM are not the shadow's business (MMIO, ROM) and
    /// always pass.
    ///
    /// # Errors
    ///
    /// Returns the first violating byte and its shadow code.
    #[inline]
    pub fn check(&self, addr: u32, size: u8) -> Result<(), ShadowViolation> {
        if self.check_fast(addr, size) {
            return Ok(());
        }
        self.check_slow(addr, size)
    }

    /// Byte-wise check: the out-of-line complement of
    /// [`ShadowMemory::check_fast`] (same contract as
    /// [`ShadowMemory::check`]).
    ///
    /// # Errors
    ///
    /// Returns the first violating byte and its shadow code.
    #[cold]
    pub fn check_slow(&self, addr: u32, size: u8) -> Result<(), ShadowViolation> {
        let end = addr.saturating_add(u32::from(size));
        let mut cursor = addr;
        while cursor < end {
            if !self.covers(cursor) {
                cursor += 1;
                continue;
            }
            let shadow = self.bytes.get(self.index(cursor));
            if shadow == 0 {
                // Whole granule addressable: skip to the next granule.
                cursor = (cursor / GRANULE + 1) * GRANULE;
                continue;
            }
            if shadow >= 0x80 {
                return Err(ShadowViolation { bad_addr: cursor, code: shadow });
            }
            // Partial granule: bytes `granule_start .. granule_start+shadow`
            // are addressable.
            let offset_in_granule = (cursor % GRANULE) as u8;
            if offset_in_granule >= shadow {
                return Err(ShadowViolation { bad_addr: cursor, code: shadow });
            }
            cursor += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shadow() -> ShadowMemory {
        ShadowMemory::new(0x10_0000, 0x1000)
    }

    #[test]
    fn fresh_shadow_is_addressable() {
        let s = shadow();
        assert!(s.check(0x10_0000, 4).is_ok());
        assert!(s.check(0x10_0FFC, 4).is_ok());
        // Outside RAM: not our business.
        assert!(s.check(0xF000_0000, 4).is_ok());
        assert!(s.check(0, 4).is_ok());
    }

    #[test]
    fn poison_and_detect() {
        let mut s = shadow();
        s.poison(0x10_0100, 0x10_0140, code::HEAP);
        assert_eq!(
            s.check(0x10_0100, 1),
            Err(ShadowViolation { bad_addr: 0x10_0100, code: code::HEAP })
        );
        assert!(s.check(0x10_00F8, 8).is_ok());
        // Access straddling into the poison is caught at the first bad byte.
        assert_eq!(s.check(0x10_00FE, 4).unwrap_err().bad_addr, 0x10_0100);
        assert!(s.check(0x10_0140, 4).is_ok());
    }

    #[test]
    fn unpoison_object_with_partial_tail() {
        let mut s = shadow();
        s.poison(0x10_0200, 0x10_0280, code::HEAP);
        s.unpoison_object(0x10_0200, 20); // 2 full granules + 4-byte tail
        assert!(s.check(0x10_0200, 4).is_ok());
        assert!(s.check(0x10_0210, 4).is_ok()); // bytes 16..20
                                                // Byte 20 is past the watermark (tail granule allows 4 bytes).
        let err = s.check(0x10_0214, 1).unwrap_err();
        assert_eq!(err.code, 4);
        // And byte 24 hits the fully poisoned next granule.
        assert_eq!(s.check(0x10_0218, 1).unwrap_err().code, code::HEAP);
    }

    #[test]
    fn partial_tail_read_across_watermark_fails() {
        let mut s = shadow();
        s.poison(0x10_0300, 0x10_0320, code::HEAP);
        s.unpoison_object(0x10_0300, 6);
        assert!(s.check(0x10_0300, 4).is_ok());
        assert!(s.check(0x10_0304, 2).is_ok());
        assert!(s.check(0x10_0304, 4).is_err()); // bytes 6..8 not addressable
    }

    #[test]
    fn granule_math_at_boundaries() {
        let mut s = shadow();
        // Poison the very last granule.
        s.poison(0x10_0FF8, 0x10_1000, code::INVALID);
        assert!(s.check(0x10_0FF0, 8).is_ok());
        assert!(s.check(0x10_0FF8, 1).is_err());
        // Unpoison it as a 3-byte object.
        s.unpoison_object(0x10_0FF8, 3);
        assert!(s.check(0x10_0FF8, 2).is_ok());
        assert!(s.check(0x10_0FFB, 1).is_err());
    }

    #[test]
    fn zero_size_and_out_of_range_are_noops() {
        let mut s = shadow();
        s.unpoison_object(0x10_0000, 0);
        s.poison(0x10_0010, 0x10_0010, code::HEAP); // empty range
        s.poison(0xFFFF_0000, 0xFFFF_0100, code::HEAP); // out of range
        assert!(s.check(0x10_0000, 4).is_ok());
    }
}
