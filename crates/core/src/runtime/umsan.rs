//! The host-side UMSAN engine: uninitialized heap-read detection.
//!
//! This engine exists to validate the paper's §5 adaptability claim — a new
//! sanitizer functionality slots into EMBSAN by (1) shipping a reference
//! interface extraction (`specs/umsan.h`), (2) writing this runtime, and
//! (3) nothing else: the Distiller merges its interception points into the
//! common specification and the runtime dispatches to it alongside KASAN
//! and KCSAN.
//!
//! Semantics (simplified KMSAN): bytes of a freshly allocated heap chunk
//! are *uninitialized*; stores initialize the bytes they touch; a load
//! overlapping any still-uninitialized byte of a live chunk reports. Shadow
//! is not propagated through register flow or copies — a read *is* the use.

use embsan_emu::cow::PagedBytes;
use embsan_emu::dirty::DirtyPages;

use crate::report::{BugClass, ChunkInfo, Report};

/// Page shift for uninit-plane dirty tracking: one 4 KiB page of uninit
/// bits covers 32 KiB of RAM.
const UNINIT_PAGE_SHIFT: u32 = 12;

/// Per-byte initialization shadow over RAM, tracked only inside live heap
/// chunks (everything else reads as initialized).
#[derive(Debug, Clone)]
pub struct UmsanEngine {
    ram_base: u32,
    /// One bit per RAM byte: 1 = known-uninitialized. Flat while booting,
    /// a copy-on-write fork of the shared baseline plane once frozen.
    uninit: PagedBytes,
    /// Uninit-plane pages touched since the last baseline restore.
    dirty: DirtyPages,
    /// Live chunk table (addr → size, alloc pc) for report context.
    chunks: std::collections::HashMap<u32, (u32, u32)>,
}

impl UmsanEngine {
    /// Creates an engine covering `ram_size` bytes at `ram_base`.
    pub fn new(ram_base: u32, ram_size: u32) -> UmsanEngine {
        let bytes = (ram_size as usize).div_ceil(8);
        UmsanEngine {
            ram_base,
            uninit: PagedBytes::zeroed(bytes, UNINIT_PAGE_SHIFT),
            dirty: DirtyPages::new(bytes, UNINIT_PAGE_SHIFT),
            chunks: std::collections::HashMap::new(),
        }
    }

    /// Freezes the uninit plane as an immutable shared base and re-forks
    /// from it (called once at the ready point).
    pub(crate) fn freeze_plane(&mut self) {
        self.uninit.freeze();
    }

    /// Private overlay bytes this plane holds beyond its shared base.
    pub(crate) fn overlay_bytes(&self) -> usize {
        self.uninit.overlay_bytes()
    }

    /// Materialized plane contents (for base-image content hashing).
    pub(crate) fn plane_to_vec(&self) -> Vec<u8> {
        self.uninit.to_vec()
    }

    /// Total plane size in bytes (shared-base accounting).
    pub(crate) fn plane_bytes(&self) -> usize {
        self.uninit.len()
    }

    /// Restores this engine to `baseline`'s state. With `dirty_only` the
    /// uninit-plane copy is bounded to pages touched since the last restore
    /// against this same baseline (caller guarantees via state ids).
    pub(crate) fn restore_from(&mut self, baseline: &UmsanEngine, dirty_only: bool) {
        debug_assert_eq!(self.ram_base, baseline.ram_base);
        debug_assert_eq!(self.uninit.len(), baseline.uninit.len());
        if dirty_only {
            let uninit = &mut self.uninit;
            self.dirty.drain(|page| uninit.restore_page_from(&baseline.uninit, page));
        } else {
            self.uninit = baseline.uninit.clone();
            self.dirty.clear();
        }
        self.chunks.clone_from(&baseline.chunks);
    }

    /// Marks every uninit-plane page clean (after a full install).
    pub(crate) fn clear_dirty(&mut self) {
        self.dirty.clear();
    }

    /// Whether `other` covers the same RAM region (restore-compat check).
    pub(crate) fn same_shape(&self, other: &UmsanEngine) -> bool {
        self.ram_base == other.ram_base && self.uninit.len() == other.uninit.len()
    }

    fn in_range(&self, addr: u32) -> bool {
        addr >= self.ram_base && ((addr - self.ram_base) as usize) < self.uninit.len() * 8
    }

    fn set_uninit(&mut self, addr: u32, value: bool) {
        if !self.in_range(addr) {
            return;
        }
        let offset = (addr - self.ram_base) as usize;
        self.dirty.mark(offset / 8);
        let byte = self.uninit.byte_mut(offset / 8);
        if value {
            *byte |= 1 << (offset % 8);
        } else {
            *byte &= !(1 << (offset % 8));
        }
    }

    fn is_uninit(&self, addr: u32) -> bool {
        if !self.in_range(addr) {
            return false;
        }
        let offset = (addr - self.ram_base) as usize;
        self.uninit.get(offset / 8) & (1 << (offset % 8)) != 0
    }

    /// A fresh allocation: all bytes become uninitialized.
    pub fn on_alloc(&mut self, addr: u32, size: u32, pc: u32) {
        if addr == 0 || size == 0 {
            return;
        }
        for a in addr..addr.saturating_add(size) {
            self.set_uninit(a, true);
        }
        self.chunks.insert(addr, (size, pc));
    }

    /// A free: stop tracking (KASAN owns use-after-free reporting).
    pub fn on_free(&mut self, addr: u32) {
        if let Some((size, _)) = self.chunks.remove(&addr) {
            for a in addr..addr.saturating_add(size) {
                self.set_uninit(a, false);
            }
        }
    }

    /// A store initializes the bytes it writes.
    pub fn on_store(&mut self, addr: u32, size: u8) {
        self.mark_initialized(addr, u32::from(size));
    }

    /// Marks an arbitrary range initialized (boot-state replay).
    pub fn mark_initialized(&mut self, addr: u32, size: u32) {
        for a in addr..addr.saturating_add(size) {
            self.set_uninit(a, false);
        }
    }

    /// A load of uninitialized bytes reports.
    pub fn on_load(&mut self, addr: u32, size: u8, pc: u32, cpu: usize) -> Option<Report> {
        let bad = (addr..addr.saturating_add(u32::from(size))).find(|&a| self.is_uninit(a))?;
        // Report once per byte range: further reads of the same bytes stay
        // noisy otherwise (real MSAN marks the value initialized after the
        // first report as well).
        self.on_store(addr, size);
        let chunk =
            self.chunks.iter().find(|(&base, &(size, _))| base <= bad && bad < base + size).map(
                |(&base, &(size, alloc_pc))| ChunkInfo {
                    addr: base,
                    size,
                    alloc_pc,
                    free_pc: None,
                },
            );
        Some(Report {
            class: BugClass::UninitRead,
            addr: bad,
            size,
            is_write: false,
            pc,
            cpu,
            chunk,
            other: None,
        })
    }

    /// Number of live tracked chunks.
    pub fn tracked_chunks(&self) -> usize {
        self.chunks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> UmsanEngine {
        UmsanEngine::new(0x10_0000, 0x1_0000)
    }

    #[test]
    fn fresh_allocation_reads_report() {
        let mut e = engine();
        e.on_alloc(0x10_1000, 24, 0x42);
        let report = e.on_load(0x10_1004, 4, 0x100, 0).unwrap();
        assert_eq!(report.class, BugClass::UninitRead);
        assert_eq!(report.addr, 0x10_1004);
        assert_eq!(report.chunk.unwrap().alloc_pc, 0x42);
    }

    #[test]
    fn stores_initialize_their_bytes() {
        let mut e = engine();
        e.on_alloc(0x10_1000, 16, 0x42);
        e.on_store(0x10_1000, 4);
        assert!(e.on_load(0x10_1000, 4, 0x100, 0).is_none());
        // Byte 4 is still uninit; a straddling read reports at it.
        let report = e.on_load(0x10_1002, 4, 0x100, 0).unwrap();
        assert_eq!(report.addr, 0x10_1004);
    }

    #[test]
    fn untracked_memory_is_initialized() {
        let mut e = engine();
        assert!(e.on_load(0x10_2000, 4, 0x100, 0).is_none());
        assert!(e.on_load(0xF000_0000, 4, 0x100, 0).is_none()); // outside RAM
    }

    #[test]
    fn free_clears_tracking() {
        let mut e = engine();
        e.on_alloc(0x10_1000, 16, 0x42);
        e.on_free(0x10_1000);
        assert_eq!(e.tracked_chunks(), 0);
        assert!(e.on_load(0x10_1000, 4, 0x100, 0).is_none());
    }

    #[test]
    fn reports_once_per_bytes() {
        let mut e = engine();
        e.on_alloc(0x10_1000, 8, 0x42);
        assert!(e.on_load(0x10_1000, 4, 0x100, 0).is_some());
        assert!(e.on_load(0x10_1000, 4, 0x104, 0).is_none(), "same bytes report once");
        assert!(e.on_load(0x10_1004, 4, 0x108, 0).is_some(), "other bytes still report");
    }

    #[test]
    fn realloc_reuses_cleanly() {
        let mut e = engine();
        e.on_alloc(0x10_1000, 16, 0x1);
        e.on_store(0x10_1000, 16); // hmm, initialize only 16 bytes
        e.on_free(0x10_1000);
        e.on_alloc(0x10_1000, 16, 0x2);
        // Fresh allocation is uninitialized again even though the previous
        // incarnation was fully written.
        assert!(e.on_load(0x10_1000, 1, 0x100, 0).is_some());
    }
}
