//! The host-side KASAN engine.
//!
//! Consumes allocator events (from hypercalls in EMBSAN-C or dynamic
//! function interception in EMBSAN-D) and access checks, maintaining object
//! metadata, a quarantine of freed chunks, and the unified shadow.

use std::collections::{HashMap, VecDeque};

use crate::report::{BugClass, ChunkInfo, Report};
use crate::runtime::shadow::{code, ShadowMemory, GRANULE};

/// Configuration of the KASAN engine, from the merged sanitizer spec.
#[derive(Debug, Clone, Copy)]
pub struct KasanConfig {
    /// Quarantine capacity in bytes (freed chunks tracked for UAF context).
    pub quarantine_bytes: u64,
    /// Whether the heap region is pre-poisoned at init (possible when the
    /// prober could establish heap bounds; binary-only firmware relies on
    /// per-allocation tail redzones instead).
    pub heap_prepoison: bool,
}

impl Default for KasanConfig {
    fn default() -> KasanConfig {
        KasanConfig { quarantine_bytes: 256 * 1024, heap_prepoison: true }
    }
}

#[derive(Debug, Clone, Copy)]
struct LiveChunk {
    size: u32,
    alloc_pc: u32,
}

#[derive(Debug, Clone, Copy)]
struct FreedChunk {
    size: u32,
    alloc_pc: u32,
    free_pc: u32,
}

/// The KASAN engine state.
#[derive(Debug, Clone)]
pub struct KasanEngine {
    config: KasanConfig,
    live: HashMap<u32, LiveChunk>,
    freed: HashMap<u32, FreedChunk>,
    quarantine: VecDeque<u32>,
    quarantine_used: u64,
    globals: Vec<(u32, u32)>,
    /// Chunks evicted under byte pressure since the last drain; the runtime
    /// polls this after every free to surface quarantine exhaustion as a
    /// degradation event instead of a silent fidelity loss.
    pressure_evictions: u64,
}

impl KasanEngine {
    /// Creates an engine.
    pub fn new(config: KasanConfig) -> KasanEngine {
        KasanEngine {
            config,
            live: HashMap::new(),
            freed: HashMap::new(),
            quarantine: VecDeque::new(),
            quarantine_used: 0,
            globals: Vec::new(),
            pressure_evictions: 0,
        }
    }

    /// Allocation-reusing restore to `baseline`'s state (fuzzer reset):
    /// `clone_from` on the maps reuses their table storage instead of
    /// reallocating every iteration.
    pub(crate) fn restore_from(&mut self, baseline: &KasanEngine) {
        self.config = baseline.config;
        self.live.clone_from(&baseline.live);
        self.freed.clone_from(&baseline.freed);
        self.quarantine.clone_from(&baseline.quarantine);
        self.quarantine_used = baseline.quarantine_used;
        self.globals.clone_from(&baseline.globals);
        self.pressure_evictions = baseline.pressure_evictions;
    }

    /// Drains the count of chunks evicted under quarantine byte pressure
    /// since the last call.
    pub fn take_pressure_evictions(&mut self) -> u64 {
        std::mem::take(&mut self.pressure_evictions)
    }

    /// Number of currently live tracked chunks.
    pub fn live_chunks(&self) -> usize {
        self.live.len()
    }

    /// Number of quarantined (freed) chunks.
    pub fn quarantined_chunks(&self) -> usize {
        self.quarantine.len()
    }

    /// Handles an allocation event.
    pub fn on_alloc(&mut self, shadow: &mut ShadowMemory, addr: u32, size: u32, pc: u32) {
        if addr == 0 || size == 0 {
            return; // failed allocation
        }
        // Reuse of a quarantined chunk: the guest allocator recycled it; the
        // observational quarantine must let go.
        if self.freed.remove(&addr).is_some() {
            if let Some(pos) = self.quarantine.iter().position(|&a| a == addr) {
                self.quarantine.remove(pos);
            }
        }
        self.live.insert(addr, LiveChunk { size, alloc_pc: pc });
        shadow.unpoison_object(addr, size);
        // Tail redzone: poison from the end of the object's last granule
        // through the following inter-chunk header. With heap pre-poisoning
        // this is already poisoned; without (binary-only firmware) it is the
        // only OOB barrier.
        let tail_start = addr.saturating_add(size).div_ceil(GRANULE) * GRANULE;
        shadow.poison(tail_start, tail_start + GRANULE, code::HEAP_REDZONE);
    }

    /// Handles a free event. Returns a report for double/invalid frees.
    pub fn on_free(
        &mut self,
        shadow: &mut ShadowMemory,
        addr: u32,
        pc: u32,
        cpu: usize,
    ) -> Option<Report> {
        if addr == 0 {
            return None; // free(NULL)
        }
        if let Some(freed) = self.freed.get(&addr) {
            return Some(Report {
                class: BugClass::DoubleFree,
                addr,
                size: 0,
                is_write: false,
                pc,
                cpu,
                chunk: Some(ChunkInfo {
                    addr,
                    size: freed.size,
                    alloc_pc: freed.alloc_pc,
                    free_pc: Some(freed.free_pc),
                }),
                other: None,
            });
        }
        let Some(live) = self.live.remove(&addr) else {
            return Some(Report {
                class: BugClass::InvalidFree,
                addr,
                size: 0,
                is_write: false,
                pc,
                cpu,
                chunk: None,
                other: None,
            });
        };
        shadow.poison(addr, addr + live.size.max(1), code::FREED);
        self.freed
            .insert(addr, FreedChunk { size: live.size, alloc_pc: live.alloc_pc, free_pc: pc });
        self.quarantine.push_back(addr);
        self.quarantine_used += u64::from(live.size);
        while self.quarantine_used > self.config.quarantine_bytes {
            let Some(evicted) = self.quarantine.pop_front() else { break };
            if let Some(chunk) = self.freed.remove(&evicted) {
                self.quarantine_used -= u64::from(chunk.size);
                self.pressure_evictions += 1;
                // Evicted chunks lose their FREED poison only if the guest
                // allocator has not recycled them; recycling already
                // unpoisoned via on_alloc. Leave the shadow as-is: the
                // region is unallocated heap either way.
                shadow.poison(evicted, evicted + chunk.size.max(1), code::HEAP);
            }
        }
        None
    }

    /// Registers a global object with redzones.
    pub fn on_global(&mut self, shadow: &mut ShadowMemory, addr: u32, size: u32, redzone: u32) {
        shadow.poison(addr.saturating_sub(redzone), addr, code::GLOBAL_REDZONE);
        let end_aligned = addr.saturating_add(size).div_ceil(GRANULE) * GRANULE;
        shadow.poison(end_aligned, end_aligned + redzone, code::GLOBAL_REDZONE);
        if !size.is_multiple_of(GRANULE) {
            // Partial-tail watermark (unpoison_object semantics).
            shadow.unpoison_object(addr, size);
        }
        self.globals.push((addr, size));
    }

    /// Classifies a shadow violation into a report.
    pub fn classify(
        &self,
        bad_addr: u32,
        shadow_code: u8,
        size: u8,
        is_write: bool,
        pc: u32,
        cpu: usize,
    ) -> Report {
        let (class, chunk) = match shadow_code {
            code::FREED => {
                let chunk = self.freed_chunk_containing(bad_addr);
                (BugClass::Uaf, chunk)
            }
            code::GLOBAL_REDZONE => (BugClass::GlobalOob, None),
            code::HEAP | code::HEAP_REDZONE => {
                (BugClass::HeapOob, self.live_chunk_before(bad_addr))
            }
            1..=7 => (BugClass::HeapOob, self.live_chunk_before(bad_addr)),
            _ => (BugClass::WildAccess, None),
        };
        Report { class, addr: bad_addr, size, is_write, pc, cpu, chunk, other: None }
    }

    fn freed_chunk_containing(&self, addr: u32) -> Option<ChunkInfo> {
        self.freed
            .iter()
            .filter(|(&base, chunk)| base <= addr && addr < base + chunk.size.max(1))
            .map(|(&base, chunk)| ChunkInfo {
                addr: base,
                size: chunk.size,
                alloc_pc: chunk.alloc_pc,
                free_pc: Some(chunk.free_pc),
            })
            .next()
    }

    fn live_chunk_before(&self, addr: u32) -> Option<ChunkInfo> {
        self.live
            .iter()
            .filter(|(&base, _)| base <= addr)
            .max_by_key(|(&base, _)| base)
            .filter(|(&base, chunk)| addr < base + chunk.size + 64)
            .map(|(&base, chunk)| ChunkInfo {
                addr: base,
                size: chunk.size,
                alloc_pc: chunk.alloc_pc,
                free_pc: None,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (KasanEngine, ShadowMemory) {
        let mut shadow = ShadowMemory::new(0x10_0000, 0x10000);
        // Model a pre-poisoned heap at 0x10_1000..0x10_3000.
        shadow.poison(0x10_1000, 0x10_3000, code::HEAP);
        (KasanEngine::new(KasanConfig::default()), shadow)
    }

    #[test]
    fn alloc_unpoisons_and_leaves_tail_redzone() {
        let (mut engine, mut shadow) = setup();
        engine.on_alloc(&mut shadow, 0x10_1008, 24, 0x100);
        assert!(shadow.check(0x10_1008, 4).is_ok());
        assert!(shadow.check(0x10_1008 + 20, 4).is_ok());
        // One byte past the object is poisoned (in-granule slack or tail).
        assert!(shadow.check(0x10_1008 + 24, 1).is_err());
        assert_eq!(engine.live_chunks(), 1);
    }

    #[test]
    fn uaf_detected_after_free() {
        let (mut engine, mut shadow) = setup();
        engine.on_alloc(&mut shadow, 0x10_1008, 24, 0x100);
        assert!(engine.on_free(&mut shadow, 0x10_1008, 0x200, 0).is_none());
        let err = shadow.check(0x10_1008 + 4, 4).unwrap_err();
        assert_eq!(err.code, code::FREED);
        let report = engine.classify(err.bad_addr, err.code, 4, false, 0x300, 0);
        assert_eq!(report.class, BugClass::Uaf);
        let chunk = report.chunk.unwrap();
        assert_eq!(chunk.alloc_pc, 0x100);
        assert_eq!(chunk.free_pc, Some(0x200));
    }

    #[test]
    fn double_free_detected() {
        let (mut engine, mut shadow) = setup();
        engine.on_alloc(&mut shadow, 0x10_1008, 24, 0x100);
        assert!(engine.on_free(&mut shadow, 0x10_1008, 0x200, 0).is_none());
        let report = engine.on_free(&mut shadow, 0x10_1008, 0x210, 0).unwrap();
        assert_eq!(report.class, BugClass::DoubleFree);
    }

    #[test]
    fn invalid_free_detected() {
        let (mut engine, mut shadow) = setup();
        let report = engine.on_free(&mut shadow, 0x10_2000, 0x200, 0).unwrap();
        assert_eq!(report.class, BugClass::InvalidFree);
        // free(NULL) is fine.
        assert!(engine.on_free(&mut shadow, 0, 0x200, 0).is_none());
    }

    #[test]
    fn recycling_clears_quarantine() {
        let (mut engine, mut shadow) = setup();
        engine.on_alloc(&mut shadow, 0x10_1008, 24, 0x100);
        assert!(engine.on_free(&mut shadow, 0x10_1008, 0x200, 0).is_none());
        assert_eq!(engine.quarantined_chunks(), 1);
        engine.on_alloc(&mut shadow, 0x10_1008, 16, 0x300);
        assert_eq!(engine.quarantined_chunks(), 0);
        assert!(shadow.check(0x10_1008, 4).is_ok());
        // A fresh free is NOT a double free.
        assert!(engine.on_free(&mut shadow, 0x10_1008, 0x400, 0).is_none());
    }

    #[test]
    fn quarantine_evicts_by_bytes() {
        let mut shadow = ShadowMemory::new(0x10_0000, 0x10000);
        shadow.poison(0x10_1000, 0x10_8000, code::HEAP);
        let mut engine =
            KasanEngine::new(KasanConfig { quarantine_bytes: 100, heap_prepoison: true });
        for i in 0..4u32 {
            let addr = 0x10_1008 + i * 0x100;
            engine.on_alloc(&mut shadow, addr, 40, 0x100);
            engine.on_free(&mut shadow, addr, 0x200, 0);
        }
        // 4×40 = 160 bytes > 100: the oldest chunks were evicted.
        assert!(engine.quarantined_chunks() <= 3);
    }

    #[test]
    fn global_redzones_detect_oob() {
        let (mut engine, mut shadow) = setup();
        // A 40-byte global at 0x10_0100 with 32-byte redzones.
        engine.on_global(&mut shadow, 0x10_0100, 40, 32);
        assert!(shadow.check(0x10_0100, 4).is_ok());
        assert!(shadow.check(0x10_0100 + 36, 4).is_ok());
        let err = shadow.check(0x10_0100 + 44, 1).unwrap_err();
        let report = engine.classify(err.bad_addr, err.code, 1, true, 0x100, 0);
        assert_eq!(report.class, BugClass::GlobalOob);
        // Left redzone too.
        assert!(shadow.check(0x10_0100 - 4, 4).is_err());
    }

    #[test]
    fn heap_oob_classification_with_chunk_context() {
        let (mut engine, mut shadow) = setup();
        engine.on_alloc(&mut shadow, 0x10_1008, 24, 0x111);
        let err = shadow.check(0x10_1008 + 28, 1).unwrap_err();
        let report = engine.classify(err.bad_addr, err.code, 1, true, 0x400, 0);
        assert_eq!(report.class, BugClass::HeapOob);
        assert_eq!(report.chunk.unwrap().alloc_pc, 0x111);
    }
}
