//! The host-side KCSAN engine.
//!
//! Watchpoint-based data-race detection, decoupled from the guest: every
//! probed access is compared against the active watchpoints; a sampled
//! subset of accesses installs a watchpoint and *stalls its vCPU* (via
//! [`HookAction::Stall`](embsan_emu::hook::HookAction)) so other vCPUs get a
//! window to collide. On stall expiry the watched value is re-read —
//! a change with no observed collision is still a race (some party the
//! probes didn't attribute), reported with an unknown second party.

use crate::report::{BugClass, RaceOther, Report};

/// Configuration of the KCSAN engine, from the merged sanitizer spec.
#[derive(Debug, Clone, Copy)]
pub struct KcsanConfig {
    /// Maximum simultaneous watchpoints.
    pub slots: usize,
    /// Stall window in retired instructions.
    pub window: u64,
    /// One in `sample` eligible accesses installs a watchpoint.
    pub sample: u64,
}

impl Default for KcsanConfig {
    fn default() -> KcsanConfig {
        KcsanConfig { slots: 8, window: 600, sample: 61 }
    }
}

/// An installed watchpoint.
#[derive(Debug, Clone, Copy)]
struct Watchpoint {
    addr: u32,
    size: u8,
    is_write: bool,
    cpu: usize,
    pc: u32,
    value_before: u32,
}

/// Outcome of feeding an access to the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KcsanOutcome {
    /// Nothing to do.
    Pass,
    /// This access should stall its vCPU for the window; `token` must be
    /// returned to [`KcsanEngine::on_stall_expired`].
    Watch {
        /// Opaque watchpoint token.
        token: u64,
        /// Stall length in instructions.
        window: u64,
    },
    /// A race was detected between this access and an active watchpoint.
    Race(Report),
}

/// The KCSAN engine state.
#[derive(Debug, Clone)]
pub struct KcsanEngine {
    config: KcsanConfig,
    slots: Vec<Option<Watchpoint>>,
    counter: u64,
    next_token: u64,
    /// Priority addresses (static race candidates): accesses overlapping
    /// one bypass the sampling interval and install a watchpoint as soon as
    /// a slot is free.
    priority: Vec<u32>,
}

impl KcsanEngine {
    /// Creates an engine.
    pub fn new(config: KcsanConfig) -> KcsanEngine {
        KcsanEngine {
            slots: vec![None; config.slots],
            config,
            counter: 0,
            next_token: 0,
            priority: Vec::new(),
        }
    }

    /// Allocation-reusing restore to `baseline`'s state (fuzzer reset).
    pub(crate) fn restore_from(&mut self, baseline: &KcsanEngine) {
        self.config = baseline.config;
        self.slots.clone_from(&baseline.slots);
        self.counter = baseline.counter;
        self.next_token = baseline.next_token;
        self.priority.clone_from(&baseline.priority);
    }

    /// Number of active watchpoints.
    pub fn active_watchpoints(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Installs the watchpoint-priority address list (word-granular), as
    /// produced by the `embsan-analysis` lockset pass. Accesses touching a
    /// priority word skip the `1/sample` gate, so statically suspected
    /// races get stall windows orders of magnitude sooner.
    pub fn set_priorities(&mut self, addrs: impl IntoIterator<Item = u32>) {
        self.priority = addrs.into_iter().collect();
        self.priority.sort_unstable();
        self.priority.dedup();
    }

    /// The installed priority addresses.
    pub fn priorities(&self) -> &[u32] {
        &self.priority
    }

    fn is_priority(&self, addr: u32, size: u8) -> bool {
        self.priority.iter().any(|&p| Self::overlap(addr, size, p, 4))
    }

    fn overlap(a_addr: u32, a_size: u8, b_addr: u32, b_size: u8) -> bool {
        let a_end = u64::from(a_addr) + u64::from(a_size);
        let b_end = u64::from(b_addr) + u64::from(b_size);
        u64::from(a_addr) < b_end && u64::from(b_addr) < a_end
    }

    /// Feeds a (non-atomic) access. `value_now` is the current memory value
    /// at `addr` (used for the value-change fallback).
    #[allow(clippy::too_many_arguments)]
    pub fn on_access(
        &mut self,
        addr: u32,
        size: u8,
        is_write: bool,
        cpu: usize,
        pc: u32,
        value_now: u32,
    ) -> KcsanOutcome {
        // 1. Collision with an active watchpoint from another CPU?
        for slot in self.slots.iter().flatten() {
            if slot.cpu != cpu
                && Self::overlap(addr, size, slot.addr, slot.size)
                && (slot.is_write || is_write)
            {
                return KcsanOutcome::Race(Report {
                    class: BugClass::Race,
                    addr,
                    size,
                    is_write,
                    pc,
                    cpu,
                    chunk: None,
                    other: Some(RaceOther { pc: slot.pc, cpu: slot.cpu, is_write: slot.is_write }),
                });
            }
        }
        // 2. Sampling: install a watchpoint for one in `sample` accesses.
        // Statically prioritized addresses bypass the sampling gate.
        self.counter += 1;
        if !self.is_priority(addr, size) && !self.counter.is_multiple_of(self.config.sample) {
            return KcsanOutcome::Pass;
        }
        let Some(free) = self.slots.iter().position(|s| s.is_none()) else {
            return KcsanOutcome::Pass;
        };
        self.slots[free] =
            Some(Watchpoint { addr, size, is_write, cpu, pc, value_before: value_now });
        let token = self.next_token << 8 | free as u64;
        self.next_token += 1;
        KcsanOutcome::Watch { token, window: self.config.window }
    }

    /// The stall for `token` expired; `value_now` is the re-read memory
    /// value. Returns a race report if the value changed under the
    /// watchpoint without an attributed collision.
    pub fn on_stall_expired(&mut self, token: u64, value_now: u32) -> Option<Report> {
        let slot_index = (token & 0xFF) as usize;
        let watchpoint = self.slots.get_mut(slot_index)?.take()?;
        if value_now != watchpoint.value_before {
            return Some(Report {
                class: BugClass::Race,
                addr: watchpoint.addr,
                size: watchpoint.size,
                is_write: watchpoint.is_write,
                pc: watchpoint.pc,
                cpu: watchpoint.cpu,
                chunk: None,
                other: None, // unattributed second party
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_sampling_every_access() -> KcsanEngine {
        KcsanEngine::new(KcsanConfig { slots: 4, window: 100, sample: 1 })
    }

    #[test]
    fn write_write_race_detected() {
        let mut engine = engine_sampling_every_access();
        let outcome = engine.on_access(0x1000, 4, true, 0, 0x100, 7);
        assert!(matches!(outcome, KcsanOutcome::Watch { .. }));
        let outcome = engine.on_access(0x1000, 4, true, 1, 0x200, 7);
        let KcsanOutcome::Race(report) = outcome else {
            panic!("expected race, got {outcome:?}");
        };
        assert_eq!(report.class, BugClass::Race);
        assert_eq!(report.cpu, 1);
        let other = report.other.unwrap();
        assert_eq!(other.cpu, 0);
        assert!(other.is_write);
    }

    #[test]
    fn read_read_is_not_a_race() {
        let mut engine = engine_sampling_every_access();
        engine.on_access(0x1000, 4, false, 0, 0x100, 7);
        let outcome = engine.on_access(0x1000, 4, false, 1, 0x200, 7);
        assert!(!matches!(outcome, KcsanOutcome::Race(_)));
    }

    #[test]
    fn same_cpu_never_races_with_itself() {
        let mut engine = engine_sampling_every_access();
        engine.on_access(0x1000, 4, true, 0, 0x100, 7);
        let outcome = engine.on_access(0x1000, 4, true, 0, 0x104, 7);
        assert!(!matches!(outcome, KcsanOutcome::Race(_)));
    }

    #[test]
    fn overlap_is_byte_precise() {
        let mut engine = engine_sampling_every_access();
        engine.on_access(0x1000, 4, true, 0, 0x100, 7);
        // Adjacent but non-overlapping: no race.
        let outcome = engine.on_access(0x1004, 4, true, 1, 0x200, 7);
        assert!(!matches!(outcome, KcsanOutcome::Race(_)));
        // Partial overlap (2 bytes at 0x1002..0x1004): race.
        let outcome = engine.on_access(0x1002, 2, true, 1, 0x204, 7);
        assert!(matches!(outcome, KcsanOutcome::Race(_)));
    }

    #[test]
    fn value_change_fallback_reports_unattributed_race() {
        let mut engine = engine_sampling_every_access();
        let KcsanOutcome::Watch { token, .. } = engine.on_access(0x1000, 4, false, 0, 0x100, 7)
        else {
            panic!("expected watch");
        };
        let report = engine.on_stall_expired(token, 9).unwrap();
        assert_eq!(report.class, BugClass::Race);
        assert!(report.other.is_none());
        // Unchanged value: no report, slot freed.
        let KcsanOutcome::Watch { token, .. } = engine.on_access(0x2000, 4, false, 0, 0x100, 5)
        else {
            panic!("expected watch");
        };
        assert!(engine.on_stall_expired(token, 5).is_none());
        assert_eq!(engine.active_watchpoints(), 0);
    }

    #[test]
    fn sampling_interval_is_respected() {
        let mut engine = KcsanEngine::new(KcsanConfig { slots: 4, window: 10, sample: 10 });
        let mut watches = 0;
        for i in 0..100u32 {
            match engine.on_access(0x1000 + i * 8, 4, true, 0, 0x100, 0) {
                KcsanOutcome::Watch { token, .. } => {
                    watches += 1;
                    engine.on_stall_expired(token, 0);
                }
                KcsanOutcome::Pass => {}
                KcsanOutcome::Race(_) => panic!("no races expected"),
            }
        }
        assert_eq!(watches, 10);
    }

    #[test]
    fn priority_addresses_bypass_sampling() {
        // Sampling interval so sparse that nothing would be watched.
        let mut engine = KcsanEngine::new(KcsanConfig { slots: 4, window: 100, sample: 1 << 20 });
        engine.set_priorities([0x3000]);
        // Non-priority access: passes (counter far from the interval).
        assert_eq!(engine.on_access(0x1000, 4, true, 0, 0x100, 0), KcsanOutcome::Pass);
        // Priority access: watched immediately despite the interval,
        // including partial overlaps of the priority word.
        assert!(matches!(
            engine.on_access(0x3002, 2, true, 0, 0x104, 0),
            KcsanOutcome::Watch { .. }
        ));
        // A second CPU hitting the watched word races as usual.
        assert!(matches!(engine.on_access(0x3000, 4, true, 1, 0x200, 0), KcsanOutcome::Race(_)));
    }

    #[test]
    fn slots_are_bounded() {
        let mut engine = KcsanEngine::new(KcsanConfig { slots: 2, window: 10, sample: 1 });
        let mut tokens = Vec::new();
        for i in 0..5u32 {
            if let KcsanOutcome::Watch { token, .. } =
                engine.on_access(0x1000 + i * 16, 4, true, 0, 0x100, 0)
            {
                tokens.push(token);
            }
        }
        assert_eq!(tokens.len(), 2);
        assert_eq!(engine.active_watchpoints(), 2);
    }
}
