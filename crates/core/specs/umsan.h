/*
 * EMBSAN reference extraction: an uninitialized-memory-read sanitizer
 * (UMSAN), in the spirit of KMSAN.
 *
 * This header exists to exercise the paper's adaptability claim (§5):
 * "Adapting new sanitizer functionalities to EMBSAN is also simple,
 * requiring developers to write runtime code accordingly and designate
 * which instructions to instrument and what interfaces should be called."
 * UMSAN reuses the existing interception points — the Distiller merges it
 * with KASAN/KCSAN under the §3.1 union rules with no new plumbing.
 *
 * Simplification vs real KMSAN: shadow is not propagated through copies;
 * any load from never-initialized heap bytes reports immediately.
 */

EMBSAN_SANITIZER(umsan)

EMBSAN_RESOURCE(initshadow, granule, 1)

EMBSAN_INTERCEPT(insn, load)
void __msan_check_load(const void *addr, size_t size);

EMBSAN_INTERCEPT(insn, store)
void __msan_note_store(const void *addr, size_t size);

EMBSAN_INTERCEPT(call, alloc)
void msan_poison_alloc(const void *addr, size_t size);

EMBSAN_INTERCEPT(call, free)
void msan_unpoison_free(const void *addr);
