/*
 * EMBSAN reference extraction: Kernel Concurrency Sanitizer (KCSAN).
 *
 * The interception points overlap KASAN's (load/store/atomic) but request
 * different argument sets — the §3.1 merge rules unite them, widening
 * shared arguments and annotating each with its source sanitizers.
 */

EMBSAN_SANITIZER(kcsan)

EMBSAN_RESOURCE(shadow, granule, 1)
EMBSAN_RESOURCE(watchpoints, slots, 8)
EMBSAN_RESOURCE(watchpoints, window, 900)
EMBSAN_RESOURCE(watchpoints, sample, 47)

EMBSAN_INTERCEPT(insn, load)
void __tsan_read_range(const void *addr, size_t size, unsigned int cpu);

EMBSAN_INTERCEPT(insn, store)
void __tsan_write_range(const void *addr, size_t size, unsigned int value, unsigned int cpu);

EMBSAN_INTERCEPT(insn, atomic)
void __tsan_atomic_rmw(const void *addr, size_t size, unsigned int cpu);
