/*
 * EMBSAN reference extraction: Kernel Address Sanitizer (KASAN).
 *
 * This file models the interface headers a tester feeds to the Sanitizer
 * Common Function Distiller (paper §3.1): each interception API is a C
 * prototype annotated with an EMBSAN_INTERCEPT(kind, point) marker, and
 * external resource requirements are declared with EMBSAN_RESOURCE.
 */

EMBSAN_SANITIZER(kasan)

EMBSAN_RESOURCE(shadow, granule, 8)
EMBSAN_RESOURCE(quarantine, bytes, 262144)

EMBSAN_INTERCEPT(insn, load)
void __kasan_check_read(const void *addr, unsigned int size);

EMBSAN_INTERCEPT(insn, store)
void __kasan_check_write(const void *addr, unsigned int size);

EMBSAN_INTERCEPT(insn, atomic)
void __kasan_check_atomic(const void *addr, unsigned int size);

EMBSAN_INTERCEPT(call, alloc)
void kasan_kmalloc(const void *addr, size_t size);

EMBSAN_INTERCEPT(call, free)
void kasan_slab_free(const void *addr);

EMBSAN_INTERCEPT(call, global)
void kasan_register_global(const void *addr, size_t size, size_t redzone);

EMBSAN_INTERCEPT(event, ready)
void kasan_init(void);

EMBSAN_INTERCEPT(event, fault)
void kasan_report_fault(const void *addr);
