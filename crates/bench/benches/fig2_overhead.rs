//! Microbenchmark behind Figure 2: corpus replay under each sanitizer
//! configuration on one representative firmware.
//!
//! Run with `cargo bench -p embsan-bench`. The full-figure harness (all
//! firmware, grouped facets) is the `figure2` binary; this bench gives
//! per-configuration replay timings on one target. It is a plain
//! `harness = false` binary with an in-tree timing loop because the
//! offline build environment cannot fetch `criterion`.

use std::time::{Duration, Instant};

use embsan_core::probe::{probe, ProbeMode};
use embsan_core::session::Session;
use embsan_emu::hook::NullHook;
use embsan_emu::machine::{Machine, RunExit};
use embsan_guestos::executor::ExecProgram;
use embsan_guestos::firmware_by_name;
use embsan_guestos::workload::merged_corpus;
use embsan_guestos::SanMode;

const SAMPLES: usize = 10;

fn corpus() -> Vec<ExecProgram> {
    merged_corpus(0xBE9C, 4, 32)
}

/// Times `iter` over `SAMPLES` runs (after one warm-up) and prints the
/// median, min and max — the numbers criterion would have characterized.
fn bench_function(name: &str, mut iter: impl FnMut()) {
    iter(); // warm-up: populate translation caches
    let mut samples: Vec<Duration> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            iter();
            start.elapsed()
        })
        .collect();
    samples.sort();
    println!(
        "{name:<28} median {:>10.3?}  min {:>10.3?}  max {:>10.3?}  ({SAMPLES} samples)",
        samples[samples.len() / 2],
        samples[0],
        samples[samples.len() - 1],
    );
}

/// Replays the corpus through the raw machine mailbox (no host runtime).
fn replay_raw(machine: &mut Machine, corpus: &[ExecProgram]) {
    for program in corpus {
        machine.bus_mut().devices.mailbox.host_load(&program.encode());
        loop {
            let exit = machine.run(&mut NullHook, 500_000).unwrap();
            if machine.bus().devices.mailbox.result_count() >= program.calls.len()
                || exit != RunExit::BudgetExhausted
            {
                break;
            }
        }
    }
}

/// Baseline: raw machine, no sanitizer.
fn bench_baseline() {
    let spec = firmware_by_name("OpenWRT-armvirt").unwrap();
    let image = spec.build(SanMode::None).unwrap();
    let mut machine = image.boot_machine(1).unwrap();
    machine.run(&mut NullHook, 400_000_000).unwrap();
    let snapshot = machine.snapshot();
    let corpus = corpus();
    bench_function("replay/baseline", || {
        machine.restore(&snapshot).unwrap();
        replay_raw(&mut machine, &corpus);
    });
}

fn bench_sanitized(name: &str, san: SanMode, mode: ProbeMode) {
    let spec = firmware_by_name("OpenWRT-armvirt").unwrap();
    let image = spec.build(san).unwrap();
    let specs = embsan_core::reference_specs().unwrap();
    let artifacts = probe(&image, mode, None).unwrap();
    let mut session = Session::new(&image, &specs, &artifacts).unwrap();
    session.run_to_ready(400_000_000).unwrap();
    let corpus = corpus();
    bench_function(name, || {
        session.reset().unwrap();
        for program in &corpus {
            session.run_program(program, 50_000_000).unwrap();
        }
    });
}

/// Native KASAN: guest-resident checks, no host runtime.
fn bench_native() {
    let spec = firmware_by_name("OpenWRT-armvirt").unwrap();
    let image = spec.build(SanMode::NativeKasan).unwrap();
    let mut machine = image.boot_machine(1).unwrap();
    machine.run(&mut NullHook, 400_000_000).unwrap();
    let snapshot = machine.snapshot();
    let corpus = corpus();
    bench_function("replay/native-kasan", || {
        machine.restore(&snapshot).unwrap();
        replay_raw(&mut machine, &corpus);
    });
}

fn main() {
    bench_baseline();
    bench_sanitized("replay/embsan-c-kasan+kcsan", SanMode::SanCall, ProbeMode::CompileTime);
    bench_sanitized("replay/embsan-d-kasan+kcsan", SanMode::None, ProbeMode::DynamicSource);
    bench_native();
}
