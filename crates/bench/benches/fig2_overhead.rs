//! Criterion microbenchmark behind Figure 2: corpus replay under each
//! sanitizer configuration on one representative firmware.
//!
//! Run with `cargo bench -p embsan-bench`. The full-figure harness (all
//! firmware, grouped facets) is the `figure2` binary; this bench gives
//! statistically characterized per-configuration numbers on one target.

use criterion::{criterion_group, criterion_main, Criterion};

use embsan_core::probe::{probe, ProbeMode};
use embsan_core::session::Session;
use embsan_emu::hook::NullHook;
use embsan_emu::machine::RunExit;
use embsan_guestos::executor::ExecProgram;
use embsan_guestos::firmware_by_name;
use embsan_guestos::workload::merged_corpus;
use embsan_guestos::SanMode;

fn corpus() -> Vec<ExecProgram> {
    merged_corpus(0xBE9C, 4, 32)
}

/// Baseline: raw machine, no sanitizer.
fn bench_baseline(c: &mut Criterion) {
    let spec = firmware_by_name("OpenWRT-armvirt").unwrap();
    let image = spec.build(SanMode::None).unwrap();
    let mut machine = image.boot_machine(1).unwrap();
    machine.run(&mut NullHook, 400_000_000).unwrap();
    let snapshot = machine.snapshot();
    let corpus = corpus();
    c.bench_function("replay/baseline", |b| {
        b.iter(|| {
            machine.restore(&snapshot).unwrap();
            for program in &corpus {
                machine
                    .bus_mut()
                    .devices
                    .mailbox
                    .host_load(&program.encode());
                loop {
                    let exit = machine.run(&mut NullHook, 500_000).unwrap();
                    if machine.bus().devices.mailbox.result_count() >= program.calls.len()
                        || exit != RunExit::BudgetExhausted
                    {
                        break;
                    }
                }
            }
        })
    });
}

fn bench_sanitized(c: &mut Criterion, name: &str, san: SanMode, mode: ProbeMode) {
    let spec = firmware_by_name("OpenWRT-armvirt").unwrap();
    let image = spec.build(san).unwrap();
    let specs = embsan_core::reference_specs().unwrap();
    let artifacts = probe(&image, mode, None).unwrap();
    let mut session = Session::new(&image, &specs, &artifacts).unwrap();
    session.run_to_ready(400_000_000).unwrap();
    let corpus = corpus();
    c.bench_function(name, |b| {
        b.iter(|| {
            session.reset().unwrap();
            for program in &corpus {
                session.run_program(program, 50_000_000).unwrap();
            }
        })
    });
}

/// Native KASAN: guest-resident checks, no host runtime.
fn bench_native(c: &mut Criterion) {
    let spec = firmware_by_name("OpenWRT-armvirt").unwrap();
    let image = spec.build(SanMode::NativeKasan).unwrap();
    let mut machine = image.boot_machine(1).unwrap();
    machine.run(&mut NullHook, 400_000_000).unwrap();
    let snapshot = machine.snapshot();
    let corpus = corpus();
    c.bench_function("replay/native-kasan", |b| {
        b.iter(|| {
            machine.restore(&snapshot).unwrap();
            for program in &corpus {
                machine
                    .bus_mut()
                    .devices
                    .mailbox
                    .host_load(&program.encode());
                loop {
                    let exit = machine.run(&mut NullHook, 500_000).unwrap();
                    if machine.bus().devices.mailbox.result_count() >= program.calls.len()
                        || exit != RunExit::BudgetExhausted
                    {
                        break;
                    }
                }
            }
        })
    });
}

fn benches(c: &mut Criterion) {
    bench_baseline(c);
    bench_sanitized(c, "replay/embsan-c-kasan+kcsan", SanMode::SanCall, ProbeMode::CompileTime);
    bench_sanitized(c, "replay/embsan-d-kasan+kcsan", SanMode::None, ProbeMode::DynamicSource);
    bench_native(c);
}

criterion_group! {
    name = fig2;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(fig2);
