//! Figure 2: runtime overhead of EMBSAN vs native sanitizers.
//!
//! §4.3's methodology: the firmware replays a merged corpus; the slowdown
//! is the ratio of sanitized to unsanitized execution. Configurations:
//!
//! - **Baseline**: uninstrumented firmware, no hooks;
//! - **EMBSAN-C**: instrumented firmware + on-host runtime via hypercalls;
//! - **EMBSAN-D**: uninstrumented firmware + translation-spliced probes;
//! - **Native**: firmware carrying a guest-resident KASAN/KCSAN, no host
//!   runtime (the sanitizer's own routines are translated guest code —
//!   the paper's explanation for why EMBSAN can beat it).
//!
//! Both wall-clock and retired-guest-instruction counts are captured; the
//! wall ratio is the figure's metric (EMBSAN-D adds *host* work per access
//! that guest instruction counts cannot see).

use std::time::{Duration, Instant};

use embsan_core::probe::{probe, ProbeMode};
use embsan_core::session::Session;
use embsan_dsl::SanitizerSpec;
use embsan_emu::hook::NullHook;
use embsan_emu::machine::{Machine, RunExit};
use embsan_guestos::executor::ExecProgram;
use embsan_guestos::workload::merged_corpus;
use embsan_guestos::{FirmwareSpec, SanMode};

/// Which sanitizer functionality is being measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SanitizerChoice {
    /// KASAN-equivalent functionality.
    Kasan,
    /// KCSAN-equivalent functionality.
    Kcsan,
}

impl SanitizerChoice {
    /// The single-sanitizer reference spec for this choice.
    pub fn specs(self) -> Vec<SanitizerSpec> {
        let header = match self {
            SanitizerChoice::Kasan => embsan_core::distill::KASAN_HEADER,
            SanitizerChoice::Kcsan => embsan_core::distill::KCSAN_HEADER,
        };
        vec![embsan_core::distill::distill(header).expect("reference header distills")]
    }

    /// The guest-native build mode for this choice.
    pub fn native_mode(self) -> SanMode {
        match self {
            SanitizerChoice::Kasan => SanMode::NativeKasan,
            SanitizerChoice::Kcsan => SanMode::NativeKcsan,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            SanitizerChoice::Kasan => "KASAN",
            SanitizerChoice::Kcsan => "KCSAN",
        }
    }
}

/// One measured configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverheadConfig {
    /// Unsanitized reference run.
    Baseline,
    /// EMBSAN with compile-time instrumentation.
    EmbsanC(SanitizerChoice),
    /// EMBSAN with dynamic instrumentation.
    EmbsanD(SanitizerChoice),
    /// Guest-native sanitizer baseline.
    Native(SanitizerChoice),
}

impl OverheadConfig {
    /// Display label (matches the figure's series names).
    pub fn label(self) -> String {
        match self {
            OverheadConfig::Baseline => "baseline".to_string(),
            OverheadConfig::EmbsanC(c) => format!("EmbSan-C {}", c.label()),
            OverheadConfig::EmbsanD(c) => format!("EmbSan-D {}", c.label()),
            OverheadConfig::Native(c) => format!("native {}", c.label()),
        }
    }

    /// Whether this configuration can be built for closed-source firmware
    /// (recompilation-based configs cannot).
    pub fn possible_for(self, spec: &FirmwareSpec) -> bool {
        match self {
            OverheadConfig::Baseline | OverheadConfig::EmbsanD(_) => true,
            OverheadConfig::EmbsanC(_) | OverheadConfig::Native(_) => spec.open_source,
        }
    }
}

/// One measurement.
#[derive(Debug, Clone, Copy)]
pub struct OverheadRow {
    /// Measured configuration.
    pub config: OverheadConfig,
    /// Wall-clock time replaying the corpus.
    pub wall: Duration,
    /// Guest instructions retired during the replay.
    pub retired: u64,
    /// Sanitizer checks performed (0 for baseline/native).
    pub checks: u64,
}

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct OverheadWorkload {
    /// Corpus seed.
    pub seed: u32,
    /// Number of programs.
    pub programs: usize,
    /// Calls per program.
    pub calls: usize,
    /// Times the whole corpus is replayed (stabilizes wall-clock).
    pub repeats: usize,
}

impl Default for OverheadWorkload {
    fn default() -> OverheadWorkload {
        OverheadWorkload { seed: 0xF16, programs: 20, calls: 56, repeats: 6 }
    }
}

const READY_BUDGET: u64 = 400_000_000;
const PROGRAM_BUDGET: u64 = 50_000_000;

/// Replays the corpus on a raw machine (baseline / native configs).
fn run_corpus_raw(
    machine: &mut Machine,
    corpus: &[ExecProgram],
    repeats: usize,
) -> (Duration, u64) {
    let retired_before = machine.retired();
    let start = Instant::now();
    for program in corpus.iter().cycle().take(corpus.len() * repeats) {
        machine.bus_mut().devices.mailbox.host_load(&program.encode());
        let total = program.calls.len();
        let mut spent = 0u64;
        loop {
            let exit = machine.run(&mut NullHook, 500_000).expect("machine runs");
            spent += 500_000;
            // The overhead workload is clean: any fault or halt means the
            // harness (or a guest runtime) is broken, not the workload.
            assert!(
                !matches!(exit, RunExit::Halted { .. } | RunExit::Faulted { .. }),
                "clean workload must not crash: {exit:?}"
            );
            let done = machine.bus().devices.mailbox.result_count() >= total;
            if done || spent >= PROGRAM_BUDGET {
                break;
            }
        }
        machine.bus_mut().devices.mailbox.host_take_results();
    }
    (start.elapsed(), machine.retired() - retired_before)
}

/// Replays the corpus through a sanitized session.
fn run_corpus_session(
    session: &mut Session,
    corpus: &[ExecProgram],
    repeats: usize,
) -> (Duration, u64) {
    let retired_before = session.machine().retired();
    let start = Instant::now();
    for program in corpus.iter().cycle().take(corpus.len() * repeats) {
        session.run_program(program, PROGRAM_BUDGET).expect("workload program runs");
    }
    (start.elapsed(), session.machine().retired() - retired_before)
}

/// Measures one configuration on one firmware.
///
/// # Panics
///
/// Panics on harness failures (builds and boots must succeed) and if a
/// sanitized run reports a bug on the clean workload (a false positive
/// would invalidate the overhead comparison).
pub fn measure_configuration(
    spec: &FirmwareSpec,
    config: OverheadConfig,
    workload: &OverheadWorkload,
) -> OverheadRow {
    assert!(config.possible_for(spec), "{:?} impossible for {}", config, spec.name);
    let corpus = merged_corpus(workload.seed, workload.programs, workload.calls);
    match config {
        OverheadConfig::Baseline => {
            let image = spec.build(SanMode::None).expect("baseline build");
            let mut machine = image.boot_machine(1).expect("baseline machine");
            let exit = machine.run(&mut NullHook, READY_BUDGET).expect("boot");
            assert_eq!(exit, RunExit::AllIdle);
            let (wall, retired) = run_corpus_raw(&mut machine, &corpus, workload.repeats);
            OverheadRow { config, wall, retired, checks: 0 }
        }
        OverheadConfig::Native(choice) => {
            let image = spec.build(choice.native_mode()).expect("native build");
            let mut machine = image.boot_machine(1).expect("native machine");
            let exit = machine.run(&mut NullHook, READY_BUDGET).expect("boot");
            assert_eq!(exit, RunExit::AllIdle, "native boot is clean");
            machine.take_console();
            let (wall, retired) = run_corpus_raw(&mut machine, &corpus, workload.repeats);
            // The clean workload must stay clean: a native false positive
            // (console splat or report halt) would invalidate the ratio.
            let console = String::from_utf8_lossy(&machine.take_console()).to_string();
            assert!(
                !console.contains("KASAN") && !console.contains("KCSAN"),
                "native false positive on clean workload: {console}"
            );
            OverheadRow { config, wall, retired, checks: 0 }
        }
        OverheadConfig::EmbsanC(choice) | OverheadConfig::EmbsanD(choice) => {
            let is_c = matches!(config, OverheadConfig::EmbsanC(_));
            let san = if is_c { SanMode::SanCall } else { SanMode::None };
            let image = spec.build(san).expect("embsan build");
            let mode = if is_c {
                ProbeMode::CompileTime
            } else if image.has_symbols() {
                ProbeMode::DynamicSource
            } else {
                ProbeMode::DynamicBinary
            };
            let artifacts = probe(&image, mode, None).expect("probing");
            let mut session =
                Session::new(&image, &choice.specs(), &artifacts).expect("session constructs");
            session.run_to_ready(READY_BUDGET).expect("ready");
            let (wall, retired) = run_corpus_session(&mut session, &corpus, workload.repeats);
            assert!(
                session.reports().is_empty(),
                "false positive during overhead run: {:?}",
                session.reports()
            );
            OverheadRow { config, wall, retired, checks: session.runtime().checks_performed() }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsan_guestos::firmware_by_name;

    /// The central Figure-2 shape assertions on one firmware: every
    /// sanitized configuration costs more than baseline, and EMBSAN-D
    /// (probing every access of every function) retires no extra guest
    /// work but performs more checks than EMBSAN-C (which skips
    /// `no_instrument` code).
    #[test]
    fn overhead_shape_on_one_firmware() {
        let spec = firmware_by_name("OpenWRT-armvirt").unwrap();
        let workload = OverheadWorkload { seed: 9, programs: 4, calls: 30, repeats: 1 };
        let baseline = measure_configuration(spec, OverheadConfig::Baseline, &workload);
        let c =
            measure_configuration(spec, OverheadConfig::EmbsanC(SanitizerChoice::Kasan), &workload);
        let d =
            measure_configuration(spec, OverheadConfig::EmbsanD(SanitizerChoice::Kasan), &workload);
        let native =
            measure_configuration(spec, OverheadConfig::Native(SanitizerChoice::Kasan), &workload);
        // Guest-instruction shape: instrumented builds retire more
        // instructions than the uninstrumented ones; native (in-guest
        // checks) retires the most by far.
        assert!(c.retired > baseline.retired);
        assert!(native.retired > c.retired);
        // EMBSAN-D adds no guest work (same binary as baseline); the two
        // runs may differ by a handful of boot-tail instructions because
        // the session stops at the ready breakpoint, the raw baseline at
        // first idle.
        assert!(
            d.retired.abs_diff(baseline.retired) < 64,
            "EMBSAN-D guest work {} vs baseline {}",
            d.retired,
            baseline.retired
        );
        // Check accounting: D probes everything, C only instrumented code.
        assert!(d.checks > c.checks);
        assert!(baseline.checks == 0 && native.checks == 0);
    }

    #[test]
    fn closed_firmware_rejects_recompilation_configs() {
        let spec = firmware_by_name("TP-Link WDR-7660").unwrap();
        assert!(!OverheadConfig::EmbsanC(SanitizerChoice::Kasan).possible_for(spec));
        assert!(!OverheadConfig::Native(SanitizerChoice::Kasan).possible_for(spec));
        assert!(OverheadConfig::EmbsanD(SanitizerChoice::Kasan).possible_for(spec));
    }
}
