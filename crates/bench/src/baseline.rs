//! Baseline comparison for the CI bench-smoke regression guard.
//!
//! Reads a checked-in `embsan-bench-throughput-v1` document (the baseline),
//! matches its worker-scaling points against a freshly measured
//! [`ThroughputReport`] by `(firmware, workers)`, and reports every point
//! whose throughput fell more than the tolerated fraction below the
//! baseline. Points flagged `oversubscribed_workers` — in the baseline's
//! warnings array or on the current host — are excluded: their wall clock
//! measures host scheduling, not the engine (see
//! [`ThroughputReport::warnings`]).

use crate::throughput::ThroughputReport;

/// One comparable worker-scaling point lifted from a baseline document.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselinePoint {
    /// Firmware name.
    pub firmware: String,
    /// Worker threads of the point.
    pub workers: usize,
    /// Baseline throughput.
    pub execs_per_sec: f64,
    /// Whether the baseline itself flagged this point as oversubscribed.
    pub oversubscribed: bool,
    /// Baseline shared-base size in bytes (`None` in documents written
    /// before the memory fields existed).
    pub base_bytes: Option<u64>,
    /// Baseline peak per-worker overlay in bytes (`None` for old
    /// documents).
    pub peak_overlay_bytes: Option<u64>,
}

/// Extracts the comparable points of a baseline throughput document.
///
/// # Errors
///
/// Returns a description of the first malformed construct. Unknown fields
/// are ignored so older guards keep working as the schema grows.
pub fn parse_baseline(text: &str) -> Result<Vec<BaselinePoint>, String> {
    let doc = json::parse(text)?;
    let root = doc.as_object().ok_or("baseline root must be an object")?;
    if json::field(root, "schema").and_then(json::Value::as_str)
        != Some("embsan-bench-throughput-v1")
    {
        return Err("baseline is not an embsan-bench-throughput-v1 document".into());
    }

    let mut flagged = Vec::new();
    if let Some(warnings) = json::field(root, "warnings").and_then(json::Value::as_array) {
        for w in warnings {
            let w = w.as_object().ok_or("warning entries must be objects")?;
            if json::field(w, "kind").and_then(json::Value::as_str)
                == Some("oversubscribed_workers")
            {
                let firmware = json::field(w, "firmware")
                    .and_then(json::Value::as_str)
                    .ok_or("warning missing firmware")?;
                let workers = json::field(w, "workers")
                    .and_then(json::Value::as_usize)
                    .ok_or("warning missing workers")?;
                flagged.push((firmware.to_string(), workers));
            }
        }
    }

    let mut points = Vec::new();
    let firmwares = json::field(root, "firmwares")
        .and_then(json::Value::as_array)
        .ok_or("baseline missing firmwares array")?;
    for fw in firmwares {
        let fw = fw.as_object().ok_or("firmware entries must be objects")?;
        let name = json::field(fw, "firmware")
            .and_then(json::Value::as_str)
            .ok_or("firmware entry missing name")?;
        let workers = json::field(fw, "workers")
            .and_then(json::Value::as_array)
            .ok_or("firmware entry missing workers array")?;
        for p in workers {
            let p = p.as_object().ok_or("worker points must be objects")?;
            let count = json::field(p, "workers")
                .and_then(json::Value::as_usize)
                .ok_or("worker point missing workers")?;
            let execs_per_sec = json::field(p, "execs_per_sec")
                .and_then(json::Value::as_f64)
                .ok_or("worker point missing execs_per_sec")?;
            // Memory fields are additive (schema stays -v1): absent in
            // older baselines, so they parse as None rather than erroring.
            let as_u64 =
                |key| json::field(p, key).and_then(json::Value::as_usize).map(|value| value as u64);
            points.push(BaselinePoint {
                firmware: name.to_string(),
                workers: count,
                execs_per_sec,
                oversubscribed: flagged.iter().any(|(f, w)| f == name && *w == count),
                base_bytes: as_u64("base_bytes"),
                peak_overlay_bytes: as_u64("peak_overlay_bytes"),
            });
        }
    }
    Ok(points)
}

/// Compares a fresh report against baseline points and returns one line per
/// regression: a matched point whose throughput is more than `tolerance`
/// (a fraction, e.g. `0.25`) below the baseline. Oversubscribed points —
/// flagged in the baseline or exceeding the fresh report's `host_cores` —
/// and points without a baseline counterpart are skipped.
pub fn regressions(
    baseline: &[BaselinePoint],
    fresh: &ThroughputReport,
    tolerance: f64,
) -> Vec<String> {
    let mut out = Vec::new();
    for fw in &fresh.firmwares {
        for p in &fw.points {
            if p.workers > fresh.host_cores {
                continue;
            }
            let Some(base) =
                baseline.iter().find(|b| b.firmware == fw.firmware && b.workers == p.workers)
            else {
                continue;
            };
            if base.oversubscribed {
                continue;
            }
            let floor = base.execs_per_sec * (1.0 - tolerance);
            if p.execs_per_sec < floor {
                out.push(format!(
                    "{} @ {} workers: {:.0} execs/sec is {:.0}% below baseline {:.0} \
                     (tolerance {:.0}%)",
                    fw.firmware,
                    p.workers,
                    p.execs_per_sec,
                    (1.0 - p.execs_per_sec / base.execs_per_sec) * 100.0,
                    base.execs_per_sec,
                    tolerance * 100.0,
                ));
            }
        }
    }
    out
}

/// The CI memory gate: returns one line per worker-scaling point whose
/// per-worker memory has regressed toward O(RAM). Two checks per matched,
/// non-oversubscribed point:
///
/// 1. **Absolute**: the peak per-worker overlay must stay at least 10×
///    below the shared base (`peak_overlay_bytes * 10 <= base_bytes`) —
///    the copy-on-write contract that an extra worker costs dirty pages,
///    not a RAM image.
/// 2. **Relative**: with a baseline that recorded memory, the fresh
///    overlay must not exceed 10× the baseline's (a creeping-divergence
///    guard; the generous factor absorbs workload noise).
///
/// Points oversubscribing the host are exempt, like the throughput guard:
/// scheduling jitter inflates how many pages an iteration touches between
/// resets. Single-worker points still gate check 1 — the overlay bound is
/// per worker, not about scaling.
pub fn memory_regressions(baseline: &[BaselinePoint], fresh: &ThroughputReport) -> Vec<String> {
    let mut out = Vec::new();
    for fw in &fresh.firmwares {
        for p in &fw.points {
            if p.workers > fresh.host_cores {
                continue;
            }
            let base = baseline
                .iter()
                .find(|b| b.firmware == fw.firmware && b.workers == p.workers)
                .filter(|b| !b.oversubscribed);
            if p.base_bytes > 0 && p.peak_overlay_bytes.saturating_mul(10) > p.base_bytes {
                out.push(format!(
                    "{} @ {} workers: peak overlay {} B is not 10x below the {} B shared base \
                     (per-worker memory is drifting toward O(RAM))",
                    fw.firmware, p.workers, p.peak_overlay_bytes, p.base_bytes,
                ));
            }
            if let Some(prior) = base.and_then(|b| b.peak_overlay_bytes).filter(|&b| b > 0) {
                if p.peak_overlay_bytes > prior.saturating_mul(10) {
                    out.push(format!(
                        "{} @ {} workers: peak overlay {} B exceeds 10x the baseline's {} B",
                        fw.firmware, p.workers, p.peak_overlay_bytes, prior,
                    ));
                }
            }
        }
    }
    out
}

/// A minimal recursive-descent JSON reader for baseline documents: objects,
/// arrays, strings with `\"`/`\\`/`\uXXXX` escapes, floats, booleans and
/// null — just enough for the `embsan-bench-throughput-v1` schema.
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// A number (all JSON numbers read as f64).
        Num(f64),
        /// A string.
        Str(String),
        /// A boolean.
        Bool(bool),
        /// `null`.
        Null,
        /// An array.
        Arr(Vec<Value>),
        /// An object, in document order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_f64(&self) -> Option<f64> {
            match *self {
                Value::Num(n) => Some(n),
                _ => None,
            }
        }

        pub fn as_usize(&self) -> Option<usize> {
            match *self {
                Value::Num(n) if n >= 0.0 && n.fract() == 0.0 => Some(n as usize),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }

        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(fields) => Some(fields),
                _ => None,
            }
        }
    }

    /// First value of `key` in an object's field list.
    pub fn field<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
        if bytes.get(*pos) == Some(&b) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
            Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
            _ => Err(format!("unexpected byte at {pos}")),
        }
    }

    fn parse_keyword(
        bytes: &[u8],
        pos: &mut usize,
        word: &str,
        value: Value,
    ) -> Result<Value, String> {
        if bytes[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad keyword at byte {pos}"))
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        if bytes.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        while *pos < bytes.len()
            && (bytes[*pos].is_ascii_digit()
                || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            *pos += 1;
        }
        std::str::from_utf8(&bytes[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = Vec::new();
        loop {
            match bytes.get(*pos) {
                Some(b'"') => {
                    *pos += 1;
                    return String::from_utf8(out).map_err(|_| "bad utf8 in string".to_string());
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push(b'"'),
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'n') => out.push(b'\n'),
                        Some(b't') => out.push(b'\t'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                            let c = char::from_u32(hex)
                                .ok_or_else(|| format!("bad codepoint at byte {pos}"))?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {pos}")),
                    }
                    *pos += 1;
                }
                Some(&b) => {
                    out.push(b);
                    *pos += 1;
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {pos}")),
            }
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            skip_ws(bytes, pos);
            expect(bytes, pos, b':')?;
            let value = parse_value(bytes, pos)?;
            fields.push((key, value));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::throughput::{CacheToggleReport, FirmwareThroughput, WorkerPoint};
    use embsan_emu::CacheStats;

    fn point(workers: usize, execs_per_sec: f64) -> WorkerPoint {
        WorkerPoint {
            workers,
            execs: 100,
            fuzz_wall_secs: 1.0,
            execs_per_sec,
            blocks_translated: 10,
            blocks_per_exec: 0.1,
            coverage: 5,
            findings: 0,
            slow_path_checks: 0,
            cache: CacheStats::default(),
            base_bytes: 4_194_304,
            peak_overlay_bytes: 65_536,
            workers_sharing_base: workers,
        }
    }

    fn report(host_cores: usize, points: Vec<WorkerPoint>) -> ThroughputReport {
        ThroughputReport {
            host_cores,
            iterations: 100,
            seed: 1,
            peak_rss_bytes: 0,
            firmwares: vec![FirmwareThroughput {
                firmware: "Router".to_string(),
                san: "EMBSAN-D (binary)".to_string(),
                points,
                cache_toggle: CacheToggleReport {
                    toggles: 2,
                    first_pass_translations: 10,
                    retranslations_after_first_pass: 0,
                    generation_hits: 5,
                },
            }],
        }
    }

    #[test]
    fn baseline_roundtrips_through_report_json() {
        let base = report(1, vec![point(1, 2000.0), point(2, 1800.0)]);
        let points = parse_baseline(&base.to_json()).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].firmware, "Router");
        assert_eq!(points[0].workers, 1);
        assert!((points[0].execs_per_sec - 2000.0).abs() < 1e-6);
        // host_cores 1: the 2-worker point carries the baseline's own
        // oversubscription flag.
        assert!(!points[0].oversubscribed);
        assert!(points[1].oversubscribed);
    }

    #[test]
    fn regression_detected_beyond_tolerance() {
        let base = parse_baseline(&report(8, vec![point(1, 2000.0)]).to_json()).unwrap();
        // 26% below: regression at 25% tolerance.
        let bad = regressions(&base, &report(8, vec![point(1, 1480.0)]), 0.25);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("1 workers"));
        // 24% below: within tolerance.
        assert!(regressions(&base, &report(8, vec![point(1, 1520.0)]), 0.25).is_empty());
        // Faster than baseline: never a regression.
        assert!(regressions(&base, &report(8, vec![point(1, 9000.0)]), 0.25).is_empty());
    }

    #[test]
    fn oversubscribed_points_are_not_compared() {
        // Baseline measured on a 1-core host: its 2-worker point is flagged
        // and must not gate anything, even if the fresh number is far lower.
        let base =
            parse_baseline(&report(1, vec![point(1, 2000.0), point(2, 1800.0)]).to_json()).unwrap();
        let fresh = report(8, vec![point(1, 2000.0), point(2, 100.0)]);
        assert!(regressions(&base, &fresh, 0.25).is_empty());

        // And a fresh point that oversubscribes the current host is skipped
        // regardless of the baseline's view of it.
        let base8 =
            parse_baseline(&report(8, vec![point(1, 2000.0), point(2, 1800.0)]).to_json()).unwrap();
        let fresh1 = report(1, vec![point(1, 2000.0), point(2, 100.0)]);
        assert!(regressions(&base8, &fresh1, 0.25).is_empty());
    }

    #[test]
    fn memory_fields_roundtrip_and_old_baselines_parse_as_none() {
        let base = parse_baseline(&report(8, vec![point(1, 2000.0)]).to_json()).unwrap();
        assert_eq!(base[0].base_bytes, Some(4_194_304));
        assert_eq!(base[0].peak_overlay_bytes, Some(65_536));
        // A pre-memory-schema document: fields absent, not an error.
        let old = "{\"schema\": \"embsan-bench-throughput-v1\", \"firmwares\": [{\"firmware\": \
                   \"Router\", \"workers\": [{\"workers\": 1, \"execs_per_sec\": 5.0}]}]}";
        let parsed = parse_baseline(old).unwrap();
        assert_eq!(parsed[0].base_bytes, None);
        assert_eq!(parsed[0].peak_overlay_bytes, None);
    }

    #[test]
    fn memory_gate_fails_o_ram_overlays_and_exempts_oversubscription() {
        let base = parse_baseline(&report(8, vec![point(1, 2000.0)]).to_json()).unwrap();
        // Healthy: overlay 64 KiB vs 4 MiB base.
        assert!(memory_regressions(&base, &report(8, vec![point(1, 2000.0)])).is_empty());
        // Overlay grew to a third of the base: both the absolute 10x bound
        // and the relative vs-baseline bound fire.
        let mut fat = report(8, vec![point(1, 2000.0)]);
        fat.firmwares[0].points[0].peak_overlay_bytes = 1_400_000;
        let lines = memory_regressions(&base, &fat);
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[0].contains("O(RAM)"), "{lines:?}");
        // The same point oversubscribed is exempt.
        fat.host_cores = 0;
        assert!(memory_regressions(&base, &fat).is_empty());
        // No baseline memory data: only the absolute bound applies.
        let old = "{\"schema\": \"embsan-bench-throughput-v1\", \"firmwares\": [{\"firmware\": \
                   \"Router\", \"workers\": [{\"workers\": 1, \"execs_per_sec\": 5.0}]}]}";
        let no_mem = parse_baseline(old).unwrap();
        assert_eq!(memory_regressions(&no_mem, &fat.clone()).len(), 0);
        fat.host_cores = 8;
        assert_eq!(memory_regressions(&no_mem, &fat).len(), 1);
    }

    #[test]
    fn unmatched_points_and_bad_documents() {
        let base = parse_baseline(&report(8, vec![point(1, 2000.0)]).to_json()).unwrap();
        // A fresh point with no baseline counterpart is informational only.
        let fresh = report(8, vec![point(4, 10.0)]);
        assert!(regressions(&base, &fresh, 0.25).is_empty());

        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline("{\"schema\": \"other\"}").is_err());
        assert!(parse_baseline("not json").is_err());
    }
}
