//! Benchmark harnesses regenerating every table and figure of the EMBSAN
//! paper.
//!
//! One binary per experiment (see `src/bin/`):
//!
//! | binary | regenerates |
//! |--------|-------------|
//! | `table1` | the evaluated-firmware matrix |
//! | `table2` | known-bug replay under EMBSAN-C / EMBSAN-D / native KASAN |
//! | `table3` | new-bug classification per firmware (campaigns) |
//! | `table4` | the full new-bug listing (campaigns) |
//! | `figure2` | runtime-overhead comparison |
//! | `profile_overhead` | the disabled-profiler ≤2% overhead gate |
//!
//! plus the Criterion bench `fig2_overhead`. This library holds the
//! machinery those binaries (and the integration tests) share.

pub mod ablation;
pub mod baseline;
pub mod overhead;
pub mod profile_overhead;
pub mod table2;
pub mod table34;
pub mod throughput;

pub use baseline::{memory_regressions, parse_baseline, regressions, BaselinePoint};
pub use overhead::{
    measure_configuration, OverheadConfig, OverheadRow, OverheadWorkload, SanitizerChoice,
};
pub use profile_overhead::{measure_profile_overhead, ProfileOverheadReport, ProfileWorkload};
pub use table2::{replay_known_bug, replay_table2, DetectionRow};
pub use table34::{run_all_campaigns, CampaignSummary};
pub use throughput::{
    measure_cache_generations, measure_firmware_throughput, measure_worker_scaling, peak_rss_bytes,
    san_label, BenchWarning, CacheToggleReport, FirmwareThroughput, ThroughputReport, WorkerPoint,
};

/// Reads an environment-variable budget with a default (used to scale the
/// campaign and overhead benches without recompiling).
pub fn env_budget(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_budget_parses_and_defaults() {
        assert_eq!(env_budget("EMBSAN_NO_SUCH_VAR_XYZ", 42), 42);
        std::env::set_var("EMBSAN_TEST_BUDGET_VAR", "17");
        assert_eq!(env_budget("EMBSAN_TEST_BUDGET_VAR", 42), 17);
        std::env::set_var("EMBSAN_TEST_BUDGET_VAR", "bogus");
        assert_eq!(env_budget("EMBSAN_TEST_BUDGET_VAR", 42), 42);
        std::env::remove_var("EMBSAN_TEST_BUDGET_VAR");
    }
}
