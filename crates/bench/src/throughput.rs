//! Fuzzing-throughput and translation-cache benchmarks (`embsan bench`).
//!
//! Two measurements back the parallel-engine work:
//!
//! 1. **Worker scaling**: execs/sec and blocks-translated/exec of the
//!    parallel campaign engine at several worker counts on one firmware in
//!    its Table-1 sanitizer configuration. The finding set is
//!    worker-count-independent (the engine's determinism contract), so the
//!    points differ only in wall clock.
//! 2. **Cache generations**: translations per hook-configuration toggle.
//!    With generation-tagged block storage, toggling between two
//!    configurations retranslates only on the first pass; every later
//!    toggle reuses a retained generation (~0 retranslations).
//!
//! The report serializes to the hand-rolled `embsan-bench-throughput-v1`
//! JSON schema consumed by CI's bench-smoke job and checked in as
//! `BENCH_throughput.json`.

use std::time::Instant;

use embsan_emu::CacheStats;
use embsan_fuzz::campaign::prepare_session;
use embsan_fuzz::{run_parallel_campaign, CampaignConfig, CampaignError, ParallelConfig};
use embsan_guestos::workload::merged_corpus;
use embsan_guestos::FirmwareSpec;

/// One worker-count measurement.
#[derive(Debug, Clone, Copy)]
pub struct WorkerPoint {
    /// Worker threads used.
    pub workers: usize,
    /// Programs executed.
    pub execs: u64,
    /// Fuzzing-loop wall clock in seconds (excludes build and boot).
    pub fuzz_wall_secs: f64,
    /// Throughput (execs / fuzz_wall_secs).
    pub execs_per_sec: f64,
    /// Blocks translated across all workers.
    pub blocks_translated: u64,
    /// Translations amortized per execution.
    pub blocks_per_exec: f64,
    /// Coverage buckets reached (identical across worker counts).
    pub coverage: usize,
    /// Deduplicated findings (identical across worker counts).
    pub findings: usize,
    /// Shadow checks that took the byte-wise slow path (summed over
    /// workers; the rest proved clean on the inline fast path).
    pub slow_path_checks: u64,
    /// Full cache counters.
    pub cache: CacheStats,
    /// Bytes of the shared ready-point base image (RAM + sanitizer
    /// planes) — paid once, not per worker.
    pub base_bytes: u64,
    /// Largest per-worker copy-on-write overlay observed: the incremental
    /// memory each extra worker costs. CI's memory gate requires this to
    /// stay an order of magnitude below `base_bytes` (O(dirty pages), not
    /// O(RAM)).
    pub peak_overlay_bytes: u64,
    /// Workers that forked from the shared base image.
    pub workers_sharing_base: usize,
}

/// Result of the configuration-toggle cache measurement.
#[derive(Debug, Clone, Copy)]
pub struct CacheToggleReport {
    /// Toggle cycles measured after the first pass.
    pub toggles: u64,
    /// Translations spent populating both configurations once.
    pub first_pass_translations: u64,
    /// Translations during the steady toggling phase (~0 with generations).
    pub retranslations_after_first_pass: u64,
    /// Generation reactivations observed.
    pub generation_hits: u64,
}

/// Throughput + cache measurements for one firmware.
#[derive(Debug, Clone)]
pub struct FirmwareThroughput {
    /// Firmware name.
    pub firmware: String,
    /// Sanitizer configuration label (Table-1 default for the firmware).
    pub san: String,
    /// One point per measured worker count.
    pub points: Vec<WorkerPoint>,
    /// The cache-generation toggle measurement.
    pub cache_toggle: CacheToggleReport,
}

/// The full bench report (`BENCH_throughput.json`).
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// Host CPU cores available to the worker pool — essential context for
    /// the scaling points (a single-core host cannot show parallel
    /// speedup regardless of engine quality).
    pub host_cores: usize,
    /// Iterations per campaign run.
    pub iterations: u64,
    /// Campaign seed.
    pub seed: u64,
    /// Peak resident set of the bench process in bytes (`VmHWM`), covering
    /// every measurement; `0` when the host does not expose it.
    pub peak_rss_bytes: u64,
    /// Per-firmware sections.
    pub firmwares: Vec<FirmwareThroughput>,
}

/// Peak resident-set size of this process in bytes, from
/// `/proc/self/status` `VmHWM`. Returns 0 on hosts without procfs.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse::<u64>().ok())
        .map_or(0, |kib| kib * 1024)
}

/// One structured data-quality warning attached to a bench report (see
/// [`ThroughputReport::warnings`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchWarning {
    /// Machine-readable warning class (e.g. `oversubscribed_workers`).
    pub kind: &'static str,
    /// Firmware whose scaling point triggered the warning.
    pub firmware: String,
    /// Worker count of the affected point.
    pub workers: usize,
    /// Host cores available to the pool.
    pub host_cores: usize,
}

/// The sanitizer-configuration label for a firmware's Table-1 row.
pub fn san_label(spec: &FirmwareSpec) -> &'static str {
    if spec.embsan_c {
        "EMBSAN-C"
    } else if spec.open_source {
        "EMBSAN-D (source)"
    } else {
        "EMBSAN-D (binary)"
    }
}

/// Measures parallel-campaign throughput on `spec` at each worker count.
///
/// # Errors
///
/// Propagates campaign failures (build, probe, session).
pub fn measure_worker_scaling(
    spec: &FirmwareSpec,
    campaign: &CampaignConfig,
    worker_counts: &[usize],
) -> Result<Vec<WorkerPoint>, CampaignError> {
    let mut points = Vec::new();
    for &workers in worker_counts {
        let config = ParallelConfig { workers, campaign: *campaign, ..ParallelConfig::default() };
        let started = Instant::now();
        let (_result, outcome) = run_parallel_campaign(spec, &config)?;
        let stats = outcome.stats;
        // Fall back to total wall for degenerate zero-length runs.
        let wall = if stats.fuzz_wall.is_zero() { started.elapsed() } else { stats.fuzz_wall };
        let secs = wall.as_secs_f64().max(f64::EPSILON);
        points.push(WorkerPoint {
            workers,
            execs: stats.execs,
            fuzz_wall_secs: secs,
            execs_per_sec: stats.execs as f64 / secs,
            blocks_translated: stats.cache.translations,
            blocks_per_exec: if stats.execs == 0 {
                0.0
            } else {
                stats.cache.translations as f64 / stats.execs as f64
            },
            coverage: stats.coverage,
            findings: stats.findings,
            slow_path_checks: stats.slow_path_checks,
            cache: stats.cache,
            base_bytes: stats.base_bytes,
            peak_overlay_bytes: stats.max_worker_overlay_bytes,
            workers_sharing_base: stats.workers_sharing_base,
        });
    }
    Ok(points)
}

/// Measures translations per hook-configuration toggle: a clean workload
/// corpus is replayed while the session's block probes are armed and
/// disarmed `toggles` times (exactly what the fuzzer and the overhead
/// bench do between configurations).
///
/// # Errors
///
/// Propagates campaign failures.
pub fn measure_cache_generations(
    spec: &FirmwareSpec,
    campaign: &CampaignConfig,
    toggles: u64,
) -> Result<CacheToggleReport, CampaignError> {
    let (mut session, _dict) = prepare_session(spec, campaign)?;
    let corpus = merged_corpus(0xF16, 4, 24);
    let base = session.runtime().hook_config();
    let mut armed = base;
    armed.blocks = true;

    let replay = |session: &mut embsan_core::session::Session| -> Result<(), CampaignError> {
        for program in &corpus {
            session.reset()?;
            session.run_program(program, campaign.program_budget)?;
        }
        Ok(())
    };

    let before = session.cache_stats();
    session.machine_mut().set_hook_config(armed);
    replay(&mut session)?;
    session.machine_mut().set_hook_config(base);
    replay(&mut session)?;
    let first_pass = session.cache_stats();

    for _ in 0..toggles {
        session.machine_mut().set_hook_config(armed);
        replay(&mut session)?;
        session.machine_mut().set_hook_config(base);
        replay(&mut session)?;
    }
    let steady = session.cache_stats();
    Ok(CacheToggleReport {
        toggles,
        first_pass_translations: first_pass.translations - before.translations,
        retranslations_after_first_pass: steady.translations - first_pass.translations,
        generation_hits: steady.generation_hits - before.generation_hits,
    })
}

/// Runs both measurements for one firmware.
///
/// # Errors
///
/// Propagates campaign failures.
pub fn measure_firmware_throughput(
    spec: &FirmwareSpec,
    campaign: &CampaignConfig,
    worker_counts: &[usize],
    toggles: u64,
) -> Result<FirmwareThroughput, CampaignError> {
    Ok(FirmwareThroughput {
        firmware: spec.name.to_string(),
        san: san_label(spec).to_string(),
        points: measure_worker_scaling(spec, campaign, worker_counts)?,
        cache_toggle: measure_cache_generations(spec, campaign, toggles)?,
    })
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.4}")
    } else {
        "null".to_string()
    }
}

impl ThroughputReport {
    /// Structured data-quality warnings for this report. Currently one
    /// kind: a scaling point that ran more workers than the host has
    /// cores measures scheduler contention, not engine regression, and
    /// consumers (CI's regression guard, humans reading the JSON) must not
    /// read its throughput as a slowdown.
    pub fn warnings(&self) -> Vec<BenchWarning> {
        let mut warnings = Vec::new();
        for fw in &self.firmwares {
            for p in &fw.points {
                if p.workers > self.host_cores {
                    warnings.push(BenchWarning {
                        kind: "oversubscribed_workers",
                        firmware: fw.firmware.clone(),
                        workers: p.workers,
                        host_cores: self.host_cores,
                    });
                }
            }
        }
        warnings
    }

    /// Serializes to the `embsan-bench-throughput-v1` schema.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"embsan-bench-throughput-v1\",\n");
        out.push_str(&format!("  \"host_cores\": {},\n", self.host_cores));
        out.push_str(&format!("  \"iterations\": {},\n", self.iterations));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"peak_rss_bytes\": {},\n", self.peak_rss_bytes));
        let warnings = self.warnings();
        out.push_str("  \"warnings\": [");
        for (i, w) in warnings.iter().enumerate() {
            out.push_str(&format!(
                "\n    {{\"kind\": \"{}\", \"firmware\": \"{}\", \"workers\": {}, \
                 \"host_cores\": {}, \"note\": \"throughput at this point measures host \
                 oversubscription, not engine regression\"}}{}",
                w.kind,
                json_escape(&w.firmware),
                w.workers,
                w.host_cores,
                if i + 1 < warnings.len() { "," } else { "\n  " },
            ));
        }
        out.push_str("],\n");
        out.push_str("  \"firmwares\": [\n");
        for (i, fw) in self.firmwares.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"firmware\": \"{}\",\n", json_escape(&fw.firmware)));
            out.push_str(&format!("      \"san\": \"{}\",\n", json_escape(&fw.san)));
            out.push_str("      \"workers\": [\n");
            for (j, p) in fw.points.iter().enumerate() {
                out.push_str(&format!(
                    "        {{\"workers\": {}, \"execs\": {}, \"fuzz_wall_secs\": {}, \
                     \"execs_per_sec\": {}, \"blocks_translated\": {}, \"blocks_per_exec\": {}, \
                     \"coverage\": {}, \"findings\": {}, \"slow_path_checks\": {}, \
                     \"base_bytes\": {}, \"peak_overlay_bytes\": {}, \
                     \"workers_sharing_base\": {}, \
                     \"cache\": {{\"translations\": {}, \
                     \"hits\": {}, \"reconfigures\": {}, \"generation_hits\": {}, \
                     \"generation_evictions\": {}, \"flushes\": {}, \
                     \"chained_dispatches\": {}, \"superblocks_formed\": {}}}}}{}\n",
                    p.workers,
                    p.execs,
                    json_f64(p.fuzz_wall_secs),
                    json_f64(p.execs_per_sec),
                    p.blocks_translated,
                    json_f64(p.blocks_per_exec),
                    p.coverage,
                    p.findings,
                    p.slow_path_checks,
                    p.base_bytes,
                    p.peak_overlay_bytes,
                    p.workers_sharing_base,
                    p.cache.translations,
                    p.cache.hits,
                    p.cache.reconfigures,
                    p.cache.generation_hits,
                    p.cache.generation_evictions,
                    p.cache.flushes,
                    p.cache.chained_dispatches,
                    p.cache.superblocks_formed,
                    if j + 1 < fw.points.len() { "," } else { "" },
                ));
            }
            out.push_str("      ],\n");
            let t = &fw.cache_toggle;
            out.push_str(&format!(
                "      \"cache_toggle\": {{\"toggles\": {}, \"first_pass_translations\": {}, \
                 \"retranslations_after_first_pass\": {}, \"generation_hits\": {}}}\n",
                t.toggles,
                t.first_pass_translations,
                t.retranslations_after_first_pass,
                t.generation_hits,
            ));
            out.push_str(&format!(
                "    }}{}\n",
                if i + 1 < self.firmwares.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsan_guestos::firmware_by_name;

    #[test]
    fn cache_toggles_stop_retranslating_after_first_pass() {
        let spec = firmware_by_name("TP-Link WDR-7660").unwrap();
        let campaign = CampaignConfig::default();
        let report = measure_cache_generations(spec, &campaign, 6).unwrap();
        assert!(report.first_pass_translations > 0, "first pass translates the image");
        assert_eq!(
            report.retranslations_after_first_pass, 0,
            "retained generations make toggles free"
        );
        // Each toggle cycle reactivates both generations, plus the two
        // first-pass switches.
        assert_eq!(report.generation_hits, 2 * report.toggles + 1);
    }

    #[test]
    fn json_schema_is_well_formed_enough() {
        let report = ThroughputReport {
            host_cores: 4,
            iterations: 100,
            seed: 1,
            peak_rss_bytes: 123_456,
            firmwares: vec![FirmwareThroughput {
                firmware: "T\"est".to_string(),
                san: "EMBSAN-D (binary)".to_string(),
                points: vec![WorkerPoint {
                    workers: 1,
                    execs: 100,
                    fuzz_wall_secs: 0.5,
                    execs_per_sec: 200.0,
                    blocks_translated: 40,
                    blocks_per_exec: 0.4,
                    coverage: 10,
                    findings: 0,
                    slow_path_checks: 7,
                    cache: CacheStats::default(),
                    base_bytes: 1_048_576,
                    peak_overlay_bytes: 8_192,
                    workers_sharing_base: 1,
                }],
                cache_toggle: CacheToggleReport {
                    toggles: 2,
                    first_pass_translations: 40,
                    retranslations_after_first_pass: 0,
                    generation_hits: 5,
                },
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"embsan-bench-throughput-v1\""));
        assert!(json.contains("\\\"est"), "quotes escaped");
        assert!(json.contains("\"slow_path_checks\": 7"));
        assert!(json.contains("\"chained_dispatches\": 0"));
        assert!(json.contains("\"superblocks_formed\": 0"));
        assert!(json.contains("\"peak_rss_bytes\": 123456"));
        assert!(json.contains("\"base_bytes\": 1048576"));
        assert!(json.contains("\"peak_overlay_bytes\": 8192"));
        assert!(json.contains("\"workers_sharing_base\": 1"));
        // 1 worker on 4 cores: no oversubscription warning.
        assert!(json.contains("\"warnings\": []"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn oversubscription_yields_structured_warning_not_regression() {
        let mut report = ThroughputReport {
            host_cores: 1,
            iterations: 100,
            seed: 1,
            peak_rss_bytes: 0,
            firmwares: vec![FirmwareThroughput {
                firmware: "Router".to_string(),
                san: "EMBSAN-D (binary)".to_string(),
                points: vec![
                    WorkerPoint {
                        workers: 1,
                        execs: 100,
                        fuzz_wall_secs: 0.5,
                        execs_per_sec: 200.0,
                        blocks_translated: 40,
                        blocks_per_exec: 0.4,
                        coverage: 10,
                        findings: 0,
                        slow_path_checks: 0,
                        cache: CacheStats::default(),
                        base_bytes: 0,
                        peak_overlay_bytes: 0,
                        workers_sharing_base: 1,
                    },
                    WorkerPoint {
                        workers: 4,
                        execs: 100,
                        fuzz_wall_secs: 1.0,
                        execs_per_sec: 100.0,
                        blocks_translated: 160,
                        blocks_per_exec: 1.6,
                        coverage: 10,
                        findings: 0,
                        slow_path_checks: 0,
                        cache: CacheStats::default(),
                        base_bytes: 0,
                        peak_overlay_bytes: 0,
                        workers_sharing_base: 4,
                    },
                ],
                cache_toggle: CacheToggleReport {
                    toggles: 2,
                    first_pass_translations: 40,
                    retranslations_after_first_pass: 0,
                    generation_hits: 5,
                },
            }],
        };
        let warnings = report.warnings();
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].kind, "oversubscribed_workers");
        assert_eq!(warnings[0].workers, 4);
        assert_eq!(warnings[0].host_cores, 1);
        let json = report.to_json();
        assert!(json.contains("\"kind\": \"oversubscribed_workers\""));
        assert!(json.contains("not engine regression"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // Enough cores: the warning disappears.
        report.host_cores = 8;
        assert!(report.warnings().is_empty());
    }
}
