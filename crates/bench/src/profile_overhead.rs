//! Profile-overhead benchmark: the cost of the `profile` feature when its
//! timers are compiled in but left **disabled**.
//!
//! A single binary cannot contain both the feature-off and the feature-on
//! hot paths, so the budget is enforced with a two-invocation protocol
//! (see the `profile_overhead` bin): the feature-off build measures the
//! baseline wall time of a fixed corpus-replay workload and writes it to a
//! file; the feature-on build — timers compiled in, profiler left in its
//! detached default state, exactly what every run pays unless someone
//! calls `enable_profiling` — repeats the measurement and gates the
//! ratio. Both invocations take the minimum over several rounds, which
//! filters scheduler noise far better than averaging.

use std::time::{Duration, Instant};

use embsan_core::probe::{probe, ProbeMode};
use embsan_core::session::Session;
use embsan_guestos::workload::merged_corpus;
use embsan_guestos::{FirmwareSpec, SanMode};
use embsan_obs::{ProfileReport, Profiler};

/// Workload and repetition parameters.
#[derive(Debug, Clone, Copy)]
pub struct ProfileWorkload {
    /// Corpus seed.
    pub seed: u32,
    /// Number of corpus programs.
    pub programs: usize,
    /// Calls per program.
    pub calls: usize,
    /// Corpus replays per timed round.
    pub repeats: usize,
    /// Timed rounds (the report keeps the minimum).
    pub rounds: usize,
}

impl Default for ProfileWorkload {
    fn default() -> ProfileWorkload {
        ProfileWorkload { seed: 0xF16, programs: 16, calls: 48, repeats: 6, rounds: 5 }
    }
}

/// One build's measurement.
#[derive(Debug, Clone)]
pub struct ProfileOverheadReport {
    /// Whether the `profile` feature is compiled into this binary.
    pub compiled: bool,
    /// Minimum wall time over all rounds.
    pub best_wall: Duration,
    /// Every round's wall time, in order.
    pub rounds: Vec<Duration>,
    /// Programs executed per round.
    pub execs_per_round: u64,
    /// Enabled-profiler phase timings, captured after the timed rounds
    /// (always present when compiled, for the report's sake; never taken
    /// while the gate is being measured).
    pub enabled_profile: Option<ProfileReport>,
}

const READY_BUDGET: u64 = 400_000_000;
const PROGRAM_BUDGET: u64 = 50_000_000;

/// Measures the corpus-replay workload with the timers compiled in but
/// the profiler detached — the default state of every session, and the
/// exact configuration the ≤2% budget is defined over.
///
/// # Panics
///
/// Panics on harness failures: the build, boot or a workload program
/// failing, or the clean workload raising a sanitizer report.
pub fn measure_profile_overhead(
    spec: &FirmwareSpec,
    workload: &ProfileWorkload,
) -> ProfileOverheadReport {
    let corpus = merged_corpus(workload.seed, workload.programs, workload.calls);
    let image = spec.build(SanMode::None).expect("baseline build");
    let mode =
        if image.has_symbols() { ProbeMode::DynamicSource } else { ProbeMode::DynamicBinary };
    let artifacts = probe(&image, mode, None).expect("probing");
    let specs = embsan_core::reference_specs().expect("reference specs");
    let mut session = Session::new(&image, &specs, &artifacts).expect("session constructs");
    session.run_to_ready(READY_BUDGET).expect("ready");

    let mut rounds = Vec::with_capacity(workload.rounds);
    for _ in 0..workload.rounds.max(1) {
        let start = Instant::now();
        for program in corpus.iter().cycle().take(corpus.len() * workload.repeats) {
            session.run_program(program, PROGRAM_BUDGET).expect("workload program runs");
        }
        rounds.push(start.elapsed());
    }
    assert!(session.reports().is_empty(), "clean workload must stay clean");
    let best_wall = rounds.iter().copied().min().expect("at least one round");

    // With the feature compiled in, demonstrate the enabled path too: one
    // extra corpus pass with the profiler attached and timing on, outside
    // the gated measurement.
    let enabled_profile = if Profiler::compiled() {
        let profiler = session.enable_profiling();
        assert!(!profiler.is_enabled(), "profiler must start disabled");
        profiler.set_enabled(true);
        for program in &corpus {
            session.run_program(program, PROGRAM_BUDGET).expect("profiled program runs");
        }
        profiler.set_enabled(false);
        Some(profiler.report())
    } else {
        None
    };

    ProfileOverheadReport {
        compiled: Profiler::compiled(),
        best_wall,
        rounds,
        execs_per_round: (corpus.len() * workload.repeats) as u64,
        enabled_profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsan_guestos::firmware_by_name;

    #[test]
    fn measurement_matches_build_configuration() {
        let spec = firmware_by_name("TP-Link WDR-7660").unwrap();
        let workload = ProfileWorkload { programs: 2, calls: 10, repeats: 1, rounds: 2, seed: 3 };
        let report = measure_profile_overhead(spec, &workload);
        assert_eq!(report.compiled, Profiler::compiled());
        assert_eq!(report.rounds.len(), 2);
        assert_eq!(report.execs_per_round, 2);
        assert!(report.best_wall <= *report.rounds.iter().max().unwrap());
        if report.compiled {
            let profile = report.enabled_profile.as_ref().unwrap();
            assert!(profile.phases.iter().any(|(name, s)| *name == "execute" && s.calls > 0));
        } else {
            assert!(report.enabled_profile.is_none());
        }
    }
}
