//! Tables 3 & 4: the new-bug fuzzing campaigns over all eleven firmware.

use embsan_core::report::BugClass;
use embsan_fuzz::campaign::{run_campaign, CampaignConfig, CampaignResult};
use embsan_guestos::firmware::FIRMWARE;

/// Aggregated campaign output for the table printers.
#[derive(Debug)]
pub struct CampaignSummary {
    /// Per-firmware campaign results, in Table-1 order.
    pub results: Vec<CampaignResult>,
}

impl CampaignSummary {
    /// Total bugs found across all firmware.
    pub fn total_found(&self) -> usize {
        self.results.iter().map(|r| r.found.len()).sum()
    }

    /// Counts per (firmware, paper bug class), Table 3's cells.
    pub fn class_count(&self, firmware: &str, paper_class: &str) -> usize {
        self.results
            .iter()
            .filter(|r| r.firmware == firmware)
            .flat_map(|r| &r.found)
            .filter(|b| b.class.paper_class() == paper_class)
            .count()
    }
}

/// The Table-3 class columns.
pub const CLASS_COLUMNS: [&str; 4] = ["OOB Access", "UAF", "Double Free", "Race"];

/// Runs the campaign for every firmware with a shared iteration budget.
///
/// # Panics
///
/// Panics on harness-level failures (build/probe/session errors) — the
/// campaigns must run; finding fewer bugs than the paper is a reportable
/// outcome, not a panic.
pub fn run_all_campaigns(iterations: u64, seed: u64) -> CampaignSummary {
    let results = FIRMWARE
        .iter()
        .map(|spec| {
            let config = CampaignConfig {
                iterations,
                seed: seed
                    ^ u64::from(
                        spec.name
                            .bytes()
                            .fold(0u32, |h, b| h.wrapping_mul(31).wrapping_add(u32::from(b))),
                    ),
                ..CampaignConfig::default()
            };
            run_campaign(spec, &config)
                .unwrap_or_else(|e| panic!("campaign for {} failed: {e}", spec.name))
        })
        .collect();
    CampaignSummary { results }
}

/// Renders Table 3 (classification matrix).
pub fn render_table3(summary: &CampaignSummary) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24}{:>12}{:>6}{:>13}{:>7}\n",
        "Firmware", "OOB Access", "UAF", "Double Free", "Race"
    ));
    for result in &summary.results {
        out.push_str(&format!(
            "{:<24}{:>12}{:>6}{:>13}{:>7}\n",
            result.firmware,
            summary.class_count(result.firmware, "OOB Access"),
            summary.class_count(result.firmware, "UAF"),
            summary.class_count(result.firmware, "Double Free"),
            summary.class_count(result.firmware, "Race"),
        ));
    }
    out.push_str(&format!("Total bugs found: {}\n", summary.total_found()));
    out
}

/// Renders Table 4 (full listing).
pub fn render_table4(summary: &CampaignSummary) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24}{:<16}{:<6}{:<38}{}\n",
        "Firmware", "Base OS", "Arch.", "Location", "Bug Type"
    ));
    for result in &summary.results {
        let spec = embsan_guestos::firmware_by_name(result.firmware)
            .expect("campaign firmware is registered");
        for bug in &result.found {
            out.push_str(&format!(
                "{:<24}{:<16}{:<6}{:<38}{}\n",
                result.firmware,
                spec.base_os.display_name(),
                spec.arch.display_name(),
                bug.location,
                paper_class_of(bug.class),
            ));
        }
    }
    out
}

fn paper_class_of(class: BugClass) -> &'static str {
    class.paper_class()
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsan_core::session::ExecOutcome;
    use embsan_fuzz::campaign::prepare_session;
    use embsan_guestos::bugs::{trigger_key, LATENT_BUGS};
    use embsan_guestos::executor::{sys, ExecProgram};

    /// Ground-truth check used instead of a full (slow) campaign in unit
    /// tests: with the *known* trigger keys, every seeded Table-4 bug in a
    /// firmware is detectable by the sanitizer stack that the campaign
    /// drives — i.e. the campaign's job is purely input discovery.
    #[test]
    fn all_table4_bugs_detectable_with_known_triggers() {
        for spec in &FIRMWARE {
            let config = CampaignConfig::default();
            let (mut session, _) = prepare_session(spec, &config).unwrap();
            let bugs = spec.latent_bugs();
            for (i, bug) in bugs.iter().enumerate() {
                let mut program = ExecProgram::new();
                let key = trigger_key(&bug.location);
                // Races need repetition for the sampling window.
                let repeats = if bug.kind == embsan_guestos::BugKind::Race { 8 } else { 1 };
                for _ in 0..repeats {
                    program.push(sys::BUG_BASE + i as u8, &[key]);
                }
                let outcome: ExecOutcome = session.run_program_fresh(&program, 50_000_000).unwrap();
                assert!(
                    !outcome.reports.is_empty(),
                    "{}: `{}` ({:?}) not detected",
                    spec.name,
                    bug.location,
                    bug.kind
                );
            }
        }
        assert_eq!(LATENT_BUGS.len(), 41);
    }

    #[test]
    fn render_includes_all_firmware() {
        let summary = CampaignSummary { results: Vec::new() };
        let table3 = render_table3(&summary);
        assert!(table3.contains("Total bugs found: 0"));
    }
}
