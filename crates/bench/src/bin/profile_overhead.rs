//! The profile-overhead gate: proves the `profile` feature costs ≤2% when
//! compiled in but disabled.
//!
//! A single binary cannot carry both the feature-off and feature-on hot
//! paths, so the gate compares two builds. Wall-clock on shared runners is
//! noisy, so each build *accumulates* the minimum over repeated, ideally
//! alternating, invocations before the ratio is taken:
//!
//! ```text
//! export EMBSAN_PROFILE_BASELINE_FILE=target/prof-base.txt
//! export EMBSAN_PROFILE_RESULT_FILE=target/prof-gated.txt
//! cargo build --release -p embsan-bench --bin profile_overhead
//! cp target/release/profile_overhead off
//! cargo build --release -p embsan-bench --features profile --bin profile_overhead
//! cp target/release/profile_overhead on
//! for i in 1 2 3; do ./off; ./on; done     # merge-min into both files
//! EMBSAN_PROFILE_COMPARE=1 ./on            # compare only: gate and exit
//! ```
//!
//! The compare step exits nonzero if the disabled-profiler overhead
//! exceeds `EMBSAN_PROFILE_GATE_PCT` percent (default 2). For a quick
//! local check, a feature-on run with only the baseline file set gates
//! immediately against it. Workload size is tunable via
//! `EMBSAN_PROFILE_{PROGRAMS,CALLS,REPEATS,ROUNDS}`.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use embsan_bench::{env_budget, measure_profile_overhead, ProfileWorkload};
use embsan_guestos::firmware_by_name;

fn env_path(name: &str) -> Option<PathBuf> {
    std::env::var_os(name).map(PathBuf::from)
}

fn read_secs(path: &Path) -> Option<f64> {
    fs::read_to_string(path).ok().and_then(|t| t.trim().parse().ok())
}

/// Writes `min(existing, value)` to `path`, returning the merged value.
fn merge_min(path: &Path, value: f64) -> f64 {
    let best = read_secs(path).map_or(value, |prior| prior.min(value));
    fs::write(path, format!("{best:.9}\n")).expect("write measurement file");
    best
}

/// Gates `gated` seconds against `baseline` seconds; returns the exit code.
fn gate(baseline: f64, gated: f64) -> ExitCode {
    let gate_pct = env_budget("EMBSAN_PROFILE_GATE_PCT", 2) as f64;
    let ratio = gated / baseline;
    println!(
        "disabled-profiler overhead: {:+.2}% (gated {gated:.4}s vs baseline {baseline:.4}s, \
         gate {gate_pct:.0}%)",
        (ratio - 1.0) * 100.0
    );
    if ratio > 1.0 + gate_pct / 100.0 {
        eprintln!("FAIL: disabled-profiler overhead exceeds the {gate_pct:.0}% budget");
        return ExitCode::FAILURE;
    }
    println!("PASS: within the {gate_pct:.0}% budget");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let baseline_file = env_path("EMBSAN_PROFILE_BASELINE_FILE");
    let result_file = env_path("EMBSAN_PROFILE_RESULT_FILE");
    if std::env::var_os("EMBSAN_PROFILE_COMPARE").is_some() {
        let baseline = baseline_file
            .as_deref()
            .and_then(read_secs)
            .expect("EMBSAN_PROFILE_BASELINE_FILE holds the feature-off measurement");
        let gated = result_file
            .as_deref()
            .and_then(read_secs)
            .expect("EMBSAN_PROFILE_RESULT_FILE holds the feature-on measurement");
        return gate(baseline, gated);
    }

    let workload = ProfileWorkload {
        programs: env_budget("EMBSAN_PROFILE_PROGRAMS", 16) as usize,
        calls: env_budget("EMBSAN_PROFILE_CALLS", 48) as usize,
        repeats: env_budget("EMBSAN_PROFILE_REPEATS", 6) as usize,
        rounds: env_budget("EMBSAN_PROFILE_ROUNDS", 5) as usize,
        ..ProfileWorkload::default()
    };
    let spec = firmware_by_name("TP-Link WDR-7660").expect("seed firmware exists");
    println!(
        "profile-overhead workload: {} on {} programs x {} calls, {} repeats, {} rounds",
        spec.name, workload.programs, workload.calls, workload.repeats, workload.rounds
    );
    let report = measure_profile_overhead(spec, &workload);
    let best = report.best_wall.as_secs_f64();
    println!(
        "profile feature compiled: {}  best wall {best:.4}s over {} rounds ({} execs/round)",
        if report.compiled { "yes" } else { "no" },
        report.rounds.len(),
        report.execs_per_round
    );
    if let Some(profile) = &report.enabled_profile {
        print!("{}", profile.render());
    }

    if !report.compiled {
        if let Some(path) = &baseline_file {
            let merged = merge_min(path, best);
            println!("baseline merged into {}: {merged:.4}s", path.display());
        }
        return ExitCode::SUCCESS;
    }
    if let Some(path) = &result_file {
        let merged = merge_min(path, best);
        println!("gated measurement merged into {}: {merged:.4}s", path.display());
        return ExitCode::SUCCESS;
    }
    // Local convenience: a feature-on run with only the baseline file set
    // gates its own single measurement immediately.
    match baseline_file.as_deref().and_then(read_secs) {
        Some(baseline) => gate(baseline, best),
        None => {
            println!("no EMBSAN_PROFILE_BASELINE_FILE; measurement only, no gate");
            ExitCode::SUCCESS
        }
    }
}
