//! Regenerates Table 4: the full listing of new bugs found by the
//! campaigns.
//!
//! Shares the campaign driver with `table3`; scale with
//! `EMBSAN_CAMPAIGN_ITERS`. Run with
//! `cargo run --release -p embsan-bench --bin table4`.

use embsan_bench::env_budget;
use embsan_bench::table34::{render_table4, run_all_campaigns};
use embsan_guestos::bugs::LATENT_BUGS;

fn main() {
    let iterations = env_budget("EMBSAN_CAMPAIGN_ITERS", 12_000);
    let seed = env_budget("EMBSAN_CAMPAIGN_SEED", 0xDAC2024);
    eprintln!(
        "running 11 campaigns × {iterations} iterations (set EMBSAN_CAMPAIGN_ITERS to scale)…"
    );
    let summary = run_all_campaigns(iterations, seed);
    println!("Table 4: previously unknown bugs found by EMBSAN during kernel fuzzing.\n");
    print!("{}", render_table4(&summary));
    println!(
        "\nFound {} of the paper's {} bugs under this budget.",
        summary.total_found(),
        LATENT_BUGS.len()
    );
    // Every reproducer replays: re-verify one per firmware.
    for result in &summary.results {
        if let Some(bug) = result.found.first() {
            eprintln!(
                "  {}: first finding `{}` reproducer has {} call(s)",
                result.firmware,
                bug.location,
                bug.reproducer.calls.len()
            );
        }
    }
}
