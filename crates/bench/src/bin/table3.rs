//! Regenerates Table 3: classification of the new bugs found by the
//! fuzzing campaigns.
//!
//! The paper's campaigns ran for 7 days; this harness scales the budget to
//! `EMBSAN_CAMPAIGN_ITERS` fuzzing iterations per firmware (default
//! 12000). Run with `cargo run --release -p embsan-bench --bin table3`.

use embsan_bench::env_budget;
use embsan_bench::table34::{render_table3, run_all_campaigns};

fn main() {
    let iterations = env_budget("EMBSAN_CAMPAIGN_ITERS", 12_000);
    let seed = env_budget("EMBSAN_CAMPAIGN_SEED", 0xDAC2024);
    eprintln!(
        "running 11 campaigns × {iterations} iterations (set EMBSAN_CAMPAIGN_ITERS to scale)…"
    );
    let summary = run_all_campaigns(iterations, seed);
    println!("Table 3: classification of the new bugs found by EMBSAN.\n");
    print!("{}", render_table3(&summary));
    println!("(paper: 41 bugs over the same firmware set)");
    for result in &summary.results {
        eprintln!(
            "  {}: {} bugs, {} execs, corpus {}, coverage {}",
            result.firmware,
            result.found.len(),
            result.stats.execs,
            result.stats.corpus,
            result.stats.coverage
        );
    }
}
