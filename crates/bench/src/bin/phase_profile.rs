//! Phase-attribution probe: runs a short sequential campaign with the
//! hot-path profilers armed and prints where wall time goes
//! (translate / execute / check) plus the translator and session
//! counters that explain it.
//!
//! Build with `--features profile` for real numbers; without the feature
//! the phase table is empty but the counters still print.
//!
//! Usage: `phase_profile [firmware] [iters] [seed]`

use embsan_fuzz::campaign::prepare_session;
use embsan_fuzz::{CampaignConfig, Fuzzer, FuzzerConfig, Strategy};
use embsan_guestos::firmware_by_name;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map_or("TP-Link WDR-7660", String::as_str);
    let iters: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(400);
    let seed: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(17);

    let spec = firmware_by_name(name).unwrap_or_else(|| panic!("unknown firmware `{name}`"));
    let config = CampaignConfig { iterations: iters, seed, ..CampaignConfig::default() };
    let (mut session, dict) = prepare_session(spec, &config).expect("session");
    let profiler = session.enable_profiling();
    profiler.set_enabled(true);

    let descs = embsan_fuzz::descriptions_for(spec);
    let fuzzer_config = FuzzerConfig::new(Strategy::Tardis, seed);
    let (wall, stats) = {
        let mut fuzzer = Fuzzer::new(&mut session, descs, dict, fuzzer_config);
        let start = std::time::Instant::now();
        fuzzer.run(iters).expect("campaign");
        (start.elapsed(), fuzzer.stats())
    };

    println!(
        "{name}: {iters} iters in {:.3}s ({:.0} execs/sec), coverage {}, findings {}",
        wall.as_secs_f64(),
        stats.execs as f64 / wall.as_secs_f64(),
        stats.coverage,
        stats.findings
    );
    print!("{}", profiler.report().render());
    let cache = session.cache_stats();
    println!(
        "cache: translations={} hits={} reconfigures={} generation_hits={} \
         chained_dispatches={} superblocks_formed={}",
        cache.translations,
        cache.hits,
        cache.reconfigures,
        cache.generation_hits,
        cache.chained_dispatches,
        cache.superblocks_formed
    );
    println!(
        "checks: performed={} slow_path={}",
        session.runtime().checks_performed(),
        session.runtime().slow_path_checks()
    );
    // Micro-breakdown of one iteration's fixed costs.
    {
        let session = &mut session;
        let t = std::time::Instant::now();
        for _ in 0..200 {
            session.reset().unwrap();
        }
        println!("  reset: {:.1}us/iter", t.elapsed().as_secs_f64() * 1e6 / 200.0);
        let program = embsan_guestos::executor::ExecProgram::default();
        let t = std::time::Instant::now();
        for _ in 0..200 {
            session.reset().unwrap();
            session.run_program(&program, 3_000_000).unwrap();
        }
        println!("  reset+empty-run: {:.1}us/iter", t.elapsed().as_secs_f64() * 1e6 / 200.0);
    }
    let mut metrics = embsan_obs::MetricsRegistry::new();
    session.collect_metrics(&mut metrics);
    for line in metrics.snapshot().to_json(true).lines() {
        if line.contains("shadow.") || line.contains("hooks.") {
            println!("  {}", line.trim().trim_end_matches(','));
        }
    }
}
