//! Regenerates Table 1: the evaluated firmware and their configurations.
//!
//! Run with `cargo run -p embsan-bench --bin table1`.

use embsan_guestos::firmware::FIRMWARE;

fn main() {
    println!("Table 1: List of embedded firmware used in EMBSAN's evaluation process.");
    println!(
        "{:<24}{:<16}{:<14}{:<12}{:<8}Fuzzer",
        "Firmware", "Base OS", "Architecture", "Inst. Mode", "Source"
    );
    for spec in &FIRMWARE {
        println!(
            "{:<24}{:<16}{:<14}{:<12}{:<8}{}",
            spec.name,
            spec.base_os.display_name(),
            spec.arch.display_name(),
            spec.inst_mode_label(),
            if spec.open_source { "Open" } else { "Closed" },
            spec.fuzzer,
        );
        // Prove each row is a real, runnable configuration: build it.
        let image = spec
            .build(spec.default_san_mode())
            .unwrap_or_else(|e| panic!("{} fails to build: {e}", spec.name));
        assert_eq!(image.arch, spec.arch);
        assert_eq!(image.has_symbols(), spec.open_source);
    }
    println!("\nAll {} firmware configurations build.", FIRMWARE.len());
}
