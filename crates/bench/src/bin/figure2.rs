//! Regenerates Figure 2: runtime-overhead comparison between EMBSAN and
//! native KASAN/KCSAN, subdivided by instrumentation mode, architecture
//! and base OS.
//!
//! Two slowdown metrics are reported, because this reproduction's substrate
//! is a deterministic interpreter rather than the paper's QEMU-on-SMP
//! testbed:
//!
//! - **wall**: host wall-clock ratio — captures EMBSAN's on-host check
//!   costs (the only place EMBSAN-D's overhead can appear, since it adds
//!   zero guest instructions);
//! - **virt**: virtual-time ratio (retired guest instructions, *including*
//!   KCSAN watchpoint stall windows) — captures instrumentation bloat and
//!   watch-window costs, which on the paper's real-SMP testbed surface in
//!   wall-clock.
//!
//! Run with `cargo run --release -p embsan-bench --bin figure2`.
//! Scale the workload with `EMBSAN_FIG2_PROGRAMS` / `EMBSAN_FIG2_REPEATS`.

use embsan_bench::{
    env_budget, measure_configuration, OverheadConfig, OverheadWorkload, SanitizerChoice,
};
use embsan_guestos::firmware::FIRMWARE;
use embsan_guestos::opts::BaseOs;

const CONFIGS: [OverheadConfig; 6] = [
    OverheadConfig::EmbsanC(SanitizerChoice::Kasan),
    OverheadConfig::EmbsanD(SanitizerChoice::Kasan),
    OverheadConfig::Native(SanitizerChoice::Kasan),
    OverheadConfig::EmbsanC(SanitizerChoice::Kcsan),
    OverheadConfig::EmbsanD(SanitizerChoice::Kcsan),
    OverheadConfig::Native(SanitizerChoice::Kcsan),
];

struct Cell {
    wall: f64,
    virt: f64,
}

fn main() {
    let workload = OverheadWorkload {
        programs: env_budget("EMBSAN_FIG2_PROGRAMS", 20) as usize,
        repeats: env_budget("EMBSAN_FIG2_REPEATS", 6) as usize,
        ..OverheadWorkload::default()
    };

    // measurements[firmware][config] = Some(Cell)
    let mut measurements: Vec<Vec<Option<Cell>>> = Vec::new();
    for spec in &FIRMWARE {
        eprintln!("measuring {} …", spec.name);
        let baseline = measure_configuration(spec, OverheadConfig::Baseline, &workload);
        let base_wall = baseline.wall.as_secs_f64().max(1e-9);
        let base_virt = baseline.retired.max(1) as f64;
        let mut row = Vec::new();
        for config in CONFIGS {
            if !config.possible_for(spec) {
                row.push(None);
                continue;
            }
            let m = measure_configuration(spec, config, &workload);
            row.push(Some(Cell {
                wall: m.wall.as_secs_f64() / base_wall,
                virt: m.retired as f64 / base_virt,
            }));
        }
        measurements.push(row);
    }

    let header = format!(
        "{:<24}{:>13}{:>13}{:>13}{:>13}{:>13}{:>13}",
        "Firmware",
        "EmbSan-C KA",
        "EmbSan-D KA",
        "native KA",
        "EmbSan-C KC",
        "EmbSan-D KC",
        "native KC"
    );
    for (title, pick) in [
        ("wall-clock slowdown (on-host sanitizer work visible here)", 0),
        ("virtual-time slowdown (guest instructions + watch windows)", 1),
    ] {
        println!("\nFigure 2 [{title}]:\n{header}");
        for (fw, row) in FIRMWARE.iter().zip(&measurements) {
            let cells: Vec<String> = row
                .iter()
                .map(|cell| match cell {
                    Some(c) => {
                        format!("{:.2}x", if pick == 0 { c.wall } else { c.virt })
                    }
                    None => "-".to_string(),
                })
                .collect();
            println!(
                "{:<24}{:>13}{:>13}{:>13}{:>13}{:>13}{:>13}",
                fw.name, cells[0], cells[1], cells[2], cells[3], cells[4], cells[5]
            );
        }
    }

    // Grouped geometric means over the wall metric for KASAN and the
    // virtual metric for KCSAN (where each cost is observable), matching
    // the figure's facets.
    let geomean = |values: Vec<f64>| -> Option<f64> {
        if values.is_empty() {
            None
        } else {
            Some((values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp())
        }
    };
    let collect = |config_index: usize,
                   pick_wall: bool,
                   filter: &dyn Fn(&embsan_guestos::FirmwareSpec) -> bool|
     -> Option<f64> {
        geomean(
            FIRMWARE
                .iter()
                .zip(&measurements)
                .filter(|(fw, _)| filter(fw))
                .filter_map(|(_, row)| row[config_index].as_ref())
                .map(|c| if pick_wall { c.wall } else { c.virt })
                .collect(),
        )
    };
    let show = |label: &str, value: Option<f64>| match value {
        Some(v) => println!("  {label:<34}{v:.2}x"),
        None => println!("  {label:<34}-"),
    };

    println!("\nGrouped geometric means:");
    show("EmbSan-C KASAN (wall)", collect(0, true, &|_| true));
    show("EmbSan-D KASAN (wall)", collect(1, true, &|_| true));
    show("native KASAN (wall)", collect(2, true, &|_| true));
    show("EmbSan-C KASAN (virt)", collect(0, false, &|_| true));
    show("native KASAN (virt)", collect(2, false, &|_| true));
    show("EmbSan-C KCSAN (virt)", collect(3, false, &|_| true));
    show("EmbSan-D KCSAN (virt)", collect(4, false, &|_| true));
    show("native KCSAN (virt)", collect(5, false, &|_| true));
    show("KASAN wall, Embedded Linux", collect(0, true, &|fw| fw.base_os == BaseOs::EmbeddedLinux));
    show("KASAN wall, other RTOS", collect(0, true, &|fw| fw.base_os != BaseOs::EmbeddedLinux));
    for (label, arch) in [
        ("KASAN wall, ARM", embsan_emu::profile::Arch::Armv),
        ("KASAN wall, MIPS", embsan_emu::profile::Arch::Mipsv),
        ("KASAN wall, x86", embsan_emu::profile::Arch::X86v),
    ] {
        show(label, collect(0, true, &|fw| fw.arch == arch));
    }

    println!("\nPaper reference (wall on QEMU/SMP): EmbSan-C KASAN 2.2-2.5x, EmbSan-D 2.7-2.8x,");
    println!("native KASAN 2.2-2.7x, EmbSan KCSAN 5.2-5.7x, native KCSAN 5.4-6.1x,");
    println!("non-Linux KASAN 2.5-3.2x. Compare shapes/orderings per metric, not absolutes.");
}
