//! Ablation studies for EMBSAN's design choices (see DESIGN.md §5 and the
//! `ablation` module docs).
//!
//! Run with `cargo run --release -p embsan-bench --bin ablations`.

use embsan_bench::ablation::{
    coverage_source_ablation, fuzzer_ablation, kcsan_ablation, prepoison_ablation,
    quarantine_ablation,
};
use embsan_fuzz::CoverageSource;

fn main() {
    println!("Ablation 1: quarantine capacity vs report-classification quality");
    println!("{:>14}{:>18}{:>22}", "capacity", "UAF classified", "double-free classified");
    for capacity in [0u64, 1 << 10, 1 << 14, 1 << 18, 1 << 22] {
        let row = quarantine_ablation(capacity);
        println!(
            "{:>14}{:>15}/{}{:>19}/{}",
            capacity, row.uaf_classified, row.trials, row.double_free_classified, row.trials
        );
    }

    println!("\nAblation 2: KCSAN sampling interval / watch window");
    println!("{:>8}{:>8}{:>12}{:>12}", "sample", "window", "detected", "virt cost");
    for (sample, window) in [(500, 900), (120, 900), (47, 900), (47, 200), (47, 2400)] {
        let row = kcsan_ablation(sample, window, 6);
        println!(
            "{:>8}{:>8}{:>9}/{}{:>11.2}x",
            row.sample, row.window, row.detected, row.trials, row.virt_ratio
        );
    }

    println!("\nAblation 3: fuzzer dictionary and deterministic stage (fixed budget)");
    println!("{:>12}{:>12}{:>12}{:>12}", "dictionary", "det stage", "bugs found", "iterations");
    for (dict, det) in [(true, true), (true, false), (false, true), (false, false)] {
        let row = fuzzer_ablation(dict, det, 4000);
        println!(
            "{:>12}{:>12}{:>12}{:>12}",
            row.dictionary, row.deterministic_stage, row.bugs_found, row.iterations
        );
    }

    println!("\nAblation 4: heap pre-poisoning (probing with vs without heap bounds)");
    println!("{:>14}{:>16}{:>16}", "pre-poisoned", "near OOB", "far OOB");
    for prepoisoned in [true, false] {
        let row = prepoison_ablation(prepoisoned);
        let show = |b: bool| if b { "detected" } else { "missed" };
        println!(
            "{:>14}{:>16}{:>16}",
            row.prepoisoned,
            show(row.near_detected),
            show(row.far_detected)
        );
    }

    println!("\nAblation 5: coverage source (emulator edges vs kcov-style guest beacons)");
    println!("{:>12}{:>12}{:>12}{:>12}", "source", "bug found", "coverage", "corpus");
    for source in [CoverageSource::Emulator, CoverageSource::Guest] {
        let row = coverage_source_ablation(source, 4000);
        println!(
            "{:>12}{:>12}{:>12}{:>12}",
            format!("{:?}", row.source),
            row.bug_found,
            row.coverage,
            row.corpus
        );
    }
}
