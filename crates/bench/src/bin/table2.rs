//! Regenerates Table 2: detection of the 25 previously-found bugs under
//! EMBSAN-C, EMBSAN-D and native KASAN.
//!
//! Run with `cargo run --release -p embsan-bench --bin table2`.

use embsan_bench::replay_table2;
use embsan_guestos::bugs::{BugKind, KNOWN_BUGS};

fn main() {
    println!("Table 2: sanitizing capabilities on previously found bugs.\n");
    println!(
        "{:<20}{:<12}{:<28}{:>9}{:>9}{:>7}",
        "Bug Type", "Kernel Ver.", "Location", "EmbSan-C", "EmbSan-D", "KASAN"
    );
    let rows = replay_table2();
    let yes_no = |b: bool| if b { "Yes" } else { "No" };
    let mut mismatches = 0;
    for row in &rows {
        let bug = &KNOWN_BUGS[row.index];
        let bug_type = match bug.kind {
            BugKind::Uaf => "Use-after-free",
            BugKind::NullDeref => "Null-pointer-deref",
            _ => "Out-of-bounds",
        };
        println!(
            "{:<20}{:<12}{:<28}{:>9}{:>9}{:>7}",
            bug_type,
            bug.kernel_version,
            bug.location,
            yes_no(row.embsan_c),
            yes_no(row.embsan_d),
            yes_no(row.kasan),
        );
        // The paper's expected pattern: everything detected except the two
        // global-OOB bugs under EMBSAN-D.
        let expect_d = bug.kind != BugKind::GlobalOob;
        if !(row.embsan_c && row.kasan && row.embsan_d == expect_d) {
            mismatches += 1;
        }
    }
    println!();
    if mismatches == 0 {
        println!(
            "Detection matrix matches the paper for all {} bugs \
             (EMBSAN-D misses exactly the two global out-of-bounds bugs).",
            rows.len()
        );
    } else {
        println!("WARNING: {mismatches} rows deviate from the paper's matrix.");
        std::process::exit(1);
    }
}
