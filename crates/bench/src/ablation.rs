//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Four studies, each isolating one mechanism:
//!
//! 1. **Quarantine capacity** ([`quarantine_ablation`]): EMBSAN's
//!    quarantine is observational (it cannot delay reuse like in-kernel
//!    KASAN), so its size controls *classification quality* — evicted
//!    chunks lose their alloc/free context, degrading use-after-free and
//!    double-free reports into generic heap-OOB / invalid-free ones.
//! 2. **KCSAN sampling/window** ([`kcsan_ablation`]): race-detection rate
//!    and virtual-time cost as functions of the sample interval and the
//!    stall window.
//! 3. **Fuzzer dictionary & deterministic stage** ([`fuzzer_ablation`]):
//!    bugs found under a fixed budget with the binary dictionary and the
//!    deterministic stage individually removed.
//! 4. **Heap pre-poisoning** ([`prepoison_ablation`]): with heap bounds
//!    (source probing) far out-of-bounds writes land in pre-poisoned
//!    heap; binary-only probing's per-allocation tail redzones catch only
//!    near overflows.

use embsan_core::probe::{probe, ProbeMode};
use embsan_core::report::BugClass;
use embsan_core::runtime::kasan::{KasanConfig, KasanEngine};
use embsan_core::runtime::shadow::{code, ShadowMemory};
use embsan_core::session::Session;
use embsan_dsl::SanitizerSpec;
use embsan_emu::profile::Arch;
use embsan_fuzz::{descriptions_for, CoverageSource, Dictionary, Fuzzer, FuzzerConfig, Strategy};
use embsan_guestos::bugs::{trigger_key, BugKind, BugSpec};
use embsan_guestos::executor::{sys, ExecProgram};
use embsan_guestos::{os, BuildOptions, SanMode};

/// Outcome of one quarantine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantineRow {
    /// Quarantine capacity in bytes.
    pub capacity: u64,
    /// Of `trials` delayed use-after-free accesses, how many were
    /// classified as UAF (vs degraded to plain heap-OOB).
    pub uaf_classified: usize,
    /// How many delayed double frees kept their DoubleFree class.
    pub double_free_classified: usize,
    /// Number of trials per class.
    pub trials: usize,
}

/// Quarantine ablation: allocate/free `trials` victim chunks, churn the
/// quarantine with `churn_bytes` of other frees, then touch each victim.
pub fn quarantine_ablation(capacity: u64) -> QuarantineRow {
    let trials = 8usize;
    let churn_per_victim = 16 * 1024u32; // bytes of other frees in between
    let mut shadow = ShadowMemory::new(0x10_0000, 0x80_0000);
    shadow.poison(0x10_1000, 0x80_0000, code::HEAP);
    let mut engine =
        KasanEngine::new(KasanConfig { quarantine_bytes: capacity, heap_prepoison: true });

    let victim = |i: usize| 0x10_1000 + 0x40 + (i as u32) * 0x10_000;
    let mut uaf = 0;
    let mut dfree = 0;
    for i in 0..trials {
        let addr = victim(i);
        engine.on_alloc(&mut shadow, addr, 48, 0xA110C);
        assert!(engine.on_free(&mut shadow, addr, 0xF4EE, 0).is_none());
        // Churn: other chunks come and go, pushing the victim out of a
        // small quarantine.
        for c in 0..(churn_per_victim / 512) {
            let churn_addr = addr + 0x1000 + c * 0x400;
            engine.on_alloc(&mut shadow, churn_addr, 512, 0xC);
            let _ = engine.on_free(&mut shadow, churn_addr, 0xC, 0);
        }
        // Delayed UAF: is the access still classified with chunk context?
        if let Err(violation) = shadow.check(addr + 4, 4) {
            let report = engine.classify(violation.bad_addr, violation.code, 4, false, 0x1, 0);
            if report.class == BugClass::Uaf {
                uaf += 1;
            }
        }
        // Delayed double free.
        if let Some(report) = engine.on_free(&mut shadow, addr, 0xF4EE, 0) {
            if report.class == BugClass::DoubleFree {
                dfree += 1;
            }
        }
    }
    QuarantineRow { capacity, uaf_classified: uaf, double_free_classified: dfree, trials }
}

/// Outcome of one KCSAN parameter configuration.
#[derive(Debug, Clone, Copy)]
pub struct KcsanRow {
    /// Sampling interval (one watchpoint per `sample` accesses).
    pub sample: u64,
    /// Stall window in instructions.
    pub window: u64,
    /// Of `trials` race-trigger programs, how many produced a race report.
    pub detected: usize,
    /// Trials run.
    pub trials: usize,
    /// Virtual-time ratio vs the `sample=u64::MAX` (never-sample) run.
    pub virt_ratio: f64,
}

/// Builds a KCSAN-only spec with overridden watchpoint parameters.
fn kcsan_spec(sample: u64, window: u64) -> SanitizerSpec {
    let mut spec =
        embsan_core::distill::distill(embsan_core::distill::KCSAN_HEADER).expect("kcsan header");
    let wp = spec.resources.get_mut("watchpoints").expect("watchpoints resource");
    wp.insert("sample".to_string(), sample);
    wp.insert("window".to_string(), window);
    spec
}

/// KCSAN ablation: seeded race firmware, `trials` trigger programs per
/// configuration.
pub fn kcsan_ablation(sample: u64, window: u64, trials: usize) -> KcsanRow {
    let run = |sample: u64, window: u64| -> (usize, u64) {
        let bug = BugSpec::new("ablation/race", BugKind::Race);
        let opts = BuildOptions::new(Arch::X86v).san(SanMode::SanCall).cpus(2);
        let image = os::emblinux::build(&opts, std::slice::from_ref(&bug)).expect("build");
        let artifacts = probe(&image, ProbeMode::CompileTime, None).expect("probe");
        let mut session = Session::with_cpus(&image, &[kcsan_spec(sample, window)], &artifacts, 2)
            .expect("session");
        session.run_to_ready(400_000_000).expect("ready");
        let retired_start = session.machine().retired();
        let mut detected = 0;
        for trial in 0..trials {
            let mut program = ExecProgram::new();
            for _ in 0..4 {
                program.push(sys::BUG_BASE, &[trigger_key("ablation/race")]);
            }
            let outcome = session.run_program_fresh(&program, 50_000_000).expect("program");
            // Dedup would hide repeat detections across trials.
            if outcome.reports.iter().any(|r| r.class == BugClass::Race)
                || (trial > 0 && session.reports().iter().any(|r| r.class == BugClass::Race))
            {
                detected += 1;
            }
        }
        (detected, session.machine().retired() - retired_start)
    };
    // "Never samples" reference for the virtual-time ratio.
    let (_, base_retired) = run(u64::MAX, window);
    let (detected, retired) = run(sample, window);
    KcsanRow {
        sample,
        window,
        detected,
        trials,
        virt_ratio: retired as f64 / base_retired.max(1) as f64,
    }
}

/// Outcome of one fuzzer configuration.
#[derive(Debug, Clone, Copy)]
pub struct FuzzerAblationRow {
    /// Binary dictionary enabled.
    pub dictionary: bool,
    /// Deterministic stage enabled.
    pub deterministic_stage: bool,
    /// Distinct seeded bugs found under the budget.
    pub bugs_found: usize,
    /// Fuzzing iterations spent.
    pub iterations: u64,
}

/// Fuzzer ablation: fixed budget on a two-bug firmware, toggling the
/// dictionary and the deterministic stage.
pub fn fuzzer_ablation(
    dictionary: bool,
    deterministic_stage: bool,
    iterations: u64,
) -> FuzzerAblationRow {
    let spec =
        embsan_guestos::firmware_by_name("OpenHarmony-stm32f407").expect("registered firmware");
    let image = spec.build(spec.default_san_mode()).expect("build");
    let artifacts =
        probe(&image, embsan_fuzz::campaign::probe_mode_for(spec), None).expect("probe");
    let sanitizers = embsan_core::reference_specs().expect("specs");
    let mut session = Session::new(&image, &sanitizers, &artifacts).expect("session");
    session.run_to_ready(400_000_000).expect("ready");
    let dict = if dictionary { Dictionary::extract(&image) } else { Dictionary::default() };
    let mut config = FuzzerConfig::new(Strategy::Tardis, 0xAB1A);
    config.deterministic_stage = deterministic_stage;
    let mut fuzzer = Fuzzer::new(&mut session, descriptions_for(spec), dict, config);
    fuzzer.run(iterations).expect("fuzzing runs");
    let mut nrs: Vec<u8> =
        fuzzer.findings().iter().flat_map(|f| f.bug_syscalls.iter().copied()).collect();
    nrs.sort_unstable();
    nrs.dedup();
    FuzzerAblationRow { dictionary, deterministic_stage, bugs_found: nrs.len(), iterations }
}

/// Outcome of the heap pre-poisoning ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrepoisonRow {
    /// Probing mode (pre-poisoning possible only with heap bounds).
    pub prepoisoned: bool,
    /// Near overflow (within the tail redzone) detected.
    pub near_detected: bool,
    /// Far overflow (past the tail redzone) detected.
    pub far_detected: bool,
}

/// Heap pre-poisoning ablation on VxWorks-style firmware: probed from
/// source (heap bounds known → whole heap pre-poisoned) vs binary-only
/// (tail redzones only).
pub fn prepoison_ablation(prepoisoned: bool) -> PrepoisonRow {
    let bugs = [
        BugSpec::new("ablation/near", BugKind::OobWrite),
        BugSpec::new("ablation/far", BugKind::OobWriteFar),
    ];
    let opts = BuildOptions::new(Arch::Armv);
    let (image, mode) = if prepoisoned {
        (os::vxworks::build_unstripped(&opts, &bugs).expect("build"), ProbeMode::DynamicSource)
    } else {
        (os::vxworks::build(&opts, &bugs).expect("build"), ProbeMode::DynamicBinary)
    };
    let sanitizers = embsan_core::reference_specs().expect("specs");
    let artifacts = probe(&image, mode, None).expect("probe");
    let mut session = Session::new(&image, &sanitizers, &artifacts).expect("session");
    session.run_to_ready(400_000_000).expect("ready");
    let mut detect = |nr: u8, location: &str| -> bool {
        let mut program = ExecProgram::new();
        program.push(nr, &[trigger_key(location)]);
        let outcome = session.run_program_fresh(&program, 20_000_000).expect("program");
        outcome.reports.iter().any(|r| r.class == BugClass::HeapOob)
    };
    PrepoisonRow {
        prepoisoned,
        near_detected: detect(sys::BUG_BASE, "ablation/near"),
        far_detected: detect(sys::BUG_BASE + 1, "ablation/far"),
    }
}

/// Outcome of one coverage-source configuration.
#[derive(Debug, Clone, Copy)]
pub struct CoverageSourceRow {
    /// Collection mechanism.
    pub source: CoverageSource,
    /// Whether the staged-gate bug was found under the budget.
    pub bug_found: bool,
    /// Coverage buckets reached.
    pub coverage: usize,
    /// Corpus entries retained.
    pub corpus: usize,
}

/// Coverage-source ablation: the same firmware (built with both kcov
/// beacons and EMBSAN-C instrumentation), the same budget and seed, fuzzed
/// once with emulator edge coverage (the Tardis/EMBSAN mechanism) and once
/// with guest kcov-style function coverage. The staged byte gates are
/// intra-function branches — invisible to function-granular coverage, so
/// the guest source cannot retain stage-1 progress.
pub fn coverage_source_ablation(source: CoverageSource, iterations: u64) -> CoverageSourceRow {
    let bug = BugSpec::new("ablation/covsrc", BugKind::OobWrite);
    let opts = BuildOptions::new(Arch::Armv).san(SanMode::SanCall).kcov(true);
    let image = os::emblinux::build(&opts, std::slice::from_ref(&bug)).expect("build");
    let sanitizers = embsan_core::reference_specs().expect("specs");
    let artifacts = probe(&image, ProbeMode::CompileTime, None).expect("probe");
    let mut session = Session::new(&image, &sanitizers, &artifacts).expect("session");
    session.run_to_ready(400_000_000).expect("ready");
    let mut config = FuzzerConfig::new(Strategy::Syz, 0xC0DE);
    config.coverage_source = source;
    let mut descs = embsan_fuzz::descs::base_descriptions();
    descs.push(embsan_fuzz::SyscallDesc {
        nr: sys::BUG_BASE,
        args: vec![embsan_fuzz::ArgKind::Key],
    });
    let dict = Dictionary::extract(&image);
    let mut fuzzer = Fuzzer::new(&mut session, descs, dict, config);
    fuzzer.run(iterations).expect("fuzzing runs");
    let stats = fuzzer.stats();
    CoverageSourceRow {
        source,
        bug_found: stats.findings > 0,
        coverage: stats.coverage,
        corpus: stats.corpus,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The quarantine's classification-quality effect has the right
    /// direction: a large quarantine keeps every delayed UAF/double-free
    /// correctly classified; a tiny one degrades them.
    #[test]
    fn quarantine_direction() {
        let large = quarantine_ablation(1 << 20);
        assert_eq!(large.uaf_classified, large.trials);
        assert_eq!(large.double_free_classified, large.trials);
        let tiny = quarantine_ablation(1024);
        assert!(
            tiny.uaf_classified < large.uaf_classified,
            "tiny quarantine must lose UAF context: {tiny:?}"
        );
        assert!(tiny.double_free_classified < large.double_free_classified);
    }

    /// Pre-poisoning catches far overflows; tail redzones alone do not.
    /// Near overflows are caught either way.
    #[test]
    fn prepoison_direction() {
        let with = prepoison_ablation(true);
        assert!(with.near_detected && with.far_detected, "{with:?}");
        let without = prepoison_ablation(false);
        assert!(without.near_detected, "{without:?}");
        assert!(!without.far_detected, "{without:?}");
    }

    /// Emulator edge coverage climbs the staged gates; kcov-style guest
    /// function coverage cannot (stage branches create no new functions).
    #[test]
    fn coverage_source_direction() {
        let emulator = coverage_source_ablation(CoverageSource::Emulator, 4000);
        assert!(emulator.bug_found, "{emulator:?}");
        let guest = coverage_source_ablation(CoverageSource::Guest, 4000);
        assert!(!guest.bug_found, "{guest:?}");
        assert!(guest.coverage < emulator.coverage);
    }

    /// The full fuzzer beats the no-dictionary configuration under the
    /// same small budget.
    #[test]
    fn fuzzer_dictionary_direction() {
        let full = fuzzer_ablation(true, true, 2500);
        let no_dict = fuzzer_ablation(false, true, 2500);
        assert!(full.bugs_found >= 1, "{full:?}");
        assert!(full.bugs_found > no_dict.bugs_found, "full {full:?} vs no-dict {no_dict:?}");
    }
}
