//! Table 2: replay of the 25 previously-found bugs under EMBSAN-C,
//! EMBSAN-D and native KASAN.
//!
//! Following §4.1: for each bug, the specific kernel is built (one seeded
//! bug per build, like checking out the bug report's kernel version), its
//! reproducer program is replayed under each sanitizer configuration, and
//! detection is recorded. The expected outcome — everything detected except
//! the two global-OOB bugs under EMBSAN-D — must *emerge* from the
//! mechanisms; nothing here special-cases those rows.

use embsan_core::probe::{probe, ProbeMode};
use embsan_core::report::BugClass;
use embsan_core::session::Session;
use embsan_emu::hook::NullHook;
use embsan_emu::machine::RunExit;
use embsan_emu::profile::Arch;
use embsan_guestos::bugs::{trigger_key, BugKind, BugSpec, KnownBug, KNOWN_BUGS};
use embsan_guestos::executor::{sys, ExecProgram};
use embsan_guestos::native::{KASAN_EXIT, KASAN_MARKER};
use embsan_guestos::{os, BuildOptions, SanMode};

/// Detection outcome for one Table-2 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectionRow {
    /// Index into [`KNOWN_BUGS`].
    pub index: usize,
    /// Detected by EMBSAN-C.
    pub embsan_c: bool,
    /// Detected by EMBSAN-D.
    pub embsan_d: bool,
    /// Detected by the guest-native KASAN baseline.
    pub kasan: bool,
}

/// The report classes that count as detecting a seeded bug kind.
fn expected_classes(kind: BugKind) -> &'static [BugClass] {
    match kind {
        BugKind::OobWrite | BugKind::OobRead | BugKind::OobWriteFar => &[BugClass::HeapOob],
        BugKind::Uaf => &[BugClass::Uaf],
        BugKind::DoubleFree => &[BugClass::DoubleFree, BugClass::InvalidFree],
        BugKind::NullDeref => &[BugClass::NullDeref],
        BugKind::GlobalOob => &[BugClass::GlobalOob],
        BugKind::Race => &[BugClass::Race],
        BugKind::UninitRead => &[BugClass::UninitRead],
    }
}

/// The reproducer program shipped with a known bug.
pub fn reproducer(bug: &KnownBug) -> ExecProgram {
    let mut program = ExecProgram::new();
    program.push(sys::BUG_BASE, &[trigger_key(bug.location)]);
    program
}

const READY_BUDGET: u64 = 100_000_000;
const RUN_BUDGET: u64 = 20_000_000;

/// Replays one known bug under an EMBSAN configuration.
fn replay_embsan(bug: &KnownBug, san: SanMode, mode: ProbeMode) -> bool {
    let spec = BugSpec::new(bug.location, bug.kind);
    let opts = BuildOptions::new(Arch::Armv).san(san);
    let image =
        os::emblinux::build(&opts, std::slice::from_ref(&spec)).expect("known-bug kernel builds");
    let sanitizers = embsan_core::reference_specs().expect("reference specs distill");
    let artifacts = probe(&image, mode, None).expect("probing succeeds");
    let mut session = Session::new(&image, &sanitizers, &artifacts).expect("session constructs");
    session.run_to_ready(READY_BUDGET).expect("firmware becomes ready");
    let outcome = session.run_program(&reproducer(bug), RUN_BUDGET).expect("reproducer runs");
    let expected = expected_classes(bug.kind);
    outcome.reports.iter().any(|r| expected.contains(&r.class))
}

/// Replays one known bug on the guest-native KASAN baseline (no EMBSAN
/// attached; the sanitizer runs as translated guest code).
fn replay_native_kasan(bug: &KnownBug) -> bool {
    let spec = BugSpec::new(bug.location, bug.kind);
    let opts = BuildOptions::new(Arch::Armv).san(SanMode::NativeKasan);
    let image = os::emblinux::build(&opts, std::slice::from_ref(&spec))
        .expect("native-kasan kernel builds");
    let mut machine = image.boot_machine(1).expect("machine boots");
    let exit = machine.run(&mut NullHook, READY_BUDGET).expect("boot runs");
    assert_eq!(exit, RunExit::AllIdle, "native build boots to idle");
    machine.take_console();
    machine.bus_mut().devices.mailbox.host_load(&reproducer(bug).encode());
    let exit = machine.run(&mut NullHook, RUN_BUDGET).expect("reproducer runs");
    let console = String::from_utf8_lossy(&machine.take_console()).to_string();
    // Native KASAN reports on its console and powers off; a null deref
    // manifests as a guard-page fault (the paged-fault path real KASAN
    // rides on).
    console.contains(KASAN_MARKER.trim_end())
        || console.contains("KASAN:")
        || exit == RunExit::Halted { code: KASAN_EXIT }
        || matches!(exit, RunExit::Faulted { fault: embsan_emu::Fault::NullPage { .. }, .. })
}

/// Replays one known bug under all three sanitizer configurations.
pub fn replay_known_bug(index: usize) -> DetectionRow {
    let bug = &KNOWN_BUGS[index];
    DetectionRow {
        index,
        embsan_c: replay_embsan(bug, SanMode::SanCall, ProbeMode::CompileTime),
        embsan_d: replay_embsan(bug, SanMode::None, ProbeMode::DynamicSource),
        kasan: replay_native_kasan(bug),
    }
}

/// Replays the full Table-2 corpus.
pub fn replay_table2() -> Vec<DetectionRow> {
    (0..KNOWN_BUGS.len()).map(replay_known_bug).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A detection spot-check per bug kind (the full matrix is the
    /// integration test / bench binary's job).
    #[test]
    fn representative_rows_match_the_paper() {
        // Row 0: slab OOB — everyone detects it.
        let row = replay_known_bug(0);
        assert!(row.embsan_c && row.embsan_d && row.kasan, "{row:?}");
        // Row 23 (fbcon_get_font): global OOB — EMBSAN-D misses it.
        let row = replay_known_bug(23);
        assert!(row.embsan_c, "EMBSAN-C detects global OOB");
        assert!(!row.embsan_d, "EMBSAN-D lacks global redzones");
        assert!(row.kasan, "native KASAN detects global OOB");
    }

    #[test]
    fn uaf_and_npd_rows() {
        // Row 1: use-after-free.
        let row = replay_known_bug(1);
        assert!(row.embsan_c && row.embsan_d && row.kasan, "{row:?}");
        // Row 7 (free_pages): null deref.
        let row = replay_known_bug(7);
        assert!(row.embsan_c && row.embsan_d && row.kasan, "{row:?}");
    }
}
