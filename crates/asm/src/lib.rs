//! Firmware toolchain for EV32: assembler, linker, image format, and the
//! EMBSAN-C compile-time instrumentation pass.
//!
//! This crate plays the role of the GCC/LLVM toolchain in the EMBSAN paper:
//! guest firmware is written either programmatically against [`builder::Asm`]
//! or as text assembly parsed by [`text::assemble`], linked by
//! [`link::link`] into a [`image::FirmwareImage`], and optionally rewritten
//! by [`instrument::instrument`] — the analogue of building a kernel with
//! `-fsanitize` — which:
//!
//! - inserts calls to `__san_loadN`/`__san_storeN` stub functions before
//!   every memory access,
//! - implements those stubs as a *dummy sanitizer library* whose body is a
//!   single trapping `hyper` instruction (the paper's `vmcall` trick), and
//! - places redzones around sanitized global objects, with boot-time
//!   registration calls.
//!
//! Firmware built *without* the pass can still be sanitized by EMBSAN-D,
//! which intercepts allocator functions dynamically — at the cost of global
//! redzone coverage, exactly the capability gap Table 2 of the paper shows.

pub mod builder;
pub mod image;
pub mod instrument;
pub mod ir;
pub mod link;
pub mod sanabi;
pub mod text;

pub use builder::Asm;
pub use image::{FirmwareImage, ImageError, InstrMode, Symbol, SymbolKind};
pub use instrument::{instrument, InstrumentOptions};
pub use ir::{AInsn, Cond, GlobalDef, Program, TextItem};
pub use link::{link, LinkError, LinkOptions};
pub use text::{assemble, AsmError};
