//! The EVFW firmware image format.
//!
//! A [`FirmwareImage`] is the linker's output and the unit of distribution:
//! code, initialized data, the symbol table, the global-object table
//! (sizes and redzones of sanitized globals) and build metadata, with a
//! compact binary serialization. Closed-source firmware — like the paper's
//! TP-Link VxWorks image — is modelled by [`FirmwareImage::strip`], which
//! removes all symbol information so only dynamic probing can analyze it.

use embsan_emu::machine::Machine;
use embsan_emu::profile::{Arch, ArchProfile};
use embsan_emu::EmuError;

/// Magic bytes at the start of every serialized image.
pub const MAGIC: &[u8; 4] = b"EVFW";
/// Current format version.
pub const VERSION: u16 = 1;

/// How the firmware was instrumented at build time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrMode {
    /// No compile-time instrumentation (EMBSAN-D territory).
    None,
    /// EMBSAN-C: sanitizer calls linked against the dummy (hypercall) library.
    SanCall,
    /// Compile-time instrumentation linked against a guest-native sanitizer
    /// runtime (the paper's native KASAN/KCSAN baselines).
    Native,
}

impl InstrMode {
    fn to_u8(self) -> u8 {
        match self {
            InstrMode::None => 0,
            InstrMode::SanCall => 1,
            InstrMode::Native => 2,
        }
    }

    fn from_u8(value: u8) -> Option<InstrMode> {
        match value {
            0 => Some(InstrMode::None),
            1 => Some(InstrMode::SanCall),
            2 => Some(InstrMode::Native),
            _ => None,
        }
    }
}

/// Kind of a symbol-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymbolKind {
    /// A function entry point.
    Func,
    /// A data object.
    Object,
    /// A linker-synthesized location (heap bounds, stack top, …).
    Synthetic,
}

impl SymbolKind {
    fn to_u8(self) -> u8 {
        match self {
            SymbolKind::Func => 0,
            SymbolKind::Object => 1,
            SymbolKind::Synthetic => 2,
        }
    }

    fn from_u8(value: u8) -> Option<SymbolKind> {
        match value {
            0 => Some(SymbolKind::Func),
            1 => Some(SymbolKind::Object),
            2 => Some(SymbolKind::Synthetic),
            _ => None,
        }
    }
}

/// A symbol-table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name.
    pub name: String,
    /// Guest address.
    pub addr: u32,
    /// Size in bytes (0 if unknown; function sizes span to the next symbol).
    pub size: u32,
    /// Symbol kind.
    pub kind: SymbolKind,
}

/// A sanitized global object with its redzone geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalObject {
    /// Symbol name.
    pub name: String,
    /// Address of the object itself (not the redzone).
    pub addr: u32,
    /// Object size in bytes.
    pub size: u32,
    /// Redzone bytes before the object (0 if built without redzones).
    pub redzone_before: u32,
    /// Redzone bytes after the object.
    pub redzone_after: u32,
}

/// Errors from [`FirmwareImage::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// Input ended before the structure was complete.
    Truncated,
    /// Magic bytes did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Unknown architecture, instrumentation mode or symbol kind tag.
    BadTag(u8),
    /// A string field was not valid UTF-8.
    BadString,
}

impl std::fmt::Display for ImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageError::Truncated => write!(f, "truncated firmware image"),
            ImageError::BadMagic => write!(f, "missing EVFW magic"),
            ImageError::BadVersion(v) => write!(f, "unsupported image version {v}"),
            ImageError::BadTag(t) => write!(f, "invalid tag byte {t:#x}"),
            ImageError::BadString => write!(f, "invalid UTF-8 in image string"),
        }
    }
}

impl std::error::Error for ImageError {}

/// A linked firmware image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirmwareImage {
    /// Target architecture.
    pub arch: Arch,
    /// Instrumentation mode the image was built with.
    pub instr: InstrMode,
    /// Entry point address.
    pub entry: u32,
    /// ROM (text) base address.
    pub rom_base: u32,
    /// ROM contents.
    pub text: Vec<u8>,
    /// RAM base address.
    pub ram_base: u32,
    /// RAM size in bytes.
    pub ram_size: u32,
    /// Initialized-data records applied to RAM at load time.
    pub data_init: Vec<(u32, Vec<u8>)>,
    /// Address of the ready-to-run point (`None` if unknown/stripped).
    pub ready: Option<u32>,
    /// Symbol table (empty if stripped).
    pub symbols: Vec<Symbol>,
    /// Global-object table (empty if stripped or not instrumented).
    pub globals: Vec<GlobalObject>,
}

impl FirmwareImage {
    /// Looks up a symbol's address by name.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.iter().find(|s| s.name == name).map(|s| s.addr)
    }

    /// Finds the function symbol containing `addr`, if any.
    pub fn function_at(&self, addr: u32) -> Option<&Symbol> {
        self.symbols
            .iter()
            .filter(|s| s.kind == SymbolKind::Func && s.addr <= addr)
            .filter(|s| s.size == 0 || addr < s.addr + s.size)
            .max_by_key(|s| s.addr)
    }

    /// Whether the image carries symbol information.
    pub fn has_symbols(&self) -> bool {
        !self.symbols.is_empty()
    }

    /// Returns a copy with all symbol information, the global-object table
    /// and the ready annotation removed — a closed-source binary-only image.
    pub fn strip(&self) -> FirmwareImage {
        FirmwareImage { symbols: Vec::new(), globals: Vec::new(), ready: None, ..self.clone() }
    }

    /// Boots a machine from this image: builds a [`Machine`] for the image's
    /// architecture profile, loads the ROM and applies data-init records.
    ///
    /// # Errors
    ///
    /// Propagates machine construction and data-load errors.
    pub fn boot_machine(&self, cpus: usize) -> Result<Machine, EmuError> {
        let profile = ArchProfile::for_arch(self.arch);
        let mut machine = Machine::builder(profile)
            .rom(self.rom_base, &self.text)
            .ram(self.ram_base, self.ram_size)
            .cpus(cpus)
            .entry(self.entry)
            .build()?;
        for (addr, bytes) in &self.data_init {
            machine.bus_mut().write_bytes(*addr, bytes)?;
        }
        Ok(machine)
    }

    /// Serializes the image to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.bytes(MAGIC);
        w.u16(VERSION);
        w.u8(match self.arch {
            Arch::Armv => 0,
            Arch::Mipsv => 1,
            Arch::X86v => 2,
        });
        w.u8(self.instr.to_u8());
        w.u32(self.entry);
        w.u32(self.rom_base);
        w.u32(self.ram_base);
        w.u32(self.ram_size);
        w.u32(self.ready.map_or(0, |r| r));
        w.u32(self.text.len() as u32);
        w.bytes(&self.text);
        w.u32(self.data_init.len() as u32);
        for (addr, bytes) in &self.data_init {
            w.u32(*addr);
            w.u32(bytes.len() as u32);
            w.bytes(bytes);
        }
        w.u32(self.symbols.len() as u32);
        for sym in &self.symbols {
            w.u8(sym.kind.to_u8());
            w.u32(sym.addr);
            w.u32(sym.size);
            w.str16(&sym.name);
        }
        w.u32(self.globals.len() as u32);
        for g in &self.globals {
            w.u32(g.addr);
            w.u32(g.size);
            w.u32(g.redzone_before);
            w.u32(g.redzone_after);
            w.str16(&g.name);
        }
        w.out
    }

    /// Parses an image from bytes.
    ///
    /// # Errors
    ///
    /// Returns an [`ImageError`] describing the first malformed field.
    pub fn parse(input: &[u8]) -> Result<FirmwareImage, ImageError> {
        let mut r = Reader { input, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(ImageError::BadMagic);
        }
        let version = r.u16()?;
        if version != VERSION {
            return Err(ImageError::BadVersion(version));
        }
        let arch = match r.u8()? {
            0 => Arch::Armv,
            1 => Arch::Mipsv,
            2 => Arch::X86v,
            t => return Err(ImageError::BadTag(t)),
        };
        let instr_tag = r.u8()?;
        let instr = InstrMode::from_u8(instr_tag).ok_or(ImageError::BadTag(instr_tag))?;
        let entry = r.u32()?;
        let rom_base = r.u32()?;
        let ram_base = r.u32()?;
        let ram_size = r.u32()?;
        let ready_raw = r.u32()?;
        let text_len = r.u32()? as usize;
        let text = r.take(text_len)?.to_vec();
        let n_init = r.u32()?;
        let mut data_init = Vec::with_capacity(n_init as usize);
        for _ in 0..n_init {
            let addr = r.u32()?;
            let len = r.u32()? as usize;
            data_init.push((addr, r.take(len)?.to_vec()));
        }
        let n_syms = r.u32()?;
        let mut symbols = Vec::with_capacity(n_syms as usize);
        for _ in 0..n_syms {
            let kind_tag = r.u8()?;
            let kind = SymbolKind::from_u8(kind_tag).ok_or(ImageError::BadTag(kind_tag))?;
            let addr = r.u32()?;
            let size = r.u32()?;
            let name = r.str16()?;
            symbols.push(Symbol { name, addr, size, kind });
        }
        let n_globals = r.u32()?;
        let mut globals = Vec::with_capacity(n_globals as usize);
        for _ in 0..n_globals {
            let addr = r.u32()?;
            let size = r.u32()?;
            let redzone_before = r.u32()?;
            let redzone_after = r.u32()?;
            let name = r.str16()?;
            globals.push(GlobalObject { name, addr, size, redzone_before, redzone_after });
        }
        Ok(FirmwareImage {
            arch,
            instr,
            entry,
            rom_base,
            text,
            ram_base,
            ram_size,
            data_init,
            ready: if ready_raw == 0 { None } else { Some(ready_raw) },
            symbols,
            globals,
        })
    }
}

#[derive(Default)]
struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.out.extend_from_slice(v);
    }
    fn str16(&mut self, s: &str) {
        self.u16(s.len() as u16);
        self.bytes(s.as_bytes());
    }
}

struct Reader<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], ImageError> {
        if self.pos + len > self.input.len() {
            return Err(ImageError::Truncated);
        }
        let slice = &self.input[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }
    fn u8(&mut self) -> Result<u8, ImageError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, ImageError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, ImageError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn str16(&mut self) -> Result<String, ImageError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ImageError::BadString)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_image() -> FirmwareImage {
        FirmwareImage {
            arch: Arch::Mipsv,
            instr: InstrMode::SanCall,
            entry: 0x2_0000,
            rom_base: 0x2_0000,
            text: vec![1, 2, 3, 4, 5, 6, 7, 8],
            ram_base: 0x20_0000,
            ram_size: 0x10_0000,
            data_init: vec![(0x20_0000, vec![9, 9]), (0x20_0100, vec![7])],
            ready: Some(0x2_0040),
            symbols: vec![
                Symbol { name: "main".into(), addr: 0x2_0000, size: 32, kind: SymbolKind::Func },
                Symbol { name: "kmalloc".into(), addr: 0x2_0020, size: 64, kind: SymbolKind::Func },
                Symbol {
                    name: "__heap_start".into(),
                    addr: 0x20_1000,
                    size: 0,
                    kind: SymbolKind::Synthetic,
                },
            ],
            globals: vec![GlobalObject {
                name: "g_table".into(),
                addr: 0x20_0020,
                size: 40,
                redzone_before: 32,
                redzone_after: 32,
            }],
        }
    }

    #[test]
    fn serialize_parse_roundtrip() {
        let image = sample_image();
        let parsed = FirmwareImage::parse(&image.to_bytes()).unwrap();
        assert_eq!(parsed, image);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(FirmwareImage::parse(b"EVF"), Err(ImageError::Truncated));
        assert_eq!(FirmwareImage::parse(b"NOPE1234"), Err(ImageError::BadMagic));
        let mut bytes = sample_image().to_bytes();
        bytes[4] = 0xFF; // version
        assert!(matches!(FirmwareImage::parse(&bytes), Err(ImageError::BadVersion(_))));
        let mut bytes = sample_image().to_bytes();
        bytes.truncate(bytes.len() - 3);
        assert_eq!(FirmwareImage::parse(&bytes), Err(ImageError::Truncated));
    }

    #[test]
    fn strip_removes_analysis_surface() {
        let stripped = sample_image().strip();
        assert!(!stripped.has_symbols());
        assert!(stripped.globals.is_empty());
        assert!(stripped.ready.is_none());
        // But the runnable parts survive.
        assert_eq!(stripped.text, sample_image().text);
        assert_eq!(stripped.data_init, sample_image().data_init);
    }

    #[test]
    fn symbol_queries() {
        let image = sample_image();
        assert_eq!(image.symbol("kmalloc"), Some(0x2_0020));
        assert_eq!(image.symbol("missing"), None);
        assert_eq!(image.function_at(0x2_0010).unwrap().name, "main");
        assert_eq!(image.function_at(0x2_0020).unwrap().name, "kmalloc");
        assert_eq!(image.function_at(0x2_0059).unwrap().name, "kmalloc");
        assert!(image.function_at(0x2_0060).is_none());
        assert!(image.function_at(0x1_0000).is_none());
    }

    #[test]
    fn boot_machine_applies_data_init() {
        let mut image = sample_image();
        // Make the text a valid instruction stream (halt).
        image.text = embsan_emu::isa::Insn::Halt { code: 0 }
            .encode()
            .to_bytes(embsan_emu::profile::Endian::Big)
            .to_vec();
        let mut machine = image.boot_machine(1).unwrap();
        assert_eq!(machine.read_mem(0x20_0000, 1).unwrap(), 9);
        assert_eq!(machine.read_mem(0x20_0100, 1).unwrap(), 7);
        assert_eq!(machine.cpu(0).pc, 0x2_0000);
    }
}
