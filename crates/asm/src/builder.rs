//! Programmatic assembler frontend.
//!
//! [`Asm`] is a thin, chainable emitter over [`crate::ir::Program`] text
//! items. The guest operating systems in `embsan-guestos` are written
//! entirely against this API.
//!
//! # Example
//!
//! ```
//! use embsan_asm::Asm;
//! use embsan_emu::isa::Reg;
//!
//! let mut asm = Asm::new();
//! asm.func("memset32");
//! // a0 = dst, a1 = value, a2 = word count
//! asm.label("memset32.loop");
//! asm.beq(Reg::A2, Reg::R0, "memset32.done");
//! asm.sw(Reg::A1, Reg::A0, 0);
//! asm.addi(Reg::A0, Reg::A0, 4);
//! asm.addi(Reg::A2, Reg::A2, -1);
//! asm.jump("memset32.loop");
//! asm.label("memset32.done");
//! asm.ret();
//! assert_eq!(asm.items().len(), 9);
//! ```

use embsan_emu::isa::{Insn, Reg};

use crate::ir::{AInsn, Cond, TextItem};

/// Chainable emitter of text items.
#[derive(Debug, Clone, Default)]
pub struct Asm {
    items: Vec<TextItem>,
}

macro_rules! rrr {
    ($($method:ident => $variant:ident),* $(,)?) => {
        $(
            #[doc = concat!("Emits `", stringify!($method), " rd, rs1, rs2`.")]
            pub fn $method(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
                self.raw(Insn::$variant { rd, rs1, rs2 })
            }
        )*
    };
}

macro_rules! rri {
    ($($method:ident => $variant:ident),* $(,)?) => {
        $(
            #[doc = concat!("Emits `", stringify!($method), " rd, rs1, imm`.")]
            pub fn $method(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
                self.raw(Insn::$variant { rd, rs1, imm })
            }
        )*
    };
}

macro_rules! loads {
    ($($method:ident => $variant:ident),* $(,)?) => {
        $(
            #[doc = concat!("Emits `", stringify!($method), " rd, [rs1+imm]`.")]
            pub fn $method(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
                self.raw(Insn::$variant { rd, rs1, imm })
            }
        )*
    };
}

macro_rules! stores {
    ($($method:ident => $variant:ident),* $(,)?) => {
        $(
            #[doc = concat!("Emits `", stringify!($method), " rs2, [rs1+imm]`.")]
            pub fn $method(&mut self, rs2: Reg, rs1: Reg, imm: i32) -> &mut Self {
                self.raw(Insn::$variant { rs2, rs1, imm })
            }
        )*
    };
}

macro_rules! branches {
    ($($method:ident => $cond:ident),* $(,)?) => {
        $(
            #[doc = concat!("Emits a `", stringify!($method), "` branch to a label.")]
            pub fn $method(&mut self, rs1: Reg, rs2: Reg, target: &str) -> &mut Self {
                self.push(TextItem::Insn(AInsn::Branch {
                    cond: Cond::$cond,
                    rs1,
                    rs2,
                    target: target.to_string(),
                }))
            }
        )*
    };
}

impl Asm {
    /// Creates an empty emitter.
    pub fn new() -> Asm {
        Asm::default()
    }

    /// The emitted items.
    pub fn items(&self) -> &[TextItem] {
        &self.items
    }

    /// Consumes the emitter, returning the items.
    pub fn into_items(self) -> Vec<TextItem> {
        self.items
    }

    /// Appends another emitter's items.
    pub fn append(&mut self, other: Asm) -> &mut Self {
        self.items.extend(other.items);
        self
    }

    fn push(&mut self, item: TextItem) -> &mut Self {
        self.items.push(item);
        self
    }

    /// Emits a raw machine instruction.
    pub fn raw(&mut self, insn: Insn) -> &mut Self {
        self.push(TextItem::Insn(AInsn::Raw(insn)))
    }

    /// Starts a function (emits a function label).
    pub fn func(&mut self, name: &str) -> &mut Self {
        self.push(TextItem::Func(name.to_string()))
    }

    /// Emits a local label.
    pub fn label(&mut self, name: &str) -> &mut Self {
        self.push(TextItem::Label(name.to_string()))
    }

    rrr! {
        add => Add, sub => Sub, and => And, or => Or, xor => Xor,
        sll => Sll, srl => Srl, sra => Sra, mul => Mul, mulh => Mulh,
        divu => Divu, remu => Remu, slt => Slt, sltu => Sltu,
    }

    rri! {
        addi => Addi, andi => Andi, ori => Ori, xori => Xori,
        slti => Slti, sltiu => Sltiu,
    }

    /// Emits `slli rd, rs1, shamt`.
    pub fn slli(&mut self, rd: Reg, rs1: Reg, shamt: u8) -> &mut Self {
        self.raw(Insn::Slli { rd, rs1, shamt })
    }

    /// Emits `srli rd, rs1, shamt`.
    pub fn srli(&mut self, rd: Reg, rs1: Reg, shamt: u8) -> &mut Self {
        self.raw(Insn::Srli { rd, rs1, shamt })
    }

    /// Emits `srai rd, rs1, shamt`.
    pub fn srai(&mut self, rd: Reg, rs1: Reg, shamt: u8) -> &mut Self {
        self.raw(Insn::Srai { rd, rs1, shamt })
    }

    loads! { lb => Lb, lbu => Lbu, lh => Lh, lhu => Lhu, lw => Lw }
    stores! { sb => Sb, sh => Sh, sw => Sw }

    /// Emits `amoadd.w rd, [rs1], rs2`.
    pub fn amoadd(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.raw(Insn::AmoAddW { rd, rs1, rs2 })
    }

    /// Emits `amoswp.w rd, [rs1], rs2`.
    pub fn amoswp(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.raw(Insn::AmoSwpW { rd, rs1, rs2 })
    }

    branches! {
        beq => Eq, bne => Ne, blt => Lt, bltu => Ltu, bge => Ge, bgeu => Geu,
    }

    /// Loads a 32-bit constant into `rd`.
    pub fn li(&mut self, rd: Reg, value: impl Into<i64>) -> &mut Self {
        self.push(TextItem::Insn(AInsn::Li { rd, value: value.into() }))
    }

    /// Loads the address of `sym` into `rd`.
    pub fn la(&mut self, rd: Reg, sym: &str) -> &mut Self {
        self.push(TextItem::Insn(AInsn::La { rd, sym: sym.to_string(), offset: 0 }))
    }

    /// Loads the address of `sym + offset` into `rd`.
    pub fn la_off(&mut self, rd: Reg, sym: &str, offset: i32) -> &mut Self {
        self.push(TextItem::Insn(AInsn::La { rd, sym: sym.to_string(), offset }))
    }

    /// Unconditional jump to a label.
    pub fn jump(&mut self, target: &str) -> &mut Self {
        self.push(TextItem::Insn(AInsn::Jump { target: target.to_string() }))
    }

    /// Calls a function (return address in `lr`).
    pub fn call(&mut self, target: &str) -> &mut Self {
        self.push(TextItem::Insn(AInsn::Call { target: target.to_string() }))
    }

    /// Calls a function with the return address in an alternate register.
    pub fn call_via(&mut self, link: Reg, target: &str) -> &mut Self {
        self.push(TextItem::Insn(AInsn::CallVia { link, target: target.to_string() }))
    }

    /// Indirect call through a register (`jalr lr, rs1, 0`).
    pub fn call_reg(&mut self, rs1: Reg) -> &mut Self {
        self.raw(Insn::Jalr { rd: Reg::LR, rs1, imm: 0 })
    }

    /// Returns from a function (`jalr r0, lr, 0`).
    pub fn ret(&mut self) -> &mut Self {
        self.raw(Insn::Jalr { rd: Reg::R0, rs1: Reg::LR, imm: 0 })
    }

    /// Returns through an alternate link register.
    pub fn ret_via(&mut self, link: Reg) -> &mut Self {
        self.raw(Insn::Jalr { rd: Reg::R0, rs1: link, imm: 0 })
    }

    /// Copies `rs1` into `rd` (`addi rd, rs1, 0`).
    pub fn mv(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.addi(rd, rs1, 0)
    }

    /// Emits `ecall code`.
    pub fn ecall(&mut self, code: u16) -> &mut Self {
        self.raw(Insn::Ecall { code })
    }

    /// Emits `eret`.
    pub fn eret(&mut self) -> &mut Self {
        self.raw(Insn::Eret)
    }

    /// Emits a hypercall.
    pub fn hyper(&mut self, nr: u32) -> &mut Self {
        self.raw(Insn::Hyper { nr })
    }

    /// Reads a CSR.
    pub fn csrr(&mut self, rd: Reg, idx: u16) -> &mut Self {
        self.raw(Insn::Csrr { rd, idx })
    }

    /// Writes a CSR.
    pub fn csrw(&mut self, rs1: Reg, idx: u16) -> &mut Self {
        self.raw(Insn::Csrw { rs1, idx })
    }

    /// Emits `halt code`.
    pub fn halt(&mut self, code: u16) -> &mut Self {
        self.raw(Insn::Halt { code })
    }

    /// Emits `wfi`.
    pub fn wfi(&mut self) -> &mut Self {
        self.raw(Insn::Wfi)
    }

    /// Emits `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.raw(Insn::Nop)
    }

    /// Pushes `reg` onto the stack.
    pub fn push_reg(&mut self, reg: Reg) -> &mut Self {
        self.addi(Reg::SP, Reg::SP, -4);
        self.sw(reg, Reg::SP, 0)
    }

    /// Pops the top of the stack into `reg`.
    pub fn pop_reg(&mut self, reg: Reg) -> &mut Self {
        self.lw(reg, Reg::SP, 0);
        self.addi(Reg::SP, Reg::SP, 4)
    }

    /// Standard function prologue: saves `lr` and the given callee-saved
    /// registers.
    pub fn prologue(&mut self, saved: &[Reg]) -> &mut Self {
        let frame = 4 * (saved.len() as i32 + 1);
        self.addi(Reg::SP, Reg::SP, -frame);
        self.sw(Reg::LR, Reg::SP, frame - 4);
        for (i, reg) in saved.iter().enumerate() {
            self.sw(*reg, Reg::SP, (i as i32) * 4);
        }
        self
    }

    /// Standard function epilogue matching [`Asm::prologue`]; ends with `ret`.
    pub fn epilogue(&mut self, saved: &[Reg]) -> &mut Self {
        let frame = 4 * (saved.len() as i32 + 1);
        for (i, reg) in saved.iter().enumerate() {
            self.lw(*reg, Reg::SP, (i as i32) * 4);
        }
        self.lw(Reg::LR, Reg::SP, frame - 4);
        self.addi(Reg::SP, Reg::SP, frame);
        self.ret()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_expected_items() {
        let mut asm = Asm::new();
        asm.func("f").li(Reg::R1, 5).call("g").ret();
        let items = asm.items();
        assert_eq!(items.len(), 4);
        assert!(matches!(&items[0], TextItem::Func(n) if n == "f"));
        assert!(matches!(&items[1], TextItem::Insn(AInsn::Li { value: 5, .. })));
        assert!(matches!(&items[2], TextItem::Insn(AInsn::Call { .. })));
    }

    #[test]
    fn prologue_epilogue_are_balanced() {
        let mut asm = Asm::new();
        asm.prologue(&[Reg::R7, Reg::R8]);
        asm.epilogue(&[Reg::R7, Reg::R8]);
        // 1 sp-adjust + 3 saves, 2 restores + 1 lr restore + 1 sp-adjust + ret
        assert_eq!(asm.items().len(), 4 + 5);
    }

    #[test]
    fn append_concatenates() {
        let mut a = Asm::new();
        a.nop();
        let mut b = Asm::new();
        b.halt(0);
        a.append(b);
        assert_eq!(a.items().len(), 2);
    }
}
