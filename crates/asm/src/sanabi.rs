//! The sanitizer hypercall ABI shared between compile-time instrumentation
//! and the EMBSAN runtime.
//!
//! Firmware built with the EMBSAN-C pass is linked against a *dummy
//! sanitizer library* in which each sanitizer API is one trapping `hyper`
//! instruction (§3.2 of the paper). The hypercall numbers and argument
//! conventions below are that library's contract:
//!
//! - **Access checks** (`CHECK_*`): the faulting-candidate address is passed
//!   in the dedicated instrumentation scratch register
//!   [`Reg::SCRATCH`](embsan_emu::isa::Reg::SCRATCH) (`r12`), because check
//!   calls use the lightweight `call_via r11` convention that preserves the
//!   surrounding function's argument registers.
//! - **State maintenance** (`ALLOC`, `FREE`, `REGISTER_GLOBAL`, `READY`):
//!   arguments are passed in the *architecture profile's hypercall argument
//!   registers* ([`ArchProfile::hypercall`](embsan_emu::profile::ArchProfile)),
//!   which differ per platform — the dummy library is generated per profile,
//!   and the EMBSAN runtime reconstructs arguments per the platform spec.

/// Hypercall numbers of the dummy sanitizer library.
pub mod hyper {
    /// 1-byte load check; address in `r12`.
    pub const CHECK_LOAD1: u32 = 0x10;
    /// 2-byte load check; address in `r12`.
    pub const CHECK_LOAD2: u32 = 0x11;
    /// 4-byte load check; address in `r12`.
    pub const CHECK_LOAD4: u32 = 0x12;
    /// 1-byte store check; address in `r12`.
    pub const CHECK_STORE1: u32 = 0x14;
    /// 2-byte store check; address in `r12`.
    pub const CHECK_STORE2: u32 = 0x15;
    /// 4-byte store check; address in `r12`.
    pub const CHECK_STORE4: u32 = 0x16;
    /// Atomic RMW check (4 bytes); address in `r12`.
    pub const CHECK_ATOMIC4: u32 = 0x17;

    /// Heap allocation: `args = (addr, size)`.
    pub const ALLOC: u32 = 0x20;
    /// Heap free: `args = (addr,)`.
    pub const FREE: u32 = 0x21;
    /// Global registration: `args = (addr, size, redzone)`.
    pub const REGISTER_GLOBAL: u32 = 0x22;
    /// System reached the ready-to-run state.
    pub const READY: u32 = 0x23;

    /// Decodes a `CHECK_*` number into `(size, is_write)`.
    pub fn decode_check(nr: u32) -> Option<(u8, bool)> {
        match nr {
            CHECK_LOAD1 => Some((1, false)),
            CHECK_LOAD2 => Some((2, false)),
            CHECK_LOAD4 => Some((4, false)),
            CHECK_STORE1 => Some((1, true)),
            CHECK_STORE2 => Some((2, true)),
            CHECK_STORE4 => Some((4, true)),
            CHECK_ATOMIC4 => Some((4, true)),
            _ => None,
        }
    }
}

/// Names of the dummy sanitizer library's functions, in a stable order.
///
/// The EMBSAN-C pass emits calls to these; the platform prober looks them up
/// in the symbol table when deriving the platform spec.
pub const STUB_NAMES: [&str; 7] = [
    "__san_load1",
    "__san_load2",
    "__san_load4",
    "__san_store1",
    "__san_store2",
    "__san_store4",
    "__san_atomic4",
];

/// Returns the stub function name for an access of `size` bytes.
///
/// # Panics
///
/// Panics if `size` is not 1, 2 or 4.
pub fn stub_name(size: u8, is_write: bool, atomic: bool) -> &'static str {
    if atomic {
        return "__san_atomic4";
    }
    match (size, is_write) {
        (1, false) => "__san_load1",
        (2, false) => "__san_load2",
        (4, false) => "__san_load4",
        (1, true) => "__san_store1",
        (2, true) => "__san_store2",
        (4, true) => "__san_store4",
        _ => panic!("unsupported access size {size}"),
    }
}

/// The hypercall number for an access check stub.
pub fn check_nr(size: u8, is_write: bool, atomic: bool) -> u32 {
    if atomic {
        return hyper::CHECK_ATOMIC4;
    }
    match (size, is_write) {
        (1, false) => hyper::CHECK_LOAD1,
        (2, false) => hyper::CHECK_LOAD2,
        (4, false) => hyper::CHECK_LOAD4,
        (1, true) => hyper::CHECK_STORE1,
        (2, true) => hyper::CHECK_STORE2,
        (4, true) => hyper::CHECK_STORE4,
        _ => panic!("unsupported access size {size}"),
    }
}

/// Names of the state-maintenance library functions.
pub mod stubs {
    /// `__san_alloc(addr, size)` — guest allocators call this after carving a
    /// chunk.
    pub const ALLOC: &str = "__san_alloc";
    /// `__san_free(addr)` — guest allocators call this before releasing.
    pub const FREE: &str = "__san_free";
    /// `__san_global(addr, size, redzone)` — boot-time global registration.
    pub const GLOBAL: &str = "__san_global";
    /// `__san_ready()` — marks the ready-to-run point.
    pub const READY: &str = "__san_ready";
    /// `__san_register_globals()` — generated registration sequence.
    pub const REGISTER_GLOBALS: &str = "__san_register_globals";
}

/// Default redzone size in bytes around sanitized globals (matches KASAN's
/// minimum global redzone granularity).
pub const GLOBAL_REDZONE: u32 = 32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_nr_and_decode_are_inverse() {
        for &(size, wr, at) in &[
            (1u8, false, false),
            (2, false, false),
            (4, false, false),
            (1, true, false),
            (2, true, false),
            (4, true, false),
            (4, true, true),
        ] {
            let nr = check_nr(size, wr, at);
            let (dsize, dwrite) = hyper::decode_check(nr).unwrap();
            assert_eq!(dsize, size);
            // Atomics decode as writes.
            assert_eq!(dwrite, wr || at);
        }
        assert_eq!(hyper::decode_check(hyper::ALLOC), None);
    }

    #[test]
    fn stub_names_cover_all_sizes() {
        assert_eq!(stub_name(1, false, false), "__san_load1");
        assert_eq!(stub_name(4, true, false), "__san_store4");
        assert_eq!(stub_name(4, true, true), "__san_atomic4");
        assert!(STUB_NAMES.contains(&stub_name(2, true, false)));
    }
}
