//! Linker: address assignment, symbol resolution, pseudo-expansion, and
//! image assembly.
//!
//! Layout decisions mirror a typical embedded firmware link:
//!
//! - text at the ROM base,
//! - globals at the RAM base (with redzones when the program was built by
//!   the EMBSAN-C pass),
//! - a heap region after the globals (`__heap_start`/`__heap_end`),
//! - stacks growing down from the top of RAM (`__stack_top`).

use std::collections::BTreeMap;

use embsan_emu::isa::{Insn, Reg};
use embsan_emu::profile::{Arch, ArchProfile};

use crate::image::{FirmwareImage, GlobalObject, InstrMode, Symbol, SymbolKind};
use crate::ir::{AInsn, Cond, Program, TextItem};
use crate::sanabi::GLOBAL_REDZONE;

/// Linker configuration.
#[derive(Debug, Clone)]
pub struct LinkOptions {
    /// Target architecture (selects the platform profile).
    pub arch: Arch,
    /// Total RAM size in bytes (default 4 MiB).
    pub ram_size: u32,
    /// Instrumentation mode recorded in the image header.
    pub instr: InstrMode,
}

impl LinkOptions {
    /// Default options for `arch`.
    pub fn new(arch: Arch) -> LinkOptions {
        LinkOptions { arch, ram_size: 4 * 1024 * 1024, instr: InstrMode::None }
    }
}

/// Linker errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// The same symbol was defined twice.
    DuplicateSymbol(String),
    /// A referenced symbol has no definition.
    UndefinedSymbol(String),
    /// A branch target is beyond the ±8 KiB branch range.
    BranchOutOfRange {
        /// Target label.
        target: String,
        /// The required byte offset.
        offset: i64,
    },
    /// A jump/call target is beyond the ±2 MiB range.
    JumpOutOfRange {
        /// Target label.
        target: String,
        /// The required byte offset.
        offset: i64,
    },
    /// An `li` constant does not fit in 32 bits.
    ValueOutOfRange(i64),
    /// Globals plus heap do not fit in RAM (leaving stack headroom).
    RamOverflow {
        /// Bytes required.
        required: u32,
        /// Bytes available.
        available: u32,
    },
    /// The entry (or ready) symbol is not defined.
    NoEntry(String),
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::DuplicateSymbol(name) => write!(f, "duplicate symbol `{name}`"),
            LinkError::UndefinedSymbol(name) => write!(f, "undefined symbol `{name}`"),
            LinkError::BranchOutOfRange { target, offset } => {
                write!(f, "branch to `{target}` out of range ({offset} bytes)")
            }
            LinkError::JumpOutOfRange { target, offset } => {
                write!(f, "jump to `{target}` out of range ({offset} bytes)")
            }
            LinkError::ValueOutOfRange(v) => write!(f, "constant {v} does not fit in 32 bits"),
            LinkError::RamOverflow { required, available } => {
                write!(f, "RAM overflow: need {required} bytes, have {available}")
            }
            LinkError::NoEntry(name) => write!(f, "entry symbol `{name}` is not defined"),
        }
    }
}

impl std::error::Error for LinkError {}

/// Minimum RAM headroom reserved above the heap for stacks.
const STACK_HEADROOM: u32 = 64 * 1024;

fn align_up(value: u32, align: u32) -> u32 {
    debug_assert!(align.is_power_of_two());
    (value + align - 1) & !(align - 1)
}

/// Links a program into a firmware image.
///
/// # Errors
///
/// See [`LinkError`] for the failure modes: undefined/duplicate symbols,
/// out-of-range branches or constants, RAM overflow, or a missing entry.
pub fn link(program: &Program, options: &LinkOptions) -> Result<FirmwareImage, LinkError> {
    let profile = ArchProfile::for_arch(options.arch);

    // Pass 1: assign text addresses to every label.
    let mut labels: BTreeMap<String, u32> = BTreeMap::new();
    let mut funcs: Vec<(String, u32)> = Vec::new();
    let mut addr = profile.rom_base;
    for item in &program.text {
        match item {
            TextItem::Func(name) | TextItem::Label(name) => {
                if labels.insert(name.clone(), addr).is_some() {
                    return Err(LinkError::DuplicateSymbol(name.clone()));
                }
                if matches!(item, TextItem::Func(_)) {
                    funcs.push((name.clone(), addr));
                }
            }
            TextItem::Insn(insn) => addr += 4 * insn.expansion_len(),
        }
    }
    let text_end = addr;

    // Global layout in RAM.
    let mut globals_out: Vec<GlobalObject> = Vec::new();
    let mut data_init: Vec<(u32, Vec<u8>)> = Vec::new();
    let mut objects: Vec<Symbol> = Vec::new();
    let mut cursor = profile.ram_base;
    for g in &program.globals {
        let redzoned = program.redzones && g.sanitize;
        let align = if redzoned { g.align.max(8) } else { g.align.max(4) };
        cursor = align_up(cursor, align);
        let (rz_before, rz_after) = if redzoned {
            let padded = align_up(g.size.max(1), 8);
            (GLOBAL_REDZONE, GLOBAL_REDZONE + (padded - g.size))
        } else {
            (0, 0)
        };
        cursor += rz_before;
        let g_addr = cursor;
        cursor += g.size + rz_after;
        if labels.insert(g.name.clone(), g_addr).is_some() {
            return Err(LinkError::DuplicateSymbol(g.name.clone()));
        }
        objects.push(Symbol {
            name: g.name.clone(),
            addr: g_addr,
            size: g.size,
            kind: SymbolKind::Object,
        });
        if g.sanitize {
            globals_out.push(GlobalObject {
                name: g.name.clone(),
                addr: g_addr,
                size: g.size,
                redzone_before: rz_before,
                redzone_after: rz_after,
            });
        }
        if let Some(init) = &g.init {
            let mut bytes = init.clone();
            bytes.resize(g.size as usize, 0);
            data_init.push((g_addr, bytes));
        }
    }

    // Heap and stack bounds.
    let heap_start = align_up(cursor, 4096);
    let heap_end = heap_start + program.heap_size;
    let ram_end = profile.ram_base + options.ram_size;
    if heap_end + STACK_HEADROOM > ram_end {
        return Err(LinkError::RamOverflow {
            required: heap_end + STACK_HEADROOM - profile.ram_base,
            available: options.ram_size,
        });
    }
    let synthetic = [
        ("__heap_start", heap_start),
        ("__heap_end", heap_end),
        ("__stack_top", ram_end),
        ("__ram_start", profile.ram_base),
        ("__ram_end", ram_end),
        ("__text_end", text_end),
    ];
    for (name, value) in synthetic {
        if labels.insert(name.to_string(), value).is_some() {
            return Err(LinkError::DuplicateSymbol(name.to_string()));
        }
    }

    // Pass 2: encode.
    let resolve = |name: &str| -> Result<u32, LinkError> {
        labels.get(name).copied().ok_or_else(|| LinkError::UndefinedSymbol(name.to_string()))
    };
    let mut words: Vec<Insn> = Vec::new();
    let mut pc = profile.rom_base;
    for item in &program.text {
        let insn = match item {
            TextItem::Func(_) | TextItem::Label(_) => continue,
            TextItem::Insn(insn) => insn,
        };
        match insn {
            AInsn::Raw(raw) => words.push(*raw),
            AInsn::Li { rd, value } => {
                if *value > i64::from(u32::MAX) || *value < i64::from(i32::MIN) {
                    return Err(LinkError::ValueOutOfRange(*value));
                }
                emit_li(&mut words, *rd, *value as u32, (-2048..2048).contains(value));
            }
            AInsn::La { rd, sym, offset } => {
                let target = resolve(sym)?.wrapping_add(*offset as u32);
                emit_li(&mut words, *rd, target, false);
            }
            AInsn::Branch { cond, rs1, rs2, target } => {
                let t = resolve(target)?;
                let offset = i64::from(t) - i64::from(pc);
                if !(-8192..8192).contains(&offset) {
                    return Err(LinkError::BranchOutOfRange { target: target.clone(), offset });
                }
                let offset = offset as i32;
                let (rs1, rs2) = (*rs1, *rs2);
                words.push(match cond {
                    Cond::Eq => Insn::Beq { rs1, rs2, offset },
                    Cond::Ne => Insn::Bne { rs1, rs2, offset },
                    Cond::Lt => Insn::Blt { rs1, rs2, offset },
                    Cond::Ltu => Insn::Bltu { rs1, rs2, offset },
                    Cond::Ge => Insn::Bge { rs1, rs2, offset },
                    Cond::Geu => Insn::Bgeu { rs1, rs2, offset },
                });
            }
            AInsn::Jump { target } | AInsn::Call { target } | AInsn::CallVia { target, .. } => {
                let t = resolve(target)?;
                let offset = i64::from(t) - i64::from(pc);
                if !(-(1 << 21)..(1 << 21)).contains(&offset) {
                    return Err(LinkError::JumpOutOfRange { target: target.clone(), offset });
                }
                let rd = match insn {
                    AInsn::Jump { .. } => Reg::ZERO,
                    AInsn::Call { .. } => Reg::LR,
                    AInsn::CallVia { link, .. } => *link,
                    _ => unreachable!(),
                };
                words.push(Insn::Jal { rd, offset: offset as i32 });
            }
        }
        pc += 4 * insn.expansion_len();
    }
    debug_assert_eq!(pc, text_end);

    let mut text = Vec::with_capacity(words.len() * 4);
    for word in &words {
        text.extend_from_slice(&word.encode().to_bytes(profile.endian));
    }

    // Function sizes: span to the next function (or text end).
    let mut symbols: Vec<Symbol> = Vec::new();
    for (i, (name, f_addr)) in funcs.iter().enumerate() {
        let end = funcs.get(i + 1).map_or(text_end, |(_, next)| *next);
        symbols.push(Symbol {
            name: name.clone(),
            addr: *f_addr,
            size: end - f_addr,
            kind: SymbolKind::Func,
        });
    }
    symbols.extend(objects);
    for (name, value) in synthetic {
        symbols.push(Symbol {
            name: name.to_string(),
            addr: value,
            size: 0,
            kind: SymbolKind::Synthetic,
        });
    }

    let entry = resolve(&program.entry).map_err(|_| LinkError::NoEntry(program.entry.clone()))?;
    let ready = match &program.ready {
        Some(name) => Some(resolve(name).map_err(|_| LinkError::NoEntry(name.clone()))?),
        None => None,
    };

    Ok(FirmwareImage {
        arch: options.arch,
        instr: options.instr,
        entry,
        rom_base: profile.rom_base,
        text,
        ram_base: profile.ram_base,
        ram_size: options.ram_size,
        data_init,
        ready,
        symbols,
        globals: globals_out,
    })
}

/// Emits the expansion of `li`/`la`: one `addi` when `small`, else
/// `lui` + `ori`.
fn emit_li(words: &mut Vec<Insn>, rd: Reg, value: u32, small: bool) {
    if small {
        words.push(Insn::Addi { rd, rs1: Reg::ZERO, imm: value as i32 });
    } else {
        words.push(Insn::Lui { rd, imm: value & 0xFFFF_F000 });
        words.push(Insn::Ori { rd, rs1: rd, imm: (value & 0xFFF) as i32 });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Asm;
    use crate::ir::GlobalDef;
    use embsan_emu::hook::NullHook;
    use embsan_emu::machine::RunExit;

    fn simple_program() -> Program {
        let mut p = Program::new();
        let mut asm = Asm::new();
        asm.func("main");
        asm.la(Reg::A0, "counter");
        asm.li(Reg::A1, 5);
        asm.label("main.loop");
        asm.beq(Reg::A1, Reg::R0, "main.done");
        asm.lw(Reg::A2, Reg::A0, 0);
        asm.addi(Reg::A2, Reg::A2, 1);
        asm.sw(Reg::A2, Reg::A0, 0);
        asm.addi(Reg::A1, Reg::A1, -1);
        asm.jump("main.loop");
        asm.label("main.done");
        asm.halt(0);
        p.text = asm.into_items();
        p.globals.push(GlobalDef::zeroed("counter", 4));
        p
    }

    #[test]
    fn linked_program_executes() {
        for arch in Arch::ALL {
            let image = link(&simple_program(), &LinkOptions::new(arch)).unwrap();
            let mut machine = image.boot_machine(1).unwrap();
            let exit = machine.run(&mut NullHook, 10_000).unwrap();
            assert_eq!(exit, RunExit::Halted { code: 0 }, "arch {arch:?}");
            let counter = image.symbol("counter").unwrap();
            assert_eq!(machine.read_mem(counter, 4).unwrap(), 5, "arch {arch:?}");
        }
    }

    #[test]
    fn data_init_is_applied() {
        let mut p = Program::new();
        let mut asm = Asm::new();
        asm.func("main");
        asm.la(Reg::A0, "msg");
        asm.lbu(Reg::A1, Reg::A0, 1);
        asm.halt(0);
        p.text = asm.into_items();
        p.globals.push(GlobalDef::with_init("msg", b"hey".to_vec()));
        let image = link(&p, &LinkOptions::new(Arch::Mipsv)).unwrap();
        let mut machine = image.boot_machine(1).unwrap();
        machine.run(&mut NullHook, 100).unwrap();
        assert_eq!(machine.cpu(0).regs.read(Reg::A1), u32::from(b'e'));
    }

    #[test]
    fn redzones_only_when_enabled() {
        let mut p = simple_program();
        let plain = link(&p, &LinkOptions::new(Arch::Armv)).unwrap();
        assert_eq!(plain.globals[0].redzone_before, 0);

        p.redzones = true;
        let zoned = link(&p, &LinkOptions::new(Arch::Armv)).unwrap();
        assert_eq!(zoned.globals[0].redzone_before, GLOBAL_REDZONE);
        assert!(zoned.globals[0].redzone_after >= GLOBAL_REDZONE);
        // The object itself moved up by the leading redzone.
        assert_eq!(zoned.globals[0].addr, plain.globals[0].addr + GLOBAL_REDZONE);
    }

    #[test]
    fn synthetic_symbols_are_ordered() {
        let image = link(&simple_program(), &LinkOptions::new(Arch::Armv)).unwrap();
        let heap_start = image.symbol("__heap_start").unwrap();
        let heap_end = image.symbol("__heap_end").unwrap();
        let stack_top = image.symbol("__stack_top").unwrap();
        let counter = image.symbol("counter").unwrap();
        assert!(counter < heap_start);
        assert!(heap_start < heap_end);
        assert!(heap_end < stack_top);
        assert_eq!(heap_start % 4096, 0);
    }

    #[test]
    fn function_sizes_span_to_next() {
        let mut p = Program::new();
        let mut asm = Asm::new();
        asm.func("main").nop().nop().halt(0);
        asm.func("second").ret();
        p.text = asm.into_items();
        let image = link(&p, &LinkOptions::new(Arch::Armv)).unwrap();
        let main = image.symbols.iter().find(|s| s.name == "main").unwrap();
        let second = image.symbols.iter().find(|s| s.name == "second").unwrap();
        assert_eq!(main.size, 12);
        assert_eq!(second.addr, main.addr + 12);
        assert_eq!(second.size, 4);
    }

    #[test]
    fn errors_are_reported() {
        // Undefined symbol.
        let mut p = Program::new();
        let mut asm = Asm::new();
        asm.func("main").call("nowhere").halt(0);
        p.text = asm.into_items();
        assert_eq!(
            link(&p, &LinkOptions::new(Arch::Armv)).unwrap_err(),
            LinkError::UndefinedSymbol("nowhere".into())
        );

        // Duplicate symbol.
        let mut p = Program::new();
        let mut asm = Asm::new();
        asm.func("main").halt(0);
        asm.func("main");
        p.text = asm.into_items();
        assert!(matches!(
            link(&p, &LinkOptions::new(Arch::Armv)),
            Err(LinkError::DuplicateSymbol(_))
        ));

        // Missing entry.
        let mut p = Program::new();
        p.entry = "absent".into();
        let mut asm = Asm::new();
        asm.func("main").halt(0);
        p.text = asm.into_items();
        assert!(matches!(link(&p, &LinkOptions::new(Arch::Armv)), Err(LinkError::NoEntry(_))));

        // Value out of range.
        let mut p = Program::new();
        let mut asm = Asm::new();
        asm.func("main").li(Reg::R1, 1i64 << 40).halt(0);
        p.text = asm.into_items();
        assert!(matches!(
            link(&p, &LinkOptions::new(Arch::Armv)),
            Err(LinkError::ValueOutOfRange(_))
        ));

        // RAM overflow.
        let mut p = simple_program();
        p.heap_size = 16 * 1024 * 1024;
        assert!(matches!(
            link(&p, &LinkOptions::new(Arch::Armv)),
            Err(LinkError::RamOverflow { .. })
        ));
    }

    #[test]
    fn branch_out_of_range_detected() {
        let mut p = Program::new();
        let mut asm = Asm::new();
        asm.func("main");
        asm.beq(Reg::R0, Reg::R0, "far");
        for _ in 0..3000 {
            asm.nop();
        }
        asm.label("far");
        asm.halt(0);
        p.text = asm.into_items();
        assert!(matches!(
            link(&p, &LinkOptions::new(Arch::Armv)),
            Err(LinkError::BranchOutOfRange { .. })
        ));
    }

    #[test]
    fn image_roundtrips_through_bytes() {
        let image = link(&simple_program(), &LinkOptions::new(Arch::X86v)).unwrap();
        let parsed = FirmwareImage::parse(&image.to_bytes()).unwrap();
        assert_eq!(parsed, image);
    }
}
