//! Text assembly frontend.
//!
//! A GNU-as-flavoured syntax for EV32. Top-level labels declare functions;
//! labels starting with `.` are function-local (they are name-mangled to
//! `<function>.<label>`). Directives:
//!
//! ```text
//! .entry main              ; entry point (default: main)
//! .ready kernel_ready      ; ready-to-run symbol
//! .heap 65536              ; heap size in bytes
//! .no_instrument boot      ; exempt a function from instrumentation
//! .global buf, 64          ; sanitized zeroed global, 64 bytes
//! .global msg, "hello"     ; sanitized global with string initializer
//! .data raw, "x"           ; unsanitized data blob
//! ```
//!
//! # Example
//!
//! ```
//! let src = r#"
//!     .entry main
//!     .global counter, 4
//! main:
//!     la a0, counter
//!     li a1, 3
//! .loop:
//!     beq a1, r0, .done
//!     lw a2, [a0]
//!     addi a2, a2, 1
//!     sw a2, [a0]
//!     addi a1, a1, -1
//!     j .loop
//! .done:
//!     halt 0
//! "#;
//! let program = embsan_asm::assemble(src)?;
//! assert!(program.defines_function("main"));
//! # Ok::<(), embsan_asm::AsmError>(())
//! ```

use embsan_emu::isa::{Insn, Reg};

use crate::ir::{AInsn, Cond, GlobalDef, Program, TextItem};

/// An assembly syntax error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError { line, message: message.into() }
}

/// Assembles text source into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] pointing at the first malformed line.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut program = Program::new();
    let mut current_fn = String::new();

    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('.') {
            // Local label or directive?
            if let Some(name) = line.strip_suffix(':') {
                if current_fn.is_empty() {
                    return Err(err(line_no, "local label outside a function"));
                }
                program.text.push(TextItem::Label(format!("{current_fn}{name}")));
                continue;
            }
            parse_directive(&mut program, rest, line_no)?;
            continue;
        }
        if let Some(name) = line.strip_suffix(':') {
            let name = name.trim();
            if name.is_empty() || name.contains(char::is_whitespace) {
                return Err(err(line_no, "malformed label"));
            }
            current_fn = name.to_string();
            program.text.push(TextItem::Func(name.to_string()));
            continue;
        }
        let insn = parse_insn(line, &current_fn, line_no)?;
        program.text.push(TextItem::Insn(insn));
    }
    Ok(program)
}

fn strip_comment(line: &str) -> &str {
    // Comments start with ';' or '#', but '#' inside a string stays.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ';' | '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_directive(program: &mut Program, rest: &str, line: usize) -> Result<(), AsmError> {
    let (name, args) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
    let args = args.trim();
    match name {
        "entry" => program.entry = args.to_string(),
        "ready" => program.ready = Some(args.to_string()),
        "heap" => {
            program.heap_size =
                parse_int(args, line)?.try_into().map_err(|_| err(line, "bad heap size"))?;
        }
        "no_instrument" => {
            program.no_instrument.insert(args.to_string());
        }
        "global" | "data" => {
            let (sym, init) = args
                .split_once(',')
                .ok_or_else(|| err(line, format!("`.{name}` needs `name, size|init`")))?;
            let sym = sym.trim();
            let init = init.trim();
            let sanitize = name == "global";
            let def = if let Some(stripped) = init.strip_prefix('"') {
                let text =
                    stripped.strip_suffix('"').ok_or_else(|| err(line, "unterminated string"))?;
                let bytes = unescape(text, line)?;
                GlobalDef {
                    name: sym.to_string(),
                    size: bytes.len() as u32,
                    init: Some(bytes),
                    align: 4,
                    sanitize,
                }
            } else if let Some(list) = init.strip_prefix('[') {
                let list =
                    list.strip_suffix(']').ok_or_else(|| err(line, "unterminated byte list"))?;
                let mut bytes = Vec::new();
                for piece in list.split(',') {
                    let v = parse_int(piece.trim(), line)?;
                    bytes.push(u8::try_from(v).map_err(|_| err(line, "byte value out of range"))?);
                }
                GlobalDef {
                    name: sym.to_string(),
                    size: bytes.len() as u32,
                    init: Some(bytes),
                    align: 4,
                    sanitize,
                }
            } else {
                let size =
                    parse_int(init, line)?.try_into().map_err(|_| err(line, "bad global size"))?;
                GlobalDef { name: sym.to_string(), size, init: None, align: 4, sanitize }
            };
            program.globals.push(def);
        }
        _ => return Err(err(line, format!("unknown directive `.{name}`"))),
    }
    Ok(())
}

fn unescape(text: &str, line: usize) -> Result<Vec<u8>, AsmError> {
    let mut out = Vec::new();
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            let mut buf = [0u8; 4];
            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
            continue;
        }
        match chars.next() {
            Some('n') => out.push(b'\n'),
            Some('t') => out.push(b'\t'),
            Some('0') => out.push(0),
            Some('\\') => out.push(b'\\'),
            Some('"') => out.push(b'"'),
            other => return Err(err(line, format!("bad escape `\\{other:?}`"))),
        }
    }
    Ok(out)
}

fn parse_int(text: &str, line: usize) -> Result<i64, AsmError> {
    let text = text.trim();
    let (negative, body) = match text.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, text),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| err(line, format!("bad integer `{text}`")))?;
    Ok(if negative { -value } else { value })
}

fn parse_reg(text: &str, line: usize) -> Result<Reg, AsmError> {
    Reg::parse(text.trim()).ok_or_else(|| err(line, format!("unknown register `{text}`")))
}

/// A branch/jump target that is a numeric offset rather than a label.
fn is_numeric(text: &str) -> bool {
    let body = text.strip_prefix(['+', '-']).unwrap_or(text);
    body.starts_with(|c: char| c.is_ascii_digit())
}

/// Resolves a possibly-local label reference.
fn label_ref(text: &str, current_fn: &str) -> String {
    if let Some(local) = text.strip_prefix('.') {
        format!("{current_fn}.{local}")
    } else {
        text.to_string()
    }
}

/// Parses `[reg]`, `[reg+off]` or `[reg-off]`.
fn parse_mem(text: &str, line: usize) -> Result<(Reg, i32), AsmError> {
    let inner = text
        .trim()
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected `[reg+off]`, got `{text}`")))?;
    if let Some(pos) = inner.rfind(['+', '-']) {
        if pos > 0 {
            let reg = parse_reg(&inner[..pos], line)?;
            let off = parse_int(&inner[pos..], line)?;
            let off = i32::try_from(off).map_err(|_| err(line, "offset out of range"))?;
            return Ok((reg, off));
        }
    }
    Ok((parse_reg(inner, line)?, 0))
}

fn parse_insn(line_text: &str, current_fn: &str, line: usize) -> Result<AInsn, AsmError> {
    let (mnemonic, rest) = line_text.split_once(char::is_whitespace).unwrap_or((line_text, ""));
    let ops: Vec<&str> = if rest.trim().is_empty() { Vec::new() } else { split_operands(rest) };
    let want = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(line, format!("`{mnemonic}` expects {n} operands, got {}", ops.len())))
        }
    };

    macro_rules! rrr {
        ($variant:ident) => {{
            want(3)?;
            AInsn::Raw(Insn::$variant {
                rd: parse_reg(ops[0], line)?,
                rs1: parse_reg(ops[1], line)?,
                rs2: parse_reg(ops[2], line)?,
            })
        }};
    }
    macro_rules! rri {
        ($variant:ident) => {{
            want(3)?;
            AInsn::Raw(Insn::$variant {
                rd: parse_reg(ops[0], line)?,
                rs1: parse_reg(ops[1], line)?,
                imm: parse_int(ops[2], line)? as i32,
            })
        }};
    }
    macro_rules! shift {
        ($variant:ident) => {{
            want(3)?;
            AInsn::Raw(Insn::$variant {
                rd: parse_reg(ops[0], line)?,
                rs1: parse_reg(ops[1], line)?,
                shamt: parse_int(ops[2], line)? as u8,
            })
        }};
    }
    macro_rules! load {
        ($variant:ident) => {{
            want(2)?;
            let (rs1, imm) = parse_mem(ops[1], line)?;
            AInsn::Raw(Insn::$variant { rd: parse_reg(ops[0], line)?, rs1, imm })
        }};
    }
    macro_rules! store {
        ($variant:ident) => {{
            want(2)?;
            let (rs1, imm) = parse_mem(ops[1], line)?;
            AInsn::Raw(Insn::$variant { rs2: parse_reg(ops[0], line)?, rs1, imm })
        }};
    }
    // Branches take either a label or a numeric byte offset (`+8`, `-12`)
    // — the latter is what the disassembler prints, so `disasm → assemble`
    // round-trips without symbolizing targets.
    macro_rules! branch {
        ($cond:ident, $variant:ident) => {{
            want(3)?;
            let rs1 = parse_reg(ops[0], line)?;
            let rs2 = parse_reg(ops[1], line)?;
            let target = ops[2];
            if is_numeric(target) {
                AInsn::Raw(Insn::$variant { rs1, rs2, offset: parse_int(target, line)? as i32 })
            } else {
                AInsn::Branch { cond: Cond::$cond, rs1, rs2, target: label_ref(target, current_fn) }
            }
        }};
    }

    let insn = match mnemonic {
        "add" => rrr!(Add),
        "sub" => rrr!(Sub),
        "and" => rrr!(And),
        "or" => rrr!(Or),
        "xor" => rrr!(Xor),
        "sll" => rrr!(Sll),
        "srl" => rrr!(Srl),
        "sra" => rrr!(Sra),
        "mul" => rrr!(Mul),
        "mulh" => rrr!(Mulh),
        "divu" => rrr!(Divu),
        "remu" => rrr!(Remu),
        "slt" => rrr!(Slt),
        "sltu" => rrr!(Sltu),
        "addi" => rri!(Addi),
        "andi" => rri!(Andi),
        "ori" => rri!(Ori),
        "xori" => rri!(Xori),
        "slti" => rri!(Slti),
        "sltiu" => rri!(Sltiu),
        "slli" => shift!(Slli),
        "srli" => shift!(Srli),
        "srai" => shift!(Srai),
        "lb" => load!(Lb),
        "lbu" => load!(Lbu),
        "lh" => load!(Lh),
        "lhu" => load!(Lhu),
        "lw" => load!(Lw),
        "sb" => store!(Sb),
        "sh" => store!(Sh),
        "sw" => store!(Sw),
        "amoadd.w" => {
            want(3)?;
            let (rs1, off) = parse_mem(ops[1], line)?;
            if off != 0 {
                return Err(err(line, "atomic operands take no offset"));
            }
            AInsn::Raw(Insn::AmoAddW {
                rd: parse_reg(ops[0], line)?,
                rs1,
                rs2: parse_reg(ops[2], line)?,
            })
        }
        "amoswp.w" => {
            want(3)?;
            let (rs1, off) = parse_mem(ops[1], line)?;
            if off != 0 {
                return Err(err(line, "atomic operands take no offset"));
            }
            AInsn::Raw(Insn::AmoSwpW {
                rd: parse_reg(ops[0], line)?,
                rs1,
                rs2: parse_reg(ops[2], line)?,
            })
        }
        "lui" => {
            want(2)?;
            AInsn::Raw(Insn::Lui {
                rd: parse_reg(ops[0], line)?,
                imm: parse_int(ops[1], line)? as u32,
            })
        }
        "auipc" => {
            want(2)?;
            AInsn::Raw(Insn::Auipc {
                rd: parse_reg(ops[0], line)?,
                imm: parse_int(ops[1], line)? as u32,
            })
        }
        "jal" => {
            want(2)?;
            AInsn::Raw(Insn::Jal {
                rd: parse_reg(ops[0], line)?,
                offset: parse_int(ops[1], line)? as i32,
            })
        }
        "beq" => branch!(Eq, Beq),
        "bne" => branch!(Ne, Bne),
        "blt" => branch!(Lt, Blt),
        "bltu" => branch!(Ltu, Bltu),
        "bge" => branch!(Ge, Bge),
        "bgeu" => branch!(Geu, Bgeu),
        "li" => {
            want(2)?;
            AInsn::Li { rd: parse_reg(ops[0], line)?, value: parse_int(ops[1], line)? }
        }
        "la" => {
            want(2)?;
            let target = ops[1];
            let (sym, offset) = match target.rfind('+') {
                Some(pos) if pos > 0 => {
                    (&target[..pos], parse_int(&target[pos + 1..], line)? as i32)
                }
                _ => (target, 0),
            };
            AInsn::La {
                rd: parse_reg(ops[0], line)?,
                sym: label_ref(sym.trim(), current_fn),
                offset,
            }
        }
        "j" => {
            want(1)?;
            AInsn::Jump { target: label_ref(ops[0], current_fn) }
        }
        "call" => {
            want(1)?;
            AInsn::Call { target: label_ref(ops[0], current_fn) }
        }
        "callvia" => {
            want(2)?;
            AInsn::CallVia { link: parse_reg(ops[0], line)?, target: label_ref(ops[1], current_fn) }
        }
        "callr" => {
            want(1)?;
            AInsn::Raw(Insn::Jalr { rd: Reg::LR, rs1: parse_reg(ops[0], line)?, imm: 0 })
        }
        "jalr" => {
            want(3)?;
            AInsn::Raw(Insn::Jalr {
                rd: parse_reg(ops[0], line)?,
                rs1: parse_reg(ops[1], line)?,
                imm: parse_int(ops[2], line)? as i32,
            })
        }
        "ret" => AInsn::Raw(Insn::Jalr { rd: Reg::ZERO, rs1: Reg::LR, imm: 0 }),
        "mv" => {
            want(2)?;
            AInsn::Raw(Insn::Addi {
                rd: parse_reg(ops[0], line)?,
                rs1: parse_reg(ops[1], line)?,
                imm: 0,
            })
        }
        "ecall" => {
            want(1)?;
            AInsn::Raw(Insn::Ecall { code: parse_int(ops[0], line)? as u16 })
        }
        "eret" => AInsn::Raw(Insn::Eret),
        "hyper" => {
            want(1)?;
            AInsn::Raw(Insn::Hyper { nr: parse_int(ops[0], line)? as u32 })
        }
        "csrr" => {
            want(2)?;
            AInsn::Raw(Insn::Csrr {
                rd: parse_reg(ops[0], line)?,
                idx: parse_int(ops[1], line)? as u16,
            })
        }
        "csrw" => {
            want(2)?;
            AInsn::Raw(Insn::Csrw {
                rs1: parse_reg(ops[0], line)?,
                idx: parse_int(ops[1], line)? as u16,
            })
        }
        "halt" => {
            want(1)?;
            AInsn::Raw(Insn::Halt { code: parse_int(ops[0], line)? as u16 })
        }
        "wfi" => AInsn::Raw(Insn::Wfi),
        "nop" => AInsn::Raw(Insn::Nop),
        "fence" => AInsn::Raw(Insn::Fence),
        "brk" => AInsn::Raw(Insn::Brk),
        other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
    };
    Ok(insn)
}

/// Splits an operand list on commas that are not inside brackets.
fn split_operands(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in text.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(text[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    let last = text[start..].trim();
    if !last.is_empty() {
        out.push(last);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{link, LinkOptions};
    use embsan_emu::hook::NullHook;
    use embsan_emu::machine::RunExit;
    use embsan_emu::profile::Arch;

    const COUNTER_SRC: &str = r#"
        ; simple counter kernel
        .entry main
        .ready main
        .heap 8192
        .global counter, 4
        .global msg, "ok\n"
    main:
        la a0, counter
        li a1, 3
    .loop:
        beq a1, r0, .done
        lw a2, [a0]
        addi a2, a2, 1
        sw a2, [a0]
        addi a1, a1, -1
        j .loop
    .done:
        halt 0
    "#;

    #[test]
    fn assembles_and_runs() {
        let program = assemble(COUNTER_SRC).unwrap();
        assert_eq!(program.heap_size, 8192);
        assert!(program.ready.is_some());
        let image = link(&program, &LinkOptions::new(Arch::Armv)).unwrap();
        let mut machine = image.boot_machine(1).unwrap();
        let exit = machine.run(&mut NullHook, 1000).unwrap();
        assert_eq!(exit, RunExit::Halted { code: 0 });
        let counter = image.symbol("counter").unwrap();
        assert_eq!(machine.read_mem(counter, 4).unwrap(), 3);
    }

    #[test]
    fn string_initializers_unescape() {
        let program = assemble(COUNTER_SRC).unwrap();
        let msg = program.globals.iter().find(|g| g.name == "msg").unwrap();
        assert_eq!(msg.init.as_deref(), Some(&b"ok\n"[..]));
    }

    #[test]
    fn local_labels_are_mangled_per_function() {
        let src = r#"
    f:
    .loop:
        j .loop
    g:
    .loop:
        j .loop
        "#;
        let program = assemble(src).unwrap();
        let labels: Vec<_> = program
            .text
            .iter()
            .filter_map(|i| match i {
                TextItem::Label(l) => Some(l.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(labels, vec!["f.loop", "g.loop"]);
        // Both functions link (no duplicate label error).
        let mut program = program;
        program.entry = "f".into();
        assert!(link(&program, &LinkOptions::new(Arch::Armv)).is_ok());
    }

    #[test]
    fn memory_operand_forms() {
        let p = assemble("f:\n lw r1, [r2]\n lw r1, [r2+8]\n lw r1, [r2-4]\n").unwrap();
        let imms: Vec<i32> = p
            .text
            .iter()
            .filter_map(|i| match i {
                TextItem::Insn(AInsn::Raw(Insn::Lw { imm, .. })) => Some(*imm),
                _ => None,
            })
            .collect();
        assert_eq!(imms, vec![0, 8, -4]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("f:\n bogus r1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));

        let e = assemble("f:\n add r1, r2\n").unwrap_err();
        assert!(e.message.contains("expects 3 operands"));

        let e = assemble(".loop:\n nop\n").unwrap_err();
        assert!(e.message.contains("outside a function"));

        let e = assemble("f:\n lw r99, [r1]\n").unwrap_err();
        assert!(e.message.contains("unknown register"));

        let e = assemble(".global x\n").unwrap_err();
        assert!(e.message.contains("needs"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("# header\nf:\n nop ; trailing\n\n  ; full line\n halt 0\n").unwrap();
        assert_eq!(p.code_words(), 2);
    }

    #[test]
    fn data_directive_is_unsanitized() {
        let p = assemble(".data blob, [1, 2, 0xFF]\nf:\n nop\n").unwrap();
        assert!(!p.globals[0].sanitize);
        assert_eq!(p.globals[0].init.as_deref(), Some(&[1u8, 2, 0xFF][..]));
    }
}
