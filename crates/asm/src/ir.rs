//! Assembly-level intermediate representation.
//!
//! A [`Program`] is the unit of firmware compilation: a text stream of
//! labeled instructions, a set of global data objects, and build metadata.
//! Instructions that need symbol resolution are represented by [`AInsn`]
//! pseudo-ops; everything else passes through as a raw [`Insn`].

use std::collections::BTreeSet;

use embsan_emu::isa::{Insn, Reg};

/// Branch condition of the [`AInsn::Branch`] pseudo-instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// `rs1 == rs2`
    Eq,
    /// `rs1 != rs2`
    Ne,
    /// signed `rs1 < rs2`
    Lt,
    /// unsigned `rs1 < rs2`
    Ltu,
    /// signed `rs1 >= rs2`
    Ge,
    /// unsigned `rs1 >= rs2`
    Geu,
}

/// An assembler instruction: either a fully concrete machine instruction or
/// a pseudo-instruction resolved at link time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AInsn {
    /// A concrete machine instruction (no symbols).
    Raw(Insn),
    /// Load a 32-bit constant (expands to `addi` or `lui`+`ori`).
    Li {
        /// Destination register.
        rd: Reg,
        /// The constant; accepted range is `i32::MIN..=u32::MAX`.
        value: i64,
    },
    /// Load the address of `sym + offset` (expands to `lui`+`ori`).
    La {
        /// Destination register.
        rd: Reg,
        /// Symbol name.
        sym: String,
        /// Byte offset added to the symbol address.
        offset: i32,
    },
    /// Conditional branch to a label.
    Branch {
        /// Condition.
        cond: Cond,
        /// Left operand.
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
        /// Target label.
        target: String,
    },
    /// Unconditional jump to a label (`jal r0`).
    Jump {
        /// Target label.
        target: String,
    },
    /// Call a function through the standard link register (`jal lr`).
    Call {
        /// Target function label.
        target: String,
    },
    /// Call through an alternate link register (used by sanitizer
    /// instrumentation so checks do not clobber `lr`).
    CallVia {
        /// Link register receiving the return address.
        link: Reg,
        /// Target function label.
        target: String,
    },
}

impl AInsn {
    /// Number of machine words this pseudo-instruction expands to.
    pub fn expansion_len(&self) -> u32 {
        match self {
            AInsn::Raw(_)
            | AInsn::Branch { .. }
            | AInsn::Jump { .. }
            | AInsn::Call { .. }
            | AInsn::CallVia { .. } => 1,
            AInsn::Li { value, .. } => {
                if (-2048..2048).contains(value) {
                    1
                } else {
                    2
                }
            }
            AInsn::La { .. } => 2,
        }
    }
}

/// One item of the text section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TextItem {
    /// A function-start label (participates in the symbol table as a
    /// function; delimits instrumentation scopes).
    Func(String),
    /// A local label (branch target; not a function boundary).
    Label(String),
    /// An instruction.
    Insn(AInsn),
}

/// A global data object placed in RAM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalDef {
    /// Symbol name.
    pub name: String,
    /// Object size in bytes.
    pub size: u32,
    /// Optional initializer (shorter than `size` is zero-padded).
    pub init: Option<Vec<u8>>,
    /// Minimum alignment (power of two; at least 4 is enforced).
    pub align: u32,
    /// Whether the EMBSAN-C pass should give this object redzones. Plain
    /// data (e.g. string constants) sets this to `false`.
    pub sanitize: bool,
}

impl GlobalDef {
    /// A sanitized, zero-initialized global of `size` bytes.
    pub fn zeroed(name: &str, size: u32) -> GlobalDef {
        GlobalDef { name: name.to_string(), size, init: None, align: 4, sanitize: true }
    }

    /// A sanitized global with an initializer.
    pub fn with_init(name: &str, init: Vec<u8>) -> GlobalDef {
        GlobalDef {
            name: name.to_string(),
            size: init.len() as u32,
            init: Some(init),
            align: 4,
            sanitize: true,
        }
    }

    /// An unsanitized data blob (no redzones even under EMBSAN-C).
    pub fn plain(name: &str, init: Vec<u8>) -> GlobalDef {
        GlobalDef {
            name: name.to_string(),
            size: init.len() as u32,
            init: Some(init),
            align: 4,
            sanitize: false,
        }
    }
}

/// A complete firmware program before linking.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// The text stream (labels and instructions).
    pub text: Vec<TextItem>,
    /// Global data objects, laid out in declaration order.
    pub globals: Vec<GlobalDef>,
    /// Entry-point function name.
    pub entry: String,
    /// The "ready-to-run" symbol: the address the paper's workflow treats as
    /// the end of system initialization.
    pub ready: Option<String>,
    /// Functions exempt from sanitizer instrumentation (boot code, allocator
    /// internals, the sanitizer runtime itself).
    pub no_instrument: BTreeSet<String>,
    /// Heap bytes reserved after globals (symbols `__heap_start`/`__heap_end`).
    pub heap_size: u32,
    /// Whether sanitized globals get redzones (set by the instrumentation
    /// pass; consumed by the linker).
    pub redzones: bool,
}

impl Program {
    /// Creates an empty program with a 64 KiB heap and entry `main`.
    pub fn new() -> Program {
        Program { entry: "main".to_string(), heap_size: 64 * 1024, ..Program::default() }
    }

    /// Iterates over the function names defined in the text stream.
    pub fn functions(&self) -> impl Iterator<Item = &str> {
        self.text.iter().filter_map(|item| match item {
            TextItem::Func(name) => Some(name.as_str()),
            _ => None,
        })
    }

    /// Whether a function with the given name is defined.
    pub fn defines_function(&self, name: &str) -> bool {
        self.functions().any(|f| f == name)
    }

    /// Total number of instructions (after pseudo-expansion).
    pub fn code_words(&self) -> u32 {
        self.text
            .iter()
            .map(|item| match item {
                TextItem::Insn(insn) => insn.expansion_len(),
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_lengths() {
        assert_eq!(AInsn::Li { rd: Reg::R1, value: 100 }.expansion_len(), 1);
        assert_eq!(AInsn::Li { rd: Reg::R1, value: -2048 }.expansion_len(), 1);
        assert_eq!(AInsn::Li { rd: Reg::R1, value: 2048 }.expansion_len(), 2);
        assert_eq!(AInsn::Li { rd: Reg::R1, value: 0xDEAD_BEEF }.expansion_len(), 2);
        assert_eq!(AInsn::La { rd: Reg::R1, sym: "x".into(), offset: 0 }.expansion_len(), 2);
        assert_eq!(AInsn::Raw(Insn::Nop).expansion_len(), 1);
    }

    #[test]
    fn program_function_queries() {
        let mut p = Program::new();
        p.text.push(TextItem::Func("main".into()));
        p.text.push(TextItem::Insn(AInsn::Raw(Insn::Nop)));
        p.text.push(TextItem::Label("main.loop".into()));
        p.text.push(TextItem::Insn(AInsn::Li { rd: Reg::R1, value: 70000 }));
        p.text.push(TextItem::Func("helper".into()));
        assert!(p.defines_function("main"));
        assert!(p.defines_function("helper"));
        assert!(!p.defines_function("main.loop"));
        assert_eq!(p.code_words(), 3);
    }
}
