//! The EMBSAN-C compile-time instrumentation pass.
//!
//! This is the reproduction of "open-source firmware that supports
//! compile-time sanitizer instrumentation" (§3.2, category 1): the pass
//! rewrites a [`Program`] so that
//!
//! 1. every load/store/atomic is preceded by a call to a `__san_*` check
//!    stub, with the effective address materialized in the reserved
//!    instrumentation scratch register `r12` and the return address in the
//!    alternate link register `r11` (so surrounding code is undisturbed);
//! 2. the check stubs are provided by a generated *dummy sanitizer library*
//!    whose bodies are a single trapping `hyper` instruction — the
//!    platform-specific `vmcall` of the paper — unless the firmware links a
//!    guest-native sanitizer runtime instead ([`InstrumentOptions::link_dummy_lib`]);
//! 3. sanitized globals receive redzones (via the linker) and a generated
//!    `__san_register_globals` routine registers each of them at boot.
//!
//! Functions listed in [`Program::no_instrument`] — boot code, allocator
//! internals, and the sanitizer runtime itself — are left untouched, as are
//! all `__san_*` functions.

use embsan_emu::isa::{Insn, Reg};
use embsan_emu::profile::{Arch, ArchProfile};

use crate::builder::Asm;
use crate::ir::{AInsn, Program, TextItem};
use crate::sanabi::{self, check_nr, stub_name, stubs, GLOBAL_REDZONE, STUB_NAMES};

/// Alternate link register used by check calls.
pub const CHECK_LINK: Reg = Reg::R11;

/// Options controlling the instrumentation pass.
#[derive(Debug, Clone, Copy)]
pub struct InstrumentOptions {
    /// Target architecture (the dummy library marshals hypercall arguments
    /// per this profile's convention).
    pub arch: Arch,
    /// Instrument memory accesses with check-stub calls.
    pub checks: bool,
    /// Emit the dummy (hypercall) sanitizer library. Set to `false` when the
    /// firmware links a guest-native runtime providing the `__san_*` symbols.
    pub link_dummy_lib: bool,
    /// Give sanitized globals redzones and generate boot registration.
    pub global_redzones: bool,
    /// Emit kcov-style coverage beacons: each instrumented function entry
    /// writes its identifier to the platform coverage port. Coarser than
    /// the emulator's OS-agnostic edge coverage (function- rather than
    /// edge-granular) — the comparison behind the Tardis-style collection
    /// choice.
    pub guest_coverage: bool,
}

impl InstrumentOptions {
    /// The full EMBSAN-C configuration for `arch`.
    pub fn embsan_c(arch: Arch) -> InstrumentOptions {
        InstrumentOptions {
            arch,
            checks: true,
            link_dummy_lib: true,
            global_redzones: true,
            guest_coverage: false,
        }
    }

    /// Compile-time instrumentation for a guest-native sanitizer build: the
    /// same checks and redzones, but the `__san_*` bodies come from the
    /// firmware itself.
    pub fn native(arch: Arch) -> InstrumentOptions {
        InstrumentOptions {
            arch,
            checks: true,
            link_dummy_lib: false,
            global_redzones: true,
            guest_coverage: false,
        }
    }
}

/// Classifies a memory instruction for instrumentation.
fn access_of(insn: &Insn) -> Option<(Reg, i32, u8, bool, bool)> {
    // (base, offset, size, is_write, atomic)
    match *insn {
        Insn::Lb { rs1, imm, .. } | Insn::Lbu { rs1, imm, .. } => Some((rs1, imm, 1, false, false)),
        Insn::Lh { rs1, imm, .. } | Insn::Lhu { rs1, imm, .. } => Some((rs1, imm, 2, false, false)),
        Insn::Lw { rs1, imm, .. } => Some((rs1, imm, 4, false, false)),
        Insn::Sb { rs1, imm, .. } => Some((rs1, imm, 1, true, false)),
        Insn::Sh { rs1, imm, .. } => Some((rs1, imm, 2, true, false)),
        Insn::Sw { rs1, imm, .. } => Some((rs1, imm, 4, true, false)),
        Insn::AmoAddW { rs1, .. } | Insn::AmoSwpW { rs1, .. } => Some((rs1, 0, 4, true, true)),
        _ => None,
    }
}

/// Runs the pass in place.
///
/// Returns the number of memory accesses instrumented.
pub fn instrument(program: &mut Program, options: &InstrumentOptions) -> u32 {
    let mut out: Vec<TextItem> = Vec::with_capacity(program.text.len() * 2);
    let mut skip_current = false;
    let mut count = 0u32;
    let mut func_id = 0i64;
    let profile = ArchProfile::for_arch(options.arch);
    let cov_port = i64::from(profile.mmio_base + embsan_emu::device::COV_BASE);

    if options.checks || options.guest_coverage {
        for item in program.text.drain(..) {
            match &item {
                TextItem::Func(name) => {
                    skip_current =
                        name.starts_with("__san_") || program.no_instrument.contains(name);
                    out.push(item);
                    if options.guest_coverage && !skip_current {
                        // kcov-style beacon: write the function id to the
                        // coverage port using the reserved instrumentation
                        // registers.
                        func_id += 1;
                        let mut beacon = Asm::new();
                        beacon.li(Reg::SCRATCH, cov_port);
                        beacon.li(CHECK_LINK, func_id);
                        beacon.sw(CHECK_LINK, Reg::SCRATCH, 0);
                        out.extend(beacon.into_items());
                    }
                }
                TextItem::Label(_) => out.push(item),
                TextItem::Insn(AInsn::Raw(raw)) if !skip_current && options.checks => {
                    if let Some((base, offset, size, is_write, atomic)) = access_of(raw) {
                        // r12 = base + offset; call __san_<kind><size> via r11.
                        out.push(TextItem::Insn(AInsn::Raw(Insn::Addi {
                            rd: Reg::SCRATCH,
                            rs1: base,
                            imm: offset,
                        })));
                        out.push(TextItem::Insn(AInsn::CallVia {
                            link: CHECK_LINK,
                            target: stub_name(size, is_write, atomic).to_string(),
                        }));
                        count += 1;
                    }
                    out.push(item);
                }
                _ => out.push(item),
            }
        }
        program.text = out;
    }

    if options.link_dummy_lib {
        append_dummy_library(program, &profile);
    }
    if options.global_redzones {
        program.redzones = true;
        append_global_registration(program);
    }
    // Everything we generated must never be re-instrumented.
    for name in STUB_NAMES {
        program.no_instrument.insert(name.to_string());
    }
    for name in [stubs::ALLOC, stubs::FREE, stubs::GLOBAL, stubs::READY, stubs::REGISTER_GLOBALS] {
        program.no_instrument.insert(name.to_string());
    }
    count
}

/// Emits register moves placing standard-ABI arguments (`a0..`) into the
/// profile's hypercall argument registers. Moves are emitted from the last
/// argument to the first, which is safe for the (ascending) register
/// assignments of all shipped profiles.
fn marshal_hypercall_args(asm: &mut Asm, profile: &ArchProfile, argc: usize) {
    let sources = [Reg::A0, Reg::A1, Reg::A2, Reg::A3];
    for i in (0..argc).rev() {
        let target = profile.hypercall.args[i];
        let source = sources[i];
        if target != source {
            asm.mv(target, source);
        }
    }
}

/// Appends the dummy sanitizer library: check stubs trapping via `hyper`,
/// plus the state-maintenance entry points.
fn append_dummy_library(program: &mut Program, profile: &ArchProfile) {
    let mut asm = Asm::new();
    // Check stubs: address arrives in r12; return via r11.
    for &(size, is_write, atomic) in &[
        (1u8, false, false),
        (2, false, false),
        (4, false, false),
        (1, true, false),
        (2, true, false),
        (4, true, false),
        (4, true, true),
    ] {
        asm.func(stub_name(size, is_write, atomic));
        asm.hyper(check_nr(size, is_write, atomic));
        asm.ret_via(CHECK_LINK);
    }
    // __san_alloc(addr, size)
    asm.func(stubs::ALLOC);
    marshal_hypercall_args(&mut asm, profile, 2);
    asm.hyper(sanabi::hyper::ALLOC);
    asm.ret();
    // __san_free(addr)
    asm.func(stubs::FREE);
    marshal_hypercall_args(&mut asm, profile, 1);
    asm.hyper(sanabi::hyper::FREE);
    asm.ret();
    // __san_global(addr, size, redzone)
    asm.func(stubs::GLOBAL);
    marshal_hypercall_args(&mut asm, profile, 3);
    asm.hyper(sanabi::hyper::REGISTER_GLOBAL);
    asm.ret();
    // __san_ready()
    asm.func(stubs::READY);
    asm.hyper(sanabi::hyper::READY);
    asm.ret();
    program.text.extend(asm.into_items());
}

/// Appends `__san_register_globals`, which registers every sanitized global
/// with the sanitizer at boot (the analogue of ASan's module constructors).
fn append_global_registration(program: &mut Program) {
    let mut asm = Asm::new();
    asm.func(stubs::REGISTER_GLOBALS);
    asm.prologue(&[]);
    for g in program.globals.iter().filter(|g| g.sanitize) {
        asm.la(Reg::A0, &g.name);
        asm.li(Reg::A1, i64::from(g.size));
        asm.li(Reg::A2, i64::from(GLOBAL_REDZONE));
        asm.call(stubs::GLOBAL);
    }
    asm.epilogue(&[]);
    program.text.extend(asm.into_items());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::GlobalDef;
    use crate::link::{link, LinkOptions};

    fn base_program() -> Program {
        let mut p = Program::new();
        let mut asm = Asm::new();
        asm.func("main");
        asm.la(Reg::A0, "buf");
        asm.lw(Reg::A1, Reg::A0, 0);
        asm.sw(Reg::A1, Reg::A0, 4);
        asm.call(stubs::REGISTER_GLOBALS);
        asm.halt(0);
        asm.func("raw_copy");
        asm.lbu(Reg::A1, Reg::A0, 0);
        asm.ret();
        p.text = asm.into_items();
        p.globals.push(GlobalDef::zeroed("buf", 16));
        p
    }

    #[test]
    fn inserts_checks_before_accesses() {
        let mut p = base_program();
        let n = instrument(&mut p, &InstrumentOptions::embsan_c(Arch::Armv));
        assert_eq!(n, 3); // lw, sw, lbu
                          // Find the lw in main and verify the two preceding items.
        let items = &p.text;
        let lw_pos = items
            .iter()
            .position(|i| matches!(i, TextItem::Insn(AInsn::Raw(Insn::Lw { .. }))))
            .unwrap();
        assert!(matches!(
            &items[lw_pos - 1],
            TextItem::Insn(AInsn::CallVia { link, target })
                if *link == CHECK_LINK && target == "__san_load4"
        ));
        assert!(matches!(
            &items[lw_pos - 2],
            TextItem::Insn(AInsn::Raw(Insn::Addi { rd: Reg::R12, .. }))
        ));
    }

    #[test]
    fn no_instrument_functions_are_skipped() {
        let mut p = base_program();
        p.no_instrument.insert("raw_copy".to_string());
        let n = instrument(&mut p, &InstrumentOptions::embsan_c(Arch::Armv));
        assert_eq!(n, 2); // only main's lw and sw
    }

    #[test]
    fn dummy_library_and_registration_are_emitted_and_linkable() {
        let mut p = base_program();
        instrument(&mut p, &InstrumentOptions::embsan_c(Arch::X86v));
        for name in STUB_NAMES {
            assert!(p.defines_function(name), "missing {name}");
        }
        assert!(p.defines_function(stubs::ALLOC));
        assert!(p.defines_function(stubs::REGISTER_GLOBALS));
        assert!(p.redzones);
        // And the whole thing links.
        let image = link(&p, &LinkOptions::new(Arch::X86v)).unwrap();
        assert_eq!(image.globals.len(), 1);
        assert_eq!(image.globals[0].redzone_before, GLOBAL_REDZONE);
    }

    #[test]
    fn native_mode_omits_dummy_library() {
        let mut p = base_program();
        instrument(&mut p, &InstrumentOptions::native(Arch::Armv));
        assert!(!p.defines_function("__san_load4"));
        // Checks were still inserted (they reference the now-external stubs).
        assert!(p.text.iter().any(|i| matches!(
            i,
            TextItem::Insn(AInsn::CallVia { target, .. }) if target == "__san_load4"
        )));
    }

    #[test]
    fn pass_is_not_applied_twice_to_stubs() {
        let mut p = base_program();
        instrument(&mut p, &InstrumentOptions::embsan_c(Arch::Armv));
        let words_once = p.code_words();
        // Re-running instruments nothing new inside __san_* bodies; the only
        // additions would be re-instrumenting main/raw_copy accesses, whose
        // count must equal the first run (their originals), not grow with
        // the inserted stubs.
        let mut q = p.clone();
        let n = instrument(&mut q, &InstrumentOptions::embsan_c(Arch::Armv));
        assert_eq!(n, 3);
        assert!(q.code_words() > words_once); // re-instrumented main only
    }

    #[test]
    fn marshalling_handles_overlapping_registers() {
        // x86v passes hypercall args in r2.. while the ABI args are r1..;
        // moving in reverse order must preserve all values.
        let profile = ArchProfile::x86v();
        let mut asm = Asm::new();
        marshal_hypercall_args(&mut asm, &profile, 3);
        let moves: Vec<(Reg, Reg)> = asm
            .items()
            .iter()
            .filter_map(|i| match i {
                TextItem::Insn(AInsn::Raw(Insn::Addi { rd, rs1, imm: 0 })) => Some((*rd, *rs1)),
                _ => None,
            })
            .collect();
        assert_eq!(moves, vec![(Reg::R4, Reg::R3), (Reg::R3, Reg::R2), (Reg::R2, Reg::R1)]);
    }
}
