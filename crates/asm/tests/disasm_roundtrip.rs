//! Exhaustive disassembler round-trip coverage.
//!
//! The D-binary prober presents candidate allocator functions to the tester
//! as disassembly, and `crates/emu/src/isa/disasm.rs` promises that its
//! output grammar is exactly what the text assembler accepts. This test
//! pins that contract for *every* `Insn` variant: starting from a sample
//! instruction, `encode → decode → Display → text-assemble → encode` must
//! be a fixed point.

use embsan_asm::assemble;
use embsan_asm::ir::{AInsn, TextItem};
use embsan_emu::isa::{Insn, Reg};

/// Discriminant index of a variant. No wildcard arm: adding an `Insn`
/// variant fails compilation here until a round-trip sample is added.
fn variant_index(insn: &Insn) -> usize {
    match insn {
        Insn::Add { .. } => 0,
        Insn::Sub { .. } => 1,
        Insn::And { .. } => 2,
        Insn::Or { .. } => 3,
        Insn::Xor { .. } => 4,
        Insn::Sll { .. } => 5,
        Insn::Srl { .. } => 6,
        Insn::Sra { .. } => 7,
        Insn::Mul { .. } => 8,
        Insn::Mulh { .. } => 9,
        Insn::Divu { .. } => 10,
        Insn::Remu { .. } => 11,
        Insn::Slt { .. } => 12,
        Insn::Sltu { .. } => 13,
        Insn::Addi { .. } => 14,
        Insn::Andi { .. } => 15,
        Insn::Ori { .. } => 16,
        Insn::Xori { .. } => 17,
        Insn::Slli { .. } => 18,
        Insn::Srli { .. } => 19,
        Insn::Srai { .. } => 20,
        Insn::Slti { .. } => 21,
        Insn::Sltiu { .. } => 22,
        Insn::Lui { .. } => 23,
        Insn::Auipc { .. } => 24,
        Insn::Lb { .. } => 25,
        Insn::Lbu { .. } => 26,
        Insn::Lh { .. } => 27,
        Insn::Lhu { .. } => 28,
        Insn::Lw { .. } => 29,
        Insn::Sb { .. } => 30,
        Insn::Sh { .. } => 31,
        Insn::Sw { .. } => 32,
        Insn::AmoAddW { .. } => 33,
        Insn::AmoSwpW { .. } => 34,
        Insn::Beq { .. } => 35,
        Insn::Bne { .. } => 36,
        Insn::Blt { .. } => 37,
        Insn::Bltu { .. } => 38,
        Insn::Bge { .. } => 39,
        Insn::Bgeu { .. } => 40,
        Insn::Jal { .. } => 41,
        Insn::Jalr { .. } => 42,
        Insn::Ecall { .. } => 43,
        Insn::Eret => 44,
        Insn::Hyper { .. } => 45,
        Insn::Csrr { .. } => 46,
        Insn::Csrw { .. } => 47,
        Insn::Halt { .. } => 48,
        Insn::Wfi => 49,
        Insn::Nop => 50,
        Insn::Fence => 51,
        Insn::Brk => 52,
    }
}

const VARIANT_COUNT: usize = 53;

/// At least one sample per variant, plus boundary immediates (negative,
/// zero, extreme) wherever the encoding carries one.
fn samples() -> Vec<Insn> {
    use Reg::*;
    // R-type ALU.
    let mut out = vec![
        Insn::Add { rd: R1, rs1: R2, rs2: R3 },
        Insn::Sub { rd: R4, rs1: R5, rs2: R6 },
        Insn::And { rd: R7, rs1: R8, rs2: R9 },
        Insn::Or { rd: R10, rs1: R11, rs2: R12 },
        Insn::Xor { rd: R13, rs1: R14, rs2: R15 },
        Insn::Sll { rd: R0, rs1: R1, rs2: R2 },
        Insn::Srl { rd: R3, rs1: R4, rs2: R5 },
        Insn::Sra { rd: R6, rs1: R7, rs2: R8 },
        Insn::Mul { rd: R9, rs1: R10, rs2: R11 },
        Insn::Mulh { rd: R12, rs1: R13, rs2: R14 },
        Insn::Divu { rd: R15, rs1: R0, rs2: R1 },
        Insn::Remu { rd: R2, rs1: R3, rs2: R4 },
        Insn::Slt { rd: R5, rs1: R6, rs2: R7 },
        Insn::Sltu { rd: R8, rs1: R9, rs2: R10 },
    ];
    // I-type with signed 12-bit immediates.
    for imm in [-2048, -1, 0, 7, 2047] {
        out.push(Insn::Addi { rd: R1, rs1: R2, imm });
        out.push(Insn::Slti { rd: R3, rs1: R4, imm });
        out.push(Insn::Sltiu { rd: R5, rs1: R6, imm });
    }
    // Logical immediates are unsigned 12-bit.
    for imm in [0, 0xFF, 0xFFF] {
        out.push(Insn::Andi { rd: R7, rs1: R8, imm });
        out.push(Insn::Ori { rd: R9, rs1: R10, imm });
        out.push(Insn::Xori { rd: R11, rs1: R12, imm });
    }
    for shamt in [0, 1, 31] {
        out.push(Insn::Slli { rd: R1, rs1: R2, shamt });
        out.push(Insn::Srli { rd: R3, rs1: R4, shamt });
        out.push(Insn::Srai { rd: R5, rs1: R6, shamt });
    }
    // Upper immediates (low 12 bits clear).
    for imm in [0, 0x1000, 0xFFFF_F000] {
        out.push(Insn::Lui { rd: R1, imm });
        out.push(Insn::Auipc { rd: R2, imm });
    }
    // Loads/stores with every offset sign.
    for imm in [-2048, -4, 0, 8, 2047] {
        out.push(Insn::Lb { rd: R1, rs1: R2, imm });
        out.push(Insn::Lbu { rd: R3, rs1: R4, imm });
        out.push(Insn::Lh { rd: R5, rs1: R6, imm });
        out.push(Insn::Lhu { rd: R7, rs1: R8, imm });
        out.push(Insn::Lw { rd: R9, rs1: R10, imm });
        out.push(Insn::Sb { rs2: R11, rs1: R12, imm });
        out.push(Insn::Sh { rs2: R13, rs1: R14, imm });
        out.push(Insn::Sw { rs2: R15, rs1: R1, imm });
    }
    out.push(Insn::AmoAddW { rd: R1, rs1: R2, rs2: R3 });
    out.push(Insn::AmoSwpW { rd: R4, rs1: R5, rs2: R0 });
    // Branches: word-aligned byte offsets, both directions.
    for offset in [-8192, -4, 0, 8, 8188] {
        out.push(Insn::Beq { rs1: R1, rs2: R2, offset });
        out.push(Insn::Bne { rs1: R3, rs2: R4, offset });
        out.push(Insn::Blt { rs1: R5, rs2: R6, offset });
        out.push(Insn::Bltu { rs1: R7, rs2: R8, offset });
        out.push(Insn::Bge { rs1: R9, rs2: R10, offset });
        out.push(Insn::Bgeu { rs1: R11, rs2: R12, offset });
    }
    for offset in [-(1 << 21), -4, 0, 16, (1 << 21) - 4] {
        out.push(Insn::Jal { rd: R15, offset });
        out.push(Insn::Jal { rd: R0, offset });
    }
    for imm in [-2048, 0, 4, 2047] {
        out.push(Insn::Jalr { rd: R15, rs1: R9, imm });
    }
    out.push(Insn::Jalr { rd: R0, rs1: R15, imm: 0 }); // `ret` shape
    out.push(Insn::Ecall { code: 0 });
    out.push(Insn::Ecall { code: 0xFFF });
    out.push(Insn::Eret);
    out.push(Insn::Hyper { nr: 0 });
    out.push(Insn::Hyper { nr: (1 << 20) - 1 });
    out.push(Insn::Csrr { rd: R1, idx: 0 });
    out.push(Insn::Csrr { rd: R2, idx: 6 });
    out.push(Insn::Csrw { rs1: R3, idx: 1 });
    out.push(Insn::Halt { code: 0 });
    out.push(Insn::Halt { code: 0xDEAD });
    out.push(Insn::Wfi);
    out.push(Insn::Nop);
    out.push(Insn::Fence);
    out.push(Insn::Brk);
    out
}

/// Assembles a single instruction line back to an `Insn`.
fn assemble_one(text: &str) -> Insn {
    let source = format!("f:\n    {text}\n");
    let program = assemble(&source).unwrap_or_else(|e| panic!("`{text}` does not assemble: {e}"));
    let mut insns = program.text.iter().filter_map(|item| match item {
        TextItem::Insn(AInsn::Raw(insn)) => Some(*insn),
        TextItem::Insn(other) => panic!("`{text}` assembled to pseudo-insn {other:?}"),
        _ => None,
    });
    let insn = insns.next().unwrap_or_else(|| panic!("`{text}` produced no instruction"));
    assert!(insns.next().is_none(), "`{text}` produced multiple instructions");
    insn
}

#[test]
fn every_variant_round_trips_through_encode_decode_display_assemble() {
    let samples = samples();
    let mut seen = [false; VARIANT_COUNT];
    for insn in &samples {
        seen[variant_index(insn)] = true;

        let word = insn.encode();
        let decoded = Insn::decode(word)
            .unwrap_or_else(|e| panic!("{insn:?} encoded to undecodable word: {e}"));
        assert_eq!(decoded, *insn, "encode→decode not identity");

        let text = decoded.to_string();
        let reassembled = assemble_one(&text);
        assert_eq!(reassembled, *insn, "Display→assemble drifted for `{text}`");
        assert_eq!(reassembled.encode(), word, "assembled `{text}` re-encodes differently");
    }
    let missing: Vec<usize> = (0..VARIANT_COUNT).filter(|&i| !seen[i]).collect();
    assert!(missing.is_empty(), "variants without samples: {missing:?}");
}

#[test]
fn numeric_branch_targets_parse_alongside_labels() {
    // The disassembler prints numeric offsets; the assembler must accept
    // them without breaking label-based branches in the same function.
    let program = assemble("f:\n    beq r1, r2, +8\n.out:\n    bne r1, r0, .out\n").unwrap();
    let raws: Vec<&AInsn> = program
        .text
        .iter()
        .filter_map(|i| match i {
            TextItem::Insn(insn) => Some(insn),
            _ => None,
        })
        .collect();
    assert!(matches!(raws[0], AInsn::Raw(Insn::Beq { rs1: Reg::R1, rs2: Reg::R2, offset: 8 })));
    assert!(matches!(raws[1], AInsn::Branch { .. }));
}
