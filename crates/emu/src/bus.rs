//! Physical memory bus: ROM, RAM, MMIO window, and fault generation.

use std::sync::Arc;

use crate::cow::PagedBytes;
use crate::device::DeviceSet;
use crate::dirty::{DirtyPages, RAM_PAGE_SHIFT};
use crate::error::Fault;
use crate::mmio_free::ModelFreeMmio;
use crate::profile::{ArchProfile, Endian};

/// End of the null guard page: accesses below this address fault as
/// [`Fault::NullPage`], which the EMBSAN runtime classifies as
/// null-pointer dereferences.
pub const NULL_GUARD_END: u32 = 0x1000;

/// The kind of a guest memory access, as seen by sanitizer probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemKind {
    /// A plain load.
    Read,
    /// A plain store.
    Write,
    /// An atomic read-modify-write (counts as both for race detection).
    AtomicRmw,
}

impl MemKind {
    /// Whether this access writes memory.
    pub fn is_write(self) -> bool {
        matches!(self, MemKind::Write | MemKind::AtomicRmw)
    }

    /// Whether this access reads memory.
    pub fn is_read(self) -> bool {
        matches!(self, MemKind::Read | MemKind::AtomicRmw)
    }
}

/// A sanitizer-visible description of one guest memory access.
///
/// Probes run *before* the access is performed, matching how compiler
/// sanitizers insert checks before the instruction; `value` therefore only
/// carries the to-be-written value for stores (zero for loads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Guest physical address.
    pub addr: u32,
    /// Access width in bytes (1, 2 or 4).
    pub size: u8,
    /// Load / store / atomic.
    pub kind: MemKind,
    /// For writes: the value being written. Zero for reads.
    pub value: u32,
    /// Program counter of the accessing instruction.
    pub pc: u32,
    /// Index of the accessing vCPU.
    pub cpu: usize,
}

#[derive(Debug, Clone)]
struct Region {
    base: u32,
    data: Vec<u8>,
}

impl Region {
    fn contains(&self, addr: u32, size: u32) -> bool {
        addr >= self.base
            && u64::from(addr) + u64::from(size) <= u64::from(self.base) + self.data.len() as u64
    }
}

/// The machine's physical memory bus.
///
/// Address space layout: a null guard page at the bottom, a read-only ROM,
/// a RAM region, and an MMIO window dispatching to [`DeviceSet`]. All other
/// addresses fault.
#[derive(Debug, Clone)]
pub struct Bus {
    endian: Endian,
    rom: Region,
    ram_base: u32,
    /// Guest RAM: flat while booting, a copy-on-write fork of an
    /// `Arc`-shared base image once a snapshot has been restored (see
    /// [`crate::snapshot`]). Forked workers then hold only the overlay
    /// pages they dirty — O(dirty), not O(RAM).
    ram: PagedBytes,
    mmio_base: u32,
    mmio_size: u32,
    /// Remaining guest MMIO reads corrupted by an injected bus fault.
    mmio_xor_reads: u32,
    /// Corruption mask XOR-ed into corrupted MMIO reads.
    mmio_xor: u32,
    /// RAM pages written since the last snapshot restore; lets restore copy
    /// only touched pages back from the pristine image.
    ram_dirty: DirtyPages,
    /// When set, the platform device window is *withheld*: guest accesses
    /// to it are not dispatched to [`DeviceSet`] and instead fall through
    /// to the model-free region (which must cover the window) — the
    /// "fuzz firmware whose MMIO map we don't know" mode. Host-side
    /// device access is unaffected.
    mmio_withheld: bool,
    /// The platform devices. Public so hosts (fuzzers, benches, the prober)
    /// can drive the mailbox and read the UART.
    pub devices: DeviceSet,
}

impl Bus {
    /// Creates a bus for `profile` with the given ROM image and RAM size.
    pub fn new(
        profile: &ArchProfile,
        rom_base: u32,
        rom: Vec<u8>,
        ram_base: u32,
        ram_size: u32,
        rng_seed: u64,
    ) -> Bus {
        Bus {
            endian: profile.endian,
            rom: Region { base: rom_base, data: rom },
            ram_base,
            ram: PagedBytes::zeroed(ram_size as usize, RAM_PAGE_SHIFT),
            mmio_base: profile.mmio_base,
            mmio_size: profile.mmio_size,
            mmio_xor_reads: 0,
            mmio_xor: 0,
            ram_dirty: DirtyPages::new(ram_size as usize, RAM_PAGE_SHIFT),
            mmio_withheld: false,
            devices: DeviceSet::new(rng_seed),
        }
    }

    /// Installs a model-free MMIO region answering reads in
    /// `base..base+size` from a fuzzer-controlled response stream (see
    /// [`crate::mmio_free`]). With `withhold_devices`, the platform
    /// device window is additionally hidden from the guest so its
    /// accesses fall through to the model-free region — the region must
    /// then cover the window.
    pub fn enable_model_free(&mut self, base: u32, size: u32, withhold_devices: bool) {
        self.devices.model_free = Some(ModelFreeMmio::new(base, size));
        self.mmio_withheld = withhold_devices;
        if withhold_devices {
            let mf = self.devices.model_free.as_ref().expect("just installed");
            assert!(
                mf.contains(self.mmio_base, 1)
                    && mf.contains(self.mmio_base.saturating_add(self.mmio_size - 1), 1),
                "withheld device window must be covered by the model-free region"
            );
        }
    }

    /// Whether the platform device window is withheld from the guest.
    pub fn mmio_is_withheld(&self) -> bool {
        self.mmio_withheld
    }

    /// Opens a fault-injection window: the next `reads` guest MMIO reads
    /// return their data XOR-ed with `xor` (a flaky peripheral bus).
    pub fn arm_mmio_corruption(&mut self, xor: u32, reads: u32) {
        self.mmio_xor = xor;
        self.mmio_xor_reads = reads;
    }

    /// Remaining MMIO reads in the current corruption window.
    pub fn mmio_corruption_pending(&self) -> u32 {
        self.mmio_xor_reads
    }

    /// Guest memory byte order.
    pub fn endian(&self) -> Endian {
        self.endian
    }

    /// The RAM region as `(base, size)`.
    pub fn ram_range(&self) -> (u32, u32) {
        (self.ram_base, self.ram.len() as u32)
    }

    /// Whether `addr..addr+size` falls entirely inside RAM (internal,
    /// byte-offset form of [`Bus::is_ram`]).
    #[inline]
    fn ram_contains(&self, addr: u32, size: u32) -> bool {
        addr >= self.ram_base
            && u64::from(addr) + u64::from(size) <= u64::from(self.ram_base) + self.ram.len() as u64
    }

    /// The ROM region as `(base, size)`.
    pub fn rom_range(&self) -> (u32, u32) {
        (self.rom.base, self.rom.data.len() as u32)
    }

    /// Whether `addr` falls inside the MMIO window (device memory is not
    /// sanitized).
    pub fn is_mmio(&self, addr: u32) -> bool {
        addr >= self.mmio_base && addr < self.mmio_base.saturating_add(self.mmio_size)
    }

    /// Whether `addr..addr+size` falls entirely inside RAM.
    pub fn is_ram(&self, addr: u32, size: u32) -> bool {
        self.ram_contains(addr, size)
    }

    fn classify_fault(&self, addr: u32, is_write: bool) -> Fault {
        if addr < NULL_GUARD_END {
            Fault::NullPage { addr, is_write }
        } else {
            Fault::Unmapped { addr, is_write }
        }
    }

    fn load_int(bytes: &[u8], endian: Endian) -> u32 {
        let mut value: u32 = 0;
        match endian {
            Endian::Little => {
                for (i, byte) in bytes.iter().enumerate() {
                    value |= u32::from(*byte) << (8 * i);
                }
            }
            Endian::Big => {
                for byte in bytes {
                    value = value << 8 | u32::from(*byte);
                }
            }
        }
        value
    }

    fn store_int(bytes: &mut [u8], endian: Endian, value: u32) {
        match endian {
            Endian::Little => {
                for (i, byte) in bytes.iter_mut().enumerate() {
                    *byte = (value >> (8 * i)) as u8;
                }
            }
            Endian::Big => {
                let n = bytes.len();
                for (i, byte) in bytes.iter_mut().enumerate() {
                    *byte = (value >> (8 * (n - 1 - i))) as u8;
                }
            }
        }
    }

    /// Performs a guest read of `size` bytes (1, 2 or 4) at `addr`
    /// without an attributed program counter (host-side and legacy
    /// callers). Guest instruction paths use [`Bus::read_at`] so
    /// model-free responses are cached per read *site*.
    ///
    /// # Errors
    ///
    /// Faults on misalignment, the null guard page, and unmapped addresses.
    pub fn read(&mut self, addr: u32, size: u8) -> Result<u32, Fault> {
        self.read_at(addr, size, 0)
    }

    /// Performs a guest read of `size` bytes (1, 2 or 4) at `addr` from
    /// the instruction at `pc`.
    ///
    /// # Errors
    ///
    /// Faults on misalignment, the null guard page, and unmapped addresses.
    pub fn read_at(&mut self, addr: u32, size: u8, pc: u32) -> Result<u32, Fault> {
        if !addr.is_multiple_of(u32::from(size)) {
            return Err(Fault::Misaligned { addr, size });
        }
        let len = u32::from(size);
        if self.ram_contains(addr, len) {
            let off = (addr - self.ram_base) as usize;
            // Size-aligned loads of ≤4 bytes cannot straddle a page.
            return Ok(Self::load_int(self.ram.read_slice(off, size as usize), self.endian));
        }
        if self.rom.contains(addr, len) {
            let off = (addr - self.rom.base) as usize;
            return Ok(Self::load_int(&self.rom.data[off..off + size as usize], self.endian));
        }
        if !self.mmio_withheld && self.is_mmio(addr) {
            let mut value = self.devices.read(addr - self.mmio_base);
            if self.mmio_xor_reads > 0 {
                self.mmio_xor_reads -= 1;
                value ^= self.mmio_xor;
            }
            return Ok(value);
        }
        if let Some(mf) = &mut self.devices.model_free {
            if mf.contains(addr, len) {
                return Ok(mf.read(pc, addr, size));
            }
        }
        Err(self.classify_fault(addr, false))
    }

    /// Performs a guest write of `size` bytes (1, 2 or 4) at `addr`
    /// without an attributed program counter (see [`Bus::read`]).
    ///
    /// # Errors
    ///
    /// Faults on misalignment, ROM writes, the null guard page, and unmapped
    /// addresses.
    pub fn write(&mut self, addr: u32, size: u8, value: u32) -> Result<(), Fault> {
        self.write_at(addr, size, value, 0)
    }

    /// Performs a guest write of `size` bytes (1, 2 or 4) at `addr` from
    /// the instruction at `pc`.
    ///
    /// # Errors
    ///
    /// Faults on misalignment, ROM writes, the null guard page, and unmapped
    /// addresses.
    pub fn write_at(&mut self, addr: u32, size: u8, value: u32, pc: u32) -> Result<(), Fault> {
        if !addr.is_multiple_of(u32::from(size)) {
            return Err(Fault::Misaligned { addr, size });
        }
        let len = u32::from(size);
        if self.ram_contains(addr, len) {
            let off = (addr - self.ram_base) as usize;
            // Size-aligned stores of ≤4 bytes cannot straddle a page.
            self.ram_dirty.mark(off);
            Self::store_int(self.ram.slice_mut(off, size as usize), self.endian, value);
            return Ok(());
        }
        if self.rom.contains(addr, len) {
            return Err(Fault::RomWrite { addr });
        }
        if !self.mmio_withheld && self.is_mmio(addr) {
            self.devices.write(addr - self.mmio_base, value);
            return Ok(());
        }
        if let Some(mf) = &mut self.devices.model_free {
            if mf.contains(addr, len) {
                mf.write(pc, addr, value);
                return Ok(());
            }
        }
        Err(self.classify_fault(addr, true))
    }

    /// Fetches the instruction word at `pc`.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::BadFetch`] if `pc` is misaligned or outside ROM/RAM.
    pub fn fetch(&self, pc: u32) -> Result<u32, Fault> {
        if !pc.is_multiple_of(4) {
            return Err(Fault::BadFetch { pc });
        }
        if self.rom.contains(pc, 4) {
            let off = (pc - self.rom.base) as usize;
            return Ok(Self::load_int(&self.rom.data[off..off + 4], self.endian));
        }
        if self.ram_contains(pc, 4) {
            // 4-byte-aligned fetches cannot straddle a page.
            let off = (pc - self.ram_base) as usize;
            return Ok(Self::load_int(self.ram.read_slice(off, 4), self.endian));
        }
        Err(Fault::BadFetch { pc })
    }

    /// The first byte of `addr..addr+len` not covered by the region the
    /// range starts in (RAM or ROM) — the exact faulting address for a
    /// byte-granular access, rather than the request base. A range that
    /// starts outside both regions faults at its base.
    fn first_uncovered_byte(&self, addr: u32, len: u32) -> u32 {
        if self.ram_contains(addr, 1) {
            // Starts in RAM: faults at the first byte past RAM's end.
            let ram_end = u64::from(self.ram_base) + self.ram.len() as u64;
            return ram_end.min(u64::from(addr) + u64::from(len) - 1) as u32;
        }
        if self.rom.contains(addr, 1) {
            let rom_end = u64::from(self.rom.base) + self.rom.data.len() as u64;
            return rom_end.min(u64::from(addr) + u64::from(len) - 1) as u32;
        }
        addr
    }

    /// Host-side bulk read from ROM or RAM (never touches devices).
    ///
    /// # Errors
    ///
    /// Faults at the exact first uncovered byte if any byte of the range
    /// is outside ROM and RAM.
    pub fn read_bytes(&self, addr: u32, buf: &mut [u8]) -> Result<(), Fault> {
        let len = buf.len() as u32;
        if self.ram_contains(addr, len) {
            let off = (addr - self.ram_base) as usize;
            self.ram.read_bytes(off, buf);
            return Ok(());
        }
        if self.rom.contains(addr, len) {
            let off = (addr - self.rom.base) as usize;
            buf.copy_from_slice(&self.rom.data[off..off + buf.len()]);
            return Ok(());
        }
        Err(self.classify_fault(self.first_uncovered_byte(addr, len.max(1)), false))
    }

    /// Host-side bulk write into RAM (used by loaders and the fuzzer to
    /// inject data without going through guest code).
    ///
    /// # Errors
    ///
    /// Faults at the exact first uncovered byte if any byte of the range
    /// is outside RAM.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), Fault> {
        let len = bytes.len() as u32;
        if self.ram_contains(addr, len) {
            let off = (addr - self.ram_base) as usize;
            self.ram_dirty.mark_range(off, bytes.len());
            self.ram.write_bytes(off, bytes);
            return Ok(());
        }
        if self.rom.contains(addr, 1) {
            // Starts in ROM: a bulk *write* is a ROM write at the base.
            return Err(Fault::RomWrite { addr });
        }
        Err(self.classify_fault(self.first_uncovered_byte(addr, len.max(1)), true))
    }

    /// Materializes the current RAM contents as an owned vector
    /// (base + overlay when forked).
    pub(crate) fn clone_ram(&self) -> Vec<u8> {
        self.ram.to_vec()
    }

    /// Whether guest RAM currently forks from exactly `base`.
    pub fn ram_shares_base(&self, base: &Arc<Vec<u8>>) -> bool {
        self.ram.shares_base(base)
    }

    /// Re-forks RAM from `base`: contents become byte-identical to the
    /// base image with every page clean and no resident overlay. O(pages)
    /// bookkeeping, no byte copies — rebasing to a different snapshot is
    /// cheaper than the old full-copy restore.
    pub(crate) fn adopt_ram(&mut self, base: &Arc<Vec<u8>>) {
        self.ram.adopt(Arc::clone(base));
        self.ram_dirty.clear();
    }

    /// Copy-on-write restore: drops exactly the overlay pages the dirty
    /// bitmap names, reverting them to the shared base. O(dirty pages),
    /// and frees the worker's private memory instead of copying into it.
    pub(crate) fn restore_ram_cow(&mut self) {
        let ram = &mut self.ram;
        self.ram_dirty.drain(|page| ram.revert_page(page));
    }

    /// Full-private-copy restore (the pre-CoW reference path, kept for
    /// fork-isolation equivalence testing): RAM becomes a flat owned copy
    /// of `data` with every page clean.
    pub(crate) fn restore_ram_flat(&mut self, data: &[u8]) {
        self.ram = PagedBytes::from_vec(data.to_vec(), RAM_PAGE_SHIFT);
        self.ram_dirty.clear();
    }

    /// Number of RAM pages written since the last restore (telemetry).
    pub fn dirty_ram_pages(&self) -> usize {
        self.ram_dirty.count()
    }

    /// Private overlay bytes resident for guest RAM (0 when flat or
    /// freshly restored; the shared base is not counted).
    pub fn ram_overlay_bytes(&self) -> usize {
        self.ram.overlay_bytes()
    }

    /// Whether guest RAM is a copy-on-write fork of a shared base.
    pub fn ram_is_forked(&self) -> bool {
        self.ram.is_forked()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_bus(endian: Endian) -> Bus {
        let mut profile = ArchProfile::armv();
        profile.endian = endian;
        Bus::new(&profile, 0x1_0000, vec![0xAA; 64], 0x10_0000, 0x1000, 7)
    }

    #[test]
    fn ram_read_write_roundtrip_le() {
        let mut bus = test_bus(Endian::Little);
        bus.write(0x10_0000, 4, 0xDEAD_BEEF).unwrap();
        assert_eq!(bus.read(0x10_0000, 4).unwrap(), 0xDEAD_BEEF);
        assert_eq!(bus.read(0x10_0000, 1).unwrap(), 0xEF);
        assert_eq!(bus.read(0x10_0002, 2).unwrap(), 0xDEAD);
    }

    #[test]
    fn ram_read_write_roundtrip_be() {
        let mut bus = test_bus(Endian::Big);
        bus.write(0x10_0000, 4, 0xDEAD_BEEF).unwrap();
        assert_eq!(bus.read(0x10_0000, 4).unwrap(), 0xDEAD_BEEF);
        assert_eq!(bus.read(0x10_0000, 1).unwrap(), 0xDE);
        assert_eq!(bus.read(0x10_0002, 2).unwrap(), 0xBEEF);
    }

    #[test]
    fn null_page_faults() {
        let mut bus = test_bus(Endian::Little);
        assert_eq!(bus.read(0x10, 4), Err(Fault::NullPage { addr: 0x10, is_write: false }));
        assert_eq!(bus.write(0x0, 4, 1), Err(Fault::NullPage { addr: 0x0, is_write: true }));
    }

    #[test]
    fn rom_is_read_only() {
        let mut bus = test_bus(Endian::Little);
        assert_eq!(bus.read(0x1_0000, 1).unwrap(), 0xAA);
        assert_eq!(bus.write(0x1_0000, 1, 0), Err(Fault::RomWrite { addr: 0x1_0000 }));
    }

    #[test]
    fn misaligned_access_faults() {
        let mut bus = test_bus(Endian::Little);
        assert_eq!(bus.read(0x10_0001, 4), Err(Fault::Misaligned { addr: 0x10_0001, size: 4 }));
        assert_eq!(bus.read(0x10_0001, 2), Err(Fault::Misaligned { addr: 0x10_0001, size: 2 }));
        // Byte accesses are never misaligned.
        assert!(bus.read(0x10_0001, 1).is_ok());
    }

    #[test]
    fn unmapped_faults() {
        let mut bus = test_bus(Endian::Little);
        assert_eq!(
            bus.read(0x8000_0000, 4),
            Err(Fault::Unmapped { addr: 0x8000_0000, is_write: false })
        );
    }

    #[test]
    fn region_boundary_is_exact() {
        let mut bus = test_bus(Endian::Little);
        // Last word of RAM is accessible; one past is not.
        assert!(bus.write(0x10_0FFC, 4, 1).is_ok());
        assert!(bus.write(0x10_1000, 4, 1).is_err());
        // A 4-byte access straddling the end faults.
        assert!(bus.read(0x10_0FFC, 4).is_ok());
        assert!(bus.read(0x10_1000 - 2, 2).is_ok());
    }

    #[test]
    fn mmio_dispatch() {
        let mut bus = test_bus(Endian::Little);
        let mmio = 0xF000_0000;
        bus.write(mmio, 4, u32::from(b'x')).unwrap();
        assert_eq!(bus.devices.uart.take_output(), b"x");
        assert!(bus.is_mmio(mmio));
        assert!(!bus.is_mmio(0x10_0000));
    }

    #[test]
    fn fetch_from_rom_and_ram() {
        let mut bus = test_bus(Endian::Little);
        assert_eq!(bus.fetch(0x1_0000).unwrap(), 0xAAAA_AAAA);
        bus.write(0x10_0000, 4, 0x1234_5678).unwrap();
        assert_eq!(bus.fetch(0x10_0000).unwrap(), 0x1234_5678);
        assert_eq!(bus.fetch(0x2), Err(Fault::BadFetch { pc: 2 }));
        assert_eq!(bus.fetch(0x9000_0000), Err(Fault::BadFetch { pc: 0x9000_0000 }));
    }

    #[test]
    fn host_bulk_access() {
        let mut bus = test_bus(Endian::Little);
        bus.write_bytes(0x10_0100, &[1, 2, 3, 4]).unwrap();
        let mut buf = [0u8; 4];
        bus.read_bytes(0x10_0100, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
        // Bulk reads can also see ROM.
        let mut rom_buf = [0u8; 2];
        bus.read_bytes(0x1_0000, &mut rom_buf).unwrap();
        assert_eq!(rom_buf, [0xAA, 0xAA]);
        // Bulk writes cannot touch ROM.
        assert!(bus.write_bytes(0x1_0000, &[0]).is_err());
    }

    #[test]
    fn misalignment_at_device_boundaries() {
        let mut bus = test_bus(Endian::Little);
        let mmio = 0xF000_0000;
        // Halfword/word accesses at odd offsets inside the window fault as
        // misaligned before any device sees them.
        for (addr, size) in [(mmio + 0x101, 2u8), (mmio + 0x102, 4), (mmio + 0x3FE, 4)] {
            assert_eq!(bus.read(addr, size), Err(Fault::Misaligned { addr, size }));
            assert_eq!(bus.write(addr, size, 1), Err(Fault::Misaligned { addr, size }));
        }
        // The exact first and last aligned words of the window dispatch.
        assert!(bus.read(mmio, 4).is_ok());
        assert!(bus.read(mmio + 0x0FFC, 4).is_ok());
        // One word past the window is unmapped, not a device.
        assert_eq!(
            bus.read(mmio + 0x1000, 4),
            Err(Fault::Unmapped { addr: mmio + 0x1000, is_write: false })
        );
    }

    #[test]
    fn rom_write_and_null_guard_faults() {
        let mut bus = test_bus(Endian::Little);
        // Every size of ROM store faults as RomWrite at the exact address.
        for size in [1u8, 2, 4] {
            assert_eq!(bus.write(0x1_0004, size, 0), Err(Fault::RomWrite { addr: 0x1_0004 }));
        }
        // Null-guard faults cover the whole guard page, reads and writes.
        assert_eq!(bus.read(0xFFC, 4), Err(Fault::NullPage { addr: 0xFFC, is_write: false }));
        assert_eq!(bus.write(0xFFC, 4, 1), Err(Fault::NullPage { addr: 0xFFC, is_write: true }));
        // First byte past the guard is merely unmapped.
        assert_eq!(bus.read(0x1000, 4), Err(Fault::Unmapped { addr: 0x1000, is_write: false }));
    }

    #[test]
    fn bulk_access_straddling_a_region_boundary_faults_at_exact_byte() {
        let mut bus = test_bus(Endian::Little);
        // RAM is 0x10_0000..0x10_1000: a 8-byte read starting 4 bytes
        // before the end faults at the first byte past RAM, not the base.
        let mut buf = [0u8; 8];
        assert_eq!(
            bus.read_bytes(0x10_0FFC, &mut buf),
            Err(Fault::Unmapped { addr: 0x10_1000, is_write: false })
        );
        assert_eq!(
            bus.write_bytes(0x10_0FFC, &buf),
            Err(Fault::Unmapped { addr: 0x10_1000, is_write: true })
        );
        // ROM is 0x1_0000..0x1_0040: a straddling bulk read faults at the
        // first byte past ROM.
        let mut rom_buf = [0u8; 0x50];
        assert_eq!(
            bus.read_bytes(0x1_0000, &mut rom_buf),
            Err(Fault::Unmapped { addr: 0x1_0040, is_write: false })
        );
        // A range starting outside everything still faults at its base.
        assert_eq!(
            bus.read_bytes(0x8000_0000, &mut buf),
            Err(Fault::Unmapped { addr: 0x8000_0000, is_write: false })
        );
        assert_eq!(
            bus.read_bytes(0x10, &mut buf),
            Err(Fault::NullPage { addr: 0x10, is_write: false })
        );
    }

    #[test]
    fn model_free_region_answers_before_unmapped() {
        let mut bus = test_bus(Endian::Little);
        bus.enable_model_free(0x4000_0000, 0x1000, false);
        let mf = bus.devices.model_free.as_mut().unwrap();
        mf.set_stream(&[0x78, 0x56, 0x34, 0x12]);
        // Inside the region: served from the stream instead of faulting.
        assert_eq!(bus.read_at(0x4000_0010, 4, 0x100).unwrap(), 0x1234_5678);
        // Writes are absorbed.
        bus.write_at(0x4000_0010, 4, 7, 0x104).unwrap();
        assert_eq!(bus.devices.model_free.as_ref().unwrap().stats.writes, 1);
        // Outside the region: still unmapped.
        assert_eq!(
            bus.read(0x5000_0000, 4),
            Err(Fault::Unmapped { addr: 0x5000_0000, is_write: false })
        );
        // RAM and the device window are untouched by the fallback.
        bus.write(0x10_0000, 4, 9).unwrap();
        assert_eq!(bus.read(0x10_0000, 4).unwrap(), 9);
        bus.write(0xF000_0000, 4, u32::from(b'y')).unwrap();
        assert_eq!(bus.devices.uart.take_output(), b"y");
    }

    #[test]
    fn withheld_window_falls_through_to_model_free() {
        let mut bus = test_bus(Endian::Little);
        bus.enable_model_free(0xF000_0000, 0x1000, true);
        assert!(bus.mmio_is_withheld());
        bus.devices.model_free.as_mut().unwrap().set_stream(&[0xAB, 0, 0, 0]);
        // A guest UART write no longer reaches the device...
        bus.write_at(0xF000_0000, 4, u32::from(b'z'), 0x200).unwrap();
        assert!(bus.devices.uart.take_output().is_empty());
        // ...and reads come from the stream, not device registers.
        assert_eq!(bus.read_at(0xF000_0100, 4, 0x204).unwrap(), 0xAB);
    }
}
