//! The decoded EV32 instruction form.

use super::Reg;

/// A decoded EV32 instruction.
///
/// Immediates are stored in *byte* units where they denote addresses or
/// offsets: branch and jump offsets are pc-relative byte offsets that must be
/// multiples of 4 (the encoder scales them to word offsets). `Lui`/`Auipc`
/// immediates are the full 32-bit value with the low 12 bits clear.
///
/// # Example
///
/// ```
/// use embsan_emu::isa::{Insn, Reg};
///
/// let insn = Insn::Addi { rd: Reg::R1, rs1: Reg::R0, imm: 42 };
/// let word = insn.encode();
/// assert_eq!(Insn::decode(word)?, insn);
/// # Ok::<(), embsan_emu::isa::DecodeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Insn {
    // Register-register ALU.
    Add {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Sub {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    And {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Or {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Xor {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Sll {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Srl {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Sra {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Mul {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Mulh {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Divu {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Remu {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Slt {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Sltu {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },

    // Register-immediate ALU (12-bit signed immediate unless noted).
    Addi {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Andi {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Ori {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Xori {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    /// Shift left logical by constant (`0..32`).
    Slli {
        rd: Reg,
        rs1: Reg,
        shamt: u8,
    },
    /// Shift right logical by constant (`0..32`).
    Srli {
        rd: Reg,
        rs1: Reg,
        shamt: u8,
    },
    /// Shift right arithmetic by constant (`0..32`).
    Srai {
        rd: Reg,
        rs1: Reg,
        shamt: u8,
    },
    Slti {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Sltiu {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },

    /// `rd = imm` where `imm` has its low 12 bits clear (20-bit upper value).
    Lui {
        rd: Reg,
        imm: u32,
    },
    /// `rd = pc + imm` where `imm` has its low 12 bits clear.
    Auipc {
        rd: Reg,
        imm: u32,
    },

    // Loads: `rd = mem[rs1 + imm]`.
    Lb {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Lbu {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Lh {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Lhu {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Lw {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },

    // Stores: `mem[rs1 + imm] = rs2`.
    Sb {
        rs2: Reg,
        rs1: Reg,
        imm: i32,
    },
    Sh {
        rs2: Reg,
        rs1: Reg,
        imm: i32,
    },
    Sw {
        rs2: Reg,
        rs1: Reg,
        imm: i32,
    },

    /// Atomic fetch-add on a word: `rd = mem[rs1]; mem[rs1] += rs2`.
    AmoAddW {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// Atomic swap on a word: `rd = mem[rs1]; mem[rs1] = rs2`.
    AmoSwpW {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },

    // Conditional branches: pc-relative byte offset, multiple of 4.
    Beq {
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    Bne {
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    Blt {
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    Bltu {
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    Bge {
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    Bgeu {
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },

    /// Jump and link: `rd = pc + 4; pc += offset` (byte offset, multiple of 4).
    Jal {
        rd: Reg,
        offset: i32,
    },
    /// Indirect jump and link: `rd = pc + 4; pc = (rs1 + imm) & !3`.
    Jalr {
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },

    /// Software trap into the guest kernel: `EPC = pc + 4; pc = TVEC`,
    /// with the trap cause CSR set to `code`.
    Ecall {
        code: u16,
    },
    /// Return from trap: `pc = EPC`.
    Eret,

    /// Hypercall to the host (the paper's `vmcall` analogue). `nr` selects the
    /// host-side function; argument passing is an architecture-profile
    /// convention. Executes as a no-op when no hypercall hook is installed,
    /// which is exactly the "dummy sanitizer library" behaviour of §3.2.
    Hyper {
        nr: u32,
    },

    /// Read a control/status register: `rd = csr[idx]`.
    Csrr {
        rd: Reg,
        idx: u16,
    },
    /// Write a control/status register: `csr[idx] = rs1`.
    Csrw {
        rs1: Reg,
        idx: u16,
    },

    /// Stop the whole machine with an exit code.
    Halt {
        code: u16,
    },
    /// Idle hint: relinquish the remainder of this vCPU's scheduling quantum.
    Wfi,
    Nop,
    /// Memory fence (a scheduling barrier on this in-order model).
    Fence,
    /// Debug breakpoint; raises a fault.
    Brk,
}

impl Insn {
    /// Whether the instruction reads or writes guest memory (and is therefore
    /// a sanitizer-sensitive operation in the sense of §3.3).
    pub fn is_mem_access(&self) -> bool {
        matches!(
            self,
            Insn::Lb { .. }
                | Insn::Lbu { .. }
                | Insn::Lh { .. }
                | Insn::Lhu { .. }
                | Insn::Lw { .. }
                | Insn::Sb { .. }
                | Insn::Sh { .. }
                | Insn::Sw { .. }
                | Insn::AmoAddW { .. }
                | Insn::AmoSwpW { .. }
        )
    }

    /// Whether the instruction ends a translation block (changes control flow
    /// or machine state in a way the block translator cannot look past).
    pub fn ends_block(&self) -> bool {
        matches!(
            self,
            Insn::Beq { .. }
                | Insn::Bne { .. }
                | Insn::Blt { .. }
                | Insn::Bltu { .. }
                | Insn::Bge { .. }
                | Insn::Bgeu { .. }
                | Insn::Jal { .. }
                | Insn::Jalr { .. }
                | Insn::Ecall { .. }
                | Insn::Eret
                | Insn::Halt { .. }
                | Insn::Wfi
                | Insn::Brk
        )
    }
}
