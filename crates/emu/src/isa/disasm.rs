//! Textual disassembly of EV32 instructions.
//!
//! The output grammar matches what the `embsan-asm` text assembler accepts,
//! so `disasm → assemble` round-trips (used by the binary-firmware prober to
//! present candidate allocator functions to the tester).

use super::insn::Insn;

impl std::fmt::Display for Insn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Insn::Add { rd, rs1, rs2 } => write!(f, "add {rd}, {rs1}, {rs2}"),
            Insn::Sub { rd, rs1, rs2 } => write!(f, "sub {rd}, {rs1}, {rs2}"),
            Insn::And { rd, rs1, rs2 } => write!(f, "and {rd}, {rs1}, {rs2}"),
            Insn::Or { rd, rs1, rs2 } => write!(f, "or {rd}, {rs1}, {rs2}"),
            Insn::Xor { rd, rs1, rs2 } => write!(f, "xor {rd}, {rs1}, {rs2}"),
            Insn::Sll { rd, rs1, rs2 } => write!(f, "sll {rd}, {rs1}, {rs2}"),
            Insn::Srl { rd, rs1, rs2 } => write!(f, "srl {rd}, {rs1}, {rs2}"),
            Insn::Sra { rd, rs1, rs2 } => write!(f, "sra {rd}, {rs1}, {rs2}"),
            Insn::Mul { rd, rs1, rs2 } => write!(f, "mul {rd}, {rs1}, {rs2}"),
            Insn::Mulh { rd, rs1, rs2 } => write!(f, "mulh {rd}, {rs1}, {rs2}"),
            Insn::Divu { rd, rs1, rs2 } => write!(f, "divu {rd}, {rs1}, {rs2}"),
            Insn::Remu { rd, rs1, rs2 } => write!(f, "remu {rd}, {rs1}, {rs2}"),
            Insn::Slt { rd, rs1, rs2 } => write!(f, "slt {rd}, {rs1}, {rs2}"),
            Insn::Sltu { rd, rs1, rs2 } => write!(f, "sltu {rd}, {rs1}, {rs2}"),
            Insn::Addi { rd, rs1, imm } => write!(f, "addi {rd}, {rs1}, {imm}"),
            Insn::Andi { rd, rs1, imm } => write!(f, "andi {rd}, {rs1}, {imm}"),
            Insn::Ori { rd, rs1, imm } => write!(f, "ori {rd}, {rs1}, {imm}"),
            Insn::Xori { rd, rs1, imm } => write!(f, "xori {rd}, {rs1}, {imm}"),
            Insn::Slli { rd, rs1, shamt } => write!(f, "slli {rd}, {rs1}, {shamt}"),
            Insn::Srli { rd, rs1, shamt } => write!(f, "srli {rd}, {rs1}, {shamt}"),
            Insn::Srai { rd, rs1, shamt } => write!(f, "srai {rd}, {rs1}, {shamt}"),
            Insn::Slti { rd, rs1, imm } => write!(f, "slti {rd}, {rs1}, {imm}"),
            Insn::Sltiu { rd, rs1, imm } => write!(f, "sltiu {rd}, {rs1}, {imm}"),
            Insn::Lui { rd, imm } => write!(f, "lui {rd}, {imm:#x}"),
            Insn::Auipc { rd, imm } => write!(f, "auipc {rd}, {imm:#x}"),
            Insn::Lb { rd, rs1, imm } => write!(f, "lb {rd}, [{rs1}{imm:+}]"),
            Insn::Lbu { rd, rs1, imm } => write!(f, "lbu {rd}, [{rs1}{imm:+}]"),
            Insn::Lh { rd, rs1, imm } => write!(f, "lh {rd}, [{rs1}{imm:+}]"),
            Insn::Lhu { rd, rs1, imm } => write!(f, "lhu {rd}, [{rs1}{imm:+}]"),
            Insn::Lw { rd, rs1, imm } => write!(f, "lw {rd}, [{rs1}{imm:+}]"),
            Insn::Sb { rs2, rs1, imm } => write!(f, "sb {rs2}, [{rs1}{imm:+}]"),
            Insn::Sh { rs2, rs1, imm } => write!(f, "sh {rs2}, [{rs1}{imm:+}]"),
            Insn::Sw { rs2, rs1, imm } => write!(f, "sw {rs2}, [{rs1}{imm:+}]"),
            Insn::AmoAddW { rd, rs1, rs2 } => write!(f, "amoadd.w {rd}, [{rs1}], {rs2}"),
            Insn::AmoSwpW { rd, rs1, rs2 } => write!(f, "amoswp.w {rd}, [{rs1}], {rs2}"),
            Insn::Beq { rs1, rs2, offset } => write!(f, "beq {rs1}, {rs2}, {offset:+}"),
            Insn::Bne { rs1, rs2, offset } => write!(f, "bne {rs1}, {rs2}, {offset:+}"),
            Insn::Blt { rs1, rs2, offset } => write!(f, "blt {rs1}, {rs2}, {offset:+}"),
            Insn::Bltu { rs1, rs2, offset } => write!(f, "bltu {rs1}, {rs2}, {offset:+}"),
            Insn::Bge { rs1, rs2, offset } => write!(f, "bge {rs1}, {rs2}, {offset:+}"),
            Insn::Bgeu { rs1, rs2, offset } => write!(f, "bgeu {rs1}, {rs2}, {offset:+}"),
            Insn::Jal { rd, offset } => write!(f, "jal {rd}, {offset:+}"),
            Insn::Jalr { rd, rs1, imm } => write!(f, "jalr {rd}, {rs1}, {imm}"),
            Insn::Ecall { code } => write!(f, "ecall {code}"),
            Insn::Eret => write!(f, "eret"),
            Insn::Hyper { nr } => write!(f, "hyper {nr}"),
            Insn::Csrr { rd, idx } => write!(f, "csrr {rd}, {idx}"),
            Insn::Csrw { rs1, idx } => write!(f, "csrw {rs1}, {idx}"),
            Insn::Halt { code } => write!(f, "halt {code}"),
            Insn::Wfi => write!(f, "wfi"),
            Insn::Nop => write!(f, "nop"),
            Insn::Fence => write!(f, "fence"),
            Insn::Brk => write!(f, "brk"),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::isa::{Insn, Reg};

    #[test]
    fn display_forms() {
        assert_eq!(
            Insn::Add { rd: Reg::R1, rs1: Reg::R2, rs2: Reg::R3 }.to_string(),
            "add r1, r2, r3"
        );
        assert_eq!(Insn::Lw { rd: Reg::R1, rs1: Reg::SP, imm: -4 }.to_string(), "lw r1, [r13-4]");
        assert_eq!(Insn::Sw { rs2: Reg::R2, rs1: Reg::R3, imm: 8 }.to_string(), "sw r2, [r3+8]");
        assert_eq!(Insn::Hyper { nr: 3 }.to_string(), "hyper 3");
    }
}
