//! Binary encoding and decoding of EV32 instructions.
//!
//! All instructions are 32 bits wide:
//!
//! ```text
//!  31      24 23  20 19  16 15  12 11           0
//! +----------+------+------+------+--------------+
//! |  opcode  |  rd  | rs1  | rs2  |    imm12     |   R/I/S/B-type
//! +----------+------+------+------+--------------+
//! |  opcode  |  rd  |          imm20             |   U/J-type
//! +----------+------+----------------------------+
//! ```
//!
//! Branch and jump immediates are stored as *word* offsets (byte offset / 4),
//! giving branches a ±8 KiB range and `jal` a ±2 MiB range.

use super::insn::Insn;
use super::{Reg, Word};

/// Error returned when a word does not decode to a valid EV32 instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The undecodable word.
    pub word: Word,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid instruction word {:#010x}", self.word.0)
    }
}

impl std::error::Error for DecodeError {}

// Opcode space. Grouped by format for decoder clarity.
mod op {
    pub const ADD: u8 = 0x01;
    pub const SUB: u8 = 0x02;
    pub const AND: u8 = 0x03;
    pub const OR: u8 = 0x04;
    pub const XOR: u8 = 0x05;
    pub const SLL: u8 = 0x06;
    pub const SRL: u8 = 0x07;
    pub const SRA: u8 = 0x08;
    pub const MUL: u8 = 0x09;
    pub const MULH: u8 = 0x0A;
    pub const DIVU: u8 = 0x0B;
    pub const REMU: u8 = 0x0C;
    pub const SLT: u8 = 0x0D;
    pub const SLTU: u8 = 0x0E;

    pub const ADDI: u8 = 0x10;
    pub const ANDI: u8 = 0x11;
    pub const ORI: u8 = 0x12;
    pub const XORI: u8 = 0x13;
    pub const SLLI: u8 = 0x14;
    pub const SRLI: u8 = 0x15;
    pub const SRAI: u8 = 0x16;
    pub const SLTI: u8 = 0x17;
    pub const SLTIU: u8 = 0x18;

    pub const LUI: u8 = 0x20;
    pub const AUIPC: u8 = 0x21;

    pub const LB: u8 = 0x30;
    pub const LBU: u8 = 0x31;
    pub const LH: u8 = 0x32;
    pub const LHU: u8 = 0x33;
    pub const LW: u8 = 0x34;
    pub const SB: u8 = 0x38;
    pub const SH: u8 = 0x39;
    pub const SW: u8 = 0x3A;
    pub const AMOADDW: u8 = 0x3C;
    pub const AMOSWPW: u8 = 0x3D;

    pub const BEQ: u8 = 0x40;
    pub const BNE: u8 = 0x41;
    pub const BLT: u8 = 0x42;
    pub const BLTU: u8 = 0x43;
    pub const BGE: u8 = 0x44;
    pub const BGEU: u8 = 0x45;
    pub const JAL: u8 = 0x48;
    pub const JALR: u8 = 0x49;

    pub const ECALL: u8 = 0x50;
    pub const ERET: u8 = 0x51;
    pub const HYPER: u8 = 0x52;
    pub const CSRR: u8 = 0x53;
    pub const CSRW: u8 = 0x54;
    pub const HALT: u8 = 0x55;
    pub const WFI: u8 = 0x56;
    pub const NOP: u8 = 0x57;
    pub const FENCE: u8 = 0x58;
    pub const BRK: u8 = 0x59;
}

/// Signed 12-bit immediate range check.
fn imm12(value: i32) -> u32 {
    assert!((-2048..2048).contains(&value), "immediate {value} does not fit in 12 bits");
    (value as u32) & 0xFFF
}

/// Unsigned 12-bit immediate range check (logical immediates are
/// zero-extended so `lui + ori` can synthesize any 32-bit constant).
fn uimm12(value: i32) -> u32 {
    assert!((0..4096).contains(&value), "unsigned immediate {value} does not fit in 12 bits");
    value as u32
}

/// Signed 20-bit immediate range check.
fn imm20(value: i32) -> u32 {
    assert!((-(1 << 19)..(1 << 19)).contains(&value), "immediate {value} does not fit in 20 bits");
    (value as u32) & 0xF_FFFF
}

fn sign_extend(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

fn rtype(opcode: u8, rd: Reg, rs1: Reg, rs2: Reg) -> Word {
    Word(
        u32::from(opcode) << 24
            | (rd.index() as u32) << 20
            | (rs1.index() as u32) << 16
            | (rs2.index() as u32) << 12,
    )
}

fn itype(opcode: u8, rd: Reg, rs1: Reg, imm: i32) -> Word {
    Word(
        u32::from(opcode) << 24
            | (rd.index() as u32) << 20
            | (rs1.index() as u32) << 16
            | imm12(imm),
    )
}

fn itype_u(opcode: u8, rd: Reg, rs1: Reg, imm: i32) -> Word {
    Word(
        u32::from(opcode) << 24
            | (rd.index() as u32) << 20
            | (rs1.index() as u32) << 16
            | uimm12(imm),
    )
}

fn stype(opcode: u8, rs2: Reg, rs1: Reg, imm: i32) -> Word {
    Word(
        u32::from(opcode) << 24
            | (rs1.index() as u32) << 16
            | (rs2.index() as u32) << 12
            | imm12(imm),
    )
}

fn btype(opcode: u8, rs1: Reg, rs2: Reg, offset: i32) -> Word {
    assert!(offset % 4 == 0, "branch offset {offset} is not word-aligned");
    Word(
        u32::from(opcode) << 24
            | (rs1.index() as u32) << 16
            | (rs2.index() as u32) << 12
            | imm12(offset / 4),
    )
}

fn utype(opcode: u8, rd: Reg, imm: u32) -> Word {
    assert!(imm & 0xFFF == 0, "upper immediate {imm:#x} has low bits set");
    Word(u32::from(opcode) << 24 | (rd.index() as u32) << 20 | imm >> 12)
}

fn jtype(opcode: u8, rd: Reg, offset: i32) -> Word {
    assert!(offset % 4 == 0, "jump offset {offset} is not word-aligned");
    Word(u32::from(opcode) << 24 | (rd.index() as u32) << 20 | imm20(offset / 4))
}

fn shift(opcode: u8, rd: Reg, rs1: Reg, shamt: u8) -> Word {
    assert!(shamt < 32, "shift amount {shamt} out of range");
    itype(opcode, rd, rs1, i32::from(shamt))
}

impl Insn {
    /// Encodes the instruction into a raw word.
    ///
    /// # Panics
    ///
    /// Panics if an immediate is out of range for its field, a branch/jump
    /// offset is not word-aligned, or a shift amount is ≥ 32. The assembler
    /// in `embsan-asm` validates these before encoding.
    pub fn encode(self) -> Word {
        use op::*;
        match self {
            Insn::Add { rd, rs1, rs2 } => rtype(ADD, rd, rs1, rs2),
            Insn::Sub { rd, rs1, rs2 } => rtype(SUB, rd, rs1, rs2),
            Insn::And { rd, rs1, rs2 } => rtype(AND, rd, rs1, rs2),
            Insn::Or { rd, rs1, rs2 } => rtype(OR, rd, rs1, rs2),
            Insn::Xor { rd, rs1, rs2 } => rtype(XOR, rd, rs1, rs2),
            Insn::Sll { rd, rs1, rs2 } => rtype(SLL, rd, rs1, rs2),
            Insn::Srl { rd, rs1, rs2 } => rtype(SRL, rd, rs1, rs2),
            Insn::Sra { rd, rs1, rs2 } => rtype(SRA, rd, rs1, rs2),
            Insn::Mul { rd, rs1, rs2 } => rtype(MUL, rd, rs1, rs2),
            Insn::Mulh { rd, rs1, rs2 } => rtype(MULH, rd, rs1, rs2),
            Insn::Divu { rd, rs1, rs2 } => rtype(DIVU, rd, rs1, rs2),
            Insn::Remu { rd, rs1, rs2 } => rtype(REMU, rd, rs1, rs2),
            Insn::Slt { rd, rs1, rs2 } => rtype(SLT, rd, rs1, rs2),
            Insn::Sltu { rd, rs1, rs2 } => rtype(SLTU, rd, rs1, rs2),

            Insn::Addi { rd, rs1, imm } => itype(ADDI, rd, rs1, imm),
            Insn::Andi { rd, rs1, imm } => itype_u(ANDI, rd, rs1, imm),
            Insn::Ori { rd, rs1, imm } => itype_u(ORI, rd, rs1, imm),
            Insn::Xori { rd, rs1, imm } => itype_u(XORI, rd, rs1, imm),
            Insn::Slli { rd, rs1, shamt } => shift(SLLI, rd, rs1, shamt),
            Insn::Srli { rd, rs1, shamt } => shift(SRLI, rd, rs1, shamt),
            Insn::Srai { rd, rs1, shamt } => shift(SRAI, rd, rs1, shamt),
            Insn::Slti { rd, rs1, imm } => itype(SLTI, rd, rs1, imm),
            Insn::Sltiu { rd, rs1, imm } => itype(SLTIU, rd, rs1, imm),

            Insn::Lui { rd, imm } => utype(LUI, rd, imm),
            Insn::Auipc { rd, imm } => utype(AUIPC, rd, imm),

            Insn::Lb { rd, rs1, imm } => itype(LB, rd, rs1, imm),
            Insn::Lbu { rd, rs1, imm } => itype(LBU, rd, rs1, imm),
            Insn::Lh { rd, rs1, imm } => itype(LH, rd, rs1, imm),
            Insn::Lhu { rd, rs1, imm } => itype(LHU, rd, rs1, imm),
            Insn::Lw { rd, rs1, imm } => itype(LW, rd, rs1, imm),
            Insn::Sb { rs2, rs1, imm } => stype(SB, rs2, rs1, imm),
            Insn::Sh { rs2, rs1, imm } => stype(SH, rs2, rs1, imm),
            Insn::Sw { rs2, rs1, imm } => stype(SW, rs2, rs1, imm),
            Insn::AmoAddW { rd, rs1, rs2 } => rtype(AMOADDW, rd, rs1, rs2),
            Insn::AmoSwpW { rd, rs1, rs2 } => rtype(AMOSWPW, rd, rs1, rs2),

            Insn::Beq { rs1, rs2, offset } => btype(BEQ, rs1, rs2, offset),
            Insn::Bne { rs1, rs2, offset } => btype(BNE, rs1, rs2, offset),
            Insn::Blt { rs1, rs2, offset } => btype(BLT, rs1, rs2, offset),
            Insn::Bltu { rs1, rs2, offset } => btype(BLTU, rs1, rs2, offset),
            Insn::Bge { rs1, rs2, offset } => btype(BGE, rs1, rs2, offset),
            Insn::Bgeu { rs1, rs2, offset } => btype(BGEU, rs1, rs2, offset),
            Insn::Jal { rd, offset } => jtype(JAL, rd, offset),
            Insn::Jalr { rd, rs1, imm } => itype(JALR, rd, rs1, imm),

            Insn::Ecall { code } => Word(u32::from(ECALL) << 24 | u32::from(code)),
            Insn::Eret => Word(u32::from(ERET) << 24),
            Insn::Hyper { nr } => {
                assert!(nr < (1 << 20), "hypercall number {nr} does not fit in 20 bits");
                Word(u32::from(HYPER) << 24 | nr)
            }
            Insn::Csrr { rd, idx } => {
                Word(u32::from(CSRR) << 24 | (rd.index() as u32) << 20 | u32::from(idx))
            }
            Insn::Csrw { rs1, idx } => {
                Word(u32::from(CSRW) << 24 | (rs1.index() as u32) << 16 | u32::from(idx))
            }
            Insn::Halt { code } => Word(u32::from(HALT) << 24 | u32::from(code)),
            Insn::Wfi => Word(u32::from(WFI) << 24),
            Insn::Nop => Word(u32::from(NOP) << 24),
            Insn::Fence => Word(u32::from(FENCE) << 24),
            Insn::Brk => Word(u32::from(BRK) << 24),
        }
    }

    /// Decodes a raw word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the opcode byte is not assigned or reserved
    /// fields are non-zero in a way that cannot round-trip.
    pub fn decode(word: Word) -> Result<Insn, DecodeError> {
        use op::*;
        let w = word.0;
        let opcode = (w >> 24) as u8;
        let rd = Reg::from_index(((w >> 20) & 0xF) as u8);
        let rs1 = Reg::from_index(((w >> 16) & 0xF) as u8);
        let rs2 = Reg::from_index(((w >> 12) & 0xF) as u8);
        let i12 = sign_extend(w & 0xFFF, 12);
        let i20 = sign_extend(w & 0xF_FFFF, 20);
        let boff = i12 * 4;

        let insn = match opcode {
            ADD => Insn::Add { rd, rs1, rs2 },
            SUB => Insn::Sub { rd, rs1, rs2 },
            AND => Insn::And { rd, rs1, rs2 },
            OR => Insn::Or { rd, rs1, rs2 },
            XOR => Insn::Xor { rd, rs1, rs2 },
            SLL => Insn::Sll { rd, rs1, rs2 },
            SRL => Insn::Srl { rd, rs1, rs2 },
            SRA => Insn::Sra { rd, rs1, rs2 },
            MUL => Insn::Mul { rd, rs1, rs2 },
            MULH => Insn::Mulh { rd, rs1, rs2 },
            DIVU => Insn::Divu { rd, rs1, rs2 },
            REMU => Insn::Remu { rd, rs1, rs2 },
            SLT => Insn::Slt { rd, rs1, rs2 },
            SLTU => Insn::Sltu { rd, rs1, rs2 },

            ADDI => Insn::Addi { rd, rs1, imm: i12 },
            ANDI => Insn::Andi { rd, rs1, imm: (w & 0xFFF) as i32 },
            ORI => Insn::Ori { rd, rs1, imm: (w & 0xFFF) as i32 },
            XORI => Insn::Xori { rd, rs1, imm: (w & 0xFFF) as i32 },
            SLLI => Insn::Slli { rd, rs1, shamt: (w & 0x1F) as u8 },
            SRLI => Insn::Srli { rd, rs1, shamt: (w & 0x1F) as u8 },
            SRAI => Insn::Srai { rd, rs1, shamt: (w & 0x1F) as u8 },
            SLTI => Insn::Slti { rd, rs1, imm: i12 },
            SLTIU => Insn::Sltiu { rd, rs1, imm: i12 },

            LUI => Insn::Lui { rd, imm: (w & 0xF_FFFF) << 12 },
            AUIPC => Insn::Auipc { rd, imm: (w & 0xF_FFFF) << 12 },

            LB => Insn::Lb { rd, rs1, imm: i12 },
            LBU => Insn::Lbu { rd, rs1, imm: i12 },
            LH => Insn::Lh { rd, rs1, imm: i12 },
            LHU => Insn::Lhu { rd, rs1, imm: i12 },
            LW => Insn::Lw { rd, rs1, imm: i12 },
            SB => Insn::Sb { rs2, rs1, imm: i12 },
            SH => Insn::Sh { rs2, rs1, imm: i12 },
            SW => Insn::Sw { rs2, rs1, imm: i12 },
            AMOADDW => Insn::AmoAddW { rd, rs1, rs2 },
            AMOSWPW => Insn::AmoSwpW { rd, rs1, rs2 },

            BEQ => Insn::Beq { rs1, rs2, offset: boff },
            BNE => Insn::Bne { rs1, rs2, offset: boff },
            BLT => Insn::Blt { rs1, rs2, offset: boff },
            BLTU => Insn::Bltu { rs1, rs2, offset: boff },
            BGE => Insn::Bge { rs1, rs2, offset: boff },
            BGEU => Insn::Bgeu { rs1, rs2, offset: boff },
            JAL => Insn::Jal { rd, offset: i20 * 4 },
            JALR => Insn::Jalr { rd, rs1, imm: i12 },

            ECALL => Insn::Ecall { code: (w & 0xFFFF) as u16 },
            ERET => Insn::Eret,
            HYPER => Insn::Hyper { nr: w & 0xF_FFFF },
            CSRR => Insn::Csrr { rd, idx: (w & 0xFFFF) as u16 },
            CSRW => Insn::Csrw { rs1, idx: (w & 0xFFFF) as u16 },
            HALT => Insn::Halt { code: (w & 0xFFFF) as u16 },
            WFI => Insn::Wfi,
            NOP => Insn::Nop,
            FENCE => Insn::Fence,
            BRK => Insn::Brk,
            _ => return Err(DecodeError { word }),
        };
        Ok(insn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_insns() -> Vec<Insn> {
        use Reg::*;
        vec![
            Insn::Add { rd: R1, rs1: R2, rs2: R3 },
            Insn::Sub { rd: R15, rs1: R13, rs2: R0 },
            Insn::Mulh { rd: R7, rs1: R8, rs2: R9 },
            Insn::Addi { rd: R1, rs1: R0, imm: -2048 },
            Insn::Addi { rd: R1, rs1: R0, imm: 2047 },
            Insn::Slli { rd: R4, rs1: R4, shamt: 31 },
            Insn::Srai { rd: R4, rs1: R4, shamt: 0 },
            Insn::Lui { rd: R5, imm: 0xFFFF_F000 },
            Insn::Auipc { rd: R5, imm: 0x0001_2000 },
            Insn::Lw { rd: R6, rs1: R13, imm: -4 },
            Insn::Sb { rs2: R6, rs1: R13, imm: 12 },
            Insn::AmoSwpW { rd: R1, rs1: R2, rs2: R3 },
            Insn::Beq { rs1: R1, rs2: R2, offset: -8192 },
            Insn::Bgeu { rs1: R1, rs2: R2, offset: 8188 },
            Insn::Jal { rd: R15, offset: -(1 << 21) },
            Insn::Jal { rd: R0, offset: (1 << 21) - 4 },
            Insn::Jalr { rd: R0, rs1: R15, imm: 0 },
            Insn::Ecall { code: 0xBEEF },
            Insn::Eret,
            Insn::Hyper { nr: 0xF_FFFF },
            Insn::Csrr { rd: R3, idx: 7 },
            Insn::Csrw { rs1: R3, idx: 7 },
            Insn::Halt { code: 42 },
            Insn::Wfi,
            Insn::Nop,
            Insn::Fence,
            Insn::Brk,
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for insn in sample_insns() {
            let word = insn.encode();
            assert_eq!(Insn::decode(word), Ok(insn), "roundtrip failed for {insn:?}");
        }
    }

    #[test]
    fn bad_opcode_rejected() {
        assert!(Insn::decode(Word(0xFF00_0000)).is_err());
        assert!(Insn::decode(Word(0x0000_0000)).is_err());
    }

    #[test]
    #[should_panic(expected = "does not fit in 12 bits")]
    fn immediate_overflow_panics() {
        let _ = Insn::Addi { rd: Reg::R1, rs1: Reg::R0, imm: 4096 }.encode();
    }

    #[test]
    #[should_panic(expected = "not word-aligned")]
    fn misaligned_branch_panics() {
        let _ = Insn::Beq { rs1: Reg::R1, rs2: Reg::R2, offset: 6 }.encode();
    }

    #[test]
    fn mem_access_classification() {
        assert!(Insn::Lw { rd: Reg::R1, rs1: Reg::R2, imm: 0 }.is_mem_access());
        assert!(Insn::AmoAddW { rd: Reg::R1, rs1: Reg::R2, rs2: Reg::R3 }.is_mem_access());
        assert!(!Insn::Add { rd: Reg::R1, rs1: Reg::R2, rs2: Reg::R3 }.is_mem_access());
    }

    #[test]
    fn block_end_classification() {
        assert!(Insn::Jal { rd: Reg::R0, offset: 0 }.ends_block());
        assert!(Insn::Halt { code: 0 }.ends_block());
        assert!(!Insn::Lw { rd: Reg::R1, rs1: Reg::R2, imm: 0 }.ends_block());
    }
}
