//! The EV32 instruction set architecture.
//!
//! EV32 is a 32-bit RISC ISA with sixteen general-purpose registers and
//! fixed-width 32-bit instructions. It exists in three *architecture
//! profiles* ([`crate::profile::Arch`]) that share the instruction set but
//! differ in memory endianness, hypercall conventions and platform layout —
//! mirroring the paper's x86/ARM/MIPS targets, whose differences (from the
//! sanitizer's point of view) are exactly of this kind.
//!
//! The module is split into:
//! - [`Reg`]: register names and ABI aliases,
//! - [`Insn`]: the decoded instruction form,
//! - [`Word`]: a raw 32-bit instruction word with endian-aware byte I/O,
//! - `codec`: binary encode/decode,
//! - `disasm`: textual disassembly.

mod codec;
mod disasm;
mod insn;

pub use codec::DecodeError;
pub use insn::Insn;

use crate::profile::Endian;

/// A general-purpose register identifier (`r0`–`r15`).
///
/// `r0` is hardwired to zero. The base ABI used by all shipped firmware
/// assigns: `r1`–`r6` argument/scratch (`r1` also return value), `r7`–`r10`
/// callee-saved, `r11` instrumentation link register, `r12` instrumentation
/// scratch, `r13` stack pointer, `r14` thread pointer, `r15` link register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Reg {
    R0 = 0,
    R1 = 1,
    R2 = 2,
    R3 = 3,
    R4 = 4,
    R5 = 5,
    R6 = 6,
    R7 = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

impl Reg {
    /// The hardwired zero register.
    pub const ZERO: Reg = Reg::R0;
    /// First argument / return value register.
    pub const A0: Reg = Reg::R1;
    /// Second argument register.
    pub const A1: Reg = Reg::R2;
    /// Third argument register.
    pub const A2: Reg = Reg::R3;
    /// Fourth argument register.
    pub const A3: Reg = Reg::R4;
    /// Fifth argument register.
    pub const A4: Reg = Reg::R5;
    /// Sixth argument register.
    pub const A5: Reg = Reg::R6;
    /// Instrumentation scratch register (reserved by the EMBSAN-C pass).
    pub const SCRATCH: Reg = Reg::R12;
    /// Stack pointer.
    pub const SP: Reg = Reg::R13;
    /// Thread pointer (current task control block).
    pub const TP: Reg = Reg::R14;
    /// Link register.
    pub const LR: Reg = Reg::R15;

    /// All sixteen registers in index order.
    pub const ALL: [Reg; 16] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// Returns the register with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16`.
    pub fn from_index(index: u8) -> Reg {
        Reg::ALL[usize::from(index)]
    }

    /// The register's index, `0..16`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The canonical assembly name (`r0`–`r15`).
    pub fn name(self) -> &'static str {
        const NAMES: [&str; 16] = [
            "r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9", "r10", "r11", "r12", "r13",
            "r14", "r15",
        ];
        NAMES[self.index()]
    }

    /// Parses a register name, accepting both `rN` numerals and ABI aliases
    /// (`zero`, `a0`–`a5`, `sp`, `tp`, `lr`, `scratch`).
    pub fn parse(name: &str) -> Option<Reg> {
        let reg = match name {
            "zero" => Reg::ZERO,
            "a0" => Reg::A0,
            "a1" => Reg::A1,
            "a2" => Reg::A2,
            "a3" => Reg::A3,
            "a4" => Reg::A4,
            "a5" => Reg::A5,
            "sp" => Reg::SP,
            "tp" => Reg::TP,
            "lr" => Reg::LR,
            "scratch" => Reg::SCRATCH,
            _ => {
                let idx: u8 = name.strip_prefix('r')?.parse().ok()?;
                if idx >= 16 {
                    return None;
                }
                Reg::from_index(idx)
            }
        };
        Some(reg)
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A raw 32-bit instruction word.
///
/// The bit layout of a `Word` is endian-independent; only the in-memory byte
/// order differs between profiles, which is why [`Word::to_bytes`] and
/// [`Word::from_bytes`] take an [`Endian`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Word(pub u32);

impl Word {
    /// Serializes the word into guest memory byte order.
    pub fn to_bytes(self, endian: Endian) -> [u8; 4] {
        match endian {
            Endian::Little => self.0.to_le_bytes(),
            Endian::Big => self.0.to_be_bytes(),
        }
    }

    /// Reads a word from guest memory byte order.
    pub fn from_bytes(bytes: [u8; 4], endian: Endian) -> Word {
        Word(match endian {
            Endian::Little => u32::from_le_bytes(bytes),
            Endian::Big => u32::from_be_bytes(bytes),
        })
    }
}

impl std::fmt::LowerHex for Word {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u32> for Word {
    fn from(value: u32) -> Word {
        Word(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip_names() {
        for reg in Reg::ALL {
            assert_eq!(Reg::parse(reg.name()), Some(reg));
        }
    }

    #[test]
    fn reg_aliases() {
        assert_eq!(Reg::parse("sp"), Some(Reg::R13));
        assert_eq!(Reg::parse("lr"), Some(Reg::R15));
        assert_eq!(Reg::parse("a0"), Some(Reg::R1));
        assert_eq!(Reg::parse("zero"), Some(Reg::R0));
        assert_eq!(Reg::parse("r16"), None);
        assert_eq!(Reg::parse("x3"), None);
    }

    #[test]
    fn word_endianness() {
        let w = Word(0x1234_5678);
        assert_eq!(w.to_bytes(Endian::Little), [0x78, 0x56, 0x34, 0x12]);
        assert_eq!(w.to_bytes(Endian::Big), [0x12, 0x34, 0x56, 0x78]);
        assert_eq!(Word::from_bytes(w.to_bytes(Endian::Big), Endian::Big), w);
        assert_eq!(Word::from_bytes(w.to_bytes(Endian::Little), Endian::Little), w);
    }
}
