//! Execution hooks: the interface through which the EMBSAN runtime, the
//! platform prober and the fuzzers observe and steer guest execution.
//!
//! A [`HookConfig`] declares which events the hook wants; the machine's block
//! translator uses it to decide which probes to splice into translated code
//! (changing the configuration flushes the translation cache — the analogue
//! of re-generating TCG templates in §3.3).

use crate::bus::MemAccess;
use crate::cpu::CpuView;
use crate::error::Fault;

/// Which probe classes the translator should arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HookConfig {
    /// Probe every load/store/atomic with [`ExecHook::mem_access`].
    pub mem: bool,
    /// Deliver `hyper` instructions to [`ExecHook::hypercall`].
    pub hypercalls: bool,
    /// Report translation-block entries to [`ExecHook::block_enter`].
    pub blocks: bool,
    /// Report calls (`jal`/`jalr` writing the link register) and returns
    /// (`jalr` through the link register) to [`ExecHook::call`] / [`ExecHook::ret`].
    pub calls: bool,
}

impl HookConfig {
    /// A configuration with every probe class armed.
    pub fn all() -> HookConfig {
        HookConfig { mem: true, hypercalls: true, blocks: true, calls: true }
    }

    /// A configuration with no probes armed.
    pub fn none() -> HookConfig {
        HookConfig::default()
    }
}

/// The hook's verdict on an intercepted event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HookAction {
    /// Continue execution normally.
    Continue,
    /// Stall this vCPU until `instrs` further instructions have retired on
    /// the machine (other vCPUs keep running). When the stall expires,
    /// [`ExecHook::stall_expired`] is called with `token`. Used by the KCSAN
    /// engine's watchpoint windows.
    Stall { instrs: u64, token: u64 },
    /// Stop the machine; [`crate::machine::RunExit::Stopped`] is returned.
    Stop,
}

/// Observer/controller of guest execution.
///
/// All methods have no-op defaults so implementations only override what
/// they need. Events are only delivered if the corresponding [`HookConfig`]
/// flag was set when the machine's hook configuration was installed.
#[allow(unused_variables)]
pub trait ExecHook {
    /// A sanitizer-sensitive memory access is about to execute.
    ///
    /// For stores, `access.value` is the value being written. The access has
    /// not yet reached the bus; returning [`HookAction::Stop`] prevents it.
    fn mem_access(&mut self, cpu: &mut CpuView<'_>, access: &MemAccess) -> HookAction {
        HookAction::Continue
    }

    /// A `hyper` instruction executed with hypercall number `nr`.
    ///
    /// Argument registers are profile-specific; the EMBSAN runtime
    /// reconstructs them via the platform spec. With no hook (or hypercalls
    /// unarmed) `hyper` is a no-op — the "dummy sanitizer library" behaviour.
    fn hypercall(&mut self, cpu: &mut CpuView<'_>, nr: u32) -> HookAction {
        HookAction::Continue
    }

    /// Execution entered the translation block starting at `pc`.
    fn block_enter(&mut self, cpu: &mut CpuView<'_>, pc: u32) {}

    /// A call instruction is transferring to `target`; the return address is
    /// `ret_to`. Used by EMBSAN-D to intercept allocator functions.
    fn call(&mut self, cpu: &mut CpuView<'_>, target: u32, ret_to: u32) {}

    /// A return instruction is transferring to `target`.
    fn ret(&mut self, cpu: &mut CpuView<'_>, target: u32) {}

    /// A stall previously requested via [`HookAction::Stall`] has expired.
    fn stall_expired(&mut self, cpu: &mut CpuView<'_>, token: u64) {}

    /// The vCPU raised a fault. The machine stops after this callback.
    fn fault(&mut self, cpu: &mut CpuView<'_>, fault: Fault) {}
}

/// A hook that observes nothing; useful for unsanitized baseline runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullHook;

impl ExecHook for NullHook {}

/// Combines a controlling hook with a passive observer.
///
/// The `primary` hook's [`HookAction`]s steer execution; the `observer`
/// sees the same events but its verdicts are ignored. Used to attach a
/// fuzzer's coverage collector alongside the sanitizer runtime.
pub struct CombinedHook<'a> {
    /// The controlling hook.
    pub primary: &'a mut dyn ExecHook,
    /// The passive observer.
    pub observer: &'a mut dyn ExecHook,
}

impl ExecHook for CombinedHook<'_> {
    fn mem_access(&mut self, cpu: &mut CpuView<'_>, access: &MemAccess) -> HookAction {
        let _ = self.observer.mem_access(cpu, access);
        self.primary.mem_access(cpu, access)
    }

    fn hypercall(&mut self, cpu: &mut CpuView<'_>, nr: u32) -> HookAction {
        let _ = self.observer.hypercall(cpu, nr);
        self.primary.hypercall(cpu, nr)
    }

    fn block_enter(&mut self, cpu: &mut CpuView<'_>, pc: u32) {
        self.observer.block_enter(cpu, pc);
        self.primary.block_enter(cpu, pc);
    }

    fn call(&mut self, cpu: &mut CpuView<'_>, target: u32, ret_to: u32) {
        self.observer.call(cpu, target, ret_to);
        self.primary.call(cpu, target, ret_to);
    }

    fn ret(&mut self, cpu: &mut CpuView<'_>, target: u32) {
        self.observer.ret(cpu, target);
        self.primary.ret(cpu, target);
    }

    fn stall_expired(&mut self, cpu: &mut CpuView<'_>, token: u64) {
        self.primary.stall_expired(cpu, token);
    }

    fn fault(&mut self, cpu: &mut CpuView<'_>, fault: Fault) {
        self.observer.fault(cpu, fault);
        self.primary.fault(cpu, fault);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_constructors() {
        assert!(HookConfig::all().mem);
        assert!(HookConfig::all().calls);
        assert!(!HookConfig::none().mem);
        assert_eq!(HookConfig::default(), HookConfig::none());
    }
}
