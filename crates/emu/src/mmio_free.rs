//! Model-free MMIO: answering unknown-peripheral reads from fuzzer input.
//!
//! Real firmware talks to peripherals we have no model for. Instead of
//! faulting (or demanding a platform DSL entry), an Ember-IO-style layer
//! serves reads from an "unknown MMIO" region out of a fuzzer-controlled
//! *response stream*, with a per-(pc, addr) response cache refined by guest
//! progress:
//!
//! * Every read site is identified by `(pc, addr)` — the instruction doing
//!   the read and the register it reads. The same driver poll loop is one
//!   site; two different drivers reading the same register are two sites.
//! * A response drawn from the stream is *pending* for its site. When the
//!   guest moves on to a different read site, the pending response is
//!   *committed* to the cache: the value let the guest make progress past
//!   the read, so it is a good answer for that site from now on.
//! * A read that repeats the site it just read (a poll that did not
//!   advance — the guest is stalled on this register) *invalidates* any
//!   committed response for the site and draws a fresh value from the
//!   stream: the cached answer stopped working, so the fuzzer gets to pick
//!   a new one. Exhausted streams serve zeroes, which parks pollers on
//!   "not ready" until the machine goes idle.
//! * Writes to the region are absorbed (and counted); unknown peripherals
//!   have no host-visible side effects.
//!
//! Everything here is a pure function of the read/write sequence and the
//! stream bytes — no host randomness, wall time or allocation order leaks
//! into responses. The whole struct lives inside the snapshotted device
//! set, so kill/resume and N-worker determinism hold with no extra
//! bookkeeping: a restored snapshot restores the cache, the stream and the
//! cursor exactly.

use std::collections::BTreeMap;

/// Consecutive same-site reads allowed to hit the cache before the cached
/// response is declared stale. The first repeat already bypasses the
/// cache (see module docs); this constant exists so the policy is named,
/// tested and stable rather than implicit.
pub const STALL_INVALIDATE_AFTER: u32 = 1;

/// Deterministic counters describing how the region answered the guest.
/// Part of the snapshotted state: byte-identical across replays.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModelFreeStats {
    /// Guest reads served by the region.
    pub reads: u64,
    /// Reads answered from a committed cache entry.
    pub cache_hits: u64,
    /// Reads answered by drawing fresh bytes from the stream (including
    /// zero-fill draws past the end of the stream).
    pub stream_draws: u64,
    /// Pending responses committed because the guest progressed to a
    /// different read site.
    pub commits: u64,
    /// Committed responses invalidated by a stalled (repeated) read site.
    pub invalidations: u64,
    /// Guest writes absorbed by the region.
    pub writes: u64,
}

/// A fuzzer-controlled MMIO region serving reads from a response stream
/// with per-(pc, addr) caching and progress-based refinement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelFreeMmio {
    base: u32,
    size: u32,
    /// The response stream: raw bytes consumed little-endian, `size` bytes
    /// per fresh draw. Reads past the end are zero-filled.
    stream: Vec<u8>,
    /// Cursor into `stream`.
    cursor: usize,
    /// Committed responses per read site.
    cache: BTreeMap<(u32, u32), u32>,
    /// The last fresh draw, not yet committed: `(site, value)`.
    pending: Option<((u32, u32), u32)>,
    /// The most recent read site (progress/stall detection).
    last_site: Option<(u32, u32)>,
    /// Deterministic service counters.
    pub stats: ModelFreeStats,
}

impl ModelFreeMmio {
    /// Creates a region covering `base..base+size` with an empty stream.
    pub fn new(base: u32, size: u32) -> ModelFreeMmio {
        ModelFreeMmio {
            base,
            size,
            stream: Vec::new(),
            cursor: 0,
            cache: BTreeMap::new(),
            pending: None,
            last_site: None,
            stats: ModelFreeStats::default(),
        }
    }

    /// The region as `(base, size)`.
    pub fn range(&self) -> (u32, u32) {
        (self.base, self.size)
    }

    /// Whether `addr..addr+size` falls entirely inside the region.
    pub fn contains(&self, addr: u32, size: u32) -> bool {
        addr >= self.base
            && u64::from(addr) + u64::from(size) <= u64::from(self.base) + u64::from(self.size)
    }

    /// Replaces the response stream and rewinds the cursor. The cache and
    /// refinement state persist: responses learned while booting keep
    /// answering boot-time pollers while the new stream feeds new sites.
    pub fn set_stream(&mut self, bytes: &[u8]) {
        self.stream = bytes.to_vec();
        self.cursor = 0;
    }

    /// Unconsumed bytes left in the response stream.
    pub fn stream_remaining(&self) -> usize {
        self.stream.len().saturating_sub(self.cursor)
    }

    /// Number of committed cache entries.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// The committed response for `(pc, addr)`, if any (test/telemetry
    /// introspection).
    pub fn cached(&self, pc: u32, addr: u32) -> Option<u32> {
        self.cache.get(&(pc, addr)).copied()
    }

    fn draw(&mut self, size: u8) -> u32 {
        self.stats.stream_draws += 1;
        let mut value: u32 = 0;
        for i in 0..usize::from(size) {
            let byte = self.stream.get(self.cursor).copied().unwrap_or(0);
            if self.cursor < self.stream.len() {
                self.cursor += 1;
            }
            value |= u32::from(byte) << (8 * i);
        }
        value
    }

    /// Serves a guest read of `size` bytes at `addr` from instruction `pc`.
    pub fn read(&mut self, pc: u32, addr: u32, size: u8) -> u32 {
        self.stats.reads += 1;
        let site = (pc, addr);
        if self.last_site == Some(site) {
            // Stalled poll: the site repeated without progress, so any
            // committed answer stopped working. Drop it and draw fresh.
            if self.cache.remove(&site).is_some() {
                self.stats.invalidations += 1;
            }
            let value = self.draw(size);
            self.pending = Some((site, value));
            return value;
        }
        // Progress past the previous read site: its pending response
        // earned its place in the cache.
        if let Some((prev_site, value)) = self.pending.take() {
            if prev_site != site {
                self.cache.insert(prev_site, value);
                self.stats.commits += 1;
            }
        }
        self.last_site = Some(site);
        if let Some(&value) = self.cache.get(&site) {
            self.stats.cache_hits += 1;
            return value;
        }
        let value = self.draw(size);
        self.pending = Some((site, value));
        value
    }

    /// Absorbs a guest write (unknown peripherals have no modelled side
    /// effects; the write is counted for telemetry).
    pub fn write(&mut self, _pc: u32, _addr: u32, _value: u32) {
        self.stats.writes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_reads_draw_from_stream_in_order() {
        let mut mf = ModelFreeMmio::new(0x4000_0000, 0x1000);
        mf.set_stream(&[0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88]);
        assert_eq!(mf.read(0x100, 0x4000_0000, 4), 0x4433_2211);
        assert_eq!(mf.read(0x104, 0x4000_0004, 4), 0x8877_6655);
        // Exhausted stream zero-fills.
        assert_eq!(mf.read(0x108, 0x4000_0008, 4), 0);
        assert_eq!(mf.stats.stream_draws, 3);
    }

    #[test]
    fn progress_commits_and_repolls_hit_the_cache() {
        let mut mf = ModelFreeMmio::new(0, 0x100);
        mf.set_stream(&[7, 0, 0, 0, 9, 0, 0, 0]);
        assert_eq!(mf.read(0x10, 0x0, 4), 7); // pending for site A
        assert_eq!(mf.read(0x20, 0x4, 4), 9); // progress → A committed
        assert_eq!(mf.cached(0x10, 0x0), Some(7));
        // Back to A from somewhere new: committed answer, no draw.
        assert_eq!(mf.read(0x10, 0x0, 4), 7);
        assert_eq!(mf.stats.cache_hits, 1);
        assert_eq!(mf.stats.commits, 2); // B committed on the return to A
    }

    #[test]
    fn stalled_site_invalidates_and_redraws() {
        let mut mf = ModelFreeMmio::new(0, 0x100);
        mf.set_stream(&[1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0]);
        assert_eq!(mf.read(0x10, 0x0, 4), 1);
        // Same site again: a stalled poll draws fresh each time.
        assert_eq!(mf.read(0x10, 0x0, 4), 2);
        assert_eq!(mf.read(0x10, 0x0, 4), 3);
        assert_eq!(mf.read(0x10, 0x0, 4), 0, "exhausted stream parks the poller on zero");
        assert_eq!(mf.stats.invalidations, 0, "nothing was committed yet");
        // Commit via progress, then stall: the commit is invalidated.
        mf.set_stream(&[0xAB, 0, 0, 0]);
        let _ = mf.read(0x20, 0x4, 4); // commits the zero pending for site A
        assert_eq!(mf.read(0x10, 0x0, 4), 0, "committed answer first");
        assert_eq!(mf.read(0x10, 0x0, 4), 0, "stall invalidates, draws stream leftovers");
        assert!(mf.stats.invalidations >= 1);
    }

    #[test]
    fn identical_sequences_are_identical() {
        let run = || {
            let mut mf = ModelFreeMmio::new(0, 0x100);
            mf.set_stream(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
            let mut out = Vec::new();
            for (pc, addr, size) in
                [(0x10, 0x0, 4u8), (0x10, 0x0, 4), (0x14, 0x4, 2), (0x10, 0x0, 1), (0x14, 0x4, 2)]
            {
                out.push(mf.read(pc, addr, size));
            }
            mf.write(0x18, 0x8, 0xFFFF_FFFF);
            (out, mf)
        };
        let (a_out, a) = run();
        let (b_out, b) = run();
        assert_eq!(a_out, b_out);
        assert_eq!(a, b, "full state (cache, cursor, stats) must match");
    }

    #[test]
    fn containment_is_exact() {
        let mf = ModelFreeMmio::new(0x4000_0000, 0x1000);
        assert!(mf.contains(0x4000_0000, 4));
        assert!(mf.contains(0x4000_0FFC, 4));
        assert!(!mf.contains(0x4000_0FFE, 4));
        assert!(!mf.contains(0x3FFF_FFFC, 4));
        assert!(!mf.contains(0x4000_1000, 1));
    }
}
