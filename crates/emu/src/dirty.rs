//! Page-granular dirty tracking for O(dirty-pages) snapshot restore.
//!
//! A [`DirtyPages`] bitmap records which pages of a byte buffer have been
//! written since the last restore. Restoring a snapshot then copies only
//! the dirty pages from the pristine image instead of the whole buffer,
//! which turns per-iteration reset cost from O(RAM) into O(touched state).
//! The bus uses it for guest RAM; the sanitizer runtime reuses it for its
//! shadow and uninit-bit planes (hence the configurable page shift).

/// Page shift used for guest RAM dirty tracking (4 KiB pages).
pub const RAM_PAGE_SHIFT: u32 = 12;

/// A bitmap of dirty pages over a byte buffer of fixed length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirtyPages {
    bits: Vec<u64>,
    page_shift: u32,
}

impl DirtyPages {
    /// Creates a tracker covering `covered_bytes` with pages of
    /// `1 << page_shift` bytes. All pages start clean.
    pub fn new(covered_bytes: usize, page_shift: u32) -> DirtyPages {
        let pages = covered_bytes.div_ceil(1usize << page_shift);
        DirtyPages { bits: vec![0; pages.div_ceil(64)], page_shift }
    }

    /// Marks the page containing byte `offset` dirty.
    ///
    /// Accesses of up to a page that are size-aligned cannot straddle a
    /// page boundary, so the bus marks a single page per aligned store.
    #[inline]
    pub fn mark(&mut self, offset: usize) {
        let page = offset >> self.page_shift;
        self.bits[page >> 6] |= 1u64 << (page & 63);
    }

    /// Marks every page overlapping `offset..offset + len` dirty.
    #[inline]
    pub fn mark_range(&mut self, offset: usize, len: usize) {
        if len == 0 {
            return;
        }
        let first = offset >> self.page_shift;
        let last = (offset + len - 1) >> self.page_shift;
        for page in first..=last {
            self.bits[page >> 6] |= 1u64 << (page & 63);
        }
    }

    /// Marks every page clean.
    pub fn clear(&mut self) {
        self.bits.fill(0);
    }

    /// Number of dirty pages.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Copies every dirty page of `src` into `dst` and marks it clean.
    ///
    /// Correct only under the restore invariant: `dst` differs from `src`
    /// at most on pages marked dirty since the last full copy of `src`
    /// into `dst` (or the last [`DirtyPages::restore_from`]).
    pub fn restore_from(&mut self, dst: &mut [u8], src: &[u8]) {
        debug_assert_eq!(dst.len(), src.len());
        let page_size = 1usize << self.page_shift;
        for (word_index, word) in self.bits.iter_mut().enumerate() {
            let mut pending = *word;
            while pending != 0 {
                let page = word_index * 64 + pending.trailing_zeros() as usize;
                pending &= pending - 1;
                let start = page << self.page_shift;
                let end = (start + page_size).min(dst.len());
                dst[start..end].copy_from_slice(&src[start..end]);
            }
            *word = 0;
        }
    }

    /// Calls `f` with each dirty page index and marks it clean. The
    /// copy-on-write restore path uses this to visit exactly the overlay
    /// pages that diverged from the base since the last restore.
    pub fn drain(&mut self, mut f: impl FnMut(usize)) {
        for (word_index, word) in self.bits.iter_mut().enumerate() {
            let mut pending = *word;
            while pending != 0 {
                let page = word_index * 64 + pending.trailing_zeros() as usize;
                pending &= pending - 1;
                f(page);
            }
            *word = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restore_copies_only_dirty_pages() {
        let src = vec![0xAAu8; 3 * 4096 + 100];
        let mut dst = src.clone();
        let mut dirty = DirtyPages::new(dst.len(), RAM_PAGE_SHIFT);
        dst[0] = 1;
        dst[4096] = 2;
        dst[3 * 4096 + 99] = 3; // partial tail page
        dirty.mark(0);
        dirty.mark(4096);
        dirty.mark(3 * 4096 + 99);
        assert_eq!(dirty.count(), 3);
        dirty.restore_from(&mut dst, &src);
        assert_eq!(dst, src);
        assert_eq!(dirty.count(), 0);
    }

    #[test]
    fn unmarked_pages_are_not_restored() {
        let src = vec![0u8; 2 * 4096];
        let mut dst = src.clone();
        let mut dirty = DirtyPages::new(dst.len(), RAM_PAGE_SHIFT);
        dst[4096] = 7; // dirty but never marked: restore must skip it
        dirty.mark(0);
        dirty.restore_from(&mut dst, &src);
        assert_eq!(dst[4096], 7);
    }

    #[test]
    fn mark_range_spans_pages() {
        let src = vec![0u8; 4 * 4096];
        let mut dst = src.clone();
        let mut dirty = DirtyPages::new(dst.len(), RAM_PAGE_SHIFT);
        for byte in dst[4000..9000].iter_mut() {
            *byte = 0xFF;
        }
        dirty.mark_range(4000, 5000); // touches pages 0, 1, 2
        assert_eq!(dirty.count(), 3);
        dirty.restore_from(&mut dst, &src);
        assert_eq!(dst, src);
    }

    #[test]
    fn zero_length_range_marks_nothing() {
        let mut dirty = DirtyPages::new(4096, RAM_PAGE_SHIFT);
        dirty.mark_range(100, 0);
        assert_eq!(dirty.count(), 0);
    }

    #[test]
    fn drain_visits_each_dirty_page_once_and_clears() {
        let mut dirty = DirtyPages::new(70 * 4096, RAM_PAGE_SHIFT);
        dirty.mark(0);
        dirty.mark(5 * 4096 + 17);
        dirty.mark(69 * 4096); // second bitmap word
        let mut seen = Vec::new();
        dirty.drain(|page| seen.push(page));
        assert_eq!(seen, vec![0, 5, 69]);
        assert_eq!(dirty.count(), 0);
    }

    #[test]
    fn smaller_pages_cover_fine_grained_planes() {
        let src = vec![0u8; 1024];
        let mut dst = src.clone();
        let mut dirty = DirtyPages::new(dst.len(), 8); // 256-byte pages
        dst[300] = 1;
        dirty.mark(300);
        dirty.restore_from(&mut dst, &src);
        assert_eq!(dst, src);
    }
}
