//! Virtual CPU state and the hook-facing CPU view.

use crate::bus::Bus;
use crate::error::Fault;
use crate::isa::Reg;

/// Control/status register indices.
///
/// CSRs are accessed by the `csrr`/`csrw` instructions and by host tooling
/// through [`Cpu::csr`] / [`Cpu::set_csr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum Csr {
    /// This vCPU's index (read-only to the guest).
    Cpuid = 0,
    /// Trap vector: target of `ecall` and interrupts.
    Tvec = 1,
    /// Exception PC: return address for `eret`.
    Epc = 2,
    /// Trap cause: `ecall` code, or [`Cpu::CAUSE_TIMER_IRQ`].
    Cause = 3,
    /// Interrupt enable (non-zero enables timer interrupts).
    Ie = 4,
    /// Retired-instruction counter, low 32 bits (read-only to the guest).
    Cycle = 5,
    /// Number of vCPUs in the machine (read-only to the guest).
    Ncpus = 6,
}

const CSR_COUNT: usize = 8;

/// The general-purpose register file. `r0` reads as zero and ignores writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Regs([u32; 16]);

impl Regs {
    /// Reads a register (`r0` always reads zero).
    pub fn read(&self, reg: Reg) -> u32 {
        if reg == Reg::ZERO {
            0
        } else {
            self.0[reg.index()]
        }
    }

    /// Writes a register (writes to `r0` are discarded).
    pub fn write(&mut self, reg: Reg, value: u32) {
        if reg != Reg::ZERO {
            self.0[reg.index()] = value;
        }
    }
}

/// One virtual CPU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cpu {
    /// General-purpose registers.
    pub regs: Regs,
    /// Program counter.
    pub pc: u32,
    csrs: [u32; CSR_COUNT],
    /// Parked by `wfi` until the next wake event.
    pub(crate) parked: bool,
    /// Stalled (by a sanitizer watchpoint) until the machine's global retired
    /// counter reaches this value.
    pub(crate) stalled_until: Option<u64>,
    /// Token passed back to the hook when the stall expires.
    pub(crate) stall_token: u64,
    /// Pending timer interrupt.
    pub(crate) irq_pending: bool,
    /// Wedged by an injected [`crate::fault::FaultKind::StuckCpu`] fault:
    /// retires instructions without making progress until a snapshot
    /// restore replaces this vCPU's state.
    pub(crate) wedged: bool,
    /// Instructions retired by this vCPU.
    pub retired: u64,
}

impl Cpu {
    /// Trap cause value for a timer interrupt.
    pub const CAUSE_TIMER_IRQ: u32 = 0x8000_0000;

    /// Creates a vCPU with the given index, starting at `entry`.
    pub fn new(index: usize, ncpus: usize, entry: u32) -> Cpu {
        let mut csrs = [0u32; CSR_COUNT];
        csrs[Csr::Cpuid as usize] = index as u32;
        csrs[Csr::Ncpus as usize] = ncpus as u32;
        Cpu {
            regs: Regs::default(),
            pc: entry,
            csrs,
            parked: false,
            stalled_until: None,
            stall_token: 0,
            irq_pending: false,
            wedged: false,
            retired: 0,
        }
    }

    /// Whether the vCPU is wedged by an injected stuck-at fault.
    pub fn is_wedged(&self) -> bool {
        self.wedged
    }

    /// This vCPU's index.
    pub fn index(&self) -> usize {
        self.csrs[Csr::Cpuid as usize] as usize
    }

    /// Reads a CSR by typed name.
    pub fn csr(&self, csr: Csr) -> u32 {
        self.csrs[csr as usize]
    }

    /// Writes a CSR by typed name (host side; no read-only enforcement).
    pub fn set_csr(&mut self, csr: Csr, value: u32) {
        self.csrs[csr as usize] = value;
    }

    /// Guest-side CSR read by raw index; unknown CSRs read zero.
    pub(crate) fn csr_read(&self, idx: u16) -> u32 {
        match idx {
            x if x == Csr::Cycle as u16 => self.retired as u32,
            x if (x as usize) < CSR_COUNT => self.csrs[x as usize],
            _ => 0,
        }
    }

    /// Guest-side CSR write by raw index; read-only and unknown CSRs are
    /// silently ignored (matching typical embedded core behaviour).
    pub(crate) fn csr_write(&mut self, idx: u16, value: u32) {
        match idx {
            x if x == Csr::Cpuid as u16 || x == Csr::Cycle as u16 || x == Csr::Ncpus as u16 => {}
            x if (x as usize) < CSR_COUNT => self.csrs[x as usize] = value,
            _ => {}
        }
    }

    /// Whether the vCPU is parked by `wfi`.
    pub fn is_parked(&self) -> bool {
        self.parked
    }
}

/// A mutable view of one vCPU plus the bus, handed to [`crate::ExecHook`]
/// callbacks.
///
/// Hooks use the view to reconstruct arguments (read registers, follow
/// pointers into guest memory) and, for hypercalls, to write results back.
pub struct CpuView<'a> {
    /// The vCPU being executed.
    pub cpu: &'a mut Cpu,
    /// The machine's memory bus.
    pub bus: &'a mut Bus,
    /// Global retired-instruction counter across all vCPUs.
    pub global_retired: u64,
}

impl<'a> CpuView<'a> {
    /// Reads a general-purpose register.
    pub fn reg(&self, reg: Reg) -> u32 {
        self.cpu.regs.read(reg)
    }

    /// Writes a general-purpose register.
    pub fn set_reg(&mut self, reg: Reg, value: u32) {
        self.cpu.regs.write(reg, value);
    }

    /// The current program counter.
    pub fn pc(&self) -> u32 {
        self.cpu.pc
    }

    /// The vCPU index.
    pub fn cpu_index(&self) -> usize {
        self.cpu.index()
    }

    /// Reads guest memory without triggering probes (host-side access).
    ///
    /// # Errors
    ///
    /// Propagates bus faults; the hook decides how to handle them.
    pub fn read_mem(&mut self, addr: u32, size: u8) -> Result<u32, Fault> {
        self.bus.read(addr, size)
    }

    /// Bulk-reads guest memory (ROM or RAM) without triggering probes.
    ///
    /// # Errors
    ///
    /// Propagates bus faults.
    pub fn read_bytes(&mut self, addr: u32, buf: &mut [u8]) -> Result<(), Fault> {
        self.bus.read_bytes(addr, buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r0_is_hardwired_zero() {
        let mut regs = Regs::default();
        regs.write(Reg::R0, 0xFFFF);
        assert_eq!(regs.read(Reg::R0), 0);
        regs.write(Reg::R1, 0xFFFF);
        assert_eq!(regs.read(Reg::R1), 0xFFFF);
    }

    #[test]
    fn csr_readonly_from_guest() {
        let mut cpu = Cpu::new(2, 4, 0x1000);
        assert_eq!(cpu.csr_read(Csr::Cpuid as u16), 2);
        assert_eq!(cpu.csr_read(Csr::Ncpus as u16), 4);
        cpu.csr_write(Csr::Cpuid as u16, 9);
        assert_eq!(cpu.csr_read(Csr::Cpuid as u16), 2);
        cpu.csr_write(Csr::Tvec as u16, 0x2000);
        assert_eq!(cpu.csr(Csr::Tvec), 0x2000);
    }

    #[test]
    fn unknown_csrs_are_benign() {
        let mut cpu = Cpu::new(0, 1, 0);
        assert_eq!(cpu.csr_read(999), 0);
        cpu.csr_write(999, 5); // must not panic
    }
}
