//! The full-system machine: vCPUs, bus, translation cache, and the
//! deterministic execution loop.

use std::collections::HashSet;
use std::rc::Rc;

use crate::bus::{Bus, MemAccess, MemKind};
use crate::cpu::{Cpu, CpuView, Csr};
use crate::error::{EmuError, Fault};
use crate::fault::{ArmedPlan, FaultKind, FaultPlan, HangClass, InjectionStats};
use crate::hook::{ExecHook, HookAction, HookConfig};
use crate::isa::{Insn, Reg};
use crate::profile::ArchProfile;
use crate::translate::{call_kind, Block, BlockCache, CallKind};

/// Why a [`Machine::run`] call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// A `halt` instruction or a power-controller write stopped the machine.
    Halted {
        /// Guest-provided exit code.
        code: u16,
    },
    /// A vCPU faulted (after [`ExecHook::fault`] was delivered).
    Faulted {
        /// The fault.
        fault: Fault,
        /// Index of the faulting vCPU.
        cpu: usize,
        /// Program counter of the faulting instruction.
        pc: u32,
    },
    /// The instruction budget was exhausted.
    BudgetExhausted,
    /// A hook returned [`HookAction::Stop`].
    Stopped,
    /// Every vCPU is parked in `wfi` with no interrupt source able to wake it.
    AllIdle,
    /// Execution reached a host breakpoint (the instruction at `pc` has not
    /// executed yet).
    Breakpoint {
        /// The breakpoint address.
        pc: u32,
        /// Index of the vCPU that hit it.
        cpu: usize,
    },
}

/// Builder for [`Machine`].
#[derive(Debug)]
pub struct MachineBuilder {
    profile: ArchProfile,
    rom: Option<(u32, Vec<u8>)>,
    ram: Option<(u32, u32)>,
    cpus: usize,
    quantum: u64,
    entry: Option<u32>,
    rng_seed: u64,
}

impl MachineBuilder {
    /// Starts a builder for the given architecture profile.
    pub fn new(profile: ArchProfile) -> MachineBuilder {
        MachineBuilder {
            profile,
            rom: None,
            ram: None,
            cpus: 1,
            quantum: 1000,
            entry: None,
            rng_seed: 0x5EED,
        }
    }

    /// Installs the boot ROM image at `base`.
    pub fn rom(mut self, base: u32, image: &[u8]) -> MachineBuilder {
        self.rom = Some((base, image.to_vec()));
        self
    }

    /// Installs `size` bytes of zeroed RAM at `base`.
    pub fn ram(mut self, base: u32, size: u32) -> MachineBuilder {
        self.ram = Some((base, size));
        self
    }

    /// Sets the number of vCPUs (default 1).
    pub fn cpus(mut self, count: usize) -> MachineBuilder {
        self.cpus = count;
        self
    }

    /// Sets the round-robin scheduling quantum in instructions (default 1000).
    pub fn quantum(mut self, instructions: u64) -> MachineBuilder {
        self.quantum = instructions;
        self
    }

    /// Sets the boot entry point (default: the ROM base).
    pub fn entry(mut self, pc: u32) -> MachineBuilder {
        self.entry = Some(pc);
        self
    }

    /// Seeds the RNG device (default: a fixed seed; runs are deterministic).
    pub fn rng_seed(mut self, seed: u64) -> MachineBuilder {
        self.rng_seed = seed;
        self
    }

    /// Builds the machine.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::InvalidConfig`] if ROM or RAM is missing, regions
    /// overlap each other / the MMIO window / the null guard page, or the
    /// vCPU count or quantum is zero.
    pub fn build(self) -> Result<Machine, EmuError> {
        let (rom_base, rom) =
            self.rom.ok_or_else(|| EmuError::InvalidConfig("no ROM image".into()))?;
        let (ram_base, ram_size) =
            self.ram.ok_or_else(|| EmuError::InvalidConfig("no RAM region".into()))?;
        if self.cpus == 0 {
            return Err(EmuError::InvalidConfig("machine needs at least one vCPU".into()));
        }
        if self.quantum == 0 {
            return Err(EmuError::InvalidConfig("scheduling quantum must be non-zero".into()));
        }
        let regions = [
            ("rom", u64::from(rom_base), rom.len() as u64),
            ("ram", u64::from(ram_base), u64::from(ram_size)),
            ("mmio", u64::from(self.profile.mmio_base), u64::from(self.profile.mmio_size)),
            ("null-guard", 0, u64::from(crate::bus::NULL_GUARD_END)),
        ];
        for (i, a) in regions.iter().enumerate() {
            for b in regions.iter().skip(i + 1) {
                if a.1 < b.1 + b.2 && b.1 < a.1 + a.2 && a.2 > 0 && b.2 > 0 {
                    return Err(EmuError::InvalidConfig(format!(
                        "{} region overlaps {} region",
                        a.0, b.0
                    )));
                }
            }
        }
        let entry = self.entry.unwrap_or(rom_base);
        let bus = Bus::new(&self.profile, rom_base, rom, ram_base, ram_size, self.rng_seed);
        let cpus = (0..self.cpus).map(|i| Cpu::new(i, self.cpus, entry)).collect();
        Ok(Machine {
            profile: self.profile,
            bus,
            cpus,
            cache: BlockCache::new(),
            quantum: self.quantum,
            global_retired: 0,
            lifetime_retired: 0,
            next_cpu: 0,
            breakpoints: HashSet::new(),
            skip_bp_once: None,
            fault_plan: None,
            injection_stats: InjectionStats::default(),
            tracer: embsan_obs::Tracer::disabled(),
            profiler: embsan_obs::Profiler::disabled(),
        })
    }
}

/// A full-system EV32 machine.
pub struct Machine {
    profile: ArchProfile,
    bus: Bus,
    cpus: Vec<Cpu>,
    cache: BlockCache,
    quantum: u64,
    global_retired: u64,
    /// Monotonic instruction clock: like `global_retired` but never rewound
    /// by snapshot restore. Fault plans trigger against this clock so that
    /// restoring the per-program snapshot cannot replay already-injected
    /// faults.
    lifetime_retired: u64,
    next_cpu: usize,
    breakpoints: HashSet<u32>,
    skip_bp_once: Option<(usize, u32)>,
    fault_plan: Option<ArmedPlan>,
    injection_stats: InjectionStats,
    tracer: embsan_obs::Tracer,
    profiler: embsan_obs::Profiler,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("arch", &self.profile.arch)
            .field("cpus", &self.cpus.len())
            .field("retired", &self.global_retired)
            .finish_non_exhaustive()
    }
}

/// Outcome of one scheduling quantum on one vCPU.
enum QuantumExit {
    Continue,
    Parked,
    Stalled,
    Halt(u16),
    Fault(Fault, u32),
    Stopped,
    Breakpoint(u32),
}

impl Machine {
    /// Starts building a machine for `profile`.
    pub fn builder(profile: ArchProfile) -> MachineBuilder {
        MachineBuilder::new(profile)
    }

    /// The machine's architecture profile.
    pub fn profile(&self) -> &ArchProfile {
        &self.profile
    }

    /// Shared access to the bus (devices, memory ranges).
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// Mutable access to the bus (e.g. to drive the mailbox or read the UART).
    pub fn bus_mut(&mut self) -> &mut Bus {
        &mut self.bus
    }

    /// The vCPU at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn cpu(&self, index: usize) -> &Cpu {
        &self.cpus[index]
    }

    /// Mutable access to the vCPU at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn cpu_mut(&mut self, index: usize) -> &mut Cpu {
        &mut self.cpus[index]
    }

    /// Number of vCPUs.
    pub fn cpu_count(&self) -> usize {
        self.cpus.len()
    }

    /// Total instructions retired across all vCPUs.
    pub fn retired(&self) -> u64 {
        self.global_retired
    }

    pub(crate) fn set_retired(&mut self, value: u64) {
        self.global_retired = value;
    }

    /// Monotonic lifetime instruction clock (never rewound by snapshot
    /// restore); the trigger timebase for fault plans.
    pub fn lifetime_retired(&self) -> u64 {
        self.lifetime_retired
    }

    /// Arms `plan` against the current lifetime clock: event offsets are
    /// relative to this call. Replaces any previously armed plan.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        self.fault_plan = Some(ArmedPlan::arm(plan, self.lifetime_retired));
    }

    /// Disarms any pending fault plan (already-injected faults persist).
    pub fn clear_fault_plan(&mut self) {
        self.fault_plan = None;
    }

    /// Number of fault firings still pending in the armed plan.
    pub fn pending_faults(&self) -> usize {
        self.fault_plan.as_ref().map_or(0, ArmedPlan::pending)
    }

    /// Counters for faults injected so far.
    pub fn injection_stats(&self) -> InjectionStats {
        self.injection_stats
    }

    /// Attaches an observability tracer. The handle is shared with the
    /// translation cache; the machine keeps the tracer's clock pinned to
    /// [`Machine::lifetime_retired`] at scheduling-quantum granularity, so
    /// event tags are a pure function of guest execution. Snapshot restore
    /// does not touch the tracer (like the lifetime clock itself).
    pub fn set_tracer(&mut self, tracer: embsan_obs::Tracer) {
        tracer.set_clock(self.lifetime_retired);
        self.cache.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// The attached tracer (disabled by default).
    pub fn tracer(&self) -> &embsan_obs::Tracer {
        &self.tracer
    }

    /// Attaches a hot-path profiler (shared with the translation cache).
    /// A no-op unless the `embsan-obs/profile` feature is compiled in.
    pub fn set_profiler(&mut self, profiler: embsan_obs::Profiler) {
        self.cache.set_profiler(profiler.clone());
        self.profiler = profiler;
    }

    /// Injects every armed fault whose trigger time has passed.
    fn apply_due_faults(&mut self) {
        let Some(plan) = self.fault_plan.as_mut() else {
            return;
        };
        let due = plan.take_due(self.lifetime_retired);
        for kind in due {
            let label = match kind {
                FaultKind::RamBitFlip { .. } => "ram-bit-flip",
                FaultKind::MmioCorrupt { .. } => "mmio-corrupt",
                FaultKind::SpuriousIrq => "spurious-irq",
                FaultKind::AllocFail { .. } => "alloc-fail",
                FaultKind::StuckCpu { .. } => "stuck-cpu",
            };
            self.tracer.record(embsan_obs::EventKind::FaultInjected { fault: label });
            match kind {
                FaultKind::RamBitFlip { offset, bit } => {
                    let (base, size) = self.bus.ram_range();
                    if offset < size {
                        let addr = base.wrapping_add(offset);
                        // Byte accesses are always aligned; RAM reads and
                        // writes of an in-range byte cannot fault.
                        if let Ok(byte) = self.bus.read(addr, 1) {
                            let _ = self.bus.write(addr, 1, byte ^ (1 << bit));
                            self.injection_stats.ram_bit_flips += 1;
                        }
                    }
                }
                FaultKind::MmioCorrupt { xor, reads } => {
                    self.bus.arm_mmio_corruption(xor, reads);
                    self.injection_stats.mmio_corruptions += 1;
                }
                FaultKind::SpuriousIrq => {
                    for cpu in &mut self.cpus {
                        cpu.irq_pending = true;
                        cpu.parked = false;
                    }
                    self.injection_stats.spurious_irqs += 1;
                }
                FaultKind::AllocFail { count } => {
                    self.bus.devices.fault.arm_alloc_failures(count);
                    self.injection_stats.alloc_failures += 1;
                }
                FaultKind::StuckCpu { cpu } => {
                    if let Some(target) = self.cpus.get_mut(cpu) {
                        target.wedged = true;
                        target.parked = false;
                        self.injection_stats.cpu_wedges += 1;
                    }
                }
            }
        }
    }

    /// Classifies why a guest that exhausted its budget is not progressing,
    /// by running up to `slices` further windows of `slice_budget`
    /// instructions each (without waking parked vCPUs) and watching whether
    /// instructions still retire.
    ///
    /// The caller is expected to discard the machine state afterwards
    /// (typically via snapshot restore): classification executes guest code.
    ///
    /// # Errors
    ///
    /// Propagates [`Machine::run_resume`] errors (currently none).
    pub fn classify_hang(
        &mut self,
        hook: &mut dyn ExecHook,
        slices: u32,
        slice_budget: u64,
    ) -> Result<HangClass, EmuError> {
        for _ in 0..slices.max(1) {
            let before = self.global_retired;
            match self.run_resume(hook, slice_budget.max(1))? {
                RunExit::AllIdle => return Ok(HangClass::WfiIdle),
                RunExit::BudgetExhausted => {
                    if self.global_retired == before {
                        // Nothing retired in the whole window: effectively idle.
                        return Ok(HangClass::WfiIdle);
                    }
                }
                _ => return Ok(HangClass::Responsive),
            }
        }
        Ok(HangClass::LiveLock)
    }

    /// Installs a hook configuration, regenerating translation templates
    /// (flushing the block cache) if it differs from the current one.
    pub fn set_hook_config(&mut self, config: HookConfig) {
        self.cache.reconfigure(config);
    }

    /// The currently installed hook configuration.
    pub fn hook_config(&self) -> HookConfig {
        self.cache.config()
    }

    /// Flushes the translation cache (required after host-side code patching).
    pub fn flush_translation_cache(&mut self) {
        self.cache.flush();
    }

    /// Number of block translations performed so far.
    pub fn translation_count(&self) -> u64 {
        self.cache.translation_count()
    }

    /// Translation-cache counters (hits, misses, generation telemetry).
    pub fn cache_stats(&self) -> crate::translate::CacheStats {
        self.cache.stats()
    }

    /// Adds a host breakpoint: [`Machine::run`] returns
    /// [`RunExit::Breakpoint`] just before executing the instruction at `pc`.
    pub fn add_breakpoint(&mut self, pc: u32) {
        self.breakpoints.insert(pc);
    }

    /// Removes a host breakpoint.
    pub fn remove_breakpoint(&mut self, pc: u32) {
        self.breakpoints.remove(&pc);
    }

    /// Removes every host breakpoint.
    pub fn clear_breakpoints(&mut self) {
        self.breakpoints.clear();
        self.skip_bp_once = None;
    }

    /// Host-side convenience read of guest memory.
    ///
    /// # Errors
    ///
    /// Propagates bus faults as [`EmuError::Fault`].
    pub fn read_mem(&mut self, addr: u32, size: u8) -> Result<u32, EmuError> {
        Ok(self.bus.read(addr, size)?)
    }

    /// Host-side convenience write of guest RAM.
    ///
    /// # Errors
    ///
    /// Propagates bus faults as [`EmuError::Fault`].
    pub fn write_mem(&mut self, addr: u32, size: u8, value: u32) -> Result<(), EmuError> {
        Ok(self.bus.write(addr, size, value)?)
    }

    /// Takes the console output accumulated since the last call.
    pub fn take_console(&mut self) -> Vec<u8> {
        self.bus.devices.uart.take_output()
    }

    /// Runs the machine for at most `budget` instructions, delivering events
    /// to `hook` according to the installed [`HookConfig`].
    ///
    /// Parked (`wfi`) vCPUs are woken on entry, so loading work into the
    /// mailbox and calling `run` again resumes an idle guest.
    ///
    /// # Errors
    ///
    /// This method currently never fails; the `Result` is kept for API
    /// stability. Guest faults are reported via [`RunExit::Faulted`].
    pub fn run(&mut self, hook: &mut dyn ExecHook, budget: u64) -> Result<RunExit, EmuError> {
        for cpu in &mut self.cpus {
            cpu.parked = false;
        }
        self.run_resume(hook, budget)
    }

    /// Like [`Machine::run`] but does not wake parked vCPUs; used to resume
    /// after a breakpoint or stop without disturbing idle CPUs.
    ///
    /// # Errors
    ///
    /// See [`Machine::run`].
    pub fn run_resume(
        &mut self,
        hook: &mut dyn ExecHook,
        budget: u64,
    ) -> Result<RunExit, EmuError> {
        let mut executed_total: u64 = 0;
        loop {
            if executed_total >= budget {
                return Ok(RunExit::BudgetExhausted);
            }
            // Pin the trace clock to the lifetime-retired counter once per
            // quantum: events within a quantum share its start tag and are
            // ordered by sequence number. Quantum boundaries are
            // deterministic, so traces are reproducible.
            self.tracer.set_clock(self.lifetime_retired);
            // Expire stalls whose window has passed.
            for idx in 0..self.cpus.len() {
                if let Some(until) = self.cpus[idx].stalled_until {
                    if until <= self.global_retired {
                        self.cpus[idx].stalled_until = None;
                        let token = self.cpus[idx].stall_token;
                        let mut view = CpuView {
                            cpu: &mut self.cpus[idx],
                            bus: &mut self.bus,
                            global_retired: self.global_retired,
                        };
                        hook.stall_expired(&mut view, token);
                    }
                }
            }
            // `wfi` is a hint: while any vCPU is still runnable, parked
            // vCPUs receive spurious wakes (matching real hardware, where
            // WFI may return at any time). Parking is only binding when the
            // whole machine is idle.
            let any_runnable = self.cpus.iter().any(|c| !c.parked && c.stalled_until.is_none());
            if any_runnable {
                for cpu in &mut self.cpus {
                    if cpu.stalled_until.is_none() {
                        cpu.parked = false;
                    }
                }
            }
            // Pick the next runnable vCPU, round-robin.
            let ncpus = self.cpus.len();
            let runnable = (0..ncpus)
                .map(|off| (self.next_cpu + off) % ncpus)
                .find(|&i| !self.cpus[i].parked && self.cpus[i].stalled_until.is_none());
            let idx = match runnable {
                Some(idx) => idx,
                None => {
                    // Everyone is parked or stalled. If someone is stalled,
                    // fast-forward time to the earliest stall end.
                    if let Some(min_until) = self.cpus.iter().filter_map(|c| c.stalled_until).min()
                    {
                        let skipped = min_until.saturating_sub(self.global_retired);
                        self.global_retired = self.global_retired.max(min_until);
                        self.lifetime_retired += skipped;
                        self.apply_due_faults();
                        continue;
                    }
                    // All parked: only a device interrupt (timer, GPIO
                    // edge, alarm/deferred call) can wake them. Skip time
                    // ahead far enough for any armed source to fire.
                    let irq_live = self.bus.devices.irq_source_armed()
                        && self.bus.devices.tick(u64::MAX / 2)
                        && self.cpus.iter().any(|c| c.csr(Csr::Ie) != 0 && c.csr(Csr::Tvec) != 0);
                    self.drain_irq_events();
                    if irq_live {
                        for cpu in &mut self.cpus {
                            cpu.irq_pending = true;
                            cpu.parked = false;
                        }
                        continue;
                    }
                    return Ok(RunExit::AllIdle);
                }
            };
            self.next_cpu = (idx + 1) % ncpus;

            // Deliver a pending interrupt before running the quantum.
            let cpu = &mut self.cpus[idx];
            if cpu.irq_pending && cpu.csr(Csr::Ie) != 0 && cpu.csr(Csr::Tvec) != 0 {
                cpu.irq_pending = false;
                cpu.set_csr(Csr::Epc, cpu.pc);
                cpu.set_csr(Csr::Cause, Cpu::CAUSE_TIMER_IRQ);
                cpu.pc = cpu.csr(Csr::Tvec);
            }

            let quantum = self.quantum.min(budget - executed_total);
            let before = self.cpus[idx].retired;
            let exit = {
                let _scope = self.profiler.scope(embsan_obs::Phase::Execute);
                self.run_quantum(idx, hook, quantum)
            };
            let ran = self.cpus[idx].retired - before;
            executed_total += ran;
            self.lifetime_retired += ran;
            self.apply_due_faults();

            // Advance platform time.
            if self.bus.devices.tick(ran) {
                for cpu in &mut self.cpus {
                    cpu.irq_pending = true;
                    cpu.parked = false;
                }
            }
            self.drain_irq_events();
            if let Some(code) = self.bus.devices.power.halt_request() {
                self.bus.devices.power.clear();
                return Ok(RunExit::Halted { code });
            }

            match exit {
                QuantumExit::Continue | QuantumExit::Parked | QuantumExit::Stalled => {}
                QuantumExit::Halt(code) => return Ok(RunExit::Halted { code }),
                QuantumExit::Fault(fault, pc) => {
                    return Ok(RunExit::Faulted { fault, cpu: idx, pc })
                }
                QuantumExit::Stopped => return Ok(RunExit::Stopped),
                QuantumExit::Breakpoint(pc) => {
                    self.skip_bp_once = Some((idx, pc));
                    return Ok(RunExit::Breakpoint { pc, cpu: idx });
                }
            }
        }
    }

    /// Executes up to `quantum` instructions on vCPU `idx`.
    fn run_quantum(&mut self, idx: usize, hook: &mut dyn ExecHook, quantum: u64) -> QuantumExit {
        if self.cpus[idx].wedged {
            // A stuck core keeps fetching and retiring the same instruction
            // without architectural progress: burn the quantum so the hang
            // is visible as budget exhaustion, never as idleness.
            self.cpus[idx].retired += quantum;
            self.global_retired += quantum;
            return QuantumExit::Continue;
        }
        let cfg = self.cache.config();
        // Monomorphize the dispatch loop on "anything armed?": the unarmed
        // instantiation folds every probe branch and the breakpoint scan out
        // of the hot loop entirely.
        if cfg == HookConfig::none() && self.breakpoints.is_empty() {
            self.run_quantum_spec::<false>(idx, hook, cfg, quantum)
        } else {
            self.run_quantum_spec::<true>(idx, hook, cfg, quantum)
        }
    }

    /// The dispatch loop, monomorphized over `ARMED` (any probes or
    /// breakpoints live). `ARMED == false` implies `cfg` is
    /// [`HookConfig::none`] and no breakpoints are set.
    fn run_quantum_spec<const ARMED: bool>(
        &mut self,
        idx: usize,
        hook: &mut dyn ExecHook,
        cfg: HookConfig,
        quantum: u64,
    ) -> QuantumExit {
        let mut executed: u64 = 0;
        // The block run by the previous dispatch in this quantum: its chain
        // slots resolve repeat control transfers without a cache lookup. The
        // first dispatch of a quantum always goes through the cache, so
        // chains never outlive a reconfiguration (each quantum re-enters
        // through the active generation).
        let mut prev: Option<Rc<Block>> = None;
        while executed < quantum {
            let pc = self.cpus[idx].pc;
            let chained = prev.as_ref().and_then(|p| p.chained(pc));
            let block = match chained {
                Some(block) => {
                    self.cache.note_chained();
                    block
                }
                None => {
                    let block = match self.cache.lookup(&self.bus, pc) {
                        Ok(block) => block,
                        Err(fault) => {
                            self.deliver_fault(idx, hook, fault);
                            return QuantumExit::Fault(fault, pc);
                        }
                    };
                    if let Some(p) = &prev {
                        // Merge across an unconditional direct jump into a
                        // superblock; where the merge does not apply, chain
                        // the edge so its next occurrence skips the lookup.
                        // (This dispatch still runs the unmerged block; the
                        // superblock serves future dispatches of its start.)
                        if !ends_with_jump_to(p, pc) || self.cache.try_promote(p, pc).is_none() {
                            p.install_chain(pc, &block);
                        }
                    }
                    block
                }
            };
            if ARMED && cfg.blocks {
                self.tracer.record(embsan_obs::EventKind::ProbeFire {
                    probe: embsan_obs::ProbeKind::Block,
                    pc,
                });
                let mut view = CpuView {
                    cpu: &mut self.cpus[idx],
                    bus: &mut self.bus,
                    global_retired: self.global_retired,
                };
                hook.block_enter(&mut view, pc);
            }
            let mut i = 0;
            while i < block.ops.len() {
                let op = &block.ops[i];
                // Host breakpoints (checked only when any are set).
                if ARMED && !self.breakpoints.is_empty() && self.breakpoints.contains(&op.pc) {
                    if self.skip_bp_once == Some((idx, op.pc)) {
                        self.skip_bp_once = None;
                    } else {
                        self.cpus[idx].pc = op.pc;
                        return QuantumExit::Breakpoint(op.pc);
                    }
                }
                let step = self.exec_op::<ARMED>(
                    idx,
                    hook,
                    cfg,
                    op.insn,
                    op.pc,
                    op.probe_mem,
                    op.probe_call,
                );
                executed += 1;
                self.cpus[idx].retired += 1;
                self.global_retired += 1;
                match step {
                    Step::Next => {
                        self.cpus[idx].pc = op.pc.wrapping_add(4);
                    }
                    Step::Jump(target) => {
                        self.cpus[idx].pc = target;
                        if has_seam(&block, i + 1, target) {
                            // The merged continuation starts at the next op.
                            // Replicate the unmerged flow exactly: quantum
                            // expiry first (pc already points at the seam),
                            // then the block-entry probe, then fall through
                            // into the continuation's ops.
                            if executed >= quantum {
                                return QuantumExit::Continue;
                            }
                            self.cache.note_chained();
                            if ARMED && cfg.blocks {
                                self.tracer.record(embsan_obs::EventKind::ProbeFire {
                                    probe: embsan_obs::ProbeKind::Block,
                                    pc: target,
                                });
                                let mut view = CpuView {
                                    cpu: &mut self.cpus[idx],
                                    bus: &mut self.bus,
                                    global_retired: self.global_retired,
                                };
                                hook.block_enter(&mut view, target);
                            }
                            i += 1;
                            continue;
                        }
                        break; // control flow leaves the block
                    }
                    Step::Halt(code) => return QuantumExit::Halt(code),
                    Step::Park => {
                        self.cpus[idx].pc = op.pc.wrapping_add(4);
                        self.cpus[idx].parked = true;
                        return QuantumExit::Parked;
                    }
                    Step::Stall { instrs, token } => {
                        self.cpus[idx].pc = op.pc.wrapping_add(4);
                        self.cpus[idx].stalled_until = Some(self.global_retired + instrs);
                        self.cpus[idx].stall_token = token;
                        return QuantumExit::Stalled;
                    }
                    Step::Stopped => {
                        self.cpus[idx].pc = op.pc; // re-execute on resume
                        return QuantumExit::Stopped;
                    }
                    Step::Fault(fault) => {
                        self.cpus[idx].pc = op.pc;
                        self.deliver_fault(idx, hook, fault);
                        return QuantumExit::Fault(fault, op.pc);
                    }
                }
                if executed >= quantum {
                    // Quantum expired mid-block; pc already advanced.
                    return QuantumExit::Continue;
                }
                i += 1;
            }
            prev = Some(block);
        }
        QuantumExit::Continue
    }

    /// Drains the interrupt raise/ack/deferred events devices recorded and
    /// stamps them onto the trace at the current quantum clock. Called once
    /// per quantum (and on the all-parked skip-ahead) so delivery order is a
    /// pure function of guest execution.
    fn drain_irq_events(&mut self) {
        if !self.tracer.is_enabled() {
            // Still drain so the device queues never grow unbounded (and so
            // snapshot equality never depends on whether tracing was on).
            self.bus.devices.drain_irq_events();
            return;
        }
        for event in self.bus.devices.drain_irq_events() {
            let kind = match event {
                crate::device::IrqEvent::Raised { source, lines } => {
                    embsan_obs::EventKind::IrqRaised { source, lines }
                }
                crate::device::IrqEvent::Acked { source, lines } => {
                    embsan_obs::EventKind::IrqAcked { source, lines }
                }
                crate::device::IrqEvent::DeferredScheduled { delay } => {
                    embsan_obs::EventKind::DeferredCall { delay }
                }
            };
            self.tracer.record(kind);
        }
    }

    fn deliver_fault(&mut self, idx: usize, hook: &mut dyn ExecHook, fault: Fault) {
        let mut view = CpuView {
            cpu: &mut self.cpus[idx],
            bus: &mut self.bus,
            global_retired: self.global_retired,
        };
        hook.fault(&mut view, fault);
    }

    /// Executes a single translated op on vCPU `idx`. Monomorphized over
    /// `ARMED` like [`Machine::run_quantum_spec`]: the unarmed instantiation
    /// compiles every probe branch out.
    #[allow(clippy::too_many_arguments)]
    fn exec_op<const ARMED: bool>(
        &mut self,
        idx: usize,
        hook: &mut dyn ExecHook,
        cfg: HookConfig,
        insn: Insn,
        pc: u32,
        probe_mem: bool,
        probe_call: bool,
    ) -> Step {
        // Split borrows once for the whole op.
        let Machine { cpus, bus, global_retired, tracer, .. } = self;
        let cpu = &mut cpus[idx];
        let r = |cpu: &Cpu, reg: Reg| cpu.regs.read(reg);

        macro_rules! alu {
            ($cpu:expr, $rd:expr, $val:expr) => {{
                let value = $val;
                $cpu.regs.write($rd, value);
                Step::Next
            }};
        }

        match insn {
            Insn::Add { rd, rs1, rs2 } => alu!(cpu, rd, r(cpu, rs1).wrapping_add(r(cpu, rs2))),
            Insn::Sub { rd, rs1, rs2 } => alu!(cpu, rd, r(cpu, rs1).wrapping_sub(r(cpu, rs2))),
            Insn::And { rd, rs1, rs2 } => alu!(cpu, rd, r(cpu, rs1) & r(cpu, rs2)),
            Insn::Or { rd, rs1, rs2 } => alu!(cpu, rd, r(cpu, rs1) | r(cpu, rs2)),
            Insn::Xor { rd, rs1, rs2 } => alu!(cpu, rd, r(cpu, rs1) ^ r(cpu, rs2)),
            Insn::Sll { rd, rs1, rs2 } => alu!(cpu, rd, r(cpu, rs1) << (r(cpu, rs2) & 31)),
            Insn::Srl { rd, rs1, rs2 } => alu!(cpu, rd, r(cpu, rs1) >> (r(cpu, rs2) & 31)),
            Insn::Sra { rd, rs1, rs2 } => {
                alu!(cpu, rd, ((r(cpu, rs1) as i32) >> (r(cpu, rs2) & 31)) as u32)
            }
            Insn::Mul { rd, rs1, rs2 } => alu!(cpu, rd, r(cpu, rs1).wrapping_mul(r(cpu, rs2))),
            Insn::Mulh { rd, rs1, rs2 } => {
                alu!(cpu, rd, ((u64::from(r(cpu, rs1)) * u64::from(r(cpu, rs2))) >> 32) as u32)
            }
            Insn::Divu { rd, rs1, rs2 } => {
                alu!(cpu, rd, r(cpu, rs1).checked_div(r(cpu, rs2)).unwrap_or(u32::MAX))
            }
            Insn::Remu { rd, rs1, rs2 } => {
                let d = r(cpu, rs2);
                alu!(cpu, rd, if d == 0 { r(cpu, rs1) } else { r(cpu, rs1) % d })
            }
            Insn::Slt { rd, rs1, rs2 } => {
                alu!(cpu, rd, u32::from((r(cpu, rs1) as i32) < (r(cpu, rs2) as i32)))
            }
            Insn::Sltu { rd, rs1, rs2 } => alu!(cpu, rd, u32::from(r(cpu, rs1) < r(cpu, rs2))),

            Insn::Addi { rd, rs1, imm } => {
                alu!(cpu, rd, r(cpu, rs1).wrapping_add(imm as u32))
            }
            // Logical immediates are zero-extended (see the codec docs).
            Insn::Andi { rd, rs1, imm } => alu!(cpu, rd, r(cpu, rs1) & (imm as u32 & 0xFFF)),
            Insn::Ori { rd, rs1, imm } => alu!(cpu, rd, r(cpu, rs1) | (imm as u32 & 0xFFF)),
            Insn::Xori { rd, rs1, imm } => alu!(cpu, rd, r(cpu, rs1) ^ (imm as u32 & 0xFFF)),
            Insn::Slli { rd, rs1, shamt } => alu!(cpu, rd, r(cpu, rs1) << shamt),
            Insn::Srli { rd, rs1, shamt } => alu!(cpu, rd, r(cpu, rs1) >> shamt),
            Insn::Srai { rd, rs1, shamt } => {
                alu!(cpu, rd, ((r(cpu, rs1) as i32) >> shamt) as u32)
            }
            Insn::Slti { rd, rs1, imm } => {
                alu!(cpu, rd, u32::from((r(cpu, rs1) as i32) < imm))
            }
            Insn::Sltiu { rd, rs1, imm } => {
                alu!(cpu, rd, u32::from(r(cpu, rs1) < imm as u32))
            }
            Insn::Lui { rd, imm } => alu!(cpu, rd, imm),
            Insn::Auipc { rd, imm } => alu!(cpu, rd, pc.wrapping_add(imm)),

            Insn::Lb { rd, rs1, imm }
            | Insn::Lbu { rd, rs1, imm }
            | Insn::Lh { rd, rs1, imm }
            | Insn::Lhu { rd, rs1, imm }
            | Insn::Lw { rd, rs1, imm } => {
                let addr = r(cpu, rs1).wrapping_add(imm as u32);
                let (size, sign) = match insn {
                    Insn::Lb { .. } => (1u8, true),
                    Insn::Lbu { .. } => (1, false),
                    Insn::Lh { .. } => (2, true),
                    Insn::Lhu { .. } => (2, false),
                    _ => (4, false),
                };
                if ARMED && probe_mem {
                    tracer.record(embsan_obs::EventKind::ProbeFire {
                        probe: embsan_obs::ProbeKind::Mem,
                        pc,
                    });
                    let access =
                        MemAccess { addr, size, kind: MemKind::Read, value: 0, pc, cpu: idx };
                    let mut view = CpuView { cpu, bus, global_retired: *global_retired };
                    match hook.mem_access(&mut view, &access) {
                        HookAction::Continue => {}
                        HookAction::Stop => return Step::Stopped,
                        HookAction::Stall { instrs, token } => {
                            // Perform the access, then open the stall window.
                            return match load_value(bus, addr, size, sign, pc) {
                                Ok(value) => {
                                    cpu.regs.write(rd, value);
                                    Step::Stall { instrs, token }
                                }
                                Err(fault) => Step::Fault(fault),
                            };
                        }
                    }
                }
                match load_value(bus, addr, size, sign, pc) {
                    Ok(value) => alu!(cpu, rd, value),
                    Err(fault) => Step::Fault(fault),
                }
            }

            Insn::Sb { rs2, rs1, imm }
            | Insn::Sh { rs2, rs1, imm }
            | Insn::Sw { rs2, rs1, imm } => {
                let addr = r(cpu, rs1).wrapping_add(imm as u32);
                let size = match insn {
                    Insn::Sb { .. } => 1u8,
                    Insn::Sh { .. } => 2,
                    _ => 4,
                };
                let value = r(cpu, rs2)
                    & match size {
                        1 => 0xFF,
                        2 => 0xFFFF,
                        _ => u32::MAX,
                    };
                let mut stall: Option<(u64, u64)> = None;
                if ARMED && probe_mem {
                    tracer.record(embsan_obs::EventKind::ProbeFire {
                        probe: embsan_obs::ProbeKind::Mem,
                        pc,
                    });
                    let access =
                        MemAccess { addr, size, kind: MemKind::Write, value, pc, cpu: idx };
                    let mut view = CpuView { cpu, bus, global_retired: *global_retired };
                    match hook.mem_access(&mut view, &access) {
                        HookAction::Continue => {}
                        HookAction::Stop => return Step::Stopped,
                        HookAction::Stall { instrs, token } => stall = Some((instrs, token)),
                    }
                }
                match bus.write_at(addr, size, value, pc) {
                    Ok(()) => match stall {
                        Some((instrs, token)) => Step::Stall { instrs, token },
                        None => Step::Next,
                    },
                    Err(fault) => Step::Fault(fault),
                }
            }

            Insn::AmoAddW { rd, rs1, rs2 } | Insn::AmoSwpW { rd, rs1, rs2 } => {
                let addr = r(cpu, rs1);
                let operand = r(cpu, rs2);
                if ARMED && probe_mem {
                    tracer.record(embsan_obs::EventKind::ProbeFire {
                        probe: embsan_obs::ProbeKind::Mem,
                        pc,
                    });
                    let access = MemAccess {
                        addr,
                        size: 4,
                        kind: MemKind::AtomicRmw,
                        value: operand,
                        pc,
                        cpu: idx,
                    };
                    let mut view = CpuView { cpu, bus, global_retired: *global_retired };
                    match hook.mem_access(&mut view, &access) {
                        HookAction::Continue => {}
                        HookAction::Stop => return Step::Stopped,
                        // Atomic ops never stall: a stall window inside a
                        // lock operation would deadlock the guest.
                        HookAction::Stall { .. } => {}
                    }
                }
                let old = match bus.read_at(addr, 4, pc) {
                    Ok(value) => value,
                    Err(fault) => return Step::Fault(fault),
                };
                let new = match insn {
                    Insn::AmoAddW { .. } => old.wrapping_add(operand),
                    _ => operand,
                };
                if let Err(fault) = bus.write_at(addr, 4, new, pc) {
                    return Step::Fault(fault);
                }
                alu!(cpu, rd, old)
            }

            Insn::Beq { rs1, rs2, offset } => branch(cpu, pc, offset, r(cpu, rs1) == r(cpu, rs2)),
            Insn::Bne { rs1, rs2, offset } => branch(cpu, pc, offset, r(cpu, rs1) != r(cpu, rs2)),
            Insn::Blt { rs1, rs2, offset } => {
                branch(cpu, pc, offset, (r(cpu, rs1) as i32) < (r(cpu, rs2) as i32))
            }
            Insn::Bltu { rs1, rs2, offset } => branch(cpu, pc, offset, r(cpu, rs1) < r(cpu, rs2)),
            Insn::Bge { rs1, rs2, offset } => {
                branch(cpu, pc, offset, (r(cpu, rs1) as i32) >= (r(cpu, rs2) as i32))
            }
            Insn::Bgeu { rs1, rs2, offset } => branch(cpu, pc, offset, r(cpu, rs1) >= r(cpu, rs2)),

            Insn::Jal { rd, offset } => {
                let target = pc.wrapping_add(offset as u32);
                let ret_to = pc.wrapping_add(4);
                cpu.regs.write(rd, ret_to);
                if ARMED && probe_call && cfg.calls {
                    tracer.record(embsan_obs::EventKind::ProbeFire {
                        probe: embsan_obs::ProbeKind::Call,
                        pc,
                    });
                    let mut view = CpuView { cpu, bus, global_retired: *global_retired };
                    hook.call(&mut view, target, ret_to);
                }
                Step::Jump(target)
            }
            Insn::Jalr { rd, rs1, imm } => {
                let target = r(cpu, rs1).wrapping_add(imm as u32) & !3;
                let ret_to = pc.wrapping_add(4);
                let kind = call_kind(&insn);
                cpu.regs.write(rd, ret_to);
                if ARMED && probe_call && cfg.calls {
                    match kind {
                        CallKind::Call => tracer.record(embsan_obs::EventKind::ProbeFire {
                            probe: embsan_obs::ProbeKind::Call,
                            pc,
                        }),
                        CallKind::Ret => tracer.record(embsan_obs::EventKind::ProbeFire {
                            probe: embsan_obs::ProbeKind::Ret,
                            pc,
                        }),
                        CallKind::Neither => {}
                    }
                    let mut view = CpuView { cpu, bus, global_retired: *global_retired };
                    match kind {
                        CallKind::Call => hook.call(&mut view, target, ret_to),
                        CallKind::Ret => hook.ret(&mut view, target),
                        CallKind::Neither => {}
                    }
                }
                Step::Jump(target)
            }

            Insn::Ecall { code } => {
                let tvec = cpu.csr(Csr::Tvec);
                if tvec == 0 {
                    return Step::Fault(Fault::NoTrapVector { pc });
                }
                cpu.set_csr(Csr::Epc, pc.wrapping_add(4));
                cpu.set_csr(Csr::Cause, u32::from(code));
                Step::Jump(tvec)
            }
            Insn::Eret => Step::Jump(cpu.csr(Csr::Epc)),

            Insn::Hyper { nr } => {
                if ARMED && cfg.hypercalls {
                    tracer.record(embsan_obs::EventKind::ProbeFire {
                        probe: embsan_obs::ProbeKind::Hypercall,
                        pc,
                    });
                    let mut view = CpuView { cpu, bus, global_retired: *global_retired };
                    match hook.hypercall(&mut view, nr) {
                        HookAction::Continue => Step::Next,
                        HookAction::Stop => Step::Stopped,
                        HookAction::Stall { instrs, token } => Step::Stall { instrs, token },
                    }
                } else {
                    Step::Next
                }
            }

            Insn::Csrr { rd, idx: csr } => alu!(cpu, rd, cpu.csr_read(csr)),
            Insn::Csrw { rs1, idx: csr } => {
                let value = r(cpu, rs1);
                cpu.csr_write(csr, value);
                Step::Next
            }

            Insn::Halt { code } => Step::Halt(code),
            Insn::Wfi => Step::Park,
            Insn::Nop | Insn::Fence => Step::Next,
            Insn::Brk => Step::Fault(Fault::Breakpoint { pc }),
        }
    }
}

/// Whether `block` ends in an unconditional direct jump to `target` — the
/// precondition for merging it with the block at `target` into a superblock
/// (every execution of the terminator lands on `target`, so a seam there is
/// always taken).
fn ends_with_jump_to(block: &Block, target: u32) -> bool {
    match block.ops.last() {
        Some(op) => match op.insn {
            Insn::Jal { rd: Reg::R0, offset } => op.pc.wrapping_add(offset as u32) == target,
            _ => false,
        },
        None => false,
    }
}

/// Whether `block` has a superblock seam at op `index` continuing at `pc`.
#[inline]
fn has_seam(block: &Block, index: usize, pc: u32) -> bool {
    block.seams.iter().any(|&(i, p)| i == index && p == pc)
}

fn load_value(bus: &mut Bus, addr: u32, size: u8, sign: bool, pc: u32) -> Result<u32, Fault> {
    let raw = bus.read_at(addr, size, pc)?;
    Ok(if sign {
        match size {
            1 => raw as u8 as i8 as i32 as u32,
            2 => raw as u16 as i16 as i32 as u32,
            _ => raw,
        }
    } else {
        raw
    })
}

fn branch(_cpu: &mut Cpu, pc: u32, offset: i32, taken: bool) -> Step {
    if taken {
        Step::Jump(pc.wrapping_add(offset as u32))
    } else {
        Step::Next
    }
}

enum Step {
    Next,
    Jump(u32),
    Halt(u16),
    Park,
    Stall { instrs: u64, token: u64 },
    Stopped,
    Fault(Fault),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hook::NullHook;
    use crate::profile::ArchProfile;

    fn machine_with(insns: &[Insn]) -> Machine {
        machine_with_profile(ArchProfile::armv(), insns)
    }

    fn machine_with_profile(profile: ArchProfile, insns: &[Insn]) -> Machine {
        let mut text = Vec::new();
        for insn in insns {
            text.extend_from_slice(&insn.encode().to_bytes(profile.endian));
        }
        Machine::builder(profile)
            .rom(profile.rom_base, &text)
            .ram(profile.ram_base, 0x1_0000)
            .build()
            .unwrap()
    }

    #[test]
    fn arithmetic_program_runs() {
        let mut m = machine_with(&[
            Insn::Addi { rd: Reg::R1, rs1: Reg::R0, imm: 21 },
            Insn::Addi { rd: Reg::R2, rs1: Reg::R0, imm: 2 },
            Insn::Mul { rd: Reg::R3, rs1: Reg::R1, rs2: Reg::R2 },
            Insn::Halt { code: 9 },
        ]);
        let exit = m.run(&mut NullHook, 100).unwrap();
        assert_eq!(exit, RunExit::Halted { code: 9 });
        assert_eq!(m.cpu(0).regs.read(Reg::R3), 42);
        assert_eq!(m.retired(), 4);
    }

    #[test]
    fn runs_on_all_profiles() {
        for arch in crate::profile::Arch::ALL {
            let profile = ArchProfile::for_arch(arch);
            let ram = profile.ram_base;
            let mut m = machine_with_profile(
                profile,
                &[
                    Insn::Lui { rd: Reg::R1, imm: ram & 0xFFFF_F000 },
                    Insn::Ori { rd: Reg::R1, rs1: Reg::R1, imm: (ram & 0xFFF) as i32 },
                    Insn::Addi { rd: Reg::R2, rs1: Reg::R0, imm: 0x5A },
                    Insn::Sw { rs2: Reg::R2, rs1: Reg::R1, imm: 8 },
                    Insn::Lw { rd: Reg::R3, rs1: Reg::R1, imm: 8 },
                    Insn::Halt { code: 0 },
                ],
            );
            let exit = m.run(&mut NullHook, 100).unwrap();
            assert_eq!(exit, RunExit::Halted { code: 0 }, "arch {arch:?}");
            assert_eq!(m.cpu(0).regs.read(Reg::R3), 0x5A, "arch {arch:?}");
        }
    }

    #[test]
    fn budget_exhaustion() {
        // Infinite loop.
        let mut m = machine_with(&[Insn::Jal { rd: Reg::R0, offset: 0 }]);
        let exit = m.run(&mut NullHook, 500).unwrap();
        assert_eq!(exit, RunExit::BudgetExhausted);
        assert_eq!(m.retired(), 500);
    }

    #[test]
    fn fault_reports_pc() {
        let mut m = machine_with(&[
            Insn::Addi { rd: Reg::R1, rs1: Reg::R0, imm: 16 },
            Insn::Lw { rd: Reg::R2, rs1: Reg::R1, imm: 0 }, // null page
        ]);
        let exit = m.run(&mut NullHook, 100).unwrap();
        let rom = ArchProfile::armv().rom_base;
        assert_eq!(
            exit,
            RunExit::Faulted {
                fault: Fault::NullPage { addr: 16, is_write: false },
                cpu: 0,
                pc: rom + 4,
            }
        );
    }

    #[test]
    fn wfi_all_idle() {
        let mut m = machine_with(&[Insn::Wfi]);
        let exit = m.run(&mut NullHook, 100).unwrap();
        assert_eq!(exit, RunExit::AllIdle);
        // Running again wakes the CPU (which re-executes from after wfi and
        // falls off into an illegal fetch region of the ROM — here the ROM is
        // 4 bytes, so it's a fetch fault).
        let exit = m.run(&mut NullHook, 100).unwrap();
        assert!(matches!(exit, RunExit::Faulted { .. }));
    }

    #[test]
    fn mem_probe_sees_accesses() {
        struct Recorder(Vec<MemAccess>);
        impl ExecHook for Recorder {
            fn mem_access(&mut self, _cpu: &mut CpuView<'_>, access: &MemAccess) -> HookAction {
                self.0.push(*access);
                HookAction::Continue
            }
        }
        let profile = ArchProfile::armv();
        let ram = profile.ram_base;
        let mut m = machine_with(&[
            Insn::Lui { rd: Reg::R1, imm: ram },
            Insn::Addi { rd: Reg::R2, rs1: Reg::R0, imm: 7 },
            Insn::Sw { rs2: Reg::R2, rs1: Reg::R1, imm: 4 },
            Insn::Lbu { rd: Reg::R3, rs1: Reg::R1, imm: 4 },
            Insn::Halt { code: 0 },
        ]);
        m.set_hook_config(HookConfig { mem: true, ..HookConfig::none() });
        let mut recorder = Recorder(Vec::new());
        m.run(&mut recorder, 100).unwrap();
        assert_eq!(recorder.0.len(), 2);
        assert_eq!(recorder.0[0].kind, MemKind::Write);
        assert_eq!(recorder.0[0].addr, ram + 4);
        assert_eq!(recorder.0[0].value, 7);
        assert_eq!(recorder.0[1].kind, MemKind::Read);
        assert_eq!(recorder.0[1].size, 1);
    }

    #[test]
    fn probes_not_delivered_without_config() {
        struct Panicker;
        impl ExecHook for Panicker {
            fn mem_access(&mut self, _cpu: &mut CpuView<'_>, _access: &MemAccess) -> HookAction {
                panic!("probe delivered without configuration");
            }
        }
        let profile = ArchProfile::armv();
        let mut m = machine_with(&[
            Insn::Lui { rd: Reg::R1, imm: profile.ram_base },
            Insn::Sw { rs2: Reg::R0, rs1: Reg::R1, imm: 0 },
            Insn::Halt { code: 0 },
        ]);
        m.run(&mut Panicker, 100).unwrap();
    }

    #[test]
    fn hook_stop_halts_machine() {
        struct Stopper;
        impl ExecHook for Stopper {
            fn mem_access(&mut self, _cpu: &mut CpuView<'_>, _access: &MemAccess) -> HookAction {
                HookAction::Stop
            }
        }
        let profile = ArchProfile::armv();
        let mut m = machine_with(&[
            Insn::Lui { rd: Reg::R1, imm: profile.ram_base },
            Insn::Sw { rs2: Reg::R0, rs1: Reg::R1, imm: 0 },
            Insn::Halt { code: 0 },
        ]);
        m.set_hook_config(HookConfig { mem: true, ..HookConfig::none() });
        let exit = m.run(&mut Stopper, 100).unwrap();
        assert_eq!(exit, RunExit::Stopped);
        // The store did not execute.
        assert_eq!(m.read_mem(profile.ram_base, 4).unwrap(), 0);
    }

    #[test]
    fn hypercall_round_trip() {
        struct Hyper(Vec<u32>);
        impl ExecHook for Hyper {
            fn hypercall(&mut self, cpu: &mut CpuView<'_>, nr: u32) -> HookAction {
                self.0.push(nr);
                cpu.set_reg(Reg::R1, 0x77);
                HookAction::Continue
            }
        }
        let mut m = machine_with(&[Insn::Hyper { nr: 1234 }, Insn::Halt { code: 0 }]);
        m.set_hook_config(HookConfig { hypercalls: true, ..HookConfig::none() });
        let mut hook = Hyper(Vec::new());
        m.run(&mut hook, 100).unwrap();
        assert_eq!(hook.0, vec![1234]);
        assert_eq!(m.cpu(0).regs.read(Reg::R1), 0x77);
    }

    #[test]
    fn hypercall_is_nop_without_hook_config() {
        let mut m = machine_with(&[Insn::Hyper { nr: 1 }, Insn::Halt { code: 5 }]);
        let exit = m.run(&mut NullHook, 100).unwrap();
        assert_eq!(exit, RunExit::Halted { code: 5 });
    }

    #[test]
    fn call_and_ret_probes() {
        #[derive(Default)]
        struct Tracker {
            calls: Vec<(u32, u32)>,
            rets: Vec<u32>,
        }
        impl ExecHook for Tracker {
            fn call(&mut self, _cpu: &mut CpuView<'_>, target: u32, ret_to: u32) {
                self.calls.push((target, ret_to));
            }
            fn ret(&mut self, _cpu: &mut CpuView<'_>, target: u32) {
                self.rets.push(target);
            }
        }
        let rom = ArchProfile::armv().rom_base;
        // 0: jal lr, +12 (to 12)
        // 4: halt 0
        // 8: nop (padding)
        // 12: jalr r0, lr, 0 (return)
        let mut m = machine_with(&[
            Insn::Jal { rd: Reg::LR, offset: 12 },
            Insn::Halt { code: 0 },
            Insn::Nop,
            Insn::Jalr { rd: Reg::R0, rs1: Reg::LR, imm: 0 },
        ]);
        m.set_hook_config(HookConfig { calls: true, ..HookConfig::none() });
        let mut tracker = Tracker::default();
        let exit = m.run(&mut tracker, 100).unwrap();
        assert_eq!(exit, RunExit::Halted { code: 0 });
        assert_eq!(tracker.calls, vec![(rom + 12, rom + 4)]);
        assert_eq!(tracker.rets, vec![rom + 4]);
    }

    #[test]
    fn breakpoints_pause_and_resume() {
        let rom = ArchProfile::armv().rom_base;
        let mut m = machine_with(&[
            Insn::Addi { rd: Reg::R1, rs1: Reg::R0, imm: 1 },
            Insn::Addi { rd: Reg::R2, rs1: Reg::R0, imm: 2 },
            Insn::Halt { code: 0 },
        ]);
        m.add_breakpoint(rom + 4);
        let exit = m.run(&mut NullHook, 100).unwrap();
        assert_eq!(exit, RunExit::Breakpoint { pc: rom + 4, cpu: 0 });
        assert_eq!(m.cpu(0).regs.read(Reg::R1), 1);
        assert_eq!(m.cpu(0).regs.read(Reg::R2), 0);
        // Resume past the breakpoint.
        let exit = m.run_resume(&mut NullHook, 100).unwrap();
        assert_eq!(exit, RunExit::Halted { code: 0 });
        assert_eq!(m.cpu(0).regs.read(Reg::R2), 2);
    }

    #[test]
    fn ecall_and_eret_trap_flow() {
        let rom = ArchProfile::armv().rom_base;
        // Handler at rom+16 writes r5 = cause, then eret.
        let mut m = machine_with(&[
            Insn::Addi { rd: Reg::R1, rs1: Reg::R0, imm: (rom + 16) as i32 & 0x7FF },
            Insn::Nop, // placeholder; we set TVEC directly below
            Insn::Ecall { code: 33 },
            Insn::Halt { code: 1 },
            Insn::Csrr { rd: Reg::R5, idx: Csr::Cause as u16 },
            Insn::Eret,
        ]);
        m.cpu_mut(0).set_csr(Csr::Tvec, rom + 16);
        let exit = m.run(&mut NullHook, 100).unwrap();
        assert_eq!(exit, RunExit::Halted { code: 1 });
        assert_eq!(m.cpu(0).regs.read(Reg::R5), 33);
    }

    #[test]
    fn ecall_without_vector_faults() {
        let mut m = machine_with(&[Insn::Ecall { code: 1 }]);
        let exit = m.run(&mut NullHook, 100).unwrap();
        assert!(matches!(exit, RunExit::Faulted { fault: Fault::NoTrapVector { .. }, .. }));
    }

    #[test]
    fn power_device_halts_machine() {
        let profile = ArchProfile::armv();
        let power = profile.mmio_base + crate::device::POWER_BASE;
        let mut m = machine_with(&[
            Insn::Lui { rd: Reg::R1, imm: power & 0xFFFF_F000 },
            Insn::Ori { rd: Reg::R1, rs1: Reg::R1, imm: (power & 0xFFF) as i32 },
            Insn::Addi { rd: Reg::R2, rs1: Reg::R0, imm: 88 },
            Insn::Sw { rs2: Reg::R2, rs1: Reg::R1, imm: 0 },
            Insn::Jal { rd: Reg::R0, offset: 0 },
        ]);
        let exit = m.run(&mut NullHook, 10_000).unwrap();
        assert_eq!(exit, RunExit::Halted { code: 88 });
    }

    #[test]
    fn multi_cpu_round_robin_is_deterministic() {
        // Two CPUs increment separate RAM counters; with a fixed quantum the
        // interleaving (and hence final counts at any budget) is reproducible.
        let profile = ArchProfile::armv();
        let ram = profile.ram_base;
        let insns = [
            // r1 = ram + cpuid*4 (each CPU its own slot)
            Insn::Csrr { rd: Reg::R2, idx: Csr::Cpuid as u16 },
            Insn::Slli { rd: Reg::R2, rs1: Reg::R2, shamt: 2 },
            Insn::Lui { rd: Reg::R1, imm: ram },
            Insn::Add { rd: Reg::R1, rs1: Reg::R1, rs2: Reg::R2 },
            // loop: r3 = [r1]; r3 += 1; [r1] = r3; j loop
            Insn::Lw { rd: Reg::R3, rs1: Reg::R1, imm: 0 },
            Insn::Addi { rd: Reg::R3, rs1: Reg::R3, imm: 1 },
            Insn::Sw { rs2: Reg::R3, rs1: Reg::R1, imm: 0 },
            Insn::Jal { rd: Reg::R0, offset: -12 },
        ];
        let mut text = Vec::new();
        for insn in &insns {
            text.extend_from_slice(&insn.encode().to_bytes(profile.endian));
        }
        let run_once = || {
            let mut m = Machine::builder(profile)
                .rom(profile.rom_base, &text)
                .ram(profile.ram_base, 0x1000)
                .cpus(2)
                .quantum(100)
                .build()
                .unwrap();
            m.run(&mut NullHook, 5000).unwrap();
            (m.read_mem(ram, 4).unwrap(), m.read_mem(ram + 4, 4).unwrap())
        };
        let (a1, b1) = run_once();
        let (a2, b2) = run_once();
        assert_eq!((a1, b1), (a2, b2));
        assert!(a1 > 0 && b1 > 0, "both CPUs made progress: {a1} {b1}");
    }

    #[test]
    fn stall_lets_other_cpu_run() {
        // CPU0 stores to a watched address and stalls; CPU1 keeps counting.
        struct StallOnce {
            stalled: bool,
            expired: Vec<u64>,
        }
        impl ExecHook for StallOnce {
            fn mem_access(&mut self, cpu: &mut CpuView<'_>, access: &MemAccess) -> HookAction {
                if !self.stalled && access.kind.is_write() && cpu.cpu_index() == 0 {
                    self.stalled = true;
                    return HookAction::Stall { instrs: 50, token: 0xAB };
                }
                HookAction::Continue
            }
            fn stall_expired(&mut self, cpu: &mut CpuView<'_>, token: u64) {
                self.expired.push(token);
                assert_eq!(cpu.cpu_index(), 0);
            }
        }
        let profile = ArchProfile::armv();
        let ram = profile.ram_base;
        let insns = [
            Insn::Csrr { rd: Reg::R2, idx: Csr::Cpuid as u16 },
            Insn::Slli { rd: Reg::R2, rs1: Reg::R2, shamt: 2 },
            Insn::Lui { rd: Reg::R1, imm: ram },
            Insn::Add { rd: Reg::R1, rs1: Reg::R1, rs2: Reg::R2 },
            Insn::Lw { rd: Reg::R3, rs1: Reg::R1, imm: 0 },
            Insn::Addi { rd: Reg::R3, rs1: Reg::R3, imm: 1 },
            Insn::Sw { rs2: Reg::R3, rs1: Reg::R1, imm: 0 },
            Insn::Jal { rd: Reg::R0, offset: -12 },
        ];
        let mut text = Vec::new();
        for insn in &insns {
            text.extend_from_slice(&insn.encode().to_bytes(profile.endian));
        }
        let mut m = Machine::builder(profile)
            .rom(profile.rom_base, &text)
            .ram(profile.ram_base, 0x1000)
            .cpus(2)
            .quantum(10)
            .build()
            .unwrap();
        m.set_hook_config(HookConfig { mem: true, ..HookConfig::none() });
        let mut hook = StallOnce { stalled: false, expired: Vec::new() };
        m.run(&mut hook, 2000).unwrap();
        assert_eq!(hook.expired, vec![0xAB]);
        // The stalled store still landed.
        assert!(m.read_mem(ram, 4).unwrap() > 0);
        assert!(m.read_mem(ram + 4, 4).unwrap() > 0);
    }

    #[test]
    fn single_cpu_stall_fast_forwards() {
        struct StallOnce(bool);
        impl ExecHook for StallOnce {
            fn mem_access(&mut self, _cpu: &mut CpuView<'_>, access: &MemAccess) -> HookAction {
                if !self.0 && access.kind.is_write() {
                    self.0 = true;
                    return HookAction::Stall { instrs: 1000, token: 1 };
                }
                HookAction::Continue
            }
        }
        let profile = ArchProfile::armv();
        let mut m = machine_with(&[
            Insn::Lui { rd: Reg::R1, imm: profile.ram_base },
            Insn::Sw { rs2: Reg::R1, rs1: Reg::R1, imm: 0 },
            Insn::Halt { code: 3 },
        ]);
        m.set_hook_config(HookConfig { mem: true, ..HookConfig::none() });
        let exit = m.run(&mut StallOnce(false), 10_000).unwrap();
        assert_eq!(exit, RunExit::Halted { code: 3 });
    }

    #[test]
    fn timer_irq_wakes_and_traps() {
        let rom = ArchProfile::armv().rom_base;
        // Main: enable timer + IE, then wfi forever.
        // Handler at rom+40: r9 += 1, eret.
        let profile = ArchProfile::armv();
        let timer_ctrl = profile.mmio_base + crate::device::TIMER_BASE;
        let insns = [
            // r1 = timer base
            Insn::Lui { rd: Reg::R1, imm: timer_ctrl & 0xFFFF_F000 },
            Insn::Ori { rd: Reg::R1, rs1: Reg::R1, imm: (timer_ctrl & 0xFFF) as i32 },
            // reload = 64
            Insn::Addi { rd: Reg::R2, rs1: Reg::R0, imm: 64 },
            Insn::Sw { rs2: Reg::R2, rs1: Reg::R1, imm: 4 },
            // enable
            Insn::Addi { rd: Reg::R2, rs1: Reg::R0, imm: 1 },
            Insn::Sw { rs2: Reg::R2, rs1: Reg::R1, imm: 0 },
            // IE = 1
            Insn::Csrw { rs1: Reg::R2, idx: Csr::Ie as u16 },
            // idle loop
            Insn::Wfi,
            Insn::Jal { rd: Reg::R0, offset: -4 },
            Insn::Nop,
            // handler at rom + 40:
            Insn::Addi { rd: Reg::R9, rs1: Reg::R9, imm: 1 },
            Insn::Eret,
        ];
        let mut text = Vec::new();
        for insn in &insns {
            text.extend_from_slice(&insn.encode().to_bytes(profile.endian));
        }
        let mut m = Machine::builder(profile)
            .rom(rom, &text)
            .ram(profile.ram_base, 0x1000)
            .build()
            .unwrap();
        m.cpu_mut(0).set_csr(Csr::Tvec, rom + 40);
        let exit = m.run(&mut NullHook, 2000).unwrap();
        assert_eq!(exit, RunExit::BudgetExhausted);
        assert!(m.cpu(0).regs.read(Reg::R9) >= 2, "handler ran repeatedly");
    }

    #[test]
    fn builder_rejects_bad_configs() {
        let profile = ArchProfile::armv();
        assert!(Machine::builder(profile).ram(profile.ram_base, 4).build().is_err());
        assert!(Machine::builder(profile).rom(profile.rom_base, &[0; 4]).build().is_err());
        assert!(Machine::builder(profile)
            .rom(0x800, &[0; 4096]) // overlaps null guard
            .ram(profile.ram_base, 4096)
            .build()
            .is_err());
        assert!(Machine::builder(profile)
            .rom(profile.ram_base, &[0; 4096]) // overlaps ram
            .ram(profile.ram_base, 4096)
            .build()
            .is_err());
        assert!(Machine::builder(profile)
            .rom(profile.rom_base, &[0; 16])
            .ram(profile.ram_base, 4096)
            .cpus(0)
            .build()
            .is_err());
    }

    #[test]
    fn fault_plan_flips_ram_bit_deterministically() {
        let profile = ArchProfile::armv();
        let run = |with_plan: bool| {
            // Store a known value, then spin so the scheduled flip lands.
            let ram = profile.ram_base;
            let mut m = machine_with(&[
                Insn::Lui { rd: Reg::R1, imm: ram },
                Insn::Addi { rd: Reg::R2, rs1: Reg::R0, imm: 0x55 },
                Insn::Sw { rs2: Reg::R2, rs1: Reg::R1, imm: 0 },
                Insn::Jal { rd: Reg::R0, offset: 0 },
            ]);
            if with_plan {
                let plan = crate::fault::FaultPlan::new().with(crate::fault::FaultEvent::once(
                    100,
                    FaultKind::RamBitFlip { offset: 0, bit: 1 },
                ));
                m.set_fault_plan(&plan);
            }
            m.run(&mut crate::hook::NullHook, 500).unwrap();
            (m.read_mem(ram, 4).unwrap(), m.injection_stats())
        };
        let (clean, clean_stats) = run(false);
        assert_eq!(clean, 0x55);
        assert_eq!(clean_stats.total(), 0);
        let (flipped, stats) = run(true);
        assert_eq!(flipped, 0x57, "bit 1 flipped exactly once");
        assert_eq!(stats.ram_bit_flips, 1);
        // Determinism: the same plan injects identically on a second run.
        assert_eq!(run(true), (flipped, stats));
    }

    #[test]
    fn fault_plan_survives_snapshot_restore_without_replaying() {
        let ram = ArchProfile::armv().ram_base;
        let mut m = machine_with(&[
            Insn::Lui { rd: Reg::R1, imm: ram },
            Insn::Sw { rs2: Reg::R0, rs1: Reg::R1, imm: 0 },
            Insn::Jal { rd: Reg::R0, offset: 0 },
        ]);
        let plan = crate::fault::FaultPlan::new()
            .with(crate::fault::FaultEvent::once(50, FaultKind::RamBitFlip { offset: 0, bit: 0 }));
        m.set_fault_plan(&plan);
        let snap = m.snapshot();
        m.run(&mut crate::hook::NullHook, 200).unwrap();
        assert_eq!(m.injection_stats().ram_bit_flips, 1);
        assert_eq!(m.pending_faults(), 0);
        // Restoring the snapshot rewinds guest state but not the lifetime
        // clock: the already-fired event must not replay.
        m.restore(&snap).unwrap();
        m.run(&mut crate::hook::NullHook, 200).unwrap();
        assert_eq!(m.injection_stats().ram_bit_flips, 1, "no replay after restore");
        assert_eq!(m.read_mem(ram, 4).unwrap(), 0, "restored RAM stays clean");
        assert!(m.lifetime_retired() > m.retired());
    }

    #[test]
    fn mmio_corruption_window_applies_and_drains() {
        let mut m = machine_with(&[Insn::Jal { rd: Reg::R0, offset: 0 }]);
        let plan = crate::fault::FaultPlan::new().with(crate::fault::FaultEvent::once(
            10,
            FaultKind::MmioCorrupt { xor: 0xFF, reads: 2 },
        ));
        m.set_fault_plan(&plan);
        m.run(&mut crate::hook::NullHook, 50).unwrap();
        assert_eq!(m.injection_stats().mmio_corruptions, 1);
        let mmio = m.profile().mmio_base;
        // UART status normally reads 1 (always ready); corrupted it is 0xFE.
        assert_eq!(m.bus_mut().read(mmio + 4, 4).unwrap(), 0xFE);
        assert_eq!(m.bus_mut().read(mmio + 4, 4).unwrap(), 0xFE);
        assert_eq!(m.bus_mut().read(mmio + 4, 4).unwrap(), 1, "window drained");
    }

    #[test]
    fn stuck_cpu_live_locks_and_classifies() {
        // A well-behaved guest that parks after storing.
        let mut m = machine_with(&[
            Insn::Addi { rd: Reg::R1, rs1: Reg::R0, imm: 1 },
            Insn::Wfi,
            Insn::Jal { rd: Reg::R0, offset: -4 },
        ]);
        assert_eq!(m.run(&mut crate::hook::NullHook, 1000).unwrap(), RunExit::AllIdle);
        assert_eq!(
            m.classify_hang(&mut crate::hook::NullHook, 3, 100).unwrap(),
            HangClass::WfiIdle
        );
        // Wedge the core: it now burns budget forever.
        let plan = crate::fault::FaultPlan::new()
            .with(crate::fault::FaultEvent::once(0, FaultKind::StuckCpu { cpu: 0 }));
        m.set_fault_plan(&plan);
        assert_eq!(m.run(&mut crate::hook::NullHook, 1000).unwrap(), RunExit::BudgetExhausted);
        assert!(m.cpu(0).is_wedged());
        assert_eq!(
            m.classify_hang(&mut crate::hook::NullHook, 3, 100).unwrap(),
            HangClass::LiveLock
        );
        assert_eq!(m.injection_stats().cpu_wedges, 1);
    }

    #[test]
    fn spurious_irq_and_alloc_fail_inject() {
        let mut m = machine_with(&[Insn::Jal { rd: Reg::R0, offset: 0 }]);
        let plan = crate::fault::FaultPlan::new()
            .with(crate::fault::FaultEvent::once(10, FaultKind::SpuriousIrq))
            .with(crate::fault::FaultEvent::once(20, FaultKind::AllocFail { count: 3 }));
        m.set_fault_plan(&plan);
        m.run(&mut crate::hook::NullHook, 100).unwrap();
        let stats = m.injection_stats();
        assert_eq!(stats.spurious_irqs, 1);
        assert_eq!(stats.alloc_failures, 1);
        // With no trap vector the IRQ stays pending; the fault device is armed.
        assert_eq!(m.bus_mut().devices.fault.armed(), 3);
    }
}
