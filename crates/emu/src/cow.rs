//! Copy-on-write paged byte storage for snapshot forking.
//!
//! [`PagedBytes`] is the storage primitive behind shared base images:
//! a byte buffer that is either a plain owned vector (`Flat`, the boot
//! path) or a fork of an immutable `Arc`-shared base plus a sparse
//! per-page overlay (`Cow`). Reads fall through overlay → base; the
//! first write to a page allocates an overlay copy of that page. A
//! forked worker therefore holds O(dirty pages) of private memory
//! instead of a full O(RAM) copy, and restoring to the base is just
//! dropping the overlay pages the dirty bitmap names.
//!
//! The bus uses it for guest RAM (4 KiB pages); the sanitizer runtime
//! reuses it for the shadow and uninit-bit planes. The hot accessors
//! rely on the same invariant the dirty bitmap does: size-aligned
//! accesses of ≤ a page never straddle a page boundary.

use std::sync::Arc;

/// A byte buffer that can fork from an immutable shared base, paying
/// only for pages it writes.
#[derive(Debug, Clone)]
pub struct PagedBytes {
    page_shift: u32,
    len: usize,
    /// Bytes held in private overlay pages (kept exact on alloc/free so
    /// per-worker memory telemetry is O(1) to read).
    resident: usize,
    store: Store,
}

#[derive(Debug, Clone)]
enum Store {
    /// A plain owned buffer (no base to fall through to).
    Flat(Vec<u8>),
    /// A fork: reads fall through `overlay` to `base`; writes allocate
    /// overlay pages on first touch.
    Cow { base: Arc<Vec<u8>>, overlay: Vec<Option<Box<[u8]>>> },
}

impl PagedBytes {
    /// A flat zero-filled buffer of `len` bytes with `1 << page_shift`
    /// byte pages.
    pub fn zeroed(len: usize, page_shift: u32) -> PagedBytes {
        PagedBytes { page_shift, len, resident: 0, store: Store::Flat(vec![0; len]) }
    }

    /// A flat buffer taking ownership of `bytes`.
    pub fn from_vec(bytes: Vec<u8>, page_shift: u32) -> PagedBytes {
        PagedBytes { page_shift, len: bytes.len(), resident: 0, store: Store::Flat(bytes) }
    }

    /// A fork of `base`: shares every page until written.
    pub fn forked(base: Arc<Vec<u8>>, page_shift: u32) -> PagedBytes {
        let len = base.len();
        let pages = len.div_ceil(1usize << page_shift);
        PagedBytes {
            page_shift,
            len,
            resident: 0,
            store: Store::Cow { base, overlay: vec![None; pages] },
        }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether this buffer is a copy-on-write fork of a shared base.
    pub fn is_forked(&self) -> bool {
        matches!(self.store, Store::Cow { .. })
    }

    /// Bytes of private overlay currently resident (0 when flat; the
    /// flat buffer itself is the caller's baseline, not an increment).
    pub fn overlay_bytes(&self) -> usize {
        self.resident
    }

    /// Number of allocated overlay pages.
    pub fn overlay_pages(&self) -> usize {
        match &self.store {
            Store::Flat(_) => 0,
            Store::Cow { overlay, .. } => overlay.iter().filter(|p| p.is_some()).count(),
        }
    }

    /// Whether this buffer forks from exactly `base` (pointer identity).
    pub fn shares_base(&self, base: &Arc<Vec<u8>>) -> bool {
        match &self.store {
            Store::Flat(_) => false,
            Store::Cow { base: own, .. } => Arc::ptr_eq(own, base),
        }
    }

    /// Byte size of one page.
    fn page_size(&self) -> usize {
        1usize << self.page_shift
    }

    /// Extent of `page` (the last page may be partial).
    fn page_span(&self, page: usize) -> (usize, usize) {
        let start = page << self.page_shift;
        (start, (start + self.page_size()).min(self.len))
    }

    /// Reads the byte at `index`.
    #[inline]
    pub fn get(&self, index: usize) -> u8 {
        match &self.store {
            Store::Flat(bytes) => bytes[index],
            Store::Cow { base, overlay } => match &overlay[index >> self.page_shift] {
                Some(page) => page[index & (self.page_size() - 1)],
                None => base[index],
            },
        }
    }

    /// Borrows `len` bytes at `offset`, which must not straddle a page
    /// boundary (guaranteed for size-aligned accesses of ≤ a page).
    #[inline]
    pub fn read_slice(&self, offset: usize, len: usize) -> &[u8] {
        debug_assert!(
            offset >> self.page_shift == (offset + len - 1) >> self.page_shift,
            "read_slice straddles a page"
        );
        match &self.store {
            Store::Flat(bytes) => &bytes[offset..offset + len],
            Store::Cow { base, overlay } => match &overlay[offset >> self.page_shift] {
                Some(page) => {
                    let start = offset & (self.page_size() - 1);
                    &page[start..start + len]
                }
                None => &base[offset..offset + len],
            },
        }
    }

    /// Mutably borrows `len` bytes at `offset` (same non-straddling
    /// contract as [`PagedBytes::read_slice`]), allocating the overlay
    /// page on first touch.
    #[inline]
    pub fn slice_mut(&mut self, offset: usize, len: usize) -> &mut [u8] {
        debug_assert!(
            offset >> self.page_shift == (offset + len - 1) >> self.page_shift,
            "slice_mut straddles a page"
        );
        if let Store::Cow { overlay, .. } = &self.store {
            let page = offset >> self.page_shift;
            if overlay[page].is_none() {
                self.ensure_overlay(page);
            }
        }
        let page_mask = self.page_size() - 1;
        match &mut self.store {
            Store::Flat(bytes) => &mut bytes[offset..offset + len],
            Store::Cow { overlay, .. } => {
                let page = offset >> self.page_shift;
                let start = offset & page_mask;
                let slot = overlay[page].as_mut().expect("overlay page ensured above");
                &mut slot[start..start + len]
            }
        }
    }

    /// Mutably borrows the byte at `index`.
    #[inline]
    pub fn byte_mut(&mut self, index: usize) -> &mut u8 {
        &mut self.slice_mut(index, 1)[0]
    }

    /// Allocates the overlay page for `page` (copying the base extent)
    /// if it is not resident yet.
    #[cold]
    fn ensure_overlay(&mut self, page: usize) {
        let (start, end) = self.page_span(page);
        let Store::Cow { base, overlay } = &mut self.store else {
            return;
        };
        if overlay[page].is_none() {
            overlay[page] = Some(base[start..end].to_vec().into_boxed_slice());
            self.resident += end - start;
        }
    }

    /// Copies `src` into the buffer at `offset`, straddle-safe (splits
    /// the copy at page boundaries in CoW mode).
    pub fn write_bytes(&mut self, offset: usize, src: &[u8]) {
        match &mut self.store {
            Store::Flat(bytes) => bytes[offset..offset + src.len()].copy_from_slice(src),
            Store::Cow { .. } => {
                let mut cursor = 0;
                while cursor < src.len() {
                    let at = offset + cursor;
                    let (_, page_end) = self.page_span(at >> self.page_shift);
                    let chunk = (src.len() - cursor).min(page_end - at);
                    self.slice_mut(at, chunk).copy_from_slice(&src[cursor..cursor + chunk]);
                    cursor += chunk;
                }
            }
        }
    }

    /// Fills `offset..offset + len` with `value`, straddle-safe.
    pub fn fill(&mut self, offset: usize, len: usize, value: u8) {
        match &mut self.store {
            Store::Flat(bytes) => bytes[offset..offset + len].fill(value),
            Store::Cow { .. } => {
                let mut cursor = 0;
                while cursor < len {
                    let at = offset + cursor;
                    let (_, page_end) = self.page_span(at >> self.page_shift);
                    let chunk = (len - cursor).min(page_end - at);
                    self.slice_mut(at, chunk).fill(value);
                    cursor += chunk;
                }
            }
        }
    }

    /// Reads `dst.len()` bytes at `offset`, straddle-safe.
    pub fn read_bytes(&self, offset: usize, dst: &mut [u8]) {
        match &self.store {
            Store::Flat(bytes) => dst.copy_from_slice(&bytes[offset..offset + dst.len()]),
            Store::Cow { .. } => {
                let mut cursor = 0;
                while cursor < dst.len() {
                    let at = offset + cursor;
                    let (_, page_end) = self.page_span(at >> self.page_shift);
                    let chunk = (dst.len() - cursor).min(page_end - at);
                    dst[cursor..cursor + chunk].copy_from_slice(self.read_slice(at, chunk));
                    cursor += chunk;
                }
            }
        }
    }

    /// Drops the overlay page at `page`, reverting its extent to the
    /// base. No-op when flat or not resident. O(1).
    #[inline]
    pub fn revert_page(&mut self, page: usize) {
        let (start, end) = self.page_span(page);
        if let Store::Cow { overlay, .. } = &mut self.store {
            if overlay[page].take().is_some() {
                self.resident -= end - start;
            }
        }
    }

    /// Makes this buffer's page at `page` byte-equal to `other`'s.
    ///
    /// When both fork the same base and `other` has no overlay there,
    /// this just drops the local overlay page (O(1), frees memory);
    /// otherwise it copies the page contents.
    pub fn restore_page_from(&mut self, other: &PagedBytes, page: usize) {
        debug_assert_eq!(self.len, other.len);
        debug_assert_eq!(self.page_shift, other.page_shift);
        let (start, end) = self.page_span(page);
        let shared_clean = matches!(
            (&self.store, &other.store),
            (Store::Cow { base, .. }, Store::Cow { base: other_base, overlay: other_overlay })
                if Arc::ptr_eq(base, other_base) && other_overlay[page].is_none()
        );
        if shared_clean {
            self.revert_page(page);
            return;
        }
        let mut tmp = [0u8; 1 << 12];
        if end - start <= tmp.len() {
            let buf = &mut tmp[..end - start];
            other.read_bytes(start, buf);
            self.slice_mut(start, end - start).copy_from_slice(buf);
        } else {
            let mut buf = vec![0u8; end - start];
            other.read_bytes(start, &mut buf);
            self.slice_mut(start, end - start).copy_from_slice(&buf);
        }
    }

    /// Full contents as an owned vector (materializes base + overlay).
    pub fn to_vec(&self) -> Vec<u8> {
        match &self.store {
            Store::Flat(bytes) => bytes.clone(),
            Store::Cow { base, overlay } => {
                let mut out = base.as_ref().clone();
                for (page, slot) in overlay.iter().enumerate() {
                    if let Some(bytes) = slot {
                        let start = page << self.page_shift;
                        out[start..start + bytes.len()].copy_from_slice(bytes);
                    }
                }
                out
            }
        }
    }

    /// Converts this buffer into a fork of an immutable base holding its
    /// current contents, and returns that base. A flat buffer becomes the
    /// base itself (no copy); a fork with an empty overlay returns its
    /// existing base; a diverged fork materializes a new base.
    pub fn freeze(&mut self) -> Arc<Vec<u8>> {
        let page_shift = self.page_shift;
        let base = match &mut self.store {
            Store::Flat(bytes) => Arc::new(std::mem::take(bytes)),
            Store::Cow { base, overlay } => {
                if overlay.iter().all(Option::is_none) {
                    return Arc::clone(base);
                }
                let mut out = base.as_ref().clone();
                for (page, slot) in overlay.iter().enumerate() {
                    if let Some(bytes) = slot {
                        let start = page << page_shift;
                        out[start..start + bytes.len()].copy_from_slice(bytes);
                    }
                }
                Arc::new(out)
            }
        };
        *self = PagedBytes::forked(Arc::clone(&base), self.page_shift);
        base
    }

    /// Re-forks this buffer from `base`, discarding current contents and
    /// overlay. O(pages) bookkeeping, no byte copies.
    pub fn adopt(&mut self, base: Arc<Vec<u8>>) {
        debug_assert_eq!(self.len, base.len());
        *self = PagedBytes::forked(base, self.page_shift);
    }
}

impl PartialEq for PagedBytes {
    /// Content equality (storage strategy is invisible).
    fn eq(&self, other: &PagedBytes) -> bool {
        if self.len != other.len {
            return false;
        }
        (0..self.len).all(|i| self.get(i) == other.get(i))
    }
}

impl Eq for PagedBytes {}

#[cfg(test)]
mod tests {
    use super::*;

    const SHIFT: u32 = 12;
    const PAGE: usize = 1 << SHIFT;

    #[test]
    fn flat_roundtrip_and_freeze_shares() {
        let mut buf = PagedBytes::zeroed(2 * PAGE + 100, SHIFT);
        buf.write_bytes(10, b"hello");
        assert_eq!(buf.read_slice(10, 5), b"hello");
        let base = buf.freeze();
        assert!(buf.is_forked());
        assert!(buf.shares_base(&base));
        assert_eq!(buf.overlay_bytes(), 0);
        assert_eq!(&base[10..15], b"hello");
    }

    #[test]
    fn writes_allocate_overlay_and_never_touch_base() {
        let base = Arc::new(vec![0xAAu8; 3 * PAGE]);
        let mut fork = PagedBytes::forked(Arc::clone(&base), SHIFT);
        fork.write_bytes(PAGE + 4, &[1, 2, 3, 4]);
        assert_eq!(fork.overlay_pages(), 1);
        assert_eq!(fork.overlay_bytes(), PAGE);
        assert_eq!(fork.get(PAGE + 4), 1);
        assert_eq!(fork.get(PAGE + 3), 0xAA, "rest of the page copies base");
        assert!(base.iter().all(|b| *b == 0xAA), "base is immutable");
    }

    #[test]
    fn straddling_bulk_ops_split_at_page_boundaries() {
        let base = Arc::new((0..3 * PAGE).map(|i| i as u8).collect::<Vec<u8>>());
        let mut fork = PagedBytes::forked(Arc::clone(&base), SHIFT);
        let src: Vec<u8> = (0..PAGE + 64).map(|i| !(i as u8)).collect();
        fork.write_bytes(PAGE - 32, &src);
        assert_eq!(fork.overlay_pages(), 3);
        let mut back = vec![0u8; src.len()];
        fork.read_bytes(PAGE - 32, &mut back);
        assert_eq!(back, src);
        assert_eq!(fork.get(PAGE - 33), (PAGE - 33) as u8, "before window untouched");
    }

    #[test]
    fn revert_page_returns_to_base_and_frees() {
        let base = Arc::new(vec![7u8; 2 * PAGE]);
        let mut fork = PagedBytes::forked(Arc::clone(&base), SHIFT);
        fork.write_bytes(0, &[1]);
        fork.write_bytes(PAGE, &[2]);
        assert_eq!(fork.overlay_bytes(), 2 * PAGE);
        fork.revert_page(0);
        assert_eq!(fork.get(0), 7);
        assert_eq!(fork.get(PAGE), 2);
        assert_eq!(fork.overlay_bytes(), PAGE);
    }

    #[test]
    fn restore_page_from_prefers_dropping_shared_pages() {
        let base = Arc::new(vec![9u8; 2 * PAGE]);
        let baseline = PagedBytes::forked(Arc::clone(&base), SHIFT);
        let mut fork = PagedBytes::forked(Arc::clone(&base), SHIFT);
        fork.write_bytes(5, &[0]);
        fork.restore_page_from(&baseline, 0);
        assert_eq!(fork.overlay_bytes(), 0, "shared clean page is dropped, not copied");
        assert_eq!(fork, baseline);
        // Diverged baseline: contents are copied instead.
        let mut diverged = PagedBytes::forked(Arc::clone(&base), SHIFT);
        diverged.write_bytes(0, &[1, 2, 3]);
        fork.restore_page_from(&diverged, 0);
        assert_eq!(fork.read_slice(0, 3), &[1, 2, 3]);
    }

    #[test]
    fn partial_tail_page_is_sized_exactly() {
        let base = Arc::new(vec![3u8; PAGE + 10]);
        let mut fork = PagedBytes::forked(Arc::clone(&base), SHIFT);
        fork.write_bytes(PAGE + 9, &[1]);
        assert_eq!(fork.overlay_bytes(), 10, "tail overlay page is partial");
        assert_eq!(fork.to_vec().len(), PAGE + 10);
        fork.revert_page(1);
        assert_eq!(fork.overlay_bytes(), 0);
    }

    #[test]
    fn freeze_of_diverged_fork_materializes_new_base() {
        let base = Arc::new(vec![0u8; PAGE]);
        let mut fork = PagedBytes::forked(Arc::clone(&base), SHIFT);
        fork.write_bytes(1, &[5]);
        let rebased = fork.freeze();
        assert!(!Arc::ptr_eq(&base, &rebased));
        assert_eq!(rebased[1], 5);
        assert_eq!(fork.overlay_bytes(), 0);
        assert!(fork.shares_base(&rebased));
    }

    #[test]
    fn adopt_rebases_in_constant_bytes() {
        let a = Arc::new(vec![1u8; PAGE]);
        let b = Arc::new(vec![2u8; PAGE]);
        let mut fork = PagedBytes::forked(a, SHIFT);
        fork.write_bytes(0, &[9]);
        fork.adopt(Arc::clone(&b));
        assert!(fork.shares_base(&b));
        assert_eq!(fork.overlay_bytes(), 0);
        assert_eq!(fork.get(0), 2);
    }
}
