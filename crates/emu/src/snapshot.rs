//! Machine snapshot / restore.
//!
//! Fuzzers take a snapshot at the firmware's ready-to-run point and restore
//! it before every test program, so each execution starts from an identical,
//! fully booted system state.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::cpu::Cpu;
use crate::device::DeviceSet;
use crate::error::EmuError;
use crate::machine::Machine;

/// Process-wide snapshot identity counter; see [`Snapshot::id`].
static NEXT_SNAPSHOT_ID: AtomicU64 = AtomicU64::new(1);

/// A point-in-time copy of all mutable machine state (RAM, vCPUs, devices,
/// retired-instruction counters). The ROM and translation cache are not part
/// of the snapshot: ROM is immutable and the cache is a pure function of ROM
/// plus the hook configuration.
///
/// `PartialEq` compares the full captured state byte-for-byte, which is what
/// the snapshot-fidelity property tests rely on. The internal identity tag
/// (used to key the dirty-page fast restore) is excluded: clones share their
/// original's id — their RAM images are identical, so either is a valid
/// dirty-restore baseline for the other.
#[derive(Debug, Clone, Eq)]
pub struct Snapshot {
    /// Unique per-capture identity. The machine remembers the id of the last
    /// snapshot it fully restored; restoring the *same* snapshot again can
    /// then copy only pages dirtied since, because RAM is known to differ
    /// from the snapshot image only where the bus marked writes.
    id: u64,
    ram: Vec<u8>,
    cpus: Vec<Cpu>,
    devices: DeviceSet,
    global_retired: u64,
}

impl PartialEq for Snapshot {
    fn eq(&self, other: &Snapshot) -> bool {
        self.ram == other.ram
            && self.cpus == other.cpus
            && self.devices == other.devices
            && self.global_retired == other.global_retired
    }
}

impl Machine {
    /// Captures a snapshot of the current machine state.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            id: NEXT_SNAPSHOT_ID.fetch_add(1, Ordering::Relaxed),
            ram: self.bus().clone_ram(),
            cpus: (0..self.cpu_count()).map(|i| self.cpu(i).clone()).collect(),
            devices: self.bus().devices.clone(),
            global_retired: self.retired(),
        }
    }

    /// Restores a snapshot previously taken from a machine with the same
    /// RAM size and vCPU count.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::SnapshotMismatch`] if the snapshot shape does not
    /// match this machine.
    pub fn restore(&mut self, snapshot: &Snapshot) -> Result<(), EmuError> {
        let (_, ram_size) = self.bus().ram_range();
        if snapshot.ram.len() != ram_size as usize {
            return Err(EmuError::SnapshotMismatch(format!(
                "snapshot RAM is {} bytes, machine has {}",
                snapshot.ram.len(),
                ram_size
            )));
        }
        if snapshot.cpus.len() != self.cpu_count() {
            return Err(EmuError::SnapshotMismatch(format!(
                "snapshot has {} vCPUs, machine has {}",
                snapshot.cpus.len(),
                self.cpu_count()
            )));
        }
        if self.restore_baseline == Some(snapshot.id) {
            // Fast path: RAM differs from the snapshot image only on pages
            // the bus marked dirty since the last restore of this snapshot.
            self.bus_mut().restore_ram_dirty(&snapshot.ram);
        } else {
            self.bus_mut().restore_ram(&snapshot.ram);
            self.restore_baseline = Some(snapshot.id);
        }
        self.bus_mut().devices = snapshot.devices.clone();
        for (i, cpu) in snapshot.cpus.iter().enumerate() {
            *self.cpu_mut(i) = cpu.clone();
        }
        self.set_retired(snapshot.global_retired);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::hook::NullHook;
    use crate::isa::{Insn, Reg};
    use crate::machine::{Machine, RunExit};
    use crate::profile::ArchProfile;

    fn counting_machine() -> Machine {
        let profile = ArchProfile::armv();
        let ram = profile.ram_base;
        let insns = [
            Insn::Lui { rd: Reg::R1, imm: ram },
            Insn::Lw { rd: Reg::R3, rs1: Reg::R1, imm: 0 },
            Insn::Addi { rd: Reg::R3, rs1: Reg::R3, imm: 1 },
            Insn::Sw { rs2: Reg::R3, rs1: Reg::R1, imm: 0 },
            Insn::Jal { rd: Reg::R0, offset: -12 },
        ];
        let mut text = Vec::new();
        for insn in &insns {
            text.extend_from_slice(&insn.encode().to_bytes(profile.endian));
        }
        Machine::builder(profile).rom(profile.rom_base, &text).ram(ram, 0x1000).build().unwrap()
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut m = counting_machine();
        let ram = ArchProfile::armv().ram_base;
        m.run(&mut NullHook, 100).unwrap();
        let snap = m.snapshot();
        let count_at_snap = m.read_mem(ram, 4).unwrap();
        let pc_at_snap = m.cpu(0).pc;

        m.run(&mut NullHook, 1000).unwrap();
        assert_ne!(m.read_mem(ram, 4).unwrap(), count_at_snap);

        m.restore(&snap).unwrap();
        assert_eq!(m.read_mem(ram, 4).unwrap(), count_at_snap);
        assert_eq!(m.cpu(0).pc, pc_at_snap);
        assert_eq!(m.retired(), 100);

        // Determinism: re-running from the snapshot reproduces the same state.
        let exit1 = m.run(&mut NullHook, 500).unwrap();
        let v1 = m.read_mem(ram, 4).unwrap();
        m.restore(&snap).unwrap();
        let exit2 = m.run(&mut NullHook, 500).unwrap();
        let v2 = m.read_mem(ram, 4).unwrap();
        assert_eq!(exit1, exit2);
        assert_eq!(exit1, RunExit::BudgetExhausted);
        assert_eq!(v1, v2);
    }

    #[test]
    fn repeated_restores_use_dirty_fast_path_and_stay_exact() {
        let mut m = counting_machine();
        m.run(&mut NullHook, 100).unwrap();
        let snap = m.snapshot();
        // First restore takes the full-copy path and establishes the baseline.
        m.restore(&snap).unwrap();
        assert_eq!(m.bus().dirty_ram_pages(), 0);
        for round in 0..4u64 {
            // Dirty RAM through both guest stores and host bulk writes.
            m.run(&mut NullHook, 50 + round).unwrap();
            let (ram_base, ram_size) = m.bus().ram_range();
            m.write_mem(ram_base + ram_size - 4, 4, 0xC0FF_EE00 + round as u32).unwrap();
            m.bus_mut().write_bytes(ram_base + 0x800, &[round as u8; 16]).unwrap();
            assert!(m.bus().dirty_ram_pages() > 0);
            m.restore(&snap).unwrap();
            // Dirty-page restore must leave state byte-identical to a full
            // restore: re-capturing reproduces the original snapshot exactly.
            assert_eq!(m.snapshot(), snap);
            assert_eq!(m.bus().dirty_ram_pages(), 0);
        }
    }

    #[test]
    fn restoring_a_different_snapshot_rebaselines() {
        let mut m = counting_machine();
        m.run(&mut NullHook, 100).unwrap();
        let snap_a = m.snapshot();
        m.restore(&snap_a).unwrap(); // baseline is now snap_a
        m.run(&mut NullHook, 100).unwrap();
        let snap_b = m.snapshot();
        // Alternating snapshots always takes the full path, never a stale
        // dirty baseline; each restore must be exact.
        m.restore(&snap_a).unwrap();
        assert_eq!(m.snapshot(), snap_a);
        m.restore(&snap_b).unwrap();
        assert_eq!(m.snapshot(), snap_b);
        m.restore(&snap_a).unwrap();
        assert_eq!(m.snapshot(), snap_a);
    }

    #[test]
    fn mismatched_snapshot_rejected() {
        let m1 = counting_machine();
        let snap = m1.snapshot();
        let profile = ArchProfile::armv();
        let mut m2 = Machine::builder(profile)
            .rom(profile.rom_base, &[0; 16])
            .ram(profile.ram_base, 0x2000) // different RAM size
            .build()
            .unwrap();
        assert!(m2.restore(&snap).is_err());
    }
}
