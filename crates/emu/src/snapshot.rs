//! Machine snapshot / restore around copy-on-write forking.
//!
//! Fuzzers take a snapshot at the firmware's ready-to-run point and restore
//! it before every test program, so each execution starts from an identical,
//! fully booted system state.
//!
//! The RAM image inside a [`Snapshot`] is an immutable `Arc`-shared base:
//! restoring it *forks* the machine's RAM from that base instead of copying
//! it. From then on the bus allocates private overlay pages only for pages
//! the guest writes, and restoring the same snapshot again just drops those
//! overlay pages (O(dirty), and it *frees* memory rather than copying).
//! Any number of machines — parallel fuzzing workers, daemon jobs — can
//! fork from one base, so per-worker incremental memory is O(dirty pages),
//! not O(RAM). Base identity is `Arc` pointer identity: no id counters, no
//! cross-restore bookkeeping to invalidate.

use std::sync::Arc;

use crate::cpu::Cpu;
use crate::device::DeviceSet;
use crate::error::EmuError;
use crate::machine::Machine;

/// A point-in-time copy of all mutable machine state (RAM, vCPUs, devices,
/// retired-instruction counters). The ROM and translation cache are not part
/// of the snapshot: ROM is immutable and the cache is a pure function of ROM
/// plus the hook configuration.
///
/// The RAM image is `Arc`-shared and never mutated after capture; clones
/// share it. `PartialEq` compares the full captured state byte-for-byte,
/// which is what the snapshot-fidelity property tests rely on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// The immutable base RAM image machines fork from on restore.
    ram: Arc<Vec<u8>>,
    cpus: Vec<Cpu>,
    devices: DeviceSet,
    global_retired: u64,
}

impl Snapshot {
    /// The shared base RAM image (for base-identity checks and hashing).
    pub fn ram_base(&self) -> &Arc<Vec<u8>> {
        &self.ram
    }

    /// Size of the captured state in bytes (the shared base; paid once per
    /// base image, not per forked machine).
    pub fn base_bytes(&self) -> usize {
        self.ram.len()
    }

    /// Folds this snapshot's contents into `hash` (FNV-1a): RAM bytes,
    /// then the CPU/device state and retired count via their canonical
    /// `Debug` rendering. Deterministic for identical machine states, so
    /// two independently booted sessions of the same firmware hash alike
    /// and can share one base image.
    pub fn fold_hash(&self, mut hash: u64) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        for &b in self.ram.iter() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(PRIME);
        }
        let tail = format!("{:?}|{:?}|{}", self.cpus, self.devices, self.global_retired);
        for &b in tail.as_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(PRIME);
        }
        hash
    }
}

impl Machine {
    /// Captures a snapshot of the current machine state. The RAM image is
    /// materialized once (base + any overlay) and becomes the immutable
    /// shared base of every machine that restores the snapshot.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            ram: Arc::new(self.bus().clone_ram()),
            cpus: (0..self.cpu_count()).map(|i| self.cpu(i).clone()).collect(),
            devices: self.bus().devices.clone(),
            global_retired: self.retired(),
        }
    }

    /// Restores a snapshot previously taken from a machine with the same
    /// RAM size and vCPU count.
    ///
    /// If RAM already forks from this snapshot's base, the restore drops
    /// only the overlay pages dirtied since the last restore (O(dirty)).
    /// Otherwise RAM re-forks from the snapshot's base — O(pages)
    /// bookkeeping and zero byte copies, releasing any previously private
    /// RAM back to the allocator.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::SnapshotMismatch`] if the snapshot shape does not
    /// match this machine.
    pub fn restore(&mut self, snapshot: &Snapshot) -> Result<(), EmuError> {
        let (_, ram_size) = self.bus().ram_range();
        if snapshot.ram.len() != ram_size as usize {
            return Err(EmuError::SnapshotMismatch(format!(
                "snapshot RAM is {} bytes, machine has {}",
                snapshot.ram.len(),
                ram_size
            )));
        }
        if snapshot.cpus.len() != self.cpu_count() {
            return Err(EmuError::SnapshotMismatch(format!(
                "snapshot has {} vCPUs, machine has {}",
                snapshot.cpus.len(),
                self.cpu_count()
            )));
        }
        if self.bus().ram_shares_base(&snapshot.ram) {
            // Fast path: RAM differs from the base only on the overlay
            // pages the bus marked dirty since the last restore.
            self.bus_mut().restore_ram_cow();
        } else {
            self.bus_mut().adopt_ram(&snapshot.ram);
        }
        self.finish_restore(snapshot);
        Ok(())
    }

    /// The pre-CoW reference restore: RAM becomes a flat private copy of
    /// the snapshot image (O(RAM) memory and copy cost). Kept so the
    /// fork-isolation suite can prove the CoW path byte-equivalent to it;
    /// not used on any production path.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::SnapshotMismatch`] exactly as [`Machine::restore`].
    pub fn restore_materialized(&mut self, snapshot: &Snapshot) -> Result<(), EmuError> {
        let (_, ram_size) = self.bus().ram_range();
        if snapshot.ram.len() != ram_size as usize {
            return Err(EmuError::SnapshotMismatch(format!(
                "snapshot RAM is {} bytes, machine has {}",
                snapshot.ram.len(),
                ram_size
            )));
        }
        if snapshot.cpus.len() != self.cpu_count() {
            return Err(EmuError::SnapshotMismatch(format!(
                "snapshot has {} vCPUs, machine has {}",
                snapshot.cpus.len(),
                self.cpu_count()
            )));
        }
        self.bus_mut().restore_ram_flat(&snapshot.ram);
        self.finish_restore(snapshot);
        Ok(())
    }

    fn finish_restore(&mut self, snapshot: &Snapshot) {
        self.bus_mut().devices = snapshot.devices.clone();
        for (i, cpu) in snapshot.cpus.iter().enumerate() {
            *self.cpu_mut(i) = cpu.clone();
        }
        self.set_retired(snapshot.global_retired);
    }

    /// Private overlay bytes guest RAM holds beyond its shared base
    /// (0 right after a restore; grows with pages dirtied since).
    pub fn ram_overlay_bytes(&self) -> usize {
        self.bus().ram_overlay_bytes()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use crate::hook::NullHook;
    use crate::isa::{Insn, Reg};
    use crate::machine::{Machine, RunExit};
    use crate::profile::ArchProfile;

    fn counting_machine() -> Machine {
        let profile = ArchProfile::armv();
        let ram = profile.ram_base;
        let insns = [
            Insn::Lui { rd: Reg::R1, imm: ram },
            Insn::Lw { rd: Reg::R3, rs1: Reg::R1, imm: 0 },
            Insn::Addi { rd: Reg::R3, rs1: Reg::R3, imm: 1 },
            Insn::Sw { rs2: Reg::R3, rs1: Reg::R1, imm: 0 },
            Insn::Jal { rd: Reg::R0, offset: -12 },
        ];
        let mut text = Vec::new();
        for insn in &insns {
            text.extend_from_slice(&insn.encode().to_bytes(profile.endian));
        }
        Machine::builder(profile).rom(profile.rom_base, &text).ram(ram, 0x1000).build().unwrap()
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut m = counting_machine();
        let ram = ArchProfile::armv().ram_base;
        m.run(&mut NullHook, 100).unwrap();
        let snap = m.snapshot();
        let count_at_snap = m.read_mem(ram, 4).unwrap();
        let pc_at_snap = m.cpu(0).pc;

        m.run(&mut NullHook, 1000).unwrap();
        assert_ne!(m.read_mem(ram, 4).unwrap(), count_at_snap);

        m.restore(&snap).unwrap();
        assert_eq!(m.read_mem(ram, 4).unwrap(), count_at_snap);
        assert_eq!(m.cpu(0).pc, pc_at_snap);
        assert_eq!(m.retired(), 100);

        // Determinism: re-running from the snapshot reproduces the same state.
        let exit1 = m.run(&mut NullHook, 500).unwrap();
        let v1 = m.read_mem(ram, 4).unwrap();
        m.restore(&snap).unwrap();
        let exit2 = m.run(&mut NullHook, 500).unwrap();
        let v2 = m.read_mem(ram, 4).unwrap();
        assert_eq!(exit1, exit2);
        assert_eq!(exit1, RunExit::BudgetExhausted);
        assert_eq!(v1, v2);
    }

    #[test]
    fn repeated_restores_use_cow_fast_path_and_stay_exact() {
        let mut m = counting_machine();
        m.run(&mut NullHook, 100).unwrap();
        let snap = m.snapshot();
        // First restore forks RAM from the snapshot's base.
        m.restore(&snap).unwrap();
        assert!(m.bus().ram_is_forked());
        assert_eq!(m.bus().dirty_ram_pages(), 0);
        assert_eq!(m.ram_overlay_bytes(), 0);
        for round in 0..4u64 {
            // Dirty RAM through both guest stores and host bulk writes.
            m.run(&mut NullHook, 50 + round).unwrap();
            let (ram_base, ram_size) = m.bus().ram_range();
            m.write_mem(ram_base + ram_size - 4, 4, 0xC0FF_EE00 + round as u32).unwrap();
            m.bus_mut().write_bytes(ram_base + 0x800, &[round as u8; 16]).unwrap();
            assert!(m.bus().dirty_ram_pages() > 0);
            assert!(m.ram_overlay_bytes() > 0, "writes allocate overlay pages");
            m.restore(&snap).unwrap();
            // CoW restore must leave state byte-identical to a full
            // restore: re-capturing reproduces the original snapshot exactly.
            assert_eq!(m.snapshot(), snap);
            assert_eq!(m.bus().dirty_ram_pages(), 0);
            assert_eq!(m.ram_overlay_bytes(), 0, "restore frees the overlay");
        }
    }

    #[test]
    fn restoring_a_different_snapshot_rebases() {
        let mut m = counting_machine();
        m.run(&mut NullHook, 100).unwrap();
        let snap_a = m.snapshot();
        m.restore(&snap_a).unwrap(); // RAM now forks from snap_a's base
        m.run(&mut NullHook, 100).unwrap();
        let snap_b = m.snapshot();
        // Alternating snapshots re-forks each time; each restore must be
        // exact (no stale overlay from the other base can survive).
        m.restore(&snap_a).unwrap();
        assert_eq!(m.snapshot(), snap_a);
        m.restore(&snap_b).unwrap();
        assert_eq!(m.snapshot(), snap_b);
        m.restore(&snap_a).unwrap();
        assert_eq!(m.snapshot(), snap_a);
    }

    #[test]
    fn forked_machines_share_one_base() {
        let mut a = counting_machine();
        a.run(&mut NullHook, 100).unwrap();
        let snap = a.snapshot();
        let mut b = counting_machine();
        a.restore(&snap).unwrap();
        b.restore(&snap).unwrap();
        assert!(a.bus().ram_shares_base(snap.ram_base()));
        assert!(b.bus().ram_shares_base(snap.ram_base()));
        // Diverge both; the base (and the other fork) must not observe it.
        let (ram_base, _) = a.bus().ram_range();
        a.write_mem(ram_base + 0x10, 4, 0xAAAA_AAAA).unwrap();
        b.write_mem(ram_base + 0x10, 4, 0xBBBB_BBBB).unwrap();
        assert_eq!(a.read_mem(ram_base + 0x10, 4).unwrap(), 0xAAAA_AAAA);
        assert_eq!(b.read_mem(ram_base + 0x10, 4).unwrap(), 0xBBBB_BBBB);
        a.restore(&snap).unwrap();
        b.restore(&snap).unwrap();
        assert_eq!(a.snapshot(), snap);
        assert_eq!(b.snapshot(), snap);
    }

    #[test]
    fn cow_restore_equals_materialized_restore() {
        let mut cow = counting_machine();
        cow.run(&mut NullHook, 100).unwrap();
        let snap = cow.snapshot();
        let mut flat = counting_machine();
        cow.restore(&snap).unwrap();
        flat.restore_materialized(&snap).unwrap();
        for step in 0..3 {
            cow.run(&mut NullHook, 80 + step).unwrap();
            flat.run(&mut NullHook, 80 + step).unwrap();
            assert_eq!(cow.snapshot(), flat.snapshot(), "divergence at step {step}");
            cow.restore(&snap).unwrap();
            flat.restore_materialized(&snap).unwrap();
            assert_eq!(cow.snapshot(), snap);
            assert_eq!(flat.snapshot(), snap);
        }
        assert!(Arc::strong_count(snap.ram_base()) >= 2, "cow machine shares the base");
    }

    #[test]
    fn mismatched_snapshot_rejected() {
        let m1 = counting_machine();
        let snap = m1.snapshot();
        let profile = ArchProfile::armv();
        let mut m2 = Machine::builder(profile)
            .rom(profile.rom_base, &[0; 16])
            .ram(profile.ram_base, 0x2000) // different RAM size
            .build()
            .unwrap();
        assert!(m2.restore(&snap).is_err());
        assert!(m2.restore_materialized(&snap).is_err());
    }
}
