//! Full-system emulator substrate for EMBSAN.
//!
//! This crate is the reproduction's stand-in for QEMU/TCG: a deterministic
//! full-system emulator for the 32-bit EV32 instruction set with a
//! block-translation engine whose *translation templates can be modified* to
//! splice in sanitizer probes — the central mechanism of the EMBSAN paper's
//! Common Sanitizer Runtime (§3.3).
//!
//! The main entry point is [`machine::Machine`], which owns one or more
//! virtual CPUs ([`cpu::Cpu`]), a physical memory [`bus::Bus`] with MMIO
//! devices, and a [`translate::BlockCache`]. External tooling (the EMBSAN
//! runtime, fuzzers, the platform prober) observes and steers execution
//! through the [`hook::ExecHook`] trait.
//!
//! # Example
//!
//! ```
//! use embsan_emu::prelude::*;
//!
//! # fn main() -> Result<(), embsan_emu::EmuError> {
//! // Hand-assemble: r1 = 5; r2 = 7; r1 = r1 + r2; halt 0
//! let program = [
//!     Insn::Addi { rd: Reg::R1, rs1: Reg::R0, imm: 5 },
//!     Insn::Addi { rd: Reg::R2, rs1: Reg::R0, imm: 7 },
//!     Insn::Add { rd: Reg::R1, rs1: Reg::R1, rs2: Reg::R2 },
//!     Insn::Halt { code: 0 },
//! ];
//! let profile = ArchProfile::armv();
//! let mut text = Vec::new();
//! for insn in &program {
//!     text.extend_from_slice(&insn.encode().to_bytes(profile.endian));
//! }
//! let mut machine = Machine::builder(profile)
//!     .rom(profile.rom_base, &text)
//!     .ram(profile.ram_base, 0x1_0000)
//!     .build()?;
//! let exit = machine.run(&mut NullHook, 1_000)?;
//! assert_eq!(exit, RunExit::Halted { code: 0 });
//! assert_eq!(machine.cpu(0).regs.read(Reg::R1), 12);
//! # Ok(())
//! # }
//! ```

pub mod bus;
pub mod cow;
pub mod cpu;
pub mod device;
pub mod dirty;
pub mod error;
pub mod fault;
pub mod hook;
pub mod isa;
pub mod machine;
pub mod mmio_free;
pub mod profile;
pub mod snapshot;
pub mod translate;

pub use cow::PagedBytes;
pub use error::{EmuError, Fault};
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultPlanError, HangClass, InjectionStats};
pub use hook::{ExecHook, HookAction, HookConfig, NullHook};
pub use machine::{Machine, MachineBuilder, RunExit};
pub use mmio_free::{ModelFreeMmio, ModelFreeStats};
pub use profile::{Arch, ArchProfile, Endian};
pub use translate::CacheStats;

/// Convenient glob import of the types needed by most users.
pub mod prelude {
    pub use crate::bus::{Bus, MemAccess, MemKind};
    pub use crate::cpu::{Cpu, CpuView, Csr};
    pub use crate::error::{EmuError, Fault};
    pub use crate::fault::{FaultEvent, FaultKind, FaultPlan, HangClass, InjectionStats};
    pub use crate::hook::{ExecHook, HookAction, HookConfig, NullHook};
    pub use crate::isa::{Insn, Reg, Word};
    pub use crate::machine::{Machine, MachineBuilder, RunExit};
    pub use crate::profile::{Arch, ArchProfile, Endian};
    pub use crate::translate::CacheStats;
}
