//! Basic-block translation with sanitizer probe splicing.
//!
//! This module is the reproduction's TCG: guest code is decoded once into
//! cached blocks of "translated" operations. When a sanitizer arms memory
//! probes, the *translation templates change* — each memory operation in a
//! freshly translated block carries a probe marker, and the whole cache is
//! flushed so stale unprobed blocks cannot run. This is precisely the §3.3
//! mechanism ("the Runtime modifies its translation template by inserting a
//! call to a delegate function `load_intercept()`"), expressed in a
//! micro-op interpreter instead of emitted host code.

use std::collections::HashMap;
use std::rc::Rc;

use crate::bus::Bus;
use crate::error::Fault;
use crate::hook::HookConfig;
use crate::isa::{Insn, Reg, Word};

/// Maximum instructions per translation block.
pub const MAX_BLOCK_LEN: usize = 64;

/// One translated operation: a decoded instruction plus the probe markers
/// spliced in at translation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranslatedOp {
    /// The decoded instruction.
    pub insn: Insn,
    /// Guest address of the instruction.
    pub pc: u32,
    /// A memory probe precedes this op (set only for memory accesses, and
    /// only when the translation-time hook configuration armed `mem`).
    pub probe_mem: bool,
    /// A call/return probe is attached to this op.
    pub probe_call: bool,
}

/// A translated basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Guest address of the first instruction.
    pub start: u32,
    /// The translated operations, in program order.
    pub ops: Vec<TranslatedOp>,
}

/// Cache of translated blocks, keyed by start address.
///
/// The cache remembers the [`HookConfig`] it was built under; installing a
/// different configuration must go through [`BlockCache::reconfigure`],
/// which flushes every block.
#[derive(Debug, Default)]
pub struct BlockCache {
    blocks: HashMap<u32, Rc<Block>>,
    /// Direct-mapped front cache (the analogue of TCG's block chaining):
    /// most lookups hit here without touching the hash map.
    front: Vec<Option<Rc<Block>>>,
    config: HookConfig,
    translations: u64,
    hits: u64,
}

/// Size of the direct-mapped front cache (power of two).
const FRONT_SIZE: usize = 1 << 14;

#[inline]
fn front_index(pc: u32) -> usize {
    (pc >> 2) as usize & (FRONT_SIZE - 1)
}

impl BlockCache {
    /// Creates an empty cache with no probes armed.
    pub fn new() -> BlockCache {
        BlockCache::default()
    }

    /// The hook configuration the cached blocks were translated under.
    pub fn config(&self) -> HookConfig {
        self.config
    }

    /// Installs a new hook configuration, flushing all cached blocks if it
    /// differs from the current one (template regeneration).
    pub fn reconfigure(&mut self, config: HookConfig) {
        if config != self.config {
            self.flush();
            self.config = config;
        }
    }

    /// Drops every cached block (e.g. after host-side code patching).
    pub fn flush(&mut self) {
        self.blocks.clear();
        self.front.clear();
    }

    /// Number of blocks translated since creation (monotonic; not reset by
    /// flushes). Used by tests to observe cache behaviour.
    pub fn translation_count(&self) -> u64 {
        self.translations
    }

    /// Number of cache hits since creation.
    pub fn hit_count(&self) -> u64 {
        self.hits
    }

    /// Looks up (or translates) the block starting at `pc`.
    ///
    /// # Errors
    ///
    /// Returns a fetch or decode fault if `pc` does not point at valid code.
    pub fn lookup(&mut self, bus: &Bus, pc: u32) -> Result<Rc<Block>, Fault> {
        if self.front.is_empty() {
            self.front.resize(FRONT_SIZE, None);
        }
        let slot = front_index(pc);
        if let Some(block) = &self.front[slot] {
            if block.start == pc {
                self.hits += 1;
                return Ok(Rc::clone(block));
            }
        }
        if let Some(block) = self.blocks.get(&pc) {
            self.hits += 1;
            self.front[slot] = Some(Rc::clone(block));
            return Ok(Rc::clone(block));
        }
        let block = Rc::new(translate_block(bus, pc, self.config)?);
        self.translations += 1;
        self.blocks.insert(pc, Rc::clone(&block));
        self.front[slot] = Some(Rc::clone(&block));
        Ok(block)
    }
}

/// Whether an instruction is a call (writes a link register other than `r0`).
pub fn is_call(insn: &Insn) -> bool {
    match insn {
        Insn::Jal { rd, .. } | Insn::Jalr { rd, .. } => *rd != Reg::ZERO,
        _ => false,
    }
}

/// Whether an instruction is a return (`jalr r0, lr, 0` by ABI convention).
pub fn is_ret(insn: &Insn) -> bool {
    matches!(insn, Insn::Jalr { rd: Reg::R0, rs1: Reg::LR, .. })
}

/// Translates the block starting at `pc` without going through a cache —
/// exactly the ops [`BlockCache::lookup`] would produce under `config`.
///
/// This is the hook for static tooling (the `embsan-analysis` probe-coverage
/// auditor) that needs to cross-check the translator's probe splicing
/// against an independent enumeration of memory-op sites.
///
/// # Errors
///
/// Returns a fetch or decode fault if `pc` does not point at valid code.
pub fn translate_block_at(bus: &Bus, pc: u32, config: HookConfig) -> Result<Block, Fault> {
    translate_block(bus, pc, config)
}

/// Decodes a block starting at `pc`, splicing probes per `config`.
fn translate_block(bus: &Bus, pc: u32, config: HookConfig) -> Result<Block, Fault> {
    let mut ops = Vec::new();
    let mut cur = pc;
    loop {
        // A fetch or decode failure past the first instruction ends the block
        // early instead of faulting: the fault (if reachable) materializes
        // when execution actually arrives there.
        let raw = match bus.fetch(cur) {
            Ok(raw) => raw,
            Err(fault) => {
                if ops.is_empty() {
                    return Err(fault);
                }
                break;
            }
        };
        let insn = match Insn::decode(Word(raw)) {
            Ok(insn) => insn,
            Err(_) => {
                if ops.is_empty() {
                    return Err(Fault::IllegalInsn { pc: cur, word: raw });
                }
                break;
            }
        };
        let probe_mem = config.mem && insn.is_mem_access();
        let probe_call = config.calls && (is_call(&insn) || is_ret(&insn));
        ops.push(TranslatedOp { insn, pc: cur, probe_mem, probe_call });
        if insn.ends_block() || ops.len() >= MAX_BLOCK_LEN {
            break;
        }
        cur = cur.wrapping_add(4);
    }
    Ok(Block { start: pc, ops })
}

/// Classification of a call-probe op used by the executor.
pub(crate) fn call_kind(insn: &Insn) -> CallKind {
    if is_ret(insn) {
        CallKind::Ret
    } else if is_call(insn) {
        CallKind::Call
    } else {
        CallKind::Neither
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CallKind {
    Call,
    Ret,
    Neither,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ArchProfile;

    fn bus_with_text(insns: &[Insn]) -> (Bus, u32) {
        let profile = ArchProfile::armv();
        let mut text = Vec::new();
        for insn in insns {
            text.extend_from_slice(&insn.encode().to_bytes(profile.endian));
        }
        let bus = Bus::new(&profile, profile.rom_base, text, profile.ram_base, 0x1000, 1);
        (bus, profile.rom_base)
    }

    #[test]
    fn block_ends_at_branch() {
        let (bus, base) = bus_with_text(&[
            Insn::Addi { rd: Reg::R1, rs1: Reg::R0, imm: 1 },
            Insn::Lw { rd: Reg::R2, rs1: Reg::R1, imm: 0 },
            Insn::Jal { rd: Reg::R0, offset: -8 },
            Insn::Halt { code: 0 }, // unreachable, not part of block
        ]);
        let mut cache = BlockCache::new();
        let block = cache.lookup(&bus, base).unwrap();
        assert_eq!(block.ops.len(), 3);
        assert!(matches!(block.ops[2].insn, Insn::Jal { .. }));
    }

    #[test]
    fn probes_spliced_only_when_armed() {
        let (bus, base) = bus_with_text(&[
            Insn::Lw { rd: Reg::R2, rs1: Reg::R1, imm: 0 },
            Insn::Halt { code: 0 },
        ]);
        let mut cache = BlockCache::new();
        let block = cache.lookup(&bus, base).unwrap();
        assert!(!block.ops[0].probe_mem);

        cache.reconfigure(HookConfig { mem: true, ..HookConfig::none() });
        let block = cache.lookup(&bus, base).unwrap();
        assert!(block.ops[0].probe_mem);
        assert!(!block.ops[1].probe_mem); // halt is not a memory access
    }

    #[test]
    fn reconfigure_flushes_cache() {
        let (bus, base) = bus_with_text(&[Insn::Halt { code: 0 }]);
        let mut cache = BlockCache::new();
        cache.lookup(&bus, base).unwrap();
        cache.lookup(&bus, base).unwrap();
        assert_eq!(cache.translation_count(), 1);
        assert_eq!(cache.hit_count(), 1);

        cache.reconfigure(HookConfig::all());
        cache.lookup(&bus, base).unwrap();
        assert_eq!(cache.translation_count(), 2);

        // Reinstalling the same config must NOT flush.
        cache.reconfigure(HookConfig::all());
        cache.lookup(&bus, base).unwrap();
        assert_eq!(cache.translation_count(), 2);
        assert_eq!(cache.hit_count(), 2);
    }

    #[test]
    fn call_and_ret_classification() {
        assert_eq!(call_kind(&Insn::Jal { rd: Reg::LR, offset: 16 }), CallKind::Call);
        assert_eq!(call_kind(&Insn::Jalr { rd: Reg::LR, rs1: Reg::R3, imm: 0 }), CallKind::Call);
        assert_eq!(call_kind(&Insn::Jalr { rd: Reg::R0, rs1: Reg::LR, imm: 0 }), CallKind::Ret);
        // A plain computed goto is neither.
        assert_eq!(call_kind(&Insn::Jalr { rd: Reg::R0, rs1: Reg::R3, imm: 0 }), CallKind::Neither);
    }

    #[test]
    fn illegal_instruction_reports_pc() {
        let profile = ArchProfile::armv();
        let bus = Bus::new(&profile, profile.rom_base, vec![0xFF; 8], profile.ram_base, 0x1000, 1);
        let mut cache = BlockCache::new();
        let err = cache.lookup(&bus, profile.rom_base).unwrap_err();
        assert_eq!(err, Fault::IllegalInsn { pc: profile.rom_base, word: 0xFFFF_FFFF });
    }

    #[test]
    fn max_block_length_is_enforced() {
        let insns = vec![Insn::Nop; MAX_BLOCK_LEN + 10];
        let (bus, base) = bus_with_text(&insns);
        let mut cache = BlockCache::new();
        let block = cache.lookup(&bus, base).unwrap();
        assert_eq!(block.ops.len(), MAX_BLOCK_LEN);
    }
}
