//! Basic-block translation with sanitizer probe splicing.
//!
//! This module is the reproduction's TCG: guest code is decoded once into
//! cached blocks of "translated" operations. When a sanitizer arms memory
//! probes, the *translation templates change* — each memory operation in a
//! freshly translated block carries a probe marker, and the whole cache is
//! flushed so stale unprobed blocks cannot run. This is precisely the §3.3
//! mechanism ("the Runtime modifies its translation template by inserting a
//! call to a delegate function `load_intercept()`"), expressed in a
//! micro-op interpreter instead of emitted host code.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::{Rc, Weak};

use crate::bus::Bus;
use crate::error::Fault;
use crate::hook::HookConfig;
use crate::isa::{Insn, Reg, Word};

/// Maximum instructions per translation block.
pub const MAX_BLOCK_LEN: usize = 64;

/// Maximum instructions per superblock (merged across unconditional direct
/// jumps). Bounds self-loop promotion, which otherwise doubles the block on
/// every merge.
pub const MAX_SUPERBLOCK_LEN: usize = 256;

/// One translated operation: a decoded instruction plus the probe markers
/// spliced in at translation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranslatedOp {
    /// The decoded instruction.
    pub insn: Insn,
    /// Guest address of the instruction.
    pub pc: u32,
    /// A memory probe precedes this op (set only for memory accesses, and
    /// only when the translation-time hook configuration armed `mem`).
    pub probe_mem: bool,
    /// A call/return probe is attached to this op.
    pub probe_call: bool,
}

/// A resolved successor edge: the block starting at `target`, held weakly
/// so chained blocks do not keep evicted or flushed blocks alive.
#[derive(Debug)]
struct ChainEdge {
    target: u32,
    block: Weak<Block>,
}

/// Number of chain slots per block. Two covers both edges of a conditional
/// branch terminator (taken and fall-through).
const CHAIN_SLOTS: usize = 2;

/// A translated basic block.
///
/// Blocks carry two dispatch accelerators on top of their ops:
///
/// * **Chain slots** — weak successor edges installed by the executor so a
///   repeat of the same control transfer skips the [`BlockCache`] lookup
///   entirely. Chains are dispatch state, not translation content: clones
///   start unchained and equality ignores them.
/// * **Seams** — when blocks are merged into a superblock (see
///   [`BlockCache::try_promote`]), each merge point is recorded as
///   `(op_index, pc)`: the op at `op_index` is the first instruction of the
///   constituent block that started at `pc`. The executor uses seams to keep
///   block-entry probes and quantum accounting identical to the unmerged
///   execution.
#[derive(Debug)]
pub struct Block {
    /// Guest address of the first instruction.
    pub start: u32,
    /// The translated operations, in program order.
    pub ops: Vec<TranslatedOp>,
    /// Superblock merge points, ascending by op index (empty for plain
    /// blocks).
    pub seams: Vec<(usize, u32)>,
    chains: RefCell<[Option<ChainEdge>; CHAIN_SLOTS]>,
}

impl Block {
    /// Creates a plain (seamless, unchained) block.
    fn new(start: u32, ops: Vec<TranslatedOp>) -> Block {
        Block { start, ops, seams: Vec::new(), chains: RefCell::default() }
    }

    /// Follows the chain edge for `target`, if one is installed and its
    /// block is still alive.
    pub(crate) fn chained(&self, target: u32) -> Option<Rc<Block>> {
        for edge in self.chains.borrow().iter().flatten() {
            if edge.target == target {
                return edge.block.upgrade();
            }
        }
        None
    }

    /// Installs (or refreshes) the chain edge `target → next`. An existing
    /// slot for the same target is reused, then a free or dead slot; with
    /// all slots live for other targets the edge is dropped — chains are an
    /// accelerator, never required for correctness.
    pub(crate) fn install_chain(&self, target: u32, next: &Rc<Block>) {
        let mut chains = self.chains.borrow_mut();
        let mut candidate = None;
        for (i, slot) in chains.iter().enumerate() {
            match slot {
                Some(edge) if edge.target == target => {
                    candidate = Some(i);
                    break;
                }
                Some(edge) if edge.block.strong_count() == 0 => {
                    candidate.get_or_insert(i);
                }
                Some(_) => {}
                None => {
                    candidate.get_or_insert(i);
                }
            }
        }
        if let Some(i) = candidate {
            chains[i] = Some(ChainEdge { target, block: Rc::downgrade(next) });
        }
    }
}

impl Clone for Block {
    fn clone(&self) -> Block {
        // Chains are per-instance dispatch state: a clone starts unchained.
        Block {
            start: self.start,
            ops: self.ops.clone(),
            seams: self.seams.clone(),
            chains: RefCell::default(),
        }
    }
}

impl PartialEq for Block {
    fn eq(&self, other: &Block) -> bool {
        self.start == other.start && self.ops == other.ops && self.seams == other.seams
    }
}

impl Eq for Block {}

/// Counters describing translation-cache behaviour, exposed through
/// `Machine::cache_stats` into the bench and campaign telemetry.
///
/// All counters are monotonic over the cache's lifetime (flushes do not
/// reset them), so deltas between two observations measure an interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Blocks translated (each one is a cache miss that ran the decoder).
    pub translations: u64,
    /// Lookups served from a cached block.
    pub hits: u64,
    /// Hook-configuration switches that actually changed the configuration.
    pub reconfigures: u64,
    /// Reconfigurations that found a retained generation and reused its
    /// blocks instead of retranslating (the flush-on-reconfigure fix).
    pub generation_hits: u64,
    /// Generations evicted by the LRU bound.
    pub generation_evictions: u64,
    /// Full flushes (host-side code patching drops every generation).
    pub flushes: u64,
    /// Dispatches served through a direct chain edge or a superblock seam
    /// instead of a cache lookup (a subset of `hits`).
    pub chained_dispatches: u64,
    /// Superblocks formed by merging across unconditional direct jumps.
    pub superblocks_formed: u64,
}

impl CacheStats {
    /// Field-wise sum (aggregating per-worker caches in parallel campaigns).
    #[must_use]
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            translations: self.translations + other.translations,
            hits: self.hits + other.hits,
            reconfigures: self.reconfigures + other.reconfigures,
            generation_hits: self.generation_hits + other.generation_hits,
            generation_evictions: self.generation_evictions + other.generation_evictions,
            flushes: self.flushes + other.flushes,
            chained_dispatches: self.chained_dispatches + other.chained_dispatches,
            superblocks_formed: self.superblocks_formed + other.superblocks_formed,
        }
    }
}

/// One retained translation generation: every block translated under a
/// single [`HookConfig`].
#[derive(Debug)]
struct Generation {
    config: HookConfig,
    blocks: HashMap<u32, Rc<Block>>,
    /// Reconfiguration clock at last activation (LRU victim selection).
    last_used: u64,
}

/// Cache of translated blocks, keyed by `(start address, generation)`.
///
/// Each [`HookConfig`] the machine runs under gets its own *generation* of
/// translated blocks. Switching configurations via
/// [`BlockCache::reconfigure`] no longer flushes: a previously seen
/// configuration reactivates its retained generation, so workloads that
/// toggle sanitizer configurations (the ablation and overhead benches, the
/// fuzzer's coverage arming) retranslate the image at most once per
/// configuration. At most [`MAX_GENERATIONS`] generations are retained;
/// beyond that the least-recently-activated generation is evicted.
#[derive(Debug)]
pub struct BlockCache {
    gens: Vec<Generation>,
    /// Index of the active generation in `gens`.
    current: usize,
    /// Direct-mapped front cache over the active generation (the analogue
    /// of TCG's block chaining): most lookups hit here without touching the
    /// hash map. Invalidated on generation switch.
    front: Vec<Option<Rc<Block>>>,
    /// Reconfiguration clock driving `Generation::last_used`.
    clock: u64,
    stats: CacheStats,
    tracer: embsan_obs::Tracer,
    profiler: embsan_obs::Profiler,
}

impl Default for BlockCache {
    fn default() -> BlockCache {
        BlockCache::new()
    }
}

/// Size of the direct-mapped front cache (power of two).
const FRONT_SIZE: usize = 1 << 14;

/// Maximum retained generations (LRU-bounded; the active one never counts
/// as a victim).
pub const MAX_GENERATIONS: usize = 8;

/// Per-generation block-count bound: a generation that somehow exceeds this
/// is cleared rather than growing without limit (defensive; real firmware
/// text is orders of magnitude smaller).
const MAX_BLOCKS_PER_GENERATION: usize = 1 << 16;

#[inline]
fn front_index(pc: u32) -> usize {
    (pc >> 2) as usize & (FRONT_SIZE - 1)
}

impl BlockCache {
    /// Creates an empty cache with no probes armed.
    pub fn new() -> BlockCache {
        BlockCache {
            gens: vec![Generation {
                config: HookConfig::none(),
                blocks: HashMap::new(),
                last_used: 0,
            }],
            current: 0,
            front: Vec::new(),
            clock: 0,
            stats: CacheStats::default(),
            tracer: embsan_obs::Tracer::disabled(),
            profiler: embsan_obs::Profiler::disabled(),
        }
    }

    /// Attaches an observability tracer (cache events: translate,
    /// generation hit/evict, flush).
    pub fn set_tracer(&mut self, tracer: embsan_obs::Tracer) {
        self.tracer = tracer;
    }

    /// Attaches a profiler charging translation work to
    /// [`embsan_obs::Phase::Translate`].
    pub fn set_profiler(&mut self, profiler: embsan_obs::Profiler) {
        self.profiler = profiler;
    }

    /// The hook configuration the active generation was translated under.
    pub fn config(&self) -> HookConfig {
        self.gens[self.current].config
    }

    /// Installs a new hook configuration.
    ///
    /// A configuration seen before reactivates its retained generation
    /// (no retranslation); a new one opens a fresh generation, evicting the
    /// least-recently-used retained generation beyond [`MAX_GENERATIONS`].
    pub fn reconfigure(&mut self, config: HookConfig) {
        if config == self.gens[self.current].config {
            return;
        }
        self.stats.reconfigures += 1;
        self.clock += 1;
        // The front cache indexes the active generation only.
        self.front.clear();
        if let Some(idx) = self.gens.iter().position(|g| g.config == config) {
            self.current = idx;
            self.gens[idx].last_used = self.clock;
            self.stats.generation_hits += 1;
            self.tracer.record(embsan_obs::EventKind::CacheGenerationHit {
                generations: self.gens.len() as u32,
            });
            return;
        }
        if self.gens.len() >= MAX_GENERATIONS {
            // Infallible: MAX_GENERATIONS ≥ 2, so at least one non-current
            // generation exists.
            let victim = self
                .gens
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != self.current)
                .min_by_key(|&(_, g)| g.last_used)
                .map(|(i, _)| i)
                .expect("at least one evictable generation");
            self.gens.remove(victim);
            if victim < self.current {
                self.current -= 1;
            }
            self.stats.generation_evictions += 1;
            self.tracer.record(embsan_obs::EventKind::CacheGenerationEvict {
                generations: self.gens.len() as u32,
            });
        }
        self.gens.push(Generation { config, blocks: HashMap::new(), last_used: self.clock });
        self.current = self.gens.len() - 1;
    }

    /// Drops every cached block in every generation (e.g. after host-side
    /// code patching — the translated code is stale in *all* generations).
    pub fn flush(&mut self) {
        for gen in &mut self.gens {
            gen.blocks.clear();
        }
        self.front.clear();
        self.stats.flushes += 1;
        self.tracer.record(embsan_obs::EventKind::CacheFlush);
    }

    /// Number of blocks translated since creation (monotonic; not reset by
    /// flushes). Used by tests to observe cache behaviour.
    pub fn translation_count(&self) -> u64 {
        self.stats.translations
    }

    /// Number of cache hits since creation.
    pub fn hit_count(&self) -> u64 {
        self.stats.hits
    }

    /// All cache counters (hit/miss/generation telemetry).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Records a dispatch served through a chain edge or a superblock seam:
    /// still a hit (the dispatch ran cached translation), but one that
    /// skipped the lookup path entirely.
    pub(crate) fn note_chained(&mut self) {
        self.stats.hits += 1;
        self.stats.chained_dispatches += 1;
    }

    /// Merges `prev` with the cached block at `target` into a superblock
    /// installed at `prev.start`, recording the merge point as a seam.
    ///
    /// The caller guarantees `prev` ends in an unconditional direct jump to
    /// `target` (the seam contract: every execution of the last op of
    /// `prev`'s portion lands on `target`). The constituent block stays
    /// cached under its own start address — quantum expiry at a seam resumes
    /// through a plain lookup of the seam pc.
    ///
    /// Returns `None` when the merge does not apply (target not in the
    /// active generation's map, or the combined block would exceed
    /// [`MAX_SUPERBLOCK_LEN`]).
    pub(crate) fn try_promote(&mut self, prev: &Rc<Block>, target: u32) -> Option<Rc<Block>> {
        let gen = &mut self.gens[self.current];
        // Clone out before mutating the map: with a self-loop `target` is
        // `prev.start` and the insert below replaces this very entry.
        let next = Rc::clone(gen.blocks.get(&target)?);
        if prev.ops.len() + next.ops.len() > MAX_SUPERBLOCK_LEN {
            return None;
        }
        let mut ops = Vec::with_capacity(prev.ops.len() + next.ops.len());
        ops.extend_from_slice(&prev.ops);
        ops.extend_from_slice(&next.ops);
        let mut seams = prev.seams.clone();
        seams.push((prev.ops.len(), target));
        seams.extend(next.seams.iter().map(|&(i, pc)| (i + prev.ops.len(), pc)));
        let superblock =
            Rc::new(Block { start: prev.start, ops, seams, chains: RefCell::default() });
        gen.blocks.insert(prev.start, Rc::clone(&superblock));
        if !self.front.is_empty() {
            self.front[front_index(prev.start)] = Some(Rc::clone(&superblock));
        }
        self.stats.superblocks_formed += 1;
        Some(superblock)
    }

    /// Looks up (or translates) the block starting at `pc` in the active
    /// generation.
    ///
    /// # Errors
    ///
    /// Returns a fetch or decode fault if `pc` does not point at valid code.
    pub fn lookup(&mut self, bus: &Bus, pc: u32) -> Result<Rc<Block>, Fault> {
        if self.front.is_empty() {
            self.front.resize(FRONT_SIZE, None);
        }
        let slot = front_index(pc);
        if let Some(block) = &self.front[slot] {
            if block.start == pc {
                self.stats.hits += 1;
                return Ok(Rc::clone(block));
            }
        }
        let gen = &mut self.gens[self.current];
        if let Some(block) = gen.blocks.get(&pc) {
            self.stats.hits += 1;
            let block = Rc::clone(block);
            self.front[slot] = Some(Rc::clone(&block));
            return Ok(block);
        }
        let block = {
            let _scope = self.profiler.scope(embsan_obs::Phase::Translate);
            Rc::new(translate_block(bus, pc, gen.config)?)
        };
        self.stats.translations += 1;
        self.tracer.record(embsan_obs::EventKind::BlockTranslate { pc });
        if gen.blocks.len() >= MAX_BLOCKS_PER_GENERATION {
            gen.blocks.clear();
        }
        gen.blocks.insert(pc, Rc::clone(&block));
        self.front[slot] = Some(Rc::clone(&block));
        Ok(block)
    }
}

/// Whether an instruction is a call (writes a link register other than `r0`).
pub fn is_call(insn: &Insn) -> bool {
    match insn {
        Insn::Jal { rd, .. } | Insn::Jalr { rd, .. } => *rd != Reg::ZERO,
        _ => false,
    }
}

/// Whether an instruction is a return (`jalr r0, lr, 0` by ABI convention).
pub fn is_ret(insn: &Insn) -> bool {
    matches!(insn, Insn::Jalr { rd: Reg::R0, rs1: Reg::LR, .. })
}

/// Translates the block starting at `pc` without going through a cache —
/// exactly the ops [`BlockCache::lookup`] would produce under `config`.
///
/// This is the hook for static tooling (the `embsan-analysis` probe-coverage
/// auditor) that needs to cross-check the translator's probe splicing
/// against an independent enumeration of memory-op sites.
///
/// # Errors
///
/// Returns a fetch or decode fault if `pc` does not point at valid code.
pub fn translate_block_at(bus: &Bus, pc: u32, config: HookConfig) -> Result<Block, Fault> {
    translate_block(bus, pc, config)
}

/// Decodes a block starting at `pc`, splicing probes per `config`.
fn translate_block(bus: &Bus, pc: u32, config: HookConfig) -> Result<Block, Fault> {
    let mut ops = Vec::new();
    let mut cur = pc;
    loop {
        // A fetch or decode failure past the first instruction ends the block
        // early instead of faulting: the fault (if reachable) materializes
        // when execution actually arrives there.
        let raw = match bus.fetch(cur) {
            Ok(raw) => raw,
            Err(fault) => {
                if ops.is_empty() {
                    return Err(fault);
                }
                break;
            }
        };
        let insn = match Insn::decode(Word(raw)) {
            Ok(insn) => insn,
            Err(_) => {
                if ops.is_empty() {
                    return Err(Fault::IllegalInsn { pc: cur, word: raw });
                }
                break;
            }
        };
        let probe_mem = config.mem && insn.is_mem_access();
        let probe_call = config.calls && (is_call(&insn) || is_ret(&insn));
        ops.push(TranslatedOp { insn, pc: cur, probe_mem, probe_call });
        if insn.ends_block() || ops.len() >= MAX_BLOCK_LEN {
            break;
        }
        cur = cur.wrapping_add(4);
    }
    Ok(Block::new(pc, ops))
}

/// Classification of a call-probe op used by the executor.
pub(crate) fn call_kind(insn: &Insn) -> CallKind {
    if is_ret(insn) {
        CallKind::Ret
    } else if is_call(insn) {
        CallKind::Call
    } else {
        CallKind::Neither
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CallKind {
    Call,
    Ret,
    Neither,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ArchProfile;

    fn bus_with_text(insns: &[Insn]) -> (Bus, u32) {
        let profile = ArchProfile::armv();
        let mut text = Vec::new();
        for insn in insns {
            text.extend_from_slice(&insn.encode().to_bytes(profile.endian));
        }
        let bus = Bus::new(&profile, profile.rom_base, text, profile.ram_base, 0x1000, 1);
        (bus, profile.rom_base)
    }

    #[test]
    fn block_ends_at_branch() {
        let (bus, base) = bus_with_text(&[
            Insn::Addi { rd: Reg::R1, rs1: Reg::R0, imm: 1 },
            Insn::Lw { rd: Reg::R2, rs1: Reg::R1, imm: 0 },
            Insn::Jal { rd: Reg::R0, offset: -8 },
            Insn::Halt { code: 0 }, // unreachable, not part of block
        ]);
        let mut cache = BlockCache::new();
        let block = cache.lookup(&bus, base).unwrap();
        assert_eq!(block.ops.len(), 3);
        assert!(matches!(block.ops[2].insn, Insn::Jal { .. }));
    }

    #[test]
    fn probes_spliced_only_when_armed() {
        let (bus, base) = bus_with_text(&[
            Insn::Lw { rd: Reg::R2, rs1: Reg::R1, imm: 0 },
            Insn::Halt { code: 0 },
        ]);
        let mut cache = BlockCache::new();
        let block = cache.lookup(&bus, base).unwrap();
        assert!(!block.ops[0].probe_mem);

        cache.reconfigure(HookConfig { mem: true, ..HookConfig::none() });
        let block = cache.lookup(&bus, base).unwrap();
        assert!(block.ops[0].probe_mem);
        assert!(!block.ops[1].probe_mem); // halt is not a memory access
    }

    #[test]
    fn reconfigure_opens_new_generation() {
        let (bus, base) = bus_with_text(&[Insn::Halt { code: 0 }]);
        let mut cache = BlockCache::new();
        cache.lookup(&bus, base).unwrap();
        cache.lookup(&bus, base).unwrap();
        assert_eq!(cache.translation_count(), 1);
        assert_eq!(cache.hit_count(), 1);

        // A new configuration has no blocks yet: one fresh translation.
        cache.reconfigure(HookConfig::all());
        cache.lookup(&bus, base).unwrap();
        assert_eq!(cache.translation_count(), 2);

        // Reinstalling the same config is a no-op.
        cache.reconfigure(HookConfig::all());
        cache.lookup(&bus, base).unwrap();
        assert_eq!(cache.translation_count(), 2);
        assert_eq!(cache.hit_count(), 2);
    }

    #[test]
    fn toggling_config_reuses_retained_generation() {
        let (bus, base) = bus_with_text(&[Insn::Halt { code: 0 }]);
        let mut cache = BlockCache::new();
        let plain = HookConfig::none();
        let armed = HookConfig::all();

        cache.lookup(&bus, base).unwrap();
        cache.reconfigure(armed);
        cache.lookup(&bus, base).unwrap();
        assert_eq!(cache.translation_count(), 2);

        // Toggling back and forth must not retranslate: both generations
        // are retained.
        for _ in 0..10 {
            cache.reconfigure(plain);
            cache.lookup(&bus, base).unwrap();
            cache.reconfigure(armed);
            cache.lookup(&bus, base).unwrap();
        }
        assert_eq!(cache.translation_count(), 2);
        let stats = cache.stats();
        assert_eq!(stats.generation_hits, 20);
        assert_eq!(stats.generation_evictions, 0);
        assert_eq!(stats.reconfigures, 21);
    }

    #[test]
    fn lru_generation_eviction_respects_bound() {
        let (bus, base) = bus_with_text(&[Insn::Halt { code: 0 }]);
        let mut cache = BlockCache::new();
        // Cycle through more distinct configs than MAX_GENERATIONS. The
        // four HookConfig flags give 16 distinct configurations.
        let configs: Vec<HookConfig> = (0u8..16)
            .map(|bits| HookConfig {
                mem: bits & 1 != 0,
                hypercalls: bits & 2 != 0,
                blocks: bits & 4 != 0,
                calls: bits & 8 != 0,
            })
            .collect();
        for config in &configs {
            cache.reconfigure(*config);
            cache.lookup(&bus, base).unwrap();
        }
        assert_eq!(cache.stats().generation_evictions as usize, configs.len() - MAX_GENERATIONS);
        // The most recent config is still active and cached.
        let hits_before = cache.hit_count();
        cache.lookup(&bus, base).unwrap();
        assert_eq!(cache.hit_count(), hits_before + 1);
    }

    #[test]
    fn flush_clears_every_generation() {
        let (bus, base) = bus_with_text(&[Insn::Halt { code: 0 }]);
        let mut cache = BlockCache::new();
        cache.lookup(&bus, base).unwrap();
        cache.reconfigure(HookConfig::all());
        cache.lookup(&bus, base).unwrap();
        assert_eq!(cache.translation_count(), 2);

        cache.flush();
        // Both the active and the retained generation were dropped.
        cache.lookup(&bus, base).unwrap();
        cache.reconfigure(HookConfig::none());
        cache.lookup(&bus, base).unwrap();
        assert_eq!(cache.translation_count(), 4);
        assert_eq!(cache.stats().flushes, 1);
    }

    #[test]
    fn call_and_ret_classification() {
        assert_eq!(call_kind(&Insn::Jal { rd: Reg::LR, offset: 16 }), CallKind::Call);
        assert_eq!(call_kind(&Insn::Jalr { rd: Reg::LR, rs1: Reg::R3, imm: 0 }), CallKind::Call);
        assert_eq!(call_kind(&Insn::Jalr { rd: Reg::R0, rs1: Reg::LR, imm: 0 }), CallKind::Ret);
        // A plain computed goto is neither.
        assert_eq!(call_kind(&Insn::Jalr { rd: Reg::R0, rs1: Reg::R3, imm: 0 }), CallKind::Neither);
    }

    #[test]
    fn illegal_instruction_reports_pc() {
        let profile = ArchProfile::armv();
        let bus = Bus::new(&profile, profile.rom_base, vec![0xFF; 8], profile.ram_base, 0x1000, 1);
        let mut cache = BlockCache::new();
        let err = cache.lookup(&bus, profile.rom_base).unwrap_err();
        assert_eq!(err, Fault::IllegalInsn { pc: profile.rom_base, word: 0xFFFF_FFFF });
    }

    #[test]
    fn max_block_length_is_enforced() {
        let insns = vec![Insn::Nop; MAX_BLOCK_LEN + 10];
        let (bus, base) = bus_with_text(&insns);
        let mut cache = BlockCache::new();
        let block = cache.lookup(&bus, base).unwrap();
        assert_eq!(block.ops.len(), MAX_BLOCK_LEN);
    }
}
