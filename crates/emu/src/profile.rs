//! Architecture profiles.
//!
//! The three profiles play the role of the paper's x86/ARM/MIPS targets: the
//! instruction set is shared, but everything a *sanitizer* has to care about
//! when adapting to a platform differs — byte order, where RAM and MMIO live,
//! and how hypercall arguments are passed. The Embedded Platform
//! Configuration Prober discovers these details rather than assuming them.

use crate::isa::Reg;

/// Guest memory byte order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Endian {
    /// Little-endian (the `Armv` and `X86v` profiles).
    #[default]
    Little,
    /// Big-endian (the `Mipsv` profile).
    Big,
}

/// The architecture family of a profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// ARM-like: little-endian, MMIO high, hypercall args in `r1..`.
    Armv,
    /// MIPS-like: big-endian, MMIO in the KSEG-style window, args in `r4..`.
    Mipsv,
    /// x86-like: little-endian, args in `r2..` (the `vmcall` convention).
    X86v,
}

impl Arch {
    /// All supported architectures.
    pub const ALL: [Arch; 3] = [Arch::Armv, Arch::Mipsv, Arch::X86v];

    /// The display name used in tables ("ARM", "MIPS", "x86").
    pub fn display_name(self) -> &'static str {
        match self {
            Arch::Armv => "ARM",
            Arch::Mipsv => "MIPS",
            Arch::X86v => "x86",
        }
    }
}

impl std::fmt::Display for Arch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.display_name())
    }
}

/// Hypercall argument-passing convention.
///
/// A hypercall transfers `nr` (from the instruction) plus up to four argument
/// registers to the host; results come back in `ret`. The conventions differ
/// per architecture, which is why the EMBSAN runtime must perform "argument
/// reconstruction" per platform (§4.3) instead of reading fixed registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HypercallAbi {
    /// Registers carrying hypercall arguments, in order.
    pub args: [Reg; 4],
    /// Register receiving the hypercall result.
    pub ret: Reg,
}

/// Full platform description of one architecture profile.
///
/// These are the "platform details" the paper's Prober produces; the values
/// here are the ground truth the Prober is validated against in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchProfile {
    /// Architecture family.
    pub arch: Arch,
    /// Guest memory byte order.
    pub endian: Endian,
    /// Base address of the boot ROM (text + rodata).
    pub rom_base: u32,
    /// Base address of RAM.
    pub ram_base: u32,
    /// Base address of the MMIO window.
    pub mmio_base: u32,
    /// Size of the MMIO window in bytes.
    pub mmio_size: u32,
    /// Hypercall argument convention.
    pub hypercall: HypercallAbi,
}

impl ArchProfile {
    /// The ARM-like profile.
    pub fn armv() -> ArchProfile {
        ArchProfile {
            arch: Arch::Armv,
            endian: Endian::Little,
            rom_base: 0x0001_0000,
            ram_base: 0x0010_0000,
            mmio_base: 0xF000_0000,
            mmio_size: 0x1000,
            hypercall: HypercallAbi { args: [Reg::R1, Reg::R2, Reg::R3, Reg::R4], ret: Reg::R1 },
        }
    }

    /// The MIPS-like profile (big-endian).
    pub fn mipsv() -> ArchProfile {
        ArchProfile {
            arch: Arch::Mipsv,
            endian: Endian::Big,
            rom_base: 0x0002_0000,
            ram_base: 0x0020_0000,
            mmio_base: 0xBF00_0000,
            mmio_size: 0x1000,
            hypercall: HypercallAbi { args: [Reg::R4, Reg::R5, Reg::R6, Reg::R7], ret: Reg::R2 },
        }
    }

    /// The x86-like profile.
    pub fn x86v() -> ArchProfile {
        ArchProfile {
            arch: Arch::X86v,
            endian: Endian::Little,
            rom_base: 0x0001_0000,
            ram_base: 0x0040_0000,
            mmio_base: 0xE000_0000,
            mmio_size: 0x1000,
            hypercall: HypercallAbi { args: [Reg::R2, Reg::R3, Reg::R4, Reg::R5], ret: Reg::R1 },
        }
    }

    /// The profile for a given architecture family.
    pub fn for_arch(arch: Arch) -> ArchProfile {
        match arch {
            Arch::Armv => ArchProfile::armv(),
            Arch::Mipsv => ArchProfile::mipsv(),
            Arch::X86v => ArchProfile::x86v(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ_in_sanitizer_relevant_ways() {
        let a = ArchProfile::armv();
        let m = ArchProfile::mipsv();
        let x = ArchProfile::x86v();
        assert_ne!(a.endian, m.endian);
        assert_ne!(a.hypercall, m.hypercall);
        assert_ne!(a.hypercall, x.hypercall);
        assert_ne!(a.mmio_base, m.mmio_base);
        assert_ne!(a.mmio_base, x.mmio_base);
    }

    #[test]
    fn for_arch_is_consistent() {
        for arch in Arch::ALL {
            assert_eq!(ArchProfile::for_arch(arch).arch, arch);
        }
    }
}
