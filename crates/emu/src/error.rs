//! Error and fault types.

use crate::isa::DecodeError;

/// A guest-visible execution fault.
///
/// Faults stop the faulting vCPU and are reported through
/// [`crate::hook::ExecHook::fault`] and [`crate::machine::RunExit::Faulted`].
/// The EMBSAN runtime classifies some of them further (e.g. an access inside
/// the null guard page becomes a null-pointer-dereference report).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// Access to an address no memory region claims.
    Unmapped { addr: u32, is_write: bool },
    /// Access inside the null guard page (`0x0000_0000..0x0000_1000`).
    NullPage { addr: u32, is_write: bool },
    /// Write to read-only memory (the boot ROM).
    RomWrite { addr: u32 },
    /// Misaligned load/store.
    Misaligned { addr: u32, size: u8 },
    /// Instruction fetch from an unmapped or misaligned address.
    BadFetch { pc: u32 },
    /// Undecodable instruction word.
    IllegalInsn { pc: u32, word: u32 },
    /// `brk` debug breakpoint.
    Breakpoint { pc: u32 },
    /// `ecall` executed with no trap vector configured.
    NoTrapVector { pc: u32 },
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Fault::Unmapped { addr, is_write } => write!(
                f,
                "{} of unmapped address {addr:#010x}",
                if is_write { "write" } else { "read" }
            ),
            Fault::NullPage { addr, is_write } => write!(
                f,
                "{} inside null guard page at {addr:#010x}",
                if is_write { "write" } else { "read" }
            ),
            Fault::RomWrite { addr } => write!(f, "write to read-only memory at {addr:#010x}"),
            Fault::Misaligned { addr, size } => {
                write!(f, "misaligned {size}-byte access at {addr:#010x}")
            }
            Fault::BadFetch { pc } => write!(f, "instruction fetch fault at pc {pc:#010x}"),
            Fault::IllegalInsn { pc, word } => {
                write!(f, "illegal instruction {word:#010x} at pc {pc:#010x}")
            }
            Fault::Breakpoint { pc } => write!(f, "breakpoint at pc {pc:#010x}"),
            Fault::NoTrapVector { pc } => {
                write!(f, "ecall at pc {pc:#010x} with no trap vector installed")
            }
        }
    }
}

impl std::error::Error for Fault {}

/// Errors reported by the emulator's host-facing API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// Machine configuration is invalid (overlapping regions, zero vCPUs, …).
    InvalidConfig(String),
    /// A host-side access (`Machine::read_mem` etc.) hit a fault.
    Fault(Fault),
    /// A snapshot was taken from an incompatible machine.
    SnapshotMismatch(String),
}

impl std::fmt::Display for EmuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmuError::InvalidConfig(msg) => write!(f, "invalid machine configuration: {msg}"),
            EmuError::Fault(fault) => write!(f, "memory fault: {fault}"),
            EmuError::SnapshotMismatch(msg) => write!(f, "snapshot mismatch: {msg}"),
        }
    }
}

impl std::error::Error for EmuError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EmuError::Fault(fault) => Some(fault),
            _ => None,
        }
    }
}

impl From<Fault> for EmuError {
    fn from(fault: Fault) -> EmuError {
        EmuError::Fault(fault)
    }
}

impl From<DecodeError> for Fault {
    fn from(err: DecodeError) -> Fault {
        Fault::IllegalInsn { pc: 0, word: err.word.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_display_is_informative() {
        let text = Fault::NullPage { addr: 0x10, is_write: true }.to_string();
        assert!(text.contains("null guard page"));
        assert!(text.contains("0x00000010"));
    }

    #[test]
    fn error_source_chains() {
        use std::error::Error as _;
        let err = EmuError::from(Fault::RomWrite { addr: 4 });
        assert!(err.source().is_some());
    }
}
