//! Countdown interrupt timer.

/// A countdown timer clocked by retired guest instructions.
///
/// When enabled, the counter decrements once per retired instruction; on
/// reaching zero it reloads and raises the machine interrupt line, which the
/// guest kernels use for preemptive scheduling.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timer {
    enabled: bool,
    reload: u32,
    count: u32,
}

impl Timer {
    /// Creates a disabled timer.
    pub fn new() -> Timer {
        Timer::default()
    }

    pub(crate) fn read(&mut self, offset: u32) -> u32 {
        match offset {
            0x0 => u32::from(self.enabled),
            0x4 => self.reload,
            0x8 => self.count,
            _ => 0,
        }
    }

    pub(crate) fn write(&mut self, offset: u32, value: u32) {
        match offset {
            0x0 => self.enabled = value & 1 != 0,
            0x4 => {
                self.reload = value;
                self.count = value;
            }
            _ => {}
        }
    }

    /// Whether the timer can raise an interrupt without further guest
    /// writes (enabled with a non-zero reload).
    pub fn armed(&self) -> bool {
        self.enabled && self.reload != 0
    }

    /// Advances the timer by `instructions` ticks; returns `true` if the
    /// counter expired (and reloaded) at least once in the window.
    pub fn tick(&mut self, instructions: u64) -> bool {
        if !self.enabled || self.reload == 0 {
            return false;
        }
        if instructions < u64::from(self.count.max(1)) {
            self.count -= instructions as u32;
            return false;
        }
        let past_expiry = instructions - u64::from(self.count);
        let reload = u64::from(self.reload);
        let into_period = past_expiry % reload;
        self.count = (reload - into_period) as u32;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_timer_never_fires() {
        let mut timer = Timer::new();
        assert!(!timer.tick(1_000_000));
    }

    #[test]
    fn fires_on_expiry_and_reloads() {
        let mut timer = Timer::new();
        timer.write(0x4, 100);
        timer.write(0x0, 1);
        assert!(!timer.tick(99));
        assert!(timer.tick(1));
        assert_eq!(timer.read(0x8), 100);
        assert!(timer.tick(150));
    }
}
