//! Alarm with a free-running counter plus a deferred-call slot
//! (Tock-HIL-style `Alarm` + `DeferredCall`).
//!
//! The counter counts retired instructions and never stops. Arming the
//! alarm latches an interrupt the first time the counter reaches the
//! compare value (one-shot: firing disarms, the ISR re-arms). The
//! deferred-call register schedules a software interrupt a fixed number
//! of instructions in the future — the "do this outside interrupt
//! context, soon" primitive kernels use to split ISR top/bottom halves.
//!
//! Register map (offsets within the ALARM block):
//!
//! | offset | register |
//! |--------|----------|
//! | `+0x00`| counter (RO, free-running, low 32 bits) |
//! | `+0x04`| compare value |
//! | `+0x08`| ctrl: bit 0 arms the one-shot compare |
//! | `+0x0C`| pending: bit 0 compare, bit 1 deferred call (RO latch, W1C) |
//! | `+0x10`| schedule a deferred call this many instructions out (0 = cancel) |

/// Pending bit for a fired compare.
pub const ALARM_PENDING_COMPARE: u32 = 1;
/// Pending bit for a fired deferred call.
pub const ALARM_PENDING_DEFERRED: u32 = 2;

/// One-shot compare alarm and deferred-call source on the
/// retired-instruction clock.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Alarm {
    counter: u64,
    compare: u32,
    armed: bool,
    pending: u32,
    /// Instructions until the scheduled deferred call fires (0 = none).
    deferred_in: u64,
    /// Interrupt events recorded since the last drain.
    events: Vec<super::IrqEvent>,
}

impl Alarm {
    /// Creates a disarmed alarm with the counter at zero.
    pub fn new() -> Alarm {
        Alarm::default()
    }

    /// Pending interrupt bits (the RO latch the ISR reads).
    pub fn pending(&self) -> u32 {
        self.pending
    }

    /// Whether the alarm can raise an interrupt without further guest
    /// writes (armed compare or scheduled deferred call).
    pub fn armed_or_deferred(&self) -> bool {
        self.armed || self.deferred_in > 0
    }

    /// Takes the interrupt raise/ack events recorded since the last call.
    pub(crate) fn drain_events(&mut self) -> Vec<super::IrqEvent> {
        std::mem::take(&mut self.events)
    }

    pub(crate) fn read(&mut self, offset: u32) -> u32 {
        match offset {
            0x00 => self.counter as u32,
            0x04 => self.compare,
            0x08 => u32::from(self.armed),
            0x0C => self.pending,
            0x10 => self.deferred_in as u32,
            _ => 0,
        }
    }

    pub(crate) fn write(&mut self, offset: u32, value: u32) {
        match offset {
            0x04 => self.compare = value,
            0x08 => self.armed = value & 1 != 0,
            0x0C => {
                let acked = self.pending & value;
                if acked != 0 {
                    self.events.push(super::IrqEvent::Acked { source: "alarm", lines: acked });
                }
                self.pending &= !value;
            }
            0x10 => {
                self.deferred_in = u64::from(value);
                if value != 0 {
                    self.events.push(super::IrqEvent::DeferredScheduled { delay: value });
                }
            }
            _ => {}
        }
    }

    /// Advances the counter by `instructions`; returns `true` if the
    /// compare or a deferred call latched an interrupt in the window.
    pub fn tick(&mut self, instructions: u64) -> bool {
        let before = self.counter;
        self.counter = self.counter.wrapping_add(instructions);
        let mut raised = false;
        if self.armed {
            // One-shot: fires when the counter next reaches the compare
            // value (wrapping 32-bit distance, Tock alarm semantics).
            let distance = self.compare.wrapping_sub(before as u32);
            if u64::from(distance) <= instructions {
                self.armed = false;
                if self.pending & ALARM_PENDING_COMPARE == 0 {
                    self.events.push(super::IrqEvent::Raised {
                        source: "alarm",
                        lines: ALARM_PENDING_COMPARE,
                    });
                }
                self.pending |= ALARM_PENDING_COMPARE;
                raised = true;
            }
        }
        if self.deferred_in > 0 {
            if instructions >= self.deferred_in {
                self.deferred_in = 0;
                if self.pending & ALARM_PENDING_DEFERRED == 0 {
                    self.events.push(super::IrqEvent::Raised {
                        source: "alarm",
                        lines: ALARM_PENDING_DEFERRED,
                    });
                }
                self.pending |= ALARM_PENDING_DEFERRED;
                raised = true;
            } else {
                self.deferred_in -= instructions;
            }
        }
        raised
    }
}

#[cfg(test)]
mod tests {
    use super::super::IrqEvent;
    use super::*;

    #[test]
    fn disarmed_alarm_only_counts() {
        let mut alarm = Alarm::new();
        assert!(!alarm.tick(500));
        assert_eq!(alarm.read(0x00), 500);
        assert_eq!(alarm.pending(), 0);
    }

    #[test]
    fn compare_fires_once_and_disarms() {
        let mut alarm = Alarm::new();
        alarm.tick(10);
        alarm.write(0x04, 100); // compare
        alarm.write(0x08, 1); // arm
        assert!(!alarm.tick(89), "counter 99 < 100");
        assert!(alarm.tick(1), "counter reaches 100");
        assert_eq!(alarm.pending(), ALARM_PENDING_COMPARE);
        assert_eq!(alarm.read(0x08), 0, "one-shot disarms");
        alarm.write(0x0C, ALARM_PENDING_COMPARE);
        assert!(!alarm.tick(1_000_000), "stays quiet until re-armed");
    }

    #[test]
    fn deferred_call_fires_after_its_delay() {
        let mut alarm = Alarm::new();
        alarm.write(0x10, 50);
        assert!(!alarm.tick(49));
        assert!(alarm.tick(1));
        assert_eq!(alarm.pending() & ALARM_PENDING_DEFERRED, ALARM_PENDING_DEFERRED);
        assert_eq!(
            alarm.drain_events(),
            vec![
                IrqEvent::DeferredScheduled { delay: 50 },
                IrqEvent::Raised { source: "alarm", lines: ALARM_PENDING_DEFERRED },
            ]
        );
    }

    #[test]
    fn huge_windows_fire_exactly_once() {
        let mut alarm = Alarm::new();
        alarm.write(0x04, 1000);
        alarm.write(0x08, 1);
        alarm.write(0x10, 2000);
        assert!(alarm.tick(u64::MAX / 2));
        assert_eq!(alarm.pending(), ALARM_PENDING_COMPARE | ALARM_PENDING_DEFERRED);
    }
}
