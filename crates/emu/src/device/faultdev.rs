//! Fault-injection device: the MMIO face of the deterministic fault plan.
//!
//! Embedded allocators commonly consult a hardware status line (or a
//! watchdog-adjacent register) before committing a reservation; firmware
//! built with `BuildOptions` can poll this device to decide whether an
//! allocation should be failed, which lets a [`crate::fault::FaultPlan`]
//! drive allocator-failure paths deterministically from the host side.
//!
//! Registers (offsets within the `0x600` block):
//!
//! | offset | access | meaning |
//! |--------|--------|---------|
//! | `+0`   | read   | consume one armed allocation failure: reads 1 and decrements the budget while armed, 0 otherwise |
//! | `+0`   | write  | arm `value` allocation failures |
//! | `+4`   | read   | total faults injected through this device (diagnostic) |
//! | `+8`   | read   | remaining armed allocation failures (non-consuming peek) |

/// The fault-injection device.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultDev {
    /// Remaining allocation failures to hand out.
    armed: u32,
    /// Total failures consumed by the guest (diagnostic counter).
    consumed: u32,
}

impl FaultDev {
    /// Creates an idle fault device (no failures armed).
    pub fn new() -> FaultDev {
        FaultDev::default()
    }

    /// Arms `count` allocation failures; the next `count` guest polls of
    /// the consume register report "fail this allocation".
    pub fn arm_alloc_failures(&mut self, count: u32) {
        self.armed = self.armed.saturating_add(count);
    }

    /// Remaining armed allocation failures.
    pub fn armed(&self) -> u32 {
        self.armed
    }

    /// Total allocation failures the guest has consumed.
    pub fn consumed(&self) -> u32 {
        self.consumed
    }

    /// MMIO read dispatch.
    pub fn read(&mut self, offset: u32) -> u32 {
        match offset {
            0 if self.armed > 0 => {
                self.armed -= 1;
                self.consumed = self.consumed.saturating_add(1);
                1
            }
            4 => self.consumed,
            8 => self.armed,
            _ => 0,
        }
    }

    /// MMIO write dispatch.
    pub fn write(&mut self, offset: u32, value: u32) {
        if offset == 0 {
            self.arm_alloc_failures(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consume_register_drains_armed_budget() {
        let mut dev = FaultDev::new();
        assert_eq!(dev.read(0), 0, "idle device never fails allocations");
        dev.arm_alloc_failures(2);
        assert_eq!(dev.read(8), 2);
        assert_eq!(dev.read(0), 1);
        assert_eq!(dev.read(0), 1);
        assert_eq!(dev.read(0), 0, "budget exhausted");
        assert_eq!(dev.read(4), 2, "diagnostic counter tracks consumption");
    }

    #[test]
    fn guest_can_arm_via_mmio_write() {
        let mut dev = FaultDev::new();
        dev.write(0, 1);
        assert_eq!(dev.read(0), 1);
        assert_eq!(dev.read(0), 0);
    }
}
