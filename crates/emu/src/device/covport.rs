//! Guest-assisted coverage port.
//!
//! Firmware built with guest-side coverage instrumentation (the kcov-style
//! path the paper mentions for Syzkaller) writes edge identifiers here. The
//! Tardis-style OS-agnostic path does not use this device — it taps the
//! emulator's block-enter hook instead — but having both lets the benches
//! compare the two collection mechanisms.

/// Coverage-recording MMIO port.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CovPort {
    edges: Vec<u32>,
    enabled: bool,
}

impl CovPort {
    /// Creates a disabled coverage port.
    pub fn new() -> CovPort {
        CovPort::default()
    }

    /// Enables or disables recording (host side).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Takes and clears the recorded edge identifiers.
    pub fn take_edges(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.edges)
    }

    pub(crate) fn read(&mut self, offset: u32) -> u32 {
        match offset {
            0x4 => u32::from(self.enabled),
            _ => 0,
        }
    }

    pub(crate) fn write(&mut self, offset: u32, value: u32) {
        if offset == 0 && self.enabled {
            self.edges.push(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_only_when_enabled() {
        let mut cov = CovPort::new();
        cov.write(0, 1);
        assert!(cov.take_edges().is_empty());
        cov.set_enabled(true);
        cov.write(0, 2);
        cov.write(0, 3);
        assert_eq!(cov.take_edges(), vec![2, 3]);
        assert!(cov.take_edges().is_empty());
    }
}
