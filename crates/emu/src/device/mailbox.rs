//! Host↔guest mailbox device.
//!
//! This is the channel through which fuzzer executor tasks in the guest
//! kernels receive serialized test programs from the host (the role played by
//! Syzkaller's executor pipe / Tardis's injection channel in the paper) and
//! send back per-call results.

/// Mailbox register offsets.
const STATUS: u32 = 0x0;
const LEN: u32 = 0x4;
const NEXT: u32 = 0x8;
const RESULT: u32 = 0xC;

/// Program-injection mailbox.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Mailbox {
    program: Vec<u8>,
    cursor: usize,
    results: Vec<u8>,
}

impl Mailbox {
    /// Creates an empty mailbox.
    pub fn new() -> Mailbox {
        Mailbox::default()
    }

    /// Host side: loads a program for the guest executor, resetting the read
    /// cursor and clearing previous results.
    pub fn host_load(&mut self, program: &[u8]) {
        self.program = program.to_vec();
        self.cursor = 0;
        self.results.clear();
    }

    /// Host side: takes the result bytes written by the guest so far.
    pub fn host_take_results(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.results)
    }

    /// Host side: number of result bytes written so far (without draining).
    /// Used as the program-completion signal: the executor writes one
    /// result byte per call.
    pub fn result_count(&self) -> usize {
        self.results.len()
    }

    /// Host side: whether the guest has consumed the entire program.
    pub fn is_drained(&self) -> bool {
        self.cursor >= self.program.len()
    }

    pub(crate) fn read(&mut self, offset: u32) -> u32 {
        match offset {
            STATUS => u32::from(self.cursor < self.program.len()),
            LEN => self.program.len() as u32,
            NEXT => {
                let byte = self.program.get(self.cursor).copied().unwrap_or(0);
                self.cursor = (self.cursor + 1).min(self.program.len());
                u32::from(byte)
            }
            _ => 0,
        }
    }

    pub(crate) fn write(&mut self, offset: u32, value: u32) {
        if offset == RESULT {
            self.results.push(value as u8);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guest_reads_program_byte_by_byte() {
        let mut mailbox = Mailbox::new();
        mailbox.host_load(&[1, 2, 3]);
        assert_eq!(mailbox.read(LEN), 3);
        assert_eq!(mailbox.read(STATUS), 1);
        assert_eq!(mailbox.read(NEXT), 1);
        assert_eq!(mailbox.read(NEXT), 2);
        assert_eq!(mailbox.read(NEXT), 3);
        assert_eq!(mailbox.read(STATUS), 0);
        assert!(mailbox.is_drained());
        // Reads past the end are zero, not panics.
        assert_eq!(mailbox.read(NEXT), 0);
    }

    #[test]
    fn guest_writes_results() {
        let mut mailbox = Mailbox::new();
        mailbox.write(RESULT, 0xAB);
        mailbox.write(RESULT, 0xCD);
        assert_eq!(mailbox.host_take_results(), vec![0xAB, 0xCD]);
        assert!(mailbox.host_take_results().is_empty());
    }

    #[test]
    fn reload_resets_cursor_and_results() {
        let mut mailbox = Mailbox::new();
        mailbox.host_load(&[9]);
        assert_eq!(mailbox.read(NEXT), 9);
        mailbox.write(RESULT, 1);
        mailbox.host_load(&[7]);
        assert_eq!(mailbox.read(NEXT), 7);
        assert!(mailbox.host_take_results().is_empty());
    }
}
