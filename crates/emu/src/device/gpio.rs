//! GPIO bank with edge interrupts (Tock-HIL-style `gpio::Client`).
//!
//! Eight input lines and eight output lines. Input line 0 is driven by a
//! deterministic pattern generator clocked on retired instructions: when
//! the guest programs a non-zero toggle period, the line flips every
//! `period` instructions. Each flip is matched against the per-line edge
//! configuration; enabled edges latch into a write-1-to-clear pending
//! register and raise the machine interrupt line — the interrupt-driven
//! concurrency surface firmware ISRs run on.
//!
//! Register map (offsets within the GPIO block):
//!
//! | offset | register |
//! |--------|----------|
//! | `+0x00`| input lines (RO) |
//! | `+0x04`| output lines |
//! | `+0x08`| interrupt enable mask |
//! | `+0x0C`| edge config: bit set = both edges, clear = rising only |
//! | `+0x10`| interrupt pending (RO latch, W1C) |
//! | `+0x14`| input-toggle period in retired instructions (0 = off) |

/// Interrupt-latching GPIO bank clocked on retired instructions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Gpio {
    input: u32,
    output: u32,
    irq_enable: u32,
    edge_both: u32,
    pending: u32,
    period: u32,
    /// Instructions until the next input toggle (counts down while a
    /// period is programmed).
    until_toggle: u64,
    /// Interrupt events recorded since the last drain (see
    /// [`Gpio::drain_events`]).
    events: Vec<super::IrqEvent>,
}

impl Gpio {
    /// Creates a quiescent GPIO bank (no pattern, no interrupts).
    pub fn new() -> Gpio {
        Gpio::default()
    }

    /// Pending interrupt lines (the RO latch the ISR reads).
    pub fn pending(&self) -> u32 {
        self.pending
    }

    /// Whether the pattern generator can raise an interrupt without
    /// further guest writes.
    pub fn pattern_active(&self) -> bool {
        self.period != 0 && self.irq_enable & 1 != 0
    }

    /// Takes the interrupt raise/ack events recorded since the last call.
    pub(crate) fn drain_events(&mut self) -> Vec<super::IrqEvent> {
        std::mem::take(&mut self.events)
    }

    pub(crate) fn read(&mut self, offset: u32) -> u32 {
        match offset {
            0x00 => self.input,
            0x04 => self.output,
            0x08 => self.irq_enable,
            0x0C => self.edge_both,
            0x10 => self.pending,
            0x14 => self.period,
            _ => 0,
        }
    }

    pub(crate) fn write(&mut self, offset: u32, value: u32) {
        match offset {
            0x04 => self.output = value & 0xFF,
            0x08 => self.irq_enable = value & 0xFF,
            0x0C => self.edge_both = value & 0xFF,
            0x10 => {
                // Write-1-to-clear acknowledge.
                let acked = self.pending & value;
                if acked != 0 {
                    self.events.push(super::IrqEvent::Acked { source: "gpio", lines: acked });
                }
                self.pending &= !value;
            }
            0x14 => {
                self.period = value;
                self.until_toggle = u64::from(value);
            }
            _ => {}
        }
    }

    /// Advances the pattern generator by `instructions` retired
    /// instructions; returns `true` if an enabled edge latched an
    /// interrupt during the window. Closed-form (O(1) for any window
    /// size): the idle skip-ahead path ticks with huge windows.
    pub fn tick(&mut self, instructions: u64) -> bool {
        if self.period == 0 || instructions < self.until_toggle {
            self.until_toggle = self.until_toggle.saturating_sub(instructions);
            return false;
        }
        let period = u64::from(self.period);
        let past_first = instructions - self.until_toggle;
        let toggles = 1 + past_first / period;
        self.until_toggle = period - past_first % period;
        let started_high = self.input & 1 != 0;
        if !toggles.is_multiple_of(2) {
            self.input ^= 1;
        }
        // With n ≥ 1 toggles from starting level L: a rising edge occurred
        // iff L was low or the line flipped more than once; a falling edge
        // symmetrically.
        let rising = !started_high || toggles >= 2;
        let falling = started_high || toggles >= 2;
        let wanted = rising || (falling && self.edge_both & 1 != 0);
        if wanted && self.irq_enable & 1 != 0 {
            if self.pending & 1 == 0 {
                self.events.push(super::IrqEvent::Raised { source: "gpio", lines: 1 });
            }
            self.pending |= 1;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::super::IrqEvent;
    use super::*;

    #[test]
    fn quiescent_bank_never_fires() {
        let mut gpio = Gpio::new();
        assert!(!gpio.tick(1_000_000));
        assert_eq!(gpio.pending(), 0);
    }

    #[test]
    fn rising_edges_latch_when_enabled() {
        let mut gpio = Gpio::new();
        gpio.write(0x14, 100); // toggle every 100 instructions
        gpio.write(0x08, 1); // enable line 0
        assert!(!gpio.tick(99));
        assert!(gpio.tick(1), "first toggle is low→high: rising edge");
        assert_eq!(gpio.read(0x10), 1);
        assert_eq!(gpio.read(0x00) & 1, 1);
        // Second toggle is falling: not latched under rising-only config
        // (pending stays set from before; ack then verify no re-latch).
        gpio.write(0x10, 1);
        assert!(!gpio.tick(100), "falling edge ignored in rising-only mode");
        assert_eq!(gpio.read(0x10), 0);
        // Both-edges config latches the next falling edge too.
        gpio.write(0x0C, 1);
        assert!(gpio.tick(200)); // rising at +100, falling at +200
        assert_eq!(gpio.read(0x10), 1);
    }

    #[test]
    fn multiple_periods_in_one_window_are_exact() {
        let mut gpio = Gpio::new();
        gpio.write(0x14, 10);
        gpio.write(0x08, 1);
        // 35 instructions = 3 toggles (at 10, 20, 30), line ends high.
        assert!(gpio.tick(35));
        assert_eq!(gpio.read(0x00) & 1, 1);
        let mut replay = Gpio::new();
        replay.write(0x14, 10);
        replay.write(0x08, 1);
        for _ in 0..35 {
            replay.tick(1);
        }
        replay.events.clear();
        gpio.events.clear();
        assert_eq!(gpio, replay, "one window of N == N windows of 1");
    }

    #[test]
    fn ack_and_raise_are_recorded_as_events() {
        let mut gpio = Gpio::new();
        gpio.write(0x14, 4);
        gpio.write(0x08, 1);
        gpio.tick(4);
        gpio.write(0x10, 1);
        assert_eq!(
            gpio.drain_events(),
            vec![
                IrqEvent::Raised { source: "gpio", lines: 1 },
                IrqEvent::Acked { source: "gpio", lines: 1 },
            ]
        );
        assert!(gpio.drain_events().is_empty());
    }
}
