//! Deterministic pseudo-random source device.

/// A seeded xorshift64* pseudo-random MMIO device.
///
/// Guests read successive words from the data register. Being seeded from
/// the machine configuration keeps whole-system runs reproducible, which the
/// fuzz-campaign benches rely on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates an RNG from a seed (zero is mapped to a fixed non-zero value).
    pub fn new(seed: u64) -> Rng {
        Rng { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    fn next(&mut self) -> u64 {
        // xorshift64* (Marsaglia / Vigna).
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    pub(crate) fn read(&mut self, offset: u32) -> u32 {
        if offset == 0 {
            self.next() as u32
        } else {
            0
        }
    }

    pub(crate) fn write(&mut self, _offset: u32, _value: u32) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..16 {
            assert_eq!(a.read(0), b.read(0));
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = Rng::new(0);
        let first = rng.read(0);
        let second = rng.read(0);
        assert_ne!(first, second);
    }
}
