//! Power/shutdown controller.

/// A write-to-halt power controller.
///
/// Writing an exit code to the control register requests a machine halt; the
/// machine loop observes the request after the current instruction retires.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Power {
    halt: Option<u16>,
}

impl Power {
    /// Creates a power controller with no pending request.
    pub fn new() -> Power {
        Power::default()
    }

    /// The pending halt exit code, if any.
    pub fn halt_request(&self) -> Option<u16> {
        self.halt
    }

    /// Clears a pending halt request (used when reusing a machine).
    pub fn clear(&mut self) {
        self.halt = None;
    }

    pub(crate) fn read(&mut self, _offset: u32) -> u32 {
        u32::from(self.halt.is_some())
    }

    pub(crate) fn write(&mut self, offset: u32, value: u32) {
        if offset == 0 {
            self.halt = Some(value as u16);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halt_request_lifecycle() {
        let mut power = Power::new();
        assert_eq!(power.halt_request(), None);
        power.write(0, 3);
        assert_eq!(power.halt_request(), Some(3));
        assert_eq!(power.read(0), 1);
        power.clear();
        assert_eq!(power.halt_request(), None);
    }
}
