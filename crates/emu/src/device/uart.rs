//! Console UART device.

/// A transmit-only console UART.
///
/// Bytes written to the TX register accumulate in a host-visible buffer; the
/// prober uses console output (e.g. a firmware's "ready" banner) as one of
/// its ready-point signals for closed-source firmware.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Uart {
    output: Vec<u8>,
}

impl Uart {
    /// Creates an idle UART.
    pub fn new() -> Uart {
        Uart::default()
    }

    pub(crate) fn read(&mut self, offset: u32) -> u32 {
        match offset {
            // Status: TX always ready.
            0x4 => 1,
            _ => 0,
        }
    }

    pub(crate) fn write(&mut self, offset: u32, value: u32) {
        if offset == 0 {
            self.output.push(value as u8);
        }
    }

    /// Takes and clears the accumulated console output.
    pub fn take_output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.output)
    }

    /// Peeks at the accumulated console output without clearing it.
    pub fn output(&self) -> &[u8] {
        &self.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_accumulates_and_drains() {
        let mut uart = Uart::new();
        for byte in b"ok\n" {
            uart.write(0, u32::from(*byte));
        }
        assert_eq!(uart.output(), b"ok\n");
        assert_eq!(uart.take_output(), b"ok\n");
        assert!(uart.output().is_empty());
    }

    #[test]
    fn status_reads_ready() {
        let mut uart = Uart::new();
        assert_eq!(uart.read(4), 1);
    }
}
