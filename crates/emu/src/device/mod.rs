//! Memory-mapped platform devices.
//!
//! The device set is deliberately small but sufficient for real firmware
//! behaviour: a console [`Uart`], a countdown [`Timer`] that raises the
//! machine interrupt, a [`Mailbox`] used by fuzzer executors to receive test
//! programs from the host, a [`Power`] controller for clean shutdown, a
//! seeded [`Rng`], and a [`CovPort`] for guest-assisted coverage (the
//! kcov-style channel; the Tardis-style channel taps the emulator directly).
//!
//! Register map (offsets from the profile's `mmio_base`):
//!
//! | offset | device  | registers |
//! |--------|---------|-----------|
//! | `0x000`| UART    | `+0` TX, `+4` status (always ready) |
//! | `0x100`| TIMER   | `+0` ctrl (1=enable), `+4` reload, `+8` count |
//! | `0x200`| COV     | `+0` write edge id |
//! | `0x300`| POWER   | `+0` write exit code → halt machine |
//! | `0x400`| MAILBOX | `+0` status, `+4` len, `+8` next byte, `+12` result |
//! | `0x500`| RNG     | `+0` next pseudo-random word |
//! | `0x600`| FAULT   | `+0` consume/arm alloc failure, `+4` injected, `+8` armed |
//! | `0x700`| GPIO    | see [`Gpio`]: edge-interrupt bank + pattern generator |
//! | `0x800`| ALARM   | see [`Alarm`]: one-shot compare + deferred calls |

mod alarm;
mod covport;
mod faultdev;
mod gpio;
mod mailbox;
mod power;
mod rng;
mod timer;
mod uart;

pub use alarm::{Alarm, ALARM_PENDING_COMPARE, ALARM_PENDING_DEFERRED};
pub use covport::CovPort;
pub use faultdev::FaultDev;
pub use gpio::Gpio;
pub use mailbox::Mailbox;
pub use power::Power;
pub use rng::Rng;
pub use timer::Timer;
pub use uart::Uart;

use crate::mmio_free::ModelFreeMmio;

/// One interrupt-delivery event recorded by a device for the tracer
/// (drained by the machine every quantum, on the retired-instruction
/// clock).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrqEvent {
    /// An interrupt source latched its pending line(s).
    Raised {
        /// Device label (`"timer"`, `"gpio"`, `"alarm"`).
        source: &'static str,
        /// Pending bits newly latched.
        lines: u32,
    },
    /// The guest acknowledged pending line(s) (write-1-to-clear).
    Acked {
        /// Device label.
        source: &'static str,
        /// Pending bits cleared.
        lines: u32,
    },
    /// The guest scheduled a deferred call.
    DeferredScheduled {
        /// Delay in retired instructions.
        delay: u32,
    },
}

/// Offset of the UART block.
pub const UART_BASE: u32 = 0x000;
/// Offset of the timer block.
pub const TIMER_BASE: u32 = 0x100;
/// Offset of the coverage port.
pub const COV_BASE: u32 = 0x200;
/// Offset of the power controller.
pub const POWER_BASE: u32 = 0x300;
/// Offset of the mailbox block.
pub const MAILBOX_BASE: u32 = 0x400;
/// Offset of the RNG block.
pub const RNG_BASE: u32 = 0x500;
/// Offset of the fault-injection block.
pub const FAULT_BASE: u32 = 0x600;
/// Offset of the GPIO block.
pub const GPIO_BASE: u32 = 0x700;
/// Offset of the alarm block.
pub const ALARM_BASE: u32 = 0x800;

/// The full set of devices behind a machine's MMIO window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceSet {
    /// Console output device.
    pub uart: Uart,
    /// Countdown interrupt timer.
    pub timer: Timer,
    /// Guest-assisted coverage port.
    pub cov: CovPort,
    /// Power/shutdown controller.
    pub power: Power,
    /// Host↔guest program mailbox.
    pub mailbox: Mailbox,
    /// Deterministic pseudo-random source.
    pub rng: Rng,
    /// Fault-injection device (allocator-failure triggers).
    pub fault: FaultDev,
    /// Edge-interrupt GPIO bank.
    pub gpio: Gpio,
    /// One-shot compare alarm + deferred-call source.
    pub alarm: Alarm,
    /// Model-free MMIO region, when configured (see
    /// [`crate::mmio_free`]). Living inside the device set puts its
    /// whole refinement state — cache, stream, cursor — under snapshot
    /// capture/restore and the snapshot content hash for free.
    pub model_free: Option<ModelFreeMmio>,
}

impl DeviceSet {
    /// Creates a device set with the given RNG seed.
    pub fn new(rng_seed: u64) -> DeviceSet {
        DeviceSet {
            uart: Uart::new(),
            timer: Timer::new(),
            cov: CovPort::new(),
            power: Power::new(),
            mailbox: Mailbox::new(),
            rng: Rng::new(rng_seed),
            fault: FaultDev::new(),
            gpio: Gpio::new(),
            alarm: Alarm::new(),
            model_free: None,
        }
    }

    /// Dispatches an MMIO read at `offset` within the window.
    ///
    /// Unassigned offsets read as zero (matching typical bus behaviour for
    /// reserved registers, which the prober relies on when scanning).
    pub fn read(&mut self, offset: u32) -> u32 {
        match offset & !0xFF {
            UART_BASE => self.uart.read(offset & 0xFF),
            TIMER_BASE => self.timer.read(offset & 0xFF),
            COV_BASE => self.cov.read(offset & 0xFF),
            POWER_BASE => self.power.read(offset & 0xFF),
            MAILBOX_BASE => self.mailbox.read(offset & 0xFF),
            RNG_BASE => self.rng.read(offset & 0xFF),
            FAULT_BASE => self.fault.read(offset & 0xFF),
            GPIO_BASE => self.gpio.read(offset & 0xFF),
            ALARM_BASE => self.alarm.read(offset & 0xFF),
            _ => 0,
        }
    }

    /// Dispatches an MMIO write at `offset` within the window.
    pub fn write(&mut self, offset: u32, value: u32) {
        match offset & !0xFF {
            UART_BASE => self.uart.write(offset & 0xFF, value),
            TIMER_BASE => self.timer.write(offset & 0xFF, value),
            COV_BASE => self.cov.write(offset & 0xFF, value),
            POWER_BASE => self.power.write(offset & 0xFF, value),
            MAILBOX_BASE => self.mailbox.write(offset & 0xFF, value),
            RNG_BASE => self.rng.write(offset & 0xFF, value),
            FAULT_BASE => self.fault.write(offset & 0xFF, value),
            GPIO_BASE => self.gpio.write(offset & 0xFF, value),
            ALARM_BASE => self.alarm.write(offset & 0xFF, value),
            _ => {}
        }
    }

    /// Advances time by `instructions` retired instructions.
    ///
    /// Returns `true` if any interrupt source (timer, GPIO edge, alarm
    /// compare or deferred call) raised the machine interrupt line during
    /// the window. All sources share the single line; the ISR reads each
    /// device's pending register to demultiplex.
    pub fn tick(&mut self, instructions: u64) -> bool {
        // `|` not `||`: every source must observe the elapsed window even
        // when an earlier one already fired.
        self.timer.tick(instructions) | self.gpio.tick(instructions) | self.alarm.tick(instructions)
    }

    /// Takes the interrupt raise/ack/deferred events the devices recorded
    /// since the last call, in device order (GPIO, then alarm) — the
    /// machine drains this every quantum and stamps the events onto the
    /// retired-instruction clock.
    pub fn drain_irq_events(&mut self) -> Vec<IrqEvent> {
        let mut events = self.gpio.drain_events();
        events.extend(self.alarm.drain_events());
        events
    }

    /// Whether any interrupt source could fire in the future without
    /// further guest activity (used by the all-parked skip-ahead: a
    /// machine waiting only on `wfi` must wake for any of these).
    pub fn irq_source_armed(&self) -> bool {
        self.timer.armed() || self.gpio.pattern_active() || self.alarm.armed_or_deferred()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unassigned_offsets_read_zero() {
        let mut devices = DeviceSet::new(1);
        assert_eq!(devices.read(0x900), 0);
        assert_eq!(devices.read(0xA00), 0);
        devices.write(0x900, 0xFFFF_FFFF); // must not panic
    }

    #[test]
    fn tick_reaches_every_interrupt_source() {
        let mut devices = DeviceSet::new(1);
        devices.write(GPIO_BASE + 0x14, 50);
        devices.write(GPIO_BASE + 0x08, 1);
        devices.write(ALARM_BASE + 0x10, 80);
        assert!(devices.irq_source_armed());
        assert!(devices.tick(50), "gpio edge");
        assert!(devices.tick(30), "deferred call at 80");
        assert_eq!(devices.gpio.pending(), 1);
        assert_eq!(devices.alarm.pending(), ALARM_PENDING_DEFERRED);
        let events = devices.drain_irq_events();
        assert_eq!(events.len(), 3, "raise, schedule, raise: {events:?}");
    }

    #[test]
    fn dispatch_reaches_devices() {
        let mut devices = DeviceSet::new(1);
        devices.write(UART_BASE, u32::from(b'A'));
        assert_eq!(devices.uart.take_output(), b"A");
        devices.write(POWER_BASE, 7);
        assert_eq!(devices.power.halt_request(), Some(7));
    }
}
