//! Deterministic fault injection: scheduled hardware-level faults.
//!
//! A [`FaultPlan`] is a list of fault events keyed on the machine's
//! *lifetime* retired-instruction clock (which, unlike the snapshot-visible
//! counter, never rewinds on [`crate::snapshot::Snapshot`] restore). Because
//! the trigger clock and the machine are both deterministic, a plan injects
//! exactly the same faults at exactly the same points on every run — which
//! is what makes resilience testing of the fuzzing harness reproducible.
//!
//! Supported fault kinds model the classes a long embedded campaign meets
//! in practice:
//!
//! - **RAM bit flips** — single-event upsets in guest memory;
//! - **MMIO read corruption** — a flaky peripheral bus XOR-ing read data;
//! - **spurious timer IRQs** — an interrupt line glitching outside its
//!   programmed schedule;
//! - **allocator failures** — armed through the [`crate::device::FaultDev`]
//!   MMIO device the guest allocator can poll;
//! - **stuck vCPUs** — a core that keeps fetching (and retiring) the same
//!   instruction without making progress, the canonical live-lock.
//!
//! Plans can be built programmatically or parsed from a small line-based
//! spec (see [`FaultPlan::parse`]).

/// One kind of injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip bit `bit` of the RAM byte at `offset` (relative to RAM base).
    RamBitFlip {
        /// Byte offset into RAM.
        offset: u32,
        /// Bit index 0..=7.
        bit: u8,
    },
    /// XOR the next `reads` guest MMIO reads with `xor`.
    MmioCorrupt {
        /// Corruption mask applied to read data.
        xor: u32,
        /// Number of subsequent MMIO reads affected.
        reads: u32,
    },
    /// Raise a timer interrupt on every vCPU outside the timer's schedule.
    SpuriousIrq,
    /// Arm `count` allocation failures on the fault device.
    AllocFail {
        /// Number of allocations the device will fail.
        count: u32,
    },
    /// Wedge vCPU `cpu`: it keeps retiring instructions without making
    /// progress until a snapshot restore clears the stuck line.
    StuckCpu {
        /// Index of the vCPU to wedge.
        cpu: usize,
    },
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FaultKind::RamBitFlip { offset, bit } => {
                write!(f, "flip ram+{offset:#x} bit {bit}")
            }
            FaultKind::MmioCorrupt { xor, reads } => {
                write!(f, "xor {reads} mmio reads with {xor:#x}")
            }
            FaultKind::SpuriousIrq => write!(f, "spurious timer irq"),
            FaultKind::AllocFail { count } => write!(f, "fail {count} allocations"),
            FaultKind::StuckCpu { cpu } => write!(f, "wedge vcpu {cpu}"),
        }
    }
}

/// One scheduled fault: fires `count` times starting `at` lifetime-retired
/// instructions after the plan is armed, `every` instructions apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Trigger offset (retired instructions after arming).
    pub at: u64,
    /// Repeat interval in retired instructions (ignored when `count <= 1`).
    pub every: u64,
    /// Total number of firings (at least 1).
    pub count: u32,
    /// What to inject.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// A one-shot event.
    pub fn once(at: u64, kind: FaultKind) -> FaultEvent {
        FaultEvent { at, every: 0, count: 1, kind }
    }

    /// A repeating event: `count` firings, `every` instructions apart.
    pub fn repeating(at: u64, every: u64, count: u32, kind: FaultKind) -> FaultEvent {
        FaultEvent { at, every, count: count.max(1), kind }
    }
}

/// A deterministic fault-injection schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

/// A malformed fault-plan spec line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlanError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fault plan line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for FaultPlanError {}

fn parse_num(token: &str) -> Option<u64> {
    let token = token.replace('_', "");
    if let Some(hex) = token.strip_prefix("0x").or_else(|| token.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        token.parse().ok()
    }
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds an event to the plan.
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
    }

    /// Builder-style [`FaultPlan::push`].
    pub fn with(mut self, event: FaultEvent) -> FaultPlan {
        self.push(event);
        self
    }

    /// The scheduled events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan schedules anything.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Parses the line-based fault-plan spec format:
    ///
    /// ```text
    /// # seu in the heap, then a flaky bus window
    /// at 50_000 flip 0x2400 3
    /// at 80_000 every 1_000 x4 mmio-xor 0xFF 16
    /// at 120_000 irq
    /// at 150_000 alloc-fail 2
    /// at 200_000 stuck-cpu 0
    /// ```
    ///
    /// Each non-comment line is `at <N> [every <M> x<K>] <kind> [args…]`,
    /// with `<N>`/`<M>` in retired instructions relative to arming.
    ///
    /// # Errors
    ///
    /// Returns a [`FaultPlanError`] naming the first malformed line; no
    /// input text can panic the parser.
    pub fn parse(text: &str) -> Result<FaultPlan, FaultPlanError> {
        let mut plan = FaultPlan::new();
        for (index, raw) in text.lines().enumerate() {
            let line = index + 1;
            let err = |message: String| FaultPlanError { line, message };
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let mut tokens = content.split_whitespace();
            if tokens.next() != Some("at") {
                return Err(err(format!("expected `at <instructions>`, got `{content}`")));
            }
            let at = tokens
                .next()
                .and_then(parse_num)
                .ok_or_else(|| err("`at` needs an instruction count".into()))?;
            let mut every = 0u64;
            let mut count = 1u32;
            let mut next = tokens.next();
            if next == Some("every") {
                every = tokens
                    .next()
                    .and_then(parse_num)
                    .ok_or_else(|| err("`every` needs an interval".into()))?;
                let reps = tokens
                    .next()
                    .and_then(|t| t.strip_prefix('x'))
                    .and_then(parse_num)
                    .ok_or_else(|| err("`every <M>` needs a repeat count `x<K>`".into()))?;
                count = u32::try_from(reps)
                    .ok()
                    .filter(|&c| c >= 1)
                    .ok_or_else(|| err("repeat count out of range".into()))?;
                next = tokens.next();
            }
            let mut arg = |name: &str| {
                tokens
                    .next()
                    .and_then(parse_num)
                    .ok_or_else(|| err(format!("missing or malformed `{name}` argument")))
            };
            let kind = match next {
                Some("flip") => {
                    let offset = arg("offset")?;
                    let bit = arg("bit")?;
                    if bit > 7 {
                        return Err(err(format!("bit index {bit} out of range 0..=7")));
                    }
                    let offset = u32::try_from(offset)
                        .map_err(|_| err("RAM offset out of 32-bit range".into()))?;
                    FaultKind::RamBitFlip { offset, bit: bit as u8 }
                }
                Some("mmio-xor") => {
                    let xor = arg("xor")?;
                    let reads = arg("reads")?;
                    FaultKind::MmioCorrupt {
                        xor: xor as u32,
                        reads: u32::try_from(reads)
                            .map_err(|_| err("read count out of range".into()))?,
                    }
                }
                Some("irq") => FaultKind::SpuriousIrq,
                Some("alloc-fail") => FaultKind::AllocFail {
                    count: u32::try_from(arg("count")?)
                        .map_err(|_| err("alloc-fail count out of range".into()))?,
                },
                Some("stuck-cpu") => FaultKind::StuckCpu { cpu: arg("cpu")? as usize },
                Some(other) => return Err(err(format!("unknown fault kind `{other}`"))),
                None => return Err(err("missing fault kind".into())),
            };
            if tokens.next().is_some() {
                return Err(err("trailing tokens after fault arguments".into()));
            }
            plan.push(FaultEvent { at, every, count, kind });
        }
        Ok(plan)
    }
}

/// Counters for faults actually injected by an armed plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectionStats {
    /// RAM bits flipped.
    pub ram_bit_flips: u64,
    /// MMIO corruption windows opened.
    pub mmio_corruptions: u64,
    /// Spurious interrupts raised.
    pub spurious_irqs: u64,
    /// Allocation-failure armings delivered to the fault device.
    pub alloc_failures: u64,
    /// vCPU wedge events.
    pub cpu_wedges: u64,
}

impl InjectionStats {
    /// Total faults injected across all kinds.
    pub fn total(&self) -> u64 {
        self.ram_bit_flips
            + self.mmio_corruptions
            + self.spurious_irqs
            + self.alloc_failures
            + self.cpu_wedges
    }
}

/// Why a guest that exhausted its budget is not making progress.
///
/// Produced by [`crate::machine::Machine::classify_hang`], which slices a
/// further window of execution off the (already exhausted) budget and
/// watches whether instructions still retire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HangClass {
    /// All vCPUs parked in `wfi` with no wake source: the guest is idle,
    /// not hung — the budget was simply too small for it to finish.
    WfiIdle,
    /// Instructions keep retiring without the machine halting or idling:
    /// a live-lock (spin loop, IRQ storm, stuck core).
    LiveLock,
    /// The guest made visible progress (halted, faulted, or stopped)
    /// within the classification window; not a hang at all.
    Responsive,
}

/// One armed event inside a machine (absolute lifetime-clock trigger).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ArmedFault {
    pub(crate) fire_at: u64,
    pub(crate) every: u64,
    pub(crate) remaining: u32,
    pub(crate) kind: FaultKind,
}

/// A [`FaultPlan`] armed against a machine's lifetime clock.
#[derive(Debug, Clone, Default)]
pub(crate) struct ArmedPlan {
    pub(crate) events: Vec<ArmedFault>,
}

impl ArmedPlan {
    pub(crate) fn arm(plan: &FaultPlan, now: u64) -> ArmedPlan {
        ArmedPlan {
            events: plan
                .events
                .iter()
                .map(|e| ArmedFault {
                    fire_at: now.saturating_add(e.at),
                    every: e.every,
                    remaining: e.count.max(1),
                    kind: e.kind,
                })
                .collect(),
        }
    }

    /// Pops every event due at lifetime-clock `now`, rescheduling repeats.
    pub(crate) fn take_due(&mut self, now: u64) -> Vec<FaultKind> {
        let mut due = Vec::new();
        self.events.retain_mut(|event| {
            while event.remaining > 0 && event.fire_at <= now {
                due.push(event.kind);
                event.remaining -= 1;
                if event.every == 0 {
                    event.remaining = 0;
                }
                event.fire_at = event.fire_at.saturating_add(event.every.max(1));
            }
            event.remaining > 0
        });
        due
    }

    pub(crate) fn pending(&self) -> usize {
        self.events.iter().map(|e| e.remaining as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_kinds() {
        let plan = FaultPlan::parse(
            "# header comment\n\
             at 50_000 flip 0x2400 3\n\
             at 80_000 every 1_000 x4 mmio-xor 0xFF 16\n\
             at 120000 irq   # inline comment\n\
             \n\
             at 150_000 alloc-fail 2\n\
             at 200_000 stuck-cpu 0\n",
        )
        .unwrap();
        assert_eq!(plan.events().len(), 5);
        assert_eq!(
            plan.events()[0],
            FaultEvent::once(50_000, FaultKind::RamBitFlip { offset: 0x2400, bit: 3 })
        );
        assert_eq!(
            plan.events()[1],
            FaultEvent::repeating(
                80_000,
                1_000,
                4,
                FaultKind::MmioCorrupt { xor: 0xFF, reads: 16 }
            )
        );
        assert_eq!(plan.events()[2].kind, FaultKind::SpuriousIrq);
        assert_eq!(plan.events()[3].kind, FaultKind::AllocFail { count: 2 });
        assert_eq!(plan.events()[4].kind, FaultKind::StuckCpu { cpu: 0 });
    }

    #[test]
    fn malformed_lines_are_typed_errors() {
        for (text, want_line) in [
            ("boom", 1),
            ("at", 1),
            ("at zzz irq", 1),
            ("at 10 flip 0x10", 1),
            ("at 10 flip 0x10 9", 1),
            ("at 10 warp-core 1", 1),
            ("at 10 irq trailing", 1),
            ("at 10 every 5 irq", 1),
            ("# fine\nat 10 irq\nat 20 flip", 3),
        ] {
            let err = FaultPlan::parse(text).unwrap_err();
            assert_eq!(err.line, want_line, "{text:?} -> {err}");
            assert!(!err.message.is_empty());
        }
    }

    #[test]
    fn armed_plan_fires_and_repeats() {
        let plan = FaultPlan::new()
            .with(FaultEvent::once(100, FaultKind::SpuriousIrq))
            .with(FaultEvent::repeating(200, 50, 3, FaultKind::AllocFail { count: 1 }));
        let mut armed = ArmedPlan::arm(&plan, 1000);
        assert!(armed.take_due(1050).is_empty());
        assert_eq!(armed.take_due(1100), vec![FaultKind::SpuriousIrq]);
        // A large jump delivers every elapsed repeat at once.
        let due = armed.take_due(1260);
        assert_eq!(due.len(), 2, "{due:?}");
        assert_eq!(armed.pending(), 1);
        assert_eq!(armed.take_due(u64::MAX).len(), 1);
        assert_eq!(armed.pending(), 0);
    }
}
