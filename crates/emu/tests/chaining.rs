//! Dispatch-path edge cases for the chained/superblock translator: self-loop
//! promotion, chain invalidation across a reconfigure, superblocks that span
//! a page boundary, and a randomized chained-vs-unchained equivalence check.
//!
//! The reference executor for the equivalence check is the same machine with
//! a scheduling quantum of 1: chains and superblock promotion only engage on
//! the second dispatch *within* a quantum, so a one-instruction quantum runs
//! every block through the plain cache-lookup path.

use embsan_emu::hook::{ExecHook, HookAction};
use embsan_emu::isa::{Insn, Reg};
use embsan_emu::prelude::*;

fn build_machine(insns: &[Insn], quantum: Option<u64>) -> Machine {
    let profile = ArchProfile::armv();
    let mut text = Vec::new();
    for insn in insns {
        text.extend_from_slice(&insn.encode().to_bytes(profile.endian));
    }
    let mut builder =
        Machine::builder(profile).rom(profile.rom_base, &text).ram(profile.ram_base, 0x1_0000);
    if let Some(q) = quantum {
        builder = builder.quantum(q);
    }
    builder.build().unwrap()
}

/// A one-instruction self-loop: promotion keeps merging the block with
/// itself, which must terminate at the superblock size cap instead of
/// growing (or recursing) forever.
#[test]
fn self_loop_block_promotes_then_chains() {
    let mut m = build_machine(&[Insn::Jal { rd: Reg::R0, offset: 0 }], None);
    let rom = ArchProfile::armv().rom_base;

    let exit = m.run(&mut NullHook, 5_000).unwrap();
    assert_eq!(exit, RunExit::BudgetExhausted);
    assert_eq!(m.retired(), 5_000);
    assert_eq!(m.cpu(0).pc, rom);

    let stats = m.cache_stats();
    assert!(stats.superblocks_formed > 0, "self-loop never promoted");
    assert!(
        stats.superblocks_formed <= 32,
        "self-loop promotion did not converge: {} merges",
        stats.superblocks_formed
    );
    assert!(stats.chained_dispatches > 0, "steady state should dispatch via chains");

    // Growth is capped: more execution must not form more superblocks.
    let formed = stats.superblocks_formed;
    m.run(&mut NullHook, 5_000).unwrap();
    assert_eq!(m.cache_stats().superblocks_formed, formed);
    assert_eq!(m.retired(), 10_000);
}

/// Reconfiguring the hook set bumps the cache generation; chains installed
/// under the old configuration must not carry execution into stale blocks
/// that lack the newly requested probes.
#[test]
fn reconfigure_severs_stale_chains() {
    struct Recorder(u64);
    impl ExecHook for Recorder {
        fn mem_access(
            &mut self,
            _cpu: &mut embsan_emu::cpu::CpuView<'_>,
            _access: &embsan_emu::bus::MemAccess,
        ) -> HookAction {
            self.0 += 1;
            HookAction::Continue
        }
    }

    let profile = ArchProfile::armv();
    // 0: lui r1, ram   4: sw r0, 0(r1)   8: jal -4 (back to the store)
    let mut m = build_machine(
        &[
            Insn::Lui { rd: Reg::R1, imm: profile.ram_base },
            Insn::Sw { rs2: Reg::R0, rs1: Reg::R1, imm: 0 },
            Insn::Jal { rd: Reg::R0, offset: -4 },
        ],
        None,
    );

    // Phase 1: run unarmed long enough for chains and superblocks to form.
    let exit = m.run(&mut NullHook, 1_001).unwrap();
    assert_eq!(exit, RunExit::BudgetExhausted);
    let before = m.cache_stats();
    assert!(before.chained_dispatches > 0, "phase 1 never chained");

    // Phase 2: arm memory probes. Every store from here on must be observed;
    // a stale chain into a generation-0 block would silently skip them.
    m.set_hook_config(HookConfig { mem: true, ..HookConfig::none() });
    let mut recorder = Recorder(0);
    // pc is at the store (500 whole loop iterations completed), so a budget
    // of 100 executes exactly 50 more store/jump pairs.
    let exit = m.run(&mut recorder, 100).unwrap();
    assert_eq!(exit, RunExit::BudgetExhausted);
    assert_eq!(recorder.0, 50, "reconfigured probes missed stores");
    assert_eq!(m.cache_stats().reconfigures, before.reconfigures + 1);
}

/// Two blocks joined by an unconditional jump across a 4 KiB boundary merge
/// into one superblock whose ops span the boundary; execution stays exact.
#[test]
fn superblock_spans_page_boundary() {
    let n_pad = 0xFF8 / 4 - 1; // nops between the entry jump and page end
    let mut insns = vec![Insn::Jal { rd: Reg::R0, offset: 0xFF8 }];
    insns.extend(std::iter::repeat_n(Insn::Nop, n_pad));
    // 0xFF8: addi r1 += 1     0xFFC: jal +4 (crosses into the next page)
    // 0x1000: addi r2 += 1    0x1004: jal -12 (back to 0xFF8)
    insns.push(Insn::Addi { rd: Reg::R1, rs1: Reg::R1, imm: 1 });
    insns.push(Insn::Jal { rd: Reg::R0, offset: 4 });
    insns.push(Insn::Addi { rd: Reg::R2, rs1: Reg::R2, imm: 1 });
    insns.push(Insn::Jal { rd: Reg::R0, offset: -12 });

    let mut m = build_machine(&insns, None);
    let exit = m.run(&mut NullHook, 3_001).unwrap();
    assert_eq!(exit, RunExit::BudgetExhausted);
    assert_eq!(m.retired(), 3_001);
    // 1 entry jump + 750 whole loop iterations of 4 instructions.
    assert_eq!(m.cpu(0).regs.read(Reg::R1), 750);
    assert_eq!(m.cpu(0).regs.read(Reg::R2), 750);
    assert_eq!(m.cpu(0).pc, ArchProfile::armv().rom_base + 0xFF8);

    let stats = m.cache_stats();
    // At minimum the cross-page pair (0xFF8 -> 0x1000) merged.
    assert!(stats.superblocks_formed >= 2, "cross-page blocks never merged");
    assert!(stats.chained_dispatches > 0);
}

// ---------------------------------------------------------------------------
// Randomized chained ≡ unchained equivalence.
// ---------------------------------------------------------------------------

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Decodes one raw u64 into a loop-heavy instruction at index `i` of an
/// `n`-instruction program. The subset is deliberately tame: no CSR writes
/// (no timer interrupts), no `wfi` (no parking), no indirect jumps, and all
/// memory traffic through a preserved RAM base register — so both executors
/// retire the identical architectural stream until the budget runs out.
fn synth_insn(raw: u64, i: usize, n: usize) -> Insn {
    let rd = Reg::from_index((raw >> 8) as u8 % 16);
    let rd = if rd == Reg::R10 { Reg::R11 } else { rd };
    let rs1 = Reg::from_index((raw >> 16) as u8 % 16);
    let rs2 = Reg::from_index((raw >> 24) as u8 % 16);
    let imm = ((raw >> 32) & 0x7FF) as i32;
    let target = ((raw >> 44) as usize) % n;
    let offset = (target as i32 - i as i32) * 4;
    match raw % 10 {
        0 => Insn::Add { rd, rs1, rs2 },
        1 => Insn::Sub { rd, rs1, rs2 },
        2 => Insn::Xor { rd, rs1, rs2 },
        3 => Insn::Addi { rd, rs1, imm: imm - 1024 },
        4 => Insn::Slli { rd, rs1, shamt: (raw >> 50) as u8 % 32 },
        5 => Insn::Lw { rd, rs1: Reg::R10, imm: imm & !3 },
        6 => Insn::Sw { rs2: rs1, rs1: Reg::R10, imm: imm & !3 },
        7 => Insn::Beq { rs1, rs2, offset },
        8 => Insn::Bne { rs1, rs2, offset },
        _ => Insn::Jal { rd: Reg::R0, offset },
    }
}

fn gen_program(seed: u64) -> Vec<Insn> {
    let mut state = seed;
    let n = 24;
    // Fixed prologue: r10 = RAM base, so generated loads/stores stay mapped.
    let mut insns = vec![Insn::Lui { rd: Reg::R10, imm: ArchProfile::armv().ram_base }];
    for i in 1..n {
        let raw = splitmix(&mut state);
        insns.push(synth_insn(raw, i, n));
    }
    // Close the program with a backward jump so every seed loops.
    let target = (splitmix(&mut state) as usize) % n;
    insns.push(Insn::Jal { rd: Reg::R0, offset: (target as i32 - n as i32) * 4 });
    insns
}

fn final_state(
    insns: &[Insn],
    config: HookConfig,
    quantum: Option<u64>,
) -> (RunExit, Vec<u32>, u32, u64) {
    let mut m = build_machine(insns, quantum);
    m.set_hook_config(config);
    let exit = m.run(&mut NullHook, 2_500).unwrap();
    let regs = Reg::ALL.iter().map(|&r| m.cpu(0).regs.read(r)).collect();
    (exit, regs, m.cpu(0).pc, m.retired())
}

/// For random loop-heavy programs, the chained/superblock dispatcher must
/// retire the exact stream of the plain per-block dispatcher, under both the
/// unarmed and the armed specialization.
#[test]
fn random_programs_chained_equals_unchained() {
    let armed = HookConfig { mem: true, calls: true, ..HookConfig::none() };
    let mut total_chained = 0;
    for seed in 0..16u64 {
        let insns = gen_program(0xE1B5_0000 | seed);
        for config in [HookConfig::none(), armed] {
            let subject = final_state(&insns, config, None);
            let reference = final_state(&insns, config, Some(1));
            assert_eq!(subject, reference, "seed {seed} diverged under {config:?}");
        }
        // Track that the subject path actually exercises the new machinery.
        let mut m = build_machine(&insns, None);
        m.run(&mut NullHook, 2_500).unwrap();
        total_chained += m.cache_stats().chained_dispatches;
    }
    assert!(total_chained > 0, "no seed ever took a chained dispatch");
}
